// Tier-1 contract of the embedded HTTP server (src/obs/http_server.h):
// routing, query parsing, SSE streaming, the connection cap, prompt clean
// shutdown even mid-stream, and the tiny blocking client's error paths.
#include "src/obs/http_server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

namespace icr::obs::http {
namespace {

// Raw one-shot client for request shapes http_get cannot produce (bad
// methods, pipelined garbage). Sends `request` verbatim, reads to close.
std::string raw_request(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string reply;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    reply.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return reply;
}

TEST(HttpServer, ServesBufferedHandlersAndResolvesEphemeralPort) {
  Server server;
  server.handle("/healthz", [](const Request&) {
    Response r;
    r.body = "ok\n";
    return r;
  });
  ServerOptions options;  // port 0 = ephemeral
  server.start(options);
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);
  EXPECT_EQ(server.url(), "http://127.0.0.1:" + std::to_string(server.port()));

  const FetchResult reply = http_get(server.url() + "/healthz");
  EXPECT_EQ(reply.status, 200);
  EXPECT_EQ(reply.body, "ok\n");

  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(HttpServer, RoutesByExactPathWith404And405) {
  Server server;
  server.handle("/here", [](const Request&) { return Response{}; });
  server.start({});
  EXPECT_EQ(http_get(server.url() + "/here").status, 200);
  EXPECT_EQ(http_get(server.url() + "/missing").status, 404);
  // Prefixes are not routes: exact match only.
  EXPECT_EQ(http_get(server.url() + "/here/sub").status, 404);

  const std::string post = raw_request(
      server.port(), "POST /here HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(post.find("405"), std::string::npos);
  const std::string garbage = raw_request(server.port(), "not-http\r\n\r\n");
  EXPECT_NE(garbage.find("400"), std::string::npos);
  server.stop();
}

TEST(HttpServer, ParsesQueryParamsAndHeaders) {
  Server server;
  server.handle("/echo", [](const Request& request) {
    Response r;
    r.body = request.path + "|" + request.query_param("after", "none") + "|" +
             request.query_param("missing", "fallback") + "|" +
             request.header("x-test");
    return r;
  });
  server.start({});
  const FetchResult reply =
      http_get(server.url() + "/echo?after=7&once=1", 10.0, {"X-Test: hi"});
  EXPECT_EQ(reply.status, 200);
  EXPECT_EQ(reply.body, "/echo|7|fallback|hi");
  server.stop();
}

TEST(HttpServer, StreamsIncrementallyUntilHandlerReturns) {
  Server server;
  server.handle_stream("/events", [](const Request&, ClientStream& stream) {
    for (int i = 0; i < 3; ++i) {
      if (!stream.write("id: " + std::to_string(i) + "\ndata: x\n\n")) return;
    }
  });
  server.start({});
  const FetchResult reply = http_get(server.url() + "/events");
  EXPECT_EQ(reply.status, 200);
  EXPECT_EQ(reply.body, "id: 0\ndata: x\n\nid: 1\ndata: x\n\nid: 2\ndata: x\n\n");
  server.stop();
}

TEST(HttpServer, StopUnblocksAStreamingHandler) {
  Server server;
  std::atomic<bool> entered{false};
  server.handle_stream("/slow", [&](const Request&, ClientStream& stream) {
    entered.store(true);
    // wait() returns false on shutdown; a cooperative handler exits then.
    while (!stream.stopping()) {
      if (!stream.wait(30.0)) break;
    }
  });
  server.start({});

  std::thread client([&] { (void)http_get(server.url() + "/slow", 30.0); });
  while (!entered.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto begin = std::chrono::steady_clock::now();
  server.stop();  // must join the streaming connection promptly
  const double stop_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  EXPECT_LT(stop_seconds, 10.0);
  client.join();
}

TEST(HttpServer, CapsConcurrentConnectionsWith503) {
  Server server;
  std::atomic<bool> entered{false};
  server.handle_stream("/hold", [&](const Request&, ClientStream& stream) {
    entered.store(true);
    while (stream.wait(30.0)) {
    }
  });
  ServerOptions options;
  options.max_connections = 1;
  server.start(options);

  std::thread holder([&] { (void)http_get(server.url() + "/hold", 30.0); });
  while (!entered.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const FetchResult overflow = http_get(server.url() + "/hold");
  EXPECT_EQ(overflow.status, 503);
  server.stop();
  holder.join();
}

TEST(HttpClient, ThrowsClearlyOnBadUrlAndUnreachableServer) {
  EXPECT_THROW((void)http_get("ftp://127.0.0.1/"), std::runtime_error);
  EXPECT_THROW((void)http_get("http://"), std::runtime_error);

  // Grab a port that was just freed — nothing listens there anymore.
  Server server;
  server.handle("/", [](const Request&) { return Response{}; });
  server.start({});
  const std::string url = server.url();
  server.stop();
  EXPECT_THROW((void)http_get(url + "/", 2.0), std::runtime_error);
}

}  // namespace
}  // namespace icr::obs::http
