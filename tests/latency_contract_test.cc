// Pins the load/store latency contract of every §3.2 scheme (the numbers
// the whole performance evaluation rests on):
//
//   scheme          unreplicated-hit   replicated-hit   store
//   BaseP                  1                 n/a          1
//   BaseECC                2                 n/a          1
//   BaseECC-spec           1                 n/a          1
//   ICR-P-PS               1                  1           1
//   ICR-P-PP               1                  2           1
//   ICR-ECC-PS             2                  1           1
//   ICR-ECC-PP             2                  2           1
#include <gtest/gtest.h>

#include "src/core/icr_cache.h"
#include "tests/test_util.h"

namespace icr::core {
namespace {

using test::CacheFixture;

struct LatencyCase {
  Scheme scheme;
  std::uint32_t unreplicated_hit;
  std::uint32_t replicated_hit;  // 0 = scheme never replicates
};

class LatencyContract : public ::testing::TestWithParam<int> {
 public:
  static std::vector<LatencyCase> cases() {
    return {
        {Scheme::BaseP(), 1, 0},
        {Scheme::BaseECC(), 2, 0},
        {Scheme::BaseECCSpeculative(), 1, 0},
        {Scheme::IcrPPS_S(), 1, 1},
        {Scheme::IcrPPS_LS(), 1, 1},
        {Scheme::IcrPPP_S(), 1, 2},
        {Scheme::IcrPPP_LS(), 1, 2},
        {Scheme::IcrEccPS_S(), 2, 1},
        {Scheme::IcrEccPS_LS(), 2, 1},
        {Scheme::IcrEccPP_S(), 2, 2},
        {Scheme::IcrEccPP_LS(), 2, 2},
    };
  }
};

TEST_P(LatencyContract, HitAndStoreLatencies) {
  const LatencyCase c = cases()[GetParam()];
  CacheFixture f(c.scheme);

  // Unreplicated line: fill via load (never replicated under S; under LS a
  // load miss does replicate, so probe a line made unreplicated by using a
  // block whose replica site gets displaced... simpler: for LS schemes the
  // loaded line IS replicated, so only check the S/Base schemes here).
  const bool ls = c.scheme.replication_enabled &&
                  c.scheme.trigger == ReplicateOn::kLoadsAndStores;
  f.dl1->load(0x7000, 0);
  if (!ls) {
    const auto r = f.dl1->load(0x7000, 1);
    ASSERT_TRUE(r.hit);
    EXPECT_EQ(r.latency, c.unreplicated_hit) << c.scheme.name;
  }

  // Store latency is always 1 (buffered), hit or miss.
  EXPECT_EQ(f.dl1->store(0x7000, 1, 2).latency, 1u) << c.scheme.name;
  EXPECT_EQ(f.dl1->store(0x9000, 1, 3).latency, 1u) << c.scheme.name;

  // Replicated line (ICR schemes): the store above created the replica.
  if (c.replicated_hit != 0) {
    const auto r = f.dl1->load(0x7000, 4);
    ASSERT_TRUE(r.hit);
    EXPECT_EQ(r.latency, c.replicated_hit) << c.scheme.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, LatencyContract,
                         ::testing::Range(0, 11), [](const auto& info) {
                           std::string n =
                               LatencyContract::cases()[info.param]
                                   .scheme.name;
                           for (char& ch : n) {
                             if (!isalnum(static_cast<unsigned char>(ch))) {
                               ch = '_';
                             }
                           }
                           return n;
                         });

TEST(LatencyContract, MissPaysMemoryHierarchy) {
  CacheFixture f(Scheme::BaseP());
  // Cold load: L1 miss + L2 miss => 1 + 6 + 100.
  EXPECT_EQ(f.dl1->load(0xA000, 0).latency, 107u);
  // A different block, same L2 block? L2 lines are 64B too; new block,
  // previously fetched into L2? No — fresh block: 107 again.
  EXPECT_EQ(f.dl1->load(0xB000, 1).latency, 107u);
  // Evicted-from-L1 but L2-resident block costs 1 + 6.
  // (Fill enough conflicting blocks to evict 0xA000 from L1 set.)
  const auto& g = f.dl1->geometry();
  for (std::uint32_t t = 1; t <= g.associativity; ++t) {
    f.dl1->load(0xA000 + static_cast<std::uint64_t>(t) * g.num_sets() *
                             g.line_bytes,
                1 + t);
  }
  EXPECT_EQ(f.dl1->load(0xA000, 100).latency, 7u);
}

}  // namespace
}  // namespace icr::core
