#include "src/core/replication_hints.h"

#include <gtest/gtest.h>

#include "src/core/icr_cache.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace icr::core {
namespace {

using test::CacheFixture;

TEST(ReplicationHints, EmptyTableCoversNothing) {
  ReplicationHints h;
  EXPECT_FALSE(h.quota_for(0x1000).has_value());
  EXPECT_EQ(h.range_count(), 0u);
}

TEST(ReplicationHints, RangeLookupIsHalfOpen) {
  ReplicationHints h;
  h.add_range(0x1000, 0x2000, 2);
  EXPECT_FALSE(h.quota_for(0xFFF).has_value());
  EXPECT_EQ(h.quota_for(0x1000).value_or(99), 2);
  EXPECT_EQ(h.quota_for(0x1FFF).value_or(99), 2);
  EXPECT_FALSE(h.quota_for(0x2000).has_value());
}

TEST(ReplicationHints, LaterRangesWinOnOverlap) {
  ReplicationHints h;
  h.add_range(0x0, 0x10000, 1);   // whole heap: 1 replica
  h.add_range(0x4000, 0x5000, 0); // scratch buffer: never replicate
  EXPECT_EQ(h.quota_for(0x1000).value_or(99), 1);
  EXPECT_EQ(h.quota_for(0x4800).value_or(99), 0);
  EXPECT_EQ(h.quota_for(0x5000).value_or(99), 1);
}

TEST(ReplicationHints, ClearForgetsRanges) {
  ReplicationHints h;
  h.add_range(0, 100, 1);
  h.clear();
  EXPECT_FALSE(h.quota_for(50).has_value());
}

TEST(ReplicationHints, ZeroQuotaSuppressesReplication) {
  CacheFixture f(Scheme::IcrPPS_S());
  ReplicationHints hints;
  hints.add_range(0x0, 0x10000000ULL, 0);
  f.dl1->set_replication_hints(&hints);
  f.dl1->store(0x100, 1, 0);
  f.dl1->store(0x5000, 2, 1);
  EXPECT_EQ(f.dl1->stats().replicas_created, 0u);
  // Opted-out data is not a replication opportunity at all.
  EXPECT_EQ(f.dl1->stats().replication_opportunities, 0u);
}

TEST(ReplicationHints, QuotaRaisesReplicaCount) {
  // Scheme configured for 1 replica, but the hint grants 2 for a hot range
  // (the site list must offer two sites for both to be usable).
  ReplicationConfig rep;
  rep.fallback = FallbackStrategy::kMultiAttempt;
  rep.extra_attempts = {Distance::quarter()};
  rep.num_replicas = 1;
  CacheFixture f(Scheme::IcrPPS_S().with_replication(rep));
  ReplicationHints hints;
  hints.add_range(0x0, 0x1000, 2);
  f.dl1->set_replication_hints(&hints);

  f.dl1->store(0x100, 1, 0);    // hinted: up to 2 replicas
  f.dl1->store(0x20000, 2, 1);  // unhinted: scheme default of 1
  EXPECT_EQ(f.dl1->resident_replicas(), 3u);
  f.dl1->check_invariants();
}

TEST(ReplicationHints, MixedRangesEndToEnd) {
  CacheFixture f(Scheme::IcrPPS_S());
  ReplicationHints hints;
  hints.add_range(0x0, 0x8000, 1);
  hints.add_range(0x8000, 0x10000, 0);
  f.dl1->set_replication_hints(&hints);
  Rng rng(3);
  for (std::uint64_t cycle = 0; cycle < 2000; ++cycle) {
    f.dl1->store(rng.next_below(0x2000) * 8, cycle, cycle);
  }
  f.dl1->check_invariants();
  // Replicas exist, and none of them covers the opted-out range.
  EXPECT_GT(f.dl1->resident_replicas(), 0u);
  for (std::uint32_t s = 0; s < f.dl1->num_sets(); ++s) {
    for (std::uint32_t w = 0; w < f.dl1->ways(); ++w) {
      const IcrLine& l = f.dl1->line(s, w);
      if (l.valid && l.replica) {
        EXPECT_LT(l.block_addr, 0x8000u);
      }
    }
  }
  // Detaching the table restores default behaviour.
  f.dl1->set_replication_hints(nullptr);
  f.dl1->store(0x9000, 1, 5000);
  EXPECT_GT(f.dl1->stats().replication_opportunities, 0u);
}

}  // namespace
}  // namespace icr::core
