#include "src/sim/experiment.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace icr::sim {
namespace {

TEST(Experiment, RunOneFillsLabels) {
  const RunResult r = run_one(trace::App::kMesa, core::Scheme::BaseP(),
                              SimConfig::table1(), 20000);
  EXPECT_EQ(r.app, "mesa");
  EXPECT_EQ(r.scheme, "BaseP");
  EXPECT_GE(r.instructions, 20000u);
}

TEST(Experiment, RunMatrixShape) {
  const std::vector<SchemeVariant> variants = {
      {"a", core::Scheme::BaseP()},
      {"b", core::Scheme::IcrPPS_S()},
  };
  const std::vector<trace::App> apps = {trace::App::kGzip, trace::App::kVpr,
                                        trace::App::kMcf};
  const auto m = run_matrix(variants, apps, SimConfig::table1(), 15000);
  ASSERT_EQ(m.size(), 2u);
  ASSERT_EQ(m[0].size(), 3u);
  EXPECT_EQ(m[0][0].scheme, "a");
  EXPECT_EQ(m[1][2].scheme, "b");
  EXPECT_EQ(m[1][2].app, "mcf");
}

TEST(Experiment, AppNames) {
  const auto names = app_names({trace::App::kGzip, trace::App::kBzip2});
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "gzip");
  EXPECT_EQ(names[1], "bzip2");
}

TEST(Experiment, NormalizedMetrics) {
  RunResult a, b;
  a.cycles = 150;
  b.cycles = 100;
  EXPECT_DOUBLE_EQ(normalized_cycles(a, b), 1.5);
  a.energy.l1_nj = 30;
  b.energy.l1_nj = 10;
  EXPECT_DOUBLE_EQ(normalized_energy(a, b), 3.0);
}

TEST(Experiment, MeanHelper) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
}

TEST(Experiment, InstructionCountEnvOverride) {
  setenv("ICR_SIM_INSTRUCTIONS", "12345", 1);
  EXPECT_EQ(default_instruction_count(), 12345u);
  setenv("ICR_SIM_INSTRUCTIONS", "junk", 1);
  EXPECT_EQ(default_instruction_count(), 1'000'000u);
  unsetenv("ICR_SIM_INSTRUCTIONS");
  EXPECT_EQ(default_instruction_count(), 1'000'000u);
}

}  // namespace
}  // namespace icr::sim
