// Property-test layer for the cache core under degraded geometry
// (docs/GEOMETRY.md): ~200 random (geometry, disabled-way mask, op
// sequence) cases drive IcrCache through loads, stores, and runtime way
// disabling, asserting after every burst that
//   * no allocation ever lands in a disabled way;
//   * occupancy never exceeds the enabled capacity (whole-array and
//     per-set);
//   * the mask-aware replica victim search returns exactly what a
//     reference linear scan over the enabled ways returns;
//   * a replica never shares a line with its primary, and never shares a
//     set unless the scheme's candidate distances include 0 (horizontal
//     replication);
// plus the structural check_invariants() sweep. Corner geometries
// (2-way/64-set, 16-way/512-set) get dedicated regressions so latent
// power-of-two assumptions in set-index/way arithmetic cannot creep back.
#include "src/core/icr_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/core/replication_policy.h"
#include "src/core/scheme.h"
#include "src/mem/cache_geometry.h"
#include "src/mem/memory_hierarchy.h"
#include "src/util/rng.h"

namespace icr::core {
namespace {

// Reference implementation of the §3.1 victim search: a plain linear scan
// over the enabled ways using only the public surface. Mirrors the
// documented policy, not the production code path.
const IcrLine* reference_victim(const IcrCache& cache, std::uint32_t set,
                                std::uint64_t block, std::uint64_t cycle) {
  const IcrLine* invalid = nullptr;
  const IcrLine* dead = nullptr;
  const IcrLine* replica = nullptr;
  for (std::uint32_t w = 0; w < cache.ways(); ++w) {
    if (cache.way_disabled(set, w)) continue;
    const IcrLine& l = cache.line(set, w);
    if (!l.valid) {
      if (invalid == nullptr) invalid = &l;
      continue;
    }
    if (l.block_addr == block) continue;
    if (l.replica) {
      if (replica == nullptr || l.lru_stamp < replica->lru_stamp) {
        replica = &l;
      }
      continue;
    }
    if (cache.dead_block_predictor().is_dead(l.last_access_cycle, cycle)) {
      if (dead == nullptr || l.lru_stamp < dead->lru_stamp) dead = &l;
    }
  }
  if (invalid != nullptr) return invalid;
  switch (cache.scheme().victim_policy) {
    case ReplicaVictimPolicy::kDeadOnly: return dead;
    case ReplicaVictimPolicy::kReplicaOnly: return replica;
    case ReplicaVictimPolicy::kDeadFirst:
      return dead != nullptr ? dead : replica;
    case ReplicaVictimPolicy::kReplicaFirst:
      return replica != nullptr ? replica : dead;
  }
  return nullptr;
}

std::uint32_t enabled_ways_in_set(const IcrCache& cache, std::uint32_t set) {
  return cache.ways() - std::popcount(cache.disabled_mask(set));
}

// The full assertion battery over the cache's current state.
void assert_properties(IcrCache& cache, std::uint64_t cycle, Rng& rng) {
  cache.check_invariants();

  const std::uint32_t sets = cache.num_sets();
  const bool horizontal_allowed = [&] {
    const auto distances =
        candidate_distances(cache.scheme().replication, sets);
    return std::find(distances.begin(), distances.end(), 0u) !=
           distances.end();
  }();

  std::uint64_t valid_lines = 0;
  for (std::uint32_t s = 0; s < sets; ++s) {
    std::uint32_t valid_in_set = 0;
    for (std::uint32_t w = 0; w < cache.ways(); ++w) {
      const IcrLine& l = cache.line(s, w);
      if (!l.valid) continue;
      ++valid_in_set;
      ++valid_lines;
      // No allocation in a disabled way — the core masking property.
      ASSERT_FALSE(cache.way_disabled(s, w))
          << "valid line in disabled way " << w << " of set " << s;
      if (l.replica && !horizontal_allowed) {
        // Vertical replication: the replica's set must differ from its
        // block's home set, so it can never share a way with its primary.
        ASSERT_NE(s, cache.geometry().set_index(l.block_addr))
            << "replica shares its primary's set under a vertical scheme";
      }
    }
    ASSERT_LE(valid_in_set, enabled_ways_in_set(cache, s));
  }
  ASSERT_LE(valid_lines, cache.enabled_lines());

  // Victim search == reference scan, probed at random coordinates.
  for (int probe = 0; probe < 8; ++probe) {
    const std::uint32_t set =
        static_cast<std::uint32_t>(rng.next_below(sets));
    const std::uint64_t block = rng.next_below(4) == 0
                                    ? cache.line(set, 0).block_addr
                                    : rng.next_u64() & ~63ULL;
    ASSERT_EQ(cache.select_replica_victim(set, block, cycle),
              reference_victim(cache, set, block, cycle))
        << "masked victim search diverged from the reference scan at set "
        << set;
  }
}

Scheme random_scheme(Rng& rng) {
  Scheme scheme;
  switch (rng.next_below(4)) {
    case 0: scheme = Scheme::IcrPPS_S(); break;
    case 1: scheme = Scheme::IcrPPS_LS(); break;
    case 2: scheme = Scheme::IcrEccPS_S(); break;
    default: scheme = Scheme::IcrPPP_S(); break;
  }
  static constexpr ReplicaVictimPolicy kPolicies[] = {
      ReplicaVictimPolicy::kDeadOnly, ReplicaVictimPolicy::kReplicaOnly,
      ReplicaVictimPolicy::kDeadFirst, ReplicaVictimPolicy::kReplicaFirst};
  scheme = scheme.with_victim_policy(kPolicies[rng.next_below(4)]);
  static constexpr std::uint64_t kWindows[] = {0, 50, 500};
  scheme = scheme.with_decay_window(kWindows[rng.next_below(3)]);
  if (rng.next_below(4) == 0) {
    // Horizontal replication: candidate distance 0 — the one family where
    // a replica legitimately shares its primary's set.
    ReplicationConfig config;
    config.first_distance = Distance::zero();
    scheme = scheme.with_replication(config);
  }
  return scheme;
}

mem::WayDisableConfig random_mask(Rng& rng, std::uint32_t ways) {
  mem::WayDisableConfig mask;
  if (ways == 1) return mask;  // nothing can be disabled
  switch (rng.next_below(3)) {
    case 0:  // no degradation
      break;
    case 1:  // k-of-N draw, fixed or per-set random placement
      mask.count = static_cast<std::uint32_t>(rng.next_range(1, ways - 1));
      mask.pattern = rng.next_below(2) == 0
                         ? mem::WayDisableConfig::Pattern::kFixed
                         : mem::WayDisableConfig::Pattern::kRandom;
      mask.seed = rng.next_u64();
      break;
    default:  // explicit mask, guaranteed not to cover every way
      mask.fixed_mask = static_cast<std::uint32_t>(
          rng.next_range(1, (1ULL << ways) - 2));
      break;
  }
  return mask;
}

TEST(CacheProperties, RandomizedDegradedGeometryCases) {
  constexpr int kCases = 200;
  for (int c = 0; c < kCases; ++c) {
    Rng rng(0x9E0D1CULL + static_cast<std::uint64_t>(c));

    static constexpr std::uint32_t kAssocs[] = {1, 2, 4, 8, 16};
    static constexpr std::uint32_t kSets[] = {16, 32, 64, 128};
    mem::CacheGeometry geometry;
    geometry.line_bytes = 64;
    geometry.associativity = kAssocs[rng.next_below(5)];
    const std::uint32_t sets = kSets[rng.next_below(4)];
    geometry.size_bytes = sets * geometry.associativity * geometry.line_bytes;
    ASSERT_NO_THROW(geometry.validate());

    const mem::WayDisableConfig mask =
        random_mask(rng, geometry.associativity);
    mem::MemoryHierarchy hierarchy;
    IcrCache cache(geometry, random_scheme(rng), hierarchy, mask);
    ASSERT_EQ(cache.num_sets(), sets);

    // Footprint of 4x the enabled capacity keeps sets under pressure.
    const std::uint64_t footprint =
        static_cast<std::uint64_t>(geometry.size_bytes) * 4;
    std::uint64_t cycle = 1;
    const int ops = 150 + static_cast<int>(rng.next_below(150));
    for (int op = 0; op < ops; ++op) {
      const std::uint64_t addr = rng.next_below(footprint) & ~7ULL;
      if (rng.bernoulli(0.4)) {
        cache.store(addr, rng.next_u64(), cycle);
      } else {
        cache.load(addr, cycle);
      }
      cycle += 1 + rng.next_below(20);

      // Occasional runtime hard-fault: disable a random (set, way),
      // tolerating the last-enabled-way refusal.
      if (rng.bernoulli(0.01)) {
        const std::uint32_t set =
            static_cast<std::uint32_t>(rng.next_below(sets));
        const std::uint32_t way = static_cast<std::uint32_t>(
            rng.next_below(geometry.associativity));
        try {
          cache.disable_way(set, way, cycle);
          ASSERT_TRUE(cache.way_disabled(set, way));
        } catch (const std::invalid_argument&) {
          ASSERT_EQ(enabled_ways_in_set(cache, set), 1u);
        }
      }

      if (op % 50 == 49) assert_properties(cache, cycle, rng);
    }
    assert_properties(cache, cycle, rng);
  }
}

// Deterministic op stream at a corner geometry; shared by the regressions
// below so both corners run the identical battery.
void corner_case(mem::CacheGeometry geometry, std::uint32_t expected_sets,
                 std::uint32_t disabled) {
  ASSERT_NO_THROW(geometry.validate());
  mem::WayDisableConfig mask;
  mask.count = disabled;
  mem::MemoryHierarchy hierarchy;
  IcrCache cache(geometry, Scheme::IcrPPS_S(), hierarchy, mask);
  ASSERT_EQ(cache.num_sets(), expected_sets);
  ASSERT_EQ(cache.enabled_lines(),
            static_cast<std::uint64_t>(expected_sets) *
                (geometry.associativity - disabled));

  Rng rng(0xC02EULL + geometry.associativity);
  std::uint64_t cycle = 1;
  // Enough ops to cycle the whole array a few times over the 4x footprint,
  // so even the 512-set corner sees real set pressure and evictions.
  const int ops = std::max(
      2000, static_cast<int>(geometry.size_bytes / geometry.line_bytes) * 3);
  for (int op = 0; op < ops; ++op) {
    const std::uint64_t addr =
        rng.next_below(geometry.size_bytes * 4) & ~7ULL;
    if ((op & 3) == 0) {
      cache.store(addr, mix64(addr), cycle);
    } else {
      cache.load(addr, cycle);
    }
    cycle += 3;
  }
  assert_properties(cache, cycle, rng);
  EXPECT_GT(cache.stats().loads, 0u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

// 2-way/64-set (8KB) — the smallest associativity where masking is legal.
TEST(CacheProperties, CornerGeometryTwoWay64Set) {
  corner_case({8 * 1024, 64, 2}, 64, 0);
  corner_case({8 * 1024, 64, 2}, 64, 1);
}

// 16-way/512-set (512KB) — wide sets, many sets; way iteration and
// set-index arithmetic far from the 4-way default.
TEST(CacheProperties, CornerGeometrySixteenWay512Set) {
  corner_case({512 * 1024, 64, 16}, 512, 0);
  corner_case({512 * 1024, 64, 16}, 512, 2);
}

TEST(CacheProperties, DisableWayFlushesResidentLine) {
  mem::MemoryHierarchy hierarchy;
  IcrCache cache(mem::l1d_geometry_default(), Scheme::IcrPPS_S(), hierarchy);
  // Dirty a line, find its slot, disable that way: the line must be
  // written back and invalidated before the way is masked.
  cache.store(0x40, 0xFEEDULL, 1);
  const std::uint32_t set = cache.geometry().set_index(0x40);
  std::uint32_t way = cache.ways();
  for (std::uint32_t w = 0; w < cache.ways(); ++w) {
    if (cache.line(set, w).valid && !cache.line(set, w).replica) {
      way = w;
      break;
    }
  }
  ASSERT_LT(way, cache.ways());
  const std::uint64_t writebacks = cache.stats().writebacks;
  cache.disable_way(set, way, 2);
  EXPECT_TRUE(cache.way_disabled(set, way));
  EXPECT_FALSE(cache.line(set, way).valid);
  EXPECT_EQ(cache.stats().writebacks, writebacks + 1);
  cache.check_invariants();
}

TEST(CacheProperties, DisableWayRefusesLastEnabledWay) {
  mem::MemoryHierarchy hierarchy;
  mem::WayDisableConfig mask;
  mask.fixed_mask = 0b1110;  // only way 0 left
  IcrCache cache(mem::l1d_geometry_default(), Scheme::IcrPPS_S(), hierarchy,
                 mask);
  EXPECT_THROW(cache.disable_way(0, 0, 1), std::invalid_argument);
  // Re-disabling an already-disabled way is a no-op, not an error.
  cache.disable_way(0, 1, 1);
  EXPECT_EQ(cache.disabled_mask(0), 0b1110u);
}

TEST(WayDisableProperties, MaskForSetIsDeterministicAndExact) {
  Rng rng(0x5EED5ULL);
  for (int c = 0; c < 200; ++c) {
    const std::uint32_t ways = static_cast<std::uint32_t>(
        rng.next_range(2, 16));
    mem::WayDisableConfig mask;
    mask.count = static_cast<std::uint32_t>(rng.next_range(1, ways - 1));
    mask.pattern = rng.next_below(2) == 0
                       ? mem::WayDisableConfig::Pattern::kFixed
                       : mem::WayDisableConfig::Pattern::kRandom;
    mask.seed = rng.next_u64();
    ASSERT_NO_THROW(mask.validate(ways));
    for (std::uint32_t set = 0; set < 64; ++set) {
      const std::uint32_t bits = mask.mask_for_set(set, ways);
      // Exactly k ways disabled, all inside the geometry, never all ways.
      EXPECT_EQ(std::popcount(bits), static_cast<int>(mask.count));
      EXPECT_EQ(bits & ~((1u << ways) - 1u), 0u);
      EXPECT_NE(bits, (1u << ways) - 1u);
      // Deterministic in (seed, set, ways).
      EXPECT_EQ(bits, mask.mask_for_set(set, ways));
    }
  }
}

TEST(WayDisableProperties, ValidationRejectsDegenerateConfigs) {
  mem::WayDisableConfig all;
  all.fixed_mask = 0b1111;
  EXPECT_THROW(all.validate(4), std::invalid_argument);

  mem::WayDisableConfig outside;
  outside.fixed_mask = 0b10000;
  EXPECT_THROW(outside.validate(4), std::invalid_argument);

  mem::WayDisableConfig too_many;
  too_many.count = 4;
  EXPECT_THROW(too_many.validate(4), std::invalid_argument);

  mem::WayDisableConfig fine;
  fine.count = 3;
  EXPECT_NO_THROW(fine.validate(4));
  EXPECT_NO_THROW(mem::WayDisableConfig{}.validate(4));
}

}  // namespace
}  // namespace icr::core
