// Host profiler (src/obs/prof.h): zone nesting, cross-thread merge
// determinism, event-ring wrap accounting, Chrome trace round-trip, and
// the tier-1 guard that profiling never perturbs simulation results.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/prof.h"
#include "src/obs/prof_io.h"
#include "src/sim/experiment.h"
#include "src/sim/results_io.h"
#include "src/util/thread_pool.h"

namespace prof = icr::obs::prof;

namespace {

void burn(volatile int iterations) {
  for (volatile int i = 0; i < iterations; ++i) {
  }
}

TEST(ProfTest, OffByDefaultAndZonesAreInert) {
  ASSERT_FALSE(prof::capturing());
  ASSERT_EQ(prof::level(), prof::kOff);
  {
    ICR_PROF_ZONE("never_recorded");
    ICR_PROF_ZONE_HOT("never_recorded_hot");
  }
  prof::begin_capture();
  const prof::Profile profile = prof::end_capture();
  EXPECT_TRUE(profile.zones.empty());
  EXPECT_TRUE(profile.events.empty());
  EXPECT_FALSE(prof::capturing());
}

TEST(ProfTest, NestedZonesAggregateByPath) {
  prof::begin_capture();
  {
    ICR_PROF_ZONE("outer");
    for (int i = 0; i < 3; ++i) {
      ICR_PROF_ZONE("inner");
      ICR_PROF_ZONE_HOT("leaf");
      burn(100);
    }
  }
  const prof::Profile profile = prof::end_capture();

  ASSERT_EQ(profile.zones.size(), 3u);
  // DFS order: parent precedes child.
  EXPECT_EQ(profile.zones[0].path, "outer");
  EXPECT_EQ(profile.zones[1].path, "outer/inner");
  EXPECT_EQ(profile.zones[2].path, "outer/inner/leaf");
  EXPECT_EQ(profile.zones[0].depth, 0);
  EXPECT_EQ(profile.zones[1].depth, 1);
  EXPECT_EQ(profile.zones[2].depth, 2);
  EXPECT_EQ(profile.zones[0].count, 1u);
  EXPECT_EQ(profile.zones[1].count, 3u);
  EXPECT_EQ(profile.zones[2].count, 3u);

  // Inclusive time dominates children; self = total - instrumented kids.
  const prof::ZoneNode* outer = profile.find("outer");
  const prof::ZoneNode* inner = profile.find("outer/inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_GE(outer->total_ns, inner->total_ns);
  EXPECT_EQ(outer->self_ns, outer->total_ns - inner->total_ns);
  EXPECT_LE(profile.total_self_ns(), profile.wall_ns);
}

TEST(ProfTest, SameNameDifferentParentsStaysDistinct) {
  prof::begin_capture();
  {
    ICR_PROF_ZONE("a");
    { ICR_PROF_ZONE("shared"); }
  }
  {
    ICR_PROF_ZONE("b");
    { ICR_PROF_ZONE("shared"); }
  }
  const prof::Profile profile = prof::end_capture();
  EXPECT_NE(profile.find("a/shared"), nullptr);
  EXPECT_NE(profile.find("b/shared"), nullptr);
  EXPECT_EQ(profile.find("shared"), nullptr);
}

// The merged zone table must not depend on which threads ran what or in
// which order: same work on 1 thread and on 4 yields identical structure.
TEST(ProfTest, ThreadMergeIsDeterministic) {
  const auto run_capture = [](unsigned workers) {
    icr::util::ThreadPool pool(workers);
    prof::begin_capture();
    icr::util::parallel_for(pool, 16, [](std::size_t i) {
      ICR_PROF_ZONE("task");
      if (i % 2 == 0) {
        ICR_PROF_ZONE("even");
        burn(50);
      } else {
        ICR_PROF_ZONE("odd");
        burn(50);
      }
    });
    return prof::end_capture();
  };

  const prof::Profile serial = run_capture(1);
  const prof::Profile parallel = run_capture(4);

  ASSERT_EQ(serial.zones.size(), parallel.zones.size());
  for (std::size_t i = 0; i < serial.zones.size(); ++i) {
    EXPECT_EQ(serial.zones[i].path, parallel.zones[i].path);
    EXPECT_EQ(serial.zones[i].depth, parallel.zones[i].depth);
    EXPECT_EQ(serial.zones[i].count, parallel.zones[i].count);
  }
  EXPECT_EQ(serial.find("task")->count, 16u);
  EXPECT_EQ(serial.find("task/even")->count, 8u);
  EXPECT_EQ(serial.find("task/odd")->count, 8u);
}

TEST(ProfTest, EventRingKeepsMostRecentAndCountsDrops) {
  prof::CaptureOptions options;
  options.level = prof::kCoarse;
  options.events_per_thread = 8;
  prof::begin_capture(options);
  for (int i = 0; i < 20; ++i) {
    ICR_PROF_ZONE("span");
  }
  const prof::Profile profile = prof::end_capture();
  EXPECT_EQ(profile.events.size(), 8u);
  EXPECT_EQ(profile.dropped_events, 12u);
  // Aggregation is unaffected by the ring: every call still counted.
  ASSERT_NE(profile.find("span"), nullptr);
  EXPECT_EQ(profile.find("span")->count, 20u);
  // Retained events are in chronological order (oldest first).
  for (std::size_t i = 1; i < profile.events.size(); ++i) {
    EXPECT_GE(profile.events[i].start_ns, profile.events[i - 1].start_ns);
  }
}

TEST(ProfTest, HotZonesAggregateWithoutEvents) {
  prof::begin_capture();
  {
    ICR_PROF_ZONE("coarse");
    for (int i = 0; i < 5; ++i) {
      ICR_PROF_ZONE_HOT("hot");
    }
  }
  const prof::Profile profile = prof::end_capture();
  EXPECT_EQ(profile.find("coarse/hot")->count, 5u);
  std::size_t hot_events = 0;
  for (const prof::SpanEvent& event : profile.events) {
    if (event.name == "hot") ++hot_events;
  }
  EXPECT_EQ(hot_events, 0u);
  EXPECT_EQ(profile.events.size(), 1u);  // just "coarse"
}

TEST(ProfTest, CoarseCaptureSkipsHotZones) {
  prof::CaptureOptions options;
  options.level = prof::kCoarse;
  prof::begin_capture(options);
  {
    ICR_PROF_ZONE("coarse");
    ICR_PROF_ZONE_HOT("hot");
  }
  const prof::Profile profile = prof::end_capture();
  EXPECT_NE(profile.find("coarse"), nullptr);
  EXPECT_EQ(profile.find("coarse/hot"), nullptr);
}

TEST(ProfTest, LabeledZonesRetainLabels) {
  prof::begin_capture();
  {
    ICR_PROF_ZONE_LABELED("cell", std::string("BaseP/mcf/0"));
  }
  const prof::Profile profile = prof::end_capture();
  ASSERT_EQ(profile.events.size(), 1u);
  EXPECT_EQ(profile.events[0].name, "cell");
  EXPECT_EQ(profile.events[0].label, "BaseP/mcf/0");
}

TEST(ProfIoTest, ChromeTraceRoundTrip) {
  prof::begin_capture();
  {
    ICR_PROF_ZONE("outer");
    ICR_PROF_ZONE_LABELED("cell", std::string("with \"quotes\""));
    ICR_PROF_ZONE_HOT("hot");
    burn(100);
  }
  const prof::Profile profile = prof::end_capture();
  const std::string trace = prof::to_chrome_trace(profile, "prof_test");

  // Chrome trace-event format: a top-level JSON array.
  EXPECT_EQ(trace.front(), '[');
  const prof::ParsedTrace parsed = prof::parse_chrome_trace(trace);
  EXPECT_EQ(parsed.span_events, profile.events.size());
  EXPECT_EQ(parsed.profile.wall_ns, profile.wall_ns);
  EXPECT_EQ(parsed.profile.threads, profile.threads);
  ASSERT_EQ(parsed.profile.zones.size(), profile.zones.size());
  for (std::size_t i = 0; i < profile.zones.size(); ++i) {
    EXPECT_EQ(parsed.profile.zones[i].path, profile.zones[i].path);
    EXPECT_EQ(parsed.profile.zones[i].count, profile.zones[i].count);
    EXPECT_EQ(parsed.profile.zones[i].total_ns, profile.zones[i].total_ns);
    EXPECT_EQ(parsed.profile.zones[i].self_ns, profile.zones[i].self_ns);
  }

  const std::string table = prof::format_self_time_table(parsed.profile);
  EXPECT_NE(table.find("outer"), std::string::npos);
  EXPECT_NE(table.find("hot"), std::string::npos);
  EXPECT_NE(table.find("instrumented total"), std::string::npos);
}

// Tier-1 guard: profiling observes the simulation, never perturbs it. A
// run with a capture live must produce bit-identical metrics to runs
// without, and prof-off runs are deterministic to begin with.
TEST(ProfTest, CaptureNeverChangesRunResults) {
  const icr::core::Scheme scheme = icr::core::Scheme::IcrPPS_S();
  const auto run = [&] {
    return icr::sim::run_one(icr::trace::App::kGzip, scheme,
                             icr::sim::SimConfig::table1(), 20000);
  };

  const std::vector<double> off_a = icr::sim::metric_values(run());
  const std::vector<double> off_b = icr::sim::metric_values(run());
  EXPECT_EQ(off_a, off_b) << "prof-off runs must be bit-identical";

  prof::begin_capture();
  const std::vector<double> on = icr::sim::metric_values(run());
  const prof::Profile profile = prof::end_capture();
  EXPECT_EQ(off_a, on) << "a live capture must not change any metric";

  // Sanity: the capture did see the simulator's hot zones.
  EXPECT_NE(profile.find("Simulator::run"), nullptr);
  EXPECT_NE(profile.find("Simulator::run/Pipeline::run/Pipeline::tick"),
            nullptr);
}

}  // namespace
