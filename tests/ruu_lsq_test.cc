#include <gtest/gtest.h>

#include "src/cpu/lsq.h"
#include "src/cpu/ruu.h"

namespace icr::cpu {
namespace {

TEST(Ruu, PushPopOrder) {
  Ruu ruu(4);
  EXPECT_TRUE(ruu.empty());
  for (std::uint64_t s = 1; s <= 4; ++s) ruu.push().seq = s;
  EXPECT_TRUE(ruu.full());
  EXPECT_EQ(ruu.head().seq, 1u);
  ruu.pop();
  EXPECT_EQ(ruu.head().seq, 2u);
  ruu.push().seq = 5;  // wraps the ring
  EXPECT_EQ(ruu.at(0).seq, 2u);
  EXPECT_EQ(ruu.at(3).seq, 5u);
}

TEST(Ruu, FindSeq) {
  Ruu ruu(8);
  for (std::uint64_t s = 10; s < 14; ++s) ruu.push().seq = s;
  EXPECT_NE(ruu.find_seq(12), nullptr);
  EXPECT_EQ(ruu.find_seq(12)->seq, 12u);
  EXPECT_EQ(ruu.find_seq(99), nullptr);
  ruu.pop();
  EXPECT_EQ(ruu.find_seq(10), nullptr);  // committed
}

TEST(Ruu, PushResetsEntryState) {
  Ruu ruu(2);
  RuuEntry& e = ruu.push();
  e.issued = true;
  e.completed = true;
  e.seq = 1;
  ruu.pop();
  RuuEntry& e2 = ruu.push();
  EXPECT_FALSE(e2.issued);
  EXPECT_FALSE(e2.completed);
  EXPECT_EQ(e2.seq, 0u);
}

TEST(Lsq, ForwardsYoungestOlderStore) {
  Lsq lsq(8);
  lsq.push(1, true, 0x100, 111);
  lsq.push(2, true, 0x100, 222);
  lsq.push(3, true, 0x200, 333);
  // Load seq 4 at 0x100: sees stores 1 and 2, takes the youngest (222).
  const auto v = lsq.forward_value(4, 0x100);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 222u);
}

TEST(Lsq, DoesNotForwardFromYoungerStore) {
  Lsq lsq(8);
  lsq.push(5, true, 0x100, 555);
  EXPECT_FALSE(lsq.forward_value(3, 0x100).has_value());
}

TEST(Lsq, DoesNotForwardAcrossWords) {
  Lsq lsq(8);
  lsq.push(1, true, 0x100, 1);
  EXPECT_FALSE(lsq.forward_value(2, 0x108).has_value());
  // Same word, different byte offset: still forwards (word granularity).
  EXPECT_TRUE(lsq.forward_value(2, 0x104).has_value());
}

TEST(Lsq, LoadsDoNotForward) {
  Lsq lsq(8);
  lsq.push(1, false, 0x100, 0);  // a load entry
  EXPECT_FALSE(lsq.forward_value(2, 0x100).has_value());
}

TEST(Lsq, PopIfSeqOnlyMatchesHead) {
  Lsq lsq(4);
  lsq.push(1, true, 0x100, 1);
  lsq.push(2, false, 0x200, 0);
  lsq.pop_if_seq(2);  // head is seq 1: no-op
  EXPECT_EQ(lsq.size(), 2u);
  lsq.pop_if_seq(1);
  EXPECT_EQ(lsq.size(), 1u);
  lsq.pop_if_seq(2);
  EXPECT_TRUE(lsq.empty());
}

TEST(Lsq, FullBlocksPush) {
  Lsq lsq(2);
  lsq.push(1, true, 0, 0);
  lsq.push(2, true, 64, 0);
  EXPECT_TRUE(lsq.full());
}

}  // namespace
}  // namespace icr::cpu
