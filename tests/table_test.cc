#include "src/util/table.h"

#include <gtest/gtest.h>

namespace icr {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t("Demo", {"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTable, PadsShortRows) {
  TextTable t("", {"a", "b", "c"});
  t.add_row({"x"});
  const std::string out = t.render();
  EXPECT_NE(out.find('x'), std::string::npos);
}

TEST(TextTable, NumericRowFormatsPrecision) {
  TextTable t("", {"label", "v1", "v2"});
  t.add_numeric_row("row", {1.23456, 2.0}, 2);
  const std::string out = t.render();
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("2.00"), std::string::npos);
}

TEST(TextTable, ColumnsAreAligned) {
  TextTable t("", {"col", "v"});
  t.add_row({"short", "1"});
  t.add_row({"muchlongerlabel", "2"});
  const std::string out = t.render();
  // Values in the second column start at the same offset for both rows.
  const auto line_start = [&](int n) {
    std::size_t pos = 0;
    for (int i = 0; i < n; ++i) pos = out.find('\n', pos) + 1;
    return pos;
  };
  const std::size_t row1 = line_start(2);  // after header + rule
  const std::size_t row2 = line_start(3);
  EXPECT_EQ(out.find('1', row1) - row1, out.find('2', row2) - row2);
}

TEST(FormatDouble, Basic) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.0, 3), "-1.000");
}

}  // namespace
}  // namespace icr
