#include "src/core/scheme.h"

#include <gtest/gtest.h>

namespace icr::core {
namespace {

TEST(Scheme, BaseSchemesDisableReplication) {
  EXPECT_FALSE(Scheme::BaseP().replication_enabled);
  EXPECT_FALSE(Scheme::BaseECC().replication_enabled);
  EXPECT_EQ(Scheme::BaseP().protection, Protection::kParity);
  EXPECT_EQ(Scheme::BaseECC().protection, Protection::kEcc);
  EXPECT_FALSE(Scheme::BaseECC().speculative_ecc_loads);
  EXPECT_TRUE(Scheme::BaseECCSpeculative().speculative_ecc_loads);
}

TEST(Scheme, IcrVariantsEncodePaperMatrix) {
  const Scheme s = Scheme::IcrEccPS_S();
  EXPECT_TRUE(s.replication_enabled);
  EXPECT_EQ(s.protection, Protection::kEcc);
  EXPECT_EQ(s.lookup, LookupMode::kSerial);
  EXPECT_EQ(s.trigger, ReplicateOn::kStores);

  const Scheme p = Scheme::IcrPPP_LS();
  EXPECT_EQ(p.protection, Protection::kParity);
  EXPECT_EQ(p.lookup, LookupMode::kParallel);
  EXPECT_EQ(p.trigger, ReplicateOn::kLoadsAndStores);
}

TEST(Scheme, AllPaperSchemesAreTen) {
  const auto all = Scheme::all_paper_schemes();
  ASSERT_EQ(all.size(), 10u);
  EXPECT_EQ(all[0].name, "BaseP");
  EXPECT_EQ(all[1].name, "BaseECC");
  // Names are unique.
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_NE(all[i].name, all[j].name);
    }
  }
}

TEST(Scheme, FluentBuildersDoNotMutateOriginal) {
  const Scheme base = Scheme::IcrPPS_S();
  const Scheme tweaked = base.with_decay_window(1000)
                             .with_victim_policy(ReplicaVictimPolicy::kDeadFirst)
                             .with_leave_replicas(true);
  EXPECT_EQ(base.decay_window, 0u);
  EXPECT_EQ(base.victim_policy, ReplicaVictimPolicy::kDeadOnly);
  EXPECT_FALSE(base.leave_replicas_on_eviction);
  EXPECT_EQ(tweaked.decay_window, 1000u);
  EXPECT_EQ(tweaked.victim_policy, ReplicaVictimPolicy::kDeadFirst);
  EXPECT_TRUE(tweaked.leave_replicas_on_eviction);
}

TEST(Scheme, WriteThroughBuilder) {
  const Scheme wt = Scheme::BaseP().with_write_through(8);
  EXPECT_EQ(wt.write_policy, WritePolicy::kWriteThrough);
  EXPECT_EQ(wt.write_buffer_entries, 8u);
  EXPECT_EQ(Scheme::BaseP().write_policy, WritePolicy::kWriteBack);
}

TEST(Scheme, DefaultReplicationIsPaperSetting) {
  // §5.1 conclusion: one replica, single attempt, Distance-N/2.
  const Scheme s = Scheme::IcrPPS_S();
  EXPECT_EQ(s.replication.num_replicas, 1u);
  EXPECT_EQ(s.replication.fallback, FallbackStrategy::kNone);
  EXPECT_EQ(s.replication.first_distance.kind, Distance::Kind::kHalfSets);
  EXPECT_EQ(s.victim_policy, ReplicaVictimPolicy::kDeadOnly);
  EXPECT_EQ(s.decay_window, 0u);
}

}  // namespace
}  // namespace icr::core
