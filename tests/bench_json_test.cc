// bench/common/bench_json: icr-bench-v1 round-trip and the compare gate
// that backs tools/bench_compare (CI regression detection).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "bench/common/bench_json.h"

namespace {

using icr::bench::BenchJson;
using icr::bench::BenchMetric;
using icr::bench::Better;
using icr::bench::CompareOptions;
using icr::bench::CompareResult;

BenchJson sample_doc() {
  BenchJson doc;
  doc.bench = "synthetic";
  doc.git_sha = "abc123";
  doc.config_hash = "0x00000000deadbeef";
  doc.wall_seconds = 1.25;
  doc.mips = 3.5;
  doc.metrics = {
      {"end_to_end/ns_per_op", 100.0, Better::kLower, 0.0},
      {"throughput/items_per_second", 500.0, Better::kHigher, 0.0},
      {"cells", 16.0, Better::kNone, 0.0},
      {"noisy/ns_per_op", 100.0, Better::kLower, 0.5},
  };
  return doc;
}

TEST(BenchJsonTest, RoundTripsThroughText) {
  const BenchJson doc = sample_doc();
  const BenchJson back = icr::bench::from_json_text(icr::bench::to_json(doc));
  EXPECT_EQ(back.bench, doc.bench);
  EXPECT_EQ(back.git_sha, doc.git_sha);
  EXPECT_EQ(back.config_hash, doc.config_hash);
  EXPECT_DOUBLE_EQ(back.wall_seconds, doc.wall_seconds);
  EXPECT_DOUBLE_EQ(back.mips, doc.mips);
  ASSERT_EQ(back.metrics.size(), doc.metrics.size());
  for (std::size_t i = 0; i < doc.metrics.size(); ++i) {
    EXPECT_EQ(back.metrics[i].name, doc.metrics[i].name);
    EXPECT_DOUBLE_EQ(back.metrics[i].value, doc.metrics[i].value);
    EXPECT_EQ(back.metrics[i].better, doc.metrics[i].better);
    EXPECT_DOUBLE_EQ(back.metrics[i].noise, doc.metrics[i].noise);
  }
}

TEST(BenchJsonTest, RejectsWrongSchema) {
  EXPECT_THROW(icr::bench::from_json_text("{\"schema\": \"other-v9\"}"),
               std::runtime_error);
  EXPECT_THROW(icr::bench::from_json_text("[1,2]"), std::runtime_error);
  EXPECT_THROW(icr::bench::from_json_text("not json"), std::runtime_error);
}

TEST(BenchJsonTest, IdenticalInputsPass) {
  const BenchJson doc = sample_doc();
  const CompareResult result = icr::bench::compare(doc, doc);
  EXPECT_FALSE(result.regressed());
  ASSERT_EQ(result.deltas.size(), doc.metrics.size());
  for (const auto& delta : result.deltas) {
    EXPECT_FALSE(delta.regressed);
    EXPECT_DOUBLE_EQ(delta.rel_change, 0.0);
  }
}

// Acceptance gate: a synthetic 20% regression on a lower-is-better metric
// must trip the default 10% threshold.
TEST(BenchJsonTest, DetectsTwentyPercentRegression) {
  const BenchJson base = sample_doc();
  BenchJson current = base;
  current.metrics[0].value = 120.0;  // end_to_end/ns_per_op: +20%
  const CompareResult result = icr::bench::compare(base, current);
  EXPECT_TRUE(result.regressed());
  EXPECT_TRUE(result.deltas[0].regressed);
  EXPECT_NEAR(result.deltas[0].rel_change, 0.20, 1e-12);
  // The other metrics stay clean.
  EXPECT_FALSE(result.deltas[1].regressed);
  EXPECT_FALSE(result.deltas[2].regressed);
}

TEST(BenchJsonTest, HigherIsBetterDirectionRespected) {
  const BenchJson base = sample_doc();
  BenchJson faster = base;
  faster.metrics[1].value = 600.0;  // +20% throughput: an improvement
  EXPECT_FALSE(icr::bench::compare(base, faster).regressed());
  EXPECT_TRUE(icr::bench::compare(base, faster).deltas[1].improved);

  BenchJson slower = base;
  slower.metrics[1].value = 400.0;  // -20% throughput: a regression
  EXPECT_TRUE(icr::bench::compare(base, slower).regressed());
}

TEST(BenchJsonTest, PerMetricNoiseOverridesDefault) {
  const BenchJson base = sample_doc();
  BenchJson current = base;
  current.metrics[3].value = 130.0;  // noisy metric: +30% < its 50% bound
  EXPECT_FALSE(icr::bench::compare(base, current).regressed());
  current.metrics[3].value = 160.0;  // +60% > 50%
  EXPECT_TRUE(icr::bench::compare(base, current).regressed());
}

TEST(BenchJsonTest, ThresholdOptionWidensTheGate) {
  const BenchJson base = sample_doc();
  BenchJson current = base;
  current.metrics[0].value = 120.0;
  CompareOptions wide;
  wide.default_threshold = 0.5;
  EXPECT_FALSE(icr::bench::compare(base, current, wide).regressed());
}

TEST(BenchJsonTest, DirectionlessMetricsNeverRegress) {
  const BenchJson base = sample_doc();
  BenchJson current = base;
  current.metrics[2].value = 999.0;  // "cells" is informational
  EXPECT_FALSE(icr::bench::compare(base, current).regressed());
}

TEST(BenchJsonTest, MissingMetricIsARegression) {
  const BenchJson base = sample_doc();
  BenchJson current = base;
  current.metrics.erase(current.metrics.begin());
  const CompareResult result = icr::bench::compare(base, current);
  EXPECT_TRUE(result.regressed());
  ASSERT_EQ(result.missing_in_current.size(), 1u);
  EXPECT_EQ(result.missing_in_current[0], "end_to_end/ns_per_op");

  // New metrics in current are informational, not regressions.
  BenchJson extra = base;
  extra.metrics.push_back({"brand_new", 1.0, Better::kNone, 0.0});
  const CompareResult grown = icr::bench::compare(base, extra);
  EXPECT_FALSE(grown.regressed());
  ASSERT_EQ(grown.extra_in_current.size(), 1u);
}

TEST(BenchJsonTest, FormatCompareNamesTheVerdict) {
  const BenchJson base = sample_doc();
  BenchJson current = base;
  current.metrics[0].value = 120.0;
  const std::string text = icr::bench::format_compare(
      icr::bench::compare(base, current), base, current);
  EXPECT_NE(text.find("REGRESSED"), std::string::npos);
  EXPECT_NE(text.find("end_to_end/ns_per_op"), std::string::npos);
}

}  // namespace
