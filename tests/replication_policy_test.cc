#include "src/core/replication_policy.h"

#include <gtest/gtest.h>

namespace icr::core {
namespace {

TEST(Distance, Resolution) {
  EXPECT_EQ(Distance::half().resolve(64), 32u);
  EXPECT_EQ(Distance::quarter().resolve(64), 16u);
  EXPECT_EQ(Distance::zero().resolve(64), 0u);
  EXPECT_EQ(Distance::absolute(7).resolve(64), 7u);
  EXPECT_EQ(Distance::absolute(71).resolve(64), 7u);  // wraps mod N
}

TEST(CandidateDistances, SingleAttempt) {
  ReplicationConfig cfg;  // defaults: 1 replica, N/2, no fallback
  const auto d = candidate_distances(cfg, 64);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], 32u);
}

TEST(CandidateDistances, MultiAttemptPaperSetting) {
  // Paper Fig. 1: Distance-N/2 then Distance-N/4.
  ReplicationConfig cfg;
  cfg.fallback = FallbackStrategy::kMultiAttempt;
  cfg.extra_attempts = {Distance::quarter()};
  const auto d = candidate_distances(cfg, 64);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0], 32u);
  EXPECT_EQ(d[1], 16u);
}

TEST(CandidateDistances, Power2Ladder) {
  // k = N/2 = 32, then 32-16=16, then 16-8=8, ...
  ReplicationConfig cfg;
  cfg.fallback = FallbackStrategy::kPower2;
  cfg.max_attempts = 4;
  const auto d = candidate_distances(cfg, 64);
  ASSERT_EQ(d.size(), 4u);
  EXPECT_EQ(d[0], 32u);
  EXPECT_EQ(d[1], 16u);
  EXPECT_EQ(d[2], 8u);
  EXPECT_EQ(d[3], 4u);
}

TEST(CandidateDistances, Power2StopsWhenStepVanishes) {
  ReplicationConfig cfg;
  cfg.fallback = FallbackStrategy::kPower2;
  cfg.max_attempts = 10;
  const auto d = candidate_distances(cfg, 8);  // k=4: 4, 2, 1
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0], 4u);
  EXPECT_EQ(d[1], 2u);
  EXPECT_EQ(d[2], 1u);
}

TEST(CandidateDistances, DeduplicatesSites) {
  ReplicationConfig cfg;
  cfg.fallback = FallbackStrategy::kMultiAttempt;
  cfg.extra_attempts = {Distance::half(), Distance::quarter(),
                        Distance::quarter()};
  const auto d = candidate_distances(cfg, 64);
  ASSERT_EQ(d.size(), 2u);  // N/2 repeated, N/4 repeated
}

TEST(CandidateDistances, HorizontalReplication) {
  ReplicationConfig cfg;
  cfg.first_distance = Distance::zero();
  const auto d = candidate_distances(cfg, 64);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], 0u);
}

TEST(VictimPolicy, Names) {
  EXPECT_STREQ(to_string(ReplicaVictimPolicy::kDeadOnly), "dead-only");
  EXPECT_STREQ(to_string(ReplicaVictimPolicy::kDeadFirst), "dead-first");
  EXPECT_STREQ(to_string(ReplicaVictimPolicy::kReplicaFirst),
               "replica-first");
  EXPECT_STREQ(to_string(ReplicaVictimPolicy::kReplicaOnly), "replica-only");
}

}  // namespace
}  // namespace icr::core
