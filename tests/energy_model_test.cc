#include "src/energy/energy_model.h"

#include <gtest/gtest.h>

namespace icr::energy {
namespace {

TEST(EnergyModel, ZeroEventsZeroEnergy) {
  EnergyModel m;
  EXPECT_DOUBLE_EQ(m.evaluate({}).total_nj(), 0.0);
}

TEST(EnergyModel, LinearInAccessCounts) {
  EnergyModel m;
  EnergyEvents e;
  e.l1_reads = 100;
  e.l1_writes = 50;
  const double one = m.evaluate(e).l1_nj;
  e.l1_reads = 200;
  e.l1_writes = 100;
  EXPECT_DOUBLE_EQ(m.evaluate(e).l1_nj, 2 * one);
}

TEST(EnergyModel, DefaultRatiosMatchCacti) {
  const EnergyParams p;
  // L2 access ~10x an L1 access for these geometries (CACTI 3.0, 0.18um).
  EXPECT_NEAR(p.l2_access_nj / p.l1_access_nj, 10.0, 1.0);
  // ECC check twice the parity check (paper's conservative assumption).
  EXPECT_DOUBLE_EQ(p.ecc_fraction / p.parity_fraction, 2.0);
}

TEST(EnergyModel, CheckEnergiesScaleWithL1Access) {
  EnergyParams p;
  p.l1_access_nj = 1.0;
  p.parity_fraction = 0.10;
  p.ecc_fraction = 0.30;
  EnergyModel m(p);
  EnergyEvents e;
  e.parity_computations = 10;
  e.ecc_computations = 10;
  const auto b = m.evaluate(e);
  EXPECT_DOUBLE_EQ(b.parity_nj, 1.0);
  EXPECT_DOUBLE_EQ(b.ecc_nj, 3.0);
  EXPECT_DOUBLE_EQ(b.total_nj(), 4.0);
}

TEST(EnergyModel, BreakdownSumsToTotal) {
  EnergyModel m;
  EnergyEvents e;
  e.l1_reads = 3;
  e.l2_writes = 2;
  e.parity_computations = 5;
  e.ecc_computations = 7;
  const auto b = m.evaluate(e);
  EXPECT_DOUBLE_EQ(b.total_nj(), b.l1_nj + b.l2_nj + b.parity_nj + b.ecc_nj);
  EXPECT_GT(b.total_nj(), 0.0);
}

TEST(EnergyModel, WriteThroughCostsMoreL2) {
  // The Fig. 16(b) mechanism in miniature: the same store stream costs far
  // more when every store becomes an L2 write.
  EnergyModel m;
  EnergyEvents wb;
  wb.l1_writes = 1000;
  wb.l2_writes = 50;  // write-back: only dirty evictions
  EnergyEvents wt = wb;
  wt.l2_writes = 800;  // write-through: most stores drain
  EXPECT_GT(m.evaluate(wt).total_nj(), 2 * m.evaluate(wb).l2_nj);
  EXPECT_GT(m.evaluate(wt).total_nj(), m.evaluate(wb).total_nj());
}

}  // namespace
}  // namespace icr::energy
