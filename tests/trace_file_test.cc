#include "src/trace/trace_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/trace/trace_v2.h"
#include "src/trace/workloads.h"

namespace icr::trace {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TraceFile, RoundTripPreservesEveryField) {
  const std::string path = temp_path("roundtrip.icrt");
  SyntheticWorkload source(profile_for(App::kGcc));
  SyntheticWorkload reference(profile_for(App::kGcc));
  record_trace(source, 5000, path);

  FileTraceSource replay(path);
  ASSERT_EQ(replay.size(), 5000u);
  for (int i = 0; i < 5000; ++i) {
    const Instruction a = replay.next();
    const Instruction b = reference.next();
    ASSERT_EQ(a.pc, b.pc);
    ASSERT_EQ(static_cast<int>(a.op), static_cast<int>(b.op));
    ASSERT_EQ(a.mem_addr, b.mem_addr);
    ASSERT_EQ(a.store_value, b.store_value);
    ASSERT_EQ(a.next_pc, b.next_pc);
    ASSERT_EQ(a.branch_taken, b.branch_taken);
    ASSERT_EQ(a.dest, b.dest);
    ASSERT_EQ(a.src1, b.src1);
    ASSERT_EQ(a.src2, b.src2);
  }
  std::remove(path.c_str());
}

TEST(TraceFile, ReplayLoopsAtEnd) {
  const std::string path = temp_path("loop.icrt");
  SyntheticWorkload source(profile_for(App::kGzip));
  record_trace(source, 100, path);

  FileTraceSource replay(path);
  std::vector<std::uint64_t> first_pass;
  for (int i = 0; i < 100; ++i) first_pass.push_back(replay.next().pc);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(replay.next().pc, first_pass[static_cast<std::size_t>(i)]);
  }
  std::remove(path.c_str());
}

TEST(TraceFile, MissingFileThrows) {
  EXPECT_THROW(FileTraceSource("/nonexistent/path/x.icrt"),
               std::runtime_error);
}

TEST(TraceFile, BadMagicThrows) {
  const std::string path = temp_path("garbage.icrt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a trace file at all............";
  }
  EXPECT_THROW(FileTraceSource{path}, std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceFile, EmptyTraceThrows) {
  const std::string path = temp_path("empty.icrt");
  {
    TraceWriter w(path);  // header only
  }
  EXPECT_THROW(FileTraceSource{path}, std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceFile, TruncatedTraceThrows) {
  const std::string path = temp_path("trunc.icrt");
  {
    SyntheticWorkload source(profile_for(App::kVpr));
    record_trace(source, 50, path);
  }
  // Chop off the tail.
  std::ofstream out(path, std::ios::binary | std::ios::in);
  out.seekp(16 + 20 * 40);
  out.close();
  std::ifstream check(path, std::ios::binary | std::ios::ate);
  // Rewrite with fewer bytes than the header claims.
  {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes(16 + 20 * 40);
    in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    in.close();
    std::ofstream rewrite(path, std::ios::binary | std::ios::trunc);
    rewrite.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(FileTraceSource{path}, std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceFile, V2ContainerRejectedWithVersionHint) {
  // A v2 file handed to the v1 loader must name the actual version and the
  // way out, not claim corruption.
  const std::string path = temp_path("v2_for_v1.icrt");
  SyntheticWorkload source(profile_for(App::kGzip));
  record_trace_v2(source, 50, path);
  try {
    FileTraceSource replay(path);
    FAIL() << "v2 file accepted by the v1 loader";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("ICRT-v2"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(TraceFile, SeekLandsWhereSequentialReadsWould) {
  const std::string path = temp_path("v1_seek.icrt");
  SyntheticWorkload source(profile_for(App::kParser));
  record_trace(source, 200, path);

  FileTraceSource replay(path);
  std::vector<Instruction> all;
  for (int i = 0; i < 200; ++i) all.push_back(replay.next());
  for (const std::uint64_t n :
       {std::uint64_t{0}, std::uint64_t{77}, std::uint64_t{199},
        std::uint64_t{200}, std::uint64_t{4321}}) {
    replay.seek_to(n);
    EXPECT_EQ(replay.next().pc, all[static_cast<std::size_t>(n % 200)].pc);
  }
  std::remove(path.c_str());
}

TEST(TraceFile, FailedWriteNamesPathAndOffset) {
  // /dev/full accepts the open but fails every flush — the classic
  // disk-full shape a capture run can hit.
  if (!std::ifstream("/dev/full").good()) {
    GTEST_SKIP() << "/dev/full not available";
  }
  TraceWriter writer("/dev/full");
  SyntheticWorkload source(profile_for(App::kGzip));
  try {
    // The stream buffers, so force enough records through to flush.
    for (int i = 0; i < 100000; ++i) writer.write(source.next());
    writer.close();
    FAIL() << "writing to /dev/full succeeded";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("/dev/full"), std::string::npos) << what;
    EXPECT_NE(what.find("byte"), std::string::npos) << what;
  }
}

TEST(TraceV2File, FailedWriteNamesPathAndOffset) {
  if (!std::ifstream("/dev/full").good()) {
    GTEST_SKIP() << "/dev/full not available";
  }
  TraceV2Writer writer("/dev/full");
  SyntheticWorkload source(profile_for(App::kGzip));
  try {
    for (int i = 0; i < 200000; ++i) writer.write(source.next());
    writer.close();
    FAIL() << "writing to /dev/full succeeded";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("/dev/full"), std::string::npos) << what;
    EXPECT_NE(what.find("byte"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace icr::trace
