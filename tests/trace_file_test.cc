#include "src/trace/trace_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/trace/workloads.h"

namespace icr::trace {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TraceFile, RoundTripPreservesEveryField) {
  const std::string path = temp_path("roundtrip.icrt");
  SyntheticWorkload source(profile_for(App::kGcc));
  SyntheticWorkload reference(profile_for(App::kGcc));
  record_trace(source, 5000, path);

  FileTraceSource replay(path);
  ASSERT_EQ(replay.size(), 5000u);
  for (int i = 0; i < 5000; ++i) {
    const Instruction a = replay.next();
    const Instruction b = reference.next();
    ASSERT_EQ(a.pc, b.pc);
    ASSERT_EQ(static_cast<int>(a.op), static_cast<int>(b.op));
    ASSERT_EQ(a.mem_addr, b.mem_addr);
    ASSERT_EQ(a.store_value, b.store_value);
    ASSERT_EQ(a.next_pc, b.next_pc);
    ASSERT_EQ(a.branch_taken, b.branch_taken);
    ASSERT_EQ(a.dest, b.dest);
    ASSERT_EQ(a.src1, b.src1);
    ASSERT_EQ(a.src2, b.src2);
  }
  std::remove(path.c_str());
}

TEST(TraceFile, ReplayLoopsAtEnd) {
  const std::string path = temp_path("loop.icrt");
  SyntheticWorkload source(profile_for(App::kGzip));
  record_trace(source, 100, path);

  FileTraceSource replay(path);
  std::vector<std::uint64_t> first_pass;
  for (int i = 0; i < 100; ++i) first_pass.push_back(replay.next().pc);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(replay.next().pc, first_pass[static_cast<std::size_t>(i)]);
  }
  std::remove(path.c_str());
}

TEST(TraceFile, MissingFileThrows) {
  EXPECT_THROW(FileTraceSource("/nonexistent/path/x.icrt"),
               std::runtime_error);
}

TEST(TraceFile, BadMagicThrows) {
  const std::string path = temp_path("garbage.icrt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a trace file at all............";
  }
  EXPECT_THROW(FileTraceSource{path}, std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceFile, EmptyTraceThrows) {
  const std::string path = temp_path("empty.icrt");
  {
    TraceWriter w(path);  // header only
  }
  EXPECT_THROW(FileTraceSource{path}, std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceFile, TruncatedTraceThrows) {
  const std::string path = temp_path("trunc.icrt");
  {
    SyntheticWorkload source(profile_for(App::kVpr));
    record_trace(source, 50, path);
  }
  // Chop off the tail.
  std::ofstream out(path, std::ios::binary | std::ios::in);
  out.seekp(16 + 20 * 40);
  out.close();
  std::ifstream check(path, std::ios::binary | std::ios::ate);
  // Rewrite with fewer bytes than the header claims.
  {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes(16 + 20 * 40);
    in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    in.close();
    std::ofstream rewrite(path, std::ios::binary | std::ios::trunc);
    rewrite.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(FileTraceSource{path}, std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace icr::trace
