#include "src/cpu/branch_predictor.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace icr::cpu {
namespace {

TEST(BranchPredictor, LearnsAlwaysTaken) {
  BranchPredictor bp;
  const std::uint64_t pc = 0x1000, target = 0x2000;
  // Warm up.
  for (int i = 0; i < 4; ++i) bp.predict_and_update(pc, true, target);
  int mispredicts = 0;
  for (int i = 0; i < 100; ++i) {
    if (bp.predict_and_update(pc, true, target)) ++mispredicts;
  }
  EXPECT_EQ(mispredicts, 0);
}

TEST(BranchPredictor, LearnsAlwaysNotTaken) {
  BranchPredictor bp;
  const std::uint64_t pc = 0x1000;
  for (int i = 0; i < 4; ++i) bp.predict_and_update(pc, false, 0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(bp.predict_and_update(pc, false, 0));
  }
}

TEST(BranchPredictor, TwoLevelLearnsAlternatingPattern) {
  BranchPredictor bp;
  const std::uint64_t pc = 0x1000, target = 0x0800;
  bool taken = false;
  // Alternating T/N defeats bimodal but is learnable with history.
  for (int i = 0; i < 200; ++i) {
    bp.predict_and_update(pc, taken, target);
    taken = !taken;
  }
  int mispredicts = 0;
  for (int i = 0; i < 100; ++i) {
    if (bp.predict_and_update(pc, taken, target)) ++mispredicts;
    taken = !taken;
  }
  EXPECT_LT(mispredicts, 5);
}

TEST(BranchPredictor, LearnsShortLoopPattern) {
  BranchPredictor bp;
  const std::uint64_t pc = 0x4444, target = 0x4400;
  auto outcome = [](int i) { return i % 5 != 4; };  // TTTTN
  for (int i = 0; i < 400; ++i) bp.predict_and_update(pc, outcome(i), target);
  int mispredicts = 0;
  for (int i = 0; i < 200; ++i) {
    if (bp.predict_and_update(pc, outcome(i), target)) ++mispredicts;
  }
  // The 8-bit-history two-level component captures period-5 patterns.
  EXPECT_LT(mispredicts, 20);
}

TEST(BranchPredictor, BtbMissOnTakenBranchIsMisprediction) {
  BranchPredictor bp;
  // First taken encounter: direction may or may not be right, but the BTB
  // cannot know the target yet.
  const bool mispredicted = bp.predict_and_update(0x9000, true, 0xA000);
  EXPECT_TRUE(mispredicted);
  EXPECT_EQ(bp.stats().btb_misses + bp.stats().direction_mispredicts, 1u);
}

TEST(BranchPredictor, BtbRemembersTarget) {
  BranchPredictor bp;
  for (int i = 0; i < 8; ++i) bp.predict_and_update(0x9000, true, 0xA000);
  const auto pred = bp.predict(0x9000);
  EXPECT_TRUE(pred.taken);
  EXPECT_TRUE(pred.target_known);
  EXPECT_EQ(pred.target, 0xA000u);
}

TEST(BranchPredictor, ChangedTargetIsMisprediction) {
  BranchPredictor bp;
  for (int i = 0; i < 8; ++i) bp.predict_and_update(0x9000, true, 0xA000);
  EXPECT_TRUE(bp.predict_and_update(0x9000, true, 0xB000));
}

TEST(BranchPredictor, RandomBranchesMispredictHalfTheTime) {
  BranchPredictor bp;
  Rng rng(42);
  int mispredicts = 0;
  const int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) {
    if (bp.predict_and_update(0x1234, rng.bernoulli(0.5), 0x4321)) {
      ++mispredicts;
    }
  }
  EXPECT_NEAR(static_cast<double>(mispredicts) / kTrials, 0.5, 0.08);
}

TEST(BranchPredictor, StatsCountLookups) {
  BranchPredictor bp;
  for (int i = 0; i < 10; ++i) bp.predict_and_update(0x10, true, 0x20);
  EXPECT_EQ(bp.stats().lookups, 10u);
}

TEST(BranchPredictor, IndependentBranchSitesDoNotDestroyEachOther) {
  BranchPredictor bp;
  // Two branches with opposite biases at different PCs.
  for (int i = 0; i < 50; ++i) {
    bp.predict_and_update(0x1000, true, 0x500);
    bp.predict_and_update(0x2000, false, 0);
  }
  int mispredicts = 0;
  for (int i = 0; i < 50; ++i) {
    if (bp.predict_and_update(0x1000, true, 0x500)) ++mispredicts;
    if (bp.predict_and_update(0x2000, false, 0)) ++mispredicts;
  }
  EXPECT_LT(mispredicts, 5);
}

}  // namespace
}  // namespace icr::cpu
