#include "src/mem/set_assoc_cache.h"

#include <gtest/gtest.h>

namespace icr::mem {
namespace {

CacheGeometry small_geo() { return CacheGeometry{1024, 64, 2}; }  // 8 sets

TEST(SetAssocCache, MissThenHit) {
  SetAssocCache c(small_geo());
  EXPECT_FALSE(c.access(0x100, false, 0).hit);
  EXPECT_TRUE(c.access(0x100, false, 1).hit);
  EXPECT_TRUE(c.access(0x13F, false, 2).hit);  // same block
  EXPECT_EQ(c.stats().accesses, 3u);
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(SetAssocCache, LruEviction) {
  SetAssocCache c(small_geo());
  const std::uint64_t sets = 8, line = 64;
  // Three blocks aliasing to set 0 in a 2-way cache.
  const std::uint64_t a = 0 * sets * line, b = 1 * sets * line,
                      d = 2 * sets * line;
  c.access(a, false, 0);
  c.access(b, false, 1);
  c.access(a, false, 2);   // a is now MRU
  c.access(d, false, 3);   // evicts b (LRU)
  EXPECT_TRUE(c.probe(a));
  EXPECT_FALSE(c.probe(b));
  EXPECT_TRUE(c.probe(d));
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(SetAssocCache, DirtyEvictionReportsWriteback) {
  SetAssocCache c(small_geo());
  const std::uint64_t sets = 8, line = 64;
  const std::uint64_t a = 0, b = sets * line, d = 2 * sets * line;
  c.access(a, true, 0);  // dirty
  c.access(b, false, 1);
  const auto r = c.access(d, false, 2);  // evicts a
  ASSERT_TRUE(r.writeback.has_value());
  EXPECT_EQ(*r.writeback, a);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(SetAssocCache, CleanEvictionHasNoWriteback) {
  SetAssocCache c(small_geo());
  const std::uint64_t sets = 8, line = 64;
  c.access(0, false, 0);
  c.access(sets * line, false, 1);
  const auto r = c.access(2 * sets * line, false, 2);
  EXPECT_FALSE(r.writeback.has_value());
}

TEST(SetAssocCache, WriteHitMarksDirty) {
  SetAssocCache c(small_geo());
  const std::uint64_t sets = 8, line = 64;
  c.access(0, false, 0);
  c.access(0, true, 1);  // now dirty
  c.access(sets * line, false, 2);
  const auto r = c.access(2 * sets * line, false, 3);  // evicts block 0
  EXPECT_TRUE(r.writeback.has_value());
}

TEST(SetAssocCache, InvalidateReturnsDirtiness) {
  SetAssocCache c(small_geo());
  c.access(0x200, true, 0);
  EXPECT_TRUE(c.probe(0x200));
  EXPECT_TRUE(c.invalidate(0x200));
  EXPECT_FALSE(c.probe(0x200));
  EXPECT_FALSE(c.invalidate(0x200));  // already gone
}

TEST(SetAssocCache, ProbeDoesNotDisturbState) {
  SetAssocCache c(small_geo());
  c.access(0x300, false, 0);
  const auto before = c.stats().accesses;
  EXPECT_TRUE(c.probe(0x300));
  EXPECT_FALSE(c.probe(0x7000));
  EXPECT_EQ(c.stats().accesses, before);
}

TEST(SetAssocCache, MissRateComputation) {
  SetAssocCache c(small_geo());
  c.access(0, false, 0);
  c.access(0, false, 1);
  c.access(0, false, 2);
  c.access(64, false, 3);
  EXPECT_DOUBLE_EQ(c.stats().miss_rate(), 0.5);
}

TEST(SetAssocCache, FillsAllWaysBeforeEvicting) {
  CacheGeometry g{4096, 64, 4};  // 16 sets, 4 ways
  SetAssocCache c(g);
  const std::uint64_t stride = 16 * 64;
  for (int i = 0; i < 4; ++i) c.access(i * stride, false, i);
  EXPECT_EQ(c.stats().evictions, 0u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(c.probe(i * stride));
  c.access(4 * stride, false, 5);
  EXPECT_EQ(c.stats().evictions, 1u);
}

}  // namespace
}  // namespace icr::mem
