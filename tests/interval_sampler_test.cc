#include "src/obs/interval_sampler.h"

#include <gtest/gtest.h>

#include "src/obs/obs_io.h"

namespace icr::obs {
namespace {

// A registry over hand-rolled counters whose names match the derived-column
// lookups in obs_io (dl1.loads etc.), so the CSV's ipc/miss-rate/replication
// columns are exercised with exactly known arithmetic.
struct FakeDl1 {
  std::uint64_t loads = 0, load_misses = 0, stores = 0, store_misses = 0,
                opportunities = 0, successes = 0;

  void wire(StatRegistry& reg) {
    reg.register_counter("dl1.loads", &loads);
    reg.register_counter("dl1.load_misses", &load_misses);
    reg.register_counter("dl1.stores", &stores);
    reg.register_counter("dl1.store_misses", &store_misses);
    reg.register_counter("dl1.replication.opportunities", &opportunities);
    reg.register_counter("dl1.replication.successes", &successes);
  }
};

TEST(IntervalSampler, DeltasBetweenCumulativeSamples) {
  StatRegistry reg;
  FakeDl1 dl1;
  dl1.wire(reg);

  IntervalSampler sampler(reg, 1000);
  sampler.record_baseline(0, 0);

  dl1.loads = 100;
  dl1.load_misses = 10;
  sampler.sample(1000, 2000);

  dl1.loads = 250;  // +150
  dl1.load_misses = 40;  // +30
  dl1.stores = 50;  // +50
  sampler.sample(2000, 5000);

  const IntervalSeries& series = sampler.series();
  EXPECT_EQ(series.interval_count(), 2u);
  ASSERT_EQ(series.samples.size(), 3u);
  EXPECT_EQ(series.samples[0].instructions, 0u);
  EXPECT_EQ(series.samples[2].cycles, 5000u);

  const auto pts = interval_points(series);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].d_instructions, 1000.0);
  EXPECT_DOUBLE_EQ(pts[0].d_cycles, 2000.0);
  EXPECT_DOUBLE_EQ(pts[0].ipc, 0.5);
  EXPECT_DOUBLE_EQ(pts[0].miss_rate, 0.1);     // 10 / 100
  EXPECT_DOUBLE_EQ(pts[0].miss_weight, 100.0); // accesses in interval 0
  EXPECT_DOUBLE_EQ(pts[1].d_cycles, 3000.0);
  EXPECT_DOUBLE_EQ(pts[1].miss_rate, 0.15);    // 30 / (150 + 50)
  EXPECT_DOUBLE_EQ(pts[1].miss_weight, 200.0);
}

TEST(IntervalSampler, WeightedMeansReconstructAggregates) {
  StatRegistry reg;
  FakeDl1 dl1;
  dl1.wire(reg);

  IntervalSampler sampler(reg, 100);
  sampler.record_baseline(0, 0);

  // Three uneven intervals.
  dl1.loads = 80;
  dl1.load_misses = 8;
  dl1.opportunities = 10;
  dl1.successes = 2;
  sampler.sample(100, 300);
  dl1.loads = 100;
  dl1.load_misses = 20;
  dl1.stores = 60;
  dl1.store_misses = 4;
  dl1.opportunities = 40;
  dl1.successes = 29;
  sampler.sample(200, 900);
  dl1.loads = 300;
  dl1.load_misses = 21;
  dl1.opportunities = 41;
  dl1.successes = 30;
  sampler.sample(300, 1000);

  const auto pts = interval_points(sampler.series());
  const IntervalSummary s = summarize(pts);
  EXPECT_EQ(s.intervals, 3u);
  // Access-weighted miss-rate mean == total misses / total accesses.
  EXPECT_DOUBLE_EQ(s.mean_miss_rate, 25.0 / 360.0);
  // Opportunity-weighted replication-ability mean == successes / opps.
  EXPECT_DOUBLE_EQ(s.mean_replication_ability, 30.0 / 41.0);
  // Cycle-weighted IPC == total instructions / total cycles.
  EXPECT_DOUBLE_EQ(s.mean_ipc, 300.0 / 1000.0);
}

// Regression: chunked runs (Simulator::run / fast_forward, the sampling
// controller) can land a chunk boundary exactly on the final instruction of
// the previous segment and sample the same progress point twice. The
// duplicate must collapse into the previous sample — a zero-length interval
// would produce 0/0 rates and infinite weights downstream.
TEST(IntervalSampler, DuplicateProgressPointCollapsesIntoLastSample) {
  StatRegistry reg;
  FakeDl1 dl1;
  dl1.wire(reg);

  IntervalSampler sampler(reg, 100);
  sampler.record_baseline(0, 0);

  dl1.loads = 50;
  sampler.sample(100, 200);
  // Same instruction count again, fresher counters: replaces, not appends.
  dl1.loads = 60;
  sampler.sample(100, 200);
  dl1.loads = 90;
  sampler.sample(200, 400);

  const IntervalSeries& series = sampler.series();
  ASSERT_EQ(series.samples.size(), 3u);  // baseline + two distinct points
  EXPECT_EQ(series.samples[1].instructions, 100u);
  EXPECT_EQ(series.samples[1].counters[0], 60u);  // freshest snapshot kept
  EXPECT_EQ(series.samples[2].instructions, 200u);
  for (const auto& pt : interval_points(series)) {
    EXPECT_GT(pt.d_instructions, 0.0);
  }
}

TEST(IntervalSampler, DefaultIntervalWhenZero) {
  StatRegistry reg;
  IntervalSampler sampler(reg, 0);
  EXPECT_EQ(sampler.interval_instructions(), kDefaultStatsInterval);
}

TEST(IntervalSampler, OccupancyProbeRecordsPerSetRows) {
  StatRegistry reg;
  IntervalSampler sampler(reg, 10);
  sampler.set_occupancy_probe(
      [] { return std::vector<std::uint32_t>{1, 0, 2, 0}; });
  sampler.record_baseline(0, 0);
  sampler.sample(10, 20);

  const IntervalSeries& series = sampler.series();
  EXPECT_EQ(series.occupancy_sets, 4u);
  ASSERT_EQ(series.samples.size(), 2u);
  EXPECT_EQ(series.samples[1].occupancy,
            (std::vector<std::uint32_t>{1, 0, 2, 0}));

  const CellTag tag{"v", "a", 0};
  const std::string csv = occupancy_to_csv(series, tag);
  EXPECT_EQ(csv,
            "variant,app,trial,interval,instr_end,set_0,set_1,set_2,set_3\n"
            "v,a,0,0,10,1,0,2,0\n");
}

// Golden interval-CSV header for a known registry (schema lock; the live
// simulator's full header is covered by observability_test).
TEST(IntervalSampler, IntervalCsvGolden) {
  StatRegistry reg;
  std::uint64_t work = 0;
  reg.register_counter("unit.work", &work);
  IntervalSampler sampler(reg, 50);
  sampler.record_baseline(0, 0);
  work = 25;
  sampler.sample(50, 100);

  const CellTag tag{"v", "a", 1};
  EXPECT_EQ(intervals_to_csv(sampler.series(), tag),
            "variant,app,trial,interval,instr_end,cycles_end,d_instructions,"
            "d_cycles,ipc,dl1_miss_rate,replication_ability,d_unit.work\n"
            "v,a,1,0,50,100,50,100,0.5,0,0,25\n");
}

TEST(IntervalSampler, PhaseSegmentationSplitsOnMissRateShift) {
  std::vector<IntervalPoint> pts(6);
  for (std::size_t i = 0; i < 6; ++i) {
    pts[i].d_instructions = 100;
    pts[i].d_cycles = 200;
    pts[i].miss_rate = i < 3 ? 0.05 : 0.40;  // abrupt phase change
    pts[i].miss_weight = 100;
  }
  const auto phases = segment_phases(pts);
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].first_interval, 0u);
  EXPECT_EQ(phases[0].last_interval, 2u);
  EXPECT_DOUBLE_EQ(phases[0].mean_miss_rate, 0.05);
  EXPECT_EQ(phases[1].first_interval, 3u);
  EXPECT_EQ(phases[1].last_interval, 5u);
  EXPECT_DOUBLE_EQ(phases[1].mean_miss_rate, 0.40);
}

}  // namespace
}  // namespace icr::obs
