#include "src/trace/workloads.h"

#include <gtest/gtest.h>

#include <map>

namespace icr::trace {
namespace {

TEST(Workloads, AllAppsHaveProfiles) {
  const auto apps = all_apps();
  ASSERT_EQ(apps.size(), 8u);
  for (App app : apps) {
    const WorkloadProfile p = profile_for(app);
    EXPECT_FALSE(p.name.empty());
    EXPECT_FALSE(p.patterns.empty());
    EXPECT_GT(p.load_frac, 0.0);
    EXPECT_GT(p.store_frac, 0.0);
    EXPECT_LT(p.load_frac + p.store_frac + p.branch_frac + p.fp_alu_frac +
                  p.fp_mul_frac + p.int_mul_frac,
              1.0);
  }
}

TEST(Workloads, DeterministicStreams) {
  SyntheticWorkload a(profile_for(App::kVpr));
  SyntheticWorkload b(profile_for(App::kVpr));
  for (int i = 0; i < 5000; ++i) {
    const Instruction x = a.next();
    const Instruction y = b.next();
    ASSERT_EQ(x.pc, y.pc);
    ASSERT_EQ(static_cast<int>(x.op), static_cast<int>(y.op));
    ASSERT_EQ(x.mem_addr, y.mem_addr);
    ASSERT_EQ(x.branch_taken, y.branch_taken);
  }
}

TEST(Workloads, MixMatchesProfile) {
  const WorkloadProfile p = profile_for(App::kGzip);
  SyntheticWorkload w(p);
  std::map<OpClass, int> counts;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[w.next().op];
  EXPECT_NEAR(static_cast<double>(counts[OpClass::kLoad]) / kN, p.load_frac,
              0.01);
  EXPECT_NEAR(static_cast<double>(counts[OpClass::kStore]) / kN, p.store_frac,
              0.01);
  EXPECT_NEAR(static_cast<double>(counts[OpClass::kBranch]) / kN,
              p.branch_frac, 0.01);
}

TEST(Workloads, MemoryOpsHaveAlignedAddresses) {
  SyntheticWorkload w(profile_for(App::kMcf));
  for (int i = 0; i < 20000; ++i) {
    const Instruction ins = w.next();
    if (ins.is_mem()) {
      EXPECT_EQ(ins.mem_addr % 8, 0u);
      EXPECT_GT(ins.mem_addr, 0u);
    }
  }
}

TEST(Workloads, BranchNextPcConsistent) {
  SyntheticWorkload w(profile_for(App::kGcc));
  for (int i = 0; i < 20000; ++i) {
    const Instruction ins = w.next();
    if (ins.is_branch()) {
      if (!ins.branch_taken) {
        // Fall-through (modulo code-footprint wrap).
        EXPECT_TRUE(ins.next_pc == ins.pc + 4 || ins.next_pc < ins.pc);
      } else {
        EXPECT_NE(ins.next_pc, ins.pc + 4);
      }
    }
  }
}

TEST(Workloads, PcStaysInCodeFootprint) {
  const WorkloadProfile p = profile_for(App::kGzip);
  SyntheticWorkload w(p);
  std::uint64_t min_pc = ~0ULL, max_pc = 0;
  for (int i = 0; i < 50000; ++i) {
    const Instruction ins = w.next();
    min_pc = std::min(min_pc, ins.pc);
    max_pc = std::max(max_pc, ins.pc);
  }
  EXPECT_LT(max_pc - min_pc, p.code_footprint_bytes + 4);
}

TEST(Workloads, McfIsPointerChaseHeavy) {
  // mcf's dominant chase component should produce load-load dependences.
  SyntheticWorkload w(profile_for(App::kMcf));
  int dependent = 0, loads = 0;
  std::int16_t last_load_dest = -1;
  for (int i = 0; i < 50000; ++i) {
    const Instruction ins = w.next();
    if (ins.is_load()) {
      ++loads;
      if (last_load_dest >= 0 && ins.src1 == last_load_dest) ++dependent;
      last_load_dest = ins.dest;
    }
  }
  EXPECT_GT(static_cast<double>(dependent) / loads, 0.15);
}

TEST(Workloads, DistinctAppsProduceDistinctStreams) {
  SyntheticWorkload a(profile_for(App::kGzip));
  SyntheticWorkload b(profile_for(App::kMesa));
  int identical = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next().mem_addr == b.next().mem_addr) ++identical;
  }
  EXPECT_LT(identical, 900);
}

TEST(Workloads, StoresCarryDeterministicValues) {
  SyntheticWorkload a(profile_for(App::kVortex));
  SyntheticWorkload b(profile_for(App::kVortex));
  for (int i = 0; i < 5000; ++i) {
    const Instruction x = a.next();
    const Instruction y = b.next();
    if (x.is_store()) {
      ASSERT_EQ(x.store_value, y.store_value);
    }
  }
}

}  // namespace
}  // namespace icr::trace
