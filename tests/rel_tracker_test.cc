// Campaign-level contract of the reliability tracker:
//   * attaching it never changes simulated behaviour — per-cell metrics are
//     bit-identical with rel on vs off, at 1 and 8 worker threads (the
//     acceptance guard for the src/rel subsystem);
//   * the rel exports themselves are bit-identical across thread counts;
//   * the exposure-conservation invariant holds on real runs, including
//     under fault injection where the recovery hooks fire.
#include "src/rel/rel_tracker.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/campaign.h"
#include "src/sim/results_io.h"

namespace icr::sim {
namespace {

CampaignSpec small_spec(double fault_probability) {
  CampaignSpec spec;
  spec.variants = {
      {"BaseP", core::Scheme::BaseP()},
      {"ICR-P-PS(S)", core::Scheme::IcrPPS_S()
                          .with_decay_window(1000)
                          .with_victim_policy(
                              core::ReplicaVictimPolicy::kDeadFirst)},
  };
  spec.apps = {trace::App::kVortex, trace::App::kGzip};
  spec.instructions = 20000;
  spec.derive_seeds = true;
  spec.base_seed = 0xD5DB2003ULL;
  spec.config.fault_model = fault::FaultModel::kRandom;
  spec.config.fault_probability = fault_probability;
  return spec;
}

TEST(RelCampaign, SimulationBitIdenticalWithRelEnabled) {
  const CampaignSpec off = small_spec(1e-4);
  CampaignSpec on = off;
  on.rel.enabled = true;
  on.rel.probability = 1e-4;

  const CampaignResult base = CampaignRunner(1).run(off);
  const CampaignResult rel1 = CampaignRunner(1).run(on);
  const CampaignResult rel8 = CampaignRunner(8).run(on);

  ASSERT_EQ(base.cells.size(), rel1.cells.size());
  ASSERT_EQ(base.cells.size(), rel8.cells.size());
  for (std::size_t i = 0; i < base.cells.size(); ++i) {
    const std::vector<double> want = metric_values(base.cells[i].result);
    EXPECT_EQ(want, metric_values(rel1.cells[i].result))
        << "cell " << i << ": rel tracker perturbed the simulation";
    EXPECT_EQ(want, metric_values(rel8.cells[i].result))
        << "cell " << i << ": rel tracker perturbed the simulation (8 thr)";
    EXPECT_EQ(base.cells[i].rel, nullptr);
    ASSERT_NE(rel1.cells[i].rel, nullptr);
  }
  // RelOptions are excluded from the experiment fingerprint by design.
  EXPECT_EQ(base.meta.config_hash, rel1.meta.config_hash);
}

TEST(RelCampaign, ExportsBitIdenticalAcrossThreadCounts) {
  CampaignSpec spec = small_spec(0.0);
  spec.rel.enabled = true;
  spec.rel.probability = 1e-3;

  const CampaignResult one = CampaignRunner(1).run(spec);
  const CampaignResult eight = CampaignRunner(8).run(spec);

  const std::string csv = rel_to_csv(one);
  EXPECT_EQ(csv, rel_to_csv(eight));
  EXPECT_EQ(rel_intervals_to_csv(one), rel_intervals_to_csv(eight));
  EXPECT_EQ(rel_to_json(one), rel_to_json(eight));

  // The summary export carries one row per cell plus the header.
  std::size_t lines = 0;
  for (const char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, spec.cell_count() + 1);
}

TEST(RelCampaign, ConservationHoldsOnRealRuns) {
  // Clean run: every accrued exposure unit must land in exactly one
  // conservation bucket.
  CampaignSpec clean = small_spec(0.0);
  clean.rel.enabled = true;
  const CampaignResult clean_result = CampaignRunner(2).run(clean);
  for (const CellResult& cell : clean_result.cells) {
    ASSERT_NE(cell.rel, nullptr);
    const rel::RelReport& r = *cell.rel;
    EXPECT_GT(r.total_exposure, 0.0);
    EXPECT_NEAR(r.conservation_sum(), r.total_exposure,
                1e-9 * (1.0 + r.total_exposure))
        << cell.result.scheme << "/" << cell.result.app;
    EXPECT_TRUE(r.model_supported);
    EXPECT_EQ(r.cycles, cell.result.cycles);
  }

  // Injected run: the repair/refetch hooks fire; the invariant must still
  // hold (recovered mass is credited to the scrub bucket).
  CampaignSpec injected = small_spec(1e-3);
  injected.rel.enabled = true;
  const CampaignResult inj_result = CampaignRunner(2).run(injected);
  for (const CellResult& cell : inj_result.cells) {
    ASSERT_NE(cell.rel, nullptr);
    const rel::RelReport& r = *cell.rel;
    EXPECT_NEAR(r.conservation_sum(), r.total_exposure,
                1e-9 * (1.0 + r.total_exposure))
        << cell.result.scheme << "/" << cell.result.app;
  }
}

TEST(RelCampaign, UnsupportedFaultModelIsFlagged) {
  CampaignSpec spec = small_spec(1e-3);
  spec.config.fault_model = fault::FaultModel::kAdjacent;
  spec.rel.enabled = true;
  spec.variants.resize(1);
  spec.apps.resize(1);
  const CampaignResult result = CampaignRunner(1).run(spec);
  ASSERT_EQ(result.cells.size(), 1u);
  ASSERT_NE(result.cells[0].rel, nullptr);
  // The exposure integrals are still computed, but the outcome split is
  // out of the model's scope for burst models.
  EXPECT_FALSE(result.cells[0].rel->model_supported);
  EXPECT_GT(result.cells[0].rel->total_exposure, 0.0);
}

}  // namespace
}  // namespace icr::sim
