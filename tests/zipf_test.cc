#include "src/util/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace icr {
namespace {

TEST(Zipf, RejectsEmptyUniverse) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

TEST(Zipf, SamplesWithinUniverse) {
  ZipfSampler z(17, 0.9);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(z.sample(rng), 17u);
  }
}

TEST(Zipf, ThetaZeroIsUniform) {
  ZipfSampler z(8, 0.0);
  Rng rng(2);
  std::vector<int> counts(8, 0);
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[z.sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, kDraws / 8, kDraws / 80);
}

TEST(Zipf, SkewFavoursLowRanks) {
  ZipfSampler z(1000, 1.2);
  Rng rng(3);
  int top10 = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (z.sample(rng) < 10) ++top10;
  }
  // With theta=1.2 the top-10 ranks carry well over a third of the mass.
  EXPECT_GT(top10, kDraws / 3);
}

TEST(Zipf, HigherThetaIsMoreSkewed) {
  Rng rng(4);
  auto top1_mass = [&](double theta) {
    ZipfSampler z(100, theta);
    int hits = 0;
    for (int i = 0; i < 20000; ++i) {
      if (z.sample(rng) == 0) ++hits;
    }
    return hits;
  };
  EXPECT_GT(top1_mass(1.3), top1_mass(0.5));
}

TEST(Zipf, DeterministicGivenRngSeed) {
  ZipfSampler z(50, 0.8);
  Rng a(5), b(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(z.sample(a), z.sample(b));
  }
}

TEST(Zipf, SingleItemUniverse) {
  ZipfSampler z(1, 2.0);
  Rng rng(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 0u);
}

// Regression pin for the CDF construction: normalized to exactly 1.0 at the
// last rank (acc/acc is exact in IEEE arithmetic), strictly monotonic, one
// entry per rank. A drifting normalization would silently reshape every
// synthetic workload.
TEST(Zipf, CdfIsNormalizedAndMonotonic) {
  for (const double theta : {0.0, 0.5, 0.999, 1.0, 1.001, 2.5}) {
    for (const std::uint64_t n : {1ULL, 2ULL, 7ULL, 1000ULL}) {
      ZipfSampler z(n, theta);
      const std::vector<double>& cdf = z.cdf();
      ASSERT_EQ(cdf.size(), n) << "n=" << n << " theta=" << theta;
      EXPECT_EQ(cdf.back(), 1.0) << "n=" << n << " theta=" << theta;
      double prev = 0.0;
      for (const double v : cdf) {
        EXPECT_GT(v, prev) << "n=" << n << " theta=" << theta;
        prev = v;
      }
    }
  }
}

// theta == 1 is the classical harmonic case: cdf[k] = H(k+1) / H(n). The
// pow() in the builder must not lose this identity (the theta -> 1 limit is
// where naive implementations special-case and drift).
TEST(Zipf, ThetaOneMatchesHarmonicNumbers) {
  constexpr std::uint64_t n = 200;
  ZipfSampler z(n, 1.0);
  std::vector<double> harmonic(n);
  double acc = 0.0;
  for (std::uint64_t k = 0; k < n; ++k) {
    acc += 1.0 / static_cast<double>(k + 1);
    harmonic[k] = acc;
  }
  for (std::uint64_t k = 0; k < n; ++k) {
    EXPECT_NEAR(z.cdf()[k], harmonic[k] / harmonic[n - 1], 1e-12)
        << "rank " << k;
  }
}

// Rank-probability ratios follow the power law exactly (in the CDF, not
// just statistically): P(0) / P(k) = (k+1)^theta.
TEST(Zipf, RankRatiosFollowPowerLaw) {
  constexpr double theta = 1.2;
  ZipfSampler z(64, theta);
  const std::vector<double>& cdf = z.cdf();
  const double p0 = cdf[0];
  for (const std::size_t k : {1u, 3u, 10u, 63u}) {
    const double pk = cdf[k] - cdf[k - 1];
    EXPECT_NEAR(p0 / pk, std::pow(static_cast<double>(k + 1), theta),
                1e-9 * std::pow(static_cast<double>(k + 1), theta))
        << "rank " << k;
  }
}

// No discontinuity approaching theta = 1: the top-rank mass moves smoothly
// through the harmonic point and stays monotone in theta.
TEST(Zipf, TopRankMassContinuousThroughThetaOne) {
  constexpr std::uint64_t n = 1000;
  const double below = ZipfSampler(n, 0.999).cdf()[0];
  const double at = ZipfSampler(n, 1.0).cdf()[0];
  const double above = ZipfSampler(n, 1.001).cdf()[0];
  EXPECT_LT(below, at);
  EXPECT_LT(at, above);
  EXPECT_NEAR(below, at, 2e-3);
  EXPECT_NEAR(above, at, 2e-3);
}

// n == 1 is degenerate for every skew: the single rank carries all mass and
// sampling never consults more than one CDF entry.
TEST(Zipf, SingleItemUniverseAnyTheta) {
  for (const double theta : {0.0, 0.5, 1.0, 5.0}) {
    ZipfSampler z(1, theta);
    ASSERT_EQ(z.cdf().size(), 1u);
    EXPECT_EQ(z.cdf()[0], 1.0);
    Rng rng(7);
    for (int i = 0; i < 50; ++i) EXPECT_EQ(z.sample(rng), 0u);
  }
}

}  // namespace
}  // namespace icr
