#include "src/util/zipf.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace icr {
namespace {

TEST(Zipf, RejectsEmptyUniverse) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

TEST(Zipf, SamplesWithinUniverse) {
  ZipfSampler z(17, 0.9);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(z.sample(rng), 17u);
  }
}

TEST(Zipf, ThetaZeroIsUniform) {
  ZipfSampler z(8, 0.0);
  Rng rng(2);
  std::vector<int> counts(8, 0);
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[z.sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, kDraws / 8, kDraws / 80);
}

TEST(Zipf, SkewFavoursLowRanks) {
  ZipfSampler z(1000, 1.2);
  Rng rng(3);
  int top10 = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (z.sample(rng) < 10) ++top10;
  }
  // With theta=1.2 the top-10 ranks carry well over a third of the mass.
  EXPECT_GT(top10, kDraws / 3);
}

TEST(Zipf, HigherThetaIsMoreSkewed) {
  Rng rng(4);
  auto top1_mass = [&](double theta) {
    ZipfSampler z(100, theta);
    int hits = 0;
    for (int i = 0; i < 20000; ++i) {
      if (z.sample(rng) == 0) ++hits;
    }
    return hits;
  };
  EXPECT_GT(top1_mass(1.3), top1_mass(0.5));
}

TEST(Zipf, DeterministicGivenRngSeed) {
  ZipfSampler z(50, 0.8);
  Rng a(5), b(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(z.sample(a), z.sample(b));
  }
}

TEST(Zipf, SingleItemUniverse) {
  ZipfSampler z(1, 2.0);
  Rng rng(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 0u);
}

}  // namespace
}  // namespace icr
