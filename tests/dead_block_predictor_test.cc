#include "src/core/dead_block_predictor.h"

#include <gtest/gtest.h>

#include <limits>

namespace icr::core {
namespace {

TEST(DeadBlockPredictor, AggressiveWindowZero) {
  DeadBlockPredictor dbp(0);
  // Dead as soon as the access is complete (any later cycle).
  EXPECT_FALSE(dbp.is_dead(100, 100));
  EXPECT_TRUE(dbp.is_dead(100, 101));
  EXPECT_EQ(dbp.counter_value(100, 100), 0u);
  EXPECT_EQ(dbp.counter_value(100, 101), DeadBlockPredictor::kSaturated);
}

TEST(DeadBlockPredictor, CounterTicksWithGlobalTimer) {
  DeadBlockPredictor dbp(1000);  // tick every 250 cycles
  EXPECT_EQ(dbp.tick_period(), 250u);
  // Accessed at cycle 0: counter counts the global ticks since.
  EXPECT_EQ(dbp.counter_value(0, 0), 0u);
  EXPECT_EQ(dbp.counter_value(0, 249), 0u);
  EXPECT_EQ(dbp.counter_value(0, 250), 1u);
  EXPECT_EQ(dbp.counter_value(0, 749), 2u);
  EXPECT_EQ(dbp.counter_value(0, 999), 3u);
  EXPECT_EQ(dbp.counter_value(0, 1000), 4u);
  EXPECT_EQ(dbp.counter_value(0, 100000), 4u);  // saturates
}

TEST(DeadBlockPredictor, DeadAfterWindowElapses) {
  DeadBlockPredictor dbp(1000);
  EXPECT_FALSE(dbp.is_dead(0, 999));
  EXPECT_TRUE(dbp.is_dead(0, 1000));
  // An access mid-way resets the horizon. The counter ticks at global
  // multiples of 250, so a block accessed at 600 sees ticks at 750, 1000,
  // 1250, 1500 and dies at the fourth.
  EXPECT_FALSE(dbp.is_dead(600, 1499));
  EXPECT_TRUE(dbp.is_dead(600, 1500));
}

TEST(DeadBlockPredictor, TickAlignmentMatchesMaterializedCounters) {
  // The lazy formula must equal an explicit simulation of a 2-bit counter
  // incremented at every multiple of the tick period and reset on access.
  const std::uint64_t window = 800;  // tick = 200
  DeadBlockPredictor dbp(window);
  const std::uint64_t tick = dbp.tick_period();
  for (std::uint64_t last_access : {0ULL, 37ULL, 199ULL, 200ULL, 401ULL}) {
    std::uint32_t counter = 0;
    for (std::uint64_t now = last_access; now < last_access + 3000; ++now) {
      if (now > last_access && now % tick == 0 &&
          counter < DeadBlockPredictor::kSaturated) {
        ++counter;
      }
      ASSERT_EQ(dbp.counter_value(last_access, now), counter)
          << "last=" << last_access << " now=" << now;
    }
  }
}

TEST(DeadBlockPredictor, NeverDeadBeforeAccessTime) {
  DeadBlockPredictor dbp(100);
  EXPECT_FALSE(dbp.is_dead(500, 500));
  EXPECT_FALSE(dbp.is_dead(500, 400));  // time travel guard
}

TEST(DeadBlockPredictor, LargeWindowKeepsBlocksAlive) {
  DeadBlockPredictor dbp(1'000'000);
  EXPECT_FALSE(dbp.is_dead(0, 999'999));
  EXPECT_TRUE(dbp.is_dead(0, 1'000'000));
}

// Window boundary: window 1 cannot tick every quarter cycle, so the tick
// period clamps to one cycle and the counter saturates four cycles after
// the access — the smallest non-aggressive decay horizon.
TEST(DeadBlockPredictor, WindowOneClampsTickToOneCycle) {
  DeadBlockPredictor dbp(1);
  EXPECT_EQ(dbp.tick_period(), 1u);
  EXPECT_EQ(dbp.counter_value(100, 100), 0u);
  EXPECT_EQ(dbp.counter_value(100, 101), 1u);
  EXPECT_EQ(dbp.counter_value(100, 103), 3u);
  EXPECT_EQ(dbp.counter_value(100, 104), DeadBlockPredictor::kSaturated);
  EXPECT_FALSE(dbp.is_dead(100, 103));
  EXPECT_TRUE(dbp.is_dead(100, 104));
}

// Windows 1..4 all clamp to a one-cycle tick (window / 4 rounds to zero);
// from window 8 on, the quarter-window period takes over.
TEST(DeadBlockPredictor, SubQuarterWindowsShareTheClampedPeriod) {
  for (const std::uint64_t window : {1ULL, 2ULL, 3ULL, 4ULL}) {
    DeadBlockPredictor dbp(window);
    EXPECT_EQ(dbp.tick_period(), 1u) << "window=" << window;
    EXPECT_FALSE(dbp.is_dead(0, 3)) << "window=" << window;
    EXPECT_TRUE(dbp.is_dead(0, 4)) << "window=" << window;
  }
  DeadBlockPredictor dbp8(8);
  EXPECT_EQ(dbp8.tick_period(), 2u);
  // Access at cycle 1: global ticks at 2, 4, 6, 8 kill the block at 8.
  EXPECT_FALSE(dbp8.is_dead(1, 7));
  EXPECT_TRUE(dbp8.is_dead(1, 8));
}

// Window boundary: the maximum representable window must not overflow the
// lazy tick arithmetic, and a block accessed at time zero dies only at the
// fourth tick — close to the end of representable time.
TEST(DeadBlockPredictor, MaxWindowHasNoOverflow) {
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  DeadBlockPredictor dbp(max);
  const std::uint64_t tick = dbp.tick_period();
  EXPECT_EQ(tick, max / 4);
  EXPECT_EQ(dbp.counter_value(0, tick - 1), 0u);
  EXPECT_EQ(dbp.counter_value(0, tick), 1u);
  EXPECT_EQ(dbp.counter_value(0, 3 * tick), 3u);
  EXPECT_FALSE(dbp.is_dead(0, 4 * tick - 1));
  EXPECT_TRUE(dbp.is_dead(0, 4 * tick));
  EXPECT_TRUE(dbp.is_dead(0, max));
  // A fresh access near the end of time never dies within representable
  // cycles, and the time-travel guard still holds at the extremes.
  EXPECT_FALSE(dbp.is_dead(max - 1, max));
  EXPECT_FALSE(dbp.is_dead(max, 0));
}

// The lazy counter must match a materialised 2-bit counter for the
// boundary windows too (the existing alignment test covers a mid-size
// window; windows below 8 exercise the clamped tick period).
TEST(DeadBlockPredictor, BoundaryWindowsMatchMaterializedCounters) {
  for (const std::uint64_t window : {1ULL, 2ULL, 5ULL, 8ULL, 13ULL}) {
    DeadBlockPredictor dbp(window);
    const std::uint64_t tick = dbp.tick_period();
    for (const std::uint64_t last_access :
         {std::uint64_t{0}, std::uint64_t{1}, tick, tick + 1}) {
      std::uint32_t counter = 0;
      for (std::uint64_t now = last_access; now < last_access + 64; ++now) {
        if (now > last_access && now % tick == 0 &&
            counter < DeadBlockPredictor::kSaturated) {
          ++counter;
        }
        ASSERT_EQ(dbp.counter_value(last_access, now), counter)
            << "window=" << window << " last=" << last_access
            << " now=" << now;
      }
    }
  }
}

TEST(DeadBlockPredictor, StatsCountQueriesAndDeadVerdicts) {
  DeadBlockPredictor dbp(100);
  EXPECT_EQ(dbp.stats().queries, 0u);
  (void)dbp.is_dead(0, 50);    // alive
  (void)dbp.is_dead(0, 100);   // dead
  (void)dbp.is_dead(0, 1000);  // dead
  EXPECT_EQ(dbp.stats().queries, 3u);
  EXPECT_EQ(dbp.stats().dead_predictions, 2u);
}

}  // namespace
}  // namespace icr::core
