#include "src/core/dead_block_predictor.h"

#include <gtest/gtest.h>

namespace icr::core {
namespace {

TEST(DeadBlockPredictor, AggressiveWindowZero) {
  DeadBlockPredictor dbp(0);
  // Dead as soon as the access is complete (any later cycle).
  EXPECT_FALSE(dbp.is_dead(100, 100));
  EXPECT_TRUE(dbp.is_dead(100, 101));
  EXPECT_EQ(dbp.counter_value(100, 100), 0u);
  EXPECT_EQ(dbp.counter_value(100, 101), DeadBlockPredictor::kSaturated);
}

TEST(DeadBlockPredictor, CounterTicksWithGlobalTimer) {
  DeadBlockPredictor dbp(1000);  // tick every 250 cycles
  EXPECT_EQ(dbp.tick_period(), 250u);
  // Accessed at cycle 0: counter counts the global ticks since.
  EXPECT_EQ(dbp.counter_value(0, 0), 0u);
  EXPECT_EQ(dbp.counter_value(0, 249), 0u);
  EXPECT_EQ(dbp.counter_value(0, 250), 1u);
  EXPECT_EQ(dbp.counter_value(0, 749), 2u);
  EXPECT_EQ(dbp.counter_value(0, 999), 3u);
  EXPECT_EQ(dbp.counter_value(0, 1000), 4u);
  EXPECT_EQ(dbp.counter_value(0, 100000), 4u);  // saturates
}

TEST(DeadBlockPredictor, DeadAfterWindowElapses) {
  DeadBlockPredictor dbp(1000);
  EXPECT_FALSE(dbp.is_dead(0, 999));
  EXPECT_TRUE(dbp.is_dead(0, 1000));
  // An access mid-way resets the horizon. The counter ticks at global
  // multiples of 250, so a block accessed at 600 sees ticks at 750, 1000,
  // 1250, 1500 and dies at the fourth.
  EXPECT_FALSE(dbp.is_dead(600, 1499));
  EXPECT_TRUE(dbp.is_dead(600, 1500));
}

TEST(DeadBlockPredictor, TickAlignmentMatchesMaterializedCounters) {
  // The lazy formula must equal an explicit simulation of a 2-bit counter
  // incremented at every multiple of the tick period and reset on access.
  const std::uint64_t window = 800;  // tick = 200
  DeadBlockPredictor dbp(window);
  const std::uint64_t tick = dbp.tick_period();
  for (std::uint64_t last_access : {0ULL, 37ULL, 199ULL, 200ULL, 401ULL}) {
    std::uint32_t counter = 0;
    for (std::uint64_t now = last_access; now < last_access + 3000; ++now) {
      if (now > last_access && now % tick == 0 &&
          counter < DeadBlockPredictor::kSaturated) {
        ++counter;
      }
      ASSERT_EQ(dbp.counter_value(last_access, now), counter)
          << "last=" << last_access << " now=" << now;
    }
  }
}

TEST(DeadBlockPredictor, NeverDeadBeforeAccessTime) {
  DeadBlockPredictor dbp(100);
  EXPECT_FALSE(dbp.is_dead(500, 500));
  EXPECT_FALSE(dbp.is_dead(500, 400));  // time travel guard
}

TEST(DeadBlockPredictor, LargeWindowKeepsBlocksAlive) {
  DeadBlockPredictor dbp(1'000'000);
  EXPECT_FALSE(dbp.is_dead(0, 999'999));
  EXPECT_TRUE(dbp.is_dead(0, 1'000'000));
}

}  // namespace
}  // namespace icr::core
