#include "src/mem/cache_geometry.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace icr::mem {
namespace {

TEST(CacheGeometry, PaperDefaults) {
  const CacheGeometry dl1 = l1d_geometry_default();
  EXPECT_EQ(dl1.size_bytes, 16u * 1024);
  EXPECT_EQ(dl1.line_bytes, 64u);
  EXPECT_EQ(dl1.associativity, 4u);
  EXPECT_EQ(dl1.num_sets(), 64u);
  EXPECT_EQ(dl1.words_per_line(), 8u);

  const CacheGeometry l1i = l1i_geometry_default();
  EXPECT_EQ(l1i.associativity, 1u);
  EXPECT_EQ(l1i.line_bytes, 32u);
  EXPECT_EQ(l1i.num_sets(), 512u);

  const CacheGeometry l2 = l2_geometry_default();
  EXPECT_EQ(l2.size_bytes, 256u * 1024);
  EXPECT_EQ(l2.num_sets(), 1024u);
}

TEST(CacheGeometry, AddressDecomposition) {
  const CacheGeometry g{16 * 1024, 64, 4};
  const std::uint64_t addr = 0x12345678;
  EXPECT_EQ(g.block_address(addr), addr & ~63ULL);
  EXPECT_EQ(g.line_offset(addr), addr & 63ULL);
  EXPECT_LT(g.set_index(addr), g.num_sets());
  // Consecutive blocks map to consecutive sets.
  EXPECT_EQ((g.set_index(0) + 1) % g.num_sets(), g.set_index(64));
}

TEST(CacheGeometry, ValidationRejectsNonPow2) {
  CacheGeometry g{16 * 1024, 48, 4};
  EXPECT_THROW(g.validate(), std::invalid_argument);
  g = {15000, 64, 4};
  EXPECT_THROW(g.validate(), std::invalid_argument);
  g = {16 * 1024, 64, 3};
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(CacheGeometry, ValidationRejectsTinyLines) {
  CacheGeometry g{1024, 4, 1};
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(CacheGeometry, ValidationRejectsSizeSmallerThanOneSet) {
  CacheGeometry g{128, 64, 4};  // one set needs 256 bytes
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(CacheGeometry, FullyAssociativeAndDirectMapped) {
  CacheGeometry direct{8 * 1024, 64, 1};
  direct.validate();
  EXPECT_EQ(direct.num_sets(), 128u);

  CacheGeometry fully{4 * 1024, 64, 64};
  fully.validate();
  EXPECT_EQ(fully.num_sets(), 1u);
  EXPECT_EQ(fully.set_index(0xABCDEF00), 0u);
}

}  // namespace
}  // namespace icr::mem
