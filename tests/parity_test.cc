#include "src/coding/parity.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace icr {
namespace {

TEST(Parity, ZeroWordHasZeroParity) {
  EXPECT_EQ(byte_parity(0), 0);
  EXPECT_TRUE(parity_ok(0, 0));
}

TEST(Parity, KnownPatterns) {
  // One set bit in byte 0 -> parity bit 0 set.
  EXPECT_EQ(byte_parity(0x01), 0x01);
  // One set bit in byte 7 -> parity bit 7 set.
  EXPECT_EQ(byte_parity(0x0100000000000000ULL), 0x80);
  // Two bits in one byte -> even parity for that byte.
  EXPECT_EQ(byte_parity(0x03), 0x00);
  // 0xFF has eight set bits -> even.
  EXPECT_EQ(byte_parity(0xFF), 0x00);
  // 0x7F has seven -> odd.
  EXPECT_EQ(byte_parity(0x7F), 0x01);
}

TEST(Parity, DetectsEverySingleBitFlip) {
  Rng rng(123);
  for (int trial = 0; trial < 64; ++trial) {
    const std::uint64_t word = rng.next_u64();
    const std::uint8_t stored = byte_parity(word);
    for (unsigned bit = 0; bit < 64; ++bit) {
      const std::uint64_t corrupted = word ^ (1ULL << bit);
      EXPECT_FALSE(parity_ok(corrupted, stored))
          << "bit " << bit << " of " << word;
      // The mismatch mask points at exactly the affected byte.
      EXPECT_EQ(parity_mismatch(corrupted, stored), 1u << (bit / 8));
    }
  }
}

TEST(Parity, MissesDoubleFlipInSameByte) {
  // Byte parity is blind to an even number of flips within one byte — the
  // documented limitation that motivates SEC-DED / replicas.
  const std::uint64_t word = 0xDEADBEEFCAFEF00DULL;
  const std::uint8_t stored = byte_parity(word);
  const std::uint64_t corrupted = word ^ 0x3;  // bits 0 and 1, same byte
  EXPECT_TRUE(parity_ok(corrupted, stored));
}

TEST(Parity, DetectsDoubleFlipAcrossBytes) {
  const std::uint64_t word = 0x0123456789ABCDEFULL;
  const std::uint8_t stored = byte_parity(word);
  const std::uint64_t corrupted = word ^ 0x0101;  // bytes 0 and 1
  EXPECT_FALSE(parity_ok(corrupted, stored));
  EXPECT_EQ(parity_mismatch(corrupted, stored), 0x03);
}

TEST(Parity, RandomWordsRoundTrip) {
  Rng rng(77);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t word = rng.next_u64();
    EXPECT_TRUE(parity_ok(word, byte_parity(word)));
  }
}

}  // namespace
}  // namespace icr
