// Tier-1 contract of the Prometheus/SSE exposition layer
// (src/obs/exposition.h): name sanitizing, label escaping, family
// declaration dedup, the cumulative log2 histogram rendering (every line
// the text format 0.0.4 accepts, +Inf bucket equals the count), registry
// export, SSE framing, and the self-contained dashboard document.
#include "src/obs/exposition.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/stat_registry.h"

namespace icr::obs {
namespace {

// Minimal text-format 0.0.4 line checker: every non-empty line is either a
// comment ("# HELP <name> ..." / "# TYPE <name> counter|gauge|histogram")
// or a sample "<name>[{labels}] <value>" whose metric name is legal. This
// is the same shape the CI smoke's python checker enforces.
void expect_valid_prometheus_text(const std::string& text) {
  std::istringstream lines(text);
  std::string line;
  std::size_t samples = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream fields(line);
      std::string hash, kind, name, rest;
      fields >> hash >> kind >> name >> rest;
      EXPECT_TRUE(kind == "HELP" || kind == "TYPE") << line;
      EXPECT_FALSE(name.empty()) << line;
      if (kind == "TYPE") {
        EXPECT_TRUE(rest == "counter" || rest == "gauge" ||
                    rest == "histogram")
            << line;
      }
      continue;
    }
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
    std::string name = line.substr(0, space);
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(name.back(), '}') << line;
      name = name.substr(0, brace);
    }
    ASSERT_FALSE(name.empty()) << line;
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(name[0])) ||
                name[0] == '_' || name[0] == ':')
        << line;
    for (const char c : name) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                  c == ':')
          << line;
    }
    ++samples;
  }
  EXPECT_GT(samples, 0u);
}

TEST(Exposition, SanitizesMetricNames) {
  EXPECT_EQ(prom_sanitize_name("dl1.replication.successes"),
            "dl1_replication_successes");
  EXPECT_EQ(prom_sanitize_name("read-hits"), "read_hits");
  EXPECT_EQ(prom_sanitize_name("2fast"), "_2fast");
  EXPECT_EQ(prom_sanitize_name("already_legal"), "already_legal");
}

TEST(Exposition, EscapesLabelValues) {
  EXPECT_EQ(prom_escape_label("plain"), "plain");
  EXPECT_EQ(prom_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(prom_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(prom_escape_label("a\nb"), "a\\nb");
}

TEST(Exposition, DeclaresEachFamilyOnceAndRendersSamples) {
  MetricsText out;
  out.family("icr_worker_up", "worker liveness", "gauge");
  out.sample("icr_worker_up", {{"worker", "w0"}}, std::uint64_t{1});
  out.family("icr_worker_up", "worker liveness", "gauge");  // per-worker loop
  out.sample("icr_worker_up", {{"worker", "w1"}}, std::uint64_t{0});
  out.sample("icr_plain", {}, 2.5);

  const std::string& text = out.text();
  EXPECT_EQ(text.find("# HELP icr_worker_up"),
            text.rfind("# HELP icr_worker_up"));
  EXPECT_NE(text.find("icr_worker_up{worker=\"w0\"} 1"), std::string::npos);
  EXPECT_NE(text.find("icr_worker_up{worker=\"w1\"} 0"), std::string::npos);
  EXPECT_NE(text.find("icr_plain 2.5"), std::string::npos);
  expect_valid_prometheus_text(text);
}

TEST(Exposition, RendersLog2HistogramCumulatively) {
  Log2Histogram hist;
  hist.record(0);   // zero bucket
  hist.record(3);   // [2,4)
  hist.record(3);   // [2,4)
  hist.record(40);  // [32,64)

  MetricsText out;
  out.histogram("icr_latency_ms", "unit latency", hist);
  const std::string& text = out.text();

  // Cumulative `le` counts at the bucket upper bounds...
  EXPECT_NE(text.find("icr_latency_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("icr_latency_ms_bucket{le=\"4\"} 3"), std::string::npos);
  EXPECT_NE(text.find("icr_latency_ms_bucket{le=\"64\"} 4"),
            std::string::npos);
  // ...and the mandatory +Inf bucket equals _count.
  EXPECT_NE(text.find("icr_latency_ms_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("icr_latency_ms_count 4"), std::string::npos);
  // _sum is the lower-bound estimate: 0 + 2 + 2 + 32.
  EXPECT_NE(text.find("icr_latency_ms_sum 36"), std::string::npos);
  expect_valid_prometheus_text(text);
}

TEST(Exposition, ExportsRegistryCountersAndHistograms) {
  std::uint64_t hits = 7;
  StatRegistry registry;
  registry.register_counter("dl1.read-hits", &hits);
  registry.register_gauge("dl1.occupancy", [] { return std::uint64_t{3}; });
  registry.histogram("dl1.burst")->record(5);

  MetricsText out;
  append_registry(out, registry, "icr_stat", {{"scheme", "ICR-P-PS(S)"}});
  const std::string& text = out.text();
  EXPECT_NE(text.find("icr_stat_dl1_read_hits{scheme=\"ICR-P-PS(S)\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("icr_stat_dl1_occupancy{scheme=\"ICR-P-PS(S)\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("icr_stat_dl1_burst_count"), std::string::npos);
  expect_valid_prometheus_text(text);
}

TEST(Exposition, FramesServerSentEvents) {
  EXPECT_EQ(sse_event(0, "{\"a\":1}"), "id: 0\ndata: {\"a\":1}\n\n");
  EXPECT_EQ(sse_event(7, "{}", "drained"),
            "id: 7\nevent: drained\ndata: {}\n\n");
}

TEST(Exposition, DashboardIsSelfContainedAndWiredToTheEndpoints) {
  const std::string html = dashboard_html();
  EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
  // Polls /status, subscribes to /events, links the scrape endpoint.
  EXPECT_NE(html.find("/status"), std::string::npos);
  EXPECT_NE(html.find("EventSource"), std::string::npos);
  EXPECT_NE(html.find("/metrics"), std::string::npos);
  // Self-contained: no external scripts, styles or images.
  EXPECT_EQ(html.find("src=\"http"), std::string::npos);
  EXPECT_EQ(html.find("href=\"http"), std::string::npos);
}

}  // namespace
}  // namespace icr::obs
