#include "src/obs/stat_registry.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace icr::obs {
namespace {

TEST(Log2Histogram, BucketBoundaries) {
  // Bucket 0 is exclusively the value zero.
  EXPECT_EQ(Log2Histogram::bucket_index(0), 0u);
  // Bucket 1 + k holds [2^k, 2^(k+1)).
  EXPECT_EQ(Log2Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Log2Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Log2Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Log2Histogram::bucket_index(7), 3u);
  EXPECT_EQ(Log2Histogram::bucket_index(8), 4u);
  EXPECT_EQ(Log2Histogram::bucket_index((1ull << 31) - 1), 31u);
  EXPECT_EQ(Log2Histogram::bucket_index(1ull << 31), 32u);
  EXPECT_EQ(Log2Histogram::bucket_index((1ull << 32) - 1), 32u);
}

TEST(Log2Histogram, OverflowBucket) {
  EXPECT_EQ(Log2Histogram::bucket_index(1ull << 32),
            Log2Histogram::kOverflowBucket);
  EXPECT_EQ(Log2Histogram::bucket_index(~0ull),
            Log2Histogram::kOverflowBucket);

  Log2Histogram h;
  h.record(1ull << 32);
  h.record(~0ull);
  EXPECT_EQ(h.bucket(Log2Histogram::kOverflowBucket), 2u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Log2Histogram, LowerBoundsInvertBucketIndex) {
  EXPECT_EQ(Log2Histogram::bucket_lower_bound(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_lower_bound(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_lower_bound(2), 2u);
  EXPECT_EQ(Log2Histogram::bucket_lower_bound(3), 4u);
  EXPECT_EQ(Log2Histogram::bucket_lower_bound(Log2Histogram::kOverflowBucket),
            1ull << 32);
  // Every bucket's lower bound maps back into that bucket.
  for (std::uint32_t b = 0; b < Log2Histogram::kBuckets; ++b) {
    EXPECT_EQ(Log2Histogram::bucket_index(Log2Histogram::bucket_lower_bound(b)),
              b)
        << "bucket " << b;
  }
}

TEST(Log2Histogram, RecordAndMerge) {
  Log2Histogram a;
  a.record(0);
  a.record(5);
  a.record(5);

  Log2Histogram b;
  b.record(5);
  b.record(1024);

  a.merge(b);
  EXPECT_EQ(a.total(), 5u);
  EXPECT_EQ(a.bucket(0), 1u);                              // the zero
  EXPECT_EQ(a.bucket(Log2Histogram::bucket_index(5)), 3u); // three fives
  EXPECT_EQ(a.bucket(Log2Histogram::bucket_index(1024)), 1u);
}

TEST(StatRegistry, CountersAreLiveViews) {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  StatRegistry reg;
  reg.register_counter("cache.hits", &hits);
  reg.register_counter("cache.misses", &misses);

  hits = 7;
  misses = 3;
  EXPECT_EQ(reg.snapshot_counters(), (std::vector<std::uint64_t>{7, 3}));
  hits = 8;
  EXPECT_EQ(reg.counter_value("cache.hits"), 8u);
  EXPECT_EQ(reg.counter_value("no.such.counter"), 0u);
  EXPECT_EQ(reg.counter_names(),
            (std::vector<std::string>{"cache.hits", "cache.misses"}));
}

TEST(StatRegistry, GaugesEvaluateLazily) {
  std::uint64_t level = 0;
  StatRegistry reg;
  reg.register_gauge("queue.depth", [&level] { return level; });
  level = 42;
  EXPECT_EQ(reg.snapshot_gauges(), (std::vector<std::uint64_t>{42}));
}

TEST(StatRegistry, HistogramIsIdempotentByName) {
  StatRegistry reg;
  Log2Histogram* h1 = reg.histogram("dl1.site_distance");
  Log2Histogram* h2 = reg.histogram("dl1.site_distance");
  EXPECT_EQ(h1, h2);
  h1->record(32);
  EXPECT_EQ(reg.find_histogram("dl1.site_distance")->total(), 1u);
  EXPECT_EQ(reg.find_histogram("unknown"), nullptr);
  EXPECT_EQ(reg.histogram_names(),
            (std::vector<std::string>{"dl1.site_distance"}));
}

}  // namespace
}  // namespace icr::obs
