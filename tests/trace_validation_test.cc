// Tier-2 validation harness: the synthetic workload generators against a
// real (checked-in, QEMU-log-imported) trace, per scheme, on the metrics
// the paper's figures rest on — dL1 miss rate and replication coverage.
// The point is not that synthetic and imported traces agree numerically
// (they model different programs) but that the replay path drives every
// scheme into the same sane operating envelope the generators do, and that
// the importer itself is bit-deterministic.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/scheme.h"
#include "src/sim/simulator.h"
#include "src/trace/qemu_import.h"
#include "src/trace/trace_v2.h"
#include "src/trace/workloads.h"
#include "src/util/fs.h"

namespace icr {
namespace {

std::string fixture_log() {
  return std::string(ICR_TEST_DATA_DIR) + "/qemu_mm_log.txt";
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// The schemes the comparison sweeps: plain parity, the strongest
// parity-protected ICR variant, and an ECC-protected ICR variant.
struct SchemeCase {
  const char* name;
  core::Scheme scheme;
};

std::vector<SchemeCase> scheme_cases() {
  return {{"BaseP", core::Scheme::BaseP()},
          {"ICR-P-PS(S)", core::Scheme::IcrPPS_S()},
          {"ICR-ECC-PP(LS)", core::Scheme::IcrEccPP_LS()}};
}

TEST(TraceValidation, ImportIsBitDeterministic) {
  const std::string out_a = temp_path("mm_a.icrt");
  const std::string out_b = temp_path("mm_b.icrt");
  const trace::ImportStats stats_a =
      trace::import_qemu_log(fixture_log(), out_a);
  const trace::ImportStats stats_b =
      trace::import_qemu_log(fixture_log(), out_b);
  EXPECT_EQ(stats_a.records, stats_b.records);
  EXPECT_EQ(util::fs::read_text_file(out_a), util::fs::read_text_file(out_b));

  // Pinned provenance of the checked-in fixture: any change to the import
  // pipeline (parsing, branch classification, register synthesis, delta
  // codec) that alters the produced stream shows up here first.
  const trace::TraceInfo info = trace::validate_trace(out_a);
  EXPECT_EQ(info.records, 2945u);
  EXPECT_EQ(info.fingerprint, 0x5bdb8470ebc882bcULL);
  EXPECT_EQ(stats_a.loads, 1024u);
  EXPECT_EQ(stats_a.stores, 128u);
  EXPECT_EQ(stats_a.branches, 576u);
  std::remove(out_a.c_str());
  std::remove(out_b.c_str());
}

TEST(TraceValidation, ImportedTraceDrivesEverySchemeLikeTheGenerators) {
  const std::string imported = temp_path("mm_run.icrt");
  (void)trace::import_qemu_log(fixture_log(), imported);
  const trace::TraceInfo info = trace::probe_trace(imported);
  // Replay less than the trace holds: the pipeline fetches ahead of the
  // commit target and must not wrap to the trace start (docs/TRACES.md).
  const std::uint64_t budget = info.records - 400;

  const sim::SimConfig config = sim::SimConfig::table1();
  for (const SchemeCase& test_case : scheme_cases()) {
    SCOPED_TRACE(test_case.name);

    // Imported-trace replay.
    trace::OpenedTrace opened = trace::open_trace(imported);
    sim::Simulator replay(config, test_case.scheme,
                          std::move(opened.source), "mm");
    const sim::RunResult real = replay.run(budget);

    // Synthetic generator of comparable size.
    sim::Simulator synthetic(config, test_case.scheme,
                             trace::profile_for(trace::App::kGzip));
    const sim::RunResult synth = synthetic.run(budget);

    // Both sources must land every scheme in a sane operating envelope:
    // the caches actually miss (and actually hit), and ICR schemes
    // actually replicate, on real access patterns as on synthetic ones.
    EXPECT_GT(real.dl1.miss_rate(), 0.0);
    EXPECT_LT(real.dl1.miss_rate(), 0.5);
    EXPECT_GT(synth.dl1.miss_rate(), 0.0);
    EXPECT_LT(synth.dl1.miss_rate(), 0.5);
    EXPECT_GT(real.cycles, budget / 4);
    if (test_case.scheme.replication_enabled) {
      EXPECT_GT(real.dl1.replication_opportunities, 0u);
      EXPECT_GT(real.dl1.replication_ability(), 0.0);
      EXPECT_LE(real.dl1.replication_ability(), 1.0);
      EXPECT_GT(synth.dl1.replication_ability(), 0.0);
    }

    // And the replay itself is deterministic: a second pass over the same
    // file reproduces every counter bit for bit.
    trace::OpenedTrace again = trace::open_trace(imported);
    sim::Simulator rerun(config, test_case.scheme, std::move(again.source),
                         "mm");
    EXPECT_EQ(sim::counter_vector(rerun.run(budget)),
              sim::counter_vector(real));
  }
  std::remove(imported.c_str());
}

}  // namespace
}  // namespace icr
