// Background scrubbing extension: errors are repaired between accesses.
#include <gtest/gtest.h>

#include "src/core/icr_cache.h"
#include "tests/test_util.h"

namespace icr::core {
namespace {

using test::CacheFixture;

// Corrupts the primary copy of `addr` and returns (set, way).
void corrupt(core::IcrCache& c, std::uint64_t addr) {
  const auto& g = c.geometry();
  const std::uint32_t set = g.set_index(addr);
  for (std::uint32_t w = 0; w < g.associativity; ++w) {
    const IcrLine& l = c.line(set, w);
    if (l.valid && !l.replica && l.block_addr == g.block_address(addr)) {
      c.flip_data_bit(set, w, 0, 0);
      return;
    }
  }
  FAIL() << "block not resident";
}

// Runs the scrubber until it has swept every set once.
void full_sweep(core::IcrCache& c, std::uint64_t start_cycle) {
  const std::uint64_t interval = c.scheme().scrub_interval;
  for (std::uint32_t i = 0; i <= c.num_sets(); ++i) {
    c.advance_scrubber(start_cycle + i * interval);
  }
}

TEST(Scrubber, DisabledByDefault) {
  CacheFixture f(Scheme::BaseP());
  f.dl1->load(0x1000, 0);
  for (std::uint64_t cycle = 0; cycle < 10000; ++cycle) {
    f.dl1->advance_scrubber(cycle);
  }
  EXPECT_EQ(f.dl1->stats().scrub_lines_checked, 0u);
}

TEST(Scrubber, RepairsCleanBlockBeforeLoadSeesIt) {
  CacheFixture f(Scheme::BaseP().with_scrubbing(10));
  f.dl1->load(0x1000, 0);
  corrupt(*f.dl1, 0x1000);
  full_sweep(*f.dl1, 10);
  EXPECT_GE(f.dl1->stats().scrub_corrections, 1u);
  // The subsequent load is clean: no detection, correct value.
  const auto r = f.dl1->load(0x1000, 100000);
  EXPECT_FALSE(r.error_detected);
  EXPECT_EQ(r.value, mem::BackingStore::initial_word(0x1000));
}

TEST(Scrubber, RepairsDirtyBlockFromReplica) {
  CacheFixture f(Scheme::IcrPPS_S().with_scrubbing(10));
  f.dl1->store(0x1000, 42, 0);  // dirty + replicated
  corrupt(*f.dl1, 0x1000);
  full_sweep(*f.dl1, 10);
  EXPECT_GE(f.dl1->stats().scrub_corrections, 1u);
  const auto r = f.dl1->load(0x1000, 100000);
  EXPECT_FALSE(r.error_detected);
  EXPECT_EQ(r.value, 42u);
}

TEST(Scrubber, EccSchemeScrubsWithSecDed) {
  CacheFixture f(Scheme::BaseECC().with_scrubbing(10));
  f.dl1->store(0x1000, 42, 0);  // dirty; ECC protected
  corrupt(*f.dl1, 0x1000);
  full_sweep(*f.dl1, 10);
  EXPECT_GE(f.dl1->stats().scrub_corrections, 1u);
  const auto r = f.dl1->load(0x1000, 100000);
  EXPECT_FALSE(r.error_detected);
  EXPECT_EQ(r.value, 42u);
}

TEST(Scrubber, DirtyParityOnlyWordStaysDetectable) {
  CacheFixture f(Scheme::BaseP().with_scrubbing(10));
  f.dl1->store(0x1000, 42, 0);  // dirty, unreplicated, parity only
  corrupt(*f.dl1, 0x1000);
  full_sweep(*f.dl1, 10);
  EXPECT_GE(f.dl1->stats().scrub_uncorrectable, 1u);
  // The load still detects (and counts) the loss — the scrubber must not
  // launder it into silent corruption.
  const auto r = f.dl1->load(0x1000, 100000);
  EXPECT_TRUE(r.error_detected);
  EXPECT_TRUE(r.unrecoverable);
}

TEST(Scrubber, PreventsEccDoubleBitAccumulation) {
  // Two strikes on the same word, far apart in time: with scrubbing the
  // first is repaired before the second arrives, so SEC-DED never faces a
  // double-bit error.
  CacheFixture with(Scheme::BaseECC().with_scrubbing(10));
  CacheFixture without(Scheme::BaseECC());
  for (auto* f : {&with, &without}) {
    f->dl1->store(0x1000, 42, 0);
  }
  auto strike = [](core::IcrCache& c, std::uint32_t bit) {
    const auto& g = c.geometry();
    const std::uint32_t set = g.set_index(0x1000);
    for (std::uint32_t w = 0; w < g.associativity; ++w) {
      const IcrLine& l = c.line(set, w);
      if (l.valid && l.block_addr == g.block_address(0x1000)) {
        c.flip_data_bit(set, w, 0, bit);
      }
    }
  };
  strike(*with.dl1, 0);
  strike(*without.dl1, 0);
  full_sweep(*with.dl1, 10);  // repairs the first flip in `with`
  strike(*with.dl1, 1);
  strike(*without.dl1, 1);

  const auto r_with = with.dl1->load(0x1000, 100000);
  const auto r_without = without.dl1->load(0x1000, 100000);
  EXPECT_TRUE(r_with.error_recovered);  // single bit: corrected
  EXPECT_EQ(r_with.value, 42u);
  EXPECT_TRUE(r_without.unrecoverable);  // accumulated double bit
}

TEST(Scrubber, ChecksLinesRoundRobin) {
  CacheFixture f(Scheme::BaseP().with_scrubbing(5));
  // Fill several sets.
  for (std::uint64_t b = 0; b < 32; ++b) f.dl1->load(b * 64, b);
  full_sweep(*f.dl1, 100);
  EXPECT_GE(f.dl1->stats().scrub_lines_checked, 32u);
}

}  // namespace
}  // namespace icr::core
