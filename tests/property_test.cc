// Parameterized property sweeps across schemes, geometries, policies and
// distances — the invariants must hold for every point in the design space.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

#include "src/coding/parity.h"
#include "src/coding/secded.h"
#include "src/core/icr_cache.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace icr::core {
namespace {

using test::CacheFixture;

// ---------------------------------------------------------------------------
// Every paper scheme preserves structural invariants and architectural data
// under a random mixed workload.
// ---------------------------------------------------------------------------
class SchemeProperty : public ::testing::TestWithParam<int> {};

TEST_P(SchemeProperty, InvariantsAndDataIntegrity) {
  const Scheme scheme = Scheme::all_paper_schemes()[GetParam()];
  CacheFixture f(scheme);
  Rng rng(1000 + GetParam());
  std::unordered_map<std::uint64_t, std::uint64_t> golden;

  for (std::uint64_t cycle = 0; cycle < 6000; ++cycle) {
    const std::uint64_t addr = rng.next_below(4096) * 8;
    if (rng.bernoulli(0.35)) {
      const std::uint64_t value = rng.next_u64();
      f.dl1->store(addr, value, cycle);
      golden[addr] = value;
    } else {
      const auto r = f.dl1->load(addr, cycle);
      const auto it = golden.find(addr);
      const std::uint64_t expected =
          it != golden.end() ? it->second
                             : mem::BackingStore::initial_word(addr);
      ASSERT_EQ(r.value, expected) << scheme.name << " @" << addr;
      ASSERT_FALSE(r.error_detected);  // no injector in this test
    }
  }
  f.dl1->check_invariants();
  // Latency sanity for every scheme: stores 1 cycle, loads bounded.
  EXPECT_EQ(f.dl1->store(8, 1, 7000).latency, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllPaperSchemes, SchemeProperty,
                         ::testing::Range(0, 10),
                         [](const auto& info) {
                           std::string n =
                               Scheme::all_paper_schemes()[info.param].name;
                           for (char& c : n) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return n;
                         });

// ---------------------------------------------------------------------------
// Geometry sweep: the ICR cache works for any power-of-two geometry.
// ---------------------------------------------------------------------------
class GeometryProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GeometryProperty, ReplicationWorksAcrossGeometries) {
  const auto [size_kb, line, ways] = GetParam();
  mem::CacheGeometry g{static_cast<std::uint32_t>(size_kb * 1024),
                       static_cast<std::uint32_t>(line),
                       static_cast<std::uint32_t>(ways)};
  CacheFixture f(Scheme::IcrPPS_S(), g);
  Rng rng(7 * size_kb + line + ways);
  for (std::uint64_t cycle = 0; cycle < 3000; ++cycle) {
    const std::uint64_t addr = rng.next_below(8192) * 8;
    if (rng.bernoulli(0.4)) {
      f.dl1->store(addr, rng.next_u64(), cycle);
    } else {
      f.dl1->load(addr, cycle);
    }
  }
  f.dl1->check_invariants();
  EXPECT_GT(f.dl1->stats().replicas_created, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometryProperty,
    ::testing::Combine(::testing::Values(4, 8, 16, 32),   // KB
                       ::testing::Values(32, 64),         // line bytes
                       ::testing::Values(1, 2, 4, 8)));   // ways

// ---------------------------------------------------------------------------
// Distance sweep: replicas land at the configured distance and remain
// consistent, for every distance including the degenerate horizontal case.
// ---------------------------------------------------------------------------
class DistanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(DistanceProperty, ReplicaAlwaysAtConfiguredDistance) {
  ReplicationConfig rep;
  rep.first_distance = Distance::absolute(GetParam());
  CacheFixture f(Scheme::IcrPPS_S().with_replication(rep));
  const auto& g = f.dl1->geometry();
  Rng rng(GetParam());
  for (std::uint64_t cycle = 0; cycle < 2000; ++cycle) {
    f.dl1->store(rng.next_below(2048) * 8, rng.next_u64(), cycle);
  }
  // check_invariants verifies every replica sits at a candidate distance.
  f.dl1->check_invariants();
  // And at least some replication happened.
  EXPECT_GT(f.dl1->stats().replicas_created, 0u);
  (void)g;
}

INSTANTIATE_TEST_SUITE_P(Distances, DistanceProperty,
                         ::testing::Values(0, 1, 7, 16, 32, 63));

// ---------------------------------------------------------------------------
// Victim-policy sweep under both decay regimes.
// ---------------------------------------------------------------------------
class VictimPolicyProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(VictimPolicyProperty, NoLivePrimaryEverDisplacedByReplica) {
  const auto [policy_idx, window] = GetParam();
  const auto policy = static_cast<ReplicaVictimPolicy>(policy_idx);
  CacheFixture f(
      Scheme::IcrPPS_S().with_victim_policy(policy).with_decay_window(window));
  const auto& g = f.dl1->geometry();
  Rng rng(policy_idx * 31 + 7);

  // Working set that fits: every block stays live under a large window.
  for (std::uint64_t cycle = 0; cycle < 3000; ++cycle) {
    const std::uint64_t addr = rng.next_below(128) * 8;  // 16 blocks
    if (rng.bernoulli(0.5)) {
      f.dl1->store(addr, cycle, cycle);
    } else {
      f.dl1->load(addr, cycle);
    }
    // The 16 hot blocks must never miss once resident (they are live;
    // replicas may never displace them). Spot-check with probes.
  }
  f.dl1->check_invariants();
  // All 16 blocks resident at the end: load each and expect a hit.
  for (std::uint64_t b = 0; b < 16; ++b) {
    EXPECT_TRUE(f.dl1->load(b * 64, 4000 + b).hit)
        << to_string(policy) << " window=" << window;
  }
  (void)g;
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndWindows, VictimPolicyProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(std::uint64_t{0},
                                         std::uint64_t{1000},
                                         std::uint64_t{100000})));

// ---------------------------------------------------------------------------
// Coding properties on random words.
// ---------------------------------------------------------------------------
class CodingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodingProperty, SecDedAndParityRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t word = rng.next_u64();
    ASSERT_TRUE(parity_ok(word, byte_parity(word)));
    ASSERT_EQ(secded_decode(word, secded_encode(word)).status,
              SecDedStatus::kClean);
    // Random single flip: always corrected back to the original.
    const unsigned bit = static_cast<unsigned>(rng.next_below(64));
    const SecDedResult r =
        secded_decode(word ^ (1ULL << bit), secded_encode(word));
    ASSERT_EQ(r.status, SecDedStatus::kCorrectedData);
    ASSERT_EQ(r.data, word);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodingProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace icr::core

// ---------------------------------------------------------------------------
// Window-plan invariants of the sampling controller (src/sim/sampling.h):
// every (budget, warmup, windows, width, mode, seed) tuple must yield a
// sorted, non-overlapping, in-budget plan whose spans partition the budget,
// and the weighted reconstruction must be exact on piecewise-constant data.
// ---------------------------------------------------------------------------
#include "src/sim/sampling.h"

namespace icr::sim {
namespace {

TEST(SamplingProperty, RandomPlansAreAlwaysWellFormed) {
  Rng rng(0x5A3DF00DULL);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t budget = 1 + rng.next_below(1u << 20);
    SamplingOptions options;
    options.warmup_instructions = rng.next_below(budget + budget / 2 + 1);
    options.windows = static_cast<std::uint32_t>(rng.next_below(33));
    options.window_width = rng.next_below(budget / 4 + 1);
    options.mode =
        rng.bernoulli(0.5) ? SampleMode::kRandom : SampleMode::kSystematic;
    options.seed = rng.next_u64();

    const std::vector<SampleWindow> plan = plan_windows(budget, options);
    ASSERT_FALSE(plan.empty())
        << "budget " << budget << " warmup " << options.warmup_instructions;
    std::uint64_t span_sum = 0;
    for (std::size_t j = 0; j < plan.size(); ++j) {
      EXPECT_LT(plan[j].begin, plan[j].end) << "trial " << trial;
      EXPECT_LE(plan[j].end, budget) << "trial " << trial;
      EXPECT_GE(plan[j].width(), std::min(budget, kMinWindowWidth))
          << "trial " << trial;
      if (j > 0) {
        EXPECT_GE(plan[j].begin, plan[j - 1].end)
            << "trial " << trial << " window " << j;
      }
      span_sum += plan[j].span;
    }
    EXPECT_EQ(span_sum, budget) << "trial " << trial;
    // Plans are pure functions of (budget, options).
    const std::vector<SampleWindow> again = plan_windows(budget, options);
    ASSERT_EQ(again.size(), plan.size());
    for (std::size_t j = 0; j < plan.size(); ++j) {
      EXPECT_EQ(again[j].begin, plan[j].begin);
      EXPECT_EQ(again[j].end, plan[j].end);
      EXPECT_EQ(again[j].span, plan[j].span);
    }
  }
}

TEST(SamplingProperty, WeightedReconstructionExactOnPiecewiseConstantRates) {
  // Synthetic run whose per-instruction counter rates are constant: any
  // window measures rate * width, so the span-weighted reconstruction must
  // recover rate * budget exactly (up to the documented llround).
  Rng rng(0xC0FFEEULL);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t budget = 4096 + rng.next_below(1u << 18);
    SamplingOptions options;
    options.warmup_instructions = rng.next_below(budget / 2);
    options.windows = 1 + static_cast<std::uint32_t>(rng.next_below(12));
    options.mode =
        rng.bernoulli(0.5) ? SampleMode::kRandom : SampleMode::kSystematic;
    options.seed = rng.next_u64();
    const std::vector<SampleWindow> plan = plan_windows(budget, options);

    const std::uint64_t loads_per_instr = 1 + rng.next_below(4);
    const std::uint64_t cycles_per_instr = 1 + rng.next_below(8);
    std::vector<RunResult> deltas;
    std::vector<double> weights;
    for (const SampleWindow& w : plan) {
      RunResult delta;
      delta.instructions = w.width();
      delta.cycles = w.width() * cycles_per_instr;
      delta.dl1.loads = w.width() * loads_per_instr;
      deltas.push_back(delta);
      weights.push_back(static_cast<double>(w.span) /
                        static_cast<double>(w.width()));
    }
    const RunResult estimate = reconstruct_weighted(deltas, weights);
    // Sum_j (span_j/width_j) * (rate * width_j) = rate * budget, exactly.
    EXPECT_EQ(estimate.instructions, budget) << "trial " << trial;
    EXPECT_EQ(estimate.cycles, budget * cycles_per_instr)
        << "trial " << trial;
    EXPECT_EQ(estimate.dl1.loads, budget * loads_per_instr)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace icr::sim
