#include "src/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

namespace icr::util {
namespace {

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

TEST(ThreadPool, ZeroRequestClampsToHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, CompletesAllTasksUnderContention) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.submit([&counter] {
      counter.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  parallel_for(pool, hits.size(),
               [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsANoOp) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForRethrowsTaskException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 64,
                            [](std::size_t i) {
                              if (i == 13) {
                                throw std::runtime_error("unlucky");
                              }
                            }),
               std::runtime_error);
}

TEST(ThreadPool, NestedSubmissionDoesNotDeadlock) {
  ThreadPool pool(2);
  auto outer = pool.submit([&pool] {
    auto inner = pool.submit([] { return 1; });
    // Waiting inside a worker is safe for plain submit because the inner
    // task runs on the other worker (or this pool keeps draining).
    return inner.get() + 1;
  });
  EXPECT_EQ(outer.get(), 2);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Every worker blocks in an inner parallel_for at once; the help-while-
  // waiting loop must keep the pool making progress.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  parallel_for(pool, 8, [&pool, &total](std::size_t) {
    parallel_for(pool, 8, [&total](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, ManyIndicesOnSingleWorker) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  parallel_for(pool, 5000, [&count](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 5000);
}

}  // namespace
}  // namespace icr::util
