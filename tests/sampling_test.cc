// Tier-1 contracts of checkpointed warmup + interval sampling
// (src/sim/sampling.h): window plans are well-formed, disabled sampling is
// an exact passthrough, full-coverage sampling is bit-identical to an
// unsampled run, sampled campaigns stay deterministic across thread counts,
// and provenance/config-hash plumbing only engages when sampling does.
#include "src/sim/sampling.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/campaign.h"
#include "src/sim/results_io.h"
#include "src/sim/simulator.h"

namespace icr::sim {
namespace {

SimConfig test_config() {
  SimConfig config = SimConfig::table1();
  config.fault_model = fault::FaultModel::kRandom;
  config.fault_probability = 1e-4;
  return config;
}

Simulator make_sim(const SimConfig& config) {
  return Simulator(config, core::Scheme::IcrPPS_S(),
                   trace::profile_for(trace::App::kGzip));
}

void expect_same_result(const RunResult& a, const RunResult& b,
                        const char* what) {
  const std::vector<std::uint64_t> ca = counter_vector(a);
  const std::vector<std::uint64_t> cb = counter_vector(b);
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i], cb[i]) << what << ": counter " << i;
  }
  const std::vector<double> ma = metric_values(a);
  const std::vector<double> mb = metric_values(b);
  for (std::size_t m = 0; m < ma.size(); ++m) {
    EXPECT_EQ(ma[m], mb[m]) << what << ": metric " << metric_columns()[m];
  }
  EXPECT_EQ(a.energy.total_nj(), b.energy.total_nj()) << what;
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.app, b.app);
}

TEST(PlanWindows, SystematicPlanIsSortedDisjointAndPartitionsBudget) {
  SamplingOptions options;
  options.warmup_instructions = 10000;
  options.windows = 8;
  options.window_width = 2000;
  const std::uint64_t budget = 100000;
  const std::vector<SampleWindow> plan = plan_windows(budget, options);
  ASSERT_EQ(plan.size(), 8u);
  std::uint64_t span_sum = 0;
  for (std::size_t j = 0; j < plan.size(); ++j) {
    EXPECT_GE(plan[j].begin, options.warmup_instructions);
    EXPECT_LE(plan[j].end, budget);
    EXPECT_EQ(plan[j].width(), 2000u);
    if (j > 0) EXPECT_GE(plan[j].begin, plan[j - 1].end);
    span_sum += plan[j].span;
  }
  EXPECT_EQ(span_sum, budget);
}

TEST(PlanWindows, WarmupOnlyIsOneWindowToTheEnd) {
  SamplingOptions options;
  options.warmup_instructions = 30000;
  const std::vector<SampleWindow> plan = plan_windows(100000, options);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].begin, 30000u);
  EXPECT_EQ(plan[0].end, 100000u);
  EXPECT_EQ(plan[0].span, 100000u);
}

TEST(PlanWindows, OversizedWarmupStillLeavesAMeasurableWindow) {
  SamplingOptions options;
  options.warmup_instructions = 1 << 20;  // larger than the budget
  options.windows = 4;
  const std::uint64_t budget = 10000;
  const std::vector<SampleWindow> plan = plan_windows(budget, options);
  ASSERT_FALSE(plan.empty());
  std::uint64_t span_sum = 0;
  for (const SampleWindow& w : plan) {
    EXPECT_GE(w.width(), std::min(budget, kMinWindowWidth));
    EXPECT_LE(w.end, budget);
    span_sum += w.span;
  }
  EXPECT_EQ(span_sum, budget);
}

TEST(PlanWindows, RequestThatCannotFitDropsWindowsNotWidth) {
  SamplingOptions options;
  options.warmup_instructions = 0;
  options.windows = 100;
  options.window_width = 5000;
  // Only 4 windows of 5000 fit in 20000.
  const std::vector<SampleWindow> plan = plan_windows(20000, options);
  ASSERT_EQ(plan.size(), 4u);
  for (const SampleWindow& w : plan) EXPECT_EQ(w.width(), 5000u);
}

TEST(Sampling, DisabledControllerIsExactPassthrough) {
  const SimConfig config = test_config();
  Simulator plain = make_sim(config);
  const RunResult expected = plain.run(50000);

  Simulator sampled_sim = make_sim(config);
  SamplingOptions options;  // enabled() == false
  const SampledRunResult sampled =
      SamplingController(sampled_sim, options).run(50000);
  EXPECT_FALSE(sampled.provenance.sampled);
  EXPECT_EQ(sampled.provenance.measured_instructions, 50000u);
  expect_same_result(expected, sampled.estimate, "disabled passthrough");
}

TEST(Sampling, FullCoverageWindowIsBitIdenticalToPlainRun) {
  const SimConfig config = test_config();
  Simulator plain = make_sim(config);
  const RunResult expected = plain.run(50000);

  Simulator sampled_sim = make_sim(config);
  SamplingOptions options;
  options.windows = 1;
  options.window_width = 50000;  // one window spanning the whole budget
  const SampledRunResult sampled =
      SamplingController(sampled_sim, options).run(50000);
  EXPECT_TRUE(sampled.provenance.sampled);
  EXPECT_EQ(sampled.provenance.windows, 1u);
  ASSERT_EQ(sampled.windows.size(), 1u);
  EXPECT_EQ(sampled.windows[0].span, 50000u);
  expect_same_result(expected, sampled.estimate, "full-coverage window");
}

TEST(Sampling, WarmupRunMeasuresLessButCoversTheBudget) {
  // Fault-free config: with no injector, a fast-forwarded run must never
  // corrupt architectural state (every load still verifies against golden
  // memory). Under injection, silent corruption is a legitimate outcome.
  Simulator sim = make_sim(SimConfig::table1());
  SamplingOptions options;
  options.warmup_instructions = 20000;
  const SampledRunResult sampled = SamplingController(sim, options).run(60000);
  EXPECT_TRUE(sampled.provenance.sampled);
  EXPECT_EQ(sampled.provenance.warmup_instructions, 20000u);
  EXPECT_EQ(sampled.provenance.windows, 1u);
  EXPECT_EQ(sampled.provenance.budget, 60000u);
  // ~40k of 60k measured in the detailed model.
  EXPECT_LT(sampled.provenance.measured_instructions, 45000u);
  EXPECT_GT(sampled.provenance.measured_instructions, 35000u);
  // The estimate is scaled back up to the full budget, and fast-forwarded
  // loads still verify against golden memory: no integrity regressions.
  EXPECT_NEAR(static_cast<double>(sampled.estimate.instructions), 60000.0,
              60000.0 * 0.02);
  EXPECT_EQ(sampled.estimate.pipeline.silent_corrupt_loads, 0u);
  EXPECT_GT(sampled.estimate.dl1.loads, 0u);
  EXPECT_GT(sampled.estimate.cycles, 0u);
}

TEST(Sampling, IntervalSamplingMeasuresRequestedWindows) {
  Simulator sim = make_sim(test_config());
  SamplingOptions options;
  options.warmup_instructions = 10000;
  options.windows = 5;
  options.window_width = 2000;
  const SampledRunResult sampled = SamplingController(sim, options).run(100000);
  EXPECT_EQ(sampled.provenance.windows, 5u);
  // 5 x 2000 planned; drain overshoot may add a few instructions per window.
  EXPECT_GE(sampled.provenance.measured_instructions, 10000u);
  EXPECT_LT(sampled.provenance.measured_instructions, 11000u);
  EXPECT_NEAR(sampled.provenance.coverage(), 0.1, 0.01);
  // The simulator really advanced through the whole budget.
  EXPECT_GE(sim.result().instructions, 100000u);
}

TEST(Sampling, ObservabilityIntervalsStayStrictlyIncreasing) {
  Simulator sim = make_sim(test_config());
  obs::ObsOptions obsopt;
  obsopt.stats_interval = 5000;
  sim.enable_observability(obsopt);
  SamplingOptions options;
  options.warmup_instructions = 12000;
  options.windows = 3;
  options.window_width = 4000;
  (void)SamplingController(sim, options).run(60000);
  const obs::CellObservability telemetry = sim.collect_observability();
  ASSERT_GT(telemetry.intervals.samples.size(), 2u);
  // Window/chunk boundaries must never produce duplicate or out-of-order
  // progress points (zero-length intervals poison per-interval rates).
  for (std::size_t i = 1; i < telemetry.intervals.samples.size(); ++i) {
    EXPECT_GT(telemetry.intervals.samples[i].instructions,
              telemetry.intervals.samples[i - 1].instructions);
  }
}

CampaignSpec sampled_spec(SampleMode mode) {
  CampaignSpec spec;
  spec.variants = {
      {"BaseP", core::Scheme::BaseP()},
      {"ICR-P-PS(S)", core::Scheme::IcrPPS_S()},
  };
  spec.apps = {trace::App::kGzip, trace::App::kMcf};
  spec.instructions = 30000;
  spec.trials = 2;
  spec.derive_seeds = true;
  spec.base_seed = 0xD5DB2003ULL;
  spec.config.fault_probability = 1e-4;
  spec.sampling.warmup_instructions = 5000;
  spec.sampling.windows = 4;
  spec.sampling.window_width = 1500;
  spec.sampling.mode = mode;
  return spec;
}

TEST(Sampling, SampledCampaignBitIdenticalAcrossThreadCounts) {
  for (const SampleMode mode :
       {SampleMode::kSystematic, SampleMode::kRandom}) {
    const CampaignSpec spec = sampled_spec(mode);
    const CampaignResult one = CampaignRunner(1).run(spec);
    const CampaignResult eight = CampaignRunner(8).run(spec);
    ASSERT_EQ(one.cells.size(), spec.cell_count());
    EXPECT_EQ(to_json(one, /*include_timing=*/false),
              to_json(eight, /*include_timing=*/false));
    EXPECT_EQ(to_csv(one), to_csv(eight));
    for (std::size_t i = 0; i < one.cells.size(); ++i) {
      EXPECT_TRUE(one.cells[i].sampling.sampled);
      EXPECT_EQ(one.cells[i].sampling.measured_instructions,
                eight.cells[i].sampling.measured_instructions);
    }
  }
}

TEST(Sampling, ConfigHashFoldsOnlyWhenEnabled) {
  CampaignSpec spec = sampled_spec(SampleMode::kSystematic);
  CampaignSpec disabled = spec;
  disabled.sampling = SamplingOptions{};
  CampaignSpec no_field = spec;
  no_field.sampling = SamplingOptions{};
  // Disabled sampling hashes identically to a spec that never touched the
  // field — old fingerprints stay valid.
  EXPECT_EQ(campaign_config_hash(disabled), campaign_config_hash(no_field));
  EXPECT_NE(campaign_config_hash(spec), campaign_config_hash(disabled));
  // Every sampling knob fingerprints.
  CampaignSpec other = spec;
  other.sampling.windows += 1;
  EXPECT_NE(campaign_config_hash(spec), campaign_config_hash(other));
  other = spec;
  other.sampling.mode = SampleMode::kRandom;
  EXPECT_NE(campaign_config_hash(spec), campaign_config_hash(other));
}

TEST(Sampling, ExportsCarryProvenanceOnlyWhenSampled) {
  CampaignSpec spec = sampled_spec(SampleMode::kSystematic);
  spec.variants.resize(1);
  spec.apps.resize(1);
  spec.trials = 1;
  const CampaignResult sampled = CampaignRunner(1).run(spec);
  const std::string sampled_csv = to_csv(sampled);
  const std::string sampled_json = to_json(sampled, false);
  EXPECT_NE(sampled_csv.find("sampled,warmup,sample_windows"),
            std::string::npos);
  EXPECT_NE(sampled_json.find("\"sampling\""), std::string::npos);

  spec.sampling = SamplingOptions{};
  const CampaignResult full = CampaignRunner(1).run(spec);
  const std::string full_csv = to_csv(full);
  // Unsampled campaigns keep the historical schema byte for byte.
  EXPECT_EQ(full_csv.find("sampled"), std::string::npos);
  EXPECT_EQ(to_json(full, false).find("\"sampling\""), std::string::npos);
  std::string header = full_csv.substr(0, full_csv.find('\n'));
  std::string expected_header = "variant,app,trial,seed";
  for (const std::string& column : metric_columns()) {
    expected_header += ',' + column;
  }
  EXPECT_EQ(header, expected_header);
}

TEST(Sampling, BackToBackControllerRunsResumeAtBudgetBoundaries) {
  Simulator sim = make_sim(test_config());
  SamplingOptions options;
  options.warmup_instructions = 5000;
  options.windows = 2;
  options.window_width = 1000;
  SamplingController controller(sim, options);
  (void)controller.run(20000);
  const std::uint64_t after_first = sim.result().instructions;
  EXPECT_GE(after_first, 20000u);
  const SampledRunResult second = controller.run(20000);
  // The second run planned relative to where the first left off.
  EXPECT_GE(sim.result().instructions, 40000u);
  EXPECT_EQ(second.provenance.windows, 2u);
}

}  // namespace
}  // namespace icr::sim
