// Tier-2 recovery contract of the campaign farm: SIGKILL a worker process
// mid-campaign, resume the spool, and the final CSV/JSON exports are
// byte-identical to an uninterrupted single-process run. Cells are seeded
// by grid coordinates alone, so the re-run of a killed unit reproduces the
// exact bytes the dead worker would have published.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <sstream>
#include <string>

#include "src/sim/campaign.h"
#include "src/sim/farm.h"
#include "src/sim/results_io.h"
#include "src/util/fs.h"

namespace icr::sim::farm {
namespace {

std::string make_temp_spool() {
  char tmpl[] = "/tmp/icr_farm_recovery_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return std::string(dir) + "/spool";
}

// The campaign_test grid: large enough (18 cells) that a worker is very
// unlikely to finish before the parent's kill lands.
CampaignSpec recovery_spec() {
  CampaignSpec spec;
  spec.variants = {
      {"BaseP", core::Scheme::BaseP()},
      {"ICR-P-PS(S)", core::Scheme::IcrPPS_S()},
      {"ICR-ECC-PS(S)", core::Scheme::IcrEccPS_S()},
  };
  spec.apps = {trace::App::kVortex, trace::App::kMcf, trace::App::kGzip};
  spec.instructions = 20000;
  spec.trials = 2;
  spec.derive_seeds = true;
  spec.base_seed = 0xD5DB2003ULL;
  spec.config.fault_model = fault::FaultModel::kRandom;
  spec.config.fault_probability = 1e-4;
  return spec;
}

// Forks a worker child running the claim/run/publish loop over the spool.
pid_t fork_worker(const std::string& spool, const CampaignSpec& spec) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Child: run to dry, then exit without gtest/atexit teardown.
    try {
      (void)run_worker_loop(spool, spec);
    } catch (...) {
      ::_exit(1);
    }
    ::_exit(0);
  }
  return pid;
}

// Polls the spool until at least `units` records exist or the child exits.
void wait_for_units(const std::string& spool, const Manifest& manifest,
                    std::uint32_t units, pid_t child) {
  for (int i = 0; i < 30000; ++i) {
    if (scan_spool(spool, manifest).units_done >= units) return;
    int status = 0;
    if (::waitpid(child, &status, WNOHANG) == child) return;  // finished
    ::usleep(1000);
  }
}

TEST(FarmRecovery, KilledWorkerResumesBitIdentical) {
  const CampaignSpec spec = recovery_spec();

  // Golden: the uninterrupted in-process campaign through the in-memory
  // exporters (timing excluded; the farm never exports wall time).
  const CampaignResult golden = CampaignRunner(1).run(spec);
  const std::string want_csv = to_csv(golden);
  const std::string want_json = to_json(golden, /*include_timing=*/false);

  const std::string spool = make_temp_spool();
  const Manifest manifest = manifest_for(spec, /*unit_cells=*/1);
  init_spool(spool, manifest);
  ASSERT_EQ(manifest.unit_count, 18u);

  // Round 1: a worker makes some progress, then dies mid-campaign.
  pid_t child = fork_worker(spool, spec);
  ASSERT_GT(child, 0);
  wait_for_units(spool, manifest, 2, child);
  ::kill(child, SIGKILL);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);

  const SpoolStatus after_kill = scan_spool(spool, manifest);
  ASSERT_FALSE(after_kill.complete());

  // Resume: clear the dead worker's claims, kill a second worker too for
  // good measure, then finish in-process.
  clear_stale_claims(spool, manifest.unit_count);
  child = fork_worker(spool, spec);
  ASSERT_GT(child, 0);
  wait_for_units(spool, manifest, after_kill.units_done + 2, child);
  ::kill(child, SIGKILL);
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  clear_stale_claims(spool, manifest.unit_count);

  const WorkerReport report = run_worker_loop(spool, spec);
  const SpoolStatus final_status = scan_spool(spool, manifest);
  ASSERT_TRUE(final_status.complete());
  ASSERT_EQ(final_status.cells_done, manifest.total_cells);
  EXPECT_GT(report.units_run, 0u);

  // After an arbitrary kill/resume history, the aggregate is byte-for-byte
  // the uninterrupted run.
  std::ostringstream csv_out, json_out;
  FarmAggregator aggregator(manifest, &csv_out, &json_out);
  for (std::uint32_t u = 0; u < manifest.unit_count; ++u) {
    aggregator.add_unit(
        u, parse_unit_json(util::fs::read_text_file(unit_path(spool, u)), u));
  }
  aggregator.finish();
  EXPECT_EQ(csv_out.str(), want_csv);
  EXPECT_EQ(json_out.str(), want_json);

  // And aggregate_spool (the CLI path) writes the same bytes to files.
  const std::string csv_path = spool + "/agg.csv";
  const std::string json_path = spool + "/agg.json";
  aggregate_spool(spool, manifest, csv_path, json_path);
  EXPECT_EQ(util::fs::read_text_file(csv_path), want_csv);
  EXPECT_EQ(util::fs::read_text_file(json_path), want_json);
}

TEST(FarmRecovery, AggregateRefusesIncompleteSpool) {
  const CampaignSpec spec = recovery_spec();
  const std::string spool = make_temp_spool();
  const Manifest manifest = manifest_for(spec, /*unit_cells=*/4);
  init_spool(spool, manifest);

  // Complete exactly one unit, then try to aggregate the rest.
  (void)run_worker_loop(spool, spec, /*max_units=*/1);
  ASSERT_FALSE(scan_spool(spool, manifest).complete());
  EXPECT_THROW(
      aggregate_spool(spool, manifest, spool + "/x.csv", spool + "/x.json"),
      std::runtime_error);
}

}  // namespace
}  // namespace icr::sim::farm
