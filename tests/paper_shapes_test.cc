// Shape-regression suite: pins the *orderings* the paper's conclusions rest
// on, across several applications, at a small instruction count. If a
// refactor flips who wins, these tests fail before any bench is run.
#include <gtest/gtest.h>

#include "src/sim/experiment.h"

namespace icr::sim {
namespace {

constexpr std::uint64_t kN = 40000;

core::Scheme relaxed(core::Scheme s) {
  return s.with_decay_window(1000).with_victim_policy(
      core::ReplicaVictimPolicy::kDeadFirst);
}

class ShapePerApp : public ::testing::TestWithParam<trace::App> {};

TEST_P(ShapePerApp, EccCostsMoreThanIcrPPsS) {
  const trace::App app = GetParam();
  const auto base = run_one(app, core::Scheme::BaseP(), SimConfig::table1(), kN);
  const auto ecc = run_one(app, core::Scheme::BaseECC(), SimConfig::table1(), kN);
  const auto icr =
      run_one(app, relaxed(core::Scheme::IcrPPS_S()), SimConfig::table1(), kN);
  // BaseP <= ICR-P-PS(S) <= BaseECC in execution cycles (Fig. 12 ordering).
  EXPECT_LE(base.cycles, icr.cycles);
  EXPECT_LE(icr.cycles, ecc.cycles);
}

TEST_P(ShapePerApp, LsReplicatesMoreThanS) {
  const trace::App app = GetParam();
  const auto s = run_one(app, core::Scheme::IcrPPS_S(), SimConfig::table1(), kN);
  const auto ls =
      run_one(app, core::Scheme::IcrPPS_LS(), SimConfig::table1(), kN);
  // Fig. 6: LS > S in ability; Fig. 7: LS > S in loads-with-replica;
  // Fig. 8: LS raises the miss rate above S above Base.
  EXPECT_GT(ls.dl1.replication_ability(), s.dl1.replication_ability());
  EXPECT_GT(ls.dl1.loads_with_replica_fraction(),
            s.dl1.loads_with_replica_fraction());
  EXPECT_GE(ls.dl1.miss_rate(), s.dl1.miss_rate());
}

TEST_P(ShapePerApp, PpSchemesClusterWithEcc) {
  const trace::App app = GetParam();
  const auto base = run_one(app, core::Scheme::BaseP(), SimConfig::table1(), kN);
  const auto pp = run_one(app, core::Scheme::IcrPPP_S(), SimConfig::table1(), kN);
  const auto ps = run_one(app, core::Scheme::IcrPPS_S(), SimConfig::table1(), kN);
  // Fig. 9: parallel-probe schemes pay 2-cycle hits and cost clearly more
  // than the serial-probe variant.
  EXPECT_GT(pp.cycles, ps.cycles);
  EXPECT_GE(ps.cycles, base.cycles);
}

TEST_P(ShapePerApp, TwoReplicasRaiseMissRate) {
  const trace::App app = GetParam();
  core::ReplicationConfig two;
  two.num_replicas = 2;
  two.fallback = core::FallbackStrategy::kMultiAttempt;
  two.extra_attempts = {core::Distance::quarter()};
  const auto one = run_one(app, core::Scheme::IcrPPS_S(), SimConfig::table1(), kN);
  const auto dup = run_one(app, core::Scheme::IcrPPS_S().with_replication(two),
                           SimConfig::table1(), kN);
  EXPECT_GE(dup.dl1.miss_rate(), one.dl1.miss_rate());  // Fig. 4
}

INSTANTIATE_TEST_SUITE_P(Apps, ShapePerApp,
                         ::testing::Values(trace::App::kGzip, trace::App::kVpr,
                                           trace::App::kMcf,
                                           trace::App::kMesa),
                         [](const auto& info) {
                           return std::string(trace::to_string(info.param));
                         });

TEST(Shape, McfMissRateBarelyMovesUnderReplication) {
  // Fig. 8's mcf anomaly: locality is so poor that replica pollution costs
  // almost nothing.
  const auto base =
      run_one(trace::App::kMcf, core::Scheme::BaseP(), SimConfig::table1(), kN);
  const auto icr = run_one(trace::App::kMcf, core::Scheme::IcrPPS_S(),
                           SimConfig::table1(), kN);
  EXPECT_LT(icr.dl1.miss_rate() - base.dl1.miss_rate(), 0.04);
  EXPECT_LT(static_cast<double>(icr.cycles) / base.cycles, 1.02);
}

TEST(Shape, WriteThroughSlowerAndHungrierThanIcr) {
  // Fig. 16 on one app (store-heavy vortex shows it best).
  const auto icr =
      run_one(trace::App::kVortex, relaxed(core::Scheme::IcrPPS_S()),
              SimConfig::table1(), kN);
  const auto wt = run_one(trace::App::kVortex,
                          core::Scheme::BaseP().with_write_through(8),
                          SimConfig::table1(), kN);
  EXPECT_GT(wt.cycles, icr.cycles);
  EXPECT_GT(wt.energy.total_nj(), icr.energy.total_nj());
}

TEST(Shape, DecayWindowTradesAbilityForMissRate) {
  // Fig. 10/11: larger window -> lower ability, lower miss rate.
  const auto w0 = run_one(trace::App::kVpr, core::Scheme::IcrPPS_S(),
                          SimConfig::table1(), kN);
  const auto w10k = run_one(trace::App::kVpr,
                            core::Scheme::IcrPPS_S().with_decay_window(10000),
                            SimConfig::table1(), kN);
  EXPECT_GT(w0.dl1.replication_ability(), w10k.dl1.replication_ability());
  EXPECT_GT(w0.dl1.miss_rate(), w10k.dl1.miss_rate());
}

TEST(Shape, InjectionOrdering) {
  // Fig. 14 ordering at a high rate: BaseP loses the most loads; ICR-P
  // recovers most of them; ICR-ECC more; BaseECC everything (singles).
  SimConfig cfg = SimConfig::table1();
  cfg.fault_probability = 2e-3;
  const std::uint64_t n = 60000;
  const auto p = run_one(trace::App::kVortex, core::Scheme::BaseP(), cfg, n);
  const auto icr_p =
      run_one(trace::App::kVortex, core::Scheme::IcrPPS_S(), cfg, n);
  const auto icr_e =
      run_one(trace::App::kVortex, core::Scheme::IcrEccPS_S(), cfg, n);
  const auto ecc = run_one(trace::App::kVortex, core::Scheme::BaseECC(), cfg, n);
  EXPECT_GT(p.dl1.unrecoverable_loads, icr_p.dl1.unrecoverable_loads);
  EXPECT_GE(icr_p.dl1.unrecoverable_loads, icr_e.dl1.unrecoverable_loads);
  EXPECT_GE(icr_e.dl1.unrecoverable_loads, ecc.dl1.unrecoverable_loads);
}

}  // namespace
}  // namespace icr::sim
