// Tier-1 acceptance of the HTTP status serving layer (src/sim/serve.h),
// over a real two-worker farm spool:
//
//   * /metrics parses as Prometheus text 0.0.4 and carries the farm,
//     worker and latency-histogram families;
//   * /status is the --status-json NDJSON (schema kStatusSchemaVersion)
//     and round-trips through farm_status_from_ndjson;
//   * /events replays the full merged event log over SSE, including
//     resume via ?after=N and the Last-Event-ID header;
//   * serving is read-only: aggregated exports are byte-identical with the
//     server up and fielding requests vs. no server at all.
#include "src/sim/serve.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <iterator>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/obs/http_server.h"
#include "src/sim/campaign.h"
#include "src/sim/farm.h"
#include "src/sim/farm_telemetry.h"
#include "src/util/json.h"

namespace icr::sim::farm {
namespace {

std::string make_temp_dir() {
  char tmpl[] = "/tmp/icr_serve_test_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.variants = {
      {"BaseP", core::Scheme::BaseP()},
      {"ICR-P-PS(S)", core::Scheme::IcrPPS_S()},
  };
  spec.apps = {trace::App::kVortex, trace::App::kMcf};
  spec.instructions = 20000;
  spec.trials = 2;
  spec.derive_seeds = true;
  spec.base_seed = 0xD5DB2003ULL;
  spec.config.fault_model = fault::FaultModel::kRandom;
  spec.config.fault_probability = 1e-4;
  return spec;
}

// Runs the spec to completion on two telemetry-publishing workers, exactly
// like `run_campaign --farm --workers=2` (in-process for test speed).
std::string build_two_worker_spool(const CampaignSpec& spec) {
  const std::string spool = make_temp_dir() + "/spool";
  const Manifest manifest = manifest_for(spec, /*unit_cells=*/2);
  init_spool(spool, manifest);
  const std::uint32_t half = manifest.unit_count / 2;
  WorkerTelemetryOptions w0_options;
  w0_options.worker_id = "w0";
  WorkerTelemetry w0(spool, w0_options);
  (void)run_worker_loop(spool, spec, /*max_units=*/half, nullptr, &w0);
  WorkerTelemetryOptions w1_options;
  w1_options.worker_id = "w1";
  WorkerTelemetry w1(spool, w1_options);
  (void)run_worker_loop(spool, spec, /*max_units=*/0, nullptr, &w1);
  EXPECT_TRUE(scan_spool(spool, manifest).complete());
  return spool;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string{std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>()};
}

// The same shape the CI smoke's python checker enforces: every line is a
// HELP/TYPE comment or "<legal-name>[{...}] <value>".
void expect_valid_prometheus_text(const std::string& text) {
  std::istringstream lines(text);
  std::string line;
  std::size_t samples = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos) name = name.substr(0, brace);
    ASSERT_FALSE(name.empty()) << line;
    for (const char c : name) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                  c == ':')
          << line;
    }
    ++samples;
  }
  EXPECT_GT(samples, 0u);
}

// SSE "data: " payloads, in arrival order.
std::vector<std::string> sse_data_lines(const std::string& body) {
  std::vector<std::string> out;
  std::istringstream lines(body);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("data: ", 0) == 0) out.push_back(line.substr(6));
  }
  return out;
}

TEST(ServeSpec, ParsesPortAndAddressForms) {
  ServeOptions options;
  parse_serve_spec("8080", &options);
  EXPECT_EQ(options.bind_address, "127.0.0.1");
  EXPECT_EQ(options.port, 8080);
  parse_serve_spec("0.0.0.0:9091", &options);
  EXPECT_EQ(options.bind_address, "0.0.0.0");
  EXPECT_EQ(options.port, 9091);
  EXPECT_THROW(parse_serve_spec("", &options), std::runtime_error);
  EXPECT_THROW(parse_serve_spec("nonsense", &options), std::runtime_error);
  EXPECT_THROW(parse_serve_spec("127.0.0.1:", &options), std::runtime_error);
  EXPECT_THROW(parse_serve_spec("127.0.0.1:99999", &options),
               std::runtime_error);
}

TEST(ServeFarm, ServesStatusMetricsEventsAndDashboardOverASpool) {
  const CampaignSpec spec = small_spec();
  const std::string spool = build_two_worker_spool(spec);
  const Manifest manifest = load_manifest(spool);

  SpoolStatusSource source(spool, manifest);
  ServeOptions options;  // 127.0.0.1, ephemeral port
  const auto server = start_status_server(source, options);
  const std::string base = server->url();

  // /healthz
  EXPECT_EQ(obs::http::http_get(base + "/healthz").body, "ok\n");

  // /status: --status-json NDJSON at the current schema; round-trips.
  const obs::http::FetchResult status_reply =
      obs::http::http_get(base + "/status");
  ASSERT_EQ(status_reply.status, 200);
  const util::JsonValue first = util::JsonValue::parse(
      status_reply.body.substr(0, status_reply.body.find('\n')));
  EXPECT_EQ(first.get("type").as_string(), "farm");
  EXPECT_EQ(static_cast<int>(first.get("schema").as_double()),
            kStatusSchemaVersion);
  EXPECT_TRUE(first.get("complete").as_bool());
  const FarmStatus remote = farm_status_from_ndjson(status_reply.body);
  EXPECT_EQ(remote.schema, kStatusSchemaVersion);
  EXPECT_EQ(remote.census.unit_count, manifest.unit_count);
  EXPECT_EQ(remote.census.cells_done, manifest.total_cells);
  ASSERT_EQ(remote.workers.size(), 2u);
  EXPECT_EQ(remote.workers[0].heartbeat.worker_id, "w0");
  EXPECT_EQ(remote.workers[1].heartbeat.worker_id, "w1");
  EXPECT_TRUE(remote.workers[0].heartbeat.exited);

  // /metrics: valid exposition text carrying the farm families.
  const obs::http::FetchResult metrics_reply =
      obs::http::http_get(base + "/metrics");
  ASSERT_EQ(metrics_reply.status, 200);
  expect_valid_prometheus_text(metrics_reply.body);
  for (const char* family :
       {"icr_farm_units_total", "icr_farm_cells_done", "icr_farm_workers",
        "icr_worker_up", "icr_worker_cells_per_second",
        "icr_farm_unit_latency_milliseconds_bucket",
        "icr_farm_status_schema"}) {
    EXPECT_NE(metrics_reply.body.find(family), std::string::npos) << family;
  }
  EXPECT_NE(metrics_reply.body.find("worker=\"w0\""), std::string::npos);

  // /events: the full merged log over SSE, ids 0..N-1, then `drained`
  // (this spool is complete, so the stream closes by itself).
  const FarmStatus local = collect_farm_status(spool, manifest);
  ASSERT_TRUE(local.drained());
  const obs::http::FetchResult events_reply =
      obs::http::http_get(base + "/events");
  ASSERT_EQ(events_reply.status, 200);
  const std::vector<std::string> replay = sse_data_lines(events_reply.body);
  // The final frame is the `drained` sentinel's "{}" payload.
  ASSERT_EQ(replay.size(), local.event_count + 1);
  EXPECT_NE(events_reply.body.find("event: drained"), std::string::npos);
  std::size_t publishes = 0;
  for (std::size_t i = 0; i + 1 < replay.size(); ++i) {
    const FarmEvent event = FarmEvent::parse(replay[i]);  // throws if torn
    if (event.type == FarmEventType::kPublish) ++publishes;
  }
  EXPECT_EQ(publishes, manifest.unit_count);
  EXPECT_NE(events_reply.body.find("id: 0\n"), std::string::npos);

  // Resume semantics: ?after=N and Last-Event-ID skip what was seen.
  const obs::http::FetchResult resumed = obs::http::http_get(
      base + "/events?after=2&once=1");
  const std::vector<std::string> tail = sse_data_lines(resumed.body);
  ASSERT_EQ(tail.size(), local.event_count - 3);
  EXPECT_EQ(resumed.body.find("id: 2\n"), std::string::npos);
  EXPECT_NE(resumed.body.find("id: 3\n"), std::string::npos);
  const obs::http::FetchResult header_resumed = obs::http::http_get(
      base + "/events?once=1", 10.0, {"Last-Event-ID: 2"});
  EXPECT_EQ(sse_data_lines(header_resumed.body).size(), tail.size());

  // / is the self-contained dashboard.
  const obs::http::FetchResult page = obs::http::http_get(base + "/");
  EXPECT_NE(page.body.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(page.body.find("EventSource"), std::string::npos);

  server->stop();
}

TEST(ServeFarm, ServingLeavesAggregatedExportsByteIdentical) {
  const CampaignSpec spec = small_spec();
  const std::string spool = build_two_worker_spool(spec);
  const Manifest manifest = load_manifest(spool);
  const std::string out = make_temp_dir();

  // Reference: aggregate with no server anywhere near the spool.
  aggregate_spool(spool, manifest, out + "/ref.csv", out + "/ref.json");

  // Aggregate again while the server is up and actively fielding requests.
  SpoolStatusSource source(spool, manifest);
  const auto server = start_status_server(source, ServeOptions{});
  (void)obs::http::http_get(server->url() + "/metrics");
  (void)obs::http::http_get(server->url() + "/status");
  aggregate_spool(spool, manifest, out + "/serve.csv", out + "/serve.json");
  (void)obs::http::http_get(server->url() + "/events?once=1");
  server->stop();

  EXPECT_EQ(slurp(out + "/ref.csv"), slurp(out + "/serve.csv"));
  EXPECT_EQ(slurp(out + "/ref.json"), slurp(out + "/serve.json"));
}

TEST(ServeCampaign, InProcessSourceReportsLiveProgress) {
  CampaignStatusSource source(/*total_cells=*/8,
                              /*instructions_per_cell=*/20000);
  source.cells_done().store(2);
  const std::string line = source.status_ndjson();
  const util::JsonValue record =
      util::JsonValue::parse(line.substr(0, line.find('\n')));
  EXPECT_EQ(record.get("type").as_string(), "campaign");
  EXPECT_EQ(static_cast<int>(record.get("schema").as_double()),
            kStatusSchemaVersion);
  EXPECT_EQ(static_cast<std::uint64_t>(record.get("total_cells").as_double()),
            8u);
  EXPECT_EQ(static_cast<std::uint64_t>(record.get("cells_done").as_double()),
            2u);
  EXPECT_FALSE(record.get("finished").as_bool());
  EXPECT_FALSE(source.finished());
  source.finish();
  EXPECT_TRUE(source.finished());
  expect_valid_prometheus_text(source.metrics_text());
}

TEST(ServeSim, SimSourceSnapshotsCountersAndZones) {
  SimStatusSource source("ICR-P-PS(S)", "vortex",
                         /*total_instructions=*/1000000);
  source.update(250000, {{"dl1.read-hits", 42}}, {});
  const std::string line = source.status_ndjson();
  const util::JsonValue record =
      util::JsonValue::parse(line.substr(0, line.find('\n')));
  EXPECT_EQ(record.get("type").as_string(), "sim");
  EXPECT_EQ(record.get("scheme").as_string(), "ICR-P-PS(S)");
  EXPECT_EQ(record.get("app").as_string(), "vortex");
  EXPECT_EQ(
      static_cast<std::uint64_t>(record.get("instructions_done").as_double()),
      250000u);
  EXPECT_DOUBLE_EQ(record.get("percent").as_double(), 25.0);

  const std::string metrics = source.metrics_text();
  expect_valid_prometheus_text(metrics);
  EXPECT_NE(metrics.find("icr_stat_dl1_read_hits"), std::string::npos);
  EXPECT_NE(metrics.find("scheme=\"ICR-P-PS(S)\""), std::string::npos);
  source.finish();
  EXPECT_TRUE(source.finished());
}

TEST(ServeStatus, RejectsStatusFromAFutureSchema) {
  const std::string future =
      "{\"type\":\"farm\",\"schema\":99,\"unit_count\":1,\"units_done\":1,"
      "\"total_cells\":2,\"cells_done\":2,\"claims_outstanding\":0,"
      "\"claims_live\":0,\"claims_stale\":0,\"events\":0,"
      "\"dropped_event_lines\":0,\"unreadable_heartbeats\":0,"
      "\"percent\":100,\"cells_per_second\":1,\"eta_seconds\":0,"
      "\"elapsed_seconds\":1,\"complete\":true,\"drained\":true}\n";
  EXPECT_THROW((void)farm_status_from_ndjson(future), std::runtime_error);
  EXPECT_THROW((void)farm_status_from_ndjson("{\"type\":\"worker\"}\n"),
               std::runtime_error);  // no farm record at all
}

}  // namespace
}  // namespace icr::sim::farm
