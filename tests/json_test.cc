// util/json: the minimal JSON reader behind bench JSON and profile traces.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "src/util/json.h"

namespace {

using icr::util::JsonValue;

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool(true));
  EXPECT_DOUBLE_EQ(JsonValue::parse("42").as_double(), 42.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-1.5e3").as_double(), -1500.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonTest, ParsesStringEscapes) {
  const JsonValue v = JsonValue::parse(R"("a\"b\\c\nd\teAé")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\nd\teA\xC3\xA9");
  // \uXXXX escapes decode to UTF-8 (1-, 2- and 3-byte code points).
  EXPECT_EQ(JsonValue::parse("\"\\u0041\\u00e9\\u20ac\"").as_string(),
            "A\xC3\xA9\xE2\x82\xAC");
}

TEST(JsonTest, ParsesNestedStructures) {
  const JsonValue doc = JsonValue::parse(
      R"({"meta": {"count": 3, "ok": true}, "items": [1, 2, 3]})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.get("meta").get("count").as_double(), 3.0);
  EXPECT_TRUE(doc.get("meta").get("ok").as_bool());
  const auto& items = doc.get("items").items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_DOUBLE_EQ(items[2].as_double(), 3.0);
}

TEST(JsonTest, PreservesObjectKeyOrder) {
  const JsonValue doc = JsonValue::parse(R"({"z": 1, "a": 2, "m": 3})");
  const auto& members = doc.members();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(JsonTest, GetToleratesMissingChains) {
  const JsonValue doc = JsonValue::parse(R"({"a": 1})");
  // get() on a missing key yields null; chaining keeps yielding null.
  EXPECT_TRUE(doc.get("nope").is_null());
  EXPECT_DOUBLE_EQ(doc.get("nope").get("deeper").as_double(7.0), 7.0);
  EXPECT_EQ(doc.find("nope"), nullptr);
  ASSERT_NE(doc.find("a"), nullptr);
  EXPECT_DOUBLE_EQ(doc.find("a")->as_double(), 1.0);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1, 2,]"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1] trailing"), std::runtime_error);
}

TEST(JsonTest, EscapeIsInverseOfParse) {
  const std::string nasty = "line1\nquote\" slash\\ tab\t\x01";
  const std::string doc = "\"" + icr::util::json_escape(nasty) + "\"";
  EXPECT_EQ(JsonValue::parse(doc).as_string(), nasty);
}

}  // namespace
