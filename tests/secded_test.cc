#include "src/coding/secded.h"

#include <gtest/gtest.h>

#include "src/util/bitops.h"
#include "src/util/rng.h"

namespace icr {
namespace {

TEST(SecDed, CleanWordDecodesClean) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t word = rng.next_u64();
    const std::uint8_t check = secded_encode(word);
    const SecDedResult r = secded_decode(word, check);
    EXPECT_EQ(r.status, SecDedStatus::kClean);
    EXPECT_EQ(r.data, word);
  }
}

TEST(SecDed, CorrectsEverySingleDataBitError) {
  Rng rng(2);
  for (int trial = 0; trial < 32; ++trial) {
    const std::uint64_t word = rng.next_u64();
    const std::uint8_t check = secded_encode(word);
    for (unsigned bit = 0; bit < 64; ++bit) {
      const SecDedResult r = secded_decode(word ^ (1ULL << bit), check);
      EXPECT_EQ(r.status, SecDedStatus::kCorrectedData) << "bit " << bit;
      EXPECT_EQ(r.data, word) << "bit " << bit;
    }
  }
}

TEST(SecDed, CorrectsEverySingleCheckBitError) {
  Rng rng(3);
  for (int trial = 0; trial < 32; ++trial) {
    const std::uint64_t word = rng.next_u64();
    const std::uint8_t check = secded_encode(word);
    for (unsigned bit = 0; bit < 8; ++bit) {
      const SecDedResult r =
          secded_decode(word, static_cast<std::uint8_t>(check ^ (1U << bit)));
      EXPECT_EQ(r.status, SecDedStatus::kCorrectedCheck) << "bit " << bit;
      EXPECT_EQ(r.data, word) << "bit " << bit;
    }
  }
}

TEST(SecDed, DetectsEveryDoubleDataBitError) {
  Rng rng(4);
  for (int trial = 0; trial < 8; ++trial) {
    const std::uint64_t word = rng.next_u64();
    const std::uint8_t check = secded_encode(word);
    for (unsigned b1 = 0; b1 < 64; ++b1) {
      for (unsigned b2 = b1 + 1; b2 < 64; b2 += 7) {  // sampled pairs
        const SecDedResult r =
            secded_decode(word ^ (1ULL << b1) ^ (1ULL << b2), check);
        EXPECT_EQ(r.status, SecDedStatus::kDetectedDouble)
            << b1 << "," << b2;
      }
    }
  }
}

TEST(SecDed, DetectsMixedDataCheckDoubleError) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t word = rng.next_u64();
    const std::uint8_t check = secded_encode(word);
    const unsigned data_bit = static_cast<unsigned>(rng.next_below(64));
    const unsigned check_bit = static_cast<unsigned>(rng.next_below(8));
    const SecDedResult r = secded_decode(
        word ^ (1ULL << data_bit),
        static_cast<std::uint8_t>(check ^ (1U << check_bit)));
    EXPECT_EQ(r.status, SecDedStatus::kDetectedDouble);
  }
}

TEST(SecDed, DataPositionsSkipPowersOfTwo) {
  for (unsigned d = 0; d < 64; ++d) {
    const unsigned pos = secded_internal::data_bit_position(d);
    EXPECT_GE(pos, 3u);
    EXPECT_LE(pos, 71u);
    EXPECT_FALSE(is_pow2(pos)) << "data bit " << d << " at position " << pos;
  }
  // Positions are strictly increasing and unique.
  for (unsigned d = 1; d < 64; ++d) {
    EXPECT_GT(secded_internal::data_bit_position(d),
              secded_internal::data_bit_position(d - 1));
  }
}

TEST(SecDed, CheckBitsDependOnData) {
  // Different words should (almost always) get different check bits.
  int same = 0;
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    if (secded_encode(rng.next_u64()) == secded_encode(rng.next_u64())) {
      ++same;
    }
  }
  // 8 check bits -> ~1/256 collision chance.
  EXPECT_LT(same, 20);
}

TEST(SecDed, AllZerosAndAllOnes) {
  for (const std::uint64_t word : {0ULL, ~0ULL}) {
    const std::uint8_t check = secded_encode(word);
    EXPECT_EQ(secded_decode(word, check).status, SecDedStatus::kClean);
    const SecDedResult r = secded_decode(word ^ 1ULL, check);
    EXPECT_EQ(r.status, SecDedStatus::kCorrectedData);
    EXPECT_EQ(r.data, word);
  }
}

}  // namespace
}  // namespace icr
