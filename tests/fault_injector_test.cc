#include "src/fault/fault_injector.h"

#include <gtest/gtest.h>

#include <cstring>

#include "src/coding/parity.h"
#include "tests/test_util.h"

namespace icr::fault {
namespace {

using core::Scheme;
using test::CacheFixture;

// Counts data bits that differ from a freshly computed parity view.
std::uint64_t corrupted_words(const core::IcrCache& c) {
  std::uint64_t count = 0;
  for (std::uint32_t s = 0; s < c.num_sets(); ++s) {
    for (std::uint32_t w = 0; w < c.ways(); ++w) {
      const core::IcrLine& l = c.line(s, w);
      if (!l.valid) continue;
      for (std::uint32_t word = 0; word < 8; ++word) {
        std::uint64_t v = 0;
        std::memcpy(&v, l.data.data() + word * 8, 8);
        if (byte_parity(v) != l.parity[word]) ++count;
      }
    }
  }
  return count;
}

TEST(FaultInjector, InjectsNothingAtZeroProbability) {
  CacheFixture f(Scheme::BaseP());
  f.dl1->load(0x100, 0);
  FaultInjector inj(FaultModel::kRandom, 0.0, Rng(1));
  for (int i = 0; i < 1000; ++i) inj.tick(*f.dl1, i);
  EXPECT_EQ(inj.stats().injections, 0u);
}

TEST(FaultInjector, SkipsEmptyCache) {
  CacheFixture f(Scheme::BaseP());
  FaultInjector inj(FaultModel::kRandom, 1.0, Rng(2));
  inj.inject_once(*f.dl1);
  EXPECT_EQ(inj.stats().injections, 0u);
  EXPECT_EQ(inj.stats().skipped_empty, 1u);
}

TEST(FaultInjector, RandomModelFlipsOneBit) {
  CacheFixture f(Scheme::BaseP());
  f.dl1->load(0x100, 0);
  FaultInjector inj(FaultModel::kRandom, 1.0, Rng(3));
  inj.inject_once(*f.dl1);
  EXPECT_EQ(inj.stats().injections, 1u);
  EXPECT_EQ(inj.stats().bits_flipped, 1u);
  EXPECT_EQ(corrupted_words(*f.dl1), 1u);
}

TEST(FaultInjector, AdjacentModelFlipsTwoBitsInOneByte) {
  CacheFixture f(Scheme::BaseP());
  f.dl1->load(0x100, 0);
  FaultInjector inj(FaultModel::kAdjacent, 1.0, Rng(4));
  inj.inject_once(*f.dl1);
  EXPECT_EQ(inj.stats().bits_flipped, 2u);
  // Two flips in one byte: byte parity is blind to them, so recompute via
  // the raw data instead — the word content changed even if parity matches.
}

TEST(FaultInjector, ColumnModelHitsAdjacentWay) {
  CacheFixture f(Scheme::BaseP());
  // Two blocks in the same set (ways 0 and 1).
  const auto& g = f.dl1->geometry();
  f.dl1->load(test::addr_for(g, 0, 0), 0);
  f.dl1->load(test::addr_for(g, 0, 1), 1);
  FaultInjector inj(FaultModel::kColumn, 1.0, Rng(5));
  // Inject until it lands in set 0 (both ways valid there).
  for (int i = 0; i < 50 && inj.stats().bits_flipped < 2; ++i) {
    inj.inject_once(*f.dl1);
  }
  EXPECT_GE(inj.stats().bits_flipped, 2u);
}

TEST(FaultInjector, DirectModelReusesFixedColumn) {
  CacheFixture f(Scheme::BaseP());
  f.dl1->load(0x100, 0);
  FaultInjector inj(FaultModel::kDirect, 1.0, Rng(6));
  inj.inject_once(*f.dl1);
  inj.inject_once(*f.dl1);
  // Two strikes on the same (byte, bit) of the same line cancel out.
  EXPECT_EQ(inj.stats().bits_flipped, 2u);
  EXPECT_EQ(corrupted_words(*f.dl1), 0u);
}

TEST(FaultInjector, ProbabilityControlsRate) {
  CacheFixture f(Scheme::BaseP());
  f.dl1->load(0x100, 0);
  FaultInjector inj(FaultModel::kRandom, 0.1, Rng(7));
  for (int i = 0; i < 20000; ++i) inj.tick(*f.dl1, i);
  EXPECT_NEAR(static_cast<double>(inj.stats().injections), 2000.0, 300.0);
}

TEST(FaultInjector, DeterministicGivenSeed) {
  auto run = [] {
    CacheFixture f(Scheme::BaseP());
    f.dl1->load(0x100, 0);
    f.dl1->load(0x5000, 1);
    FaultInjector inj(FaultModel::kRandom, 0.5, Rng(8));
    for (int i = 0; i < 100; ++i) inj.tick(*f.dl1, i);
    return inj.stats().injections;
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultModel, Names) {
  EXPECT_STREQ(to_string(FaultModel::kRandom), "random");
  EXPECT_STREQ(to_string(FaultModel::kAdjacent), "adjacent");
  EXPECT_STREQ(to_string(FaultModel::kColumn), "column");
  EXPECT_STREQ(to_string(FaultModel::kDirect), "direct");
}

}  // namespace
}  // namespace icr::fault
