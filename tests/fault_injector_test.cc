#include "src/fault/fault_injector.h"

#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "src/coding/parity.h"
#include "src/sim/campaign.h"
#include "tests/test_util.h"

namespace icr::fault {
namespace {

using core::Scheme;
using test::CacheFixture;

// Counts data bits that differ from a freshly computed parity view.
std::uint64_t corrupted_words(const core::IcrCache& c) {
  std::uint64_t count = 0;
  for (std::uint32_t s = 0; s < c.num_sets(); ++s) {
    for (std::uint32_t w = 0; w < c.ways(); ++w) {
      const core::IcrLine& l = c.line(s, w);
      if (!l.valid) continue;
      for (std::uint32_t word = 0; word < 8; ++word) {
        std::uint64_t v = 0;
        std::memcpy(&v, l.data.data() + word * 8, 8);
        if (byte_parity(v) != l.parity[word]) ++count;
      }
    }
  }
  return count;
}

TEST(FaultInjector, InjectsNothingAtZeroProbability) {
  CacheFixture f(Scheme::BaseP());
  f.dl1->load(0x100, 0);
  FaultInjector inj(FaultModel::kRandom, 0.0, Rng(1));
  for (int i = 0; i < 1000; ++i) inj.tick(*f.dl1, i);
  EXPECT_EQ(inj.stats().injections, 0u);
}

TEST(FaultInjector, SkipsEmptyCache) {
  CacheFixture f(Scheme::BaseP());
  FaultInjector inj(FaultModel::kRandom, 1.0, Rng(2));
  inj.inject_once(*f.dl1);
  EXPECT_EQ(inj.stats().injections, 0u);
  EXPECT_EQ(inj.stats().skipped_empty, 1u);
}

TEST(FaultInjector, RandomModelFlipsOneBit) {
  CacheFixture f(Scheme::BaseP());
  f.dl1->load(0x100, 0);
  FaultInjector inj(FaultModel::kRandom, 1.0, Rng(3));
  inj.inject_once(*f.dl1);
  EXPECT_EQ(inj.stats().injections, 1u);
  EXPECT_EQ(inj.stats().bits_flipped, 1u);
  EXPECT_EQ(corrupted_words(*f.dl1), 1u);
}

TEST(FaultInjector, AdjacentModelFlipsTwoBitsInOneByte) {
  CacheFixture f(Scheme::BaseP());
  f.dl1->load(0x100, 0);
  FaultInjector inj(FaultModel::kAdjacent, 1.0, Rng(4));
  inj.inject_once(*f.dl1);
  EXPECT_EQ(inj.stats().bits_flipped, 2u);
  // Two flips in one byte: byte parity is blind to them, so recompute via
  // the raw data instead — the word content changed even if parity matches.
}

TEST(FaultInjector, ColumnModelHitsAdjacentWay) {
  CacheFixture f(Scheme::BaseP());
  // Two blocks in the same set (ways 0 and 1).
  const auto& g = f.dl1->geometry();
  f.dl1->load(test::addr_for(g, 0, 0), 0);
  f.dl1->load(test::addr_for(g, 0, 1), 1);
  FaultInjector inj(FaultModel::kColumn, 1.0, Rng(5));
  // Inject until it lands in set 0 (both ways valid there).
  for (int i = 0; i < 50 && inj.stats().bits_flipped < 2; ++i) {
    inj.inject_once(*f.dl1);
  }
  EXPECT_GE(inj.stats().bits_flipped, 2u);
}

TEST(FaultInjector, DirectModelReusesFixedColumn) {
  CacheFixture f(Scheme::BaseP());
  f.dl1->load(0x100, 0);
  FaultInjector inj(FaultModel::kDirect, 1.0, Rng(6));
  inj.inject_once(*f.dl1);
  inj.inject_once(*f.dl1);
  // Two strikes on the same (byte, bit) of the same line cancel out.
  EXPECT_EQ(inj.stats().bits_flipped, 2u);
  EXPECT_EQ(corrupted_words(*f.dl1), 0u);
}

TEST(FaultInjector, ProbabilityControlsRate) {
  CacheFixture f(Scheme::BaseP());
  f.dl1->load(0x100, 0);
  FaultInjector inj(FaultModel::kRandom, 0.1, Rng(7));
  for (int i = 0; i < 20000; ++i) inj.tick(*f.dl1, i);
  EXPECT_NEAR(static_cast<double>(inj.stats().injections), 2000.0, 300.0);
}

TEST(FaultInjector, DeterministicGivenSeed) {
  auto run = [] {
    CacheFixture f(Scheme::BaseP());
    f.dl1->load(0x100, 0);
    f.dl1->load(0x5000, 1);
    FaultInjector inj(FaultModel::kRandom, 0.5, Rng(8));
    for (int i = 0; i < 100; ++i) inj.tick(*f.dl1, i);
    return inj.stats().injections;
  };
  EXPECT_EQ(run(), run());
}

// A small parallel injection campaign is statistically reproducible: the
// summed error-category counts (detected / corrected / unrecoverable /
// silent) are identical on every rerun with the same base seed, at any
// thread count — exactly what lets published fault-sweep numbers be
// regenerated on any machine.
TEST(FaultCampaign, CategoryCountsStableAcrossRepeatedRuns) {
  auto run_campaign = [](unsigned threads) {
    sim::CampaignSpec spec;
    spec.variants = {{"BaseP", Scheme::BaseP()},
                     {"ICR-ECC-PS(S)", Scheme::IcrEccPS_S()}};
    spec.apps = {trace::App::kVortex};
    spec.instructions = 20000;
    spec.trials = 4;
    spec.derive_seeds = true;
    spec.base_seed = 0xFA117ULL;
    spec.config.fault_model = FaultModel::kRandom;
    spec.config.fault_probability = 1e-3;
    const sim::CampaignResult campaign = sim::CampaignRunner(threads).run(spec);

    // Summed category counts over the whole grid.
    std::array<std::uint64_t, 6> counts{};
    for (const sim::CellResult& cell : campaign.cells) {
      counts[0] += cell.result.faults.injections;
      counts[1] += cell.result.dl1.errors_detected;
      counts[2] += cell.result.dl1.errors_corrected_by_replica +
                   cell.result.dl1.errors_corrected_by_ecc +
                   cell.result.dl1.errors_refetched_from_l2;
      counts[3] += cell.result.dl1.unrecoverable_loads;
      counts[4] += cell.result.pipeline.silent_corrupt_loads;
      counts[5] += cell.result.faults.bits_flipped;
    }
    return counts;
  };

  const auto serial = run_campaign(1);
  EXPECT_GT(serial[0], 0u) << "campaign injected no faults";
  EXPECT_GT(serial[1], 0u) << "campaign detected no errors";
  EXPECT_EQ(serial, run_campaign(1)) << "rerun (1 thread) diverged";
  EXPECT_EQ(serial, run_campaign(4)) << "rerun (4 threads) diverged";
}

TEST(FaultModel, Names) {
  EXPECT_STREQ(to_string(FaultModel::kRandom), "random");
  EXPECT_STREQ(to_string(FaultModel::kAdjacent), "adjacent");
  EXPECT_STREQ(to_string(FaultModel::kColumn), "column");
  EXPECT_STREQ(to_string(FaultModel::kDirect), "direct");
}

}  // namespace
}  // namespace icr::fault
