#include "src/cpu/functional_units.h"

#include <gtest/gtest.h>

namespace icr::cpu {
namespace {

using trace::OpClass;

TEST(FunctionalUnits, IntAluCapacity) {
  FunctionalUnits fu;  // 4 int ALUs
  std::uint32_t lat = 0;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(fu.try_issue(OpClass::kIntAlu, 0, lat));
    EXPECT_EQ(lat, 1u);
  }
  EXPECT_FALSE(fu.try_issue(OpClass::kIntAlu, 0, lat));
  // Pipelined: free again next cycle.
  EXPECT_TRUE(fu.try_issue(OpClass::kIntAlu, 1, lat));
}

TEST(FunctionalUnits, BranchesShareIntAlus) {
  FunctionalUnits fu;
  std::uint32_t lat = 0;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(fu.try_issue(i % 2 ? OpClass::kBranch : OpClass::kIntAlu, 0,
                             lat));
  }
  EXPECT_FALSE(fu.try_issue(OpClass::kBranch, 0, lat));
}

TEST(FunctionalUnits, MultiplierIsPipelined) {
  FunctionalUnits fu;  // 1 int mul/div
  std::uint32_t lat = 0;
  EXPECT_TRUE(fu.try_issue(OpClass::kIntMul, 0, lat));
  EXPECT_EQ(lat, 3u);
  EXPECT_FALSE(fu.try_issue(OpClass::kIntMul, 0, lat));  // same cycle
  EXPECT_TRUE(fu.try_issue(OpClass::kIntMul, 1, lat));   // next cycle
}

TEST(FunctionalUnits, DividerIsUnpipelined) {
  FunctionalUnits fu;
  std::uint32_t lat = 0;
  EXPECT_TRUE(fu.try_issue(OpClass::kIntDiv, 0, lat));
  EXPECT_EQ(lat, 20u);
  // Blocked for the whole operation.
  EXPECT_FALSE(fu.try_issue(OpClass::kIntMul, 5, lat));
  EXPECT_FALSE(fu.try_issue(OpClass::kIntDiv, 19, lat));
  EXPECT_TRUE(fu.try_issue(OpClass::kIntMul, 20, lat));
}

TEST(FunctionalUnits, FpLatenciesMatchTable) {
  FunctionalUnits fu;
  std::uint32_t lat = 0;
  EXPECT_TRUE(fu.try_issue(OpClass::kFpAlu, 0, lat));
  EXPECT_EQ(lat, 2u);
  EXPECT_TRUE(fu.try_issue(OpClass::kFpMul, 0, lat));
  EXPECT_EQ(lat, 4u);
  FunctionalUnits fu2;
  EXPECT_TRUE(fu2.try_issue(OpClass::kFpDiv, 0, lat));
  EXPECT_EQ(lat, 12u);
}

TEST(FunctionalUnits, MemPortsLimitLoadsPerCycle) {
  FunctionalUnits fu;  // 2 ports
  std::uint32_t lat = 0;
  EXPECT_TRUE(fu.try_issue(OpClass::kLoad, 0, lat));
  EXPECT_TRUE(fu.try_issue(OpClass::kStore, 0, lat));
  EXPECT_FALSE(fu.try_issue(OpClass::kLoad, 0, lat));
  EXPECT_TRUE(fu.try_issue(OpClass::kLoad, 1, lat));
}

TEST(FunctionalUnits, ExtendMemPortBlocksNextCycle) {
  FunctionalUnits fu;
  std::uint32_t lat = 0;
  EXPECT_TRUE(fu.try_issue(OpClass::kLoad, 0, lat));
  fu.extend_mem_port(0, 2);  // 2-cycle ECC hit occupies the port
  EXPECT_TRUE(fu.try_issue(OpClass::kLoad, 0, lat));   // second port free
  fu.extend_mem_port(0, 2);
  EXPECT_FALSE(fu.try_issue(OpClass::kLoad, 1, lat));  // both still busy
  EXPECT_TRUE(fu.try_issue(OpClass::kLoad, 2, lat));
}

TEST(FunctionalUnits, CustomConfig) {
  FuConfig cfg;
  cfg.int_alu = 1;
  cfg.int_alu_latency = 5;
  FunctionalUnits fu(cfg);
  std::uint32_t lat = 0;
  EXPECT_TRUE(fu.try_issue(OpClass::kIntAlu, 0, lat));
  EXPECT_EQ(lat, 5u);
  EXPECT_FALSE(fu.try_issue(OpClass::kIntAlu, 0, lat));
}

}  // namespace
}  // namespace icr::cpu
