// Hand-computed scenarios for the ACE-style lifetime tracker. Every
// expectation below is derived on paper from the accrual rule
//   exposure(word, [t0, t1]) = (A(t1) - A(t0)) / words_per_line,
//   A advancing by 1/V(t) per cycle,
// so the numbers are exact in floating point (all are small dyadic
// rationals) and the tests compare with EXPECT_DOUBLE_EQ.
#include "src/rel/rel_model.h"

#include <gtest/gtest.h>

#include "src/rel/rel_tracker.h"

namespace icr::rel {
namespace {

constexpr std::uint64_t kBlock = 0x1000;
constexpr std::uint64_t kOther = 0x2000;

RelTracker::Config parity_config() {
  RelTracker::Config config;
  config.words_per_line = 8;
  config.scheme_parity = true;
  return config;
}

RelTracker::Config ecc_config() {
  RelTracker::Config config = parity_config();
  config.scheme_parity = false;
  return config;
}

void expect_conserved(const RelReport& report) {
  EXPECT_NEAR(report.conservation_sum(), report.total_exposure,
              1e-9 * (1.0 + report.total_exposure));
}

// One line, V = 1, 8 words: a word read at cycle 100 accrued
// 100 / (1 * 8) = 12.5 exposure units; SEC-DED corrects all of it.
TEST(RelTracker, EccCleanReadCorrects) {
  RelTracker tracker(ecc_config());
  tracker.on_fill(kBlock, 0, 0);
  tracker.on_read(kBlock, 0, /*dirty=*/false, /*parity_regime=*/false, 100);
  const RelReport report = tracker.report(100);

  EXPECT_DOUBLE_EQ(report.corrected_coef, 12.5);
  EXPECT_DOUBLE_EQ(report.total_exposure, 100.0);  // 8 words x 12.5
  EXPECT_DOUBLE_EQ(report.open_exposure, 87.5);    // the 7 unread words
  EXPECT_DOUBLE_EQ(report.word_cycles, 800.0);
  EXPECT_DOUBLE_EQ(
      report.state_exposure[static_cast<std::size_t>(RelState::kEccClean)],
      100.0);
  expect_conserved(report);
}

// Same accrual under byte parity on a clean line: parity detects and the
// recovery ladder refetches from L2, which counts as corrected.
TEST(RelTracker, ParityCleanReadRefetches) {
  RelTracker tracker(parity_config());
  tracker.on_fill(kBlock, 0, 0);
  tracker.on_read(kBlock, 0, /*dirty=*/false, /*parity_regime=*/true, 100);
  const RelReport report = tracker.report(100);

  EXPECT_DOUBLE_EQ(report.corrected_coef, 12.5);
  EXPECT_DOUBLE_EQ(report.replica_coef, 0.0);
  EXPECT_DOUBLE_EQ(report.detected_coef, 0.0);
  expect_conserved(report);
}

// A dirty parity word has no good copy anywhere: the mass accrued before a
// read becomes detected-uncorrectable, and the recovery ladder then makes
// the corrupt value architectural — every later read repeats one silent
// verdict and each inter-read gap contributes fresh detected mass.
TEST(RelTracker, ParityDirtyDetectsThenGoesSilent) {
  RelTracker tracker(parity_config());
  tracker.on_fill(kBlock, 0, 0);
  tracker.on_write(kBlock, 0, /*dirty_after=*/true, 0);
  tracker.on_read(kBlock, 0, /*dirty=*/true, /*parity_regime=*/true, 80);
  // 80 cycles at V=1: e_unc = 80/8 = 10 -> detected, c = 10.
  tracker.on_read(kBlock, 0, /*dirty=*/true, /*parity_regime=*/true, 160);
  // Second read: silent verdict on c=10, another 10 detected, c = 20.
  const RelReport report = tracker.report(160);

  EXPECT_DOUBLE_EQ(report.detected_coef, 20.0);
  EXPECT_DOUBLE_EQ(report.silent_coef, 10.0);
  EXPECT_DOUBLE_EQ(report.corrected_coef, 0.0);
  expect_conserved(report);
}

// A replica halves the strike rate (V=2) and covers the word: the read
// recovers from the clean copy.
TEST(RelTracker, ReplicaCoversAndDilutes) {
  RelTracker tracker(parity_config());
  tracker.on_fill(kBlock, 0, 0);
  tracker.on_replica_create(kBlock, 0);
  tracker.on_read(kBlock, 0, /*dirty=*/false, /*parity_regime=*/true, 160);
  // A(160) = 160/2 = 80 -> word exposure 80/8 = 10, all covered.
  const RelReport report = tracker.report(160);

  EXPECT_DOUBLE_EQ(report.replica_coef, 10.0);
  EXPECT_DOUBLE_EQ(report.corrected_coef, 0.0);
  EXPECT_DOUBLE_EQ(
      report.state_exposure[static_cast<std::size_t>(
          RelState::kReplicatedClean)],
      80.0);
  expect_conserved(report);
}

// Losing the last replica demotes covered mass: a strike absorbed while the
// replica existed can no longer be healed by it once the replica is gone.
TEST(RelTracker, LastReplicaLossDemotesCoverage) {
  RelTracker tracker(parity_config());
  tracker.on_fill(kBlock, 0, 0);
  tracker.on_replica_create(kBlock, 0);
  tracker.on_replica_evict(kBlock, 80);   // e_cov = (80/2)/8 = 5 -> e_unc
  tracker.on_read(kBlock, 0, /*dirty=*/false, /*parity_regime=*/true, 160);
  // 80 more cycles at V=1 add (80/1)/8 = 10 uncovered; clean -> refetch.
  const RelReport report = tracker.report(160);

  EXPECT_DOUBLE_EQ(report.corrected_coef, 15.0);
  EXPECT_DOUBLE_EQ(report.replica_coef, 0.0);
  expect_conserved(report);
}

// Dirty eviction writes the (possibly corrupted) bits to L2; refilling the
// block resurrects the mass as a standing wrong value that every consuming
// load reports as silent. The backing store stays corrupted (pending).
TEST(RelTracker, DirtyEvictionLaundersIntoSilentReloads) {
  RelTracker tracker(parity_config());
  tracker.on_fill(kBlock, 0, 0);
  tracker.on_write(kBlock, 0, /*dirty_after=*/true, 0);
  tracker.on_evict(kBlock, /*dirty=*/true, 80);
  // Every word deposited (80/1)/8 = 10 to the backing store.
  tracker.on_fill(kBlock, 0, 80);
  tracker.on_read(kBlock, 0, /*dirty=*/false, /*parity_regime=*/true, 160);
  tracker.on_read(kBlock, 0, /*dirty=*/false, /*parity_regime=*/true, 160);
  const RelReport report = tracker.report(160);

  EXPECT_DOUBLE_EQ(report.deposited_coef, 80.0);
  // Two consuming loads of the laundered word: one silent verdict each.
  EXPECT_DOUBLE_EQ(report.silent_coef, 20.0);
  // The second-life accrual (80 cycles at V=1) is refetched on read.
  EXPECT_DOUBLE_EQ(report.corrected_coef, 10.0);
  // Backing store still holds all eight corrupted words.
  EXPECT_DOUBLE_EQ(report.pending_residual, 80.0);
  expect_conserved(report);
}

// An overwrite destroys accrued strike mass without any check observing it.
TEST(RelTracker, OverwriteIsUnobserved) {
  RelTracker tracker(parity_config());
  tracker.on_fill(kBlock, 0, 0);
  tracker.on_write(kBlock, 0, /*dirty_after=*/true, 100);
  const RelReport report = tracker.report(100);

  EXPECT_DOUBLE_EQ(report.unobserved_coef, 12.5);
  EXPECT_DOUBLE_EQ(report.corrected_coef, 0.0);
  expect_conserved(report);
}

// A second resident line halves every word's strike rate.
TEST(RelTracker, ValidLinesDiluteExposure) {
  RelTracker tracker(parity_config());
  tracker.on_fill(kBlock, 0, 0);
  tracker.on_fill(kOther, 0, 0);
  tracker.on_read(kBlock, 0, /*dirty=*/false, /*parity_regime=*/true, 100);
  const RelReport report = tracker.report(100);

  EXPECT_DOUBLE_EQ(report.corrected_coef, 6.25);  // (100/2)/8
  expect_conserved(report);
}

// SEC-DED scrubbing repairs everything in place; the following read finds
// nothing left to correct.
TEST(RelTracker, EccScrubCleanses) {
  RelTracker tracker(ecc_config());
  tracker.on_fill(kBlock, 0, 0);
  tracker.on_scrub_visit(kBlock, /*dirty=*/false, /*parity_regime=*/false,
                         100);
  tracker.on_read(kBlock, 0, /*dirty=*/false, /*parity_regime=*/false, 100);
  const RelReport report = tracker.report(100);

  EXPECT_DOUBLE_EQ(report.scrub_coef, 100.0);  // all 8 words x 12.5
  EXPECT_DOUBLE_EQ(report.corrected_coef, 0.0);
  expect_conserved(report);
}

// A parity scrub on a dirty unreplicated line can detect but not repair:
// the uncovered mass survives to the next load.
TEST(RelTracker, ParityScrubCannotHealDirtyUncoveredWords) {
  RelTracker tracker(parity_config());
  tracker.on_fill(kBlock, 0, 0);
  tracker.on_write(kBlock, 0, /*dirty_after=*/true, 0);
  tracker.on_scrub_visit(kBlock, /*dirty=*/true, /*parity_regime=*/true, 80);
  tracker.on_read(kBlock, 0, /*dirty=*/true, /*parity_regime=*/true, 80);
  const RelReport report = tracker.report(80);

  EXPECT_DOUBLE_EQ(report.scrub_coef, 0.0);
  EXPECT_DOUBLE_EQ(report.detected_coef, 10.0);
  expect_conserved(report);
}

// The interval taxonomy: one fill->read interval for the consumed word, a
// read->evict-clean tail for its second life, and fill->evict-clean rows
// for the seven never-read words.
TEST(RelTracker, IntervalTaxonomyRows) {
  RelTracker tracker(parity_config());
  tracker.on_fill(kBlock, 0, 0);
  tracker.on_read(kBlock, 0, /*dirty=*/false, /*parity_regime=*/true, 100);
  tracker.on_evict(kBlock, /*dirty=*/false, 200);
  const RelReport report = tracker.report(200);

  ASSERT_EQ(report.intervals.size(), 3u);
  const std::size_t clean = static_cast<std::size_t>(RelState::kParityClean);

  const IntervalClassRow& fill_read = report.intervals[0];
  EXPECT_EQ(fill_read.start, IntervalStart::kFill);
  EXPECT_EQ(fill_read.end, IntervalEnd::kRead);
  EXPECT_EQ(fill_read.state, RelState::kParityClean);
  EXPECT_EQ(fill_read.count, 1u);
  EXPECT_DOUBLE_EQ(fill_read.cycles, 100.0);
  EXPECT_DOUBLE_EQ(fill_read.exposure, 12.5);

  const IntervalClassRow& fill_evict = report.intervals[1];
  EXPECT_EQ(fill_evict.start, IntervalStart::kFill);
  EXPECT_EQ(fill_evict.end, IntervalEnd::kEvictClean);
  EXPECT_EQ(fill_evict.count, 7u);
  EXPECT_DOUBLE_EQ(fill_evict.cycles, 1400.0);
  EXPECT_DOUBLE_EQ(fill_evict.exposure, 175.0);

  const IntervalClassRow& read_evict = report.intervals[2];
  EXPECT_EQ(read_evict.start, IntervalStart::kRead);
  EXPECT_EQ(read_evict.end, IntervalEnd::kEvictClean);
  EXPECT_EQ(read_evict.count, 1u);
  EXPECT_DOUBLE_EQ(read_evict.cycles, 100.0);
  EXPECT_DOUBLE_EQ(read_evict.exposure, 12.5);

  // Clean-evicted mass is never consumed: benign.
  EXPECT_DOUBLE_EQ(report.unobserved_coef, 187.5);
  EXPECT_DOUBLE_EQ(report.state_exposure[clean], 200.0);
  expect_conserved(report);
}

// report() must be a pure snapshot: calling it twice gives identical
// results and does not perturb the tracker.
TEST(RelTracker, ReportIsIdempotent) {
  RelTracker tracker(parity_config());
  tracker.on_fill(kBlock, 0, 0);
  tracker.on_read(kBlock, 0, false, true, 100);
  const RelReport a = tracker.report(150);
  const RelReport b = tracker.report(150);
  EXPECT_EQ(a.total_exposure, b.total_exposure);
  EXPECT_EQ(a.open_exposure, b.open_exposure);
  EXPECT_EQ(a.intervals.size(), b.intervals.size());
  // The tracker keeps accepting events after a snapshot.
  tracker.on_read(kBlock, 1, false, true, 200);
  const RelReport c = tracker.report(200);
  EXPECT_GT(c.corrected_coef, a.corrected_coef);
}

// Write-through stores refresh the backing word too, clearing its pending
// corruption; the other seven words stay pending.
TEST(RelTracker, WriteThroughClearsPendingWord) {
  RelTracker::Config config = parity_config();
  config.write_through = true;
  RelTracker tracker(config);
  tracker.on_fill(kBlock, 0, 0);
  tracker.on_write(kBlock, 0, /*dirty_after=*/true, 0);
  tracker.on_evict(kBlock, /*dirty=*/true, 80);  // deposits 10 per word
  tracker.on_fill(kBlock, 0, 80);
  tracker.on_write(kBlock, 0, /*dirty_after=*/false, 80);
  const RelReport report = tracker.report(80);

  EXPECT_DOUBLE_EQ(report.pending_residual, 70.0);  // 7 words x 10
  expect_conserved(report);
}

TEST(RelReport, DerivedQuantities) {
  RelReport report;
  report.cycles = 1000;
  report.clock_ghz = 1.0;
  report.total_exposure = 200.0;
  report.corrected_coef = 50.0;
  report.replica_coef = 30.0;
  report.detected_coef = 20.0;
  report.silent_coef = 5.0;
  report.deposited_coef = 40.0;

  EXPECT_DOUBLE_EQ(report.vf_corrected(), 0.25);
  EXPECT_DOUBLE_EQ(report.vf_replica_recovered(), 0.15);
  EXPECT_DOUBLE_EQ(report.vf_detected_uncorrectable(), 0.10);
  EXPECT_DOUBLE_EQ(report.vf_uncorrected(), 0.30);  // (20 + 40) / 200

  const RelPrediction at = report.evaluate(1e-3);
  EXPECT_DOUBLE_EQ(at.corrected, 0.05);
  EXPECT_DOUBLE_EQ(at.silent, 0.005);
  EXPECT_DOUBLE_EQ(at.total(), 0.105);

  // cycle_scale stretches an injection run that took twice as long.
  const RelPrediction scaled = report.evaluate(1e-3, 2.0);
  EXPECT_DOUBLE_EQ(scaled.corrected, 0.10);

  // FIT scale: events/run / cycles * (1e9 cycles/s * 3600 s/h) * 1e9 h.
  const RelPrediction fit = report.fit(1e-3);
  EXPECT_DOUBLE_EQ(fit.silent,
                   0.005 / 1000.0 * (1e9 * 3600.0) * 1e9);

  // Zero-exposure reports stay finite.
  RelReport empty;
  EXPECT_DOUBLE_EQ(empty.vf_uncorrected(), 0.0);
  EXPECT_DOUBLE_EQ(empty.fit(1e-3).total(), 0.0);
}

TEST(RelModel, EnumNamesAreStable) {
  EXPECT_STREQ(to_string(RelState::kParityClean), "parity_clean");
  EXPECT_STREQ(to_string(RelState::kEccDirty), "ecc_dirty");
  EXPECT_STREQ(to_string(IntervalStart::kFill), "fill");
  EXPECT_STREQ(to_string(IntervalEnd::kEvictDirty), "evict_dirty");
  EXPECT_STREQ(to_string(IntervalEnd::kRefresh), "refresh");
}

}  // namespace
}  // namespace icr::rel
