// End-to-end integration tests over the full system.
#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include "src/sim/experiment.h"

namespace icr::sim {
namespace {

constexpr std::uint64_t kSmallRun = 30000;

TEST(Simulator, RunsAndReportsBasicMetrics) {
  Simulator s(SimConfig::table1(), core::Scheme::BaseP(),
              trace::profile_for(trace::App::kGzip));
  const RunResult r = s.run(kSmallRun);
  EXPECT_GE(r.instructions, kSmallRun);
  EXPECT_GT(r.cycles, r.instructions / 4);  // can't beat the issue width
  EXPECT_GT(r.dl1.loads, 0u);
  EXPECT_GT(r.dl1.stores, 0u);
  EXPECT_GT(r.energy.total_nj(), 0.0);
  EXPECT_EQ(r.scheme, "BaseP");
  EXPECT_EQ(r.app, "gzip");
}

TEST(Simulator, DeterministicAcrossInstances) {
  auto run = [] {
    Simulator s(SimConfig::table1(), core::Scheme::IcrPPS_S(),
                trace::profile_for(trace::App::kVpr));
    return s.run(kSmallRun).cycles;
  };
  EXPECT_EQ(run(), run());
}

TEST(Simulator, BaseEccIsSlowerThanBaseP) {
  const RunResult p = run_one(trace::App::kGzip, core::Scheme::BaseP(),
                              SimConfig::table1(), kSmallRun);
  const RunResult e = run_one(trace::App::kGzip, core::Scheme::BaseECC(),
                              SimConfig::table1(), kSmallRun);
  EXPECT_GT(e.cycles, p.cycles);
  // Identical memory behaviour: ECC does not change miss rates.
  EXPECT_NEAR(e.dl1.miss_rate(), p.dl1.miss_rate(), 0.002);
}

TEST(Simulator, IcrCreatesReplicasAndServesLoads) {
  const RunResult r = run_one(trace::App::kGzip, core::Scheme::IcrPPS_S(),
                              SimConfig::table1(), kSmallRun);
  EXPECT_GT(r.dl1.replicas_created, 100u);
  EXPECT_GT(r.dl1.loads_with_replica_fraction(), 0.5);
  EXPECT_GT(r.dl1.replication_ability(), 0.05);
  EXPECT_LT(r.dl1.replication_ability(), 1.0);
}

TEST(Simulator, IcrRaisesMissRateButLittleTime) {
  const RunResult p = run_one(trace::App::kGzip, core::Scheme::BaseP(),
                              SimConfig::table1(), kSmallRun);
  const RunResult s = run_one(trace::App::kGzip, core::Scheme::IcrPPS_S(),
                              SimConfig::table1(), kSmallRun);
  EXPECT_GT(s.dl1.miss_rate(), p.dl1.miss_rate());
  // ...but the execution-time cost stays far below the ECC cost (the
  // paper's headline claim).
  const RunResult e = run_one(trace::App::kGzip, core::Scheme::BaseECC(),
                              SimConfig::table1(), kSmallRun);
  EXPECT_LT(static_cast<double>(s.cycles) - p.cycles,
            static_cast<double>(e.cycles) - p.cycles);
}

TEST(Simulator, NoCorruptionWithoutInjection) {
  for (auto scheme : {core::Scheme::BaseP(), core::Scheme::IcrPPS_LS(),
                      core::Scheme::IcrEccPS_S()}) {
    const RunResult r = run_one(trace::App::kParser, scheme,
                                SimConfig::table1(), kSmallRun);
    EXPECT_EQ(r.pipeline.silent_corrupt_loads, 0u) << scheme.name;
    EXPECT_EQ(r.pipeline.unrecoverable_loads, 0u) << scheme.name;
    EXPECT_EQ(r.dl1.errors_detected, 0u) << scheme.name;
  }
}

TEST(Simulator, InjectionCausesDetectedErrors) {
  SimConfig cfg = SimConfig::table1();
  cfg.fault_probability = 0.001;  // very high, to get counts quickly
  const RunResult r =
      run_one(trace::App::kVortex, core::Scheme::IcrPPS_S(), cfg, kSmallRun);
  EXPECT_GT(r.faults.injections, 10u);
  EXPECT_GT(r.dl1.errors_detected, 0u);
  EXPECT_GT(r.dl1.errors_corrected_by_replica, 0u);
}

TEST(Simulator, BaseEccRecoversWhereBasePCannot) {
  SimConfig cfg = SimConfig::table1();
  cfg.fault_probability = 0.001;
  const RunResult p =
      run_one(trace::App::kVortex, core::Scheme::BaseP(), cfg, kSmallRun);
  const RunResult e =
      run_one(trace::App::kVortex, core::Scheme::BaseECC(), cfg, kSmallRun);
  EXPECT_GT(p.dl1.unrecoverable_loads, 0u);
  EXPECT_EQ(e.dl1.unrecoverable_loads, 0u);  // SEC-DED corrects all singles
  EXPECT_GT(e.dl1.errors_corrected_by_ecc, 0u);
}

TEST(Simulator, IcrReducesUnrecoverableLoadsVsBaseP) {
  SimConfig cfg = SimConfig::table1();
  cfg.fault_probability = 0.0005;
  const RunResult p =
      run_one(trace::App::kVortex, core::Scheme::BaseP(), cfg, 60000);
  const RunResult s =
      run_one(trace::App::kVortex, core::Scheme::IcrPPS_S(), cfg, 60000);
  EXPECT_LT(s.dl1.unrecoverable_loads, p.dl1.unrecoverable_loads);
}

TEST(Simulator, WriteThroughCostsMoreEnergyAndTime) {
  const RunResult wb = run_one(trace::App::kGzip, core::Scheme::IcrPPS_S(),
                               SimConfig::table1(), kSmallRun);
  const RunResult wt =
      run_one(trace::App::kGzip, core::Scheme::BaseP().with_write_through(8),
              SimConfig::table1(), kSmallRun);
  EXPECT_GT(wt.energy_events.l2_writes, wb.energy_events.l2_writes * 2);
  EXPECT_GT(wt.energy.l2_nj, wb.energy.l2_nj);
}

TEST(Simulator, EnergyEventsExcludeIfetchL2Reads) {
  Simulator s(SimConfig::table1(), core::Scheme::BaseP(),
              trace::profile_for(trace::App::kGcc));
  const RunResult r = s.run(kSmallRun);
  EXPECT_LE(r.energy_events.l2_reads + s.hierarchy().l2_ifetch_reads(),
            s.hierarchy().l2_read_accesses());
}

TEST(Simulator, InvariantsHoldAfterFullRun) {
  for (auto scheme :
       {core::Scheme::IcrPPS_S(), core::Scheme::IcrEccPP_LS(),
        core::Scheme::IcrPPS_S().with_leave_replicas(true)}) {
    Simulator s(SimConfig::table1(), scheme,
                trace::profile_for(trace::App::kVpr));
    s.run(kSmallRun);
    s.dl1().check_invariants();
  }
}

}  // namespace
}  // namespace icr::sim
