// Tier-1 contract of the campaign farm: sharding is a partition, claims are
// exclusive, checkpoints round-trip exactly, the streaming aggregator emits
// the same bytes as the in-memory exporters at any worker count, and its
// state does not grow with the grid.
#include "src/sim/farm.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/sim/campaign.h"
#include "src/sim/cli.h"
#include "src/sim/results_io.h"
#include "src/util/fs.h"

namespace icr::sim::farm {
namespace {

// Fresh spool directory under the test's temp area.
std::string make_temp_spool() {
  char tmpl[] = "/tmp/icr_farm_test_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return std::string(dir) + "/spool";
}

// The campaign_test grid, shrunk a little so the multi-worker runs stay
// fast while still spanning several units.
CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.variants = {
      {"BaseP", core::Scheme::BaseP()},
      {"ICR-P-PS(S)", core::Scheme::IcrPPS_S()},
  };
  spec.apps = {trace::App::kVortex, trace::App::kMcf};
  spec.instructions = 20000;
  spec.trials = 2;
  spec.derive_seeds = true;
  spec.base_seed = 0xD5DB2003ULL;
  spec.config.fault_model = fault::FaultModel::kRandom;
  spec.config.fault_probability = 1e-4;
  return spec;
}

TEST(FarmSharding, IsAPartitionOverRandomShapes) {
  // Property: for random grid sizes and unit sizes, every cell index in
  // [0, total) lands in exactly one unit, units are contiguous, in order,
  // and the unit count matches the ceiling division.
  std::mt19937_64 rng(0xFA53u);
  for (int round = 0; round < 200; ++round) {
    const std::uint64_t total = rng() % 5000;
    const std::uint64_t unit_cells = rng() % 64;  // 0 exercised on purpose
    const std::vector<WorkUnit> units = shard_units(total, unit_cells);

    const std::uint64_t effective = unit_cells == 0 ? 1 : unit_cells;
    ASSERT_EQ(units.size(), (total + effective - 1) / effective)
        << "total=" << total << " unit_cells=" << unit_cells;

    std::uint64_t cursor = 0;
    for (std::size_t i = 0; i < units.size(); ++i) {
      EXPECT_EQ(units[i].index, i);
      EXPECT_EQ(units[i].begin, cursor) << "gap or overlap at unit " << i;
      EXPECT_LT(units[i].begin, units[i].end);
      EXPECT_LE(units[i].cells(), effective);
      cursor = units[i].end;
    }
    EXPECT_EQ(cursor, total);
  }
}

TEST(FarmManifest, RoundTripsThroughJson) {
  CampaignSpec spec = small_spec();
  spec.sampling.warmup_instructions = 5000;
  spec.sampling.windows = 3;
  spec.sampling.window_width = 1000;
  spec.sampling.mode = SampleMode::kRandom;
  spec.sampling.seed = 0x5A3D11ULL;
  const Manifest manifest = manifest_for(spec, 3);

  const Manifest parsed = Manifest::parse(manifest.to_json());
  EXPECT_EQ(parsed.version, kFormatVersion);
  EXPECT_EQ(parsed.config_hash, manifest.config_hash);
  EXPECT_EQ(parsed.base_seed, manifest.base_seed);
  EXPECT_EQ(parsed.instructions, manifest.instructions);
  EXPECT_EQ(parsed.trials, manifest.trials);
  EXPECT_EQ(parsed.derive_seeds, manifest.derive_seeds);
  EXPECT_EQ(parsed.variant_count, manifest.variant_count);
  EXPECT_EQ(parsed.app_count, manifest.app_count);
  EXPECT_EQ(parsed.total_cells, manifest.total_cells);
  EXPECT_EQ(parsed.unit_cells, manifest.unit_cells);
  EXPECT_EQ(parsed.unit_count, manifest.unit_count);
  EXPECT_EQ(parsed.schemes, manifest.schemes);
  EXPECT_EQ(parsed.apps, manifest.apps);
  EXPECT_EQ(parsed.decay_window, manifest.decay_window);
  EXPECT_EQ(parsed.fault_model, manifest.fault_model);
  EXPECT_EQ(parsed.fault_probability, manifest.fault_probability);
  EXPECT_EQ(parsed.sampling.warmup_instructions,
            manifest.sampling.warmup_instructions);
  EXPECT_EQ(parsed.sampling.windows, manifest.sampling.windows);
  EXPECT_EQ(parsed.sampling.window_width, manifest.sampling.window_width);
  EXPECT_EQ(parsed.sampling.mode, manifest.sampling.mode);
  EXPECT_EQ(parsed.sampling.seed, manifest.sampling.seed);

  // The reconstruction contract: a CLI-built manifest rebuilds a spec with
  // the exact same experiment fingerprint.
  const CampaignSpec rebuilt = spec_from_manifest(parsed);
  EXPECT_EQ(campaign_config_hash(rebuilt), manifest.config_hash);

  EXPECT_THROW((void)Manifest::parse("not json"), std::runtime_error);
  EXPECT_THROW((void)Manifest::parse("{}"), std::runtime_error);
}

TEST(FarmManifest, GeometrySweepRoundTripsAndReExpands) {
  // Geometry-swept manifests serialize the *base* schemes plus the sweep
  // axes; reconstruction re-runs the deterministic expansion and must land
  // on the same config hash (docs/GEOMETRY.md).
  CampaignSpec spec = small_spec();
  spec.geometry.sizes = {8 * 1024, 16 * 1024};
  spec.geometry.assocs = {2, 4};
  spec.geometry.ways_disabled = {0, 1};
  spec.geometry.pattern = mem::WayDisableConfig::Pattern::kRandom;
  spec.geometry.way_seed = 0xBEEFULL;
  expand_geometry_sweep(spec);
  ASSERT_EQ(spec.variants.size(), 2u * 8u);

  const Manifest manifest = manifest_for(spec, 4);
  // Base labels, not the 16 expanded ones: spec_from_manifest resolves
  // them through sim::cli.
  EXPECT_EQ(manifest.schemes,
            (std::vector<std::string>{"BaseP", "ICR-P-PS(S)"}));
  EXPECT_EQ(manifest.variant_count, 16u);

  const Manifest parsed = Manifest::parse(manifest.to_json());
  EXPECT_EQ(parsed.geometry.sizes, spec.geometry.sizes);
  EXPECT_EQ(parsed.geometry.assocs, spec.geometry.assocs);
  EXPECT_EQ(parsed.geometry.ways_disabled, spec.geometry.ways_disabled);
  EXPECT_EQ(parsed.geometry.pattern, spec.geometry.pattern);
  EXPECT_EQ(parsed.geometry.way_seed, spec.geometry.way_seed);

  const CampaignSpec rebuilt = spec_from_manifest(parsed);
  ASSERT_EQ(rebuilt.variants.size(), spec.variants.size());
  for (std::size_t i = 0; i < spec.variants.size(); ++i) {
    EXPECT_EQ(rebuilt.variants[i].label, spec.variants[i].label);
  }
  EXPECT_EQ(campaign_config_hash(rebuilt), manifest.config_hash);

  // A sweep-free manifest keeps its historical bytes: no "geometry" key.
  EXPECT_EQ(manifest_for(small_spec(), 4).to_json().find("\"geometry\""),
            std::string::npos);
}

TEST(FarmAggregation, GeometrySweptSpoolByteIdenticalToInMemory) {
  CampaignSpec spec = small_spec();
  spec.apps = {trace::App::kVortex};
  spec.trials = 1;
  spec.geometry.sizes = {8 * 1024};
  spec.geometry.assocs = {2, 4};
  spec.geometry.ways_disabled = {0, 1};
  expand_geometry_sweep(spec);

  const std::string spool = make_temp_spool();
  const Manifest manifest = manifest_for(spec, 3);
  init_spool(spool, manifest);
  (void)run_worker_loop(spool, spec);

  std::ostringstream csv_out, json_out;
  FarmAggregator aggregator(manifest, &csv_out, &json_out);
  for (std::uint32_t u = 0; u < manifest.unit_count; ++u) {
    aggregator.add_unit(
        u, parse_unit_json(util::fs::read_text_file(unit_path(spool, u)), u));
  }
  aggregator.finish();

  const CampaignResult in_memory = CampaignRunner(2).run(spec);
  EXPECT_EQ(csv_out.str(), to_csv(in_memory));
  EXPECT_EQ(json_out.str(), to_json(in_memory, /*include_timing=*/false));
  // Geometry provenance survived the unit-record round trip.
  EXPECT_NE(csv_out.str().find(",dl1_size,dl1_assoc,ways_disabled,"),
            std::string::npos);
}

TEST(FarmCellRecord, MetricBitsRoundTripExactly) {
  // Awkward IEEE-754 payloads must survive the checkpoint byte-for-byte:
  // the exporters print the reloaded doubles, so a single flipped mantissa
  // bit would break the bit-identical-resume guarantee.
  CellRecord record;
  record.variant_idx = 1;
  record.app_idx = 2;
  record.trial_idx = 3;
  record.seed = 0xDEADBEEFCAFEF00DULL;
  record.variant = "ICR-P-PS(S)";
  record.app = "mcf";
  record.metric_bits = {
      0x0000000000000000ULL,  // +0.0
      0x8000000000000000ULL,  // -0.0
      0x0000000000000001ULL,  // smallest subnormal
      0x3FF0000000000001ULL,  // 1.0 + 1 ulp
      0x7FEFFFFFFFFFFFFFULL,  // largest finite
      0x3FB999999999999AULL,  // 0.1
  };
  record.sampling.sampled = true;
  record.sampling.budget = 20000;
  record.sampling.warmup_instructions = 5000;
  record.sampling.windows = 3;
  record.sampling.measured_instructions = 3000;

  const std::string text = unit_to_json(7, {record});
  const std::vector<CellRecord> parsed = parse_unit_json(text, 7);
  ASSERT_EQ(parsed.size(), 1u);
  const CellRecord& back = parsed[0];
  EXPECT_EQ(back.variant_idx, record.variant_idx);
  EXPECT_EQ(back.app_idx, record.app_idx);
  EXPECT_EQ(back.trial_idx, record.trial_idx);
  EXPECT_EQ(back.seed, record.seed);
  EXPECT_EQ(back.variant, record.variant);
  EXPECT_EQ(back.app, record.app);
  EXPECT_EQ(back.metric_bits, record.metric_bits);
  EXPECT_EQ(back.sampling.sampled, record.sampling.sampled);
  EXPECT_EQ(back.sampling.budget, record.sampling.budget);
  EXPECT_EQ(back.sampling.warmup_instructions,
            record.sampling.warmup_instructions);
  EXPECT_EQ(back.sampling.windows, record.sampling.windows);
  EXPECT_EQ(back.sampling.measured_instructions,
            record.sampling.measured_instructions);

  // Wrong unit index and wrong version are rejected, not misread.
  EXPECT_THROW((void)parse_unit_json(text, 8), std::runtime_error);
}

TEST(FarmClaims, ExclusiveCreateAdmitsExactlyOneWinner) {
  const std::string spool = make_temp_spool();
  util::fs::make_directories(spool + "/claims");
  const std::string path = claim_path(spool, 0);

  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      if (util::fs::try_create_exclusive(path, "{\"pid\": 0}\n")) {
        winners.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(winners.load(), 1);
  EXPECT_TRUE(util::fs::exists(path));
}

TEST(FarmClaims, StaleClaimsClearedOnlyWhenUnitUnpublished) {
  const std::string spool = make_temp_spool();
  const CampaignSpec spec = small_spec();
  init_spool(spool, manifest_for(spec, 2));

  // Unit 0: claim + published record (a finished worker). Unit 1: claim
  // only (a killed worker). Unit 2: claim plus a leftover temp file.
  ASSERT_TRUE(util::fs::try_create_exclusive(claim_path(spool, 0), "{}\n"));
  util::fs::atomic_write_text_file(unit_path(spool, 0),
                                   unit_to_json(0, {}));
  ASSERT_TRUE(util::fs::try_create_exclusive(claim_path(spool, 1), "{}\n"));
  ASSERT_TRUE(util::fs::try_create_exclusive(claim_path(spool, 2), "{}\n"));
  util::fs::atomic_write_text_file(spool + "/units/keepme.txt", "x");

  const std::size_t cleared = clear_stale_claims(spool, 4);
  EXPECT_EQ(cleared, 2u);
  EXPECT_TRUE(util::fs::exists(claim_path(spool, 0)));  // published: kept
  EXPECT_FALSE(util::fs::exists(claim_path(spool, 1)));
  EXPECT_FALSE(util::fs::exists(claim_path(spool, 2)));
}

// Runs a spool to completion with `workers` threads, then streams it into
// strings through FarmAggregator.
void run_farm(const CampaignSpec& spec, std::uint64_t unit_cells,
              unsigned workers, std::string* csv, std::string* json) {
  const std::string spool = make_temp_spool();
  const Manifest manifest = manifest_for(spec, unit_cells);
  init_spool(spool, manifest);

  std::vector<std::thread> threads;
  for (unsigned w = 0; w < workers; ++w) {
    threads.emplace_back([&] { (void)run_worker_loop(spool, spec); });
  }
  for (std::thread& t : threads) t.join();

  const SpoolStatus status = scan_spool(spool, manifest);
  ASSERT_TRUE(status.complete());
  ASSERT_EQ(status.cells_done, manifest.total_cells);

  std::ostringstream csv_out, json_out;
  FarmAggregator aggregator(manifest, &csv_out, &json_out);
  for (std::uint32_t u = 0; u < manifest.unit_count; ++u) {
    aggregator.add_unit(
        u, parse_unit_json(util::fs::read_text_file(unit_path(spool, u)), u));
  }
  aggregator.finish();
  EXPECT_EQ(aggregator.cells_emitted(), manifest.total_cells);
  *csv = csv_out.str();
  *json = json_out.str();
}

TEST(FarmAggregation, ByteIdenticalToInMemoryExportersAtAnyWorkerCount) {
  const CampaignSpec spec = small_spec();

  // Golden shape: the in-memory exporters over an in-process campaign.
  const CampaignResult campaign = CampaignRunner(1).run(spec);
  const std::string want_csv = to_csv(campaign);
  const std::string want_json = to_json(campaign, /*include_timing=*/false);

  std::string csv1, json1, csv4, json4;
  run_farm(spec, /*unit_cells=*/3, /*workers=*/1, &csv1, &json1);
  run_farm(spec, /*unit_cells=*/2, /*workers=*/4, &csv4, &json4);

  EXPECT_EQ(csv1, want_csv);
  EXPECT_EQ(json1, want_json);
  EXPECT_EQ(csv4, want_csv);
  EXPECT_EQ(json4, want_json);
}

TEST(FarmAggregation, StateIndependentOfGridSize) {
  // The bounded-memory guarantee: aggregator-owned state is a fixed set of
  // counters, so a million-cell manifest costs the same as an 8-cell one.
  CampaignSpec spec = small_spec();
  const Manifest small = manifest_for(spec, 4);

  CampaignSpec huge_spec = spec;
  huge_spec.trials = 125000;  // 2 x 2 x 125000 = 500k cells
  const Manifest huge = manifest_for(huge_spec, 64);
  ASSERT_GT(huge.total_cells, 100000u);

  std::ostringstream sink_a, sink_b;
  const FarmAggregator a(small, &sink_a, nullptr);
  const FarmAggregator b(huge, nullptr, &sink_b);
  EXPECT_EQ(a.state_bytes(), b.state_bytes());

  // And refusing to finish a truncated stream is part of the contract.
  std::ostringstream sink_c;
  FarmAggregator c(small, &sink_c, nullptr);
  EXPECT_THROW(c.finish(), std::runtime_error);
}

TEST(FarmWorker, SpecHashMismatchRejected) {
  const std::string spool = make_temp_spool();
  const CampaignSpec spec = small_spec();
  init_spool(spool, manifest_for(spec, 2));

  CampaignSpec tampered = spec;
  tampered.base_seed ^= 1;
  EXPECT_THROW((void)run_worker_loop(spool, tampered), std::runtime_error);
}

TEST(FarmWorker, MaxUnitsStopsEarlyAndResumeCompletes) {
  const std::string spool = make_temp_spool();
  const CampaignSpec spec = small_spec();
  const Manifest manifest = manifest_for(spec, 2);
  init_spool(spool, manifest);

  const WorkerReport first = run_worker_loop(spool, spec, /*max_units=*/1);
  EXPECT_EQ(first.units_run, 1u);
  EXPECT_FALSE(scan_spool(spool, manifest).complete());

  const WorkerReport rest = run_worker_loop(spool, spec);
  EXPECT_EQ(first.units_run + rest.units_run, manifest.unit_count);
  EXPECT_TRUE(scan_spool(spool, manifest).complete());
}

TEST(FarmCli, UnknownFlagHelperExitsWithUsageHint) {
  // The shared rejection path every CLI binary (tools + benches) routes
  // unknown "--" flags through: non-zero exit plus a --help pointer.
  EXPECT_EXIT(cli::unknown_flag("farm_test", "--bogus-flag"),
              testing::ExitedWithCode(2), "unknown flag '--bogus-flag'");
}

}  // namespace
}  // namespace icr::sim::farm
