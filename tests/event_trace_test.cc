#include "src/obs/event_trace.h"

#include <gtest/gtest.h>

#include "src/obs/obs_io.h"

namespace icr::obs {
namespace {

TEST(EventTrace, RetainsInOrderBelowCapacity) {
  EventTrace trace(kAllCategories, 8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    trace.emit(EventKind::kReplicaCreate, /*cycle=*/i, /*a0=*/i * 64);
  }
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].cycle, i);
    EXPECT_EQ(events[i].a0, i * 64);
  }
  EXPECT_EQ(trace.emitted(), 5u);
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(EventTrace, RingWrapKeepsMostRecentAndCountsDropped) {
  EventTrace trace(kAllCategories, 4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    trace.emit(EventKind::kReplicaEvict, i);
  }
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first: cycles 6, 7, 8, 9 survive.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].cycle, 6 + i);
  }
  EXPECT_EQ(trace.emitted(), 10u);
  EXPECT_EQ(trace.dropped(), 6u);
}

TEST(EventTrace, CategoryFiltering) {
  EventTrace trace(category_bit(EventCategory::kFault), 16);
  EXPECT_TRUE(trace.wants(EventCategory::kFault));
  EXPECT_FALSE(trace.wants(EventCategory::kReplication));
  EXPECT_FALSE(trace.wants(EventCategory::kEviction));
  EXPECT_FALSE(trace.wants(EventCategory::kDecay));
}

TEST(EventTrace, CategoryOfKind) {
  EXPECT_EQ(category_of(EventKind::kReplicationAttempt),
            EventCategory::kReplication);
  EXPECT_EQ(category_of(EventKind::kReplicaCreate),
            EventCategory::kReplication);
  EXPECT_EQ(category_of(EventKind::kReplicaEvict), EventCategory::kEviction);
  EXPECT_EQ(category_of(EventKind::kDeadBlockRecycle), EventCategory::kDecay);
  EXPECT_EQ(category_of(EventKind::kFaultInject), EventCategory::kFault);
  EXPECT_EQ(category_of(EventKind::kFaultVerdict), EventCategory::kFault);
}

TEST(EventTrace, ParseCategoryList) {
  EXPECT_EQ(parse_category_list("all"), kAllCategories);
  EXPECT_EQ(parse_category_list("replication"),
            category_bit(EventCategory::kReplication));
  EXPECT_EQ(parse_category_list("replication,fault"),
            category_bit(EventCategory::kReplication) |
                category_bit(EventCategory::kFault));
  EXPECT_EQ(parse_category_list("eviction,decay"),
            category_bit(EventCategory::kEviction) |
                category_bit(EventCategory::kDecay));
  EXPECT_EQ(parse_category_list(""), 0u);
  EXPECT_EQ(parse_category_list("bogus"), 0u);
  EXPECT_EQ(parse_category_list("replication,bogus"), 0u);
}

// Golden NDJSON shapes — the schema documented in docs/OBSERVABILITY.md.
// A change here is a breaking change for downstream consumers.
TEST(EventTrace, NdjsonGoldenLines) {
  const CellTag tag{"ICR-P-PS(S)", "mcf", 2};

  std::string out;
  append_ndjson(out, {TraceEvent{100, EventKind::kReplicaCreate, 0x40, 3, 32}},
                tag);
  EXPECT_EQ(out,
            "{\"variant\":\"ICR-P-PS(S)\",\"app\":\"mcf\",\"trial\":2,"
            "\"cycle\":100,\"cat\":\"replication\",\"event\":\"replica_create\","
            "\"block\":\"0x0000000000000040\",\"set\":3,\"distance\":32}\n");

  out.clear();
  append_ndjson(
      out,
      {TraceEvent{7, EventKind::kFaultVerdict, 0x1234,
                  static_cast<std::uint64_t>(FaultVerdict::kReplicaRecovered),
                  0}},
      tag);
  EXPECT_EQ(out,
            "{\"variant\":\"ICR-P-PS(S)\",\"app\":\"mcf\",\"trial\":2,"
            "\"cycle\":7,\"cat\":\"fault\",\"event\":\"verdict\","
            "\"addr\":\"0x0000000000001234\",\"outcome\":\"replica_recovered\""
            "}\n");

  out.clear();
  append_ndjson(out, {TraceEvent{9, EventKind::kFaultInject, 5, 1, 2}}, tag);
  EXPECT_EQ(out,
            "{\"variant\":\"ICR-P-PS(S)\",\"app\":\"mcf\",\"trial\":2,"
            "\"cycle\":9,\"cat\":\"fault\",\"event\":\"inject\","
            "\"set\":5,\"way\":1,\"bits\":2}\n");
}

TEST(EventTrace, VerdictStrings) {
  EXPECT_STREQ(to_string(FaultVerdict::kCorrected), "corrected");
  EXPECT_STREQ(to_string(FaultVerdict::kReplicaRecovered),
               "replica_recovered");
  EXPECT_STREQ(to_string(FaultVerdict::kDetectedUncorrectable),
               "detected_uncorrectable");
  EXPECT_STREQ(to_string(FaultVerdict::kSilent), "silent");
}

}  // namespace
}  // namespace icr::obs
