#include "src/trace/patterns.h"

#include <gtest/gtest.h>

#include <set>

namespace icr::trace {
namespace {

TEST(SequentialStream, WalksAndWraps) {
  SequentialStream s(0x1000, 64, 8);
  Rng rng(1);
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t i = 0; i < 8; ++i) {
      EXPECT_EQ(s.next(rng), 0x1000 + i * 8);
    }
  }
}

TEST(SequentialStream, StrideVariant) {
  SequentialStream s(0x2000, 1024, 136);
  Rng rng(1);
  EXPECT_EQ(s.next(rng), 0x2000u);
  EXPECT_EQ(s.next(rng), 0x2000u + 136 - 136 % 8);  // aligned down
}

TEST(SequentialStream, AddressesAreWordAligned) {
  SequentialStream s(0x3001, 999, 7);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(s.next(rng) % 8, 0u);
  }
}

TEST(ZipfBlocks, StaysInRegion) {
  ZipfBlocks z(0x10000, 4096, 1.0);  // 64 blocks
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = z.next(rng);
    EXPECT_GE(a, 0x10000u);
    EXPECT_LT(a, 0x10000u + 4096);
    EXPECT_EQ(a % 8, 0u);
  }
}

TEST(ZipfBlocks, HotBlocksAreSpreadBySuffle) {
  // The most frequent block should not always be the first block of the
  // region (the shuffle decorrelates rank from layout).
  ZipfBlocks z(0x10000, 64 * 1024, 1.3);
  Rng rng(3);
  std::uint64_t first_block_hits = 0;
  for (int i = 0; i < 5000; ++i) {
    if (z.next(rng) / 64 == 0x10000 / 64) ++first_block_hits;
  }
  EXPECT_LT(first_block_hits, 2500u);
}

TEST(PointerChase, VisitsEveryNodeBeforeRepeating) {
  Rng rng(4);
  const std::uint32_t nodes = 32;
  PointerChase p(0x20000, nodes * 64, 64, rng);
  std::set<std::uint64_t> seen;
  Rng walk(5);
  for (std::uint32_t i = 0; i < nodes; ++i) {
    seen.insert(p.next(walk) / 64);
  }
  EXPECT_EQ(seen.size(), nodes);  // a single Hamiltonian cycle
  // The next reference repeats the cycle.
  EXPECT_NE(seen.find(p.next(walk) / 64), seen.end());
}

TEST(PointerChase, OrderIsNotSequential) {
  Rng rng(6);
  PointerChase p(0, 256 * 64, 64, rng);
  Rng walk(7);
  int sequential_steps = 0;
  std::uint64_t prev = p.next(walk);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t cur = p.next(walk);
    if (cur == prev + 64) ++sequential_steps;
    prev = cur;
  }
  EXPECT_LT(sequential_steps, 20);
}

TEST(MixturePattern, RespectsWeights) {
  MixturePattern m;
  m.add(0.9, std::make_unique<SequentialStream>(0x0, 1 << 20, 8));
  m.add(0.1, std::make_unique<SequentialStream>(0x4000'0000, 1 << 20, 8));
  Rng rng(8);
  int high = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (m.next(rng) >= 0x4000'0000) ++high;
  }
  EXPECT_NEAR(static_cast<double>(high) / kDraws, 0.1, 0.02);
}

TEST(MixturePattern, TracksLastComponent) {
  MixturePattern m;
  m.add(1.0, std::make_unique<SequentialStream>(0x0, 64, 8));
  m.add(1.0, std::make_unique<SequentialStream>(0x4000'0000, 64, 8));
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = m.next(rng);
    EXPECT_EQ(m.last_component(), a >= 0x4000'0000 ? 1u : 0u);
  }
}

}  // namespace
}  // namespace icr::trace
