#include "src/mem/memory_hierarchy.h"

#include <gtest/gtest.h>

namespace icr::mem {
namespace {

TEST(MemoryHierarchy, IfetchLatencies) {
  MemoryHierarchy h;
  // Cold fetch: L1I miss + L2 miss -> 1 + 6 + 100.
  EXPECT_EQ(h.ifetch(0x400000, 0), 107u);
  // Same block again: L1I hit -> 1.
  EXPECT_EQ(h.ifetch(0x400004, 1), 1u);
  // Different L1I block, same L2 block (L1I has 32B lines, L2 64B):
  EXPECT_EQ(h.ifetch(0x400020, 2), 7u);
}

TEST(MemoryHierarchy, DataFetchLatencies) {
  MemoryHierarchy h;
  EXPECT_EQ(h.fetch_block(0x10000, 0), 106u);  // L2 miss -> 6 + 100
  EXPECT_EQ(h.fetch_block(0x10000, 1), 6u);    // L2 hit
  EXPECT_EQ(h.memory_accesses(), 1u);
  EXPECT_EQ(h.l2_read_accesses(), 2u);
}

TEST(MemoryHierarchy, WritebackAllocatesInL2) {
  MemoryHierarchy h;
  EXPECT_EQ(h.write_back_block(0x20000, 0), 6u);
  EXPECT_EQ(h.l2_write_accesses(), 1u);
  // The block now hits in L2.
  EXPECT_EQ(h.fetch_block(0x20000, 1), 6u);
}

TEST(MemoryHierarchy, IfetchReadsTrackedSeparately) {
  MemoryHierarchy h;
  h.ifetch(0x400000, 0);            // L2 read on behalf of L1I
  h.fetch_block(0x10000, 1);        // data-side L2 read
  EXPECT_EQ(h.l2_read_accesses(), 2u);
  EXPECT_EQ(h.l2_ifetch_reads(), 1u);
}

TEST(MemoryHierarchy, WriteThroughDrainCounting) {
  MemoryHierarchy h;
  h.count_write_through_drain(5);
  EXPECT_EQ(h.l2_write_accesses(), 5u);
}

TEST(MemoryHierarchy, CustomLatencies) {
  HierarchyConfig cfg;
  cfg.l2_latency = 10;
  cfg.memory_latency = 50;
  MemoryHierarchy h(cfg);
  EXPECT_EQ(h.fetch_block(0x0, 0), 60u);
  EXPECT_EQ(h.fetch_block(0x0, 1), 10u);
}

TEST(MemoryHierarchy, DirtyL2EvictionReachesMemory) {
  MemoryHierarchy h;
  // Fill one L2 set (4 ways) with dirty blocks, then evict.
  const std::uint64_t stride =
      static_cast<std::uint64_t>(h.l2().geometry().num_sets()) * 64;
  for (int i = 0; i < 4; ++i) h.write_back_block(i * stride, i);
  const auto mem_before = h.memory_accesses();
  h.write_back_block(4 * stride, 5);  // evicts a dirty line
  EXPECT_EQ(h.memory_accesses(), mem_before + 1);
}

}  // namespace
}  // namespace icr::mem
