// Trace-driven campaigns: replay bit-identity against the generator, the
// interval-shard decomposition, config-hash provenance, the manifest trace
// block, and farm exports byte-identical to an in-process run.
#include "src/sim/campaign.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/sim/farm.h"
#include "src/sim/results_io.h"
#include "src/sim/simulator.h"
#include "src/trace/trace_v2.h"
#include "src/trace/workloads.h"
#include "src/util/fs.h"

namespace icr::sim {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string make_temp_spool() {
  char tmpl[] = "/tmp/icr_trace_campaign_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return std::string(dir) + "/spool";
}

// Records `records` instructions of a synthetic app into a v2 container.
std::string record_fixture(const char* name, trace::App app,
                           std::uint64_t records) {
  const std::string path = temp_path(name);
  trace::SyntheticWorkload source(trace::profile_for(app));
  trace::record_trace_v2(source, records, path);
  return path;
}

TEST(TraceReplay, ReproducesTheGeneratorRunBitForBit) {
  // The OoO pipeline fetches ahead of the commit target, so the trace must
  // carry a margin of records beyond the replayed instruction count —
  // otherwise in-flight fetches wrap to the trace start (docs/TRACES.md).
  const std::uint64_t kRun = 20000;
  const std::string path =
      record_fixture("replay_fixture.icrt", trace::App::kGzip, kRun + 2000);

  const SimConfig config = SimConfig::table1();
  const core::Scheme scheme = core::Scheme::IcrPPS_S();

  Simulator generator(config, scheme, trace::profile_for(trace::App::kGzip));
  const RunResult want = generator.run(kRun);

  trace::OpenedTrace opened = trace::open_trace(path);
  Simulator replay(config, scheme, std::move(opened.source), "gzip");
  const RunResult got = replay.run(kRun);

  // Every cumulative counter — cache, pipeline, branch, fault, energy
  // events — must match exactly, not approximately.
  EXPECT_EQ(got.cycles, want.cycles);
  EXPECT_EQ(got.instructions, want.instructions);
  EXPECT_EQ(counter_vector(got), counter_vector(want));
  std::remove(path.c_str());
}

TEST(TraceCampaign, ShardDecompositionCoversTheBudgetExactly) {
  const std::string path =
      record_fixture("shards.icrt", trace::App::kMcf, 10000);
  CampaignSpec spec;
  spec.variants = {{"BaseP", core::Scheme::BaseP()}};
  spec.trace.path = path;
  spec.trace.shard_instructions = 3000;
  spec.instructions = 10000;
  resolve_trace_campaign(spec);
  EXPECT_EQ(spec.trace.records, 10000u);
  EXPECT_NE(spec.trace.fingerprint, 0u);

  // ceil(10000 / 3000) = 4 shards; the tail shard is short.
  ASSERT_EQ(trace_shard_count(spec), 4u);
  ASSERT_EQ(spec.app_axis(), 4u);
  std::uint64_t covered = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const TraceShard shard = trace_shard(spec, i);
    EXPECT_EQ(shard.begin, covered);
    covered += shard.instructions;
  }
  EXPECT_EQ(covered, 10000u);
  EXPECT_EQ(trace_shard(spec, 3).instructions, 1000u);

  // Labels are deterministic, comma-free (CSV-safe), and distinct.
  EXPECT_EQ(trace_shard_label(spec, 0), "shards.icrt@0+3000");
  EXPECT_EQ(trace_shard_label(spec, 3), "shards.icrt@9000+1000");

  // shard_instructions == 0: one cell covering the whole budget.
  CampaignSpec whole = spec;
  whole.trace.shard_instructions = 0;
  EXPECT_EQ(trace_shard_count(whole), 1u);
  EXPECT_EQ(trace_shard(whole, 0).instructions, 10000u);
  std::remove(path.c_str());
}

TEST(TraceCampaign, ConfigHashTracksContentNotPath) {
  const std::string path =
      record_fixture("hash.icrt", trace::App::kVpr, 5000);
  CampaignSpec spec;
  spec.variants = {{"BaseP", core::Scheme::BaseP()}};
  spec.trace.path = path;
  spec.trace.shard_instructions = 1000;
  spec.instructions = 5000;
  resolve_trace_campaign(spec);
  const std::uint64_t base = campaign_config_hash(spec);

  // A synthetic campaign with the same variants hashes differently.
  CampaignSpec synthetic;
  synthetic.variants = spec.variants;
  synthetic.apps = {trace::App::kVpr};
  synthetic.instructions = 5000;
  EXPECT_NE(campaign_config_hash(synthetic), base);

  // Moving the file does not change the experiment...
  CampaignSpec moved = spec;
  moved.trace.path = "/elsewhere/hash.icrt";
  EXPECT_EQ(campaign_config_hash(moved), base);

  // ...but different content or a different decomposition does.
  CampaignSpec other_content = spec;
  other_content.trace.fingerprint ^= 1;
  EXPECT_NE(campaign_config_hash(other_content), base);
  CampaignSpec other_shards = spec;
  other_shards.trace.shard_instructions = 2500;
  EXPECT_NE(campaign_config_hash(other_shards), base);
  std::remove(path.c_str());
}

TEST(TraceCampaign, ModifiedTraceFileFailsTheFingerprintCheck) {
  const std::string path =
      record_fixture("tamper.icrt", trace::App::kParser, 4000);
  CampaignSpec spec;
  spec.variants = {{"BaseP", core::Scheme::BaseP()}};
  spec.trace.path = path;
  spec.instructions = 2000;
  resolve_trace_campaign(spec);

  // Replace the file with different content (same path, same length
  // class). The planned fingerprint no longer matches.
  {
    trace::WorkloadProfile profile = trace::profile_for(trace::App::kParser);
    profile.seed ^= 0xDEADULL;
    trace::SyntheticWorkload other(profile);
    trace::record_trace_v2(other, 4000, path);
  }
  try {
    (void)run_campaign_cell(spec, 0, 0, 0, 2000);
    FAIL() << "tampered trace ran anyway";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("fingerprint"),
              std::string::npos)
        << error.what();
  }
  std::remove(path.c_str());
}

TEST(TraceCampaign, ManifestCarriesTheTraceBlock) {
  const std::string path =
      record_fixture("manifest.icrt", trace::App::kVortex, 6000);
  CampaignSpec spec;
  spec.variants = {{"BaseP", core::Scheme::BaseP()},
                   {"ICR-P-PS(S)", core::Scheme::IcrPPS_S()}};
  spec.trace.path = path;
  spec.trace.shard_instructions = 1500;
  spec.instructions = 6000;
  spec.derive_seeds = true;
  spec.base_seed = 0xABCD1234ULL;
  resolve_trace_campaign(spec);

  const farm::Manifest manifest = farm::manifest_for(spec, 3);
  EXPECT_EQ(manifest.app_count, 4u);  // 4 interval shards
  EXPECT_EQ(manifest.total_cells, 8u);

  const farm::Manifest parsed = farm::Manifest::parse(manifest.to_json());
  EXPECT_EQ(parsed.trace.path, spec.trace.path);
  EXPECT_EQ(parsed.trace.shard_instructions, spec.trace.shard_instructions);
  EXPECT_EQ(parsed.trace.fingerprint, spec.trace.fingerprint);
  EXPECT_EQ(parsed.trace.records, spec.trace.records);
  EXPECT_EQ(parsed.config_hash, manifest.config_hash);

  // The reconstructed spec reproduces the experiment fingerprint without
  // re-probing the file.
  const CampaignSpec rebuilt = farm::spec_from_manifest(parsed);
  EXPECT_EQ(campaign_config_hash(rebuilt), manifest.config_hash);

  // A synthetic manifest does not grow a trace block.
  CampaignSpec synthetic;
  synthetic.variants = spec.variants;
  synthetic.apps = {trace::App::kGzip};
  const farm::Manifest plain = farm::manifest_for(synthetic, 3);
  EXPECT_EQ(plain.to_json().find("\"trace\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceCampaign, FarmExportsByteIdenticalToInProcessRun) {
  const std::string path =
      record_fixture("farm.icrt", trace::App::kGcc, 8000);
  CampaignSpec spec;
  spec.variants = {{"BaseP", core::Scheme::BaseP()},
                   {"ICR-P-PS(S)", core::Scheme::IcrPPS_S()}};
  spec.trace.path = path;
  spec.trace.shard_instructions = 2000;
  spec.instructions = 8000;
  spec.derive_seeds = true;
  spec.base_seed = 0x7C4CE5ULL;
  resolve_trace_campaign(spec);

  // Golden shape: the in-memory exporters over an in-process campaign.
  const CampaignResult campaign = CampaignRunner(1).run(spec);
  ASSERT_EQ(campaign.cells.size(), 8u);  // 2 schemes x 4 shards
  const std::string want_csv = to_csv(campaign);
  const std::string want_json = to_json(campaign, /*include_timing=*/false);
  EXPECT_NE(want_csv.find("farm.icrt@2000+2000"), std::string::npos);

  // Farm runs at two different (unit, worker) decompositions.
  for (const auto& shape : {std::pair<std::uint64_t, unsigned>{3, 1},
                            std::pair<std::uint64_t, unsigned>{2, 4}}) {
    const std::string spool = make_temp_spool();
    const farm::Manifest manifest = farm::manifest_for(spec, shape.first);
    farm::init_spool(spool, manifest);
    std::vector<std::thread> workers;
    for (unsigned w = 0; w < shape.second; ++w) {
      workers.emplace_back(
          [&] { (void)farm::run_worker_loop(spool, spec); });
    }
    for (std::thread& t : workers) t.join();

    std::ostringstream csv_out, json_out;
    farm::FarmAggregator aggregator(manifest, &csv_out, &json_out);
    for (std::uint32_t u = 0; u < manifest.unit_count; ++u) {
      aggregator.add_unit(
          u, farm::parse_unit_json(
                 util::fs::read_text_file(farm::unit_path(spool, u)), u));
    }
    aggregator.finish();
    EXPECT_EQ(csv_out.str(), want_csv)
        << "unit_cells=" << shape.first << " workers=" << shape.second;
    EXPECT_EQ(json_out.str(), want_json);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace icr::sim
