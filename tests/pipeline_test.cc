#include "src/cpu/pipeline.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/icr_cache.h"
#include "src/core/scheme.h"
#include "src/mem/memory_hierarchy.h"
#include "src/util/rng.h"

namespace icr::cpu {
namespace {

using trace::Instruction;
using trace::OpClass;

// Replays a fixed vector of instructions in a loop.
class VectorTrace final : public trace::TraceSource {
 public:
  explicit VectorTrace(std::vector<Instruction> instrs)
      : instrs_(std::move(instrs)) {}
  Instruction next() override {
    Instruction i = instrs_[pos_ % instrs_.size()];
    ++pos_;
    return i;
  }

 private:
  std::vector<Instruction> instrs_;
  std::size_t pos_ = 0;
};

Instruction alu(std::uint64_t pc, std::int16_t dest, std::int16_t src = -1) {
  Instruction i;
  i.op = OpClass::kIntAlu;
  i.pc = pc;
  i.next_pc = pc + 4;
  i.dest = dest;
  i.src1 = src;
  return i;
}

struct Bundle {
  Bundle(std::vector<Instruction> instrs, core::Scheme scheme)
      : trace(std::move(instrs)),
        dl1(mem::l1d_geometry_default(), std::move(scheme), hierarchy),
        pipe(PipelineConfig{}, trace, dl1, hierarchy) {}
  mem::MemoryHierarchy hierarchy;
  VectorTrace trace;
  core::IcrCache dl1;
  Pipeline pipe;
};

TEST(Pipeline, IndependentAluStreamApproachesIssueWidth) {
  // 8 independent ALU ops round-robin over distinct dests, no sources.
  std::vector<Instruction> v;
  for (int i = 0; i < 8; ++i) v.push_back(alu(0x400000 + 4 * i, i % 8));
  Bundle b(v, core::Scheme::BaseP());
  const auto& s = b.pipe.run(20000);
  EXPECT_GT(s.ipc(), 3.0);
}

TEST(Pipeline, SerialChainLimitsIpcToOne) {
  // Every instruction consumes the previous one's result.
  std::vector<Instruction> v;
  for (int i = 0; i < 8; ++i) {
    v.push_back(alu(0x400000 + 4 * i, 1, 1));
  }
  Bundle b(v, core::Scheme::BaseP());
  const auto& s = b.pipe.run(20000);
  EXPECT_LT(s.ipc(), 1.1);
  EXPECT_GT(s.ipc(), 0.8);
}

TEST(Pipeline, LoadLatencyVisibleOnDependentChain) {
  // load -> dependent ALU -> load (same hot block) ... BaseP vs BaseECC.
  auto make = [] {
    std::vector<Instruction> v;
    Instruction ld;
    ld.op = OpClass::kLoad;
    ld.pc = 0x400000;
    ld.next_pc = 0x400004;
    ld.mem_addr = 0x10000;
    ld.dest = 1;
    ld.src1 = 2;
    v.push_back(ld);
    v.push_back(alu(0x400004, 2, 1));
    return v;
  };
  Bundle p(make(), core::Scheme::BaseP());
  Bundle e(make(), core::Scheme::BaseECC());
  const std::uint64_t cp = p.pipe.run(10000).cycles;
  const std::uint64_t ce = e.pipe.run(10000).cycles;
  // The chain alternates load(1 or 2 cycles) + alu(1): ECC must be visibly
  // slower, approaching 3/2.
  EXPECT_GT(static_cast<double>(ce) / cp, 1.25);
}

TEST(Pipeline, CommitsExactlyRequestedInstructions) {
  std::vector<Instruction> v{alu(0x400000, 1)};
  Bundle b(v, core::Scheme::BaseP());
  const auto& s = b.pipe.run(1234);
  EXPECT_GE(s.committed, 1234u);
  EXPECT_LT(s.committed, 1234u + 8);  // at most one extra commit group
}

// Emits a branch (with fresh-random or constant outcome) every 4th
// instruction; random outcomes are drawn per dynamic instance so no
// predictor can learn them.
class BranchyTrace final : public trace::TraceSource {
 public:
  explicit BranchyTrace(bool random) : random_(random), rng_(5) {}
  Instruction next() override {
    const std::uint64_t pc = 0x400000 + 4 * (pos_ % 64);
    ++pos_;
    if (pos_ % 4 == 0) {
      Instruction br;
      br.op = OpClass::kBranch;
      br.pc = pc;
      br.branch_taken = random_ ? rng_.bernoulli(0.5) : false;
      br.next_pc = br.branch_taken ? pc + 64 : pc + 4;
      return br;
    }
    return alu(pc, static_cast<std::int16_t>(pos_ % 8));
  }

 private:
  bool random_;
  Rng rng_;
  std::uint64_t pos_ = 0;
};

TEST(Pipeline, MispredictedBranchesCostCycles) {
  mem::MemoryHierarchy h1, h2;
  BranchyTrace good_trace(false), bad_trace(true);
  core::IcrCache d1(mem::l1d_geometry_default(), core::Scheme::BaseP(), h1);
  core::IcrCache d2(mem::l1d_geometry_default(), core::Scheme::BaseP(), h2);
  Pipeline good(PipelineConfig{}, good_trace, d1, h1);
  Pipeline bad(PipelineConfig{}, bad_trace, d2, h2);
  const std::uint64_t cg = good.run(30000).cycles;
  const std::uint64_t cb = bad.run(30000).cycles;
  EXPECT_GT(bad.stats().mispredicted_branches,
            good.stats().mispredicted_branches * 5 + 100);
  EXPECT_GT(cb, cg);
}

TEST(Pipeline, StoreToLoadForwardingWorks) {
  std::vector<Instruction> v;
  Instruction st;
  st.op = OpClass::kStore;
  st.pc = 0x400000;
  st.next_pc = 0x400004;
  st.mem_addr = 0x20000;
  st.store_value = 7;
  v.push_back(st);
  Instruction ld;
  ld.op = OpClass::kLoad;
  ld.pc = 0x400004;
  ld.next_pc = 0x400008;
  ld.mem_addr = 0x20000;
  ld.dest = 1;
  v.push_back(ld);
  Bundle b(v, core::Scheme::BaseP());
  const auto& s = b.pipe.run(5000);
  EXPECT_GT(s.forwarded_loads, 1000u);
  EXPECT_EQ(s.silent_corrupt_loads, 0u);
}

TEST(Pipeline, NoSilentCorruptionWithoutFaults) {
  // Mixed load/store stream over several blocks, end-to-end verified.
  std::vector<Instruction> v;
  for (int i = 0; i < 32; ++i) {
    Instruction m;
    m.op = (i % 3 == 0) ? OpClass::kStore : OpClass::kLoad;
    m.pc = 0x400000 + 4 * i;
    m.next_pc = m.pc + 4;
    m.mem_addr = 0x30000 + (i % 16) * 8;
    m.store_value = 1000 + i;
    m.dest = (i % 3 == 0) ? -1 : static_cast<std::int16_t>(i % 8);
    v.push_back(m);
  }
  Bundle b(v, core::Scheme::BaseP());
  const auto& s = b.pipe.run(50000);
  EXPECT_EQ(s.silent_corrupt_loads, 0u);
  EXPECT_EQ(s.unrecoverable_loads, 0u);
}

TEST(Pipeline, DeterministicAcrossRuns) {
  auto run = [] {
    std::vector<Instruction> v;
    for (int i = 0; i < 16; ++i) {
      Instruction m;
      m.op = i % 4 == 0 ? OpClass::kLoad : OpClass::kIntAlu;
      m.pc = 0x400000 + 4 * i;
      m.next_pc = m.pc + 4;
      m.mem_addr = 0x40000 + i * 8;
      m.dest = i % 8;
      m.src1 = (i + 3) % 8;
      v.push_back(m);
    }
    Bundle b(v, core::Scheme::IcrPPS_S());
    return b.pipe.run(20000).cycles;
  };
  EXPECT_EQ(run(), run());
}

TEST(Pipeline, IcacheMissesStallFetch) {
  // A huge code footprint (jumping through many blocks) forces L1I misses.
  std::vector<Instruction> small{alu(0x400000, 1)};
  auto big = [] {
    std::vector<Instruction> v;
    for (int i = 0; i < 4096; ++i) {
      v.push_back(alu(0x400000 + 32ULL * i, 1));  // one per L1I block
    }
    return v;
  }();
  Bundle s(small, core::Scheme::BaseP());
  Bundle b(big, core::Scheme::BaseP());
  const std::uint64_t cs = s.pipe.run(20000).cycles;
  const std::uint64_t cb = b.pipe.run(20000).cycles;
  EXPECT_GT(cb, 2 * cs);
}

}  // namespace
}  // namespace icr::cpu
