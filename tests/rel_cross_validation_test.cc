// Cross-validation of the analytical reliability model against Monte Carlo
// fault injection — the headline claim of the src/rel subsystem.
//
// For every fig14 scheme we run two campaigns with the same base seed and
// derived per-cell seeds: a clean one (no injection, tracker attached) and
// an injected one (uniform random model at p per cycle). Because
// derive_cell_seed() splits the workload seed before the fault seed, the
// clean and injected cells of the same (variant, app, trial) coordinate
// execute the identical instruction stream, so the tracker's coefficients
// describe exactly the run the injector strikes.
//
// Agreement criterion, per (scheme, outcome): the analytical expectation
// coef * p * (injected_cycles / clean_cycles) summed over trials must fall
// within three sigma of the observed outcome count on at least 6 of the 8
// applications, where sigma combines the Poisson error of the count, the
// observed trial-to-trial scatter, and a small-count floor. On top of the
// per-outcome agreement, the across-scheme ranking by silent errors — the
// paper's headline reliability ordering — must match exactly between model
// and injection.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/rel/rel_model.h"
#include "src/sim/campaign.h"

namespace icr::sim {
namespace {

constexpr double kProbability = 1e-3;
constexpr std::uint64_t kInstructions = 120000;
constexpr std::uint32_t kTrials = 4;
constexpr std::uint64_t kBaseSeed = 0xD5DB2003ULL;

struct SchemePoint {
  const char* label;
  core::Scheme scheme;
};

std::vector<SchemePoint> fig14_schemes() {
  auto relaxed = [](core::Scheme s) {
    return s.with_decay_window(1000).with_victim_policy(
        core::ReplicaVictimPolicy::kDeadFirst);
  };
  return {
      {"BaseP", core::Scheme::BaseP()},
      {"BaseECC", core::Scheme::BaseECC()},
      {"ICR-P-PS(S)", relaxed(core::Scheme::IcrPPS_S())},
      {"ICR-ECC-PS(S)", relaxed(core::Scheme::IcrEccPS_S())},
  };
}

CampaignSpec base_spec() {
  CampaignSpec spec;
  for (const SchemePoint& s : fig14_schemes()) {
    spec.variants.emplace_back(s.label, s.scheme);
  }
  spec.apps = trace::all_apps();
  spec.instructions = kInstructions;
  spec.trials = kTrials;
  spec.derive_seeds = true;
  spec.base_seed = kBaseSeed;
  spec.config.fault_model = fault::FaultModel::kRandom;
  return spec;
}

struct Outcome {
  const char* name;
  double (*predicted)(const rel::RelPrediction&);
  std::uint64_t (*observed)(const fault::FaultStats&);
};

const Outcome kOutcomes[] = {
    {"corrected", [](const rel::RelPrediction& p) { return p.corrected; },
     [](const fault::FaultStats& f) { return f.corrected; }},
    {"replica_recovered",
     [](const rel::RelPrediction& p) { return p.replica_recovered; },
     [](const fault::FaultStats& f) { return f.replica_recovered; }},
    {"detected_uncorrectable",
     [](const rel::RelPrediction& p) { return p.detected_uncorrectable; },
     [](const fault::FaultStats& f) { return f.detected_uncorrectable; }},
    {"silent", [](const rel::RelPrediction& p) { return p.silent; },
     [](const fault::FaultStats& f) { return f.silent; }},
};

TEST(RelCrossValidation, AnalyticalModelMatchesInjection) {
  CampaignSpec clean = base_spec();
  clean.config.fault_probability = 0.0;
  clean.rel.enabled = true;
  clean.rel.probability = kProbability;

  CampaignSpec injected = base_spec();
  injected.config.fault_probability = kProbability;

  const CampaignResult clean_result = CampaignRunner().run(clean);
  const CampaignResult inj_result = CampaignRunner().run(injected);

  const auto schemes = fig14_schemes();
  const std::size_t napps = clean.apps.size();

  // Per-scheme totals across apps and trials, for the ranking check.
  std::vector<double> scheme_pred_silent(schemes.size(), 0.0);
  std::vector<double> scheme_obs_silent(schemes.size(), 0.0);

  for (std::size_t v = 0; v < schemes.size(); ++v) {
    for (const Outcome& outcome : kOutcomes) {
      std::size_t within = 0;
      std::string misses;
      for (std::size_t a = 0; a < napps; ++a) {
        double predicted = 0.0;
        double observed = 0.0;
        std::vector<double> residuals;
        for (std::uint32_t t = 0; t < kTrials; ++t) {
          const CellResult& cc = clean_result.at(v, a, t, napps, kTrials);
          const CellResult& ic = inj_result.at(v, a, t, napps, kTrials);
          ASSERT_NE(cc.rel, nullptr);
          // Injection stalls on recoveries, so the injected run covers more
          // cycles than the clean one at the same instruction count; the
          // injector strikes per cycle, so predictions scale with it.
          const double cycle_scale =
              static_cast<double>(ic.result.cycles) /
              static_cast<double>(cc.result.cycles);
          const rel::RelPrediction trial_pred =
              cc.rel->evaluate(kProbability, cycle_scale);
          const double p_t = outcome.predicted(trial_pred);
          const double o_t =
              static_cast<double>(outcome.observed(ic.result.faults));
          predicted += p_t;
          observed += o_t;
          residuals.push_back(o_t - p_t);
        }

        // Poisson error of the count itself.
        double sigma =
            std::sqrt(std::max(1.0, std::max(predicted, observed)));
        // Trial-to-trial scatter of the residual, scaled to the K-trial sum.
        double mean = 0.0;
        for (const double r : residuals) mean += r;
        mean /= static_cast<double>(residuals.size());
        double var = 0.0;
        for (const double r : residuals) var += (r - mean) * (r - mean);
        var /= static_cast<double>(residuals.size());
        sigma = std::max(sigma,
                         std::sqrt(var * static_cast<double>(kTrials)));
        sigma = std::max(sigma, 3.0);  // small-count floor

        const bool ok = std::abs(observed - predicted) <= 3.0 * sigma;
        if (ok) {
          ++within;
        } else {
          char buf[128];
          std::snprintf(buf, sizeof buf, " %s(pred=%.1f obs=%.0f sig=%.1f)",
                        trace::to_string(clean.apps[a]), predicted, observed,
                        sigma);
          misses += buf;
        }
        if (std::string(outcome.name) == "silent") {
          scheme_pred_silent[v] += predicted;
          scheme_obs_silent[v] += observed;
        }
      }
      EXPECT_GE(within, 6u)
          << schemes[v].label << " / " << outcome.name
          << ": analytical prediction disagrees with injection beyond 3 "
             "sigma on too many apps:"
          << misses;
    }
  }

  // Headline ordering: rank the schemes by silent errors in both views.
  auto ranking = [&](const std::vector<double>& totals) {
    std::vector<std::size_t> order(totals.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t x, std::size_t y) {
                       return totals[x] < totals[y];
                     });
    return order;
  };
  const auto pred_rank = ranking(scheme_pred_silent);
  const auto obs_rank = ranking(scheme_obs_silent);
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    EXPECT_EQ(pred_rank[i], obs_rank[i])
        << "silent-error ranking mismatch at position " << i << ": model "
        << schemes[pred_rank[i]].label << " vs injection "
        << schemes[obs_rank[i]].label;
  }
  for (std::size_t v = 0; v < schemes.size(); ++v) {
    std::printf("[ cross-val] %-14s silent: model %.1f vs injected %.0f "
                "(all apps, %u trials)\n",
                schemes[v].label, scheme_pred_silent[v],
                scheme_obs_silent[v], kTrials);
  }
}

// Degraded-geometry cross-validation (docs/GEOMETRY.md): disabling ways
// shrinks the effective capacity the tracker normalizes exposure by (its
// valid-line census only ever sees enabled ways), so the analytical model
// must keep matching injection in every degraded cell without any
// geometry-specific correction. Same clean/injected protocol as above,
// over a sweep of (size, disabled-way) points; every degraded variant must
// agree within 3 sigma on at least 3 of the 4 apps for all four outcome
// classes — the same 75% per-app bar the fig14 test uses, which absorbs
// the known per-app scatter of the silent-error estimate.
TEST(RelCrossValidation, DegradedGeometryCellsMatchInjection) {
  auto relaxed = [](core::Scheme s) {
    return s.with_decay_window(1000).with_victim_policy(
        core::ReplicaVictimPolicy::kDeadFirst);
  };
  // Expansion snapshots spec.config into each variant's override, so the
  // fault probability must be in place before expand_geometry_sweep runs.
  auto make_spec = [&](double fault_probability) {
    CampaignSpec spec;
    spec.variants = {
        {"ICR-P-PS(S)", relaxed(core::Scheme::IcrPPS_S())},
        {"ICR-ECC-PS(S)", relaxed(core::Scheme::IcrEccPS_S())},
    };
    spec.apps = {trace::App::kGzip, trace::App::kMcf, trace::App::kVortex,
                 trace::App::kVpr};
    spec.instructions = kInstructions;
    spec.trials = 3;
    spec.derive_seeds = true;
    spec.base_seed = kBaseSeed;
    spec.config.fault_model = fault::FaultModel::kRandom;
    spec.config.fault_probability = fault_probability;
    spec.geometry.sizes = {8 * 1024, 16 * 1024};
    spec.geometry.assocs = {4};
    spec.geometry.ways_disabled = {1, 2};  // every cell degraded
    expand_geometry_sweep(spec);
    return spec;
  };

  CampaignSpec clean = make_spec(0.0);
  clean.rel.enabled = true;
  clean.rel.probability = kProbability;

  CampaignSpec injected = make_spec(kProbability);

  const CampaignResult clean_result = CampaignRunner().run(clean);
  const CampaignResult inj_result = CampaignRunner().run(injected);

  const std::size_t napps = clean.apps.size();
  const std::uint32_t trials = clean.trials;
  for (std::size_t v = 0; v < clean.variants.size(); ++v) {
    for (const Outcome& outcome : kOutcomes) {
      std::size_t within = 0;
      std::string misses;
      for (std::size_t a = 0; a < napps; ++a) {
        double predicted = 0.0;
        double observed = 0.0;
        std::vector<double> residuals;
        for (std::uint32_t t = 0; t < trials; ++t) {
          const CellResult& cc = clean_result.at(v, a, t, napps, trials);
          const CellResult& ic = inj_result.at(v, a, t, napps, trials);
          ASSERT_NE(cc.rel, nullptr);
          ASSERT_TRUE(cc.geometry.present);
          ASSERT_GT(cc.geometry.ways_disabled, 0u);
          const double cycle_scale =
              static_cast<double>(ic.result.cycles) /
              static_cast<double>(cc.result.cycles);
          const rel::RelPrediction trial_pred =
              cc.rel->evaluate(kProbability, cycle_scale);
          const double p_t = outcome.predicted(trial_pred);
          const double o_t =
              static_cast<double>(outcome.observed(ic.result.faults));
          predicted += p_t;
          observed += o_t;
          residuals.push_back(o_t - p_t);
        }
        double sigma =
            std::sqrt(std::max(1.0, std::max(predicted, observed)));
        double mean = 0.0;
        for (const double r : residuals) mean += r;
        mean /= static_cast<double>(residuals.size());
        double var = 0.0;
        for (const double r : residuals) var += (r - mean) * (r - mean);
        var /= static_cast<double>(residuals.size());
        sigma = std::max(sigma,
                         std::sqrt(var * static_cast<double>(trials)));
        sigma = std::max(sigma, 3.0);  // small-count floor

        if (std::abs(observed - predicted) <= 3.0 * sigma) {
          ++within;
        } else {
          char buf[128];
          std::snprintf(buf, sizeof buf, " %s(pred=%.1f obs=%.0f sig=%.1f)",
                        trace::to_string(clean.apps[a]), predicted, observed,
                        sigma);
          misses += buf;
        }
      }
      EXPECT_GE(within, 3u)
          << clean.variants[v].label << " / " << outcome.name
          << ": degraded-geometry prediction disagrees with injection "
             "beyond 3 sigma on too many apps:"
          << misses;
    }
  }
}

}  // namespace
}  // namespace icr::sim
