#include "src/trace/trace_v2.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "src/trace/trace_file.h"
#include "src/trace/workloads.h"

namespace icr::trace {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void expect_equal(const Instruction& a, const Instruction& b) {
  ASSERT_EQ(static_cast<int>(a.op), static_cast<int>(b.op));
  ASSERT_EQ(a.pc, b.pc);
  ASSERT_EQ(a.mem_addr, b.mem_addr);
  ASSERT_EQ(a.store_value, b.store_value);
  ASSERT_EQ(a.next_pc, b.next_pc);
  ASSERT_EQ(a.branch_taken, b.branch_taken);
  ASSERT_EQ(a.dest, b.dest);
  ASSERT_EQ(a.src1, b.src1);
  ASSERT_EQ(a.src2, b.src2);
}

// A finite TraceSource over an in-memory vector (loops like every source).
class VectorSource final : public TraceSource {
 public:
  explicit VectorSource(std::vector<Instruction> records)
      : records_(std::move(records)) {}
  Instruction next() override {
    const Instruction& r = records_[pos_];
    pos_ = (pos_ + 1) % records_.size();
    return r;
  }

 private:
  std::vector<Instruction> records_;
  std::size_t pos_ = 0;
};

TEST(TraceV2, RoundTripMatchesGeneratorDelta) {
  const std::string path = temp_path("v2_roundtrip.icrt");
  SyntheticWorkload source(profile_for(App::kGcc));
  SyntheticWorkload reference(profile_for(App::kGcc));
  record_trace_v2(source, 5000, path);

  StreamingTraceSource replay(path);
  ASSERT_EQ(replay.size(), 5000u);
  for (int i = 0; i < 5000; ++i) {
    expect_equal(replay.next(), reference.next());
  }
  std::remove(path.c_str());
}

TEST(TraceV2, RoundTripMatchesGeneratorRaw) {
  const std::string path = temp_path("v2_raw.icrt");
  SyntheticWorkload source(profile_for(App::kVortex));
  SyntheticWorkload reference(profile_for(App::kVortex));
  TraceV2Writer::Options options;
  options.delta = false;
  record_trace_v2(source, 2000, path, options);

  const TraceInfo info = probe_trace(path);
  EXPECT_EQ(info.delta_chunks, 0u);
  EXPECT_EQ(info.raw_chunks, info.chunk_count);

  StreamingTraceSource replay(path);
  for (int i = 0; i < 2000; ++i) {
    expect_equal(replay.next(), reference.next());
  }
  std::remove(path.c_str());
}

TEST(TraceV2, MultiChunkReplayLoopsAtEnd) {
  const std::string path = temp_path("v2_loop.icrt");
  SyntheticWorkload source(profile_for(App::kGzip));
  TraceV2Writer::Options options;
  options.chunk_records = 128;  // 1000 records -> 8 chunks, last short
  record_trace_v2(source, 1000, path, options);

  const TraceInfo info = probe_trace(path);
  EXPECT_EQ(info.chunk_count, 8u);

  StreamingTraceSource replay(path);
  std::vector<std::uint64_t> first_pass;
  for (int i = 0; i < 1000; ++i) first_pass.push_back(replay.next().pc);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(replay.next().pc, first_pass[static_cast<std::size_t>(i)]);
  }
  std::remove(path.c_str());
}

TEST(TraceV2, SeekLandsWhereSequentialReadsWould) {
  const std::string path = temp_path("v2_seek.icrt");
  SyntheticWorkload source(profile_for(App::kMcf));
  TraceV2Writer::Options options;
  options.chunk_records = 64;
  record_trace_v2(source, 777, path, options);

  StreamingTraceSource replay(path);
  std::vector<Instruction> all;
  for (int i = 0; i < 777; ++i) all.push_back(replay.next());

  // seek_to(n) must position exactly where n sequential next() calls from
  // the start would — including n past the end (the stream loops).
  for (const std::uint64_t n :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{63},
        std::uint64_t{64}, std::uint64_t{500}, std::uint64_t{776},
        std::uint64_t{777}, std::uint64_t{9999}}) {
    replay.seek_to(n);
    EXPECT_EQ(replay.position(), n % 777u);
    expect_equal(replay.next(), all[static_cast<std::size_t>(n % 777u)]);
  }
  std::remove(path.c_str());
}

// 200 random traces: arbitrary field values (including non-canonical
// records that force chunks raw), random chunk sizes, full encode->decode
// identity plus random seeks cross-checked against sequential reads.
TEST(TraceV2, PropertyRandomTracesRoundTripAndSeek) {
  const std::string path = temp_path("v2_prop.icrt");
  std::mt19937_64 rng(0x1CF2ULL);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t count = 1 + rng() % 300;
    std::vector<Instruction> records(count);
    for (Instruction& r : records) {
      r.op = static_cast<OpClass>(rng() % 9);
      // Mix small deltas (the delta encoder's fast path) with extreme
      // 64-bit values (zigzag/varint edge cases).
      r.pc = (rng() % 4 == 0) ? rng() : 0x400000 + (rng() % 1024) * 4;
      r.next_pc = (rng() % 4 == 0) ? rng() : r.pc + 4;
      r.mem_addr = (rng() % 8 == 0) ? (rng() & ~7ULL) : 0;
      r.store_value = (rng() % 8 == 0) ? rng() : 0;
      r.branch_taken = (rng() % 2) != 0;
      r.dest = static_cast<std::int16_t>(rng() % 64) - 1;
      r.src1 = static_cast<std::int16_t>(rng() % 64) - 1;
      r.src2 = static_cast<std::int16_t>(rng() % 64) - 1;
    }
    TraceV2Writer::Options options;
    options.chunk_records = 1 + static_cast<std::uint32_t>(rng() % 97);
    options.delta = (rng() % 4) != 0;
    {
      VectorSource source(records);
      record_trace_v2(source, count, path, options);
    }

    StreamingTraceSource replay(path);
    ASSERT_EQ(replay.size(), count);
    for (std::size_t i = 0; i < count; ++i) {
      expect_equal(replay.next(), records[i]);
    }
    // Three random seeks per trace.
    for (int s = 0; s < 3; ++s) {
      const std::uint64_t n = rng() % (2 * count + 1);
      replay.seek_to(n);
      expect_equal(replay.next(), records[static_cast<std::size_t>(n % count)]);
    }
    ASSERT_EQ(validate_trace(path).records, count);
  }
  std::remove(path.c_str());
}

TEST(TraceV2, ResidentMemoryIsBoundedByChunkNotTrace) {
  const std::string path = temp_path("v2_resident.icrt");
  SyntheticWorkload source(profile_for(App::kParser));
  TraceV2Writer::Options options;
  options.chunk_records = 1024;
  record_trace_v2(source, 100000, path, options);

  StreamingTraceSource replay(path);
  for (int i = 0; i < 5000; ++i) replay.next();
  // One decoded chunk plus fixed object state; nowhere near the whole
  // trace (100k records x 56+ bytes each).
  const std::size_t bound = 1024 * sizeof(Instruction) + 4096;
  EXPECT_LE(replay.resident_bytes(), bound);
  EXPECT_LT(replay.resident_bytes(), 100000 * sizeof(Instruction) / 10);
  std::remove(path.c_str());
}

TEST(TraceV2, TruncatedHeaderThrows) {
  const std::string path = temp_path("v2_trunc_header.icrt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "ICRT";  // 4 bytes of a 64-byte header
  }
  EXPECT_THROW(probe_trace(path), std::runtime_error);
  EXPECT_THROW(StreamingTraceSource{path}, std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceV2, TruncatedChunkTailThrows) {
  const std::string path = temp_path("v2_trunc_tail.icrt");
  SyntheticWorkload source(profile_for(App::kVpr));
  record_trace_v2(source, 500, path);
  // Chop the file mid-chunk: the index (and part of the data) is gone.
  {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes(kV2HeaderBytes + 100);
    in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(probe_trace(path), std::runtime_error);
  EXPECT_THROW(StreamingTraceSource{path}, std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceV2, ChunkChecksumMismatchThrows) {
  const std::string path = temp_path("v2_flip.icrt");
  SyntheticWorkload source(profile_for(App::kMesa));
  record_trace_v2(source, 500, path);
  ASSERT_NO_THROW(validate_trace(path));
  // Flip one byte inside the first chunk's payload.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(kV2HeaderBytes) + 10);
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(static_cast<std::streamoff>(kV2HeaderBytes) + 10);
    f.write(&b, 1);
  }
  try {
    (void)validate_trace(path);
    FAIL() << "corrupt chunk validated";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("checksum"), std::string::npos)
        << error.what();
  }
  // The reader hits the same check when it loads the chunk.
  EXPECT_THROW(StreamingTraceSource{path}, std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceV2, ZeroRecordFileThrows) {
  const std::string path = temp_path("v2_empty.icrt");
  {
    TraceV2Writer writer(path);
    writer.close();  // header + empty index only
  }
  EXPECT_THROW(StreamingTraceSource{path}, std::runtime_error);
  EXPECT_THROW(validate_trace(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceV2, ConvertPreservesFingerprintAcrossVersions) {
  const std::string v1_path = temp_path("fp_v1.icrt");
  const std::string v2_path = temp_path("fp_v2.icrt");
  {
    SyntheticWorkload a(profile_for(App::kVortex));
    record_trace(a, 3000, v1_path);
  }
  {
    SyntheticWorkload b(profile_for(App::kVortex));
    record_trace_v2(b, 3000, v2_path);
  }
  const TraceInfo v1 = probe_trace(v1_path);
  const TraceInfo v2 = probe_trace(v2_path);
  EXPECT_EQ(v1.version, 1u);
  EXPECT_EQ(v2.version, 2u);
  EXPECT_EQ(v1.records, v2.records);
  // The content fingerprint hashes canonical record images, so identical
  // streams fingerprint identically regardless of container version.
  EXPECT_EQ(v1.fingerprint, v2.fingerprint);

  // Round-trip v1 through a v2 writer and back; replay both ends equal.
  const std::string back_path = temp_path("fp_back.icrt");
  {
    OpenedTrace opened = open_trace(v1_path);
    EXPECT_EQ(opened.info.version, 1u);
    record_trace_v2(*opened.source, opened.info.records, back_path);
  }
  EXPECT_EQ(probe_trace(back_path).fingerprint, v1.fingerprint);

  OpenedTrace lhs = open_trace(v1_path);
  OpenedTrace rhs = open_trace(back_path);
  for (int i = 0; i < 3000; ++i) {
    expect_equal(lhs.source->next(), rhs.source->next());
  }
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
  std::remove(back_path.c_str());
}

TEST(TraceV2, StreamingReaderRejectsV1WithConvertHint) {
  const std::string path = temp_path("v1_for_v2.icrt");
  SyntheticWorkload source(profile_for(App::kGzip));
  record_trace(source, 50, path);
  try {
    StreamingTraceSource replay(path);
    FAIL() << "v1 file accepted by the v2 reader";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("convert"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(TraceV2, WriterFingerprintMatchesProbe) {
  const std::string path = temp_path("v2_wfp.icrt");
  SyntheticWorkload source(profile_for(App::kBzip2));
  TraceV2Writer writer(path);
  std::uint64_t expected = kFnvOffsetBasis;
  for (int i = 0; i < 400; ++i) {
    const Instruction r = source.next();
    expected = fingerprint_fold(expected, r);
    writer.write(r);
  }
  writer.close();
  EXPECT_EQ(writer.fingerprint(), expected);
  EXPECT_EQ(probe_trace(path).fingerprint, expected);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace icr::trace
