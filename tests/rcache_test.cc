#include "src/baselines/rcache.h"

#include <gtest/gtest.h>

#include "src/core/icr_cache.h"
#include "tests/test_util.h"

namespace icr::baselines {
namespace {

using core::Scheme;
using test::CacheFixture;

TEST(RCache, RecordAndLookup) {
  RCache rc(4);
  rc.record(0x100, 42);
  const auto v = rc.lookup(0x100, false);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42u);
  EXPECT_FALSE(rc.lookup(0x200, false).has_value());
  EXPECT_EQ(rc.stats().writes, 1u);
  EXPECT_EQ(rc.stats().lookups, 2u);
  EXPECT_EQ(rc.stats().hits, 1u);
}

TEST(RCache, WordGranularity) {
  RCache rc(4);
  rc.record(0x104, 7);  // lands on word 0x100
  EXPECT_TRUE(rc.lookup(0x100, false).has_value());
  EXPECT_FALSE(rc.lookup(0x108, false).has_value());
}

TEST(RCache, UpdatesInPlace) {
  RCache rc(2);
  rc.record(0x100, 1);
  rc.record(0x100, 2);
  EXPECT_EQ(*rc.lookup(0x100, false), 2u);
}

TEST(RCache, LruEviction) {
  RCache rc(2);
  rc.record(0x100, 1);
  rc.record(0x200, 2);
  (void)rc.lookup(0x100, false);  // refresh 0x100
  rc.record(0x300, 3);            // evicts 0x200
  EXPECT_TRUE(rc.lookup(0x100, false).has_value());
  EXPECT_FALSE(rc.lookup(0x200, false).has_value());
  EXPECT_TRUE(rc.lookup(0x300, false).has_value());
}

TEST(RCache, Invalidate) {
  RCache rc(2);
  rc.record(0x100, 1);
  rc.invalidate(0x104);
  EXPECT_FALSE(rc.lookup(0x100, false).has_value());
}

TEST(RCache, RecoversDirtyParityErrorInBaseP) {
  CacheFixture f(Scheme::BaseP());
  RCache rc(64);
  f.dl1->attach_rcache(&rc);

  f.dl1->store(0x4000, 42, 0);
  // Corrupt the stored word in the dL1.
  const auto& g = f.dl1->geometry();
  const std::uint32_t set = g.set_index(0x4000);
  for (std::uint32_t w = 0; w < g.associativity; ++w) {
    if (f.dl1->line(set, w).valid) f.dl1->flip_data_bit(set, w, 0, 0);
  }
  const auto r = f.dl1->load(0x4000, 1);
  EXPECT_TRUE(r.error_detected);
  EXPECT_TRUE(r.error_recovered);
  EXPECT_EQ(r.value, 42u);
  EXPECT_EQ(f.dl1->stats().errors_corrected_by_rcache, 1u);
  EXPECT_EQ(f.dl1->stats().unrecoverable_loads, 0u);
  EXPECT_EQ(rc.stats().recoveries, 1u);
}

TEST(RCache, MissStillMeansUnrecoverable) {
  CacheFixture f(Scheme::BaseP());
  RCache rc(1);  // tiny: first store displaced by second
  f.dl1->attach_rcache(&rc);
  f.dl1->store(0x4000, 42, 0);
  f.dl1->store(0x8000, 43, 1);  // evicts 0x4000 from the R-Cache

  const auto& g = f.dl1->geometry();
  const std::uint32_t set = g.set_index(0x4000);
  for (std::uint32_t w = 0; w < g.associativity; ++w) {
    const auto& l = f.dl1->line(set, w);
    if (l.valid && l.block_addr == 0x4000) f.dl1->flip_data_bit(set, w, 0, 0);
  }
  const auto r = f.dl1->load(0x4000, 2);
  EXPECT_TRUE(r.error_detected);
  EXPECT_TRUE(r.unrecoverable);
}

}  // namespace
}  // namespace icr::baselines
