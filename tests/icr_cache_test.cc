#include "src/core/icr_cache.h"

#include <gtest/gtest.h>

#include <cstring>

#include "src/util/rng.h"
#include "tests/test_util.h"

namespace icr::core {
namespace {

using test::CacheFixture;
using test::addr_for;

TEST(IcrCache, LoadMissThenHit) {
  CacheFixture f(Scheme::BaseP());
  auto r1 = f.dl1->load(0x1000, 0);
  EXPECT_FALSE(r1.hit);
  EXPECT_GT(r1.latency, 1u);  // miss pays L2/memory
  auto r2 = f.dl1->load(0x1000, 1);
  EXPECT_TRUE(r2.hit);
  EXPECT_EQ(r2.latency, 1u);  // BaseP hit
  EXPECT_EQ(f.dl1->stats().load_misses, 1u);
  EXPECT_EQ(f.dl1->stats().load_hits, 1u);
}

TEST(IcrCache, LoadDeliversBackingValue) {
  CacheFixture f(Scheme::BaseP());
  const std::uint64_t addr = 0x2008;
  const auto r = f.dl1->load(addr, 0);
  EXPECT_EQ(r.value, mem::BackingStore::initial_word(addr));
}

TEST(IcrCache, StoreThenLoadReturnsStoredValue) {
  CacheFixture f(Scheme::BaseP());
  f.dl1->store(0x3000, 0xABCD, 0);
  const auto r = f.dl1->load(0x3000, 1);
  EXPECT_EQ(r.value, 0xABCDu);
  // Other words of the block still have backing content.
  const auto r2 = f.dl1->load(0x3008, 2);
  EXPECT_EQ(r2.value, mem::BackingStore::initial_word(0x3008));
}

TEST(IcrCache, StoreLatencyIsOneCycle) {
  for (auto scheme : {Scheme::BaseP(), Scheme::BaseECC(), Scheme::IcrPPS_S(),
                      Scheme::IcrEccPP_LS()}) {
    CacheFixture f(scheme);
    EXPECT_EQ(f.dl1->store(0x100, 1, 0).latency, 1u) << scheme.name;
    EXPECT_EQ(f.dl1->store(0x100, 2, 1).latency, 1u) << scheme.name;
  }
}

TEST(IcrCache, BaseEccLoadHitLatency) {
  CacheFixture f(Scheme::BaseECC());
  f.dl1->load(0x100, 0);
  EXPECT_EQ(f.dl1->load(0x100, 1).latency, 2u);
  CacheFixture spec(Scheme::BaseECCSpeculative());
  spec.dl1->load(0x100, 0);
  EXPECT_EQ(spec.dl1->load(0x100, 1).latency, 1u);
}

TEST(IcrCache, StoreCreatesReplicaAtDistanceHalf) {
  CacheFixture f(Scheme::IcrPPS_S());
  const auto& g = f.dl1->geometry();
  const std::uint64_t addr = addr_for(g, /*set=*/3, /*tag=*/1);
  f.dl1->store(addr, 7, 0);
  EXPECT_EQ(f.dl1->stats().replicas_created, 1u);
  EXPECT_EQ(f.dl1->resident_replicas(), 1u);
  // The replica lives in set 3 + N/2 and carries the block address.
  const std::uint32_t rset = (3 + g.num_sets() / 2) % g.num_sets();
  bool found = false;
  for (std::uint32_t w = 0; w < g.associativity; ++w) {
    const IcrLine& l = f.dl1->line(rset, w);
    if (l.valid && l.replica && l.block_addr == g.block_address(addr)) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  f.dl1->check_invariants();
}

TEST(IcrCache, HorizontalReplicationStaysInSet) {
  ReplicationConfig rep;
  rep.first_distance = Distance::zero();
  CacheFixture f(Scheme::IcrPPS_S().with_replication(rep));
  const auto& g = f.dl1->geometry();
  const std::uint64_t addr = addr_for(g, 5, 1);
  f.dl1->load(addr, 0);            // primary resident in set 5
  f.dl1->store(addr, 1, 1);        // replica must land in set 5 too
  EXPECT_EQ(f.dl1->stats().replicas_created, 1u);
  bool found = false;
  for (std::uint32_t w = 0; w < g.associativity; ++w) {
    const IcrLine& l = f.dl1->line(5, w);
    if (l.valid && l.replica) found = true;
  }
  EXPECT_TRUE(found);
  f.dl1->check_invariants();
}

TEST(IcrCache, LoadsWithReplicaCounted) {
  CacheFixture f(Scheme::IcrPPS_S());
  f.dl1->store(0x100, 1, 0);  // creates replica
  f.dl1->load(0x100, 1);
  f.dl1->load(0x100, 2);
  EXPECT_EQ(f.dl1->stats().loads_with_replica, 2u);
  EXPECT_DOUBLE_EQ(f.dl1->stats().loads_with_replica_fraction(), 1.0);
}

TEST(IcrCache, StoreUpdatesReplicaCoherently) {
  CacheFixture f(Scheme::IcrPPS_S());
  const auto& g = f.dl1->geometry();
  const std::uint64_t addr = addr_for(g, 2, 1, /*word=*/3);
  f.dl1->store(addr, 111, 0);  // creates replica with value 111
  f.dl1->store(addr, 222, 1);  // must update the replica too
  EXPECT_GE(f.dl1->stats().replica_updates, 1u);
  // Find the replica and check its word content.
  const std::uint32_t rset = (2 + g.num_sets() / 2) % g.num_sets();
  for (std::uint32_t w = 0; w < g.associativity; ++w) {
    const IcrLine& l = f.dl1->line(rset, w);
    if (l.valid && l.replica) {
      std::uint64_t word = 0;
      std::memcpy(&word, l.data.data() + 3 * 8, 8);
      EXPECT_EQ(word, 222u);
    }
  }
  f.dl1->check_invariants();
}

TEST(IcrCache, STriggerDoesNotReplicateOnLoadMiss) {
  CacheFixture f(Scheme::IcrPPS_S());
  f.dl1->load(0x5000, 0);
  EXPECT_EQ(f.dl1->stats().replicas_created, 0u);
  EXPECT_EQ(f.dl1->stats().replication_opportunities, 0u);
}

TEST(IcrCache, LSTriggerReplicatesOnLoadMiss) {
  CacheFixture f(Scheme::IcrPPS_LS());
  f.dl1->load(0x5000, 0);
  EXPECT_EQ(f.dl1->stats().replicas_created, 1u);
  EXPECT_EQ(f.dl1->stats().replication_opportunities, 1u);
}

TEST(IcrCache, OpportunityAccountingOnRepeatedStores) {
  CacheFixture f(Scheme::IcrPPS_S());
  f.dl1->store(0x100, 1, 0);  // creates the replica
  f.dl1->store(0x100, 2, 1);  // already replicated: opportunity, no success
  f.dl1->store(0x100, 3, 2);
  const auto& s = f.dl1->stats();
  EXPECT_EQ(s.replication_opportunities, 3u);
  EXPECT_EQ(s.replication_successes, 1u);
  EXPECT_EQ(s.opportunities_with_one, 1u);  // only the first created a copy
  EXPECT_DOUBLE_EQ(s.replication_ability(), 1.0 / 3.0);
}

TEST(IcrCache, PrimaryEvictionDropsReplicas) {
  CacheFixture f(Scheme::IcrPPS_S());
  const auto& g = f.dl1->geometry();
  const std::uint64_t victim_addr = addr_for(g, 0, 0);
  f.dl1->store(victim_addr, 1, 0);  // primary in set 0 + replica in set 32
  EXPECT_EQ(f.dl1->resident_replicas(), 1u);
  // Fill set 0 with other primaries until the victim block is evicted.
  for (std::uint32_t t = 1; t <= g.associativity; ++t) {
    f.dl1->load(addr_for(g, 0, t), t);
  }
  EXPECT_GE(f.dl1->stats().replica_evictions, 1u);
  EXPECT_EQ(f.dl1->resident_replicas(), 0u);
  f.dl1->check_invariants();
}

TEST(IcrCache, LeaveReplicasServesMissFromOrphan) {
  CacheFixture f(Scheme::IcrPPS_S().with_leave_replicas(true));
  const auto& g = f.dl1->geometry();
  const std::uint64_t addr = addr_for(g, 0, 0);
  f.dl1->store(addr, 77, 0);
  // Evict the primary.
  for (std::uint32_t t = 1; t <= g.associativity; ++t) {
    f.dl1->load(addr_for(g, 0, t), t);
  }
  EXPECT_EQ(f.dl1->resident_replicas(), 1u);  // orphan survives
  const auto r = f.dl1->load(addr, 100);
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.replica_fill);
  EXPECT_EQ(r.value, 77u);
  EXPECT_LE(r.latency, 2u + 1u);  // hit latency + 1, far below L2 trip
  EXPECT_EQ(f.dl1->stats().replica_fills, 1u);
  f.dl1->check_invariants();
}

TEST(IcrCache, DeadOnlyNeverEvictsLivePrimary) {
  // With a huge decay window nothing is ever dead, so replica placement
  // into a set full of live primaries must fail.
  CacheFixture f(Scheme::IcrPPS_S().with_decay_window(1'000'000'000));
  const auto& g = f.dl1->geometry();
  const std::uint32_t rset = (0 + g.num_sets() / 2) % g.num_sets();
  // Fill the replica target set with live primaries.
  for (std::uint32_t t = 0; t < g.associativity; ++t) {
    f.dl1->load(addr_for(g, rset, t), t);
  }
  f.dl1->store(addr_for(g, 0, 9), 1, 10);
  EXPECT_EQ(f.dl1->stats().replicas_created, 0u);
  EXPECT_EQ(f.dl1->stats().site_search_failures, 1u);
  // All four primaries survived.
  for (std::uint32_t t = 0; t < g.associativity; ++t) {
    EXPECT_TRUE(f.dl1->load(addr_for(g, rset, t), 20 + t).hit);
  }
}

TEST(IcrCache, DeadFirstFallsBackToReplicas) {
  // Target set: all live primaries... except one way holding a replica.
  CacheFixture f(Scheme::IcrPPS_S()
                     .with_decay_window(1'000'000'000)
                     .with_victim_policy(ReplicaVictimPolicy::kDeadFirst));
  const auto& g = f.dl1->geometry();
  const std::uint32_t half = g.num_sets() / 2;
  // Block in set 0 -> replica in set `half`.
  f.dl1->store(addr_for(g, 0, 5), 1, 0);
  ASSERT_EQ(f.dl1->resident_replicas(), 1u);
  // Fill the rest of set `half` with live primaries.
  for (std::uint32_t t = 0; t < g.associativity - 1; ++t) {
    f.dl1->load(addr_for(g, half, t), 1 + t);
  }
  // A new block in set 0 wants a replica in set `half`: only the existing
  // replica is a candidate, and dead-first accepts it as fallback.
  f.dl1->store(addr_for(g, 0, 6), 2, 10);
  EXPECT_EQ(f.dl1->stats().replicas_created, 2u);
  EXPECT_EQ(f.dl1->resident_replicas(), 1u);  // old replica displaced
  f.dl1->check_invariants();
}

TEST(IcrCache, MultiReplicaPlacesTwoCopies) {
  ReplicationConfig rep;
  rep.num_replicas = 2;
  rep.fallback = FallbackStrategy::kMultiAttempt;
  rep.extra_attempts = {Distance::quarter()};
  CacheFixture f(Scheme::IcrPPS_S().with_replication(rep));
  const auto& g = f.dl1->geometry();
  f.dl1->store(addr_for(g, 0, 1), 1, 0);
  EXPECT_EQ(f.dl1->resident_replicas(), 2u);
  EXPECT_EQ(f.dl1->stats().opportunities_with_two, 1u);
  f.dl1->check_invariants();
}

TEST(IcrCache, WriteThroughStoresReachBacking) {
  CacheFixture f(Scheme::BaseP().with_write_through(8));
  f.dl1->store(0x100, 123, 0);
  EXPECT_EQ(f.hierarchy->backing().read_word(0x100), 123u);
  ASSERT_NE(f.dl1->write_buffer(), nullptr);
  EXPECT_EQ(f.dl1->write_buffer()->occupancy(), 1u);
}

TEST(IcrCache, WriteBackDefersBackingUpdate) {
  CacheFixture f(Scheme::BaseP());
  const std::uint64_t before = f.hierarchy->backing().read_word(0x100);
  f.dl1->store(0x100, 123, 0);
  EXPECT_EQ(f.hierarchy->backing().read_word(0x100), before);
}

TEST(IcrCache, RandomWorkloadMaintainsInvariants) {
  for (auto scheme : {Scheme::IcrPPS_S(), Scheme::IcrPPS_LS(),
                      Scheme::IcrEccPS_S().with_leave_replicas(true),
                      Scheme::IcrPPP_LS().with_victim_policy(
                          ReplicaVictimPolicy::kDeadFirst)}) {
    CacheFixture f(scheme);
    Rng rng(99);
    for (std::uint64_t cycle = 0; cycle < 4000; ++cycle) {
      const std::uint64_t addr = (rng.next_below(2048)) * 8;
      if (rng.bernoulli(0.3)) {
        f.dl1->store(addr, rng.next_u64(), cycle);
      } else {
        f.dl1->load(addr, cycle);
      }
      if (cycle % 512 == 0) f.dl1->check_invariants();
    }
    f.dl1->check_invariants();
  }
}

}  // namespace
}  // namespace icr::core
