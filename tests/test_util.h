// Shared helpers for the ICR test suite.
#pragma once

#include <memory>

#include "src/core/icr_cache.h"
#include "src/core/scheme.h"
#include "src/mem/memory_hierarchy.h"

namespace icr::test {

// A self-contained dL1 + hierarchy bundle for cache-level tests.
struct CacheFixture {
  explicit CacheFixture(core::Scheme scheme,
                        mem::CacheGeometry geometry = mem::l1d_geometry_default())
      : hierarchy(std::make_unique<mem::MemoryHierarchy>()),
        dl1(std::make_unique<core::IcrCache>(geometry, std::move(scheme),
                                             *hierarchy)) {}

  std::unique_ptr<mem::MemoryHierarchy> hierarchy;
  std::unique_ptr<core::IcrCache> dl1;
};

// Address of word `w` in block `b` of set `s` for the given geometry: picks
// a tag such that distinct `b` values alias to the same set.
inline std::uint64_t addr_for(const mem::CacheGeometry& g, std::uint32_t set,
                              std::uint32_t tag, std::uint32_t word = 0) {
  const std::uint64_t block =
      (static_cast<std::uint64_t>(tag) * g.num_sets() + set) * g.line_bytes;
  return block + word * 8ULL;
}

}  // namespace icr::test
