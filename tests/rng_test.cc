#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace icr {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r.next_u64());
  EXPECT_GT(seen.size(), 95u);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(r.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowZeroReturnsZero) {
  Rng r(7);
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversSmallRangeUniformly) {
  Rng r(11);
  int counts[4] = {};
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) ++counts[r.next_below(4)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 4, kDraws / 40);
  }
}

TEST(Rng, NextRangeInclusive) {
  Rng r(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = r.next_range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-0.5));
    EXPECT_TRUE(r.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng r(17);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(Rng, ForkDecorrelates) {
  Rng a(21);
  Rng b = a.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Mix64, DeterministicAndSpreading) {
  EXPECT_EQ(mix64(12345), mix64(12345));
  EXPECT_NE(mix64(1), mix64(2));
  // Adjacent inputs should differ in many bits.
  const std::uint64_t x = mix64(100) ^ mix64(101);
  EXPECT_GT(__builtin_popcountll(x), 10);
}

}  // namespace
}  // namespace icr
