// Tier-1 guards for the observability layer's two core promises:
//
//   1. Telemetry never changes the experiment: with interval sampling and
//      event tracing on, every exported per-cell metric is bit-identical to
//      the same campaign with observability off, at any thread count.
//   2. The exports are faithful: per-interval rate columns weight-average
//      back to the aggregate RunResult values, and the NDJSON fault
//      verdicts count up to exactly the per-outcome FaultStats.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/obs/obs_io.h"
#include "src/sim/campaign.h"
#include "src/sim/results_io.h"
#include "src/sim/simulator.h"

namespace icr {
namespace {

sim::CampaignSpec small_grid() {
  sim::CampaignSpec spec;
  spec.variants = {
      {"BaseECC", core::Scheme::BaseECC(), {}},
      {"ICR-P-PS(S)", core::Scheme::IcrPPS_S().with_decay_window(1000), {}},
  };
  spec.apps = {trace::App::kGzip, trace::App::kMcf};
  spec.instructions = 40000;
  spec.trials = 1;
  spec.config.fault_probability = 1e-4;
  return spec;
}

std::vector<std::vector<double>> cell_metrics(
    const sim::CampaignResult& campaign) {
  std::vector<std::vector<double>> metrics;
  metrics.reserve(campaign.cells.size());
  for (const sim::CellResult& cell : campaign.cells) {
    metrics.push_back(sim::metric_values(cell.result));
  }
  return metrics;
}

TEST(Observability, TelemetryNeverChangesResults) {
  const sim::CampaignSpec plain = small_grid();

  sim::CampaignSpec observed = small_grid();
  observed.obs.stats_interval = 10000;
  observed.obs.trace_categories = obs::kAllCategories;

  const auto baseline = cell_metrics(sim::CampaignRunner(1).run(plain));
  const auto obs_1t = sim::CampaignRunner(1).run(observed);
  const auto obs_8t = sim::CampaignRunner(8).run(observed);

  EXPECT_EQ(baseline, cell_metrics(obs_1t));
  EXPECT_EQ(baseline, cell_metrics(obs_8t));
  // ObsOptions must not perturb the experiment fingerprint either.
  EXPECT_EQ(sim::campaign_config_hash(plain),
            sim::campaign_config_hash(observed));
  // And the telemetry itself is deterministic across thread counts.
  ASSERT_EQ(obs_1t.cells.size(), obs_8t.cells.size());
  for (std::size_t i = 0; i < obs_1t.cells.size(); ++i) {
    ASSERT_NE(obs_1t.cells[i].obs, nullptr);
    ASSERT_NE(obs_8t.cells[i].obs, nullptr);
    const obs::CellTag tag{"v", "a", 0};
    EXPECT_EQ(obs::intervals_to_csv(obs_1t.cells[i].obs->intervals, tag),
              obs::intervals_to_csv(obs_8t.cells[i].obs->intervals, tag));
    EXPECT_EQ(obs_1t.cells[i].obs->trace_emitted,
              obs_8t.cells[i].obs->trace_emitted);
  }
}

TEST(Observability, IntervalRatesWeightAverageToAggregates) {
  sim::Simulator simulator(sim::SimConfig::table1(),
                           core::Scheme::IcrPPS_S().with_decay_window(1000),
                           trace::profile_for(trace::App::kMcf));
  obs::ObsOptions options;
  options.stats_interval = 10000;
  simulator.enable_observability(options);
  const sim::RunResult result = simulator.run(100000);
  const obs::CellObservability telemetry = simulator.collect_observability();

  ASSERT_GE(telemetry.intervals.interval_count(), 10u);
  const auto pts = obs::interval_points(telemetry.intervals);
  const obs::IntervalSummary s = obs::summarize(pts);

  // The weighted means must reconstruct the aggregate RunResult: deltas
  // telescope back to the cumulative totals, so this is exact up to
  // floating-point association.
  EXPECT_NEAR(s.mean_ipc, result.ipc(), 1e-9);
  EXPECT_NEAR(s.mean_miss_rate, result.dl1.miss_rate(), 1e-9);
  EXPECT_NEAR(s.mean_replication_ability, result.dl1.replication_ability(),
              1e-9);

  // Final cumulative sample equals the aggregate counters.
  const auto& last = telemetry.intervals.samples.back();
  EXPECT_EQ(last.instructions, result.instructions);
  EXPECT_EQ(last.cycles, result.cycles);
}

TEST(Observability, NdjsonVerdictsMatchPerOutcomeFaultStats) {
  sim::SimConfig config = sim::SimConfig::table1();
  config.fault_probability = 1e-3;  // dense enough for every outcome class

  sim::Simulator simulator(config,
                           core::Scheme::IcrPPS_S().with_decay_window(1000),
                           trace::profile_for(trace::App::kVortex));
  obs::ObsOptions options;
  options.trace_categories = obs::category_bit(obs::EventCategory::kFault);
  simulator.enable_observability(options);
  const sim::RunResult result = simulator.run(60000);
  const obs::CellObservability telemetry = simulator.collect_observability();

  ASSERT_EQ(telemetry.trace_dropped, 0u)
      << "ring too small for this run; the count comparison needs all events";

  std::map<obs::FaultVerdict, std::uint64_t> verdicts;
  std::uint64_t injects = 0;
  for (const obs::TraceEvent& e : telemetry.events) {
    if (e.kind == obs::EventKind::kFaultVerdict) {
      ++verdicts[static_cast<obs::FaultVerdict>(e.a1)];
    } else if (e.kind == obs::EventKind::kFaultInject) {
      ++injects;
    }
  }

  EXPECT_GT(result.faults.observed(), 0u);
  EXPECT_EQ(injects, result.faults.injections);
  EXPECT_EQ(verdicts[obs::FaultVerdict::kCorrected], result.faults.corrected);
  EXPECT_EQ(verdicts[obs::FaultVerdict::kReplicaRecovered],
            result.faults.replica_recovered);
  EXPECT_EQ(verdicts[obs::FaultVerdict::kDetectedUncorrectable],
            result.faults.detected_uncorrectable);
  EXPECT_EQ(verdicts[obs::FaultVerdict::kSilent], result.faults.silent);

  // The verdict chain is closed: every detected-uncorrectable fault is a
  // pipeline-visible unrecoverable load and vice versa; every silent fault
  // is a silently corrupt load.
  EXPECT_EQ(result.faults.detected_uncorrectable,
            result.pipeline.unrecoverable_loads);
  EXPECT_EQ(result.faults.silent, result.pipeline.silent_corrupt_loads);
}

// Schema lock for the live simulator's interval CSV: the fixed prefix and
// the derived-column names documented in docs/OBSERVABILITY.md.
TEST(Observability, IntervalCsvHeaderGolden) {
  sim::SimConfig config = sim::SimConfig::table1();
  config.fault_probability = 1e-4;
  sim::Simulator simulator(config, core::Scheme::IcrPPS_S(),
                           trace::profile_for(trace::App::kGzip));
  obs::ObsOptions options;
  options.stats_interval = 10000;
  simulator.enable_observability(options);
  (void)simulator.run(20000);

  const std::string header =
      obs::intervals_csv_header(simulator.collect_observability().intervals);
  EXPECT_EQ(header.rfind("variant,app,trial,interval,instr_end,cycles_end,"
                         "d_instructions,d_cycles,ipc,dl1_miss_rate,"
                         "replication_ability,",
                         0),
            0u);
  for (const char* column :
       {",d_dl1.loads,", ",d_dl1.load_misses,", ",d_dl1.stores,",
        ",d_dl1.replication.opportunities,", ",d_dl1.replication.successes,",
        ",d_fault.injections,", ",d_pipeline.committed,",
        ",dl1.resident_replicas"}) {
    EXPECT_NE(header.find(column), std::string::npos) << column;
  }
}

}  // namespace
}  // namespace icr
