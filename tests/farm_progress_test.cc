// The shared throughput/ETA arithmetic (src/obs/throughput.h) now backs
// three surfaces — the campaign ProgressReporter, the farm coordinator's
// FarmProgressReporter, and farm_status — so its zero-guards and formatting
// get pinned down once, here, plus the reporter's pacing contract.
#include "src/obs/farm_progress.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

#include "src/obs/throughput.h"

namespace icr::obs {
namespace {

TEST(Throughput, EstimatesRatePercentAndEta) {
  const Throughput t = estimate_throughput(25, 100, 5.0);
  EXPECT_DOUBLE_EQ(t.rate, 5.0);
  EXPECT_DOUBLE_EQ(t.percent, 25.0);
  ASSERT_TRUE(t.eta_known());
  EXPECT_DOUBLE_EQ(t.eta_seconds, 15.0);  // 75 remaining at 5/s
}

TEST(Throughput, GuardsDegenerateInputs) {
  // No time elapsed: no rate, no ETA — never a division by zero.
  const Throughput fresh = estimate_throughput(10, 100, 0.0);
  EXPECT_DOUBLE_EQ(fresh.rate, 0.0);
  EXPECT_FALSE(fresh.eta_known());

  const Throughput backwards = estimate_throughput(10, 100, -1.0);
  EXPECT_DOUBLE_EQ(backwards.rate, 0.0);
  EXPECT_FALSE(backwards.eta_known());

  // Empty grid reads as complete, not as 0/0.
  const Throughput empty = estimate_throughput(0, 0, 1.0);
  EXPECT_DOUBLE_EQ(empty.percent, 100.0);

  // Nothing done yet: zero rate, unknown ETA.
  const Throughput idle = estimate_throughput(0, 100, 10.0);
  EXPECT_DOUBLE_EQ(idle.rate, 0.0);
  EXPECT_DOUBLE_EQ(idle.percent, 0.0);
  EXPECT_FALSE(idle.eta_known());

  // Overshoot (done > total, e.g. a recount mid-resume): ETA is unknown
  // rather than negative.
  const Throughput over = estimate_throughput(150, 100, 10.0);
  EXPECT_DOUBLE_EQ(over.rate, 15.0);
  EXPECT_FALSE(over.eta_known());
}

TEST(Throughput, SurvivesExtremeCounts) {
  // The HTTP status server feeds this arithmetic straight into /metrics
  // and the dashboard, so the extremes must stay finite (satellite of the
  // serving PR).

  // Empty grid with work somehow done (a resume sweep recount): still
  // "complete", never a negative remaining count.
  const Throughput empty_done = estimate_throughput(3, 0, 2.0);
  EXPECT_DOUBLE_EQ(empty_done.percent, 100.0);
  EXPECT_FALSE(empty_done.eta_known());

  // Instruction-scale counts past 2^53 (where doubles lose integer
  // precision): rate, percent and ETA stay finite and non-negative.
  const std::uint64_t huge_total = (1ULL << 62) + 12345;
  const std::uint64_t huge_done = (1ULL << 61) + 999;
  const Throughput huge = estimate_throughput(huge_done, huge_total, 100.0);
  EXPECT_TRUE(std::isfinite(huge.rate));
  EXPECT_GT(huge.rate, 0.0);
  EXPECT_TRUE(std::isfinite(huge.percent));
  EXPECT_GE(huge.percent, 0.0);
  EXPECT_LE(huge.percent, 100.0);
  ASSERT_TRUE(huge.eta_known());
  EXPECT_TRUE(std::isfinite(huge.eta_seconds));
  EXPECT_NEAR(huge.percent, 50.0, 0.01);
  EXPECT_NEAR(huge.eta_seconds, 100.0, 0.01);

  // Done == total at huge scale reads as exactly complete.
  const Throughput full = estimate_throughput(huge_total, huge_total, 1.0);
  EXPECT_DOUBLE_EQ(full.percent, 100.0);
  ASSERT_TRUE(full.eta_known());
  EXPECT_DOUBLE_EQ(full.eta_seconds, 0.0);

  // MIPS at the same scale: finite, never negative.
  const double mips = simulated_mips(huge_done, 1, 100.0);
  EXPECT_TRUE(std::isfinite(mips));
  EXPECT_GT(mips, 0.0);
}

TEST(Throughput, FormatsEta) {
  Throughput t;
  t.eta_seconds = 42.4;
  EXPECT_EQ(format_eta(t), "ETA 42s");
  EXPECT_EQ(format_eta(t, /*final_line=*/true), "done");
  t.eta_seconds = -1.0;
  EXPECT_EQ(format_eta(t), "ETA --");
}

TEST(Throughput, SimulatedMipsIsZeroGuarded) {
  EXPECT_DOUBLE_EQ(simulated_mips(4, 20000, 2.0), 0.04);  // 80k insn / 2s
  EXPECT_DOUBLE_EQ(simulated_mips(4, 20000, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(simulated_mips(0, 20000, 2.0), 0.0);
}

TEST(FarmProgressReporter, PrintsRateLimitedLinesToStderr) {
  FarmProgressOptions options;
  options.min_interval_seconds = 0.0;  // every poll may print
  FarmProgressReporter reporter(options, /*total_units=*/4,
                                /*total_cells=*/16);

  testing::internal::CaptureStderr();
  reporter.poll(1, 4, 2);
  const std::string line = testing::internal::GetCapturedStderr();
  EXPECT_NE(line.find("farm:"), std::string::npos);
  EXPECT_NE(line.find("1/4 units"), std::string::npos);
  EXPECT_NE(line.find("2 worker(s)"), std::string::npos);

  testing::internal::CaptureStderr();
  reporter.finish(4, 16);
  const std::string final_line = testing::internal::GetCapturedStderr();
  EXPECT_NE(final_line.find("4/4 units"), std::string::npos);
  EXPECT_NE(final_line.find("done"), std::string::npos);

  EXPECT_GE(reporter.elapsed_seconds(), 0.0);
}

TEST(FarmProgressReporter, PacingSuppressesBackToBackPolls) {
  FarmProgressOptions options;
  options.min_interval_seconds = 3600.0;  // nothing inside one test run
  FarmProgressReporter reporter(options, 4, 16);

  testing::internal::CaptureStderr();
  reporter.poll(1, 4, 2);
  reporter.poll(2, 8, 2);
  reporter.poll(3, 12, 2);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");

  // finish() is unconditional even under pacing.
  testing::internal::CaptureStderr();
  reporter.finish(4, 16);
  EXPECT_NE(testing::internal::GetCapturedStderr().find("done"),
            std::string::npos);
}

TEST(FarmProgressReporter, DisabledReporterIsSilent) {
  FarmProgressOptions options;
  options.enabled = false;
  options.min_interval_seconds = 0.0;
  FarmProgressReporter reporter(options, 4, 16);

  testing::internal::CaptureStderr();
  reporter.poll(1, 4, 2);
  reporter.finish(4, 16);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
  EXPECT_GE(reporter.elapsed_seconds(), 0.0);
}

}  // namespace
}  // namespace icr::obs
