#include "src/mem/backing_store.h"

#include <gtest/gtest.h>

namespace icr::mem {
namespace {

TEST(BackingStore, UntouchedWordsAreDeterministic) {
  BackingStore a, b;
  for (std::uint64_t addr = 0; addr < 1024; addr += 8) {
    EXPECT_EQ(a.read_word(addr), b.read_word(addr));
    EXPECT_EQ(a.read_word(addr), BackingStore::initial_word(addr));
  }
  EXPECT_EQ(a.touched_words(), 0u);
}

TEST(BackingStore, DifferentWordsDifferentValues) {
  BackingStore s;
  EXPECT_NE(s.read_word(0), s.read_word(8));
}

TEST(BackingStore, WriteReadRoundTrip) {
  BackingStore s;
  s.write_word(0x1000, 0xDEADBEEF);
  EXPECT_EQ(s.read_word(0x1000), 0xDEADBEEFu);
  EXPECT_EQ(s.touched_words(), 1u);
  s.write_word(0x1000, 42);
  EXPECT_EQ(s.read_word(0x1000), 42u);
  EXPECT_EQ(s.touched_words(), 1u);
}

TEST(BackingStore, UnalignedAccessRoundsDown) {
  BackingStore s;
  s.write_word(0x1003, 99);  // lands on word 0x1000
  EXPECT_EQ(s.read_word(0x1000), 99u);
  EXPECT_EQ(s.read_word(0x1007), 99u);
  EXPECT_NE(s.read_word(0x1008), 99u);
}

TEST(BackingStore, WritesDoNotLeakToNeighbours) {
  BackingStore s;
  const std::uint64_t before_lo = s.read_word(0x2000 - 8);
  const std::uint64_t before_hi = s.read_word(0x2000 + 8);
  s.write_word(0x2000, 7);
  EXPECT_EQ(s.read_word(0x2000 - 8), before_lo);
  EXPECT_EQ(s.read_word(0x2000 + 8), before_hi);
}

}  // namespace
}  // namespace icr::mem
