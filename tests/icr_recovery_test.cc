// Error detection & recovery: the reliability half of the paper, exercised
// end-to-end on real stored bits.
#include <gtest/gtest.h>

#include "src/core/icr_cache.h"
#include "tests/test_util.h"

namespace icr::core {
namespace {

using test::CacheFixture;
using test::addr_for;

// Locates (set, way) of the primary copy of `addr`.
bool find_primary(const IcrCache& c, std::uint64_t addr, std::uint32_t& set,
                  std::uint32_t& way) {
  const auto& g = c.geometry();
  set = g.set_index(addr);
  for (std::uint32_t w = 0; w < g.associativity; ++w) {
    const IcrLine& l = c.line(set, w);
    if (l.valid && !l.replica && l.block_addr == g.block_address(addr)) {
      way = w;
      return true;
    }
  }
  return false;
}

TEST(Recovery, ParityDetectsFlipAndRefetchesCleanBlock) {
  CacheFixture f(Scheme::BaseP());
  const std::uint64_t addr = 0x4000;
  f.dl1->load(addr, 0);  // clean block resident
  std::uint32_t set = 0, way = 0;
  ASSERT_TRUE(find_primary(*f.dl1, addr, set, way));
  f.dl1->flip_data_bit(set, way, 0, 3);

  const auto r = f.dl1->load(addr, 1);
  EXPECT_TRUE(r.error_detected);
  EXPECT_TRUE(r.error_recovered);
  EXPECT_FALSE(r.unrecoverable);
  EXPECT_EQ(r.value, mem::BackingStore::initial_word(addr));
  EXPECT_GT(r.latency, 2u);  // paid an L2 trip
  EXPECT_EQ(f.dl1->stats().errors_refetched_from_l2, 1u);
}

TEST(Recovery, ParityCannotRecoverDirtyUnreplicatedBlock) {
  CacheFixture f(Scheme::BaseP());
  const std::uint64_t addr = 0x4000;
  f.dl1->store(addr, 42, 0);  // dirty, no replica under BaseP
  std::uint32_t set = 0, way = 0;
  ASSERT_TRUE(find_primary(*f.dl1, addr, set, way));
  f.dl1->flip_data_bit(set, way, 0, 0);

  const auto r = f.dl1->load(addr, 1);
  EXPECT_TRUE(r.error_detected);
  EXPECT_TRUE(r.unrecoverable);
  EXPECT_NE(r.value, 42u);  // the corrupted value
  EXPECT_EQ(f.dl1->stats().unrecoverable_loads, 1u);
}

TEST(Recovery, ReplicaRecoversDirtyBlock) {
  CacheFixture f(Scheme::IcrPPS_S());
  const std::uint64_t addr = 0x4000;
  f.dl1->store(addr, 42, 0);  // dirty + replicated
  std::uint32_t set = 0, way = 0;
  ASSERT_TRUE(find_primary(*f.dl1, addr, set, way));
  f.dl1->flip_data_bit(set, way, 0, 0);

  const auto r = f.dl1->load(addr, 1);
  EXPECT_TRUE(r.error_detected);
  EXPECT_TRUE(r.error_recovered);
  EXPECT_EQ(r.value, 42u);  // repaired from the replica
  EXPECT_EQ(r.latency, 2u);  // 1-cycle hit + 1-cycle serial replica probe
  EXPECT_EQ(f.dl1->stats().errors_corrected_by_replica, 1u);
  // The primary has been repaired: the next load is clean and 1 cycle.
  const auto r2 = f.dl1->load(addr, 2);
  EXPECT_FALSE(r2.error_detected);
  EXPECT_EQ(r2.latency, 1u);
}

TEST(Recovery, ParallelLookupPaysNoExtraProbeCycle) {
  CacheFixture f(Scheme::IcrPPP_S());
  const std::uint64_t addr = 0x4000;
  f.dl1->store(addr, 42, 0);
  std::uint32_t set = 0, way = 0;
  ASSERT_TRUE(find_primary(*f.dl1, addr, set, way));
  f.dl1->flip_data_bit(set, way, 0, 0);
  const auto r = f.dl1->load(addr, 1);
  EXPECT_TRUE(r.error_recovered);
  EXPECT_EQ(r.latency, 2u);  // already 2 cycles, replica came for free
}

TEST(Recovery, CorruptReplicaFallsBackToUnrecoverable) {
  CacheFixture f(Scheme::IcrPPS_S());
  const auto& g = f.dl1->geometry();
  const std::uint64_t addr = addr_for(g, 1, 1);
  f.dl1->store(addr, 42, 0);
  // Corrupt the primary word AND the replica word.
  std::uint32_t set = 0, way = 0;
  ASSERT_TRUE(find_primary(*f.dl1, addr, set, way));
  f.dl1->flip_data_bit(set, way, 0, 0);
  const std::uint32_t rset = (1 + g.num_sets() / 2) % g.num_sets();
  for (std::uint32_t w = 0; w < g.associativity; ++w) {
    const IcrLine& l = f.dl1->line(rset, w);
    if (l.valid && l.replica) f.dl1->flip_check_bit(rset, w, 0, 1, false);
  }
  const auto r = f.dl1->load(addr, 1);
  EXPECT_TRUE(r.error_detected);
  EXPECT_TRUE(r.unrecoverable);  // dirty, parity-only, both copies bad
}

TEST(Recovery, EccCorrectsSingleBitOnDirtyBlock) {
  CacheFixture f(Scheme::BaseECC());
  const std::uint64_t addr = 0x4000;
  f.dl1->store(addr, 42, 0);
  std::uint32_t set = 0, way = 0;
  ASSERT_TRUE(find_primary(*f.dl1, addr, set, way));
  f.dl1->flip_data_bit(set, way, 5, 7);
  const auto r = f.dl1->load(addr, 1);
  EXPECT_TRUE(r.error_detected);
  EXPECT_TRUE(r.error_recovered);
  EXPECT_EQ(r.value, 42u);
  EXPECT_EQ(f.dl1->stats().errors_corrected_by_ecc, 1u);
}

TEST(Recovery, EccDoubleBitOnDirtyBlockIsUnrecoverable) {
  CacheFixture f(Scheme::BaseECC());
  const std::uint64_t addr = 0x4000;
  f.dl1->store(addr, 42, 0);
  std::uint32_t set = 0, way = 0;
  ASSERT_TRUE(find_primary(*f.dl1, addr, set, way));
  f.dl1->flip_data_bit(set, way, 0, 0);
  f.dl1->flip_data_bit(set, way, 1, 1);  // two bits in the accessed word
  const auto r = f.dl1->load(addr, 1);
  EXPECT_TRUE(r.error_detected);
  EXPECT_TRUE(r.unrecoverable);
}

TEST(Recovery, EccDoubleBitOnCleanBlockRefetches) {
  CacheFixture f(Scheme::BaseECC());
  const std::uint64_t addr = 0x4000;
  f.dl1->load(addr, 0);
  std::uint32_t set = 0, way = 0;
  ASSERT_TRUE(find_primary(*f.dl1, addr, set, way));
  f.dl1->flip_data_bit(set, way, 0, 0);
  f.dl1->flip_data_bit(set, way, 0, 1);
  const auto r = f.dl1->load(addr, 1);
  EXPECT_TRUE(r.error_recovered);
  EXPECT_EQ(r.value, mem::BackingStore::initial_word(addr));
}

TEST(Recovery, IcrEccUsesParityOnReplicatedLines) {
  // ICR-ECC-PS: a replicated line is parity-protected and loads in 1 cycle;
  // an unreplicated line pays the 2-cycle ECC check.
  CacheFixture f(Scheme::IcrEccPS_S());
  const std::uint64_t hot = 0x4000;
  f.dl1->store(hot, 1, 0);  // replicated
  EXPECT_EQ(f.dl1->load(hot, 1).latency, 1u);

  const std::uint64_t cold = 0x8000;
  f.dl1->load(cold, 2);  // filled, never stored -> unreplicated
  EXPECT_EQ(f.dl1->load(cold, 3).latency, 2u);
}

TEST(Recovery, IcrEccRecoversDirtyViaReplicaWithoutEcc) {
  CacheFixture f(Scheme::IcrEccPS_S());
  const std::uint64_t addr = 0x4000;
  f.dl1->store(addr, 42, 0);
  std::uint32_t set = 0, way = 0;
  ASSERT_TRUE(find_primary(*f.dl1, addr, set, way));
  f.dl1->flip_data_bit(set, way, 0, 2);
  const auto r = f.dl1->load(addr, 1);
  EXPECT_TRUE(r.error_recovered);
  EXPECT_EQ(r.value, 42u);
  EXPECT_EQ(f.dl1->stats().errors_corrected_by_replica, 1u);
  EXPECT_EQ(f.dl1->stats().errors_corrected_by_ecc, 0u);
}

TEST(Recovery, ErrorInUnaccessedWordIsInvisible) {
  CacheFixture f(Scheme::BaseP());
  f.dl1->load(0x4000, 0);
  std::uint32_t set = 0, way = 0;
  ASSERT_TRUE(find_primary(*f.dl1, 0x4000, set, way));
  f.dl1->flip_data_bit(set, way, /*byte=*/32, 0);  // word 4
  const auto r = f.dl1->load(0x4000, 1);  // word 0: clean
  EXPECT_FALSE(r.error_detected);
  const auto r2 = f.dl1->load(0x4020, 2);  // word 4: detected
  EXPECT_TRUE(r2.error_detected);
}

TEST(Recovery, CheckBitFlipDetectedByParityRegime) {
  CacheFixture f(Scheme::BaseP());
  f.dl1->load(0x4000, 0);
  std::uint32_t set = 0, way = 0;
  ASSERT_TRUE(find_primary(*f.dl1, 0x4000, set, way));
  f.dl1->flip_check_bit(set, way, 0, 0, /*ecc_array=*/false);
  const auto r = f.dl1->load(0x4000, 1);
  EXPECT_TRUE(r.error_detected);
  EXPECT_TRUE(r.error_recovered);  // clean block: refetched
}

}  // namespace
}  // namespace icr::core
