#include "src/mem/write_buffer.h"

#include <gtest/gtest.h>

namespace icr::mem {
namespace {

TEST(WriteBuffer, AcceptsUpToCapacityWithoutStall) {
  WriteBuffer wb(4, 6);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(wb.push(i * 64, 0), 0u);
  }
  EXPECT_EQ(wb.occupancy(), 4u);
  EXPECT_EQ(wb.stall_cycles(), 0u);
}

TEST(WriteBuffer, CoalescesSameBlock) {
  WriteBuffer wb(2, 6);
  EXPECT_EQ(wb.push(0x100, 0), 0u);
  EXPECT_EQ(wb.push(0x100, 1), 0u);
  EXPECT_EQ(wb.push(0x120, 2), 0u);  // same 64B block? 0x100..0x13F
  EXPECT_EQ(wb.occupancy(), 2u);     // 0x100 and 0x120 are distinct pushes
  EXPECT_EQ(wb.coalesced_writes(), 1u);
}

TEST(WriteBuffer, StallsWhenFull) {
  WriteBuffer wb(2, 6);
  EXPECT_EQ(wb.push(0, 0), 0u);    // drain of this entry completes at 6
  EXPECT_EQ(wb.push(64, 0), 0u);   // buffer now full
  const std::uint32_t stall = wb.push(128, 1);
  EXPECT_EQ(stall, 5u);  // waits until cycle 6 when the head drains
  EXPECT_EQ(wb.stall_cycles(), 5u);
}

TEST(WriteBuffer, DrainsOverTime) {
  WriteBuffer wb(4, 6);
  wb.push(0, 0);
  wb.push(64, 0);
  wb.drain_to(5);
  EXPECT_EQ(wb.drained_writes(), 0u);
  wb.drain_to(6);
  EXPECT_EQ(wb.drained_writes(), 1u);
  wb.drain_to(12);
  EXPECT_EQ(wb.drained_writes(), 2u);
  EXPECT_EQ(wb.occupancy(), 0u);
}

TEST(WriteBuffer, NoStallAfterLongGap) {
  WriteBuffer wb(2, 6);
  wb.push(0, 0);
  wb.push(64, 0);
  // By cycle 100 everything has drained.
  EXPECT_EQ(wb.push(128, 100), 0u);
  EXPECT_EQ(wb.drained_writes(), 2u);
}

TEST(WriteBuffer, BackToBackDrainsAreSerialized) {
  WriteBuffer wb(8, 6);
  for (std::uint64_t i = 0; i < 4; ++i) wb.push(i * 64, 0);
  // Entries drain at 6, 12, 18, 24.
  wb.drain_to(13);
  EXPECT_EQ(wb.drained_writes(), 2u);
  wb.drain_to(24);
  EXPECT_EQ(wb.drained_writes(), 4u);
}

TEST(WriteBuffer, RepeatedFullStallsAccumulate) {
  WriteBuffer wb(1, 6);
  EXPECT_EQ(wb.push(0, 0), 0u);
  EXPECT_EQ(wb.push(64, 0), 6u);   // waits for the first drain
  EXPECT_GT(wb.push(128, 6), 0u);  // still draining the second
  EXPECT_GT(wb.stall_cycles(), 6u);
}

}  // namespace
}  // namespace icr::mem
