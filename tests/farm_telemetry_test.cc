// Tier-1 contract of the spool-native fleet telemetry: heartbeats
// round-trip exactly and can never be torn by a concurrent reader, the
// event-log merge is deterministic and survives truncated trailing lines,
// the staleness classifier is exact at its boundaries, and — above all —
// telemetry never changes a single exported byte.
#include "src/sim/farm_telemetry.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/sim/campaign.h"
#include "src/sim/farm.h"
#include "src/util/fs.h"
#include "src/util/json.h"

namespace icr::sim::farm {
namespace {

std::string make_temp_spool() {
  char tmpl[] = "/tmp/icr_farm_telemetry_test_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return std::string(dir) + "/spool";
}

CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.variants = {
      {"BaseP", core::Scheme::BaseP()},
      {"ICR-P-PS(S)", core::Scheme::IcrPPS_S()},
  };
  spec.apps = {trace::App::kVortex, trace::App::kMcf};
  spec.instructions = 20000;
  spec.trials = 2;
  spec.derive_seeds = true;
  spec.base_seed = 0xD5DB2003ULL;
  spec.config.fault_model = fault::FaultModel::kRandom;
  spec.config.fault_probability = 1e-4;
  return spec;
}

WorkerHeartbeat sample_heartbeat() {
  WorkerHeartbeat hb;
  hb.worker_id = "w7";
  hb.pid = 4242;
  hb.seq = 19;
  hb.time_unix_seconds = 1754700123.4567891;
  hb.uptime_seconds = 98.25;
  hb.units_done = 11;
  hb.cells_done = 44;
  hb.current_unit = 12;
  hb.current_cell = 49;
  hb.instructions_done = 880000;
  hb.mips = 8.9581;
  hb.exited = false;
  hb.rusage.maxrss_kb = 51234;
  hb.rusage.utime_seconds = 97.125;
  hb.rusage.stime_seconds = 0.75;
  obs::prof::ZoneNode zone;
  zone.path = "Campaign::cell/Pipeline::run";
  zone.name = "Pipeline::run";
  zone.depth = 1;
  zone.count = 44;
  zone.total_ns = 1234567;
  zone.self_ns = 234567;
  hb.prof_zones.push_back(zone);
  return hb;
}

TEST(WorkerHeartbeatJson, RoundTripsEveryField) {
  const WorkerHeartbeat hb = sample_heartbeat();
  const WorkerHeartbeat parsed = WorkerHeartbeat::parse(hb.to_json());
  EXPECT_EQ(parsed.version, kTelemetryFormatVersion);
  EXPECT_EQ(parsed.worker_id, hb.worker_id);
  EXPECT_EQ(parsed.pid, hb.pid);
  EXPECT_EQ(parsed.seq, hb.seq);
  EXPECT_EQ(parsed.time_unix_seconds, hb.time_unix_seconds);  // exact: %.17g
  EXPECT_EQ(parsed.uptime_seconds, hb.uptime_seconds);
  EXPECT_EQ(parsed.units_done, hb.units_done);
  EXPECT_EQ(parsed.cells_done, hb.cells_done);
  EXPECT_EQ(parsed.current_unit, hb.current_unit);
  EXPECT_EQ(parsed.current_cell, hb.current_cell);
  EXPECT_EQ(parsed.instructions_done, hb.instructions_done);
  EXPECT_EQ(parsed.mips, hb.mips);
  EXPECT_EQ(parsed.exited, hb.exited);
  EXPECT_EQ(parsed.rusage.maxrss_kb, hb.rusage.maxrss_kb);
  EXPECT_EQ(parsed.rusage.utime_seconds, hb.rusage.utime_seconds);
  EXPECT_EQ(parsed.rusage.stime_seconds, hb.rusage.stime_seconds);
  ASSERT_EQ(parsed.prof_zones.size(), 1u);
  EXPECT_EQ(parsed.prof_zones[0].path, hb.prof_zones[0].path);
  EXPECT_EQ(parsed.prof_zones[0].name, hb.prof_zones[0].name);
  EXPECT_EQ(parsed.prof_zones[0].depth, hb.prof_zones[0].depth);
  EXPECT_EQ(parsed.prof_zones[0].count, hb.prof_zones[0].count);
  EXPECT_EQ(parsed.prof_zones[0].total_ns, hb.prof_zones[0].total_ns);
  EXPECT_EQ(parsed.prof_zones[0].self_ns, hb.prof_zones[0].self_ns);

  EXPECT_THROW(WorkerHeartbeat::parse("{\"hb\": {\"version\": 99}}"),
               std::runtime_error);
  EXPECT_THROW(WorkerHeartbeat::parse("{}"), std::runtime_error);
}

TEST(WorkerHeartbeatJson, TornReadsAreImpossible) {
  // A reader polling the heartbeat file while a writer republishes it must
  // always see one complete snapshot — the previous or the next, never a
  // splice. This is the atomic-rename contract, exercised for real: one
  // thread republishes rapidly, another reads and parses continuously.
  const std::string spool = make_temp_spool();
  util::fs::make_directories(heartbeat_dir(spool));
  const std::string path = heartbeat_path(spool, "w0");

  WorkerHeartbeat hb = sample_heartbeat();
  hb.worker_id = "w0";
  hb.seq = 0;
  hb.cells_done = 0;
  util::fs::atomic_write_text_file(path, hb.to_json());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread reader([&]() {
    std::uint64_t last_seq = 0;
    while (!stop.load(std::memory_order_acquire)) {
      try {
        const WorkerHeartbeat seen =
            WorkerHeartbeat::parse(util::fs::read_text_file(path));
        if (seen.seq < last_seq) ++failures;  // time went backwards
        last_seq = seen.seq;
        // cells_done tracks seq in this writer; a torn mix would break it.
        if (seen.cells_done != seen.seq * 4) ++failures;
      } catch (const std::exception&) {
        ++failures;  // unparsable = torn or missing
      }
    }
  });
  for (std::uint64_t i = 1; i <= 500; ++i) {
    hb.seq = i;
    hb.cells_done = i * 4;
    util::fs::atomic_write_text_file(path, hb.to_json());
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(FarmEventJson, LineRoundTripsAndRejectsBadInput) {
  FarmEvent event;
  event.worker_id = "coordinator";
  event.seq = 7;
  event.time_unix_seconds = 1754700999.125;
  event.type = FarmEventType::kStaleClear;
  event.unit = 12;
  event.cells = 4;
  event.duration_seconds = 0.5;
  event.detail = "swept";
  const std::string line = event.to_ndjson_line();
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line.find('\n'), line.size() - 1);  // exactly one line

  const FarmEvent parsed = FarmEvent::parse(line);
  EXPECT_EQ(parsed.worker_id, event.worker_id);
  EXPECT_EQ(parsed.seq, event.seq);
  EXPECT_EQ(parsed.time_unix_seconds, event.time_unix_seconds);
  EXPECT_EQ(parsed.type, event.type);
  EXPECT_EQ(parsed.unit, event.unit);
  EXPECT_EQ(parsed.cells, event.cells);
  EXPECT_EQ(parsed.duration_seconds, event.duration_seconds);
  EXPECT_EQ(parsed.detail, event.detail);

  EXPECT_THROW(FarmEvent::parse("{\"v\":99,\"worker\":\"x\"}"),
               std::runtime_error);
  EXPECT_THROW(
      FarmEvent::parse(
          "{\"v\":1,\"worker\":\"x\",\"type\":\"no_such_event\"}"),
      std::runtime_error);
}

// Crafts an event line with pinned fields (bypassing EventLog's wall
// clock) so merge order is fully controlled.
std::string event_line(const std::string& worker, std::uint64_t seq,
                       double t, FarmEventType type, std::int64_t unit = -1,
                       double dur = 0.0) {
  FarmEvent event;
  event.worker_id = worker;
  event.seq = seq;
  event.time_unix_seconds = t;
  event.type = type;
  event.unit = unit;
  event.duration_seconds = dur;
  return event.to_ndjson_line();
}

TEST(FarmEventMerge, IsDeterministicAcrossStreamsAndSkipsPartialLines) {
  const std::string spool = make_temp_spool();
  util::fs::make_directories(event_log_dir(spool));
  // Worker b's stream is written first, with timestamps interleaving a's;
  // one timestamp collides across workers (t=20) and two events on worker
  // a share it too (seq breaks the tie).
  util::fs::append_text_file(
      event_log_path(spool, "b"),
      event_line("b", 0, 15.0, FarmEventType::kWorkerStart) +
          event_line("b", 1, 20.0, FarmEventType::kClaim, 2) +
          event_line("b", 2, 30.0, FarmEventType::kPublish, 2, 10.0));
  util::fs::append_text_file(
      event_log_path(spool, "a"),
      event_line("a", 0, 10.0, FarmEventType::kWorkerStart) +
          event_line("a", 1, 20.0, FarmEventType::kClaim, 1) +
          event_line("a", 2, 20.0, FarmEventType::kPublish, 1, 0.25) +
          "{\"v\":1,\"worker\":\"a\",\"seq\":3,\"t\":99");  // killed mid-append

  std::size_t dropped = 0;
  const std::vector<FarmEvent> events = read_farm_events(spool, &dropped);
  EXPECT_EQ(dropped, 1u);
  ASSERT_EQ(events.size(), 6u);
  // (t, worker, seq) lexicographic: a@10, b@15, a@20#1, a@20#2, b@20, b@30.
  EXPECT_EQ(events[0].worker_id, "a");
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].worker_id, "b");
  EXPECT_EQ(events[1].seq, 0u);
  EXPECT_EQ(events[2].worker_id, "a");
  EXPECT_EQ(events[2].seq, 1u);
  EXPECT_EQ(events[3].worker_id, "a");
  EXPECT_EQ(events[3].seq, 2u);
  EXPECT_EQ(events[4].worker_id, "b");
  EXPECT_EQ(events[4].seq, 1u);
  EXPECT_EQ(events[5].worker_id, "b");
  EXPECT_EQ(events[5].seq, 2u);

  // Pure function of file contents: a second read returns the same merge.
  const std::vector<FarmEvent> again = read_farm_events(spool);
  ASSERT_EQ(again.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(again[i].worker_id, events[i].worker_id);
    EXPECT_EQ(again[i].seq, events[i].seq);
  }
}

TEST(FarmEventLog, ResumesSequenceNumbersAcrossReopen) {
  const std::string spool = make_temp_spool();
  {
    EventLog log(spool, "coordinator");
    EXPECT_EQ(log.next_seq(), 0u);
    log.append(FarmEventType::kResumeSweep, -1, 2);
    log.append(FarmEventType::kStaleClear, 5);
    log.append(FarmEventType::kStaleClear, 6);
  }
  EventLog reopened(spool, "coordinator");
  EXPECT_EQ(reopened.next_seq(), 3u);  // monotonic across process restarts
  reopened.append(FarmEventType::kResumeSweep, -1, 0);

  const std::vector<FarmEvent> events = read_farm_events(spool);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.back().seq, 3u);
}

TEST(FarmTelemetry, SanitizesWorkerIds) {
  EXPECT_EQ(sanitize_worker_id("w0"), "w0");
  EXPECT_EQ(sanitize_worker_id("host-3.example_x"), "host-3.example_x");
  EXPECT_EQ(sanitize_worker_id("a/b c*"), "a_b_c_");
  EXPECT_EQ(sanitize_worker_id(""), "worker");
}

TEST(StalenessClassifier, ExactBoundaries) {
  StalenessPolicy policy;
  policy.straggler_after_seconds = 10.0;
  policy.dead_after_seconds = 60.0;

  WorkerHeartbeat hb;
  hb.time_unix_seconds = 1000.0;

  const auto classify_at_age = [&](double age) {
    return classify_worker(hb, 1000.0 + age, policy);
  };
  EXPECT_EQ(classify_at_age(0.0), WorkerState::kRunning);
  EXPECT_EQ(classify_at_age(9.999), WorkerState::kRunning);
  EXPECT_EQ(classify_at_age(10.0), WorkerState::kStraggler);  // inclusive
  EXPECT_EQ(classify_at_age(59.999), WorkerState::kStraggler);
  EXPECT_EQ(classify_at_age(60.0), WorkerState::kDead);  // inclusive
  EXPECT_EQ(classify_at_age(1e6), WorkerState::kDead);
  // Clock skew (heartbeat from the "future") counts as age zero.
  EXPECT_EQ(classify_at_age(-5.0), WorkerState::kRunning);
  // An exit record beats any age.
  hb.exited = true;
  EXPECT_EQ(classify_at_age(1e6), WorkerState::kExited);
}

TEST(FarmStatus, ClassifiesWorkersAndSplitsClaims) {
  const CampaignSpec spec = small_spec();
  const Manifest manifest = manifest_for(spec, 2);
  const std::string spool = make_temp_spool();
  init_spool(spool, manifest);
  util::fs::make_directories(heartbeat_dir(spool));

  // Unit 0 is claimed but unpublished; worker "a" says it is inside it.
  ASSERT_TRUE(util::fs::try_create_exclusive(claim_path(spool, 0), "{}\n"));
  WorkerHeartbeat a;
  a.worker_id = "a";
  a.time_unix_seconds = 1000.0;
  a.uptime_seconds = 50.0;
  a.cells_done = 25;
  a.current_unit = 0;
  util::fs::atomic_write_text_file(heartbeat_path(spool, "a"), a.to_json());
  WorkerHeartbeat b;
  b.worker_id = "b";
  b.time_unix_seconds = 900.0;  // 105s stale at now=1005
  util::fs::atomic_write_text_file(heartbeat_path(spool, "b"), b.to_json());

  FarmStatusOptions options;
  options.now_unix_seconds = 1005.0;  // a: 5s (running), b: 105s (dead)
  const FarmStatus status = collect_farm_status(spool, manifest, options);
  ASSERT_EQ(status.workers.size(), 2u);
  EXPECT_EQ(status.workers[0].heartbeat.worker_id, "a");  // sorted by id
  EXPECT_EQ(status.workers[0].state, WorkerState::kRunning);
  EXPECT_DOUBLE_EQ(status.workers[0].age_seconds, 5.0);
  EXPECT_DOUBLE_EQ(status.workers[0].cells_per_second, 0.5);
  EXPECT_EQ(status.workers[1].heartbeat.worker_id, "b");
  EXPECT_EQ(status.workers[1].state, WorkerState::kDead);
  EXPECT_EQ(status.claims_live, 1u);   // a is alive inside unit 0
  EXPECT_EQ(status.claims_stale, 0u);
  EXPECT_FALSE(status.drained());

  // Once a goes dead too, the same claim becomes stale.
  options.now_unix_seconds = 1000.0 + 61.0;
  const FarmStatus later = collect_farm_status(spool, manifest, options);
  EXPECT_EQ(later.workers[0].state, WorkerState::kDead);
  EXPECT_EQ(later.claims_live, 0u);
  EXPECT_EQ(later.claims_stale, 1u);

  // Both renderers accept the status; the NDJSON one parses line by line.
  EXPECT_FALSE(render_farm_status(later).empty());
  const std::string ndjson = farm_status_to_ndjson(later);
  std::size_t lines = 0;
  std::size_t begin = 0;
  while (begin < ndjson.size()) {
    const std::size_t end = ndjson.find('\n', begin);
    ASSERT_NE(end, std::string::npos);
    const util::JsonValue doc =
        util::JsonValue::parse(ndjson.substr(begin, end - begin));
    EXPECT_TRUE(doc.is_object());
    ++lines;
    begin = end + 1;
  }
  EXPECT_EQ(lines, 3u);  // one farm summary + two workers
}

TEST(FarmStatus, NdjsonCarriesTheSchemaVersionAndRoundTrips) {
  const CampaignSpec spec = small_spec();
  const Manifest manifest = manifest_for(spec, 2);
  const std::string spool = make_temp_spool();
  init_spool(spool, manifest);
  util::fs::make_directories(heartbeat_dir(spool));
  WorkerHeartbeat hb;
  hb.worker_id = "w0";
  hb.time_unix_seconds = 1000.0;
  hb.cells_done = 4;
  util::fs::atomic_write_text_file(heartbeat_path(spool, "w0"), hb.to_json());

  FarmStatusOptions options;
  options.now_unix_seconds = 1002.0;
  const FarmStatus status = collect_farm_status(spool, manifest, options);
  const std::string ndjson = farm_status_to_ndjson(status);

  // Satellite contract (docs/CAMPAIGN.md): every record carries the
  // monotonic schema version so remote parsers can gate on it.
  std::size_t begin = 0;
  std::size_t records = 0;
  while (begin < ndjson.size()) {
    const std::size_t end = ndjson.find('\n', begin);
    ASSERT_NE(end, std::string::npos);
    const util::JsonValue doc =
        util::JsonValue::parse(ndjson.substr(begin, end - begin));
    EXPECT_EQ(static_cast<int>(doc.get("schema").as_double()),
              kStatusSchemaVersion);
    ++records;
    begin = end + 1;
  }
  EXPECT_EQ(records, 2u);

  // And the inverse parser rebuilds the same census (serve_test.cc covers
  // the full field set over HTTP; this pins the local round trip).
  const FarmStatus parsed = farm_status_from_ndjson(ndjson);
  EXPECT_EQ(parsed.schema, kStatusSchemaVersion);
  EXPECT_EQ(parsed.census.unit_count, status.census.unit_count);
  EXPECT_EQ(parsed.census.cells_done, status.census.cells_done);
  ASSERT_EQ(parsed.workers.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed.workers[0].age_seconds, 2.0);
  // Records without a schema field parse as version 1 (pre-PR-9 output).
  const FarmStatus v1 = farm_status_from_ndjson(
      "{\"type\":\"farm\",\"unit_count\":1,\"units_done\":0,"
      "\"total_cells\":2,\"cells_done\":0,\"claims_outstanding\":0,"
      "\"claims_live\":0,\"claims_stale\":0,\"events\":0,"
      "\"dropped_event_lines\":0,\"unreadable_heartbeats\":0,"
      "\"percent\":0,\"cells_per_second\":0,\"eta_seconds\":-1,"
      "\"elapsed_seconds\":0,\"complete\":false,\"drained\":false}\n");
  EXPECT_EQ(v1.schema, 1);
}

TEST(FarmStatus, FutureDatedHeartbeatRendersAsZeroAge) {
  const CampaignSpec spec = small_spec();
  const Manifest manifest = manifest_for(spec, 2);
  const std::string spool = make_temp_spool();
  init_spool(spool, manifest);
  util::fs::make_directories(heartbeat_dir(spool));
  WorkerHeartbeat hb;
  hb.worker_id = "skewed";
  hb.time_unix_seconds = 2000.0;  // 1000s in the reader's future
  util::fs::atomic_write_text_file(heartbeat_path(spool, "skewed"),
                                   hb.to_json());

  FarmStatusOptions options;
  options.now_unix_seconds = 1000.0;
  const FarmStatus status = collect_farm_status(spool, manifest, options);
  ASSERT_EQ(status.workers.size(), 1u);
  // The classifier clamps the age; the human table must agree — never
  // "-1000.0s ago" (satellite of the serving PR).
  EXPECT_DOUBLE_EQ(status.workers[0].age_seconds, 0.0);
  const std::string table = render_farm_status(status);
  EXPECT_NE(table.find("0.0s ago"), std::string::npos);
  EXPECT_EQ(table.find("-1000"), std::string::npos);
}

TEST(FarmTelemetry, WorkerLoopEmitsTelemetryWithoutPerturbingExports) {
  const CampaignSpec spec = small_spec();
  const Manifest manifest = manifest_for(spec, 3);

  // Plain spool: telemetry off (the PR-6 baseline).
  const std::string plain = make_temp_spool();
  init_spool(plain, manifest);
  const WorkerReport plain_report = run_worker_loop(plain, spec);

  // Telemetry spool: heartbeats + events on, huge interval so only the
  // forced unit-boundary beats fire (deterministic count).
  const std::string traced = make_temp_spool();
  init_spool(traced, manifest);
  WorkerTelemetryOptions topt;
  topt.worker_id = "w0";
  topt.heartbeat_interval_seconds = 3600.0;
  WorkerTelemetry telemetry(traced, topt);
  const WorkerReport traced_report =
      run_worker_loop(traced, spec, 0, nullptr, &telemetry);

  EXPECT_EQ(plain_report.units_run, traced_report.units_run);
  EXPECT_EQ(plain_report.cells_run, traced_report.cells_run);

  // The telemetry files exist and describe the run...
  const WorkerHeartbeat hb = WorkerHeartbeat::parse(
      util::fs::read_text_file(heartbeat_path(traced, "w0")));
  EXPECT_TRUE(hb.exited);
  EXPECT_EQ(hb.units_done, traced_report.units_run);
  EXPECT_EQ(hb.cells_done, traced_report.cells_run);
  EXPECT_EQ(hb.instructions_done,
            traced_report.cells_run * manifest.instructions);
  const std::vector<FarmEvent> events = read_farm_events(traced);
  std::size_t claims = 0, publishes = 0, exits = 0;
  for (const FarmEvent& event : events) {
    if (event.type == FarmEventType::kClaim) ++claims;
    if (event.type == FarmEventType::kPublish) ++publishes;
    if (event.type == FarmEventType::kExit) ++exits;
  }
  EXPECT_EQ(claims, traced_report.units_run);
  EXPECT_EQ(publishes, traced_report.units_run);
  EXPECT_EQ(exits, 1u);

  // ...and the aggregated exports are byte-identical to the plain spool's.
  const auto aggregate = [&](const std::string& spool) {
    std::ostringstream csv, json;
    FarmAggregator aggregator(manifest, &csv, &json);
    for (std::uint32_t u = 0; u < manifest.unit_count; ++u) {
      aggregator.add_unit(u, parse_unit_json(util::fs::read_text_file(
                                                 unit_path(spool, u)),
                                             u));
    }
    aggregator.finish();
    return csv.str() + "\x1f" + json.str();
  };
  EXPECT_EQ(aggregate(plain), aggregate(traced));
}

TEST(FleetTrace, SynthesizesSpansAndMergesWorkerCaptures) {
  const std::string spool = make_temp_spool();
  util::fs::make_directories(event_log_dir(spool));
  util::fs::append_text_file(
      event_log_path(spool, "w0"),
      event_line("w0", 0, 100.0, FarmEventType::kClaim, 3) +
          event_line("w0", 1, 102.5, FarmEventType::kPublish, 3, 2.5) +
          event_line("w0", 2, 103.0, FarmEventType::kExit));
  util::fs::make_directories(worker_trace_dir(spool));
  util::fs::atomic_write_text_file(
      worker_trace_path(spool, "w0"),
      "[\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":77,\"tid\":0,"
      "\"args\":{\"name\":\"worker w0\"}}\n]\n");

  const std::string merged = merge_fleet_trace(spool);
  const util::JsonValue doc = util::JsonValue::parse(merged);
  ASSERT_TRUE(doc.is_array());
  bool saw_fleet = false, saw_span = false, saw_worker_capture = false;
  for (const util::JsonValue& event : doc.items()) {
    const std::string& name = event.get("name").as_string();
    if (name == "process_name" &&
        event.get("args").get("name").as_string() == "farm fleet") {
      saw_fleet = true;
    }
    if (event.get("ph").as_string() == "X" && name == "unit 3") {
      saw_span = true;
      // The span covers claim..publish in absolute unix microseconds.
      EXPECT_DOUBLE_EQ(event.get("ts").as_double(), 100.0 * 1e6);
      EXPECT_DOUBLE_EQ(event.get("dur").as_double(), 2.5 * 1e6);
      EXPECT_EQ(event.get("pid").as_double(), 0.0);
    }
    if (name == "process_name" && event.get("pid").as_double() == 77.0) {
      saw_worker_capture = true;
    }
  }
  EXPECT_TRUE(saw_fleet);
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_worker_capture);
}

}  // namespace
}  // namespace icr::sim::farm
