// Tier-2 exhaustive sweep of the Hamming (72,64) SEC-DED codec.
//
// For a sample of data words: flip every one of the 72 codeword bits (64
// data + 8 check) and require exact correction; flip all C(72,2) = 2556
// double-bit pairs and require detection without miscorrection. Together
// with tests/secded_test.cc (unit cases) this pins the full single- and
// double-error behaviour the reliability claims of the paper rest on.
#include "src/coding/secded.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace icr {
namespace {

std::vector<std::uint64_t> sample_words(std::size_t extra_random) {
  std::vector<std::uint64_t> words = {
      0x0000000000000000ULL, 0xFFFFFFFFFFFFFFFFULL, 0x0000000000000001ULL,
      0x8000000000000000ULL, 0xAAAAAAAAAAAAAAAAULL, 0x5555555555555555ULL,
      0xDEADBEEFCAFEF00DULL,
  };
  Rng rng(0x5EC0DEDULL);
  for (std::size_t i = 0; i < extra_random; ++i) {
    words.push_back(rng.next_u64());
  }
  return words;
}

// Flips codeword bit `bit` (0..63 = data bits, 64..71 = check bits).
void flip(std::uint64_t& data, std::uint8_t& check, unsigned bit) {
  if (bit < 64) {
    data ^= 1ULL << bit;
  } else {
    check ^= static_cast<std::uint8_t>(1u << (bit - 64));
  }
}

TEST(SecDedExhaustive, EverySingleBitFlipIsCorrected) {
  for (const std::uint64_t word : sample_words(9)) {
    const std::uint8_t check = secded_encode(word);
    for (unsigned bit = 0; bit < 72; ++bit) {
      std::uint64_t data = word;
      std::uint8_t stored = check;
      flip(data, stored, bit);
      const SecDedResult result = secded_decode(data, stored);
      if (bit < 64) {
        EXPECT_EQ(result.status, SecDedStatus::kCorrectedData)
            << "word " << std::hex << word << " bit " << std::dec << bit;
      } else {
        EXPECT_EQ(result.status, SecDedStatus::kCorrectedCheck)
            << "word " << std::hex << word << " check bit " << std::dec
            << (bit - 64);
      }
      EXPECT_EQ(result.data, word)
          << "word " << std::hex << word << " bit " << std::dec << bit;
    }
  }
}

TEST(SecDedExhaustive, EveryDoubleBitFlipIsDetectedNotMiscorrected) {
  for (const std::uint64_t word : sample_words(1)) {
    const std::uint8_t check = secded_encode(word);
    for (unsigned first = 0; first < 72; ++first) {
      for (unsigned second = first + 1; second < 72; ++second) {
        std::uint64_t data = word;
        std::uint8_t stored = check;
        flip(data, stored, first);
        flip(data, stored, second);
        const SecDedResult result = secded_decode(data, stored);
        // Must flag the word as untrustworthy: neither silently clean nor
        // "corrected" into some other word (a miscorrection).
        ASSERT_EQ(result.status, SecDedStatus::kDetectedDouble)
            << "word " << std::hex << word << " bits " << std::dec << first
            << "," << second;
      }
    }
  }
}

TEST(SecDedExhaustive, CleanWordsStayClean) {
  for (const std::uint64_t word : sample_words(25)) {
    const SecDedResult result = secded_decode(word, secded_encode(word));
    EXPECT_EQ(result.status, SecDedStatus::kClean);
    EXPECT_EQ(result.data, word);
  }
}

}  // namespace
}  // namespace icr
