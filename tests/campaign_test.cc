// Tier-2 determinism contract of the campaign engine: per-cell metrics and
// exported text are bit-identical for any thread count, and per-cell seeds
// are unique across the grid.
#include "src/sim/campaign.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>

#include "src/sim/results_io.h"

namespace icr::sim {
namespace {

CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.variants = {
      {"BaseP", core::Scheme::BaseP()},
      {"ICR-P-PS(S)", core::Scheme::IcrPPS_S()},
      {"ICR-ECC-PS(S)", core::Scheme::IcrEccPS_S()},
  };
  spec.apps = {trace::App::kVortex, trace::App::kMcf, trace::App::kGzip};
  spec.instructions = 20000;
  spec.trials = 2;
  spec.derive_seeds = true;
  spec.base_seed = 0xD5DB2003ULL;
  spec.config.fault_model = fault::FaultModel::kRandom;
  spec.config.fault_probability = 1e-4;
  return spec;
}

TEST(Campaign, MetricsBitIdenticalAcrossThreadCounts) {
  const CampaignSpec spec = small_spec();
  const CampaignResult one = CampaignRunner(1).run(spec);
  const CampaignResult two = CampaignRunner(2).run(spec);
  const CampaignResult eight = CampaignRunner(8).run(spec);

  ASSERT_EQ(one.cells.size(), spec.cell_count());
  ASSERT_EQ(two.cells.size(), one.cells.size());
  ASSERT_EQ(eight.cells.size(), one.cells.size());

  for (std::size_t i = 0; i < one.cells.size(); ++i) {
    const std::vector<double> a = metric_values(one.cells[i].result);
    const std::vector<double> b = metric_values(two.cells[i].result);
    const std::vector<double> c = metric_values(eight.cells[i].result);
    ASSERT_EQ(a.size(), metric_columns().size());
    for (std::size_t m = 0; m < a.size(); ++m) {
      // Bit-identical, not approximately equal.
      EXPECT_EQ(a[m], b[m]) << "cell " << i << " metric "
                            << metric_columns()[m] << " (1 vs 2 threads)";
      EXPECT_EQ(a[m], c[m]) << "cell " << i << " metric "
                            << metric_columns()[m] << " (1 vs 8 threads)";
    }
    EXPECT_EQ(one.cells[i].cell.seed, eight.cells[i].cell.seed);
    EXPECT_EQ(one.cells[i].result.scheme, eight.cells[i].result.scheme);
    EXPECT_EQ(one.cells[i].result.app, eight.cells[i].result.app);
  }
}

TEST(Campaign, JsonAndCsvIdenticalAcrossThreadCountsModuloTiming) {
  const CampaignSpec spec = small_spec();
  const CampaignResult one = CampaignRunner(1).run(spec);
  const CampaignResult eight = CampaignRunner(8).run(spec);

  EXPECT_EQ(to_json(one, /*include_timing=*/false),
            to_json(eight, /*include_timing=*/false));
  EXPECT_EQ(to_csv(one), to_csv(eight));
  // With timing included the texts legitimately differ (wall time), but
  // the experiment fingerprint does not.
  EXPECT_EQ(one.meta.config_hash, eight.meta.config_hash);
}

TEST(Campaign, CellSeedsUniqueAcrossGrid) {
  // A full-size grid: 10 variants x 8 apps x 16 trials.
  std::set<std::uint64_t> seeds;
  for (std::size_t v = 0; v < 10; ++v) {
    for (std::size_t a = 0; a < 8; ++a) {
      for (std::size_t t = 0; t < 16; ++t) {
        seeds.insert(derive_cell_seed(0x1C9CA37ULL, v, a, t));
      }
    }
  }
  EXPECT_EQ(seeds.size(), 10u * 8u * 16u);
}

TEST(Campaign, CellSeedsDependOnEveryCoordinate) {
  const std::uint64_t base = derive_cell_seed(1, 2, 3, 4);
  EXPECT_EQ(base, derive_cell_seed(1, 2, 3, 4));
  EXPECT_NE(base, derive_cell_seed(2, 2, 3, 4));
  EXPECT_NE(base, derive_cell_seed(1, 3, 3, 4));
  EXPECT_NE(base, derive_cell_seed(1, 2, 4, 4));
  EXPECT_NE(base, derive_cell_seed(1, 2, 3, 5));
}

TEST(Campaign, DerivedSeedsChangeTheRun) {
  // Same grid, different base seed => different injected-fault streams.
  CampaignSpec spec = small_spec();
  spec.variants = {{"BaseP", core::Scheme::BaseP()}};
  spec.apps = {trace::App::kVortex};
  spec.trials = 4;
  spec.config.fault_probability = 1e-3;

  CampaignSpec other = spec;
  other.base_seed = spec.base_seed + 1;

  const CampaignResult a = CampaignRunner(2).run(spec);
  const CampaignResult b = CampaignRunner(2).run(other);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    if (metric_values(a.cells[i].result) != metric_values(b.cells[i].result)) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Campaign, LegacySeedModeMatchesRunMatrix) {
  // derive_seeds = false must reproduce the sequential run_matrix numbers —
  // the contract that lets every figure bench ride the engine unchanged.
  const std::vector<SchemeVariant> variants = {
      {"BaseP", core::Scheme::BaseP()}, {"BaseECC", core::Scheme::BaseECC()}};
  const std::vector<trace::App> apps = {trace::App::kGzip, trace::App::kMcf};

  const auto matrix = run_matrix(variants, apps, SimConfig::table1(), 20000);

  CampaignSpec spec;
  spec.variants = variants;
  spec.apps = apps;
  spec.instructions = 20000;
  const CampaignResult campaign = CampaignRunner(8).run(spec);

  for (std::size_t v = 0; v < variants.size(); ++v) {
    for (std::size_t a = 0; a < apps.size(); ++a) {
      EXPECT_EQ(metric_values(matrix[v][a]),
                metric_values(campaign.at(v, a, 0, apps.size(), 1).result));
    }
  }
}

TEST(Campaign, ThreadResolutionPrefersExplicitThenEnvThenHardware) {
  EXPECT_EQ(resolve_thread_count(5), 5u);
  setenv("ICR_SIM_THREADS", "3", 1);
  EXPECT_EQ(resolve_thread_count(0), 3u);
  EXPECT_EQ(resolve_thread_count(7), 7u);
  setenv("ICR_SIM_THREADS", "junk", 1);
  EXPECT_GE(resolve_thread_count(0), 1u);
  unsetenv("ICR_SIM_THREADS");
  EXPECT_GE(resolve_thread_count(0), 1u);
}

TEST(Campaign, ConfigHashSeparatesExperiments) {
  const CampaignSpec spec = small_spec();
  CampaignSpec different_seed = spec;
  different_seed.base_seed ^= 1;
  CampaignSpec different_fault = spec;
  different_fault.config.fault_probability = 2e-4;
  CampaignSpec different_apps = spec;
  different_apps.apps.pop_back();

  const std::uint64_t base = campaign_config_hash(spec);
  EXPECT_EQ(base, campaign_config_hash(spec));
  EXPECT_NE(base, campaign_config_hash(different_seed));
  EXPECT_NE(base, campaign_config_hash(different_fault));
  EXPECT_NE(base, campaign_config_hash(different_apps));
}

}  // namespace
}  // namespace icr::sim
