// Tier-2 determinism contract of the campaign engine: per-cell metrics and
// exported text are bit-identical for any thread count, and per-cell seeds
// are unique across the grid.
#include "src/sim/campaign.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <stdexcept>
#include <string>

#include "src/sim/results_io.h"

namespace icr::sim {
namespace {

CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.variants = {
      {"BaseP", core::Scheme::BaseP()},
      {"ICR-P-PS(S)", core::Scheme::IcrPPS_S()},
      {"ICR-ECC-PS(S)", core::Scheme::IcrEccPS_S()},
  };
  spec.apps = {trace::App::kVortex, trace::App::kMcf, trace::App::kGzip};
  spec.instructions = 20000;
  spec.trials = 2;
  spec.derive_seeds = true;
  spec.base_seed = 0xD5DB2003ULL;
  spec.config.fault_model = fault::FaultModel::kRandom;
  spec.config.fault_probability = 1e-4;
  return spec;
}

TEST(Campaign, MetricsBitIdenticalAcrossThreadCounts) {
  const CampaignSpec spec = small_spec();
  const CampaignResult one = CampaignRunner(1).run(spec);
  const CampaignResult two = CampaignRunner(2).run(spec);
  const CampaignResult eight = CampaignRunner(8).run(spec);

  ASSERT_EQ(one.cells.size(), spec.cell_count());
  ASSERT_EQ(two.cells.size(), one.cells.size());
  ASSERT_EQ(eight.cells.size(), one.cells.size());

  for (std::size_t i = 0; i < one.cells.size(); ++i) {
    const std::vector<double> a = metric_values(one.cells[i].result);
    const std::vector<double> b = metric_values(two.cells[i].result);
    const std::vector<double> c = metric_values(eight.cells[i].result);
    ASSERT_EQ(a.size(), metric_columns().size());
    for (std::size_t m = 0; m < a.size(); ++m) {
      // Bit-identical, not approximately equal.
      EXPECT_EQ(a[m], b[m]) << "cell " << i << " metric "
                            << metric_columns()[m] << " (1 vs 2 threads)";
      EXPECT_EQ(a[m], c[m]) << "cell " << i << " metric "
                            << metric_columns()[m] << " (1 vs 8 threads)";
    }
    EXPECT_EQ(one.cells[i].cell.seed, eight.cells[i].cell.seed);
    EXPECT_EQ(one.cells[i].result.scheme, eight.cells[i].result.scheme);
    EXPECT_EQ(one.cells[i].result.app, eight.cells[i].result.app);
  }
}

TEST(Campaign, JsonAndCsvIdenticalAcrossThreadCountsModuloTiming) {
  const CampaignSpec spec = small_spec();
  const CampaignResult one = CampaignRunner(1).run(spec);
  const CampaignResult eight = CampaignRunner(8).run(spec);

  EXPECT_EQ(to_json(one, /*include_timing=*/false),
            to_json(eight, /*include_timing=*/false));
  EXPECT_EQ(to_csv(one), to_csv(eight));
  // With timing included the texts legitimately differ (wall time), but
  // the experiment fingerprint does not.
  EXPECT_EQ(one.meta.config_hash, eight.meta.config_hash);
}

TEST(Campaign, CellSeedsUniqueAcrossGrid) {
  // A full-size grid: 10 variants x 8 apps x 16 trials.
  std::set<std::uint64_t> seeds;
  for (std::size_t v = 0; v < 10; ++v) {
    for (std::size_t a = 0; a < 8; ++a) {
      for (std::size_t t = 0; t < 16; ++t) {
        seeds.insert(derive_cell_seed(0x1C9CA37ULL, v, a, t));
      }
    }
  }
  EXPECT_EQ(seeds.size(), 10u * 8u * 16u);
}

TEST(Campaign, CellSeedsDependOnEveryCoordinate) {
  const std::uint64_t base = derive_cell_seed(1, 2, 3, 4);
  EXPECT_EQ(base, derive_cell_seed(1, 2, 3, 4));
  EXPECT_NE(base, derive_cell_seed(2, 2, 3, 4));
  EXPECT_NE(base, derive_cell_seed(1, 3, 3, 4));
  EXPECT_NE(base, derive_cell_seed(1, 2, 4, 4));
  EXPECT_NE(base, derive_cell_seed(1, 2, 3, 5));
}

TEST(Campaign, DerivedSeedsChangeTheRun) {
  // Same grid, different base seed => different injected-fault streams.
  CampaignSpec spec = small_spec();
  spec.variants = {{"BaseP", core::Scheme::BaseP()}};
  spec.apps = {trace::App::kVortex};
  spec.trials = 4;
  spec.config.fault_probability = 1e-3;

  CampaignSpec other = spec;
  other.base_seed = spec.base_seed + 1;

  const CampaignResult a = CampaignRunner(2).run(spec);
  const CampaignResult b = CampaignRunner(2).run(other);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    if (metric_values(a.cells[i].result) != metric_values(b.cells[i].result)) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Campaign, LegacySeedModeMatchesRunMatrix) {
  // derive_seeds = false must reproduce the sequential run_matrix numbers —
  // the contract that lets every figure bench ride the engine unchanged.
  const std::vector<SchemeVariant> variants = {
      {"BaseP", core::Scheme::BaseP()}, {"BaseECC", core::Scheme::BaseECC()}};
  const std::vector<trace::App> apps = {trace::App::kGzip, trace::App::kMcf};

  const auto matrix = run_matrix(variants, apps, SimConfig::table1(), 20000);

  CampaignSpec spec;
  spec.variants = variants;
  spec.apps = apps;
  spec.instructions = 20000;
  const CampaignResult campaign = CampaignRunner(8).run(spec);

  for (std::size_t v = 0; v < variants.size(); ++v) {
    for (std::size_t a = 0; a < apps.size(); ++a) {
      EXPECT_EQ(metric_values(matrix[v][a]),
                metric_values(campaign.at(v, a, 0, apps.size(), 1).result));
    }
  }
}

TEST(Campaign, ThreadResolutionPrefersExplicitThenEnvThenHardware) {
  EXPECT_EQ(resolve_thread_count(5), 5u);
  setenv("ICR_SIM_THREADS", "3", 1);
  EXPECT_EQ(resolve_thread_count(0), 3u);
  EXPECT_EQ(resolve_thread_count(7), 7u);
  setenv("ICR_SIM_THREADS", "junk", 1);
  EXPECT_GE(resolve_thread_count(0), 1u);
  unsetenv("ICR_SIM_THREADS");
  EXPECT_GE(resolve_thread_count(0), 1u);
}

// ---- degraded-geometry regressions (docs/GEOMETRY.md) ----

TEST(CampaignGeometry, HashOfNonGeometrySpecsPinnedAcrossVersions) {
  // Golden fingerprint of small_spec(): geometry (and every other
  // conditionally-folded axis) must not move the hash of a spec that does
  // not use it. If this value changes, old spools stop resuming — bump it
  // only with a deliberate format break.
  EXPECT_EQ(campaign_config_hash(small_spec()), 0x4fa8d4a66140fc3cULL);
}

TEST(CampaignGeometry, DisabledMaskZeroByteIdenticalToPlainRun) {
  // An explicit count=0 way-disable config is enabled()==false: the run,
  // the exports, and the config hash are byte-for-byte the pre-PR ones,
  // at 1 and at 8 threads.
  const CampaignSpec plain = small_spec();
  CampaignSpec masked_zero = small_spec();
  masked_zero.config.dl1_way_disable = mem::WayDisableConfig{};
  masked_zero.config.dl1_way_disable.count = 0;

  EXPECT_EQ(campaign_config_hash(plain), campaign_config_hash(masked_zero));

  const CampaignResult a1 = CampaignRunner(1).run(plain);
  const CampaignResult b1 = CampaignRunner(1).run(masked_zero);
  const CampaignResult b8 = CampaignRunner(8).run(masked_zero);
  EXPECT_EQ(to_csv(a1), to_csv(b1));
  EXPECT_EQ(to_csv(a1), to_csv(b8));
  EXPECT_EQ(to_json(a1, /*include_timing=*/false),
            to_json(b1, /*include_timing=*/false));
  EXPECT_EQ(to_json(a1, /*include_timing=*/false),
            to_json(b8, /*include_timing=*/false));
}

TEST(CampaignGeometry, AxesAbsentLeaveExportSchemaUnchanged) {
  // No geometry sweep => the historical CSV header and JSON cell schema,
  // with no dl1_size/dl1_assoc/ways_disabled columns anywhere.
  const std::string header = results_csv_header(/*sampled=*/false);
  EXPECT_EQ(header, results_csv_header(false, /*geometry=*/false));
  EXPECT_EQ(header.rfind("variant,app,trial,seed,instructions,", 0), 0u);
  EXPECT_EQ(header.find("dl1_size"), std::string::npos);
  EXPECT_EQ(header.find("ways_disabled"), std::string::npos);

  const CampaignResult result = CampaignRunner(2).run(small_spec());
  EXPECT_FALSE(result.meta.geometry);
  EXPECT_EQ(to_csv(result).find("dl1_size"), std::string::npos);
  EXPECT_EQ(to_json(result, false).find("\"geometry\""), std::string::npos);
}

CampaignSpec geometry_spec() {
  CampaignSpec spec = small_spec();
  spec.geometry.sizes = {8 * 1024, 16 * 1024};
  spec.geometry.assocs = {2, 4};
  spec.geometry.ways_disabled = {0, 1, 2};
  expand_geometry_sweep(spec);
  return spec;
}

TEST(CampaignGeometry, SweepExpansionIsDeterministicAndSkipsInfeasible) {
  const CampaignSpec spec = geometry_spec();
  // 3 base schemes x (2 sizes x 2 assocs x 3 k - 2 infeasible 2-way/d2
  // combinations) = 30 variants, in a reproducible order.
  EXPECT_EQ(spec.variants.size(), 30u);
  EXPECT_EQ(spec.geometry.base_schemes.size(), 3u);
  EXPECT_EQ(spec.variants.front().label, "BaseP@8K/2w-d0");
  for (const SchemeVariant& v : spec.variants) {
    ASSERT_TRUE(v.config.has_value()) << v.label;
    EXPECT_LT(v.config->dl1_way_disable.count, v.config->dl1.associativity);
  }
  EXPECT_EQ(campaign_config_hash(spec),
            campaign_config_hash(geometry_spec()));
  // Re-expanding an already-expanded spec is an error, not silent
  // quadratic growth.
  CampaignSpec expanded = geometry_spec();
  EXPECT_THROW(expand_geometry_sweep(expanded), std::invalid_argument);
}

TEST(CampaignGeometry, SweepBitIdenticalAcrossThreadCounts) {
  const CampaignSpec spec = geometry_spec();
  const CampaignResult one = CampaignRunner(1).run(spec);
  const CampaignResult eight = CampaignRunner(8).run(spec);
  EXPECT_TRUE(one.meta.geometry);
  EXPECT_EQ(to_csv(one), to_csv(eight));
  EXPECT_EQ(to_json(one, /*include_timing=*/false),
            to_json(eight, /*include_timing=*/false));
  // Geometry provenance columns present and populated.
  const std::string csv = to_csv(one);
  EXPECT_NE(csv.find(",dl1_size,dl1_assoc,ways_disabled,"),
            std::string::npos);
  EXPECT_NE(csv.find("BaseP@8K/2w-d1,"), std::string::npos);
  for (const CellResult& cell : one.cells) {
    EXPECT_TRUE(cell.geometry.present);
  }
}

TEST(Campaign, ConfigHashSeparatesExperiments) {
  const CampaignSpec spec = small_spec();
  CampaignSpec different_seed = spec;
  different_seed.base_seed ^= 1;
  CampaignSpec different_fault = spec;
  different_fault.config.fault_probability = 2e-4;
  CampaignSpec different_apps = spec;
  different_apps.apps.pop_back();

  const std::uint64_t base = campaign_config_hash(spec);
  EXPECT_EQ(base, campaign_config_hash(spec));
  EXPECT_NE(base, campaign_config_hash(different_seed));
  EXPECT_NE(base, campaign_config_hash(different_fault));
  EXPECT_NE(base, campaign_config_hash(different_apps));
}

}  // namespace
}  // namespace icr::sim
