// Tier-2 sampled-vs-full accuracy harness (ISSUE 5 acceptance): for a
// grid of paper schemes x applications, warmup + interval-sampled
// estimates must land within stated relative-error bounds of the full
// detailed run for the headline metrics (dL1 miss rate, replication
// coverage, energy, cycles), and the per-app dL1 miss-rate ranking of the
// schemes must be preserved exactly — a sampled campaign has to reach the
// same qualitative conclusions as a full one.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <vector>

#include "src/sim/sampling.h"
#include "src/sim/simulator.h"

namespace icr::sim {
namespace {

constexpr std::uint64_t kBudget = 300000;
constexpr std::uint64_t kWarmup = 30000;
constexpr std::uint32_t kWindows = 10;
constexpr std::uint64_t kWindowWidth = 6000;  // 20% detailed coverage

// Error tolerances, relative to the full run. Rate-style metrics converge
// fastest; cycles carry the extra variance of the CPI-extrapolated
// fast-forward clock. Measured headroom is roughly 2x (see the printed
// table when running this suite with --gtest_also_run_disabled_tests off).
constexpr double kMissRateTolerance = 0.05;
constexpr double kCoverageTolerance = 0.10;
constexpr double kEnergyTolerance = 0.05;
constexpr double kCyclesTolerance = 0.15;

struct SchemePoint {
  const char* label;
  core::Scheme scheme;
};

std::vector<SchemePoint> schemes() {
  return {
      {"BaseP", core::Scheme::BaseP()},
      {"BaseECC", core::Scheme::BaseECC()},
      {"ICR-P-PS(S)", core::Scheme::IcrPPS_S()},
      {"ICR-ECC-PS(S)", core::Scheme::IcrEccPS_S()},
  };
}

std::vector<trace::App> apps() {
  return {trace::App::kGzip, trace::App::kVpr, trace::App::kMcf,
          trace::App::kVortex};
}

SimConfig accuracy_config() {
  SimConfig config = SimConfig::table1();
  config.fault_model = fault::FaultModel::kRandom;
  config.fault_probability = 1e-5;
  return config;
}

double relative_error(double estimate, double reference) {
  if (reference == 0.0) return estimate == 0.0 ? 0.0 : 1.0;
  return std::abs(estimate - reference) / std::abs(reference);
}

struct Comparison {
  RunResult full;
  RunResult sampled;
  double full_seconds = 0.0;
  double sampled_seconds = 0.0;
};

Comparison compare_one(const SchemePoint& point, trace::App app) {
  const SimConfig config = accuracy_config();
  Comparison out;

  const auto t0 = std::chrono::steady_clock::now();
  Simulator full(config, point.scheme, trace::profile_for(app));
  out.full = full.run(kBudget);
  const auto t1 = std::chrono::steady_clock::now();

  Simulator sampled_sim(config, point.scheme, trace::profile_for(app));
  SamplingOptions options;
  options.warmup_instructions = kWarmup;
  options.windows = kWindows;
  options.window_width = kWindowWidth;
  const SampledRunResult sampled =
      SamplingController(sampled_sim, options).run(kBudget);
  const auto t2 = std::chrono::steady_clock::now();

  out.sampled = sampled.estimate;
  out.full_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.sampled_seconds = std::chrono::duration<double>(t2 - t1).count();
  EXPECT_TRUE(sampled.provenance.sampled);
  EXPECT_NEAR(sampled.provenance.coverage(), 0.2, 0.02);
  return out;
}

TEST(SamplingAccuracy, EstimatesWithinBoundsAndRankingPreserved) {
  const std::vector<SchemePoint> grid = schemes();
  const std::vector<trace::App> app_list = apps();

  double full_total = 0.0;
  double sampled_total = 0.0;
  std::printf("%-14s %-8s %10s %10s %10s %10s\n", "scheme", "app",
              "miss-err", "cov-err", "energy-err", "cycle-err");
  for (const trace::App app : app_list) {
    // Full-run and sampled dL1 miss rates per scheme, for ranking checks.
    std::vector<double> full_miss;
    std::vector<double> sampled_miss;
    for (const SchemePoint& point : grid) {
      const Comparison c = compare_one(point, app);
      full_total += c.full_seconds;
      sampled_total += c.sampled_seconds;

      const double miss_err =
          relative_error(c.sampled.dl1.miss_rate(), c.full.dl1.miss_rate());
      const double cov_err =
          relative_error(c.sampled.dl1.loads_with_replica_fraction(),
                         c.full.dl1.loads_with_replica_fraction());
      const double energy_err = relative_error(c.sampled.energy.total_nj(),
                                               c.full.energy.total_nj());
      const double cycle_err =
          relative_error(static_cast<double>(c.sampled.cycles),
                         static_cast<double>(c.full.cycles));
      std::printf("%-14s %-8s %9.2f%% %9.2f%% %9.2f%% %9.2f%%\n", point.label,
                  trace::to_string(app), 100.0 * miss_err, 100.0 * cov_err,
                  100.0 * energy_err, 100.0 * cycle_err);

      EXPECT_LE(miss_err, kMissRateTolerance)
          << point.label << " on " << trace::to_string(app);
      EXPECT_LE(cov_err, kCoverageTolerance)
          << point.label << " on " << trace::to_string(app);
      EXPECT_LE(energy_err, kEnergyTolerance)
          << point.label << " on " << trace::to_string(app);
      EXPECT_LE(cycle_err, kCyclesTolerance)
          << point.label << " on " << trace::to_string(app);
      // The estimate still covers the whole budget.
      EXPECT_NEAR(static_cast<double>(c.sampled.instructions),
                  static_cast<double>(kBudget), 0.02 * kBudget);

      full_miss.push_back(c.full.dl1.miss_rate());
      sampled_miss.push_back(c.sampled.dl1.miss_rate());
    }

    // Scheme ordering by dL1 miss rate must match the full run for every
    // distinguishable pair: the sampled campaign reaches the same
    // conclusions. Pairs the full run itself cannot separate (BaseP vs
    // BaseECC differ only in protection, so their miss rates are true
    // near-ties) carry no ordering information to preserve.
    for (std::size_t a = 0; a < grid.size(); ++a) {
      for (std::size_t b = a + 1; b < grid.size(); ++b) {
        const double gap = relative_error(full_miss[a], full_miss[b]);
        if (gap < 2.0 * kMissRateTolerance) continue;  // indistinguishable
        EXPECT_EQ(full_miss[a] < full_miss[b],
                  sampled_miss[a] < sampled_miss[b])
            << "dL1 miss-rate ordering of " << grid[a].label << " vs "
            << grid[b].label << " changed on " << trace::to_string(app);
      }
    }
  }

  const double speedup = sampled_total > 0.0 ? full_total / sampled_total : 0.0;
  std::printf("wall time: full %.2fs, sampled %.2fs — %.1fx speedup at 20%% "
              "coverage\n", full_total, sampled_total, speedup);
  // The point of sampling: materially faster on the same instruction
  // budget. 20% detailed coverage reliably clears 2x even on loaded CI
  // machines; the >=5x demo at 5% coverage lives in bench/sampled_vs_full.
  EXPECT_GE(speedup, 2.0);
}

}  // namespace
}  // namespace icr::sim
