// icr_sim — command-line driver for the ICR simulator.
//
// One binary to run any (application | recorded trace) under any protection
// scheme with every §3/§5 knob exposed, printing either a human-readable
// report or a CSV row for scripting.
//
//   icr_sim --app=mcf --scheme=ICR-P-PS(S) --instructions=1000000
//   icr_sim --app=vpr --scheme=BaseECC --fault-prob=1e-4 --fault-model=column
//   icr_sim --trace=run.icrt --window=1000 --victim=dead-first --csv
//   icr_sim --record=run.icrt --app=gcc --instructions=200000
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/obs_io.h"
#include "src/obs/prof.h"
#include "src/obs/prof_io.h"
#include "src/rel/rel_io.h"
#include "src/sim/cli.h"
#include "src/sim/experiment.h"
#include "src/sim/results_io.h"
#include "src/sim/sampling.h"
#include "src/sim/serve.h"
#include "src/sim/simulator.h"
#include "src/trace/trace_file.h"
#include "src/trace/trace_v2.h"
#include "src/util/table.h"

using namespace icr;
using sim::cli::app_by_name;
using sim::cli::fault_by_name;
using sim::cli::parse_flag;
using sim::cli::scheme_by_name;
using sim::cli::victim_by_name;

namespace {

struct Options {
  std::string app = "gzip";
  std::string trace_path;   // replay instead of the synthetic app
  std::string record_path;  // record the app's trace and exit
  std::string scheme = "ICR-P-PS(S)";
  std::uint64_t instructions = 0;  // 0 = ICR_SIM_INSTRUCTIONS / 1M default
  std::uint64_t window = 0;
  std::string victim = "dead-only";
  bool leave_replicas = false;
  bool write_through = false;
  std::uint32_t rcache = 0;
  std::string fault_model = "random";
  double fault_prob = 0.0;
  std::string geometry;  // dL1 override: SIZE/ASSOC (e.g. 16K/4)
  std::uint32_t ways_disabled = 0;
  std::uint32_t way_mask = 0;  // explicit per-set mask; overrides the count
  std::string way_pattern = "fixed";
  std::uint64_t way_seed = 0x0DDB17ULL;
  std::uint64_t warmup = 0;
  std::uint32_t sample_windows = 0;
  std::uint64_t sample_width = 0;
  std::string sample_mode = "systematic";
  std::uint64_t sample_seed = 0x5A3D11ULL;
  bool csv = false;
  std::uint64_t stats_interval = 0;  // 0 = off (default when outputs ask)
  std::string intervals_out;
  std::string heatmap_out;
  std::string trace_out;
  std::string trace_filter = "all";
  bool rel = false;
  std::string rel_out;
  std::string rel_intervals_out;
  bool prof = false;
  std::string prof_out;
  std::string serve_spec;  // HTTP status server: PORT or ADDR:PORT
};

void usage() {
  std::puts(
      "icr_sim — ICR (DSN'03) cache-reliability simulator\n"
      "  --app=NAME            gzip|vpr|gcc|mcf|parser|mesa|vortex|bzip2\n"
      "  --trace=FILE          replay a recorded .icrt trace instead\n"
      "  --record=FILE         record the app's trace to FILE and exit\n"
      "  --scheme=NAME         BaseP|BaseECC|BaseECC-spec|ICR-{P,ECC}-{PS,PP}({S,LS})\n"
      "  --instructions=N      instructions to simulate (default 1M)\n"
      "  --window=N            dead-block decay window in cycles (default 0)\n"
      "  --victim=POLICY       dead-only|dead-first|replica-first|replica-only\n"
      "  --leave-replicas      keep replicas on primary eviction (§5.6)\n"
      "  --write-through       write-through dL1 + 8-entry buffer (§5.8)\n"
      "  --rcache=N            attach an N-entry Kim&Somani R-Cache\n"
      "  --fault-model=M       random|adjacent|column|direct\n"
      "  --fault-prob=P        per-cycle injection probability (default 0)\n"
      "  --geometry=SIZE/WAYS  dL1 geometry override, e.g. 16K/4 or 8192/2\n"
      "  --ways-disabled=K     disable K ways per dL1 set (docs/GEOMETRY.md)\n"
      "  --way-mask=M          explicit disabled-way bitmask (overrides K)\n"
      "  --way-pattern=P       fixed|random placement of disabled ways\n"
      "  --way-seed=S          per-set draw seed for --way-pattern=random\n"
      "  --warmup=N            functional warmup for N instructions before\n"
      "                        measuring (docs/SAMPLING.md)\n"
      "  --sample-windows=K    interval sampling: measure K windows, report\n"
      "                        weighted whole-run estimates\n"
      "  --sample-width=N      instructions per window (default: budget/10K)\n"
      "  --sample-mode=M       systematic|random window placement\n"
      "  --sample-seed=S       placement stream for --sample-mode=random\n"
      "  --csv                 one CSV row instead of the report\n"
      "  --stats-interval=N    sample telemetry every N instructions\n"
      "                        (default 100000 when an output below is set)\n"
      "  --intervals-out=FILE  write the per-interval telemetry CSV\n"
      "  --heatmap-out=FILE    write the per-set replica occupancy CSV\n"
      "  --trace-out=FILE      write the NDJSON event trace\n"
      "  --trace-filter=LIST   categories: replication,eviction,fault,decay\n"
      "                        or 'all' (default)\n"
      "  --rel                 analytical reliability model: vulnerability\n"
      "                        breakdown appended to the report\n"
      "  --rel-out=FILE        write the reliability report as JSON\n"
      "  --rel-intervals-out=F write the lifetime-interval taxonomy CSV\n"
      "  --prof                profile the simulator itself: self-time\n"
      "                        table of host-side zones on stderr\n"
      "  --prof-out=FILE       write the capture as Chrome trace-event JSON\n"
      "                        (open in Perfetto; implies --prof)\n"
      "  --serve=[ADDR:]PORT   embedded HTTP status server for long runs\n"
      "                        (docs/SERVING.md): GET / /healthz /status\n"
      "                        /metrics /events; binds 127.0.0.1 by default\n");
}

void print_csv(const sim::RunResult& r) {
  std::printf(
      "scheme,app,instructions,cycles,ipc,dl1_miss_rate,replication_ability,"
      "loads_with_replica,errors_detected,unrecoverable_loads,"
      "silent_corrupt_loads,energy_nj\n");
  std::printf("%s,%s,%llu,%llu,%.4f,%.5f,%.4f,%.4f,%llu,%llu,%llu,%.1f\n",
              r.scheme.c_str(), r.app.c_str(),
              static_cast<unsigned long long>(r.instructions),
              static_cast<unsigned long long>(r.cycles), r.ipc(),
              r.dl1.miss_rate(), r.dl1.replication_ability(),
              r.dl1.loads_with_replica_fraction(),
              static_cast<unsigned long long>(r.dl1.errors_detected),
              static_cast<unsigned long long>(r.dl1.unrecoverable_loads),
              static_cast<unsigned long long>(r.pipeline.silent_corrupt_loads),
              r.energy.total_nj());
}

void print_report(const sim::RunResult& r) {
  TextTable t("icr_sim: " + r.scheme + " on " + r.app, {"metric", "value"});
  auto add = [&](const char* k, const std::string& v) { t.add_row({k, v}); };
  add("instructions", std::to_string(r.instructions));
  add("cycles", std::to_string(r.cycles));
  add("IPC", format_double(r.ipc(), 3));
  add("dL1 miss rate", format_double(r.dl1.miss_rate(), 4));
  add("L1I miss rate", format_double(r.l1i.miss_rate(), 4));
  add("branch mispredict rate", format_double(r.branch.mispredict_rate(), 4));
  add("replication ability", format_double(r.dl1.replication_ability(), 3));
  add("loads with replica",
      format_double(r.dl1.loads_with_replica_fraction(), 3));
  add("replicas created", std::to_string(r.dl1.replicas_created));
  add("replica fills (leave mode)", std::to_string(r.dl1.replica_fills));
  add("errors detected", std::to_string(r.dl1.errors_detected));
  add("corrected by replica",
      std::to_string(r.dl1.errors_corrected_by_replica));
  add("corrected by ECC", std::to_string(r.dl1.errors_corrected_by_ecc));
  add("corrected by R-Cache",
      std::to_string(r.dl1.errors_corrected_by_rcache));
  add("refetched from L2", std::to_string(r.dl1.errors_refetched_from_l2));
  add("unrecoverable loads", std::to_string(r.dl1.unrecoverable_loads));
  add("silent corrupt loads",
      std::to_string(r.pipeline.silent_corrupt_loads));
  add("L1+L2 dynamic energy (uJ)",
      format_double(r.energy.total_nj() / 1000.0, 2));
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (parse_flag(argv[i], "--app", value)) {
      opt.app = value;
    } else if (parse_flag(argv[i], "--trace", value)) {
      opt.trace_path = value;
    } else if (parse_flag(argv[i], "--record", value)) {
      opt.record_path = value;
    } else if (parse_flag(argv[i], "--scheme", value)) {
      opt.scheme = value;
    } else if (parse_flag(argv[i], "--instructions", value)) {
      opt.instructions = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--window", value)) {
      opt.window = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--victim", value)) {
      opt.victim = value;
    } else if (std::strcmp(argv[i], "--leave-replicas") == 0) {
      opt.leave_replicas = true;
    } else if (std::strcmp(argv[i], "--write-through") == 0) {
      opt.write_through = true;
    } else if (parse_flag(argv[i], "--rcache", value)) {
      opt.rcache = static_cast<std::uint32_t>(
          std::strtoul(value.c_str(), nullptr, 10));
    } else if (parse_flag(argv[i], "--fault-model", value)) {
      opt.fault_model = value;
    } else if (parse_flag(argv[i], "--fault-prob", value)) {
      opt.fault_prob = std::atof(value.c_str());
    } else if (parse_flag(argv[i], "--geometry", value)) {
      opt.geometry = value;
    } else if (parse_flag(argv[i], "--ways-disabled", value)) {
      opt.ways_disabled = static_cast<std::uint32_t>(
          std::strtoul(value.c_str(), nullptr, 10));
    } else if (parse_flag(argv[i], "--way-mask", value)) {
      opt.way_mask = static_cast<std::uint32_t>(
          std::strtoul(value.c_str(), nullptr, 0));
    } else if (parse_flag(argv[i], "--way-pattern", value)) {
      opt.way_pattern = value;
    } else if (parse_flag(argv[i], "--way-seed", value)) {
      opt.way_seed = std::strtoull(value.c_str(), nullptr, 0);
    } else if (parse_flag(argv[i], "--warmup", value)) {
      opt.warmup = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--sample-windows", value)) {
      opt.sample_windows = static_cast<std::uint32_t>(
          std::strtoul(value.c_str(), nullptr, 10));
    } else if (parse_flag(argv[i], "--sample-width", value)) {
      opt.sample_width = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--sample-mode", value)) {
      opt.sample_mode = value;
    } else if (parse_flag(argv[i], "--sample-seed", value)) {
      opt.sample_seed = std::strtoull(value.c_str(), nullptr, 0);
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      opt.csv = true;
    } else if (parse_flag(argv[i], "--stats-interval", value)) {
      opt.stats_interval = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--intervals-out", value)) {
      opt.intervals_out = value;
    } else if (parse_flag(argv[i], "--heatmap-out", value)) {
      opt.heatmap_out = value;
    } else if (parse_flag(argv[i], "--trace-out", value)) {
      opt.trace_out = value;
    } else if (parse_flag(argv[i], "--trace-filter", value)) {
      opt.trace_filter = value;
    } else if (std::strcmp(argv[i], "--rel") == 0) {
      opt.rel = true;
    } else if (parse_flag(argv[i], "--rel-out", value)) {
      opt.rel_out = value;
    } else if (parse_flag(argv[i], "--rel-intervals-out", value)) {
      opt.rel_intervals_out = value;
    } else if (std::strcmp(argv[i], "--prof") == 0) {
      opt.prof = true;
    } else if (parse_flag(argv[i], "--prof-out", value)) {
      opt.prof_out = value;
      opt.prof = true;
    } else if (parse_flag(argv[i], "--serve", value)) {
      opt.serve_spec = value;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      usage();
      return 0;
    } else {
      sim::cli::unknown_flag("icr_sim", argv[i]);
    }
  }

  const std::uint64_t instructions = opt.instructions != 0
                                         ? opt.instructions
                                         : sim::default_instruction_count();

  if (!opt.record_path.empty()) {
    trace::SyntheticWorkload source(trace::profile_for(app_by_name(opt.app)));
    // ICRT-v2 is the default container; `icr_trace record --v1` (or
    // `icr_trace convert --v1`) covers the legacy format.
    trace::record_trace_v2(source, instructions, opt.record_path);
    std::printf("recorded %llu instructions of %s to %s (ICRT-v2)\n",
                static_cast<unsigned long long>(instructions),
                opt.app.c_str(), opt.record_path.c_str());
    return 0;
  }

  core::Scheme scheme = scheme_by_name(opt.scheme)
                            .with_decay_window(opt.window)
                            .with_victim_policy(victim_by_name(opt.victim))
                            .with_leave_replicas(opt.leave_replicas);
  if (opt.write_through) scheme = scheme.with_write_through(8);

  sim::SimConfig config = sim::SimConfig::table1();
  config.fault_model = fault_by_name(opt.fault_model);
  config.fault_probability = opt.fault_prob;
  config.rcache_entries = opt.rcache;
  try {
    if (!opt.geometry.empty()) {
      const std::size_t slash = opt.geometry.find('/');
      if (slash == std::string::npos) {
        throw std::invalid_argument("--geometry expects SIZE/WAYS, e.g. 16K/4");
      }
      std::string size_text = opt.geometry.substr(0, slash);
      std::uint64_t mult = 1;
      if (!size_text.empty() &&
          (size_text.back() == 'K' || size_text.back() == 'k')) {
        mult = 1024;
        size_text.pop_back();
      } else if (!size_text.empty() &&
                 (size_text.back() == 'M' || size_text.back() == 'm')) {
        mult = 1024 * 1024;
        size_text.pop_back();
      }
      config.dl1.size_bytes = static_cast<std::uint32_t>(
          std::strtoull(size_text.c_str(), nullptr, 10) * mult);
      config.dl1.associativity = static_cast<std::uint32_t>(std::strtoul(
          opt.geometry.c_str() + slash + 1, nullptr, 10));
      config.dl1.validate();
    }
    if (opt.ways_disabled != 0 || opt.way_mask != 0) {
      if (opt.way_pattern != "fixed" && opt.way_pattern != "random") {
        throw std::invalid_argument("--way-pattern must be fixed or random");
      }
      config.dl1_way_disable.count = opt.ways_disabled;
      config.dl1_way_disable.fixed_mask = opt.way_mask;
      config.dl1_way_disable.pattern =
          opt.way_pattern == "random"
              ? mem::WayDisableConfig::Pattern::kRandom
              : mem::WayDisableConfig::Pattern::kFixed;
      config.dl1_way_disable.seed = opt.way_seed;
      config.dl1_way_disable.validate(config.dl1.associativity);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "icr_sim: %s\n", error.what());
    return 2;
  }

  obs::ObsOptions obsopt;
  obsopt.stats_interval = opt.stats_interval;
  if (obsopt.stats_interval == 0 &&
      (!opt.intervals_out.empty() || !opt.heatmap_out.empty())) {
    obsopt.stats_interval = obs::kDefaultStatsInterval;
  }
  if (!opt.trace_out.empty()) {
    obsopt.trace_categories = obs::parse_category_list(opt.trace_filter);
    if (obsopt.trace_categories == 0) {
      std::fprintf(stderr, "bad --trace-filter '%s'\n",
                   opt.trace_filter.c_str());
      return 2;
    }
  }

  if (!opt.rel_out.empty() || !opt.rel_intervals_out.empty()) opt.rel = true;
  rel::RelOptions relopt;
  relopt.enabled = opt.rel;
  relopt.probability = opt.fault_prob;

  sim::SamplingOptions sampling;
  sampling.warmup_instructions = opt.warmup;
  sampling.windows = opt.sample_windows;
  sampling.window_width = opt.sample_width;
  sampling.mode = sim::cli::sample_mode_by_name(opt.sample_mode);
  sampling.seed = opt.sample_seed;

  if (opt.prof) obs::prof::begin_capture();

  // HTTP status server for long runs. The simulation thread pushes
  // snapshots between run chunks; chunked execution commits the identical
  // instruction stream (simulator contract, tier-1 guarded), so serving
  // never changes results.
  std::unique_ptr<sim::farm::SimStatusSource> serve_source;
  std::unique_ptr<obs::http::Server> serve_server;
  if (!opt.serve_spec.empty()) {
    try {
      sim::farm::ServeOptions serve_options;
      sim::farm::parse_serve_spec(opt.serve_spec, &serve_options);
      serve_source = std::make_unique<sim::farm::SimStatusSource>(
          opt.scheme, opt.trace_path.empty() ? opt.app : opt.trace_path,
          instructions);
      serve_server =
          sim::farm::start_status_server(*serve_source, serve_options);
      std::fprintf(stderr, "serving run status on %s\n",
                   serve_server->url().c_str());
    } catch (const std::exception& error) {
      std::fprintf(stderr, "icr_sim: %s\n", error.what());
      return 2;
    }
  }
  const auto serve_update = [&](sim::Simulator& simulator,
                                std::uint64_t done) {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    if (obs::Observability* o = simulator.observability()) {
      const auto values = o->registry.snapshot_counters();
      const auto& names = o->registry.counter_names();
      counters.reserve(names.size());
      for (std::size_t c = 0; c < names.size(); ++c) {
        counters.emplace_back(names[c], values[c]);
      }
    }
    serve_source->update(done, std::move(counters),
                         opt.prof ? obs::prof::snapshot_zones()
                                  : std::vector<obs::prof::ZoneNode>{});
  };
  const auto run_serving = [&](sim::Simulator& simulator) {
    if (serve_source == nullptr) return simulator.run(instructions);
    // Chunk against the *committed* count, like Simulator::run does for
    // sampling intervals: the commit stage overshoots each call by up to
    // commit_width-1, and absolute targets keep that from accumulating —
    // the chunked run commits the exact stream a single run() would.
    const std::uint64_t chunk =
        std::max<std::uint64_t>(instructions / 200, 10000);
    const std::uint64_t base = simulator.result().instructions;
    const std::uint64_t target = base + instructions;
    sim::RunResult chunk_result = simulator.result();
    while (chunk_result.instructions < target) {
      const std::uint64_t next =
          std::min(chunk_result.instructions + chunk, target);
      chunk_result = simulator.run(next - chunk_result.instructions);
      serve_update(simulator,
                   std::min(chunk_result.instructions - base, instructions));
    }
    return chunk_result;
  };

  sim::RunResult result;
  sim::SampleProvenance provenance;
  obs::CellObservability telemetry;
  rel::RelReport rel_report;
  if (!opt.trace_path.empty()) {
    // Replay path: the recorded trace drives the exact same Simulator
    // wiring the synthetic path uses, so a replayed trace reproduces its
    // generator-driven run bit for bit (guarded by tier-1 test).
    trace::OpenedTrace opened;
    try {
      opened = trace::open_trace(opt.trace_path);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "icr_sim: %s\n", error.what());
      return 1;
    }
    // Provenance header; stderr under --csv so stdout stays parseable.
    std::fprintf(opt.csv ? stderr : stdout,
                 "replaying %s: ICRT-v%u, %llu record(s), fingerprint "
                 "0x%016llx\n",
                 opt.trace_path.c_str(), opened.info.version,
                 static_cast<unsigned long long>(opened.info.records),
                 static_cast<unsigned long long>(opened.info.fingerprint));
    sim::Simulator simulator(config, scheme, std::move(opened.source),
                             opt.trace_path);
    if (obsopt.any()) simulator.enable_observability(obsopt);
    if (relopt.enabled) simulator.enable_rel(relopt);
    if (sampling.enabled()) {
      sim::SampledRunResult sampled =
          sim::SamplingController(simulator, sampling).run(instructions);
      result = std::move(sampled.estimate);
      provenance = sampled.provenance;
      if (serve_source != nullptr) serve_update(simulator, instructions);
    } else {
      result = run_serving(simulator);
    }
    if (obsopt.any()) telemetry = simulator.collect_observability();
    if (relopt.enabled) rel_report = simulator.collect_rel();
  } else if (obsopt.any() || relopt.enabled || sampling.enabled() ||
             serve_source != nullptr) {
    sim::Simulator simulator(config, scheme,
                             trace::profile_for(app_by_name(opt.app)));
    if (obsopt.any()) simulator.enable_observability(obsopt);
    if (relopt.enabled) simulator.enable_rel(relopt);
    if (sampling.enabled()) {
      sim::SampledRunResult sampled =
          sim::SamplingController(simulator, sampling).run(instructions);
      result = std::move(sampled.estimate);
      provenance = sampled.provenance;
      if (serve_source != nullptr) serve_update(simulator, instructions);
    } else {
      result = run_serving(simulator);
    }
    if (obsopt.any()) telemetry = simulator.collect_observability();
    if (relopt.enabled) rel_report = simulator.collect_rel();
  } else {
    result =
        sim::run_one(app_by_name(opt.app), scheme, config, instructions);
  }
  if (serve_source != nullptr) serve_source->finish();

  // End the capture before reporting: the simulation is what we profile,
  // not the table rendering. The table goes to stderr so --csv stdout
  // stays machine-readable.
  if (opt.prof) {
    const obs::prof::Profile profile = obs::prof::end_capture();
    std::fputs(obs::prof::format_self_time_table(profile).c_str(), stderr);
    if (!opt.prof_out.empty()) {
      sim::write_text_file(opt.prof_out, obs::prof::to_chrome_trace(
                                             profile, "icr_sim"));
      std::fprintf(stderr, "wrote host profile to %s\n",
                   opt.prof_out.c_str());
    }
  }

  if (opt.csv) {
    print_csv(result);
  } else {
    print_report(result);
    if (provenance.sampled) {
      std::printf("sampling: warmup %llu, %u window(s) (%s), measured "
                  "%llu of %llu instructions (%.1f%% detailed coverage) — "
                  "metrics are estimates\n",
                  static_cast<unsigned long long>(
                      provenance.warmup_instructions),
                  provenance.windows, sim::to_string(sampling.mode),
                  static_cast<unsigned long long>(
                      provenance.measured_instructions),
                  static_cast<unsigned long long>(provenance.budget),
                  100.0 * provenance.coverage());
    }
    if (opt.rel) std::fputs(rel::format_report(rel_report).c_str(), stdout);
  }

  const obs::CellTag tag{result.scheme, result.app, 0};
  if (!opt.rel_out.empty()) {
    std::string json;
    rel::append_json_object(json, rel_report, tag, 0);
    json += '\n';
    sim::write_text_file(opt.rel_out, json);
    std::printf("wrote reliability report to %s\n", opt.rel_out.c_str());
  }
  if (!opt.rel_intervals_out.empty()) {
    sim::write_text_file(opt.rel_intervals_out,
                         rel::intervals_to_csv(rel_report, tag));
    std::printf("wrote %zu interval classes to %s\n",
                rel_report.intervals.size(), opt.rel_intervals_out.c_str());
  }
  if (!opt.intervals_out.empty()) {
    sim::write_text_file(opt.intervals_out,
                         obs::intervals_to_csv(telemetry.intervals, tag));
    std::printf("wrote %zu intervals to %s\n",
                telemetry.intervals.interval_count(),
                opt.intervals_out.c_str());
  }
  if (!opt.heatmap_out.empty()) {
    sim::write_text_file(opt.heatmap_out,
                         obs::occupancy_to_csv(telemetry.intervals, tag));
    std::printf("wrote occupancy heatmap to %s\n", opt.heatmap_out.c_str());
  }
  if (!opt.trace_out.empty()) {
    std::string ndjson;
    obs::append_ndjson(ndjson, telemetry.events, tag);
    sim::write_text_file(opt.trace_out, ndjson);
    std::printf("wrote %zu events to %s (%llu emitted, %llu dropped)\n",
                telemetry.events.size(), opt.trace_out.c_str(),
                static_cast<unsigned long long>(telemetry.trace_emitted),
                static_cast<unsigned long long>(telemetry.trace_dropped));
  }

  // Inline interval summary when sampling was on but nobody asked for the
  // raw CSV (and the single-line --csv mode isn't active).
  if (obsopt.stats_interval != 0 && opt.intervals_out.empty() && !opt.csv) {
    const auto pts = obs::interval_points(telemetry.intervals);
    const obs::IntervalSummary s = obs::summarize(pts);
    TextTable t("interval telemetry (" +
                    std::to_string(obsopt.stats_interval) + " instr/sample)",
                {"metric", "mean", "peak", "final"});
    t.add_row({"dL1 miss rate", format_double(s.mean_miss_rate, 4),
               format_double(s.peak_miss_rate, 4),
               format_double(s.final_miss_rate, 4)});
    t.add_row({"replication ability",
               format_double(s.mean_replication_ability, 3),
               format_double(s.peak_replication_ability, 3),
               format_double(s.final_replication_ability, 3)});
    t.add_row({"IPC", format_double(s.mean_ipc, 3), "-", "-"});
    t.print();

    const auto phases = obs::segment_phases(pts);
    TextTable p("phases (miss-rate segmentation, " +
                    std::to_string(phases.size()) + " found)",
                {"phase", "intervals", "miss rate", "repl ability", "IPC"});
    for (std::size_t i = 0; i < phases.size(); ++i) {
      const obs::Phase& ph = phases[i];
      p.add_row({std::to_string(i),
                 std::to_string(ph.first_interval) + ".." +
                     std::to_string(ph.last_interval),
                 format_double(ph.mean_miss_rate, 4),
                 format_double(ph.mean_replication_ability, 3),
                 format_double(ph.mean_ipc, 3)});
    }
    p.print();
  }
  return 0;
}
