// Diffs two icr-bench-v1 JSON documents (bench/common/bench_json.h).
//
//   bench_compare BASE.json CURRENT.json [--threshold=F] [--warn-only]
//
// Prints a per-metric table and exits 1 when any directional metric moved
// the wrong way past its noise threshold (or a baseline metric vanished).
// --threshold overrides the default noise bound for metrics that carry
// none of their own; --warn-only reports regressions but always exits 0,
// which is how CI gates stay informative before baselines stabilize.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/common/bench_json.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_compare BASE.json CURRENT.json"
               " [--threshold=F] [--warn-only]\n");
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string base_path;
  std::string current_path;
  icr::bench::CompareOptions options;
  bool warn_only = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threshold=", 12) == 0) {
      char* end = nullptr;
      options.default_threshold = std::strtod(arg + 12, &end);
      if (end == arg + 12 || *end != '\0' || options.default_threshold < 0) {
        std::fprintf(stderr, "bench_compare: bad --threshold '%s'\n",
                     arg + 12);
        return 2;
      }
    } else if (std::strcmp(arg, "--warn-only") == 0) {
      warn_only = true;
    } else if (std::strncmp(arg, "--", 2) == 0) {
      std::fprintf(stderr, "bench_compare: unknown flag '%s'\n", arg);
      return usage();
    } else if (base_path.empty()) {
      base_path = arg;
    } else if (current_path.empty()) {
      current_path = arg;
    } else {
      return usage();
    }
  }
  if (base_path.empty() || current_path.empty()) return usage();

  try {
    const icr::bench::BenchJson base =
        icr::bench::from_json_text(read_file(base_path));
    const icr::bench::BenchJson current =
        icr::bench::from_json_text(read_file(current_path));
    if (base.bench != current.bench) {
      std::fprintf(stderr,
                   "bench_compare: warning: comparing different benches"
                   " ('%s' vs '%s')\n",
                   base.bench.c_str(), current.bench.c_str());
    }
    const icr::bench::CompareResult result =
        icr::bench::compare(base, current, options);
    std::fputs(icr::bench::format_compare(result, base, current).c_str(),
               stdout);
    if (result.regressed()) return warn_only ? 0 : 1;
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "bench_compare: %s\n", error.what());
    return 2;
  }
}
