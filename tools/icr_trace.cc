// icr_trace: record, import, convert, and inspect ICRT trace containers.
//
//   icr_trace record --app=gzip --instructions=50000 --out=t.icrt [--v1]
//   icr_trace import --log=accesses.txt --out=t.icrt
//   icr_trace convert --in=old.icrt --out=new.icrt [--v1]
//   icr_trace info FILE
//   icr_trace validate FILE
//
// docs/TRACES.md documents the formats, the import grammar, and how the
// resulting traces feed icr_sim --trace and run_campaign --trace.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "src/sim/cli.h"
#include "src/trace/qemu_import.h"
#include "src/trace/trace_file.h"
#include "src/trace/trace_v2.h"
#include "src/trace/workloads.h"

namespace {

using icr::sim::cli::parse_flag;
using icr::sim::cli::unknown_flag;

constexpr const char* kProgram = "icr_trace";

void print_usage() {
  std::printf(
      "usage: icr_trace <command> [flags]\n"
      "\n"
      "commands:\n"
      "  record    record a synthetic workload into a trace container\n"
      "            --app=NAME --instructions=N --out=FILE\n"
      "            [--seed=S] [--v1] [--raw] [--chunk-records=N]\n"
      "  import    translate a QEMU-TCG-plugin-style access log\n"
      "            (insn/load/store lines) into an ICRT-v2 container\n"
      "            --log=FILE --out=FILE [--raw] [--chunk-records=N]\n"
      "  convert   rewrite a trace between container versions\n"
      "            --in=FILE --out=FILE [--v1] [--raw] [--chunk-records=N]\n"
      "  info      print header-level provenance of a trace file\n"
      "            info FILE\n"
      "  validate  full integrity walk: checksums, index, fingerprint\n"
      "            validate FILE\n"
      "\n"
      "--v1 writes the legacy flat container (whole-file reader); the\n"
      "default is the chunked, seekable ICRT-v2 container. --raw disables\n"
      "v2 delta compression; --chunk-records sets the v2 chunk size\n"
      "(default %u).\n",
      icr::trace::kV2DefaultChunkRecords);
}

void print_info(const icr::trace::TraceInfo& info) {
  std::printf("trace:       %s\n", info.path.c_str());
  std::printf("format:      ICRT-v%u%s\n", info.version,
              info.version == 1 ? " (legacy flat container)" : "");
  std::printf("records:     %" PRIu64 "\n", info.records);
  std::printf("fingerprint: 0x%016" PRIx64 "\n", info.fingerprint);
  const double per_record =
      info.records == 0 ? 0.0
                        : static_cast<double>(info.file_bytes) /
                              static_cast<double>(info.records);
  std::printf("file bytes:  %" PRIu64 " (%.2f bytes/record)\n",
              info.file_bytes, per_record);
  if (info.version >= 2) {
    std::printf("chunks:      %u x %u records (%u raw, %u delta)\n",
                info.chunk_count, info.chunk_records, info.raw_chunks,
                info.delta_chunks);
  }
}

struct CommonFlags {
  bool v1 = false;
  icr::trace::TraceV2Writer::Options v2;
};

// Returns true when `arg` was one of the flags shared by the writing
// commands (--v1 / --raw / --chunk-records).
bool parse_common_flag(const char* arg, CommonFlags& flags) {
  std::string value;
  if (std::string(arg) == "--v1") {
    flags.v1 = true;
    return true;
  }
  if (std::string(arg) == "--raw") {
    flags.v2.delta = false;
    return true;
  }
  if (parse_flag(arg, "--chunk-records", value)) {
    flags.v2.chunk_records =
        static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    return true;
  }
  return false;
}

void write_trace(icr::trace::TraceSource& source, std::uint64_t count,
                 const std::string& out, const CommonFlags& flags) {
  if (flags.v1) {
    icr::trace::record_trace(source, count, out);
  } else {
    icr::trace::record_trace_v2(source, count, out, flags.v2);
  }
}

int cmd_record(int argc, char** argv) {
  std::string app_name;
  std::string out;
  std::string value;
  std::uint64_t instructions = 0;
  std::uint64_t seed = 0;
  bool seed_given = false;
  CommonFlags flags;
  for (int i = 0; i < argc; ++i) {
    if (parse_flag(argv[i], "--app", value)) {
      app_name = value;
    } else if (parse_flag(argv[i], "--instructions", value)) {
      instructions = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--out", value)) {
      out = value;
    } else if (parse_flag(argv[i], "--seed", value)) {
      seed = std::strtoull(value.c_str(), nullptr, 0);
      seed_given = true;
    } else if (!parse_common_flag(argv[i], flags)) {
      unknown_flag(kProgram, argv[i]);
    }
  }
  if (app_name.empty() || out.empty() || instructions == 0) {
    std::fprintf(stderr,
                 "icr_trace record: --app, --instructions and --out are "
                 "required\n");
    return 2;
  }
  icr::trace::WorkloadProfile profile =
      icr::trace::profile_for(icr::sim::cli::app_by_name(app_name));
  if (seed_given) profile.seed = seed;
  icr::trace::SyntheticWorkload workload(profile);
  write_trace(workload, instructions, out, flags);
  std::printf("recorded %" PRIu64 " instructions of %s into %s\n",
              instructions, app_name.c_str(), out.c_str());
  print_info(icr::trace::probe_trace(out));
  return 0;
}

int cmd_import(int argc, char** argv) {
  std::string log;
  std::string out;
  std::string value;
  CommonFlags flags;
  for (int i = 0; i < argc; ++i) {
    if (parse_flag(argv[i], "--log", value)) {
      log = value;
    } else if (parse_flag(argv[i], "--out", value)) {
      out = value;
    } else if (!parse_common_flag(argv[i], flags)) {
      unknown_flag(kProgram, argv[i]);
    }
  }
  if (log.empty() || out.empty()) {
    std::fprintf(stderr, "icr_trace import: --log and --out are required\n");
    return 2;
  }
  if (flags.v1) {
    std::fprintf(stderr,
                 "icr_trace import: imports always write ICRT-v2; use "
                 "'icr_trace convert --v1' to downgrade afterwards\n");
    return 2;
  }
  const icr::trace::ImportStats stats =
      icr::trace::import_qemu_log(log, out, flags.v2);
  std::printf("imported %s: %" PRIu64 " lines -> %" PRIu64
              " records (%" PRIu64 " loads, %" PRIu64 " stores, %" PRIu64
              " branches, %" PRIu64 " lines skipped)\n",
              log.c_str(), stats.lines, stats.records, stats.loads,
              stats.stores, stats.branches, stats.skipped);
  print_info(icr::trace::probe_trace(out));
  return 0;
}

int cmd_convert(int argc, char** argv) {
  std::string in;
  std::string out;
  std::string value;
  CommonFlags flags;
  for (int i = 0; i < argc; ++i) {
    if (parse_flag(argv[i], "--in", value)) {
      in = value;
    } else if (parse_flag(argv[i], "--out", value)) {
      out = value;
    } else if (!parse_common_flag(argv[i], flags)) {
      unknown_flag(kProgram, argv[i]);
    }
  }
  if (in.empty() || out.empty()) {
    std::fprintf(stderr, "icr_trace convert: --in and --out are required\n");
    return 2;
  }
  icr::trace::OpenedTrace opened = icr::trace::open_trace(in);
  write_trace(*opened.source, opened.info.records, out, flags);
  const icr::trace::TraceInfo converted = icr::trace::probe_trace(out);
  if (converted.fingerprint != opened.info.fingerprint) {
    // Both containers hash the same canonical record images, so any
    // difference means the conversion lost data.
    std::fprintf(stderr,
                 "icr_trace convert: fingerprint changed during conversion "
                 "(0x%016" PRIx64 " -> 0x%016" PRIx64 ") — output is wrong\n",
                 opened.info.fingerprint, converted.fingerprint);
    return 1;
  }
  std::printf("converted %s (v%u) -> %s (v%u), fingerprint preserved\n",
              in.c_str(), opened.info.version, out.c_str(),
              converted.version);
  print_info(converted);
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc != 1) {
    std::fprintf(stderr, "icr_trace info: expected exactly one FILE\n");
    return 2;
  }
  print_info(icr::trace::probe_trace(argv[0]));
  return 0;
}

int cmd_validate(int argc, char** argv) {
  if (argc != 1) {
    std::fprintf(stderr, "icr_trace validate: expected exactly one FILE\n");
    return 2;
  }
  const icr::trace::TraceInfo info = icr::trace::validate_trace(argv[0]);
  print_info(info);
  std::printf("validate:    OK (every chunk decoded, checksums and "
              "fingerprint verified)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::string(argv[1]) == "--help" ||
      std::string(argv[1]) == "help") {
    print_usage();
    return argc < 2 ? 2 : 0;
  }
  const std::string command = argv[1];
  try {
    if (command == "record") return cmd_record(argc - 2, argv + 2);
    if (command == "import") return cmd_import(argc - 2, argv + 2);
    if (command == "convert") return cmd_convert(argc - 2, argv + 2);
    if (command == "info") return cmd_info(argc - 2, argv + 2);
    if (command == "validate") return cmd_validate(argc - 2, argv + 2);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "icr_trace %s: %s\n", command.c_str(), error.what());
    return 1;
  }
  std::fprintf(stderr, "icr_trace: unknown command '%s'\n", command.c_str());
  print_usage();
  return 2;
}
