// icr_report — renders observability exports as human-readable tables.
//
// Consumes the files written by icr_sim / run_campaign:
//
//   icr_report intervals.csv            per-cell summary + phase tables
//   icr_report --heatmap occupancy.csv  ASCII replica-occupancy heatmap
//
// The interval CSV schema is documented in src/obs/obs_io.h and
// docs/OBSERVABILITY.md; this tool only relies on named header columns, so
// it keeps working when new counters are added to the registry.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/http_server.h"
#include "src/obs/obs_io.h"
#include "src/obs/prof_io.h"
#include "src/sim/farm.h"
#include "src/sim/farm_telemetry.h"
#include "src/util/table.h"

using namespace icr;

namespace {

struct Csv {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
};

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (start <= line.size()) {
    std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) comma = line.size();
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

Csv read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "icr_report: cannot open '%s'\n", path.c_str());
    std::exit(2);
  }
  Csv csv;
  std::string line;
  if (std::getline(in, line)) csv.columns = split_line(line);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    csv.rows.push_back(split_line(line));
  }
  return csv;
}

std::size_t column_index(const Csv& csv, const char* name) {
  for (std::size_t i = 0; i < csv.columns.size(); ++i) {
    if (csv.columns[i] == name) return i;
  }
  return static_cast<std::size_t>(-1);
}

std::size_t require_column(const Csv& csv, const char* name,
                           const char* path) {
  const std::size_t idx = column_index(csv, name);
  if (idx == static_cast<std::size_t>(-1)) {
    std::fprintf(stderr, "icr_report: '%s' has no '%s' column\n", path, name);
    std::exit(2);
  }
  return idx;
}

double field_double(const std::vector<std::string>& row, std::size_t idx) {
  if (idx == static_cast<std::size_t>(-1) || idx >= row.size()) return 0.0;
  return std::atof(row[idx].c_str());
}

// Cell key in first-appearance order: "variant,app,trial" verbatim.
std::vector<std::pair<std::string, std::vector<std::size_t>>> group_cells(
    const Csv& csv) {
  std::vector<std::pair<std::string, std::vector<std::size_t>>> groups;
  std::map<std::string, std::size_t> index;
  for (std::size_t r = 0; r < csv.rows.size(); ++r) {
    const auto& row = csv.rows[r];
    if (row.size() < 3) continue;
    const std::string key = row[0] + " / " + row[1] + " / trial " + row[2];
    auto it = index.find(key);
    if (it == index.end()) {
      it = index.emplace(key, groups.size()).first;
      groups.emplace_back(key, std::vector<std::size_t>{});
    }
    groups[it->second].second.push_back(r);
  }
  return groups;
}

int report_intervals(const std::string& path) {
  const Csv csv = read_csv(path);
  struct Cols {
    std::size_t instr_end, d_instructions, d_cycles, ipc, miss_rate,
        replication_ability, d_loads, d_stores, d_opportunities;
  };
  const Cols c = {
      require_column(csv, "instr_end", path.c_str()),
      require_column(csv, "d_instructions", path.c_str()),
      require_column(csv, "d_cycles", path.c_str()),
      require_column(csv, "ipc", path.c_str()),
      require_column(csv, "dl1_miss_rate", path.c_str()),
      require_column(csv, "replication_ability", path.c_str()),
      column_index(csv, "d_dl1.loads"),
      column_index(csv, "d_dl1.stores"),
      column_index(csv, "d_dl1.replication.opportunities"),
  };

  const auto groups = group_cells(csv);
  if (groups.empty()) {
    std::printf("no interval rows in %s\n", path.c_str());
    return 0;
  }

  for (const auto& [key, row_indices] : groups) {
    std::vector<obs::IntervalPoint> pts;
    pts.reserve(row_indices.size());
    for (const std::size_t r : row_indices) {
      const auto& row = csv.rows[r];
      obs::IntervalPoint p;
      p.instr_end = field_double(row, c.instr_end);
      p.d_instructions = field_double(row, c.d_instructions);
      p.d_cycles = field_double(row, c.d_cycles);
      p.ipc = field_double(row, c.ipc);
      p.miss_rate = field_double(row, c.miss_rate);
      p.miss_weight =
          field_double(row, c.d_loads) + field_double(row, c.d_stores);
      p.replication_ability = field_double(row, c.replication_ability);
      p.replication_weight = field_double(row, c.d_opportunities);
      pts.push_back(p);
    }

    const obs::IntervalSummary s = obs::summarize(pts);
    TextTable t(key + " — " + std::to_string(s.intervals) + " intervals",
                {"metric", "mean", "peak", "final"});
    t.add_row({"dL1 miss rate", format_double(s.mean_miss_rate, 4),
               format_double(s.peak_miss_rate, 4),
               format_double(s.final_miss_rate, 4)});
    t.add_row({"replication ability",
               format_double(s.mean_replication_ability, 3),
               format_double(s.peak_replication_ability, 3),
               format_double(s.final_replication_ability, 3)});
    t.add_row({"IPC", format_double(s.mean_ipc, 3), "-", "-"});
    t.print();

    const auto phases = obs::segment_phases(pts);
    TextTable p(key + " — phases (miss-rate segmentation)",
                {"phase", "intervals", "instr span", "miss rate",
                 "repl ability", "IPC"});
    for (std::size_t i = 0; i < phases.size(); ++i) {
      const obs::Phase& ph = phases[i];
      const double span_begin =
          pts[ph.first_interval].instr_end - pts[ph.first_interval].d_instructions;
      const double span_end = pts[ph.last_interval].instr_end;
      char span[48];
      std::snprintf(span, sizeof span, "%.0f..%.0f", span_begin, span_end);
      p.add_row({std::to_string(i),
                 std::to_string(ph.first_interval) + ".." +
                     std::to_string(ph.last_interval),
                 span, format_double(ph.mean_miss_rate, 4),
                 format_double(ph.mean_replication_ability, 3),
                 format_double(ph.mean_ipc, 3)});
    }
    p.print();
  }
  return 0;
}

int report_heatmap(const std::string& path) {
  const Csv csv = read_csv(path);
  const std::size_t instr_idx = require_column(csv, "instr_end", path.c_str());
  const std::size_t first_set = require_column(csv, "set_0", path.c_str());
  const std::size_t sets = csv.columns.size() - first_set;

  static const char kShades[] = " .:-=+*#%@";
  const auto groups = group_cells(csv);
  if (groups.empty()) {
    std::printf("no occupancy rows in %s\n", path.c_str());
    return 0;
  }

  for (const auto& [key, row_indices] : groups) {
    double peak = 0.0;
    for (const std::size_t r : row_indices) {
      for (std::size_t s = 0; s < sets; ++s) {
        peak = std::max(peak, field_double(csv.rows[r], first_set + s));
      }
    }
    std::printf("\n%s — replica occupancy, %zu sets x %zu intervals, peak "
                "%.0f replicas/set (scale '%s')\n",
                key.c_str(), sets, row_indices.size(), peak, kShades);
    for (const std::size_t r : row_indices) {
      std::string line;
      line.reserve(sets);
      for (std::size_t s = 0; s < sets; ++s) {
        const double v = field_double(csv.rows[r], first_set + s);
        std::size_t shade = 0;
        if (peak > 0.0) {
          shade = static_cast<std::size_t>(v / peak * 9.0 + 0.5);
          if (shade > 9) shade = 9;
        }
        line += kShades[shade];
      }
      std::printf("%12.0f |%s|\n", field_double(csv.rows[r], instr_idx),
                  line.c_str());
    }
  }
  return 0;
}

int report_rel(const std::string& path) {
  const Csv csv = read_csv(path);
  const std::size_t exposure_idx =
      require_column(csv, "total_exposure", path.c_str());
  static const char* kStates[] = {"parity_clean",     "parity_dirty",
                                  "replicated_clean", "replicated_dirty",
                                  "ecc_clean",        "ecc_dirty"};
  struct Outcome {
    const char* label;
    const char* coef;
    const char* vf;
    const char* expected;
  };
  static const Outcome kOutcomes[] = {
      {"corrected", "coef_corrected", "vf_corrected", "expected_corrected"},
      {"replica recovered", "coef_replica_recovered", "vf_replica_recovered",
       "expected_replica_recovered"},
      {"detected uncorrectable", "coef_detected_uncorrectable",
       "vf_detected_uncorrectable", "expected_detected_uncorrectable"},
      {"silent", "coef_silent", nullptr, "expected_silent"},
  };

  const auto groups = group_cells(csv);
  if (groups.empty()) {
    std::printf("no reliability rows in %s\n", path.c_str());
    return 0;
  }
  const std::size_t prob_idx = column_index(csv, "probability");
  const std::size_t supported_idx = column_index(csv, "supported");

  for (const auto& [key, row_indices] : groups) {
    for (const std::size_t r : row_indices) {
      const auto& row = csv.rows[r];
      const double total = field_double(row, exposure_idx);
      const double p = field_double(row, prob_idx);
      std::string title = key + " — vulnerability breakdown";
      if (supported_idx != static_cast<std::size_t>(-1) &&
          field_double(row, supported_idx) == 0.0) {
        title += " [fault model unsupported]";
      }
      TextTable t(std::move(title),
                  {"exposure by state", "strikes/p", "share"});
      for (const char* state : kStates) {
        const double v =
            field_double(row, column_index(csv, (std::string("exp_") + state).c_str()));
        if (v == 0.0) continue;
        t.add_row({state, format_double(v, 4),
                   format_double(total > 0.0 ? v / total : 0.0, 4)});
      }
      t.add_row({"total", format_double(total, 4), "1.0"});
      t.print();

      TextTable o(key + " — first-order outcomes",
                  {"outcome", "coefficient", "vulnerability factor",
                   p > 0.0 ? "expected @ p" : "-"});
      for (const Outcome& out : kOutcomes) {
        const double coef = field_double(row, column_index(csv, out.coef));
        const double vf =
            out.vf != nullptr
                ? field_double(row, column_index(csv, out.vf))
                : 0.0;
        const double expected =
            field_double(row, column_index(csv, out.expected));
        o.add_row({out.label, format_double(coef, 4),
                   out.vf != nullptr ? format_double(vf, 4) : "-",
                   p > 0.0 ? format_double(expected, 4) : "-"});
      }
      const double vf_unc =
          field_double(row, column_index(csv, "vf_uncorrected"));
      o.add_row({"uncorrected (headline)", "-", format_double(vf_unc, 4),
                 "-"});
      o.print();
    }
  }
  return 0;
}

// `--sweep results.csv` — geometry sweep tables from a campaign results
// CSV exported with geometry provenance columns (run_campaign --dl1-sizes/
// --dl1-assocs/--ways-disabled, docs/GEOMETRY.md). One table per metric:
// rows are (size, assoc, disabled) geometry points, columns the base
// schemes, each cell the metric's mean over apps and trials.
int report_sweep(const std::string& path, const std::string& metric) {
  const Csv csv = read_csv(path);
  const std::size_t size_idx = require_column(csv, "dl1_size", path.c_str());
  const std::size_t assoc_idx = require_column(csv, "dl1_assoc", path.c_str());
  const std::size_t disabled_idx =
      require_column(csv, "ways_disabled", path.c_str());
  std::vector<std::string> metrics;
  if (!metric.empty()) {
    require_column(csv, metric.c_str(), path.c_str());
    metrics.push_back(metric);
  } else {
    for (const char* m : {"dl1_miss_rate", "replication_ability",
                          "unrecoverable_loads"}) {
      if (column_index(csv, m) != static_cast<std::size_t>(-1)) {
        metrics.push_back(m);
      }
    }
  }
  if (csv.rows.empty()) {
    std::printf("no result rows in %s\n", path.c_str());
    return 0;
  }

  // Base scheme = variant label with its "@size/assoc" suffix stripped.
  const auto base_of = [](const std::string& variant) {
    const std::size_t at = variant.rfind('@');
    return at == std::string::npos ? variant : variant.substr(0, at);
  };
  const auto geometry_of = [&](const std::vector<std::string>& row) {
    const std::uint64_t size =
        std::strtoull(row[size_idx].c_str(), nullptr, 10);
    const std::string size_text = size != 0 && size % 1024 == 0
                                      ? std::to_string(size / 1024) + "K"
                                      : std::to_string(size);
    return size_text + " / " + row[assoc_idx] + "-way / d" +
           row[disabled_idx];
  };

  // First-appearance order for both axes (matches grid order: geometry
  // varies within a base scheme, so geometries appear in expansion order).
  std::vector<std::string> schemes;
  std::vector<std::string> geometries;
  const auto ordinal = [](std::vector<std::string>& order,
                          const std::string& key) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == key) return i;
    }
    order.push_back(key);
    return order.size() - 1;
  };
  for (const auto& row : csv.rows) {
    if (row.size() <= disabled_idx) continue;
    ordinal(schemes, base_of(row[0]));
    ordinal(geometries, geometry_of(row));
  }

  for (const std::string& m : metrics) {
    const std::size_t m_idx = require_column(csv, m.c_str(), path.c_str());
    std::vector<std::vector<double>> sum(
        geometries.size(), std::vector<double>(schemes.size(), 0.0));
    std::vector<std::vector<std::uint64_t>> n(
        geometries.size(), std::vector<std::uint64_t>(schemes.size(), 0));
    for (const auto& row : csv.rows) {
      if (row.size() <= m_idx || row.size() <= disabled_idx) continue;
      const std::size_t g = ordinal(geometries, geometry_of(row));
      const std::size_t s = ordinal(schemes, base_of(row[0]));
      sum[g][s] += field_double(row, m_idx);
      ++n[g][s];
    }
    std::vector<std::string> header = {"size / assoc / disabled"};
    header.insert(header.end(), schemes.begin(), schemes.end());
    TextTable t(m + " — mean over apps x trials", header);
    for (std::size_t g = 0; g < geometries.size(); ++g) {
      std::vector<std::string> cells = {geometries[g]};
      for (std::size_t s = 0; s < schemes.size(); ++s) {
        cells.push_back(n[g][s] != 0
                            ? format_double(sum[g][s] / n[g][s], 4)
                            : "-");
      }
      t.add_row(std::move(cells));
    }
    t.print();
  }
  return 0;
}

int report_prof(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "icr_report: cannot open '%s'\n", path.c_str());
    return 2;
  }
  const std::string text{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};
  try {
    const obs::prof::ParsedTrace parsed = obs::prof::parse_chrome_trace(text);
    std::fputs(obs::prof::format_self_time_table(parsed.profile).c_str(),
               stdout);
    std::printf("%zu trace span(s) retained — open %s in Perfetto or "
                "chrome://tracing for the timeline\n",
                parsed.span_events, path.c_str());
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "icr_report: %s: %s\n", path.c_str(), error.what());
    return 2;
  }
}

// `--farm http://host:port` — render the same fleet view from a live
// status server (run_campaign --serve, docs/SERVING.md) instead of a local
// spool. /status carries the census; the unit-latency histogram is rebuilt
// from the publish events replayed by /events?once=1.
int report_farm_url(const std::string& url) {
  if (url.rfind("https://", 0) == 0) {
    std::fprintf(stderr,
                 "icr_report: %s: the embedded status server speaks plain "
                 "HTTP only — use http://\n",
                 url.c_str());
    return 2;
  }
  std::string base = url;
  while (!base.empty() && base.back() == '/') base.pop_back();
  obs::http::FetchResult status_reply;
  obs::http::FetchResult events_reply;
  try {
    status_reply = obs::http::http_get(base + "/status");
    events_reply = obs::http::http_get(base + "/events?once=1");
  } catch (const std::exception& error) {
    std::fprintf(stderr,
                 "icr_report: cannot reach %s: %s — is run_campaign "
                 "running with --serve?\n",
                 base.c_str(), error.what());
    return 2;
  }
  if (status_reply.status != 200) {
    std::fprintf(stderr, "icr_report: %s/status returned HTTP %d\n",
                 base.c_str(), status_reply.status);
    return 2;
  }
  try {
    sim::farm::FarmStatus status =
        sim::farm::farm_status_from_ndjson(status_reply.body);
    // SSE frames are "id: N\ndata: <ndjson>\n\n"; non-publish lines and
    // the final `event: drained` frame fall through the data filter.
    if (events_reply.status == 200) {
      std::istringstream lines(events_reply.body);
      std::string line;
      while (std::getline(lines, line)) {
        if (line.rfind("data: ", 0) != 0) continue;
        try {
          const sim::farm::FarmEvent event =
              sim::farm::FarmEvent::parse(line.substr(6));
          if (event.type == sim::farm::FarmEventType::kPublish) {
            status.unit_latency_ms.record(static_cast<std::uint64_t>(
                std::llround(std::max(0.0, event.duration_seconds) *
                             1000.0)));
          }
        } catch (const std::exception&) {
          // Tolerate frames this build doesn't understand (e.g. a newer
          // event type): the census above still renders.
        }
      }
    }
    std::printf("farm status — %s (schema %d)\n", base.c_str(),
                status.schema);
    std::fputs(sim::farm::render_farm_status(status).c_str(), stdout);
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "icr_report: %s: %s\n", base.c_str(), error.what());
    return 2;
  }
}

int report_farm(const std::string& spool) {
  if (spool.rfind("http://", 0) == 0 || spool.rfind("https://", 0) == 0) {
    return report_farm_url(spool);
  }
  try {
    const sim::farm::Manifest manifest = sim::farm::load_manifest(spool);
    const sim::farm::FarmStatus status =
        sim::farm::collect_farm_status(spool, manifest);
    std::printf("farm status — spool %s\n", spool.c_str());
    std::fputs(sim::farm::render_farm_status(status).c_str(), stdout);
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "icr_report: %s: %s\n", spool.c_str(), error.what());
    return 2;
  }
}

void usage() {
  std::puts(
      "icr_report — render observability CSVs as text tables\n"
      "  icr_report [--intervals] FILE   per-cell summary + phase tables\n"
      "  icr_report --heatmap FILE       ASCII replica-occupancy heatmap\n"
      "  icr_report --rel FILE           per-cell vulnerability breakdown\n"
      "                                  (the rel summary CSV of run_campaign\n"
      "                                  --rel-csv / icr_sim --rel-out)\n"
      "  icr_report --sweep FILE         geometry sweep tables from a\n"
      "                                  campaign results CSV with geometry\n"
      "                                  columns (docs/GEOMETRY.md); narrow\n"
      "                                  with --metric=NAME\n"
      "  icr_report --prof FILE          host-profiler self-time table from\n"
      "                                  a --prof-out Chrome trace JSON\n"
      "  icr_report --farm SPOOL         fleet status from a campaign-farm\n"
      "                                  spool: census, worker heartbeats,\n"
      "                                  unit latency histogram, ETA\n"
      "  icr_report --farm http://H:P    same view from a live status\n"
      "                                  server (run_campaign --serve,\n"
      "                                  docs/SERVING.md)\n");
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kIntervals, kHeatmap, kRel, kProf, kFarm, kSweep };
  Mode mode = Mode::kIntervals;
  std::string path;
  std::string metric;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--heatmap") == 0) {
      mode = Mode::kHeatmap;
    } else if (std::strcmp(argv[i], "--intervals") == 0) {
      mode = Mode::kIntervals;
    } else if (std::strcmp(argv[i], "--rel") == 0) {
      mode = Mode::kRel;
    } else if (std::strcmp(argv[i], "--prof") == 0) {
      mode = Mode::kProf;
    } else if (std::strcmp(argv[i], "--farm") == 0) {
      mode = Mode::kFarm;
    } else if (std::strcmp(argv[i], "--sweep") == 0) {
      mode = Mode::kSweep;
    } else if (std::strncmp(argv[i], "--metric=", 9) == 0) {
      metric = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      usage();
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n\n", argv[i]);
      usage();
      return 2;
    } else {
      path = argv[i];
    }
  }
  if (path.empty()) {
    usage();
    return 2;
  }
  switch (mode) {
    case Mode::kHeatmap: return report_heatmap(path);
    case Mode::kRel: return report_rel(path);
    case Mode::kProf: return report_prof(path);
    case Mode::kFarm: return report_farm(path);
    case Mode::kSweep: return report_sweep(path, metric);
    case Mode::kIntervals: break;
  }
  return report_intervals(path);
}
