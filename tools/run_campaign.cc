// run_campaign — campaign-scale driver for the ICR simulator.
//
// Expands a (schemes x apps x trials) grid into independent cells and runs
// them with deterministic per-cell seeding, in one of three modes:
//
//   * In-process (default): a thread-pool campaign, summary table, and
//     optional CSV/JSON export. Per-cell metrics are bit-identical for any
//     --threads value.
//   * Farm coordinator (--farm=DIR): shards the grid into work units,
//     writes a spool manifest, spawns --workers=N worker processes, and
//     streams the completed units into the same CSV/JSON exporters. The
//     export is bit-identical to an in-process run with --no-timing, at
//     any worker count, including after kills and --resume (src/sim/farm.h
//     and docs/CAMPAIGN.md).
//   * Farm worker (--worker --spool=DIR): claims and runs work units from
//     an existing spool. Start any number, on any hosts sharing the spool.
//
//   run_campaign                                  # all 10 schemes x 8 apps
//   run_campaign --schemes=BaseP,BaseECC --apps=vortex,mcf --trials=5
//   run_campaign --threads=1 --json=a.json       # a.json and b.json agree
//   run_campaign --threads=8 --json=b.json       # on every per-cell metric
//   run_campaign --farm=spool --workers=8 --trials=16 --json=farm.json
//   run_campaign --farm=spool --resume --workers=8 --json=farm.json
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/farm_progress.h"
#include "src/obs/prof.h"
#include "src/obs/prof_io.h"
#include "src/sim/campaign.h"
#include "src/sim/cli.h"
#include "src/sim/farm.h"
#include "src/sim/farm_telemetry.h"
#include "src/sim/results_io.h"
#include "src/sim/serve.h"
#include "src/util/fs.h"
#include "src/util/table.h"

using namespace icr;
using sim::cli::app_by_name;
using sim::cli::fault_by_name;
using sim::cli::parse_flag;
using sim::cli::scheme_by_name;
using sim::cli::split_csv;

namespace {

struct Options {
  std::string schemes;  // comma list; empty = all ten paper schemes
  std::string apps;     // comma list; empty = all eight applications
  std::string trace_path;  // recorded trace replacing the app axis
  std::uint64_t shard_instructions = 0;  // interval width; 0 = one cell
  std::uint32_t trials = 1;
  unsigned threads = 0;  // 0 = ICR_SIM_THREADS or hardware concurrency
  std::uint64_t seed = 0x1C9CA37ULL;
  std::uint64_t instructions = 0;
  std::uint64_t window = 0;
  std::uint64_t warmup = 0;
  std::uint32_t sample_windows = 0;
  std::uint64_t sample_width = 0;
  std::string sample_mode = "systematic";
  std::uint64_t sample_seed = 0x5A3D11ULL;
  std::string fault_model = "random";
  double fault_prob = 0.0;
  // Degraded-geometry sweep axes (docs/GEOMETRY.md).
  std::string dl1_sizes;      // comma list of dL1 sizes (K/M suffixes ok)
  std::string dl1_assocs;     // comma list of associativities
  std::string ways_disabled;  // comma list of disabled-way counts
  std::string way_pattern = "fixed";  // fixed|random per-set draw
  std::uint64_t way_seed = 0x0DDB17ULL;
  std::string csv_path;
  std::string json_path;
  bool no_timing = false;
  bool quiet = false;
  bool progress = false;
  // Farm modes (docs/CAMPAIGN.md).
  std::string farm_dir;   // coordinator: spool directory
  unsigned workers = 0;   // coordinator: processes to spawn (0 = none)
  bool workers_given = false;
  std::uint64_t unit_cells = 4;  // coordinator: cells per work unit
  bool resume = false;
  bool worker = false;    // worker mode
  std::string spool;      // worker: spool directory
  std::uint32_t max_units = 0;  // worker: stop after N units (0 = all)
  // Fleet telemetry (docs/CAMPAIGN.md "Fleet telemetry").
  std::string worker_id;          // worker: heartbeat/event identity
  double heartbeat_seconds = 5.0; // between-cell heartbeat cadence; 0 = off
  std::string farm_trace_out;     // coordinator: merged fleet Chrome trace
  std::string farm_status_dir;    // status mode: spool to inspect
  double watch_seconds = 0.0;     // status mode: refresh period; 0 = once
  std::string status_json;        // status mode: NDJSON out ("-" = stdout)
  double stale_after = 15.0;      // straggler threshold (seconds)
  double dead_after = 60.0;       // dead threshold (seconds)
  std::string serve_spec;         // HTTP status server: PORT or ADDR:PORT
  // Per-cell telemetry / reliability / profiling (in-process mode only).
  std::uint64_t stats_interval = 0;
  std::string intervals_out;
  std::string heatmap_out;
  std::string trace_out;
  std::string trace_filter = "all";
  bool rel = false;
  std::string rel_csv;
  std::string rel_json;
  std::string rel_intervals;
  bool prof = false;
  std::string prof_out;
};

void usage() {
  std::puts(
      "run_campaign — parallel (schemes x apps x trials) experiment grids\n"
      "  --schemes=A,B,..      scheme names (default: all ten paper schemes)\n"
      "  --apps=a,b,..         applications (default: all eight)\n"
      "  --trace=FILE          replay a recorded ICRT trace instead of the\n"
      "                        synthetic app axis; interval shards become\n"
      "                        the cells (docs/TRACES.md)\n"
      "  --shard-instructions=N  instructions per trace interval cell\n"
      "                        (default: one cell covering the whole "
      "budget)\n"
      "  --trials=N            repetitions per (scheme, app) cell "
      "(default 1)\n"
      "  --threads=N           worker threads (default: ICR_SIM_THREADS or "
      "hardware)\n"
      "  --seed=S              campaign base seed; per-cell seeds derive "
      "from it\n"
      "  --instructions=N      instructions per cell (default 1M)\n"
      "  --window=N            dead-block decay window applied to every "
      "scheme\n"
      "  --fault-model=M       random|adjacent|column|direct\n"
      "  --fault-prob=P        per-cycle injection probability (default 0)\n"
      "  --dl1-sizes=A,B,..    geometry sweep: dL1 sizes (e.g. 8K,16K,32K);\n"
      "                        crosses every scheme with every geometry cell\n"
      "                        and adds provenance columns (docs/GEOMETRY.md)\n"
      "  --dl1-assocs=A,B,..   geometry sweep: dL1 associativities\n"
      "  --ways-disabled=A,B,. geometry sweep: disabled ways per set (k of N)\n"
      "  --way-pattern=P       fixed|random — which ways each set disables\n"
      "  --way-seed=S          per-set draw seed for --way-pattern=random\n"
      "  --warmup=N            functionally warm caches/predictor for N\n"
      "                        instructions before measuring (docs/SAMPLING.md)\n"
      "  --sample-windows=K    measure K interval-sampling windows instead\n"
      "                        of the whole budget; metrics become weighted\n"
      "                        whole-run estimates with provenance columns\n"
      "  --sample-width=N      instructions per window (default: budget/10K)\n"
      "  --sample-mode=M       systematic|random window placement\n"
      "  --sample-seed=S       placement stream for --sample-mode=random\n"
      "  --csv=FILE            write per-cell results as CSV\n"
      "  --json=FILE           write campaign metadata + cells as JSON\n"
      "  --no-timing           omit threads/wall-time from the JSON so\n"
      "                        identical experiments export identical bytes\n"
      "  --quiet               skip the summary table\n"
      "  --progress            live completed/total + cells/sec + ETA on "
      "stderr\n"
      "\n"
      "Campaign farm (multi-process; see docs/CAMPAIGN.md):\n"
      "  --farm=DIR            coordinate a farm over spool directory DIR:\n"
      "                        shard the grid, spawn workers, aggregate\n"
      "  --workers=N           worker processes to spawn (default: the\n"
      "                        --threads resolution; 0 = only init/aggregate)\n"
      "  --unit-cells=N        cells per work unit (default 4)\n"
      "  --resume              reuse an existing spool: clear stale claims,\n"
      "                        run only what is missing (exports are byte-\n"
      "                        identical to an uninterrupted run)\n"
      "  --worker --spool=DIR  claim and run work units from DIR (start any\n"
      "                        number, on any hosts sharing the spool)\n"
      "  --max-units=N         worker: stop after N units (0 = run to dry)\n"
      "\n"
      "Fleet telemetry (docs/CAMPAIGN.md \"Fleet telemetry\"):\n"
      "  --heartbeat=S         worker heartbeat cadence in seconds (default\n"
      "                        5; 0 disables heartbeats and event logs)\n"
      "  --worker-id=ID        worker identity in hb/ and events/ files\n"
      "                        (default pid<pid>; coordinator assigns wN)\n"
      "  --farm-trace-out=FILE coordinator: profile every worker (--prof)\n"
      "                        and write one merged fleet Chrome trace\n"
      "  --farm-status=DIR     render fleet state from spool files alone:\n"
      "                        census, per-worker heartbeats, stragglers/\n"
      "                        dead workers, unit latency histogram, ETA\n"
      "  --watch[=S]           farm-status: refresh every S seconds\n"
      "                        (default 2) until the fleet is drained\n"
      "  --status-json=FILE    farm-status: write NDJSON ('-' = stdout)\n"
      "  --stale-after=S       heartbeat age that flags a straggler "
      "(default 15)\n"
      "  --dead-after=S        heartbeat age that flags a dead worker\n"
      "                        (default 60)\n"
      "  --serve=[ADDR:]PORT   embedded HTTP status server (docs/SERVING.md):\n"
      "                        GET / /healthz /status /metrics /events. Works\n"
      "                        in --farm, in-process, and --farm-status modes\n"
      "                        (the latter keeps serving until drained).\n"
      "                        Binds 127.0.0.1 unless ADDR is given; port 0\n"
      "                        picks an ephemeral port (printed at start)\n"
      "\n"
      "Per-cell telemetry (in-process mode only):\n"
      "  --stats-interval=N    per-cell telemetry every N instructions\n"
      "                        (implies --intervals-out=intervals.csv)\n"
      "  --intervals-out=FILE  write all cells' interval telemetry CSV\n"
      "  --heatmap-out=FILE    write all cells' replica-occupancy CSV\n"
      "  --trace-out=FILE      write all cells' NDJSON event trace\n"
      "  --trace-filter=LIST   categories: replication,eviction,fault,decay\n"
      "                        or 'all' (default)\n"
      "  --rel                 per-cell analytical reliability tracking\n"
      "                        (implies --rel-csv=rel.csv unless given)\n"
      "  --rel-csv=FILE        write per-cell vulnerability summary CSV\n"
      "  --rel-json=FILE       write per-cell reliability reports as JSON\n"
      "  --rel-intervals=FILE  write lifetime-interval taxonomy CSV\n"
      "  --prof                profile the campaign itself: host-side\n"
      "                        self-time table after the summary\n"
      "  --prof-out=FILE       write the capture as Chrome trace-event JSON\n"
      "                        (cells become spans; implies --prof)\n"
      "\n"
      "Seeding: trials > 1 (or an explicit --seed) derives each cell's\n"
      "workload and injection seeds via SplitMix64 from (seed, scheme,\n"
      "app, trial), so results never depend on thread count, schedule, or\n"
      "which process ran the cell.");
}

// Comma list of unsigned values; K/M suffixes scale by 1024 (so
// --dl1-sizes=8K,16K reads naturally). Bare numbers pass through.
std::vector<std::uint32_t> parse_u32_list(const std::string& csv) {
  std::vector<std::uint32_t> out;
  for (const std::string& item : split_csv(csv)) {
    char* end = nullptr;
    unsigned long long v = std::strtoull(item.c_str(), &end, 10);
    if (end != nullptr && (*end == 'K' || *end == 'k')) v *= 1024ULL;
    if (end != nullptr && (*end == 'M' || *end == 'm')) v *= 1024ULL * 1024ULL;
    out.push_back(static_cast<std::uint32_t>(v));
  }
  return out;
}

double unix_now_microseconds() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Farm worker mode: claim and run units from an existing spool until no
// unit is claimable (or --max-units is reached). With heartbeats enabled
// (the default) the worker publishes spool-native telemetry; with --prof it
// leaves its capture under spool/prof/ on the shared fleet clock.
int run_worker_mode(const Options& opt) {
  if (opt.spool.empty()) {
    std::fprintf(stderr, "--worker requires --spool=DIR\n");
    return 2;
  }
  try {
    const sim::farm::Manifest manifest = sim::farm::load_manifest(opt.spool);
    const sim::CampaignSpec spec = sim::farm::spec_from_manifest(manifest);
    const std::string worker_id =
        opt.worker_id.empty() ? "pid" + std::to_string(::getpid())
                              : opt.worker_id;
    std::unique_ptr<sim::farm::WorkerTelemetry> telemetry;
    if (opt.heartbeat_seconds > 0.0) {
      sim::farm::WorkerTelemetryOptions topt;
      topt.worker_id = worker_id;
      topt.heartbeat_interval_seconds = opt.heartbeat_seconds;
      telemetry =
          std::make_unique<sim::farm::WorkerTelemetry>(opt.spool, topt);
    }
    double epoch_unix_us = 0.0;
    if (opt.prof) {
      obs::prof::begin_capture();
      epoch_unix_us = unix_now_microseconds();
    }
    const auto on_unit_done = [&](const sim::farm::WorkUnit& unit) {
      if (!opt.quiet) {
        std::fprintf(stderr, "worker %d: unit %u done (%llu cell(s))\n",
                     ::getpid(), unit.index,
                     static_cast<unsigned long long>(unit.cells()));
      }
    };
    const sim::farm::WorkerReport report = sim::farm::run_worker_loop(
        opt.spool, spec, opt.max_units, on_unit_done, telemetry.get());
    if (opt.prof) {
      const obs::prof::Profile profile = obs::prof::end_capture();
      util::fs::make_directories(sim::farm::worker_trace_dir(opt.spool));
      util::fs::atomic_write_text_file(
          sim::farm::worker_trace_path(opt.spool, worker_id),
          obs::prof::to_chrome_trace(profile, "worker " + worker_id,
                                     ::getpid(), epoch_unix_us));
    }
    if (!opt.quiet) {
      std::printf("worker %d: ran %u unit(s), %llu cell(s)\n", ::getpid(),
                  report.units_run,
                  static_cast<unsigned long long>(report.cells_run));
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "worker: %s\n", error.what());
    return 1;
  }
  return 0;
}

// Spawns one worker child pointed at the spool; returns -1 on failure.
pid_t spawn_worker(const char* self, const std::string& spool,
                   unsigned index, const Options& opt) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  // Child: re-exec this binary in worker mode. Workers stay quiet; the
  // coordinator owns progress reporting.
  const std::string spool_flag = "--spool=" + spool;
  const std::string id_flag = "--worker-id=w" + std::to_string(index);
  char hb_flag[48];
  std::snprintf(hb_flag, sizeof hb_flag, "--heartbeat=%.3f",
                opt.heartbeat_seconds);
  std::vector<const char*> argv = {self,      "--worker", spool_flag.c_str(),
                                   "--quiet", id_flag.c_str(), hb_flag};
  if (!opt.farm_trace_out.empty()) argv.push_back("--prof");
  argv.push_back(nullptr);
  ::execv(self, const_cast<char**>(argv.data()));
  std::fprintf(stderr, "execv %s: %s\n", self, std::strerror(errno));
  ::_exit(127);
}

// farm-status mode: reconstruct fleet state purely from spool files. With
// --watch, refresh until the fleet is drained (grid complete and every
// worker dead or exited).
int run_farm_status_mode(const Options& opt) {
  try {
    const sim::farm::Manifest manifest =
        sim::farm::load_manifest(opt.farm_status_dir);
    sim::farm::StalenessPolicy staleness;
    staleness.straggler_after_seconds = opt.stale_after;
    staleness.dead_after_seconds = opt.dead_after;
    // With --serve the process stays up (re-rendering only under --watch)
    // until the fleet drains, so remote readers can poll a stable URL.
    std::unique_ptr<sim::farm::SpoolStatusSource> serve_source;
    std::unique_ptr<obs::http::Server> serve_server;
    if (!opt.serve_spec.empty()) {
      sim::farm::ServeOptions serve_options;
      sim::farm::parse_serve_spec(opt.serve_spec, &serve_options);
      serve_source = std::make_unique<sim::farm::SpoolStatusSource>(
          opt.farm_status_dir, manifest, staleness);
      serve_server =
          sim::farm::start_status_server(*serve_source, serve_options);
      std::printf("serving farm status on %s (spool %s)\n",
                  serve_server->url().c_str(), opt.farm_status_dir.c_str());
      std::fflush(stdout);
    }
    bool first = true;
    for (;;) {
      sim::farm::FarmStatusOptions status_options;
      status_options.staleness = staleness;
      const sim::farm::FarmStatus status = sim::farm::collect_farm_status(
          opt.farm_status_dir, manifest, status_options);
      const bool refresh = first || opt.watch_seconds > 0.0;
      if (!opt.quiet && refresh) {
        if (!first) std::printf("\n");
        std::printf("farm status — spool %s\n", opt.farm_status_dir.c_str());
        std::fputs(sim::farm::render_farm_status(status).c_str(), stdout);
        std::fflush(stdout);
      }
      if (!opt.status_json.empty() && refresh) {
        const std::string ndjson = sim::farm::farm_status_to_ndjson(status);
        if (opt.status_json == "-") {
          std::fputs(ndjson.c_str(), stdout);
          std::fflush(stdout);
        } else {
          util::fs::atomic_write_text_file(opt.status_json, ndjson);
        }
      }
      first = false;
      if (status.drained()) break;
      if (opt.watch_seconds <= 0.0 && serve_server == nullptr) break;
      const double sleep_seconds =
          opt.watch_seconds > 0.0 ? opt.watch_seconds : 0.5;
      ::usleep(static_cast<useconds_t>(sleep_seconds * 1e6));
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "farm status: %s\n", error.what());
    return 1;
  }
  return 0;
}

// Farm coordinator: init or resume the spool, spawn workers, report
// farm-level progress, and stream-aggregate the completed units.
int run_coordinator_mode(const Options& opt, const sim::CampaignSpec& spec,
                         const char* self) {
  using sim::farm::Manifest;
  sim::farm::Manifest manifest = sim::farm::manifest_for(spec, opt.unit_cells);
  const std::string& spool = opt.farm_dir;
  try {
    if (opt.resume) {
      const Manifest existing = sim::farm::load_manifest(spool);
      if (existing.config_hash != manifest.config_hash) {
        std::fprintf(stderr,
                     "--resume: spool %s holds a different experiment "
                     "(config hash %016llx vs %016llx); aborting\n",
                     spool.c_str(),
                     static_cast<unsigned long long>(existing.config_hash),
                     static_cast<unsigned long long>(manifest.config_hash));
        return 2;
      }
      manifest = existing;  // keep the original sharding
      std::vector<std::uint32_t> cleared_units;
      const std::size_t cleared = sim::farm::clear_stale_claims(
          spool, manifest.unit_count, &cleared_units);
      if (opt.heartbeat_seconds > 0.0) {
        // The sweep is part of the fleet's history: one stale-clear event
        // per reclaimed unit, then the sweep summary, under the
        // coordinator's own event stream.
        sim::farm::EventLog coordinator_log(spool, "coordinator");
        for (const std::uint32_t unit : cleared_units) {
          coordinator_log.append(sim::farm::FarmEventType::kStaleClear,
                                 static_cast<std::int64_t>(unit));
        }
        coordinator_log.append(sim::farm::FarmEventType::kResumeSweep, -1,
                               cleared);
      }
      if (cleared != 0 && !opt.quiet) {
        std::printf("resume: cleared %zu stale claim(s)\n", cleared);
      }
    } else {
      if (util::fs::exists(sim::farm::manifest_path(spool))) {
        std::fprintf(stderr,
                     "spool %s already has a manifest; use --resume to "
                     "continue it or point --farm at a fresh directory\n",
                     spool.c_str());
        return 2;
      }
      sim::farm::init_spool(spool, manifest);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "farm: %s\n", error.what());
    return 1;
  }

  std::printf("farm: %u scheme(s) x %u app(s) x %u trial(s) = %llu cells in "
              "%u unit(s) of %llu, spool %s, %u worker(s)\n",
              manifest.variant_count, manifest.app_count, manifest.trials,
              static_cast<unsigned long long>(manifest.total_cells),
              manifest.unit_count,
              static_cast<unsigned long long>(manifest.unit_cells),
              spool.c_str(), opt.workers);

  // HTTP status server over the spool: read-only by construction, so the
  // exports stay byte-identical with --serve on (tier-1 guarded). Stops on
  // scope exit, after aggregation.
  std::unique_ptr<sim::farm::SpoolStatusSource> serve_source;
  std::unique_ptr<obs::http::Server> serve_server;
  if (!opt.serve_spec.empty()) {
    try {
      sim::farm::ServeOptions serve_options;
      sim::farm::parse_serve_spec(opt.serve_spec, &serve_options);
      sim::farm::StalenessPolicy staleness;
      staleness.straggler_after_seconds = opt.stale_after;
      staleness.dead_after_seconds = opt.dead_after;
      serve_source = std::make_unique<sim::farm::SpoolStatusSource>(
          spool, manifest, staleness);
      serve_server =
          sim::farm::start_status_server(*serve_source, serve_options);
      std::printf("serving farm status on %s\n", serve_server->url().c_str());
      std::fflush(stdout);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "farm: %s\n", error.what());
      return 2;
    }
  }

  obs::FarmProgressOptions progress_options;
  progress_options.enabled = opt.progress;
  obs::FarmProgressReporter reporter(progress_options, manifest.unit_count,
                                     manifest.total_cells);

  if (opt.workers == 0 && !opt.quiet) {
    // No workers to spawn: this invocation initializes or inspects a spool
    // for externally started workers — print the census instead of exiting
    // silently (the same scan --farm-status renders).
    try {
      const sim::farm::FarmStatus status =
          sim::farm::collect_farm_status(spool, manifest);
      std::fputs(sim::farm::render_farm_status(status).c_str(), stdout);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "farm: %s\n", error.what());
    }
  }

  std::vector<pid_t> children;
  unsigned failed_workers = 0;
  for (unsigned w = 0; w < opt.workers; ++w) {
    const pid_t pid = spawn_worker(self, spool, w, opt);
    if (pid < 0) {
      std::fprintf(stderr, "fork: %s\n", std::strerror(errno));
      ++failed_workers;
    } else {
      children.push_back(pid);
    }
  }

  std::size_t alive = children.size();
  while (alive > 0) {
    int status = 0;
    const pid_t reaped = ::waitpid(-1, &status, WNOHANG);
    if (reaped > 0) {
      --alive;
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ++failed_workers;
      continue;  // reap the rest before sleeping again
    }
    const sim::farm::SpoolStatus status_now =
        sim::farm::scan_spool(spool, manifest);
    reporter.poll(status_now.units_done, status_now.cells_done,
                  static_cast<unsigned>(alive));
    ::usleep(200 * 1000);
  }

  sim::farm::SpoolStatus final_status;
  try {
    final_status = sim::farm::scan_spool(spool, manifest);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "farm: %s\n", error.what());
    return 1;
  }
  reporter.finish(final_status.units_done, final_status.cells_done);
  if (failed_workers != 0) {
    std::fprintf(stderr, "farm: %u worker(s) exited abnormally\n",
                 failed_workers);
  }

  if (!opt.farm_trace_out.empty()) {
    // Merge the per-worker --prof captures with the coordinator-synthesized
    // unit spans into one fleet timeline. Useful even for an incomplete
    // grid, so write it before the completeness gate.
    try {
      util::fs::atomic_write_text_file(
          opt.farm_trace_out, sim::farm::merge_fleet_trace(spool));
      std::printf("wrote fleet trace to %s (open in Perfetto)\n",
                  opt.farm_trace_out.c_str());
    } catch (const std::exception& error) {
      std::fprintf(stderr, "farm trace: %s\n", error.what());
      return 1;
    }
  }

  if (!final_status.complete()) {
    std::printf("farm: %u/%u unit(s) complete (%llu/%llu cells); resume "
                "with: run_campaign --farm=%s --resume [--workers=N]\n",
                final_status.units_done, final_status.unit_count,
                static_cast<unsigned long long>(final_status.cells_done),
                static_cast<unsigned long long>(manifest.total_cells),
                spool.c_str());
    // --workers=0 initializes or inspects a spool for externally started
    // workers; an incomplete grid is its expected outcome, not a failure.
    return opt.workers == 0 ? 0 : 1;
  }

  try {
    sim::farm::aggregate_spool(spool, manifest, opt.csv_path, opt.json_path);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "farm aggregate: %s\n", error.what());
    return 1;
  }
  const double wall = reporter.elapsed_seconds();
  std::printf("farm: %llu cells in %.2fs wall (%.2f cells/sec), config hash "
              "%016llx, base seed %016llx\n",
              static_cast<unsigned long long>(manifest.total_cells), wall,
              wall > 0.0 ? static_cast<double>(manifest.total_cells) / wall
                         : 0.0,
              static_cast<unsigned long long>(manifest.config_hash),
              static_cast<unsigned long long>(manifest.base_seed));
  if (!opt.csv_path.empty()) std::printf("wrote %s\n", opt.csv_path.c_str());
  if (!opt.json_path.empty()) std::printf("wrote %s\n", opt.json_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  bool seed_given = false;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (parse_flag(argv[i], "--schemes", value)) {
      opt.schemes = value;
    } else if (parse_flag(argv[i], "--apps", value)) {
      opt.apps = value;
    } else if (parse_flag(argv[i], "--trace", value)) {
      opt.trace_path = value;
    } else if (parse_flag(argv[i], "--shard-instructions", value)) {
      opt.shard_instructions = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--trials", value)) {
      opt.trials = static_cast<std::uint32_t>(
          std::strtoul(value.c_str(), nullptr, 10));
    } else if (parse_flag(argv[i], "--threads", value)) {
      opt.threads =
          static_cast<unsigned>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (parse_flag(argv[i], "--seed", value)) {
      opt.seed = std::strtoull(value.c_str(), nullptr, 0);
      seed_given = true;
    } else if (parse_flag(argv[i], "--instructions", value)) {
      opt.instructions = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--window", value)) {
      opt.window = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--warmup", value)) {
      opt.warmup = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--sample-windows", value)) {
      opt.sample_windows = static_cast<std::uint32_t>(
          std::strtoul(value.c_str(), nullptr, 10));
    } else if (parse_flag(argv[i], "--sample-width", value)) {
      opt.sample_width = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--sample-mode", value)) {
      opt.sample_mode = value;
    } else if (parse_flag(argv[i], "--sample-seed", value)) {
      opt.sample_seed = std::strtoull(value.c_str(), nullptr, 0);
    } else if (parse_flag(argv[i], "--fault-model", value)) {
      opt.fault_model = value;
    } else if (parse_flag(argv[i], "--fault-prob", value)) {
      opt.fault_prob = std::atof(value.c_str());
    } else if (parse_flag(argv[i], "--dl1-sizes", value)) {
      opt.dl1_sizes = value;
    } else if (parse_flag(argv[i], "--dl1-assocs", value)) {
      opt.dl1_assocs = value;
    } else if (parse_flag(argv[i], "--ways-disabled", value)) {
      opt.ways_disabled = value;
    } else if (parse_flag(argv[i], "--way-pattern", value)) {
      opt.way_pattern = value;
    } else if (parse_flag(argv[i], "--way-seed", value)) {
      opt.way_seed = std::strtoull(value.c_str(), nullptr, 0);
    } else if (parse_flag(argv[i], "--csv", value)) {
      opt.csv_path = value;
    } else if (parse_flag(argv[i], "--json", value)) {
      opt.json_path = value;
    } else if (std::strcmp(argv[i], "--no-timing") == 0) {
      opt.no_timing = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      opt.quiet = true;
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      opt.progress = true;
    } else if (parse_flag(argv[i], "--farm", value)) {
      opt.farm_dir = value;
    } else if (parse_flag(argv[i], "--workers", value)) {
      opt.workers =
          static_cast<unsigned>(std::strtoul(value.c_str(), nullptr, 10));
      opt.workers_given = true;
    } else if (parse_flag(argv[i], "--unit-cells", value)) {
      opt.unit_cells = std::strtoull(value.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      opt.resume = true;
    } else if (std::strcmp(argv[i], "--worker") == 0) {
      opt.worker = true;
    } else if (parse_flag(argv[i], "--spool", value)) {
      opt.spool = value;
    } else if (parse_flag(argv[i], "--max-units", value)) {
      opt.max_units = static_cast<std::uint32_t>(
          std::strtoul(value.c_str(), nullptr, 10));
    } else if (parse_flag(argv[i], "--worker-id", value)) {
      opt.worker_id = value;
    } else if (parse_flag(argv[i], "--heartbeat", value)) {
      opt.heartbeat_seconds = std::atof(value.c_str());
    } else if (parse_flag(argv[i], "--farm-trace-out", value)) {
      opt.farm_trace_out = value;
    } else if (parse_flag(argv[i], "--farm-status", value)) {
      opt.farm_status_dir = value;
    } else if (std::strcmp(argv[i], "--watch") == 0) {
      opt.watch_seconds = 2.0;
    } else if (parse_flag(argv[i], "--watch", value)) {
      opt.watch_seconds = std::atof(value.c_str());
    } else if (parse_flag(argv[i], "--status-json", value)) {
      opt.status_json = value;
    } else if (parse_flag(argv[i], "--stale-after", value)) {
      opt.stale_after = std::atof(value.c_str());
    } else if (parse_flag(argv[i], "--dead-after", value)) {
      opt.dead_after = std::atof(value.c_str());
    } else if (parse_flag(argv[i], "--serve", value)) {
      opt.serve_spec = value;
    } else if (parse_flag(argv[i], "--stats-interval", value)) {
      opt.stats_interval = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_flag(argv[i], "--intervals-out", value)) {
      opt.intervals_out = value;
    } else if (parse_flag(argv[i], "--heatmap-out", value)) {
      opt.heatmap_out = value;
    } else if (parse_flag(argv[i], "--trace-out", value)) {
      opt.trace_out = value;
    } else if (parse_flag(argv[i], "--trace-filter", value)) {
      opt.trace_filter = value;
    } else if (std::strcmp(argv[i], "--rel") == 0) {
      opt.rel = true;
    } else if (parse_flag(argv[i], "--rel-csv", value)) {
      opt.rel_csv = value;
    } else if (parse_flag(argv[i], "--rel-json", value)) {
      opt.rel_json = value;
    } else if (parse_flag(argv[i], "--rel-intervals", value)) {
      opt.rel_intervals = value;
    } else if (std::strcmp(argv[i], "--prof") == 0) {
      opt.prof = true;
    } else if (parse_flag(argv[i], "--prof-out", value)) {
      opt.prof_out = value;
      opt.prof = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      usage();
      return 0;
    } else {
      sim::cli::unknown_flag("run_campaign", argv[i]);
    }
  }

  if (!opt.farm_status_dir.empty()) {
    if (opt.worker || !opt.farm_dir.empty()) {
      std::fprintf(stderr,
                   "--farm-status is a standalone mode (no --farm/--worker)\n");
      return 2;
    }
    return run_farm_status_mode(opt);
  }
  if (opt.worker) {
    if (!opt.farm_dir.empty()) {
      std::fprintf(stderr, "--worker and --farm are mutually exclusive\n");
      return 2;
    }
    if (!opt.serve_spec.empty()) {
      std::fprintf(stderr,
                   "--serve belongs to the coordinator, in-process, or "
                   "--farm-status invocation, not to workers\n");
      return 2;
    }
    return run_worker_mode(opt);
  }
  if (opt.resume && opt.farm_dir.empty()) {
    std::fprintf(stderr, "--resume only applies to --farm mode\n");
    return 2;
  }

  sim::CampaignSpec spec;
  spec.trials = opt.trials == 0 ? 1 : opt.trials;
  spec.base_seed = opt.seed;
  spec.instructions = opt.instructions;
  spec.derive_seeds = spec.trials > 1 || seed_given;
  spec.config.fault_model = fault_by_name(opt.fault_model);
  spec.config.fault_probability = opt.fault_prob;
  spec.sampling.warmup_instructions = opt.warmup;
  spec.sampling.windows = opt.sample_windows;
  spec.sampling.window_width = opt.sample_width;
  spec.sampling.mode = sim::cli::sample_mode_by_name(opt.sample_mode);
  spec.sampling.seed = opt.sample_seed;

  if (opt.schemes.empty()) {
    for (core::Scheme s : core::Scheme::all_paper_schemes()) {
      std::string label = s.name;
      spec.variants.emplace_back(std::move(label),
                                 s.with_decay_window(opt.window));
    }
  } else {
    for (const std::string& name : split_csv(opt.schemes)) {
      spec.variants.emplace_back(
          name, scheme_by_name(name).with_decay_window(opt.window));
    }
  }
  if (!opt.trace_path.empty()) {
    if (!opt.apps.empty()) {
      std::fprintf(stderr,
                   "--trace replaces the app axis with trace interval "
                   "shards; drop --apps\n");
      return 2;
    }
    spec.trace.path = opt.trace_path;
    spec.trace.shard_instructions = opt.shard_instructions;
    try {
      sim::resolve_trace_campaign(spec);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "run_campaign: %s\n", error.what());
      return 1;
    }
  } else if (opt.shard_instructions != 0) {
    std::fprintf(stderr, "--shard-instructions requires --trace=FILE\n");
    return 2;
  } else if (opt.apps.empty()) {
    spec.apps = trace::all_apps();
  } else {
    for (const std::string& name : split_csv(opt.apps)) {
      spec.apps.push_back(app_by_name(name));
    }
  }
  if (spec.variants.empty() ||
      (spec.apps.empty() && !spec.trace.enabled())) {
    std::fprintf(stderr, "empty scheme or app list\n");
    return 2;
  }

  // Geometry sweep: cross every scheme variant with the requested dL1
  // geometry/way-disable cells before the grid is hashed or sharded.
  if (!opt.dl1_sizes.empty() || !opt.dl1_assocs.empty() ||
      !opt.ways_disabled.empty()) {
    if (opt.way_pattern != "fixed" && opt.way_pattern != "random") {
      std::fprintf(stderr, "bad --way-pattern '%s' (fixed|random)\n",
                   opt.way_pattern.c_str());
      return 2;
    }
    spec.geometry.sizes = parse_u32_list(opt.dl1_sizes);
    spec.geometry.assocs = parse_u32_list(opt.dl1_assocs);
    spec.geometry.ways_disabled = parse_u32_list(opt.ways_disabled);
    spec.geometry.pattern = opt.way_pattern == "random"
                                ? mem::WayDisableConfig::Pattern::kRandom
                                : mem::WayDisableConfig::Pattern::kFixed;
    spec.geometry.way_seed = opt.way_seed;
    try {
      sim::expand_geometry_sweep(spec);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "run_campaign: %s\n", error.what());
      return 2;
    }
  }

  if (!opt.farm_dir.empty()) {
    // Telemetry/rel/prof extracts are per-cell in-memory objects; the farm
    // checkpoints only the exported metric schema, so those flags have no
    // farm equivalent yet. Reject loudly rather than silently dropping.
    if (opt.stats_interval != 0 || !opt.intervals_out.empty() ||
        !opt.heatmap_out.empty() || !opt.trace_out.empty() || opt.rel ||
        !opt.rel_csv.empty() || !opt.rel_json.empty() ||
        !opt.rel_intervals.empty() || opt.prof || !opt.prof_out.empty()) {
      std::fprintf(stderr,
                   "--farm does not support the telemetry/rel/prof flags; "
                   "run those in-process\n");
      return 2;
    }
    const unsigned workers =
        opt.workers_given ? opt.workers : sim::resolve_thread_count(0);
    Options farm_opt = opt;
    farm_opt.workers = workers;
    return run_coordinator_mode(farm_opt, spec, argv[0]);
  }

  // Observability: interval sampling and/or event tracing per cell. The
  // options never enter the campaign config hash — telemetry must not
  // change any result.
  if (opt.stats_interval != 0 && opt.intervals_out.empty()) {
    opt.intervals_out = "intervals.csv";
  }
  if (opt.stats_interval == 0 &&
      (!opt.intervals_out.empty() || !opt.heatmap_out.empty())) {
    opt.stats_interval = obs::kDefaultStatsInterval;
  }
  // Analytical reliability tracking: any rel export implies enabling the
  // tracker; --rel alone defaults to rel.csv. Like obs, rel options never
  // enter the config hash.
  if (!opt.rel_csv.empty() || !opt.rel_json.empty() ||
      !opt.rel_intervals.empty()) {
    opt.rel = true;
  }
  if (opt.rel && opt.rel_csv.empty() && opt.rel_json.empty() &&
      opt.rel_intervals.empty()) {
    opt.rel_csv = "rel.csv";
  }
  spec.rel.enabled = opt.rel;
  spec.rel.probability = opt.fault_prob;

  spec.obs.stats_interval = opt.stats_interval;
  if (!opt.trace_out.empty()) {
    spec.obs.trace_categories = obs::parse_category_list(opt.trace_filter);
    if (spec.obs.trace_categories == 0) {
      std::fprintf(stderr, "bad --trace-filter '%s'\n",
                   opt.trace_filter.c_str());
      return 2;
    }
  }

  sim::CampaignRunner runner(opt.threads);
  std::unique_ptr<sim::farm::CampaignStatusSource> serve_source;
  std::unique_ptr<obs::http::Server> serve_server;
  if (!opt.serve_spec.empty()) {
    try {
      sim::farm::ServeOptions serve_options;
      sim::farm::parse_serve_spec(opt.serve_spec, &serve_options);
      serve_source = std::make_unique<sim::farm::CampaignStatusSource>(
          spec.cell_count(), spec.instructions);
      serve_server =
          sim::farm::start_status_server(*serve_source, serve_options);
      std::printf("serving campaign status on %s\n",
                  serve_server->url().c_str());
      std::fflush(stdout);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "run_campaign: %s\n", error.what());
      return 2;
    }
  }
  if (opt.progress || serve_source != nullptr) {
    sim::ProgressOptions progress = runner.progress();
    progress.enabled = progress.enabled || opt.progress;
    if (serve_source != nullptr) {
      progress.live_cells_done = &serve_source->cells_done();
    }
    runner.with_progress(progress);
  }
  const std::size_t app_axis = spec.app_axis();
  std::printf("campaign: %zu scheme(s) x %zu %s x %u trial(s) = %zu "
              "cells on %u thread(s)\n",
              spec.variants.size(), app_axis,
              spec.trace.enabled() ? "trace shard(s)" : "app(s)", spec.trials,
              spec.cell_count(), runner.threads());

  if (opt.prof) obs::prof::begin_capture();
  const sim::CampaignResult campaign = runner.run(spec);
  if (serve_source != nullptr) serve_source->finish();

  if (!opt.quiet) {
    // Summary: cycles per (scheme, app), averaged over trials.
    std::vector<std::string> columns = {"benchmark"};
    for (const auto& v : spec.variants) columns.push_back(v.label);
    TextTable table("execution cycles (mean over trials)",
                    std::move(columns));
    for (std::size_t a = 0; a < app_axis; ++a) {
      std::vector<double> row;
      for (std::size_t v = 0; v < spec.variants.size(); ++v) {
        double sum = 0.0;
        for (std::uint32_t t = 0; t < spec.trials; ++t) {
          sum += static_cast<double>(
              campaign.at(v, a, t, app_axis, spec.trials).result.cycles);
        }
        row.push_back(sum / static_cast<double>(spec.trials));
      }
      table.add_numeric_row(spec.trace.enabled()
                                ? sim::trace_shard_label(spec, a)
                                : trace::to_string(spec.apps[a]),
                            row, 0);
    }
    table.print();
  }

  if (spec.sampling.enabled() && !campaign.cells.empty()) {
    double coverage = 0.0;
    for (const sim::CellResult& cell : campaign.cells) {
      coverage += cell.sampling.coverage();
    }
    coverage /= static_cast<double>(campaign.cells.size());
    std::printf("sampling: warmup %llu, %u window(s) (%s), mean detailed "
                "coverage %.1f%% — metrics are estimates\n",
                static_cast<unsigned long long>(
                    spec.sampling.warmup_instructions),
                spec.sampling.windows, sim::to_string(spec.sampling.mode),
                100.0 * coverage);
  }
  std::printf("%zu cells in %.2fs wall (%.2f cells/sec), config hash "
              "%016llx, base seed %016llx\n",
              campaign.cells.size(), campaign.meta.wall_seconds,
              campaign.meta.cells_per_second,
              static_cast<unsigned long long>(campaign.meta.config_hash),
              static_cast<unsigned long long>(campaign.meta.base_seed));

  try {
    if (!opt.csv_path.empty()) {
      sim::write_text_file(opt.csv_path, sim::to_csv(campaign));
      std::printf("wrote %s\n", opt.csv_path.c_str());
    }
    if (!opt.json_path.empty()) {
      sim::write_text_file(opt.json_path,
                           sim::to_json(campaign, !opt.no_timing));
      std::printf("wrote %s\n", opt.json_path.c_str());
    }
    if (!opt.intervals_out.empty()) {
      sim::write_text_file(opt.intervals_out, sim::intervals_to_csv(campaign));
      std::printf("wrote %s\n", opt.intervals_out.c_str());
    }
    if (!opt.heatmap_out.empty()) {
      sim::write_text_file(opt.heatmap_out, sim::occupancy_to_csv(campaign));
      std::printf("wrote %s\n", opt.heatmap_out.c_str());
    }
    if (!opt.trace_out.empty()) {
      sim::write_text_file(opt.trace_out, sim::trace_to_ndjson(campaign));
      std::printf("wrote %s\n", opt.trace_out.c_str());
    }
    if (!opt.rel_csv.empty()) {
      sim::write_text_file(opt.rel_csv, sim::rel_to_csv(campaign));
      std::printf("wrote %s\n", opt.rel_csv.c_str());
    }
    if (!opt.rel_json.empty()) {
      sim::write_text_file(opt.rel_json, sim::rel_to_json(campaign));
      std::printf("wrote %s\n", opt.rel_json.c_str());
    }
    if (!opt.rel_intervals.empty()) {
      sim::write_text_file(opt.rel_intervals,
                           sim::rel_intervals_to_csv(campaign));
      std::printf("wrote %s\n", opt.rel_intervals.c_str());
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "export failed: %s\n", error.what());
    return 1;
  }

  // Capture ends after the exports so ResultsIO zones are included; each
  // campaign cell shows up as a labelled span in the trace.
  if (opt.prof) {
    const obs::prof::Profile profile = obs::prof::end_capture();
    std::fputs(obs::prof::format_self_time_table(profile).c_str(), stdout);
    if (!opt.prof_out.empty()) {
      try {
        sim::write_text_file(
            opt.prof_out, obs::prof::to_chrome_trace(profile, "run_campaign"));
        std::printf("wrote host profile to %s (open in Perfetto)\n",
                    opt.prof_out.c_str());
      } catch (const std::exception& error) {
        std::fprintf(stderr, "profile export failed: %s\n", error.what());
        return 1;
      }
    }
  }
  return 0;
}
