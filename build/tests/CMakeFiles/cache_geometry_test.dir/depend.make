# Empty dependencies file for cache_geometry_test.
# This may be replaced when dependencies are built.
