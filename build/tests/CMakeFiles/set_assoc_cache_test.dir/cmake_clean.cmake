file(REMOVE_RECURSE
  "CMakeFiles/set_assoc_cache_test.dir/set_assoc_cache_test.cc.o"
  "CMakeFiles/set_assoc_cache_test.dir/set_assoc_cache_test.cc.o.d"
  "set_assoc_cache_test"
  "set_assoc_cache_test.pdb"
  "set_assoc_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_assoc_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
