# Empty dependencies file for set_assoc_cache_test.
# This may be replaced when dependencies are built.
