file(REMOVE_RECURSE
  "CMakeFiles/memory_hierarchy_test.dir/memory_hierarchy_test.cc.o"
  "CMakeFiles/memory_hierarchy_test.dir/memory_hierarchy_test.cc.o.d"
  "memory_hierarchy_test"
  "memory_hierarchy_test.pdb"
  "memory_hierarchy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_hierarchy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
