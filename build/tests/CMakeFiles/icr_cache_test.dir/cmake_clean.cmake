file(REMOVE_RECURSE
  "CMakeFiles/icr_cache_test.dir/icr_cache_test.cc.o"
  "CMakeFiles/icr_cache_test.dir/icr_cache_test.cc.o.d"
  "icr_cache_test"
  "icr_cache_test.pdb"
  "icr_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icr_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
