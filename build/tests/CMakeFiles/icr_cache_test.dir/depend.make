# Empty dependencies file for icr_cache_test.
# This may be replaced when dependencies are built.
