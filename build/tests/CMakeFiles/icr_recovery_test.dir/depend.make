# Empty dependencies file for icr_recovery_test.
# This may be replaced when dependencies are built.
