file(REMOVE_RECURSE
  "CMakeFiles/icr_recovery_test.dir/icr_recovery_test.cc.o"
  "CMakeFiles/icr_recovery_test.dir/icr_recovery_test.cc.o.d"
  "icr_recovery_test"
  "icr_recovery_test.pdb"
  "icr_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icr_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
