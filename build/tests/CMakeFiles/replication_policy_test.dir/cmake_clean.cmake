file(REMOVE_RECURSE
  "CMakeFiles/replication_policy_test.dir/replication_policy_test.cc.o"
  "CMakeFiles/replication_policy_test.dir/replication_policy_test.cc.o.d"
  "replication_policy_test"
  "replication_policy_test.pdb"
  "replication_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replication_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
