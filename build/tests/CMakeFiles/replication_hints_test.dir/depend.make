# Empty dependencies file for replication_hints_test.
# This may be replaced when dependencies are built.
