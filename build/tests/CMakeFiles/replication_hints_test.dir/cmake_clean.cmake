file(REMOVE_RECURSE
  "CMakeFiles/replication_hints_test.dir/replication_hints_test.cc.o"
  "CMakeFiles/replication_hints_test.dir/replication_hints_test.cc.o.d"
  "replication_hints_test"
  "replication_hints_test.pdb"
  "replication_hints_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replication_hints_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
