# Empty dependencies file for functional_units_test.
# This may be replaced when dependencies are built.
