file(REMOVE_RECURSE
  "CMakeFiles/functional_units_test.dir/functional_units_test.cc.o"
  "CMakeFiles/functional_units_test.dir/functional_units_test.cc.o.d"
  "functional_units_test"
  "functional_units_test.pdb"
  "functional_units_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/functional_units_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
