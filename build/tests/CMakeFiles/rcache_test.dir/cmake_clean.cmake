file(REMOVE_RECURSE
  "CMakeFiles/rcache_test.dir/rcache_test.cc.o"
  "CMakeFiles/rcache_test.dir/rcache_test.cc.o.d"
  "rcache_test"
  "rcache_test.pdb"
  "rcache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
