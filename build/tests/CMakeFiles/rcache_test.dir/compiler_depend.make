# Empty compiler generated dependencies file for rcache_test.
# This may be replaced when dependencies are built.
