# Empty dependencies file for ruu_lsq_test.
# This may be replaced when dependencies are built.
