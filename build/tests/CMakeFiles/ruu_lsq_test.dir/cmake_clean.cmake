file(REMOVE_RECURSE
  "CMakeFiles/ruu_lsq_test.dir/ruu_lsq_test.cc.o"
  "CMakeFiles/ruu_lsq_test.dir/ruu_lsq_test.cc.o.d"
  "ruu_lsq_test"
  "ruu_lsq_test.pdb"
  "ruu_lsq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ruu_lsq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
