# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ruu_lsq_test.
