file(REMOVE_RECURSE
  "CMakeFiles/latency_contract_test.dir/latency_contract_test.cc.o"
  "CMakeFiles/latency_contract_test.dir/latency_contract_test.cc.o.d"
  "latency_contract_test"
  "latency_contract_test.pdb"
  "latency_contract_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_contract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
