# Empty compiler generated dependencies file for dead_block_predictor_test.
# This may be replaced when dependencies are built.
