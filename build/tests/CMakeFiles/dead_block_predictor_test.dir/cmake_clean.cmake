file(REMOVE_RECURSE
  "CMakeFiles/dead_block_predictor_test.dir/dead_block_predictor_test.cc.o"
  "CMakeFiles/dead_block_predictor_test.dir/dead_block_predictor_test.cc.o.d"
  "dead_block_predictor_test"
  "dead_block_predictor_test.pdb"
  "dead_block_predictor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dead_block_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
