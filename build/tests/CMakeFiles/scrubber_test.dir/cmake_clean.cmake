file(REMOVE_RECURSE
  "CMakeFiles/scrubber_test.dir/scrubber_test.cc.o"
  "CMakeFiles/scrubber_test.dir/scrubber_test.cc.o.d"
  "scrubber_test"
  "scrubber_test.pdb"
  "scrubber_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrubber_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
