# Empty dependencies file for scrubber_test.
# This may be replaced when dependencies are built.
