file(REMOVE_RECURSE
  "CMakeFiles/write_buffer_test.dir/write_buffer_test.cc.o"
  "CMakeFiles/write_buffer_test.dir/write_buffer_test.cc.o.d"
  "write_buffer_test"
  "write_buffer_test.pdb"
  "write_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
