# Empty compiler generated dependencies file for fig01_replication_ability_attempts.
# This may be replaced when dependencies are built.
