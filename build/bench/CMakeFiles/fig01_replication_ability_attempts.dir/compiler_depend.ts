# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig01_replication_ability_attempts.
