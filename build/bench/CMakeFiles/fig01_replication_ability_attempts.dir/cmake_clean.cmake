file(REMOVE_RECURSE
  "CMakeFiles/fig01_replication_ability_attempts.dir/fig01_replication_ability_attempts.cc.o"
  "CMakeFiles/fig01_replication_ability_attempts.dir/fig01_replication_ability_attempts.cc.o.d"
  "fig01_replication_ability_attempts"
  "fig01_replication_ability_attempts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_replication_ability_attempts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
