file(REMOVE_RECURSE
  "CMakeFiles/fig08_miss_rates.dir/fig08_miss_rates.cc.o"
  "CMakeFiles/fig08_miss_rates.dir/fig08_miss_rates.cc.o.d"
  "fig08_miss_rates"
  "fig08_miss_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_miss_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
