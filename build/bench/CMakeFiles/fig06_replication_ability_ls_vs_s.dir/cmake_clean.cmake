file(REMOVE_RECURSE
  "CMakeFiles/fig06_replication_ability_ls_vs_s.dir/fig06_replication_ability_ls_vs_s.cc.o"
  "CMakeFiles/fig06_replication_ability_ls_vs_s.dir/fig06_replication_ability_ls_vs_s.cc.o.d"
  "fig06_replication_ability_ls_vs_s"
  "fig06_replication_ability_ls_vs_s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_replication_ability_ls_vs_s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
