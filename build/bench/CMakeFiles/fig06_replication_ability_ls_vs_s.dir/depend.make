# Empty dependencies file for fig06_replication_ability_ls_vs_s.
# This may be replaced when dependencies are built.
