file(REMOVE_RECURSE
  "CMakeFiles/fig13_replication_window_1000_vs_0.dir/fig13_replication_window_1000_vs_0.cc.o"
  "CMakeFiles/fig13_replication_window_1000_vs_0.dir/fig13_replication_window_1000_vs_0.cc.o.d"
  "fig13_replication_window_1000_vs_0"
  "fig13_replication_window_1000_vs_0.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_replication_window_1000_vs_0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
