# Empty compiler generated dependencies file for fig13_replication_window_1000_vs_0.
# This may be replaced when dependencies are built.
