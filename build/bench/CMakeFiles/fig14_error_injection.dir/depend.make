# Empty dependencies file for fig14_error_injection.
# This may be replaced when dependencies are built.
