file(REMOVE_RECURSE
  "CMakeFiles/fig14_error_injection.dir/fig14_error_injection.cc.o"
  "CMakeFiles/fig14_error_injection.dir/fig14_error_injection.cc.o.d"
  "fig14_error_injection"
  "fig14_error_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_error_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
