# Empty compiler generated dependencies file for fig11_decay_window_cycles.
# This may be replaced when dependencies are built.
