file(REMOVE_RECURSE
  "CMakeFiles/fig11_decay_window_cycles.dir/fig11_decay_window_cycles.cc.o"
  "CMakeFiles/fig11_decay_window_cycles.dir/fig11_decay_window_cycles.cc.o.d"
  "fig11_decay_window_cycles"
  "fig11_decay_window_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_decay_window_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
