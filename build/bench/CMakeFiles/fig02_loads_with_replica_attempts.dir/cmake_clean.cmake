file(REMOVE_RECURSE
  "CMakeFiles/fig02_loads_with_replica_attempts.dir/fig02_loads_with_replica_attempts.cc.o"
  "CMakeFiles/fig02_loads_with_replica_attempts.dir/fig02_loads_with_replica_attempts.cc.o.d"
  "fig02_loads_with_replica_attempts"
  "fig02_loads_with_replica_attempts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_loads_with_replica_attempts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
