# Empty compiler generated dependencies file for fig02_loads_with_replica_attempts.
# This may be replaced when dependencies are built.
