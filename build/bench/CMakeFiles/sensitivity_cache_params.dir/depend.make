# Empty dependencies file for sensitivity_cache_params.
# This may be replaced when dependencies are built.
