file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_cache_params.dir/sensitivity_cache_params.cc.o"
  "CMakeFiles/sensitivity_cache_params.dir/sensitivity_cache_params.cc.o.d"
  "sensitivity_cache_params"
  "sensitivity_cache_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_cache_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
