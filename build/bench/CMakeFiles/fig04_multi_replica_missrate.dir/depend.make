# Empty dependencies file for fig04_multi_replica_missrate.
# This may be replaced when dependencies are built.
