file(REMOVE_RECURSE
  "CMakeFiles/fig04_multi_replica_missrate.dir/fig04_multi_replica_missrate.cc.o"
  "CMakeFiles/fig04_multi_replica_missrate.dir/fig04_multi_replica_missrate.cc.o.d"
  "fig04_multi_replica_missrate"
  "fig04_multi_replica_missrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_multi_replica_missrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
