file(REMOVE_RECURSE
  "CMakeFiles/table1_configuration.dir/table1_configuration.cc.o"
  "CMakeFiles/table1_configuration.dir/table1_configuration.cc.o.d"
  "table1_configuration"
  "table1_configuration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_configuration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
