# Empty dependencies file for table1_configuration.
# This may be replaced when dependencies are built.
