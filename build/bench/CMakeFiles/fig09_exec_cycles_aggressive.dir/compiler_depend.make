# Empty compiler generated dependencies file for fig09_exec_cycles_aggressive.
# This may be replaced when dependencies are built.
