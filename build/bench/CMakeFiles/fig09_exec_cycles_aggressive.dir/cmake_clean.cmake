file(REMOVE_RECURSE
  "CMakeFiles/fig09_exec_cycles_aggressive.dir/fig09_exec_cycles_aggressive.cc.o"
  "CMakeFiles/fig09_exec_cycles_aggressive.dir/fig09_exec_cycles_aggressive.cc.o.d"
  "fig09_exec_cycles_aggressive"
  "fig09_exec_cycles_aggressive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_exec_cycles_aggressive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
