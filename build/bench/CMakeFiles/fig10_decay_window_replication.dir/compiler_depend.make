# Empty compiler generated dependencies file for fig10_decay_window_replication.
# This may be replaced when dependencies are built.
