file(REMOVE_RECURSE
  "CMakeFiles/fig10_decay_window_replication.dir/fig10_decay_window_replication.cc.o"
  "CMakeFiles/fig10_decay_window_replication.dir/fig10_decay_window_replication.cc.o.d"
  "fig10_decay_window_replication"
  "fig10_decay_window_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_decay_window_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
