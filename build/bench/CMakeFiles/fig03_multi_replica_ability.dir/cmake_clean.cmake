file(REMOVE_RECURSE
  "CMakeFiles/fig03_multi_replica_ability.dir/fig03_multi_replica_ability.cc.o"
  "CMakeFiles/fig03_multi_replica_ability.dir/fig03_multi_replica_ability.cc.o.d"
  "fig03_multi_replica_ability"
  "fig03_multi_replica_ability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_multi_replica_ability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
