# Empty compiler generated dependencies file for fig03_multi_replica_ability.
# This may be replaced when dependencies are built.
