file(REMOVE_RECURSE
  "CMakeFiles/fig17_speculative_ecc.dir/fig17_speculative_ecc.cc.o"
  "CMakeFiles/fig17_speculative_ecc.dir/fig17_speculative_ecc.cc.o.d"
  "fig17_speculative_ecc"
  "fig17_speculative_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_speculative_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
