# Empty compiler generated dependencies file for fig17_speculative_ecc.
# This may be replaced when dependencies are built.
