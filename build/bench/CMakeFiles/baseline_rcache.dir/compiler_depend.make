# Empty compiler generated dependencies file for baseline_rcache.
# This may be replaced when dependencies are built.
