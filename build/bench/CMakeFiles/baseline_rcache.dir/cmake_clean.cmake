file(REMOVE_RECURSE
  "CMakeFiles/baseline_rcache.dir/baseline_rcache.cc.o"
  "CMakeFiles/baseline_rcache.dir/baseline_rcache.cc.o.d"
  "baseline_rcache"
  "baseline_rcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_rcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
