# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig07_loads_with_replica_ls_vs_s.
