# Empty dependencies file for fig07_loads_with_replica_ls_vs_s.
# This may be replaced when dependencies are built.
