file(REMOVE_RECURSE
  "CMakeFiles/fig07_loads_with_replica_ls_vs_s.dir/fig07_loads_with_replica_ls_vs_s.cc.o"
  "CMakeFiles/fig07_loads_with_replica_ls_vs_s.dir/fig07_loads_with_replica_ls_vs_s.cc.o.d"
  "fig07_loads_with_replica_ls_vs_s"
  "fig07_loads_with_replica_ls_vs_s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_loads_with_replica_ls_vs_s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
