file(REMOVE_RECURSE
  "CMakeFiles/fig12_exec_cycles_window1000.dir/fig12_exec_cycles_window1000.cc.o"
  "CMakeFiles/fig12_exec_cycles_window1000.dir/fig12_exec_cycles_window1000.cc.o.d"
  "fig12_exec_cycles_window1000"
  "fig12_exec_cycles_window1000.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_exec_cycles_window1000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
