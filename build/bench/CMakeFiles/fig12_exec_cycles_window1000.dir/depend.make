# Empty dependencies file for fig12_exec_cycles_window1000.
# This may be replaced when dependencies are built.
