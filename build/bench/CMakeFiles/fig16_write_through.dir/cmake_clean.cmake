file(REMOVE_RECURSE
  "CMakeFiles/fig16_write_through.dir/fig16_write_through.cc.o"
  "CMakeFiles/fig16_write_through.dir/fig16_write_through.cc.o.d"
  "fig16_write_through"
  "fig16_write_through.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_write_through.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
