file(REMOVE_RECURSE
  "CMakeFiles/fig15_perf_leave_replicas.dir/fig15_perf_leave_replicas.cc.o"
  "CMakeFiles/fig15_perf_leave_replicas.dir/fig15_perf_leave_replicas.cc.o.d"
  "fig15_perf_leave_replicas"
  "fig15_perf_leave_replicas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_perf_leave_replicas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
