# Empty dependencies file for fig15_perf_leave_replicas.
# This may be replaced when dependencies are built.
