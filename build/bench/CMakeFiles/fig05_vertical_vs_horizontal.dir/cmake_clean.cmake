file(REMOVE_RECURSE
  "CMakeFiles/fig05_vertical_vs_horizontal.dir/fig05_vertical_vs_horizontal.cc.o"
  "CMakeFiles/fig05_vertical_vs_horizontal.dir/fig05_vertical_vs_horizontal.cc.o.d"
  "fig05_vertical_vs_horizontal"
  "fig05_vertical_vs_horizontal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_vertical_vs_horizontal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
