# Empty compiler generated dependencies file for fig05_vertical_vs_horizontal.
# This may be replaced when dependencies are built.
