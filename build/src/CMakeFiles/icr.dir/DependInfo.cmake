
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/rcache.cc" "src/CMakeFiles/icr.dir/baselines/rcache.cc.o" "gcc" "src/CMakeFiles/icr.dir/baselines/rcache.cc.o.d"
  "/root/repo/src/coding/parity.cc" "src/CMakeFiles/icr.dir/coding/parity.cc.o" "gcc" "src/CMakeFiles/icr.dir/coding/parity.cc.o.d"
  "/root/repo/src/coding/secded.cc" "src/CMakeFiles/icr.dir/coding/secded.cc.o" "gcc" "src/CMakeFiles/icr.dir/coding/secded.cc.o.d"
  "/root/repo/src/core/dead_block_predictor.cc" "src/CMakeFiles/icr.dir/core/dead_block_predictor.cc.o" "gcc" "src/CMakeFiles/icr.dir/core/dead_block_predictor.cc.o.d"
  "/root/repo/src/core/icr_cache.cc" "src/CMakeFiles/icr.dir/core/icr_cache.cc.o" "gcc" "src/CMakeFiles/icr.dir/core/icr_cache.cc.o.d"
  "/root/repo/src/core/replication_hints.cc" "src/CMakeFiles/icr.dir/core/replication_hints.cc.o" "gcc" "src/CMakeFiles/icr.dir/core/replication_hints.cc.o.d"
  "/root/repo/src/core/replication_policy.cc" "src/CMakeFiles/icr.dir/core/replication_policy.cc.o" "gcc" "src/CMakeFiles/icr.dir/core/replication_policy.cc.o.d"
  "/root/repo/src/core/scheme.cc" "src/CMakeFiles/icr.dir/core/scheme.cc.o" "gcc" "src/CMakeFiles/icr.dir/core/scheme.cc.o.d"
  "/root/repo/src/cpu/branch_predictor.cc" "src/CMakeFiles/icr.dir/cpu/branch_predictor.cc.o" "gcc" "src/CMakeFiles/icr.dir/cpu/branch_predictor.cc.o.d"
  "/root/repo/src/cpu/functional_units.cc" "src/CMakeFiles/icr.dir/cpu/functional_units.cc.o" "gcc" "src/CMakeFiles/icr.dir/cpu/functional_units.cc.o.d"
  "/root/repo/src/cpu/lsq.cc" "src/CMakeFiles/icr.dir/cpu/lsq.cc.o" "gcc" "src/CMakeFiles/icr.dir/cpu/lsq.cc.o.d"
  "/root/repo/src/cpu/pipeline.cc" "src/CMakeFiles/icr.dir/cpu/pipeline.cc.o" "gcc" "src/CMakeFiles/icr.dir/cpu/pipeline.cc.o.d"
  "/root/repo/src/cpu/ruu.cc" "src/CMakeFiles/icr.dir/cpu/ruu.cc.o" "gcc" "src/CMakeFiles/icr.dir/cpu/ruu.cc.o.d"
  "/root/repo/src/energy/energy_model.cc" "src/CMakeFiles/icr.dir/energy/energy_model.cc.o" "gcc" "src/CMakeFiles/icr.dir/energy/energy_model.cc.o.d"
  "/root/repo/src/fault/fault_injector.cc" "src/CMakeFiles/icr.dir/fault/fault_injector.cc.o" "gcc" "src/CMakeFiles/icr.dir/fault/fault_injector.cc.o.d"
  "/root/repo/src/mem/backing_store.cc" "src/CMakeFiles/icr.dir/mem/backing_store.cc.o" "gcc" "src/CMakeFiles/icr.dir/mem/backing_store.cc.o.d"
  "/root/repo/src/mem/cache_geometry.cc" "src/CMakeFiles/icr.dir/mem/cache_geometry.cc.o" "gcc" "src/CMakeFiles/icr.dir/mem/cache_geometry.cc.o.d"
  "/root/repo/src/mem/memory_hierarchy.cc" "src/CMakeFiles/icr.dir/mem/memory_hierarchy.cc.o" "gcc" "src/CMakeFiles/icr.dir/mem/memory_hierarchy.cc.o.d"
  "/root/repo/src/mem/set_assoc_cache.cc" "src/CMakeFiles/icr.dir/mem/set_assoc_cache.cc.o" "gcc" "src/CMakeFiles/icr.dir/mem/set_assoc_cache.cc.o.d"
  "/root/repo/src/mem/write_buffer.cc" "src/CMakeFiles/icr.dir/mem/write_buffer.cc.o" "gcc" "src/CMakeFiles/icr.dir/mem/write_buffer.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/icr.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/icr.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/icr.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/icr.dir/sim/experiment.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/CMakeFiles/icr.dir/sim/metrics.cc.o" "gcc" "src/CMakeFiles/icr.dir/sim/metrics.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/icr.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/icr.dir/sim/simulator.cc.o.d"
  "/root/repo/src/trace/instruction.cc" "src/CMakeFiles/icr.dir/trace/instruction.cc.o" "gcc" "src/CMakeFiles/icr.dir/trace/instruction.cc.o.d"
  "/root/repo/src/trace/patterns.cc" "src/CMakeFiles/icr.dir/trace/patterns.cc.o" "gcc" "src/CMakeFiles/icr.dir/trace/patterns.cc.o.d"
  "/root/repo/src/trace/trace_file.cc" "src/CMakeFiles/icr.dir/trace/trace_file.cc.o" "gcc" "src/CMakeFiles/icr.dir/trace/trace_file.cc.o.d"
  "/root/repo/src/trace/workloads.cc" "src/CMakeFiles/icr.dir/trace/workloads.cc.o" "gcc" "src/CMakeFiles/icr.dir/trace/workloads.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/icr.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/icr.dir/util/rng.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/icr.dir/util/table.cc.o" "gcc" "src/CMakeFiles/icr.dir/util/table.cc.o.d"
  "/root/repo/src/util/zipf.cc" "src/CMakeFiles/icr.dir/util/zipf.cc.o" "gcc" "src/CMakeFiles/icr.dir/util/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
