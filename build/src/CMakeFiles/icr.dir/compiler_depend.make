# Empty compiler generated dependencies file for icr.
# This may be replaced when dependencies are built.
