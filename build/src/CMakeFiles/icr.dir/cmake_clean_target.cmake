file(REMOVE_RECURSE
  "libicr.a"
)
