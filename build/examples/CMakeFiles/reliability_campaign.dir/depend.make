# Empty dependencies file for reliability_campaign.
# This may be replaced when dependencies are built.
