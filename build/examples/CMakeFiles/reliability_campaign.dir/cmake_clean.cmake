file(REMOVE_RECURSE
  "CMakeFiles/reliability_campaign.dir/reliability_campaign.cpp.o"
  "CMakeFiles/reliability_campaign.dir/reliability_campaign.cpp.o.d"
  "reliability_campaign"
  "reliability_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
