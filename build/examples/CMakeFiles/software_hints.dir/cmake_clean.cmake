file(REMOVE_RECURSE
  "CMakeFiles/software_hints.dir/software_hints.cpp.o"
  "CMakeFiles/software_hints.dir/software_hints.cpp.o.d"
  "software_hints"
  "software_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/software_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
