# Empty dependencies file for software_hints.
# This may be replaced when dependencies are built.
