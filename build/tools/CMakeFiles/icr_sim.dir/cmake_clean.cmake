file(REMOVE_RECURSE
  "CMakeFiles/icr_sim.dir/icr_sim.cc.o"
  "CMakeFiles/icr_sim.dir/icr_sim.cc.o.d"
  "icr_sim"
  "icr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
