# Empty compiler generated dependencies file for icr_sim.
# This may be replaced when dependencies are built.
