#include "src/energy/energy_model.h"

namespace icr::energy {

EnergyBreakdown EnergyModel::evaluate(const EnergyEvents& events) const {
  EnergyBreakdown out;
  out.l1_nj = static_cast<double>(events.l1_reads + events.l1_writes) *
              params_.l1_access_nj;
  out.l2_nj = static_cast<double>(events.l2_reads + events.l2_writes) *
              params_.l2_access_nj;
  out.parity_nj = static_cast<double>(events.parity_computations) *
                  params_.parity_fraction * params_.l1_access_nj;
  out.ecc_nj = static_cast<double>(events.ecc_computations) *
               params_.ecc_fraction * params_.l1_access_nj;
  return out;
}

}  // namespace icr::energy
