// Dynamic energy accounting for the L1/L2 data hierarchy (paper §4.1, §5.8,
// §5.9).
//
// Per-access energies follow CACTI 3.0 for the Table-1 geometries at a
// 0.18um-class process (the paper's vintage):
//   16KB 4-way 64B L1 ....... ~0.40 nJ / access
//   256KB 4-way 64B L2 ...... ~4.00 nJ / access
// The absolute values matter less than the L2:L1 ratio (~10x), which CACTI
// gives for these sizes and which drives the paper's write-through result
// (Fig. 16(b)). Parity and ECC computation energies are expressed as a
// fraction of the L1 access energy, exactly the way the paper sweeps them
// in Fig. 17 (parity 10-15%, ECC 30%).
#pragma once

#include <cstdint>

namespace icr::energy {

struct EnergyParams {
  double l1_access_nj = 0.40;
  double l2_access_nj = 4.00;
  // Check-computation energy as a fraction of one L1 access.
  double parity_fraction = 0.15;
  double ecc_fraction = 0.30;
};

// Raw event counts gathered from the caches after a run.
struct EnergyEvents {
  std::uint64_t l1_reads = 0;
  std::uint64_t l1_writes = 0;
  std::uint64_t l2_reads = 0;
  std::uint64_t l2_writes = 0;
  std::uint64_t parity_computations = 0;
  std::uint64_t ecc_computations = 0;
};

struct EnergyBreakdown {
  double l1_nj = 0.0;
  double l2_nj = 0.0;
  double parity_nj = 0.0;
  double ecc_nj = 0.0;

  [[nodiscard]] double total_nj() const noexcept {
    return l1_nj + l2_nj + parity_nj + ecc_nj;
  }
};

class EnergyModel {
 public:
  explicit EnergyModel(EnergyParams params = {}) noexcept : params_(params) {}

  [[nodiscard]] EnergyBreakdown evaluate(const EnergyEvents& events) const;

  [[nodiscard]] const EnergyParams& params() const noexcept { return params_; }

 private:
  EnergyParams params_;
};

}  // namespace icr::energy
