#include "src/core/replication_policy.h"

#include <algorithm>

namespace icr::core {

std::uint32_t Distance::resolve(std::uint32_t num_sets) const noexcept {
  switch (kind) {
    case Kind::kAbsolute:
      return num_sets == 0 ? 0 : value % num_sets;
    case Kind::kHalfSets:
      return num_sets / 2;
    case Kind::kQuarterSets:
      return num_sets / 4;
    case Kind::kZero:
      return 0;
  }
  return 0;
}

const char* to_string(ReplicaVictimPolicy policy) noexcept {
  switch (policy) {
    case ReplicaVictimPolicy::kDeadOnly:
      return "dead-only";
    case ReplicaVictimPolicy::kReplicaOnly:
      return "replica-only";
    case ReplicaVictimPolicy::kDeadFirst:
      return "dead-first";
    case ReplicaVictimPolicy::kReplicaFirst:
      return "replica-first";
  }
  return "?";
}

std::vector<std::uint32_t> candidate_distances(const ReplicationConfig& config,
                                               std::uint32_t num_sets) {
  std::vector<std::uint32_t> result;
  auto push_unique = [&](std::uint32_t d) {
    if (std::find(result.begin(), result.end(), d) == result.end()) {
      result.push_back(d);
    }
  };

  const std::uint32_t first = config.first_distance.resolve(num_sets);
  push_unique(first);

  switch (config.fallback) {
    case FallbackStrategy::kNone:
      break;
    case FallbackStrategy::kMultiAttempt:
      for (const Distance& d : config.extra_attempts) {
        push_unique(d.resolve(num_sets));
      }
      break;
    case FallbackStrategy::kPower2: {
      // k, k - k/2, k - k/2 - k/4, ... — walk down the power-of-two ladder
      // (one of the paper's two directions) until the step vanishes or the
      // attempt budget is spent.
      std::uint32_t k = first;
      std::uint32_t step = first / 2;
      for (std::uint32_t attempt = 1;
           attempt < config.max_attempts && step > 0; ++attempt) {
        k -= step;
        push_unique(k % (num_sets == 0 ? 1 : num_sets));
        step /= 2;
      }
      break;
    }
  }
  return result;
}

}  // namespace icr::core
