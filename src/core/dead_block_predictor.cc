#include "src/core/dead_block_predictor.h"

#include <algorithm>

namespace icr::core {

DeadBlockPredictor::DeadBlockPredictor(std::uint64_t decay_window) noexcept
    : window_(decay_window), tick_(std::max<std::uint64_t>(1, decay_window / 4)) {}

std::uint32_t DeadBlockPredictor::counter_value(std::uint64_t last_access,
                                                std::uint64_t now) const noexcept {
  if (now <= last_access) return 0;
  if (window_ == 0) return kSaturated;  // aggressive: dead right after access
  // Global ticks fire at multiples of tick_; the counter counts ticks that
  // occurred strictly after the access.
  const std::uint64_t ticks = now / tick_ - last_access / tick_;
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(ticks, kSaturated));
}

bool DeadBlockPredictor::is_dead(std::uint64_t last_access,
                                 std::uint64_t now) const noexcept {
  ++stats_.queries;
  const bool dead = counter_value(last_access, now) >= kSaturated;
  if (dead) ++stats_.dead_predictions;
  return dead;
}

}  // namespace icr::core
