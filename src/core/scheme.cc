#include "src/core/scheme.h"

namespace icr::core {
namespace {

Scheme icr_base(std::string name, Protection protection, LookupMode lookup,
                ReplicateOn trigger) {
  Scheme s;
  s.name = std::move(name);
  s.replication_enabled = true;
  s.protection = protection;
  s.lookup = lookup;
  s.trigger = trigger;
  return s;
}

}  // namespace

Scheme Scheme::BaseP() {
  Scheme s;
  s.name = "BaseP";
  return s;
}

Scheme Scheme::BaseECC() {
  Scheme s;
  s.name = "BaseECC";
  s.protection = Protection::kEcc;
  return s;
}

Scheme Scheme::BaseECCSpeculative() {
  Scheme s = BaseECC();
  s.name = "BaseECC-spec";
  s.speculative_ecc_loads = true;
  return s;
}

Scheme Scheme::IcrPPS_LS() {
  return icr_base("ICR-P-PS(LS)", Protection::kParity, LookupMode::kSerial,
                  ReplicateOn::kLoadsAndStores);
}
Scheme Scheme::IcrPPS_S() {
  return icr_base("ICR-P-PS(S)", Protection::kParity, LookupMode::kSerial,
                  ReplicateOn::kStores);
}
Scheme Scheme::IcrPPP_LS() {
  return icr_base("ICR-P-PP(LS)", Protection::kParity, LookupMode::kParallel,
                  ReplicateOn::kLoadsAndStores);
}
Scheme Scheme::IcrPPP_S() {
  return icr_base("ICR-P-PP(S)", Protection::kParity, LookupMode::kParallel,
                  ReplicateOn::kStores);
}
Scheme Scheme::IcrEccPS_LS() {
  return icr_base("ICR-ECC-PS(LS)", Protection::kEcc, LookupMode::kSerial,
                  ReplicateOn::kLoadsAndStores);
}
Scheme Scheme::IcrEccPS_S() {
  return icr_base("ICR-ECC-PS(S)", Protection::kEcc, LookupMode::kSerial,
                  ReplicateOn::kStores);
}
Scheme Scheme::IcrEccPP_LS() {
  return icr_base("ICR-ECC-PP(LS)", Protection::kEcc, LookupMode::kParallel,
                  ReplicateOn::kLoadsAndStores);
}
Scheme Scheme::IcrEccPP_S() {
  return icr_base("ICR-ECC-PP(S)", Protection::kEcc, LookupMode::kParallel,
                  ReplicateOn::kStores);
}

std::vector<Scheme> Scheme::all_paper_schemes() {
  return {BaseP(),      BaseECC(),    IcrPPS_LS(),   IcrPPS_S(),
          IcrPPP_LS(),  IcrPPP_S(),   IcrEccPS_LS(), IcrEccPS_S(),
          IcrEccPP_LS(), IcrEccPP_S()};
}

Scheme Scheme::with_decay_window(std::uint64_t window) const {
  Scheme s = *this;
  s.decay_window = window;
  return s;
}

Scheme Scheme::with_victim_policy(ReplicaVictimPolicy policy) const {
  Scheme s = *this;
  s.victim_policy = policy;
  return s;
}

Scheme Scheme::with_replication(ReplicationConfig config) const {
  Scheme s = *this;
  s.replication = std::move(config);
  return s;
}

Scheme Scheme::with_leave_replicas(bool leave) const {
  Scheme s = *this;
  s.leave_replicas_on_eviction = leave;
  return s;
}

Scheme Scheme::with_write_through(std::uint32_t buffer_entries) const {
  Scheme s = *this;
  s.write_policy = WritePolicy::kWriteThrough;
  s.write_buffer_entries = buffer_entries;
  return s;
}

Scheme Scheme::with_scrubbing(std::uint64_t interval) const {
  Scheme s = *this;
  s.scrub_interval = interval;
  return s;
}

}  // namespace icr::core
