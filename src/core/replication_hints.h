// Software-directed replication control — the paper's §6 future work:
// "explore controlling replication using software mechanisms that can
// direct how many replicas are needed for each line, when such replication
// should be initiated, and what blocks should not be replicated."
//
// A ReplicationHints table maps address ranges to per-block replica quotas:
//   quota 0  — never replicate blocks in this range (e.g. scratch data the
//              software can regenerate);
//   quota k  — allow up to k replicas (e.g. 2+ for checkpoint state);
// Blocks outside every range use the scheme's configured replica count.
// Ranges are half-open [begin, end) byte ranges; later-added ranges win on
// overlap (so a program can carve exceptions out of a big region).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace icr::core {

class ReplicationHints {
 public:
  // Registers [begin, end) with a replica quota. Ranges added later take
  // precedence over earlier ones on overlap.
  void add_range(std::uint64_t begin, std::uint64_t end,
                 std::uint8_t max_replicas);

  // The quota for the block containing `addr`, if any hint covers it.
  [[nodiscard]] std::optional<std::uint8_t> quota_for(
      std::uint64_t addr) const noexcept;

  [[nodiscard]] std::size_t range_count() const noexcept {
    return ranges_.size();
  }
  void clear() noexcept { ranges_.clear(); }

 private:
  struct Range {
    std::uint64_t begin;
    std::uint64_t end;
    std::uint8_t max_replicas;
  };
  std::vector<Range> ranges_;
};

}  // namespace icr::core
