// The ten dL1 protection schemes evaluated by the paper (§3.2), plus the
// orthogonal knobs explored in §5 (decay window, victim policy, replica
// retention on eviction, speculative ECC loads, write-through L1).
//
// Naming follows the paper: ICR-<unreplicated protection>-<lookup> (<trigger>)
//   protection  P   = byte parity            ECC = SEC-DED (72,64)
//   lookup      PS  = probe replica serially only after a parity error
//               PP  = probe primary and replica in parallel, compare both
//   trigger     S   = replicate on stores    LS  = also on load misses
// Replicated lines are always parity protected (§3.1): replicas themselves
// provide the correction capability, and parity keeps load hits at 1 cycle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/replication_policy.h"

namespace icr::core {

enum class Protection : std::uint8_t { kParity, kEcc };
enum class LookupMode : std::uint8_t { kSerial /*PS*/, kParallel /*PP*/ };
enum class ReplicateOn : std::uint8_t { kStores /*S*/, kLoadsAndStores /*LS*/ };
enum class WritePolicy : std::uint8_t { kWriteBack, kWriteThrough };

struct Scheme {
  std::string name;

  bool replication_enabled = false;
  Protection protection = Protection::kParity;  // for unreplicated lines
  LookupMode lookup = LookupMode::kSerial;
  ReplicateOn trigger = ReplicateOn::kStores;

  // BaseECC §5.9 variant: ECC verification runs in the background and load
  // hits complete in 1 cycle.
  bool speculative_ecc_loads = false;

  // §5.6 performance mode: keep replicas when their primary is evicted and
  // serve later primary misses from them at +1 cycle.
  bool leave_replicas_on_eviction = false;

  // §5.8 comparison: write-through dL1 with a coalescing write buffer.
  WritePolicy write_policy = WritePolicy::kWriteBack;
  std::uint32_t write_buffer_entries = 8;

  ReplicaVictimPolicy victim_policy = ReplicaVictimPolicy::kDeadOnly;
  ReplicationConfig replication;

  // Dead-block decay window in cycles; 0 = aggressive (dead immediately).
  std::uint64_t decay_window = 0;

  // Background scrubbing (extension; cf. Saleh et al., cited as [21]):
  // every `scrub_interval` cycles the scrubber verifies one cache set and
  // repairs what it can (replica, ECC, or L2 refetch for clean lines),
  // bounding error accumulation between accesses. 0 = disabled.
  std::uint64_t scrub_interval = 0;

  // ---- Named constructors for the paper's schemes ----
  [[nodiscard]] static Scheme BaseP();
  [[nodiscard]] static Scheme BaseECC();
  [[nodiscard]] static Scheme BaseECCSpeculative();
  [[nodiscard]] static Scheme IcrPPS_LS();
  [[nodiscard]] static Scheme IcrPPS_S();
  [[nodiscard]] static Scheme IcrPPP_LS();
  [[nodiscard]] static Scheme IcrPPP_S();
  [[nodiscard]] static Scheme IcrEccPS_LS();
  [[nodiscard]] static Scheme IcrEccPS_S();
  [[nodiscard]] static Scheme IcrEccPP_LS();
  [[nodiscard]] static Scheme IcrEccPP_S();

  // The ten schemes of §3.2 in paper order (Fig. 9).
  [[nodiscard]] static std::vector<Scheme> all_paper_schemes();

  // Fluent tweaks used by the experiment harness.
  [[nodiscard]] Scheme with_decay_window(std::uint64_t window) const;
  [[nodiscard]] Scheme with_victim_policy(ReplicaVictimPolicy policy) const;
  [[nodiscard]] Scheme with_replication(ReplicationConfig config) const;
  [[nodiscard]] Scheme with_leave_replicas(bool leave) const;
  [[nodiscard]] Scheme with_write_through(std::uint32_t buffer_entries) const;
  [[nodiscard]] Scheme with_scrubbing(std::uint64_t interval) const;
};

}  // namespace icr::core
