#include "src/core/icr_cache.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>

#include "src/coding/parity.h"
#include "src/obs/prof.h"
#include "src/coding/secded.h"
#include "src/rel/rel_tracker.h"
#include "src/util/check.h"

namespace icr::core {

IcrCache::IcrCache(mem::CacheGeometry geometry, Scheme scheme,
                   mem::MemoryHierarchy& next,
                   mem::WayDisableConfig way_disable)
    : geometry_(geometry),
      scheme_(std::move(scheme)),
      next_(next),
      dbp_(scheme_.decay_window),
      distances_(candidate_distances(scheme_.replication, geometry.num_sets())) {
  geometry_.validate();
  way_disable.validate(geometry_.associativity);
  if (way_disable.enabled()) {
    disabled_masks_.resize(geometry_.num_sets());
    for (std::uint32_t s = 0; s < geometry_.num_sets(); ++s) {
      disabled_masks_[s] =
          way_disable.mask_for_set(s, geometry_.associativity);
    }
  }
  lines_.resize(static_cast<std::size_t>(geometry_.num_sets()) *
                geometry_.associativity);
  const std::uint32_t words = geometry_.words_per_line();
  for (IcrLine& line : lines_) {
    line.data.resize(geometry_.line_bytes);
    line.parity.resize(words);
    line.ecc.resize(words);
  }
  if (scheme_.write_policy == WritePolicy::kWriteThrough) {
    write_buffer_ = std::make_unique<mem::WriteBuffer>(
        scheme_.write_buffer_entries, next_.config().l2_latency);
  }
}

const IcrLine& IcrCache::line(std::uint32_t set,
                              std::uint32_t way) const noexcept {
  return set_base(set)[way];
}

IcrLine* IcrCache::find_primary(std::uint64_t block) noexcept {
  IcrLine* base = set_base(geometry_.set_index(block));
  for (std::uint32_t w = 0; w < geometry_.associativity; ++w) {
    if (base[w].valid && !base[w].replica && base[w].block_addr == block) {
      return &base[w];
    }
  }
  return nullptr;
}

std::vector<IcrLine*> IcrCache::find_replicas(std::uint64_t block) {
  std::vector<IcrLine*> result;
  const std::uint32_t home = geometry_.set_index(block);
  for (std::uint32_t d : distances_) {
    const std::uint32_t set = (home + d) % geometry_.num_sets();
    IcrLine* base = set_base(set);
    for (std::uint32_t w = 0; w < geometry_.associativity; ++w) {
      if (base[w].valid && base[w].replica && base[w].block_addr == block) {
        result.push_back(&base[w]);
      }
    }
  }
  return result;
}

std::uint64_t IcrCache::read_word(const IcrLine& line,
                                  std::uint32_t word_index) const {
  std::uint64_t value = 0;
  std::memcpy(&value, line.data.data() + word_index * 8, 8);
  return value;
}

void IcrCache::write_word(IcrLine& line, std::uint32_t word_index,
                          std::uint64_t value) {
  std::memcpy(line.data.data() + word_index * 8, &value, 8);
  refresh_protection(line, word_index);
}

void IcrCache::refresh_protection(IcrLine& line, std::uint32_t word_index) {
  const std::uint64_t word = read_word(line, word_index);
  line.parity[word_index] = byte_parity(word);
  line.ecc[word_index] = secded_encode(word);
}

void IcrCache::fill_from_backing(IcrLine& line, std::uint64_t block) {
  for (std::uint32_t w = 0; w < geometry_.words_per_line(); ++w) {
    const std::uint64_t value = next_.backing().read_word(block + w * 8ULL);
    std::memcpy(line.data.data() + w * 8, &value, 8);
    refresh_protection(line, w);
  }
}

void IcrCache::touch(IcrLine& line, std::uint64_t cycle) noexcept {
  line.last_access_cycle = cycle;
  line.lru_stamp = ++lru_clock_;
}

bool IcrCache::parity_regime(const IcrLine& line) const noexcept {
  if (scheme_.replication_enabled && line.replica_count > 0) return true;
  return scheme_.protection == Protection::kParity;
}

std::uint32_t IcrCache::load_hit_latency(const IcrLine& line) const noexcept {
  if (!scheme_.replication_enabled) {
    if (scheme_.protection == Protection::kEcc) {
      return scheme_.speculative_ecc_loads ? 1 : 2;
    }
    return 1;
  }
  if (line.replica_count > 0) {
    return scheme_.lookup == LookupMode::kParallel ? 2 : 1;
  }
  return scheme_.protection == Protection::kEcc ? 2 : 1;
}

void IcrCache::evict_line(IcrLine& line, std::uint64_t cycle) {
  if (!line.valid) return;
  if (line.replica) {
    ++stats_.replica_evictions;
    if (rel_ != nullptr) rel_->on_replica_evict(line.block_addr, cycle);
    if (trace_ != nullptr && trace_->wants(obs::EventCategory::kEviction)) {
      trace_->emit(obs::EventKind::kReplicaEvict, cycle, line.block_addr,
                   set_of(line));
    }
    // Detach from the primary (if it is still resident).
    if (IcrLine* primary = find_primary(line.block_addr)) {
      ICR_CHECK(primary->replica_count > 0);
      --primary->replica_count;
    }
    line.valid = false;
    line.replica = false;
    return;
  }
  ++stats_.evictions;
  if (rel_ != nullptr) rel_->on_evict(line.block_addr, line.dirty, cycle);
  if (line.dirty) {
    ++stats_.writebacks;
    // Deposit the line's current bits (corrupted or not) into the next level.
    for (std::uint32_t w = 0; w < geometry_.words_per_line(); ++w) {
      next_.backing().write_word(line.block_addr + w * 8ULL,
                                 read_word(line, w));
    }
    next_.write_back_block(line.block_addr, cycle);
  }
  if (line.replica_count > 0 && !scheme_.leave_replicas_on_eviction) {
    for (IcrLine* replica : find_replicas(line.block_addr)) {
      replica->valid = false;
      replica->replica = false;
      ++stats_.replica_evictions;
      if (rel_ != nullptr) rel_->on_replica_evict(line.block_addr, cycle);
      if (trace_ != nullptr && trace_->wants(obs::EventCategory::kEviction)) {
        trace_->emit(obs::EventKind::kReplicaEvict, cycle, line.block_addr,
                     set_of(*replica));
      }
    }
    line.replica_count = 0;
  }
  // In leave-replica mode the replicas stay as orphans; a later fill of this
  // block re-attaches them (see load()).
  line.valid = false;
  line.dirty = false;
  line.replica_count = 0;
}

std::uint64_t IcrCache::enabled_lines() const noexcept {
  std::uint64_t total = static_cast<std::uint64_t>(geometry_.num_sets()) *
                        geometry_.associativity;
  for (std::uint32_t mask : disabled_masks_) {
    total -= static_cast<std::uint32_t>(std::popcount(mask));
  }
  return total;
}

void IcrCache::disable_way(std::uint32_t set, std::uint32_t way,
                           std::uint64_t cycle) {
  ICR_CHECK(set < geometry_.num_sets() && way < geometry_.associativity);
  const std::uint32_t all = geometry_.associativity >= 32
                                ? ~0u
                                : ((1u << geometry_.associativity) - 1u);
  const std::uint32_t mask = disabled_mask(set) | (1u << way);
  if ((mask & all) == all) {
    throw std::invalid_argument(
        "IcrCache::disable_way: last enabled way of the set");
  }
  if (disabled_masks_.empty()) disabled_masks_.resize(geometry_.num_sets());
  evict_line(set_base(set)[way], cycle);  // flush the resident line first
  disabled_masks_[set] = mask;
}

IcrLine& IcrCache::allocate_primary_slot(std::uint64_t block,
                                         std::uint64_t cycle) {
  // §3.1: primary placement is plain LRU over every enabled way — dead,
  // replica or primary alike. Disabled ways never participate.
  const std::uint32_t set = geometry_.set_index(block);
  const std::uint32_t disabled = disabled_mask(set);
  IcrLine* base = set_base(set);
  IcrLine* victim = nullptr;
  for (std::uint32_t w = 0; w < geometry_.associativity; ++w) {
    if ((disabled >> w) & 1u) continue;
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (victim == nullptr || base[w].lru_stamp < victim->lru_stamp) {
      victim = &base[w];
    }
  }
  ICR_CHECK(victim != nullptr);  // validate() keeps >= 1 way enabled per set
  evict_line(*victim, cycle);
  return *victim;
}

IcrLine* IcrCache::select_replica_victim(std::uint32_t set,
                                         std::uint64_t block,
                                         std::uint64_t cycle) {
  ICR_PROF_ZONE_HOT("IcrCache::select_replica_victim");
  const std::uint32_t disabled = disabled_mask(set);
  IcrLine* base = set_base(set);
  IcrLine* invalid = nullptr;
  IcrLine* dead = nullptr;     // LRU dead primary
  IcrLine* replica = nullptr;  // LRU replica
  for (std::uint32_t w = 0; w < geometry_.associativity; ++w) {
    if ((disabled >> w) & 1u) continue;
    IcrLine& l = base[w];
    if (!l.valid) {
      if (invalid == nullptr) invalid = &l;
      continue;
    }
    if (l.block_addr == block) continue;  // never displace our own copies
    if (l.replica) {
      if (replica == nullptr || l.lru_stamp < replica->lru_stamp) replica = &l;
      continue;
    }
    // Primary: only a candidate if predicted dead. A line that carries live
    // replicas is still just a primary here; its replicas detach on eviction.
    if (dbp_.is_dead(l.last_access_cycle, cycle)) {
      if (dead == nullptr || l.lru_stamp < dead->lru_stamp) dead = &l;
    }
  }
  if (invalid != nullptr) return invalid;
  switch (scheme_.victim_policy) {
    case ReplicaVictimPolicy::kDeadOnly:
      return dead;
    case ReplicaVictimPolicy::kReplicaOnly:
      return replica;
    case ReplicaVictimPolicy::kDeadFirst:
      return dead != nullptr ? dead : replica;
    case ReplicaVictimPolicy::kReplicaFirst:
      return replica != nullptr ? replica : dead;
  }
  return nullptr;
}

void IcrCache::attempt_replication(IcrLine& primary, std::uint64_t cycle) {
  if (!scheme_.replication_enabled) return;
  std::uint32_t target = scheme_.replication.num_replicas;
  if (hints_ != nullptr) {
    if (const auto quota = hints_->quota_for(primary.block_addr)) {
      if (*quota == 0) return;  // software opted this data out entirely
      target = *quota;
    }
  }
  ++stats_.replication_opportunities;
  const std::uint32_t before = primary.replica_count;
  if (before >= target) {
    // Already fully replicated: the opportunity creates nothing new.
    return;
  }

  ++stats_.site_searches;
  ICR_PROF_ZONE_HOT("IcrCache::site_search");
  const std::uint32_t home = geometry_.set_index(primary.block_addr);

  for (std::uint32_t d : distances_) {
    if (primary.replica_count >= target) break;
    const std::uint32_t set = (home + d) % geometry_.num_sets();

    // An existing replica of this block in the site already counts.
    IcrLine* base = set_base(set);
    bool already_here = false;
    for (std::uint32_t w = 0; w < geometry_.associativity; ++w) {
      if (base[w].valid && base[w].replica &&
          base[w].block_addr == primary.block_addr) {
        already_here = true;
        break;
      }
    }
    if (already_here) continue;

    IcrLine* victim = select_replica_victim(set, primary.block_addr, cycle);
    if (victim == nullptr) continue;
    const bool dead_primary = victim->valid && !victim->replica;
    const bool dead_dirty = dead_primary && victim->dirty;
    const std::uint64_t displaced_block = victim->block_addr;
    const std::uint64_t idle_cycles =
        cycle - std::min(cycle, victim->last_access_cycle);
    evict_line(*victim, cycle);
    if (dead_dirty) ++stats_.dead_victim_writebacks;
    if (dead_primary && trace_ != nullptr &&
        trace_->wants(obs::EventCategory::kDecay)) {
      trace_->emit(obs::EventKind::kDeadBlockRecycle, cycle, displaced_block,
                   set, idle_cycles);
    }

    victim->valid = true;
    victim->replica = true;
    victim->dirty = false;
    victim->replica_count = 0;
    victim->block_addr = primary.block_addr;
    victim->data = primary.data;
    victim->lru_stamp = ++lru_clock_;
    victim->last_access_cycle = cycle;
    // Replicas are parity protected (§3.1); copy the primary's current
    // parity so a corrupted primary word is never laundered into a "clean"
    // replica, and recompute ECC for completeness.
    victim->parity = primary.parity;
    for (std::uint32_t w = 0; w < geometry_.words_per_line(); ++w) {
      victim->ecc[w] = primary.ecc[w];
    }

    ++primary.replica_count;
    if (rel_ != nullptr) rel_->on_replica_create(primary.block_addr, cycle);
    ++stats_.replicas_created;
    ++stats_.l1_write_accesses;  // the duplicate write
    if (site_distance_hist_ != nullptr) site_distance_hist_->record(d);
    if (trace_ != nullptr && trace_->wants(obs::EventCategory::kReplication)) {
      trace_->emit(obs::EventKind::kReplicaCreate, cycle, primary.block_addr,
                   set, d);
    }
  }

  const std::uint32_t created = primary.replica_count - before;
  if (created > 0) {
    ++stats_.replication_successes;
  } else {
    ++stats_.site_search_failures;
  }
  if (created >= 1) ++stats_.opportunities_with_one;
  if (created >= 2) ++stats_.opportunities_with_two;
  if (trace_ != nullptr && trace_->wants(obs::EventCategory::kReplication)) {
    trace_->emit(obs::EventKind::kReplicationAttempt, cycle,
                 primary.block_addr, created, target);
  }
}

void IcrCache::verify_and_recover(IcrLine& line, std::uint32_t word_index,
                                  std::uint64_t cycle,
                                  AccessOutcome& outcome) {
  ICR_PROF_ZONE_HOT("IcrCache::verify_and_recover");
  std::uint64_t word = read_word(line, word_index);

  if (parity_regime(line)) {
    ++stats_.parity_computations;
    if (parity_ok(word, line.parity[word_index])) {
      outcome.value = word;
      return;
    }
    ++stats_.errors_detected;
    outcome.error_detected = true;

    if (scheme_.replication_enabled && line.replica_count > 0) {
      if (scheme_.lookup == LookupMode::kSerial) {
        outcome.latency += 1;  // the serial replica probe (§3.2)
      }
      ++stats_.l1_read_accesses;  // replica array read
      for (IcrLine* replica : find_replicas(line.block_addr)) {
        const std::uint64_t rep_word = read_word(*replica, word_index);
        ++stats_.parity_computations;
        if (parity_ok(rep_word, replica->parity[word_index])) {
          ++stats_.errors_corrected_by_replica;
          outcome.error_recovered = true;
          outcome.recovery = AccessOutcome::Recovery::kReplica;
          outcome.value = rep_word;
          write_word(line, word_index, rep_word);  // repair the primary
          if (rel_ != nullptr) {
            rel_->on_repair_word(line.block_addr, word_index, cycle);
          }
          return;
        }
      }
      // Replica(s) corrupt as well; fall through to the unreplicated path.
    }

    if (!line.dirty) {
      // Clean block: refetch from deeper in the hierarchy (§3.1 [12]).
      outcome.latency +=
          next_.fetch_block(line.block_addr, cycle);
      fill_from_backing(line, line.block_addr);
      ++stats_.errors_refetched_from_l2;
      if (rel_ != nullptr) rel_->on_refetch(line.block_addr, cycle);
      outcome.error_recovered = true;
      outcome.recovery = AccessOutcome::Recovery::kRefetch;
      outcome.value = read_word(line, word_index);
      return;
    }
    // Dirty: a Kim&Somani duplication buffer, if attached, is the last
    // line of defence before the data is declared lost.
    if (rcache_ != nullptr) {
      const std::uint64_t word_addr = line.block_addr + word_index * 8ULL;
      if (const auto dup = rcache_->lookup(word_addr, /*for_recovery=*/true)) {
        ++stats_.errors_corrected_by_rcache;
        outcome.latency += 1;  // the R-Cache probe
        outcome.error_recovered = true;
        outcome.recovery = AccessOutcome::Recovery::kRcache;
        outcome.value = *dup;
        write_word(line, word_index, *dup);
        if (rel_ != nullptr) {
          rel_->on_repair_word(line.block_addr, word_index, cycle);
        }
        return;
      }
    }
    // Dirty, unreplicated, parity-only: the data is lost.
    ++stats_.unrecoverable_loads;
    outcome.unrecoverable = true;
    outcome.value = word;
    // The corrupted value is now the architectural value; commit protection
    // over it so every later load does not re-count the same strike.
    refresh_protection(line, word_index);
    return;
  }

  // ECC regime (unreplicated line under an ECC scheme, or Base ECC).
  ++stats_.ecc_computations;
  const SecDedResult result = secded_decode(word, line.ecc[word_index]);
  switch (result.status) {
    case SecDedStatus::kClean:
      outcome.value = word;
      return;
    case SecDedStatus::kCorrectedData:
    case SecDedStatus::kCorrectedCheck:
      ++stats_.errors_detected;
      ++stats_.errors_corrected_by_ecc;
      outcome.error_detected = true;
      outcome.error_recovered = true;
      outcome.recovery = AccessOutcome::Recovery::kEcc;
      outcome.value = result.data;
      write_word(line, word_index, result.data);
      if (rel_ != nullptr) {
        rel_->on_repair_word(line.block_addr, word_index, cycle);
      }
      return;
    case SecDedStatus::kDetectedDouble:
      ++stats_.errors_detected;
      outcome.error_detected = true;
      if (line.dirty && rcache_ != nullptr) {
        const std::uint64_t word_addr = line.block_addr + word_index * 8ULL;
        if (const auto dup =
                rcache_->lookup(word_addr, /*for_recovery=*/true)) {
          ++stats_.errors_corrected_by_rcache;
          outcome.latency += 1;
          outcome.error_recovered = true;
          outcome.recovery = AccessOutcome::Recovery::kRcache;
          outcome.value = *dup;
          write_word(line, word_index, *dup);
          if (rel_ != nullptr) {
            rel_->on_repair_word(line.block_addr, word_index, cycle);
          }
          return;
        }
      }
      if (!line.dirty) {
        outcome.latency += next_.fetch_block(line.block_addr, cycle);
        fill_from_backing(line, line.block_addr);
        ++stats_.errors_refetched_from_l2;
        if (rel_ != nullptr) rel_->on_refetch(line.block_addr, cycle);
        outcome.error_recovered = true;
        outcome.recovery = AccessOutcome::Recovery::kRefetch;
        outcome.value = read_word(line, word_index);
        return;
      }
      ++stats_.unrecoverable_loads;
      outcome.unrecoverable = true;
      outcome.value = word;
      refresh_protection(line, word_index);
      return;
  }
}

IcrCache::AccessOutcome IcrCache::load(std::uint64_t addr,
                                       std::uint64_t cycle) {
  ICR_PROF_ZONE_HOT("IcrCache::load");
  AccessOutcome outcome;
  ++stats_.loads;
  ++stats_.l1_read_accesses;
  const std::uint64_t block = geometry_.block_address(addr);
  const std::uint32_t word_index = geometry_.line_offset(addr) / 8;

  if (IcrLine* primary = find_primary(block)) {
    ++stats_.load_hits;
    if (scheme_.replication_enabled && primary->replica_count > 0) {
      ++stats_.loads_with_replica;
    }
    outcome.hit = true;
    outcome.latency = load_hit_latency(*primary);
    touch(*primary, cycle);
    if (rel_ != nullptr) {
      rel_->on_read(block, word_index, primary->dirty,
                    parity_regime(*primary), cycle);
    }
    verify_and_recover(*primary, word_index, cycle, outcome);
    return outcome;
  }

  ++stats_.load_misses;

  // §5.6 performance mode: a surviving (orphan) replica can service the
  // primary miss at +1 cycle instead of the L2 round trip.
  if (scheme_.replication_enabled && scheme_.leave_replicas_on_eviction) {
    const std::vector<IcrLine*> orphans = find_replicas(block);
    if (!orphans.empty()) {
      ++stats_.replica_fills;
      outcome.replica_fill = true;
      // Stage the replica's bits before allocation (LRU may pick it).
      const std::vector<std::uint8_t> data = orphans.front()->data;
      const std::vector<std::uint8_t> parity = orphans.front()->parity;
      IcrLine& slot = allocate_primary_slot(block, cycle);
      slot.valid = true;
      slot.replica = false;
      slot.dirty = false;
      slot.block_addr = block;
      slot.data = data;
      slot.parity = parity;  // keep stale parity: corruption must stay visible
      for (std::uint32_t w = 0; w < geometry_.words_per_line(); ++w) {
        slot.ecc[w] = secded_encode(read_word(slot, w));
      }
      slot.replica_count =
          static_cast<std::uint8_t>(find_replicas(block).size());
      touch(slot, cycle);
      ++stats_.l1_write_accesses;
      if (rel_ != nullptr) rel_->on_fill(block, slot.replica_count, cycle);
      outcome.latency = load_hit_latency(slot) + 1;
      if (scheme_.trigger == ReplicateOn::kLoadsAndStores) {
        attempt_replication(slot, cycle);
      }
      if (rel_ != nullptr) {
        rel_->on_read(block, word_index, slot.dirty, parity_regime(slot),
                      cycle);
      }
      verify_and_recover(slot, word_index, cycle, outcome);
      if (miss_latency_hist_ != nullptr) {
        miss_latency_hist_->record(outcome.latency);
      }
      return outcome;
    }
  }

  // In write-through mode the miss queues behind any buffered drains for
  // the L2 port (§5.8's write-through slowdown).
  if (write_buffer_ != nullptr) {
    outcome.latency += write_buffer_->pending_drain_delay(cycle);
  }
  outcome.latency += 1 + next_.fetch_block(block, cycle);
  IcrLine& slot = allocate_primary_slot(block, cycle);
  slot.valid = true;
  slot.replica = false;
  slot.dirty = false;
  slot.block_addr = block;
  fill_from_backing(slot, block);
  slot.replica_count =
      scheme_.leave_replicas_on_eviction
          ? static_cast<std::uint8_t>(find_replicas(block).size())
          : 0;
  touch(slot, cycle);
  ++stats_.l1_write_accesses;
  if (rel_ != nullptr) rel_->on_fill(block, slot.replica_count, cycle);
  if (scheme_.replication_enabled &&
      scheme_.trigger == ReplicateOn::kLoadsAndStores) {
    attempt_replication(slot, cycle);
  }
  if (rel_ != nullptr) {
    rel_->on_read(block, word_index, slot.dirty, parity_regime(slot), cycle);
  }
  verify_and_recover(slot, word_index, cycle, outcome);
  if (miss_latency_hist_ != nullptr) {
    miss_latency_hist_->record(outcome.latency);
  }
  return outcome;
}

IcrCache::AccessOutcome IcrCache::store(std::uint64_t addr,
                                        std::uint64_t value,
                                        std::uint64_t cycle) {
  ICR_PROF_ZONE_HOT("IcrCache::store");
  AccessOutcome outcome;
  ++stats_.stores;
  ++stats_.l1_write_accesses;
  const std::uint64_t block = geometry_.block_address(addr);
  const std::uint32_t word_index = geometry_.line_offset(addr) / 8;

  IcrLine* primary = find_primary(block);
  outcome.hit = primary != nullptr;
  if (primary == nullptr) {
    ++stats_.store_misses;
    // Write-allocate; the fill happens in the background (stores are
    // buffered, §3.2), so it does not lengthen the store's 1-cycle latency.
    next_.fetch_block(block, cycle);
    IcrLine& slot = allocate_primary_slot(block, cycle);
    slot.valid = true;
    slot.replica = false;
    slot.dirty = false;
    slot.block_addr = block;
    fill_from_backing(slot, block);
    slot.replica_count =
        scheme_.leave_replicas_on_eviction
            ? static_cast<std::uint8_t>(find_replicas(block).size())
            : 0;
    // The fill triggered by a store miss is not a separate replication
    // opportunity: the store itself attempts below ("upon a load miss or a
    // store", §4.1).
    if (rel_ != nullptr) rel_->on_fill(block, slot.replica_count, cycle);
    primary = &slot;
  } else {
    ++stats_.store_hits;
  }

  touch(*primary, cycle);
  write_word(*primary, word_index, value);
  if (rcache_ != nullptr) {
    rcache_->record(addr, value);  // duplicate-on-write baseline
  }
  if (parity_regime(*primary)) {
    ++stats_.parity_computations;  // encode cost on the store path
  } else {
    ++stats_.ecc_computations;
  }

  outcome.latency = 1;

  if (scheme_.write_policy == WritePolicy::kWriteBack) {
    primary->dirty = true;
  } else {
    // Write-through: the word also travels to L2 via the coalescing buffer.
    next_.backing().write_word(addr, value);
    outcome.latency += write_buffer_->push(block, cycle);
  }
  if (rel_ != nullptr) {
    rel_->on_write(block, word_index, primary->dirty, cycle);
  }

  // Keep every replica coherent with the primary (§3.1: "updating both the
  // original and the replicas").
  if (scheme_.replication_enabled && primary->replica_count > 0) {
    for (IcrLine* replica : find_replicas(block)) {
      write_word(*replica, word_index, value);
      ++stats_.parity_computations;
      ++stats_.replica_updates;
      ++stats_.l1_write_accesses;
    }
  }

  // Both S and LS replicate at stores (§3.1 mechanism (ii)).
  if (scheme_.replication_enabled) {
    attempt_replication(*primary, cycle);
  }
  return outcome;
}

void IcrCache::advance_scrubber(std::uint64_t cycle) {
  if (scheme_.scrub_interval == 0 || cycle < next_scrub_cycle_) return;
  ICR_PROF_ZONE_HOT("IcrCache::scrub");
  next_scrub_cycle_ = cycle + scheme_.scrub_interval;

  const std::uint32_t set = scrub_cursor_;
  scrub_cursor_ = (scrub_cursor_ + 1) % geometry_.num_sets();
  IcrLine* base = set_base(set);
  for (std::uint32_t w = 0; w < geometry_.associativity; ++w) {
    IcrLine& line = base[w];
    if (!line.valid || line.replica) continue;  // replicas verified via primaries
    ++stats_.scrub_lines_checked;
    ++stats_.l1_read_accesses;
    if (rel_ != nullptr) {
      rel_->on_scrub_visit(line.block_addr, line.dirty, parity_regime(line),
                           cycle);
    }
    for (std::uint32_t word = 0; word < geometry_.words_per_line(); ++word) {
      const std::uint64_t value = read_word(line, word);
      if (parity_regime(line)) {
        ++stats_.parity_computations;
        if (parity_ok(value, line.parity[word])) continue;
      } else {
        ++stats_.ecc_computations;
        const SecDedResult r = secded_decode(value, line.ecc[word]);
        if (r.status == SecDedStatus::kClean) continue;
        if (r.status == SecDedStatus::kCorrectedData ||
            r.status == SecDedStatus::kCorrectedCheck) {
          write_word(line, word, r.data);
          ++stats_.scrub_corrections;
          continue;
        }
        // Double-bit: fall through to the replica/refetch ladder.
      }
      // Try a clean replica first.
      bool repaired = false;
      if (scheme_.replication_enabled && line.replica_count > 0) {
        for (IcrLine* replica : find_replicas(line.block_addr)) {
          const std::uint64_t rep = read_word(*replica, word);
          ++stats_.parity_computations;
          if (parity_ok(rep, replica->parity[word])) {
            write_word(line, word, rep);
            ++stats_.scrub_corrections;
            repaired = true;
            break;
          }
        }
      }
      if (repaired) continue;
      if (!line.dirty) {
        next_.fetch_block(line.block_addr, cycle);  // off the critical path
        fill_from_backing(line, line.block_addr);
        ++stats_.scrub_corrections;
        continue;
      }
      // Dirty with no good copy: the scrubber cannot invent the lost bits.
      // The stale parity is left in place so a consuming load still detects
      // the error (counted once per scrub visit in this statistic).
      ++stats_.scrub_uncorrectable;
    }
  }
}

std::uint64_t IcrCache::resident_replicas() const noexcept {
  std::uint64_t count = 0;
  for (const IcrLine& l : lines_) {
    if (l.valid && l.replica) ++count;
  }
  return count;
}

std::vector<std::uint32_t> IcrCache::replica_occupancy() const {
  std::vector<std::uint32_t> occupancy(geometry_.num_sets(), 0);
  for (std::uint32_t s = 0; s < geometry_.num_sets(); ++s) {
    const IcrLine* base = set_base(s);
    for (std::uint32_t w = 0; w < geometry_.associativity; ++w) {
      if (base[w].valid && base[w].replica) ++occupancy[s];
    }
  }
  return occupancy;
}

void IcrCache::attach_observability(obs::StatRegistry* registry,
                                    obs::EventTrace* trace) {
  trace_ = trace;
  if (registry == nullptr) return;
  const struct {
    const char* name;
    const std::uint64_t* source;
  } counters[] = {
      {"dl1.loads", &stats_.loads},
      {"dl1.load_hits", &stats_.load_hits},
      {"dl1.load_misses", &stats_.load_misses},
      {"dl1.stores", &stats_.stores},
      {"dl1.store_hits", &stats_.store_hits},
      {"dl1.store_misses", &stats_.store_misses},
      {"dl1.loads_with_replica", &stats_.loads_with_replica},
      {"dl1.replica_fills", &stats_.replica_fills},
      {"dl1.replication.opportunities", &stats_.replication_opportunities},
      {"dl1.replication.successes", &stats_.replication_successes},
      {"dl1.replication.with_one", &stats_.opportunities_with_one},
      {"dl1.replication.with_two", &stats_.opportunities_with_two},
      {"dl1.replication.created", &stats_.replicas_created},
      {"dl1.replication.site_searches", &stats_.site_searches},
      {"dl1.replication.site_search_failures", &stats_.site_search_failures},
      {"dl1.evictions", &stats_.evictions},
      {"dl1.writebacks", &stats_.writebacks},
      {"dl1.replica_evictions", &stats_.replica_evictions},
      {"dl1.dead_victim_writebacks", &stats_.dead_victim_writebacks},
      {"dl1.errors.detected", &stats_.errors_detected},
      {"dl1.errors.corrected_by_replica", &stats_.errors_corrected_by_replica},
      {"dl1.errors.corrected_by_ecc", &stats_.errors_corrected_by_ecc},
      {"dl1.errors.corrected_by_rcache", &stats_.errors_corrected_by_rcache},
      {"dl1.errors.refetched_from_l2", &stats_.errors_refetched_from_l2},
      {"dl1.errors.unrecoverable_loads", &stats_.unrecoverable_loads},
      {"dl1.scrub.lines_checked", &stats_.scrub_lines_checked},
      {"dl1.scrub.corrections", &stats_.scrub_corrections},
      {"dl1.scrub.uncorrectable", &stats_.scrub_uncorrectable},
      {"dl1.parity_computations", &stats_.parity_computations},
      {"dl1.ecc_computations", &stats_.ecc_computations},
      {"dl1.replica_updates", &stats_.replica_updates},
      {"dl1.l1_read_accesses", &stats_.l1_read_accesses},
      {"dl1.l1_write_accesses", &stats_.l1_write_accesses},
      {"dbp.queries", &dbp_.stats().queries},
      {"dbp.dead_predictions", &dbp_.stats().dead_predictions},
  };
  for (const auto& c : counters) registry->register_counter(c.name, c.source);
  registry->register_gauge("dl1.resident_replicas",
                           [this] { return resident_replicas(); });
  site_distance_hist_ = registry->histogram("dl1.site_distance");
  miss_latency_hist_ = registry->histogram("dl1.miss_latency");
}

void IcrCache::flip_data_bit(std::uint32_t set, std::uint32_t way,
                             std::uint32_t byte_index, std::uint32_t bit) {
  IcrLine& l = set_base(set)[way];
  ICR_CHECK(byte_index < geometry_.line_bytes && bit < 8);
  l.data[byte_index] = static_cast<std::uint8_t>(l.data[byte_index] ^
                                                 (1U << bit));
}

void IcrCache::flip_check_bit(std::uint32_t set, std::uint32_t way,
                              std::uint32_t word_index, std::uint32_t bit,
                              bool ecc_array) {
  IcrLine& l = set_base(set)[way];
  ICR_CHECK(word_index < geometry_.words_per_line() && bit < 8);
  auto& arr = ecc_array ? l.ecc : l.parity;
  arr[word_index] = static_cast<std::uint8_t>(arr[word_index] ^ (1U << bit));
}

void IcrCache::check_invariants() const {
  auto* self = const_cast<IcrCache*>(this);
  for (std::uint32_t s = 0; s < geometry_.num_sets(); ++s) {
    const IcrLine* base = set_base(s);
    for (std::uint32_t w = 0; w < geometry_.associativity; ++w) {
      const IcrLine& l = base[w];
      if (!l.valid) continue;
      // A disabled way never holds a valid line.
      ICR_CHECK(!way_disabled(s, w));
      if (l.replica) {
        ICR_CHECK(!l.dirty);
        ICR_CHECK(l.replica_count == 0);
        // A replica must sit at a candidate distance from its home set.
        const std::uint32_t home = geometry_.set_index(l.block_addr);
        bool at_candidate = false;
        for (std::uint32_t d : distances_) {
          if ((home + d) % geometry_.num_sets() == s) at_candidate = true;
        }
        ICR_CHECK(at_candidate);
      } else {
        // Exactly one primary per block.
        for (std::uint32_t w2 = w + 1; w2 < geometry_.associativity; ++w2) {
          if (base[w2].valid && !base[w2].replica) {
            ICR_CHECK(base[w2].block_addr != l.block_addr);
          }
        }
        const auto replicas = self->find_replicas(l.block_addr);
        ICR_CHECK(l.replica_count == replicas.size());
      }
    }
  }
}

}  // namespace icr::core
