// Where and how aggressively to place replicas (paper §3.1).
//
// Replica sites are searched with "distance-k" addressing: the replica of a
// block whose primary lives in set m is placed in set (m + k) mod N. The
// paper's two headline instances are vertical replication (k = N/2, across
// sets) and horizontal replication (k = 0, within the ways of the same set).
// When the first site has no suitable victim, a fallback strategy may probe
// further sites (multi-attempt list or the power-2 ladder); with
// multiple replicas requested, each successful site in the sequence hosts
// one copy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace icr::core {

// Distance expressed relative to the number of sets so one policy object
// works for any cache geometry.
struct Distance {
  enum class Kind : std::uint8_t {
    kAbsolute,     // value sets
    kHalfSets,     // N/2   (vertical replication)
    kQuarterSets,  // N/4
    kZero,         // 0     (horizontal replication)
  };
  Kind kind = Kind::kHalfSets;
  std::uint32_t value = 0;  // used by kAbsolute

  [[nodiscard]] std::uint32_t resolve(std::uint32_t num_sets) const noexcept;

  [[nodiscard]] static Distance half() noexcept {
    return {Kind::kHalfSets, 0};
  }
  [[nodiscard]] static Distance quarter() noexcept {
    return {Kind::kQuarterSets, 0};
  }
  [[nodiscard]] static Distance zero() noexcept { return {Kind::kZero, 0}; }
  [[nodiscard]] static Distance absolute(std::uint32_t sets) noexcept {
    return {Kind::kAbsolute, sets};
  }
};

// How to pick the victim way for a replica inside the chosen set (§3.1
// "How do we place a replica in a set?"). Live primary copies are never
// evicted for a replica under any policy.
enum class ReplicaVictimPolicy : std::uint8_t {
  kDeadOnly,      // LRU among dead primary blocks only
  kReplicaOnly,   // LRU among existing replicas only
  kDeadFirst,     // dead blocks first, then replicas
  kReplicaFirst,  // replicas first, then dead blocks
};

[[nodiscard]] const char* to_string(ReplicaVictimPolicy policy) noexcept;

// Fallback when the first site cannot host the replica.
enum class FallbackStrategy : std::uint8_t {
  kNone,          // single attempt: give up
  kMultiAttempt,  // probe an explicit list of further distances
  kPower2,        // ladder: k, k-k/2, k-k/2-k/4, ... (§3.1 "power-2")
};

struct ReplicationConfig {
  std::uint32_t num_replicas = 1;   // copies beyond the primary
  Distance first_distance = Distance::half();
  FallbackStrategy fallback = FallbackStrategy::kNone;
  // kMultiAttempt: distances probed after first_distance (paper: {N/4}).
  std::vector<Distance> extra_attempts;
  // kPower2: total number of sites probed (including the first).
  std::uint32_t max_attempts = 4;
};

// Expands a ReplicationConfig into the ordered list of candidate distances
// (in sets) to probe for a given cache geometry. Duplicate sites are
// removed, preserving order.
[[nodiscard]] std::vector<std::uint32_t> candidate_distances(
    const ReplicationConfig& config, std::uint32_t num_sets);

}  // namespace icr::core
