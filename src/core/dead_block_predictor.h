// Decay-counter dead-block prediction (Kaxiras et al., ISCA 2001), as used
// by the paper (§2): each cache line carries a 2-bit saturating counter that
// is incremented at every global timer tick and reset by any access to the
// line. When the counter saturates the block is declared dead and its space
// may be recycled to hold replicas.
//
// The timer tick period is decay_window / 4, so a line is dead once roughly
// `decay_window` cycles have elapsed since its last access (four ticks of a
// 2-bit counter). A window of zero is the paper's "aggressive" setting: a
// block is dead as soon as its access completes, i.e. any line not accessed
// in the current cycle is a replica candidate.
//
// The counters are evaluated lazily from per-line last-access timestamps;
// this is arithmetically identical to materialised counters (verified by
// unit test) and costs no per-tick sweep.
#pragma once

#include <cstdint>

namespace icr::core {

struct DbpStats {
  std::uint64_t queries = 0;           // is_dead evaluations
  std::uint64_t dead_predictions = 0;  // queries answering "dead"
};

class DeadBlockPredictor {
 public:
  explicit DeadBlockPredictor(std::uint64_t decay_window = 0) noexcept;

  // The 2-bit counter value a line last touched at `last_access` would show
  // at time `now` (saturates at kSaturated).
  [[nodiscard]] std::uint32_t counter_value(std::uint64_t last_access,
                                            std::uint64_t now) const noexcept;

  // True iff the line is predicted dead at `now`.
  [[nodiscard]] bool is_dead(std::uint64_t last_access,
                             std::uint64_t now) const noexcept;

  [[nodiscard]] const DbpStats& stats() const noexcept { return stats_; }

  [[nodiscard]] std::uint64_t decay_window() const noexcept { return window_; }
  [[nodiscard]] std::uint64_t tick_period() const noexcept { return tick_; }

  // Counter value at which a block is declared dead (2-bit counter that has
  // been incremented through its full range).
  static constexpr std::uint32_t kSaturated = 4;

 private:
  std::uint64_t window_;
  std::uint64_t tick_;  // window / 4, min 1 (unused when window == 0)
  // Diagnostics only — mutable so the logically-const predicate can count
  // its own invocations without perturbing any caller.
  mutable DbpStats stats_;
};

}  // namespace icr::core
