#include "src/core/replication_hints.h"

#include "src/util/check.h"

namespace icr::core {

void ReplicationHints::add_range(std::uint64_t begin, std::uint64_t end,
                                 std::uint8_t max_replicas) {
  ICR_CHECK(begin < end);
  ranges_.push_back(Range{begin, end, max_replicas});
}

std::optional<std::uint8_t> ReplicationHints::quota_for(
    std::uint64_t addr) const noexcept {
  // Later ranges take precedence: scan backwards, first hit wins.
  for (auto it = ranges_.rbegin(); it != ranges_.rend(); ++it) {
    if (addr >= it->begin && addr < it->end) return it->max_replicas;
  }
  return std::nullopt;
}

}  // namespace icr::core
