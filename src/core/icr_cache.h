// The ICR data L1 cache: the paper's primary contribution.
//
// A set-associative write-back (or write-through, §5.8) L1 data cache that
// keeps real 64-byte data payloads, byte-granularity parity per 64-bit word,
// and SEC-DED check bits per word; and that implements In-Cache Replication:
// blocks predicted dead by the decay counters are recycled to hold replicas
// of blocks in active use. All ten §3.2 schemes are expressed through the
// `Scheme` knobs; error detection and recovery operate on genuinely stored
// (and genuinely corruptible) bits.
//
// Latency contract (loads; stores are always 1 cycle, they are buffered):
//   Base parity hit ........................ 1 cycle
//   Base ECC hit ........................... 2 cycles (1 if speculative)
//   ICR hit, line replicated, PS lookup .... 1 cycle (parity only)
//   ICR hit, line replicated, PP lookup .... 2 cycles (parallel compare)
//   ICR hit, unreplicated line ............. 1 (P) or 2 (ECC) cycles
//   + 1 cycle when a PS parity error consults the replica
//   + L2/memory latency when recovery must refetch a clean block
// Misses add the MemoryHierarchy fetch latency; in the leave-replica
// performance mode (§5.6) a primary miss served by a surviving replica
// costs only +1 cycle instead of the L2 round trip.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/baselines/rcache.h"
#include "src/core/dead_block_predictor.h"
#include "src/core/replication_hints.h"
#include "src/core/replication_policy.h"
#include "src/core/scheme.h"
#include "src/mem/cache_geometry.h"
#include "src/mem/memory_hierarchy.h"
#include "src/mem/write_buffer.h"
#include "src/obs/event_trace.h"
#include "src/obs/stat_registry.h"

namespace icr::rel {
class RelTracker;
}  // namespace icr::rel

namespace icr::core {

// One dL1 line: payload, per-word protection, and ICR metadata.
struct IcrLine {
  bool valid = false;
  bool dirty = false;
  bool replica = false;          // replica copy (paper's 1-bit overhead)
  std::uint8_t replica_count = 0;  // primaries: live replicas of this block
  std::uint64_t block_addr = 0;
  std::uint64_t lru_stamp = 0;
  std::uint64_t last_access_cycle = 0;
  std::vector<std::uint8_t> data;    // line_bytes
  std::vector<std::uint8_t> parity;  // one byte-parity vector per 64-bit word
  std::vector<std::uint8_t> ecc;     // one SEC-DED check byte per 64-bit word
};

struct IcrStats {
  std::uint64_t loads = 0;
  std::uint64_t load_hits = 0;
  std::uint64_t load_misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t store_hits = 0;
  std::uint64_t store_misses = 0;

  std::uint64_t loads_with_replica = 0;  // read hits whose line had a replica
  std::uint64_t replica_fills = 0;       // misses served by orphan replicas

  // Replication-ability accounting (paper §4.1): the denominator is every
  // replication opportunity — each store (S / LS) and each load-miss fill
  // (LS only); the numerator counts opportunities that created at least one
  // new replica. A store to a block that already carries its full replica
  // complement merely refreshes the copies and is not a new replication.
  std::uint64_t replication_opportunities = 0;
  std::uint64_t replication_successes = 0;  // opportunities creating >=1 copy
  std::uint64_t opportunities_with_one = 0;  // creating >=1 new replica
  std::uint64_t opportunities_with_two = 0;  // creating >=2 new replicas
  std::uint64_t replicas_created = 0;
  // Site-level search diagnostics: searches run (block lacked a replica)
  // and searches that found no victim under the §3.1 policy.
  std::uint64_t site_searches = 0;
  std::uint64_t site_search_failures = 0;

  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t replica_evictions = 0;
  std::uint64_t dead_victim_writebacks = 0;  // dirty dead blocks displaced

  std::uint64_t errors_detected = 0;
  std::uint64_t errors_corrected_by_replica = 0;
  std::uint64_t errors_corrected_by_ecc = 0;
  std::uint64_t errors_corrected_by_rcache = 0;
  std::uint64_t errors_refetched_from_l2 = 0;
  std::uint64_t unrecoverable_loads = 0;

  // Background scrubbing (extension).
  std::uint64_t scrub_lines_checked = 0;
  std::uint64_t scrub_corrections = 0;      // repaired before any load saw it
  std::uint64_t scrub_uncorrectable = 0;    // found but unrepairable (dirty)

  std::uint64_t parity_computations = 0;
  std::uint64_t ecc_computations = 0;
  std::uint64_t replica_updates = 0;  // extra L1 writes keeping replicas fresh
  std::uint64_t l1_read_accesses = 0;
  std::uint64_t l1_write_accesses = 0;

  [[nodiscard]] std::uint64_t accesses() const noexcept {
    return loads + stores;
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return load_misses + store_misses;
  }
  [[nodiscard]] double miss_rate() const noexcept {
    return accesses() == 0 ? 0.0
                           : static_cast<double>(misses()) /
                                 static_cast<double>(accesses());
  }
  [[nodiscard]] double replication_ability() const noexcept {
    return replication_opportunities == 0
               ? 0.0
               : static_cast<double>(replication_successes) /
                     static_cast<double>(replication_opportunities);
  }
  // Fraction of opportunities that created at least one (resp. two) new
  // replicas in a single event (paper Fig. 3's "ability to create just one
  // replica / to successfully create two replicas").
  [[nodiscard]] double multi_replica_fraction(bool two) const noexcept {
    const std::uint64_t num = two ? opportunities_with_two : opportunities_with_one;
    return replication_opportunities == 0
               ? 0.0
               : static_cast<double>(num) /
                     static_cast<double>(replication_opportunities);
  }
  [[nodiscard]] double loads_with_replica_fraction() const noexcept {
    return load_hits == 0 ? 0.0
                          : static_cast<double>(loads_with_replica) /
                                static_cast<double>(load_hits);
  }
  [[nodiscard]] double unrecoverable_load_fraction() const noexcept {
    return loads == 0 ? 0.0
                      : static_cast<double>(unrecoverable_loads) /
                            static_cast<double>(loads);
  }
};

class IcrCache {
 public:
  // `way_disable` masks faulty ways out of the array (degraded-geometry
  // mode): a disabled way is never allocated, never searched as a
  // replication site, and never holds a valid line. Default: none disabled.
  IcrCache(mem::CacheGeometry geometry, Scheme scheme,
           mem::MemoryHierarchy& next,
           mem::WayDisableConfig way_disable = {});

  struct AccessOutcome {
    // Which rung of the recovery ladder produced the delivered value (set
    // only when error_recovered is true).
    enum class Recovery : std::uint8_t {
      kNone,
      kReplica,  // clean in-cache replica
      kEcc,      // SEC-DED single-bit correction
      kRcache,   // Kim&Somani duplication buffer
      kRefetch,  // clean block refetched from L2/memory
    };

    std::uint32_t latency = 0;  // cycles this access occupies the pipeline
    bool hit = false;
    bool replica_fill = false;
    bool error_detected = false;
    bool error_recovered = false;
    bool unrecoverable = false;
    Recovery recovery = Recovery::kNone;
    std::uint64_t value = 0;  // the 64-bit word delivered (loads)
  };

  // 64-bit word load / store at `addr` (8-byte aligned) at time `cycle`.
  AccessOutcome load(std::uint64_t addr, std::uint64_t cycle);
  AccessOutcome store(std::uint64_t addr, std::uint64_t value,
                      std::uint64_t cycle);

  // Advances the background scrubber (call once per cycle; no-op unless the
  // scheme enables scrubbing and the interval elapsed). Each activation
  // verifies every word of one set and repairs what it can — from a clean
  // replica, via SEC-DED, or by refetching a clean block from L2. Dirty
  // parity-only words with no good copy are uncorrectable; their stale
  // parity is left in place so the consuming load still detects the loss.
  void advance_scrubber(std::uint64_t cycle);

  // ---- fault-injection surface ----
  [[nodiscard]] std::uint32_t num_sets() const noexcept {
    return geometry_.num_sets();
  }
  [[nodiscard]] std::uint32_t ways() const noexcept {
    return geometry_.associativity;
  }
  [[nodiscard]] const IcrLine& line(std::uint32_t set,
                                    std::uint32_t way) const noexcept;
  // Flips one stored data bit; protection bits are intentionally left stale —
  // that is exactly what a particle strike does.
  void flip_data_bit(std::uint32_t set, std::uint32_t way,
                     std::uint32_t byte_index, std::uint32_t bit);
  // Flips one stored parity or ECC bit (word-granularity check byte).
  void flip_check_bit(std::uint32_t set, std::uint32_t way,
                      std::uint32_t word_index, std::uint32_t bit,
                      bool ecc_array);

  [[nodiscard]] const IcrStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Scheme& scheme() const noexcept { return scheme_; }
  [[nodiscard]] const mem::CacheGeometry& geometry() const noexcept {
    return geometry_;
  }
  [[nodiscard]] const DeadBlockPredictor& dead_block_predictor()
      const noexcept {
    return dbp_;
  }
  [[nodiscard]] const mem::WriteBuffer* write_buffer() const noexcept {
    return write_buffer_.get();
  }

  // Attaches a Kim&Somani-style duplication buffer (baselines::RCache):
  // every store is duplicated into it, and the parity-error recovery ladder
  // consults it before declaring a dirty unreplicated word lost. Pass
  // nullptr to detach. Used by the baseline-comparison bench.
  void attach_rcache(baselines::RCache* rcache) noexcept {
    rcache_ = rcache;
  }

  // Software-directed replication control (§6 future work): per-address-
  // range replica quotas. Pass nullptr to clear. A block covered by a
  // quota-0 range is never replicated (and such events are not counted as
  // replication opportunities — the software opted the data out).
  void set_replication_hints(const ReplicationHints* hints) noexcept {
    hints_ = hints;
  }

  // Number of valid replica lines currently resident (O(cache) scan).
  [[nodiscard]] std::uint64_t resident_replicas() const noexcept;

  // Per-set resident replica counts (heatmap row; O(cache) scan).
  [[nodiscard]] std::vector<std::uint32_t> replica_occupancy() const;

  // Registers this cache's counters/gauges/histograms under "dl1." (and the
  // dead-block predictor under "dbp.") and starts emitting replication /
  // eviction / decay events into `trace`. Either pointer may be null; both
  // must outlive the cache. The hot paths are untouched when detached —
  // counters are registry *views* into stats_, and event emission is behind
  // a null check.
  void attach_observability(obs::StatRegistry* registry,
                            obs::EventTrace* trace);

  // Attaches the analytical reliability tracker (src/rel); pass nullptr to
  // detach. Like observability, the tracker observes without perturbing:
  // every hook sits behind a null check and simulation results are
  // bit-identical with the tracker attached or not (tier-1 guard in
  // tests/rel_tracker_test.cc). The tracker must outlive the cache.
  void attach_rel(rel::RelTracker* rel) noexcept { rel_ = rel; }

  // ---- degraded-geometry surface ----
  // Disabled-way bitmask for `set` (bit w set == way w masked out).
  [[nodiscard]] std::uint32_t disabled_mask(std::uint32_t set) const noexcept {
    return disabled_masks_.empty() ? 0 : disabled_masks_[set];
  }
  [[nodiscard]] bool way_disabled(std::uint32_t set,
                                  std::uint32_t way) const noexcept {
    return (disabled_mask(set) >> way) & 1u;
  }
  // Enabled (allocatable) line count across the whole array.
  [[nodiscard]] std::uint64_t enabled_lines() const noexcept;
  // Disables (set, way) at runtime — the hard-fault mitigation path. The
  // resident line, if any, is flushed (written back when dirty) and
  // invalidated before the way is masked. Throws std::invalid_argument if
  // this would disable the set's last enabled way.
  void disable_way(std::uint32_t set, std::uint32_t way, std::uint64_t cycle);

  // §3.1 replica victim selection inside `set` (never a live primary, never
  // the block's own primary copy, never a disabled way). Returns nullptr if
  // no candidate. Public for the property-test reference scan and the
  // victim-search microbench.
  [[nodiscard]] IcrLine* select_replica_victim(std::uint32_t set,
                                               std::uint64_t block,
                                               std::uint64_t cycle);

  // Aborts if any structural invariant is violated (test hook):
  //  - at most one primary per block;
  //  - every primary's replica_count matches the resident replicas of its
  //    block at the policy's candidate sites;
  //  - replicas are never dirty;
  //  - every replica of block B lives at a candidate distance from B's set;
  //  - no valid line occupies a disabled way.
  void check_invariants() const;

 private:
  [[nodiscard]] IcrLine* set_base(std::uint32_t set) noexcept {
    return &lines_[static_cast<std::size_t>(set) * geometry_.associativity];
  }
  [[nodiscard]] const IcrLine* set_base(std::uint32_t set) const noexcept {
    return &lines_[static_cast<std::size_t>(set) * geometry_.associativity];
  }
  // Set index of a line that lives in lines_ (pointer arithmetic).
  [[nodiscard]] std::uint32_t set_of(const IcrLine& line) const noexcept {
    return static_cast<std::uint32_t>(
        static_cast<std::size_t>(&line - lines_.data()) /
        geometry_.associativity);
  }

  [[nodiscard]] IcrLine* find_primary(std::uint64_t block) noexcept;
  // All resident replicas of `block` at the candidate distance sites.
  [[nodiscard]] std::vector<IcrLine*> find_replicas(std::uint64_t block);

  [[nodiscard]] std::uint64_t read_word(const IcrLine& line,
                                        std::uint32_t word_index) const;
  void write_word(IcrLine& line, std::uint32_t word_index, std::uint64_t value);
  void refresh_protection(IcrLine& line, std::uint32_t word_index);
  void fill_from_backing(IcrLine& line, std::uint64_t block);

  void touch(IcrLine& line, std::uint64_t cycle) noexcept;

  // Evicts `line` (writeback if dirty primary, replica bookkeeping, etc.).
  void evict_line(IcrLine& line, std::uint64_t cycle);

  // Victim by plain LRU over the enabled ways of the natural set; evicts it
  // and returns the now-invalid line.
  IcrLine& allocate_primary_slot(std::uint64_t block, std::uint64_t cycle);

  // One replication attempt for `primary` (counts metrics, walks the
  // candidate distances, installs up to the configured number of replicas).
  void attempt_replication(IcrLine& primary, std::uint64_t cycle);

  [[nodiscard]] std::uint32_t load_hit_latency(
      const IcrLine& line) const noexcept;

  // Parity/ECC verification of the accessed word plus the paper's recovery
  // ladder; updates `outcome` (latency, error flags, delivered value).
  void verify_and_recover(IcrLine& line, std::uint32_t word_index,
                          std::uint64_t cycle, AccessOutcome& outcome);

  // True when the line is protected by parity (replicated lines always are).
  [[nodiscard]] bool parity_regime(const IcrLine& line) const noexcept;

  mem::CacheGeometry geometry_;
  Scheme scheme_;
  // Per-set disabled-way bitmasks; empty when no ways are disabled so the
  // common path stays a single emptiness check.
  std::vector<std::uint32_t> disabled_masks_;
  mem::MemoryHierarchy& next_;
  const ReplicationHints* hints_ = nullptr;
  baselines::RCache* rcache_ = nullptr;
  DeadBlockPredictor dbp_;
  std::vector<std::uint32_t> distances_;
  std::vector<IcrLine> lines_;
  std::unique_ptr<mem::WriteBuffer> write_buffer_;  // write-through only
  std::uint64_t lru_clock_ = 0;
  std::uint32_t scrub_cursor_ = 0;        // next set the scrubber visits
  std::uint64_t next_scrub_cycle_ = 0;
  IcrStats stats_;

  // Observability hooks (all optional; see attach_observability).
  rel::RelTracker* rel_ = nullptr;
  obs::EventTrace* trace_ = nullptr;
  obs::Log2Histogram* site_distance_hist_ = nullptr;  // per created replica
  obs::Log2Histogram* miss_latency_hist_ = nullptr;   // per load miss
};

}  // namespace icr::core
