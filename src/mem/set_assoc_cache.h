// Generic set-associative cache (tags + LRU only, no data payload).
//
// Used for the instruction L1 and the unified L2, where only hit/miss timing
// and writeback traffic matter. The data L1 with ICR replication keeps real
// data payloads and lives in src/core/icr_cache.h.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/mem/cache_geometry.h"

namespace icr::mem {

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;

  [[nodiscard]] double miss_rate() const noexcept {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
};

class SetAssocCache {
 public:
  explicit SetAssocCache(CacheGeometry geometry);

  struct AccessResult {
    bool hit = false;
    // Block address written back to the next level (dirty eviction), if any.
    std::optional<std::uint64_t> writeback;
  };

  // Looks up `addr`; on miss, allocates the block (write-allocate), evicting
  // the LRU way. `is_write` marks the line dirty (write-back policy).
  AccessResult access(std::uint64_t addr, bool is_write, std::uint64_t cycle);

  // Tag check without state change.
  [[nodiscard]] bool probe(std::uint64_t addr) const noexcept;

  // Drops the block if present; returns true if it was dirty.
  bool invalidate(std::uint64_t addr) noexcept;

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const CacheGeometry& geometry() const noexcept {
    return geometry_;
  }

 private:
  struct TagLine {
    bool valid = false;
    bool dirty = false;
    std::uint64_t block_addr = 0;
    std::uint64_t lru_stamp = 0;
  };

  [[nodiscard]] TagLine* find(std::uint64_t block_addr) noexcept;
  [[nodiscard]] const TagLine* find(std::uint64_t block_addr) const noexcept;

  CacheGeometry geometry_;
  std::vector<TagLine> lines_;  // sets * ways, row-major by set
  std::uint64_t lru_clock_ = 0;
  CacheStats stats_;
};

}  // namespace icr::mem
