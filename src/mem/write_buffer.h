// Coalescing write buffer between a write-through L1 and the L2.
//
// Models the structure the paper's §5.8 comparison assumes (after Skadron &
// Clark): stores deposit their block into the buffer; one buffered block
// drains to L2 every `drain_latency` cycles while the buffer is non-empty;
// a store to a block already buffered coalesces for free; a store arriving
// at a full buffer stalls the processor until the oldest entry drains.
#pragma once

#include <cstdint>
#include <deque>

namespace icr::mem {

class WriteBuffer {
 public:
  // `capacity` entries (paper: 8), each drain occupies L2 for
  // `drain_latency` cycles (paper: 6, the L2 access latency).
  WriteBuffer(std::uint32_t capacity, std::uint32_t drain_latency);

  // Offers a store to `block_addr` at time `cycle`; returns the stall cycles
  // the store suffers (0 on coalesce or free slot).
  std::uint32_t push(std::uint64_t block_addr, std::uint64_t cycle);

  // Retires every entry whose drain completes at or before `cycle`.
  void drain_to(std::uint64_t cycle);

  // Cycles a demand miss arriving at `cycle` waits for the L2 port: the
  // buffer's drains occupy L2 FIFO-fashion and are not preempted (the
  // pessimistic single-ported model of Skadron & Clark that the paper's
  // §5.8 write-through slowdown rests on).
  [[nodiscard]] std::uint32_t pending_drain_delay(std::uint64_t cycle);

  [[nodiscard]] std::size_t occupancy() const noexcept {
    return entries_.size();
  }
  [[nodiscard]] std::uint64_t drained_writes() const noexcept {
    return drained_writes_;
  }
  [[nodiscard]] std::uint64_t coalesced_writes() const noexcept {
    return coalesced_writes_;
  }
  [[nodiscard]] std::uint64_t stall_cycles() const noexcept {
    return stall_cycles_;
  }

 private:
  std::uint32_t capacity_;
  std::uint32_t drain_latency_;
  std::deque<std::uint64_t> entries_;  // FIFO of block addresses
  std::uint64_t next_drain_done_ = 0;  // completion time of in-flight drain
  std::uint64_t drained_writes_ = 0;
  std::uint64_t coalesced_writes_ = 0;
  std::uint64_t stall_cycles_ = 0;
};

}  // namespace icr::mem
