#include "src/mem/set_assoc_cache.h"

#include "src/util/check.h"

namespace icr::mem {

SetAssocCache::SetAssocCache(CacheGeometry geometry) : geometry_(geometry) {
  geometry_.validate();
  lines_.resize(static_cast<std::size_t>(geometry_.num_sets()) *
                geometry_.associativity);
}

SetAssocCache::TagLine* SetAssocCache::find(std::uint64_t block_addr) noexcept {
  const std::uint32_t set = geometry_.set_index(block_addr);
  TagLine* base = &lines_[static_cast<std::size_t>(set) * geometry_.associativity];
  for (std::uint32_t w = 0; w < geometry_.associativity; ++w) {
    if (base[w].valid && base[w].block_addr == block_addr) return &base[w];
  }
  return nullptr;
}

const SetAssocCache::TagLine* SetAssocCache::find(
    std::uint64_t block_addr) const noexcept {
  return const_cast<SetAssocCache*>(this)->find(block_addr);
}

SetAssocCache::AccessResult SetAssocCache::access(std::uint64_t addr,
                                                  bool is_write,
                                                  std::uint64_t cycle) {
  (void)cycle;  // LRU uses a monotone access clock, not wall cycles
  const std::uint64_t block = geometry_.block_address(addr);
  ++stats_.accesses;
  ++lru_clock_;

  AccessResult result;
  if (TagLine* line = find(block)) {
    ++stats_.hits;
    line->lru_stamp = lru_clock_;
    line->dirty = line->dirty || is_write;
    result.hit = true;
    return result;
  }

  ++stats_.misses;
  // Victim: an invalid way if any, else true LRU.
  const std::uint32_t set = geometry_.set_index(block);
  TagLine* base = &lines_[static_cast<std::size_t>(set) * geometry_.associativity];
  TagLine* victim = &base[0];
  for (std::uint32_t w = 0; w < geometry_.associativity; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru_stamp < victim->lru_stamp) victim = &base[w];
  }
  if (victim->valid) {
    ++stats_.evictions;
    if (victim->dirty) {
      ++stats_.writebacks;
      result.writeback = victim->block_addr;
    }
  }
  victim->valid = true;
  victim->dirty = is_write;
  victim->block_addr = block;
  victim->lru_stamp = lru_clock_;
  return result;
}

bool SetAssocCache::probe(std::uint64_t addr) const noexcept {
  return find(geometry_.block_address(addr)) != nullptr;
}

bool SetAssocCache::invalidate(std::uint64_t addr) noexcept {
  if (TagLine* line = find(geometry_.block_address(addr))) {
    const bool was_dirty = line->dirty;
    line->valid = false;
    line->dirty = false;
    return was_dirty;
  }
  return false;
}

}  // namespace icr::mem
