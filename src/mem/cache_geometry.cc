#include "src/mem/cache_geometry.h"

#include <stdexcept>

#include "src/util/bitops.h"

namespace icr::mem {

void CacheGeometry::validate() const {
  if (!is_pow2(size_bytes) || !is_pow2(line_bytes) || !is_pow2(associativity)) {
    throw std::invalid_argument("CacheGeometry: all fields must be powers of 2");
  }
  if (line_bytes < 8) {
    throw std::invalid_argument("CacheGeometry: line must hold >= one word");
  }
  if (size_bytes < line_bytes * associativity) {
    throw std::invalid_argument("CacheGeometry: size < one set");
  }
}

CacheGeometry l1d_geometry_default() noexcept {
  return CacheGeometry{16 * 1024, 64, 4};
}

CacheGeometry l1i_geometry_default() noexcept {
  return CacheGeometry{16 * 1024, 32, 1};
}

CacheGeometry l2_geometry_default() noexcept {
  return CacheGeometry{256 * 1024, 64, 4};
}

}  // namespace icr::mem
