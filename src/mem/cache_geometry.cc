#include "src/mem/cache_geometry.h"

#include <stdexcept>

#include "src/util/bitops.h"
#include "src/util/rng.h"

namespace icr::mem {

void CacheGeometry::validate() const {
  if (!is_pow2(size_bytes) || !is_pow2(line_bytes) || !is_pow2(associativity)) {
    throw std::invalid_argument("CacheGeometry: all fields must be powers of 2");
  }
  if (line_bytes < 8) {
    throw std::invalid_argument("CacheGeometry: line must hold >= one word");
  }
  if (size_bytes < line_bytes * associativity) {
    throw std::invalid_argument("CacheGeometry: size < one set");
  }
}

std::uint32_t WayDisableConfig::mask_for_set(std::uint32_t set,
                                             std::uint32_t ways) const noexcept {
  if (!enabled() || ways == 0) return 0;
  const std::uint32_t all = ways >= 32 ? ~0u : ((1u << ways) - 1u);
  if (fixed_mask != 0) return fixed_mask & all;
  const std::uint32_t k = count < ways ? count : ways - 1;
  if (pattern == Pattern::kFixed) return (1u << k) - 1u;
  // Per-set k-of-N draw: partial Fisher-Yates over the way indices, seeded
  // by (seed, set) so every set draws independently but reproducibly.
  std::uint64_t state = mix64(seed ^ mix64(0x3AD0'57A7ull + set));
  std::uint32_t order[32];
  for (std::uint32_t w = 0; w < ways; ++w) order[w] = w;
  std::uint32_t mask = 0;
  for (std::uint32_t i = 0; i < k; ++i) {
    const std::uint32_t j =
        i + static_cast<std::uint32_t>(split_mix64(state) % (ways - i));
    const std::uint32_t tmp = order[i];
    order[i] = order[j];
    order[j] = tmp;
    mask |= 1u << order[i];
  }
  return mask;
}

void WayDisableConfig::validate(std::uint32_t ways) const {
  if (!enabled()) return;
  if (ways == 0 || ways > 32) {
    throw std::invalid_argument("WayDisableConfig: ways must be in [1, 32]");
  }
  const std::uint32_t all = ways >= 32 ? ~0u : ((1u << ways) - 1u);
  if (fixed_mask != 0) {
    if ((fixed_mask & ~all) != 0) {
      throw std::invalid_argument(
          "WayDisableConfig: fixed_mask names ways outside the geometry");
    }
    if ((fixed_mask & all) == all) {
      throw std::invalid_argument(
          "WayDisableConfig: at least one way must stay enabled");
    }
    return;
  }
  if (count >= ways) {
    throw std::invalid_argument(
        "WayDisableConfig: at least one way must stay enabled");
  }
}

const char* way_pattern_name(WayDisableConfig::Pattern pattern) noexcept {
  return pattern == WayDisableConfig::Pattern::kRandom ? "random" : "fixed";
}

CacheGeometry l1d_geometry_default() noexcept {
  return CacheGeometry{16 * 1024, 64, 4};
}

CacheGeometry l1i_geometry_default() noexcept {
  return CacheGeometry{16 * 1024, 32, 1};
}

CacheGeometry l2_geometry_default() noexcept {
  return CacheGeometry{256 * 1024, 64, 4};
}

}  // namespace icr::mem
