// Functional memory: the byte-accurate contents behind the cache hierarchy.
//
// The store is sparse; untouched words read as a deterministic hash of their
// address, so every simulation is reproducible without pre-initialising
// gigabytes. The backing store holds what memory+L2 would actually contain —
// including any corrupted data a faulty writeback deposited — while the
// simulator separately tracks architectural ("golden") values to detect
// silent data corruption end-to-end.
#pragma once

#include <cstdint>
#include <unordered_map>

namespace icr::mem {

class BackingStore {
 public:
  BackingStore() = default;

  // 64-bit word access; `addr` is rounded down to 8-byte alignment.
  [[nodiscard]] std::uint64_t read_word(std::uint64_t addr) const;
  void write_word(std::uint64_t addr, std::uint64_t value);

  // The deterministic initial value of the word at `addr`.
  [[nodiscard]] static std::uint64_t initial_word(std::uint64_t addr) noexcept;

  [[nodiscard]] std::size_t touched_words() const noexcept {
    return words_.size();
  }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> words_;
};

}  // namespace icr::mem
