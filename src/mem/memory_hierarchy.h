// The memory system behind the data L1: instruction L1, unified L2, memory.
//
// Latency model (paper Table 1): L1I hit 1 cycle; L2 hit 6 cycles; memory
// 100 cycles. The hierarchy also owns the functional backing store and the
// access counters the energy model consumes.
#pragma once

#include <cstdint>

#include "src/mem/backing_store.h"
#include "src/mem/cache_geometry.h"
#include "src/mem/set_assoc_cache.h"

namespace icr::mem {

struct HierarchyConfig {
  CacheGeometry l1i = l1i_geometry_default();
  CacheGeometry l2 = l2_geometry_default();
  std::uint32_t l1i_latency = 1;
  std::uint32_t l2_latency = 6;
  std::uint32_t memory_latency = 100;
};

class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(HierarchyConfig config = {});

  // Instruction fetch of the block containing `pc`; returns total latency
  // (1, 1+6, or 1+6+100 cycles).
  std::uint32_t ifetch(std::uint64_t pc, std::uint64_t cycle);

  // Data-side L1 miss: fetches `block_addr` through L2. Returns the latency
  // *added on top of* the L1 access (6 on L2 hit, 6+100 on L2 miss).
  std::uint32_t fetch_block(std::uint64_t block_addr, std::uint64_t cycle);

  // Dirty L1 eviction: deposits the block into L2 (write-allocate). Returns
  // the L2 write latency; callers normally treat it as off-critical-path.
  std::uint32_t write_back_block(std::uint64_t block_addr, std::uint64_t cycle);

  // Accounts one L2 write from a write-through buffer drain (timing is
  // modelled by the WriteBuffer; this charges occupancy/energy).
  void count_write_through_drain(std::uint64_t n = 1) noexcept {
    l2_write_accesses_ += n;
  }

  [[nodiscard]] BackingStore& backing() noexcept { return backing_; }
  [[nodiscard]] const BackingStore& backing() const noexcept {
    return backing_;
  }

  [[nodiscard]] const SetAssocCache& l1i() const noexcept { return l1i_; }
  [[nodiscard]] const SetAssocCache& l2() const noexcept { return l2_; }
  [[nodiscard]] const HierarchyConfig& config() const noexcept {
    return config_;
  }

  // Total L2 accesses (reads + writes incl. write-through drains), for the
  // energy model.
  [[nodiscard]] std::uint64_t l2_read_accesses() const noexcept {
    return l2_read_accesses_;
  }
  [[nodiscard]] std::uint64_t l2_write_accesses() const noexcept {
    return l2_write_accesses_;
  }
  [[nodiscard]] std::uint64_t memory_accesses() const noexcept {
    return memory_accesses_;
  }
  // L2 reads triggered by instruction fetch (excluded from the paper's
  // dL1+L2 data-energy metric).
  [[nodiscard]] std::uint64_t l2_ifetch_reads() const noexcept {
    return l2_ifetch_reads_;
  }

 private:
  HierarchyConfig config_;
  SetAssocCache l1i_;
  SetAssocCache l2_;
  BackingStore backing_;
  std::uint64_t l2_read_accesses_ = 0;
  std::uint64_t l2_write_accesses_ = 0;
  std::uint64_t memory_accesses_ = 0;
  std::uint64_t l2_ifetch_reads_ = 0;
};

}  // namespace icr::mem
