#include "src/mem/backing_store.h"

#include "src/util/rng.h"

namespace icr::mem {

namespace {
constexpr std::uint64_t word_key(std::uint64_t addr) noexcept {
  return addr & ~std::uint64_t{7};
}
}  // namespace

std::uint64_t BackingStore::initial_word(std::uint64_t addr) noexcept {
  return mix64(word_key(addr) ^ 0xC0FFEE1234ULL);
}

std::uint64_t BackingStore::read_word(std::uint64_t addr) const {
  const auto it = words_.find(word_key(addr));
  return it != words_.end() ? it->second : initial_word(addr);
}

void BackingStore::write_word(std::uint64_t addr, std::uint64_t value) {
  words_[word_key(addr)] = value;
}

}  // namespace icr::mem
