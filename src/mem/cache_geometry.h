// Cache geometry: sizes, index/tag decomposition, address helpers.
#pragma once

#include <cstdint>

namespace icr::mem {

// Describes a set-associative cache. All fields must be powers of two and
// consistent (size = sets * ways * line). Validated by `validate()`.
struct CacheGeometry {
  std::uint32_t size_bytes = 16 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t associativity = 4;

  // Throws std::invalid_argument if the geometry is malformed.
  void validate() const;

  [[nodiscard]] std::uint32_t num_sets() const noexcept {
    return size_bytes / (line_bytes * associativity);
  }
  [[nodiscard]] std::uint64_t block_address(std::uint64_t addr) const noexcept {
    return addr & ~static_cast<std::uint64_t>(line_bytes - 1);
  }
  [[nodiscard]] std::uint32_t set_index(std::uint64_t addr) const noexcept {
    return static_cast<std::uint32_t>((addr / line_bytes) % num_sets());
  }
  [[nodiscard]] std::uint32_t line_offset(std::uint64_t addr) const noexcept {
    return static_cast<std::uint32_t>(addr & (line_bytes - 1));
  }
  [[nodiscard]] std::uint32_t words_per_line() const noexcept {
    return line_bytes / 8;
  }
};

// Paper Table 1 geometries.
[[nodiscard]] CacheGeometry l1d_geometry_default() noexcept;  // 16KB 4-way 64B
[[nodiscard]] CacheGeometry l1i_geometry_default() noexcept;  // 16KB 1-way 32B
[[nodiscard]] CacheGeometry l2_geometry_default() noexcept;   // 256KB 4-way 64B

// Faulty-way masking: which ways of a set are disabled (never allocated,
// never searched as replication sites). Two shapes:
//   - kFixed: the same ways in every set — either an explicit `fixed_mask`
//     or, when only `count` is given, the low `count` ways.
//   - kRandom: a per-set k-of-N draw seeded by (`seed`, set index), modelling
//     hard faults scattered across the array. Deterministic: the same
//     (seed, set, ways) always yields the same mask, so the draw can be
//     folded into campaign config hashes.
// Default-constructed means "no ways disabled" (enabled() == false).
struct WayDisableConfig {
  enum class Pattern : std::uint8_t { kFixed = 0, kRandom = 1 };

  std::uint32_t count = 0;       // ways disabled per set (k of N)
  std::uint32_t fixed_mask = 0;  // explicit mask; overrides count when set
  Pattern pattern = Pattern::kFixed;
  std::uint64_t seed = 0x0DDB17;  // per-set draw seed (kRandom only)

  [[nodiscard]] bool enabled() const noexcept {
    return count != 0 || fixed_mask != 0;
  }

  // Disabled-way bitmask for `set` in a cache with `ways` ways. Bit w set
  // means way w is disabled.
  [[nodiscard]] std::uint32_t mask_for_set(std::uint32_t set,
                                           std::uint32_t ways) const noexcept;

  // Throws std::invalid_argument if the config would disable every way of a
  // `ways`-way cache (at least one way must stay enabled) or names ways
  // outside the geometry.
  void validate(std::uint32_t ways) const;
};

[[nodiscard]] const char* way_pattern_name(
    WayDisableConfig::Pattern pattern) noexcept;

}  // namespace icr::mem
