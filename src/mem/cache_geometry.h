// Cache geometry: sizes, index/tag decomposition, address helpers.
#pragma once

#include <cstdint>

namespace icr::mem {

// Describes a set-associative cache. All fields must be powers of two and
// consistent (size = sets * ways * line). Validated by `validate()`.
struct CacheGeometry {
  std::uint32_t size_bytes = 16 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t associativity = 4;

  // Throws std::invalid_argument if the geometry is malformed.
  void validate() const;

  [[nodiscard]] std::uint32_t num_sets() const noexcept {
    return size_bytes / (line_bytes * associativity);
  }
  [[nodiscard]] std::uint64_t block_address(std::uint64_t addr) const noexcept {
    return addr & ~static_cast<std::uint64_t>(line_bytes - 1);
  }
  [[nodiscard]] std::uint32_t set_index(std::uint64_t addr) const noexcept {
    return static_cast<std::uint32_t>((addr / line_bytes) % num_sets());
  }
  [[nodiscard]] std::uint32_t line_offset(std::uint64_t addr) const noexcept {
    return static_cast<std::uint32_t>(addr & (line_bytes - 1));
  }
  [[nodiscard]] std::uint32_t words_per_line() const noexcept {
    return line_bytes / 8;
  }
};

// Paper Table 1 geometries.
[[nodiscard]] CacheGeometry l1d_geometry_default() noexcept;  // 16KB 4-way 64B
[[nodiscard]] CacheGeometry l1i_geometry_default() noexcept;  // 16KB 1-way 32B
[[nodiscard]] CacheGeometry l2_geometry_default() noexcept;   // 256KB 4-way 64B

}  // namespace icr::mem
