#include "src/mem/memory_hierarchy.h"

#include "src/obs/prof.h"

namespace icr::mem {

MemoryHierarchy::MemoryHierarchy(HierarchyConfig config)
    : config_(config), l1i_(config.l1i), l2_(config.l2) {}

std::uint32_t MemoryHierarchy::ifetch(std::uint64_t pc, std::uint64_t cycle) {
  const auto l1 = l1i_.access(pc, /*is_write=*/false, cycle);
  std::uint32_t latency = config_.l1i_latency;
  if (!l1.hit) {
    ++l2_ifetch_reads_;
    latency += fetch_block(l2_.geometry().block_address(pc), cycle);
  }
  return latency;
}

std::uint32_t MemoryHierarchy::fetch_block(std::uint64_t block_addr,
                                           std::uint64_t cycle) {
  ICR_PROF_ZONE_HOT("MemoryHierarchy::fetch_block");
  ++l2_read_accesses_;
  const auto l2 = l2_.access(block_addr, /*is_write=*/false, cycle);
  std::uint32_t latency = config_.l2_latency;
  if (!l2.hit) {
    ++memory_accesses_;
    latency += config_.memory_latency;
  }
  if (l2.writeback) {
    ++memory_accesses_;  // dirty L2 victim drains to memory (off-path)
  }
  return latency;
}

std::uint32_t MemoryHierarchy::write_back_block(std::uint64_t block_addr,
                                                std::uint64_t cycle) {
  ++l2_write_accesses_;
  const auto l2 = l2_.access(block_addr, /*is_write=*/true, cycle);
  if (l2.writeback) {
    ++memory_accesses_;
  }
  return config_.l2_latency;
}

}  // namespace icr::mem
