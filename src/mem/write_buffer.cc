#include "src/mem/write_buffer.h"

#include <algorithm>

#include "src/util/check.h"

namespace icr::mem {

WriteBuffer::WriteBuffer(std::uint32_t capacity, std::uint32_t drain_latency)
    : capacity_(capacity), drain_latency_(drain_latency) {
  ICR_CHECK(capacity > 0);
  ICR_CHECK(drain_latency > 0);
}

void WriteBuffer::drain_to(std::uint64_t cycle) {
  while (!entries_.empty()) {
    // The head entry's drain completes at next_drain_done_; start it if idle.
    if (next_drain_done_ == 0) {
      next_drain_done_ = cycle + drain_latency_;
    }
    if (next_drain_done_ > cycle) break;
    entries_.pop_front();
    ++drained_writes_;
    next_drain_done_ =
        entries_.empty() ? 0 : next_drain_done_ + drain_latency_;
  }
}

std::uint32_t WriteBuffer::pending_drain_delay(std::uint64_t cycle) {
  drain_to(cycle);
  if (entries_.empty()) return 0;
  const std::uint64_t backlog_done =
      next_drain_done_ +
      (entries_.size() - 1) * static_cast<std::uint64_t>(drain_latency_);
  return backlog_done > cycle ? static_cast<std::uint32_t>(backlog_done - cycle)
                              : 0;
}

std::uint32_t WriteBuffer::push(std::uint64_t block_addr, std::uint64_t cycle) {
  drain_to(cycle);

  if (std::find(entries_.begin(), entries_.end(), block_addr) !=
      entries_.end()) {
    ++coalesced_writes_;
    return 0;
  }

  std::uint32_t stall = 0;
  if (entries_.size() >= capacity_) {
    // Wait for the in-flight drain to free the head slot.
    ICR_CHECK(next_drain_done_ > cycle);
    stall = static_cast<std::uint32_t>(next_drain_done_ - cycle);
    stall_cycles_ += stall;
    drain_to(next_drain_done_);
  }
  if (entries_.empty() && next_drain_done_ == 0) {
    next_drain_done_ = cycle + stall + drain_latency_;
  }
  entries_.push_back(block_addr);
  return stall;
}

}  // namespace icr::mem
