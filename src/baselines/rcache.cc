#include "src/baselines/rcache.h"

#include "src/util/check.h"

namespace icr::baselines {

RCache::RCache(std::uint32_t entries) : entries_(entries) {
  ICR_CHECK(entries > 0);
}

RCache::Entry* RCache::find(std::uint64_t word_addr) noexcept {
  for (Entry& e : entries_) {
    if (e.valid && e.word_addr == word_addr) return &e;
  }
  return nullptr;
}

void RCache::record(std::uint64_t addr, std::uint64_t value) {
  const std::uint64_t word = addr & ~std::uint64_t{7};
  ++stats_.writes;
  ++clock_;
  if (Entry* e = find(word)) {
    e->value = value;
    e->lru = clock_;
    return;
  }
  Entry* victim = &entries_[0];
  for (Entry& e : entries_) {
    if (!e.valid) {
      victim = &e;
      break;
    }
    if (e.lru < victim->lru) victim = &e;
  }
  victim->valid = true;
  victim->word_addr = word;
  victim->value = value;
  victim->lru = clock_;
}

std::optional<std::uint64_t> RCache::lookup(std::uint64_t addr,
                                            bool for_recovery) {
  const std::uint64_t word = addr & ~std::uint64_t{7};
  ++stats_.lookups;
  ++clock_;
  if (Entry* e = find(word)) {
    ++stats_.hits;
    if (for_recovery) ++stats_.recoveries;
    e->lru = clock_;
    return e->value;
  }
  return std::nullopt;
}

void RCache::invalidate(std::uint64_t addr) noexcept {
  if (Entry* e = find(addr & ~std::uint64_t{7})) {
    e->valid = false;
  }
}

}  // namespace icr::baselines
