// R-Cache: the Kim & Somani-style "area-efficient information integrity"
// baseline the paper compares against conceptually ([11, 12]): a small
// separate structure that duplicates recently *written* words so that a
// parity error on a dirty dL1 line can be recovered without ECC.
//
// The paper's §5.2 point is that ICR achieves the same duplication of the
// hot data "automatically ... we do not need a separate cache" — this
// module exists so the claim can be measured: bench/baseline_rcache.cc
// pits BaseP, BaseP+R-Cache and ICR-P-PS(S) against each other under fault
// injection.
//
// Model: a fully-associative, LRU, word-granularity duplication buffer.
// Every committed store deposits (word address, value, parity). On a dirty
// parity error the dL1 consults it; a hit recovers the word. Capacity is
// the knob: Kim & Somani report good hit rates with very small structures
// because of write locality.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace icr::baselines {

struct RCacheStats {
  std::uint64_t writes = 0;
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t recoveries = 0;  // hits that repaired a dirty parity error

  [[nodiscard]] double hit_rate() const noexcept {
    return lookups == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

class RCache {
 public:
  explicit RCache(std::uint32_t entries);

  // Records the word written by a store (duplicate-on-write policy).
  void record(std::uint64_t addr, std::uint64_t value);

  // Returns the duplicated value for the word at `addr`, if present; marks
  // the entry as used. `for_recovery` additionally counts a recovery.
  [[nodiscard]] std::optional<std::uint64_t> lookup(std::uint64_t addr,
                                                    bool for_recovery);

  // Drops the entry for `addr` (e.g. the block left the hierarchy).
  void invalidate(std::uint64_t addr) noexcept;

  [[nodiscard]] const RCacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint32_t capacity() const noexcept {
    return static_cast<std::uint32_t>(entries_.size());
  }

 private:
  struct Entry {
    bool valid = false;
    std::uint64_t word_addr = 0;
    std::uint64_t value = 0;
    std::uint64_t lru = 0;
  };

  [[nodiscard]] Entry* find(std::uint64_t word_addr) noexcept;

  std::vector<Entry> entries_;
  std::uint64_t clock_ = 0;
  RCacheStats stats_;
};

}  // namespace icr::baselines
