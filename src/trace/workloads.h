// Synthetic SPEC2000-like workload models (substitution for the paper's
// SPEC2000/SimpleScalar traces — see DESIGN.md §2).
//
// Each application is a parameter set (WorkloadProfile) driving a generic
// generator (SyntheticWorkload) that emits a deterministic, infinite
// instruction stream with:
//   * an instruction mix (loads/stores/branches/int/fp),
//   * a memory reference stream composed of Zipf hot sets, sequential
//     streams, strided walks and pointer chases sized against the 16KB dL1,
//   * register dependences that control ILP (pointer-chase loads are made
//     address-dependent on the previous load, serializing them as in mcf),
//   * a control-flow model with periodic (predictable) loop branches and a
//     configurable fraction of data-dependent (hard) branches, walking a
//     code footprint that determines L1I pressure.
//
// The eight profiles mirror the paper's benchmarks qualitatively: mcf is a
// cache-hostile pointer chaser with a tiny hot set, mesa a low-miss FP
// renderer whose working set barely fits the dL1 (so replica pollution
// visibly hurts, as in Fig. 4), gzip/bzip2 streaming compressors, etc.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/trace/instruction.h"
#include "src/trace/patterns.h"
#include "src/util/rng.h"

namespace icr::trace {

enum class App : std::uint8_t {
  kGzip,
  kVpr,
  kGcc,
  kMcf,
  kParser,
  kMesa,
  kVortex,
  kBzip2,
};

[[nodiscard]] const char* to_string(App app) noexcept;
[[nodiscard]] std::vector<App> all_apps();

struct PatternSpec {
  enum class Kind : std::uint8_t { kZipf, kSequential, kStride, kChase };
  Kind kind = Kind::kZipf;
  double weight = 1.0;
  std::uint64_t region_bytes = 64 * 1024;
  double zipf_theta = 0.8;       // kZipf
  std::uint32_t stride_bytes = 8;  // kSequential / kStride
  std::uint32_t node_bytes = 64;   // kChase
};

struct WorkloadProfile {
  std::string name;
  // Instruction mix; the remainder after all fractions is integer ALU work.
  double load_frac = 0.25;
  double store_frac = 0.10;
  double branch_frac = 0.12;
  double fp_alu_frac = 0.0;
  double fp_mul_frac = 0.0;
  double int_mul_frac = 0.01;

  std::vector<PatternSpec> patterns;
  // Fraction of chase-pattern loads whose address register depends on the
  // previous load (serializing them through the RUU).
  double dependent_load_frac = 0.0;

  // Fraction of value-producing instructions on the serial dependence
  // "spine" (each spine instruction consumes the previous spine result).
  // This is the knob that controls how much of the dL1 hit latency is
  // architecturally exposed: spine loads put their full latency on the
  // critical path, exactly the load-use chains that make 2-cycle ECC loads
  // expensive in the paper.
  double spine_frac = 0.55;

  // Control flow.
  double hard_branch_frac = 0.25;  // data-dependent, ~random outcome
  double hard_branch_taken = 0.5;
  std::uint64_t code_footprint_bytes = 16 * 1024;

  std::uint64_t seed = 1;
};

// The calibrated profile for one of the paper's eight applications.
[[nodiscard]] WorkloadProfile profile_for(App app);

class SyntheticWorkload final : public TraceSource {
 public:
  explicit SyntheticWorkload(WorkloadProfile profile);

  Instruction next() override;

  [[nodiscard]] const WorkloadProfile& profile() const noexcept {
    return profile_;
  }

 private:
  [[nodiscard]] OpClass pick_op();
  void advance_pc(Instruction& instr);
  [[nodiscard]] std::int16_t pick_source();

  WorkloadProfile profile_;
  Rng rng_;
  std::unique_ptr<MixturePattern> memory_;
  std::vector<bool> is_chase_component_;

  std::uint64_t seq_ = 0;
  std::uint64_t pc_;
  std::uint64_t code_base_;
  // Rolling window of recent destination registers for dependence edges.
  std::vector<std::int16_t> recent_dests_;
  std::int16_t last_load_dest_ = -1;
  std::int16_t spine_reg_ = 1;  // current tail of the dependence spine
  // Loop-branch state: per-site visit counters give periodic outcomes.
  std::vector<std::uint16_t> site_visits_;
};

}  // namespace icr::trace
