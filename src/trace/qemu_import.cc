#include "src/trace/qemu_import.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace icr::trace {
namespace {

[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

[[nodiscard]] std::int16_t reg(std::uint64_t h, unsigned lane) noexcept {
  return static_cast<std::int16_t>((h >> (8 * lane)) %
                                   Instruction::kNumRegs);
}

[[noreturn]] void malformed(const std::string& path, std::uint64_t line,
                            const std::string& what) {
  throw std::runtime_error("import_qemu_log: " + path + ":" +
                           std::to_string(line) + ": " + what);
}

[[nodiscard]] std::uint64_t parse_u64(const std::string& token,
                                      const std::string& path,
                                      std::uint64_t line, const char* what) {
  const char* begin = token.c_str();
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(begin, &end, 0);
  if (end == begin || *end != '\0') {
    malformed(path, line, std::string("unparseable ") + what + " '" + token +
                              "'");
  }
  return value;
}

}  // namespace

ImportStats import_qemu_log(const std::string& log_path,
                            const std::string& trace_path,
                            TraceV2Writer::Options options) {
  std::ifstream in(log_path);
  if (!in) {
    throw std::runtime_error("import_qemu_log: cannot open " + log_path);
  }

  TraceV2Writer writer(trace_path, options);
  ImportStats stats;

  Instruction pending;        // parsed but not yet written (needs next_pc)
  bool have_pending = false;
  bool pending_is_plain = false;  // a bare `insn` a mem line may upgrade
  std::uint64_t first_pc = 0;
  std::uint64_t ordinal = 0;  // records emitted + the pending one

  // Finishes `pending` once its successor's pc is known, then writes it.
  const auto emit_pending = [&](std::uint64_t successor_pc) {
    pending.next_pc = successor_pc;
    if (!pending.is_mem() && successor_pc != pending.pc + 4) {
      pending.op = OpClass::kBranch;
      pending.branch_taken = true;
      const std::uint64_t h = mix64(pending.pc ^ (ordinal * kFnvPrime));
      pending.dest = -1;
      pending.src1 = reg(h, 0);
      pending.src2 = -1;
      ++stats.branches;
    }
    writer.write(pending);
    ++stats.records;
  };

  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    ++stats.lines;
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword) || keyword[0] == '#') {
      ++stats.skipped;
      continue;
    }

    const bool is_insn = keyword == "insn";
    const bool is_load = keyword == "load";
    const bool is_store = keyword == "store";
    if (!is_insn && !is_load && !is_store) {
      ++stats.skipped;
      continue;
    }

    std::string token;
    if (!(fields >> token)) {
      malformed(log_path, line_no, "missing pc after '" + keyword + "'");
    }
    const std::uint64_t pc = parse_u64(token, log_path, line_no, "pc");
    std::uint64_t vaddr = 0;
    if (is_load || is_store) {
      if (!(fields >> token)) {
        malformed(log_path, line_no,
                  "missing address after '" + keyword + "'");
      }
      vaddr = parse_u64(token, log_path, line_no, "address") & ~7ULL;
    }

    // The usual plugin shape is an insn line followed by its access lines
    // at the same pc — fold the first access into the pending record
    // rather than emitting the instruction twice.
    if (!is_insn && have_pending && pending_is_plain && pending.pc == pc) {
      const std::uint64_t h = mix64(pc ^ vaddr ^ (ordinal * kFnvPrime));
      pending.mem_addr = vaddr;
      if (is_load) {
        pending.op = OpClass::kLoad;
        pending.dest = reg(h, 0);
        pending.src1 = reg(h, 1);
        pending.src2 = -1;
      } else {
        pending.op = OpClass::kStore;
        pending.store_value = mix64(vaddr ^ pc);
        pending.dest = -1;
        pending.src1 = reg(h, 0);
        pending.src2 = reg(h, 1);
      }
      pending_is_plain = false;
      if (is_load) ++stats.loads; else ++stats.stores;
      continue;
    }

    if (have_pending) emit_pending(pc);

    ++ordinal;
    const std::uint64_t h = mix64(pc ^ vaddr ^ (ordinal * kFnvPrime));
    pending = Instruction{};
    pending.pc = pc;
    if (is_insn) {
      pending.op = OpClass::kIntAlu;
      pending.dest = reg(h, 0);
      pending.src1 = reg(h, 1);
      pending.src2 = reg(h, 2);
    } else if (is_load) {
      pending.op = OpClass::kLoad;
      pending.mem_addr = vaddr;
      pending.dest = reg(h, 0);
      pending.src1 = reg(h, 1);
      ++stats.loads;
    } else {
      pending.op = OpClass::kStore;
      pending.mem_addr = vaddr;
      pending.store_value = mix64(vaddr ^ pc);
      pending.src1 = reg(h, 0);
      pending.src2 = reg(h, 1);
      ++stats.stores;
    }
    pending_is_plain = is_insn;
    if (!have_pending) first_pc = pc;
    have_pending = true;
  }

  if (!have_pending) {
    throw std::runtime_error("import_qemu_log: " + log_path +
                             " contains no trace events");
  }
  // The stream loops on replay, so the last record's successor is the
  // first record.
  emit_pending(first_pc);
  writer.close();
  return stats;
}

}  // namespace icr::trace
