// ICRT-v2: the chunked, seekable, streaming trace container.
//
// v1 (src/trace/trace_file.h) is a flat record array that the reader must
// load whole; fine for pinned regression traces, hopeless for real captured
// program traces. v2 keeps the same canonical 40-byte record image but
// groups records into independently decodable chunks behind a per-chunk
// index, so a reader can mmap the file, hold exactly one decoded chunk, and
// seek to any instruction boundary in O(1):
//
//   offset  bytes
//        0      4  magic "ICRT"
//        4      4  u32 version = 2
//        8      8  u64 record count
//       16      4  u32 chunk_records (records per chunk; last may be short)
//       20      4  u32 chunk count
//       24      8  u64 index offset (byte position of the chunk index)
//       32      8  u64 content fingerprint (FNV-1a 64 over the canonical
//                     40-byte record images, in stream order — identical
//                     for raw and delta chunks, and for a converted v1
//                     trace of the same records)
//       40      4  u32 flags (bit 0: writer was allowed to delta-encode)
//       44     20  reserved (zero)
//       64      -  chunks, back to back
//        -      -  chunk index: chunk_count x 32-byte entries
//                     u64 byte offset  u64 byte length
//                     u64 FNV-1a 64 of the encoded chunk bytes
//                     u32 record count u32 encoding (0 raw, 1 delta)
//
// Everything is little-endian; no external dependencies. Chunk encodings:
//
//   raw    record count x 40-byte canonical images.
//   delta  per record: op byte, flags byte (bit 0 branch_taken), then
//          zigzag-LEB128 varints for pc (delta from previous pc in the
//          chunk), next_pc (delta from this pc), mem_addr for loads/stores
//          (delta from the previous load/store address in the chunk), a
//          fixed 8-byte store_value for stores, and varint dest/src1/src2.
//          Decoder state (prev pc/addr) resets at every chunk boundary, so
//          chunks decode independently — the property seeking rests on.
//
// The writer encodes each chunk both ways and keeps whichever is smaller
// (typically delta at ~5x compression for synthetic streams); records that
// a delta chunk could not round-trip losslessly (a non-memory record with a
// nonzero mem_addr, say) force that chunk to raw.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/trace/instruction.h"

namespace icr::trace {

inline constexpr std::uint32_t kV2Version = 2;
inline constexpr std::size_t kV2HeaderBytes = 64;
inline constexpr std::size_t kV2IndexEntryBytes = 32;
inline constexpr std::uint32_t kV2DefaultChunkRecords = 1u << 16;

enum class ChunkEncoding : std::uint32_t { kRaw = 0, kDelta = 1 };

// FNV-1a 64 — the checksum/fingerprint primitive (no external deps).
inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

[[nodiscard]] std::uint64_t fnv1a64(
    const std::uint8_t* data, std::size_t size,
    std::uint64_t state = kFnvOffsetBasis) noexcept;

// Folds one instruction's canonical 40-byte image into a running content
// fingerprint; start from kFnvOffsetBasis.
[[nodiscard]] std::uint64_t fingerprint_fold(std::uint64_t state,
                                             const Instruction& instruction);

// Provenance of a trace file, as probe_trace/validate_trace report it and
// as icr_sim prints it in the replay run header.
struct TraceInfo {
  std::string path;
  std::uint32_t version = 0;
  std::uint64_t records = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t file_bytes = 0;
  // v2 only; zero for v1 traces.
  std::uint32_t chunk_records = 0;
  std::uint32_t chunk_count = 0;
  std::uint32_t raw_chunks = 0;
  std::uint32_t delta_chunks = 0;
};

class TraceV2Writer {
 public:
  struct Options {
    std::uint32_t chunk_records = kV2DefaultChunkRecords;
    // When true (default), each chunk stores whichever of raw/delta encodes
    // smaller; false forces every chunk raw.
    bool delta = true;
  };

  // Creates/truncates `path`; throws std::runtime_error if unwritable.
  explicit TraceV2Writer(const std::string& path) : TraceV2Writer(path, {}) {}
  TraceV2Writer(const std::string& path, Options options);
  ~TraceV2Writer();

  TraceV2Writer(const TraceV2Writer&) = delete;
  TraceV2Writer& operator=(const TraceV2Writer&) = delete;

  // Buffers into the current chunk; flushes a full chunk to disk. Throws
  // std::runtime_error (with path and byte offset) on a failed write.
  void write(const Instruction& instruction);

  // Flushes the tail chunk, writes the index, and patches the header.
  // Called automatically by the destructor (which swallows errors; call
  // close() explicitly to observe them).
  void close();

  [[nodiscard]] std::uint64_t written() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return fingerprint_;
  }

 private:
  struct IndexEntry {
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::uint64_t checksum = 0;
    std::uint32_t records = 0;
    std::uint32_t encoding = 0;
  };

  void flush_chunk();
  void write_bytes(const void* data, std::size_t size, const char* what);

  std::string path_;
  std::ofstream out_;
  Options options_;
  std::vector<Instruction> pending_;
  std::vector<IndexEntry> index_;
  std::uint64_t count_ = 0;
  std::uint64_t offset_ = kV2HeaderBytes;  // next chunk's byte position
  std::uint64_t fingerprint_ = kFnvOffsetBasis;
  bool closed_ = false;
};

// Streaming v2 replay: mmaps the container and keeps exactly one decoded
// chunk resident, so memory is O(chunk_records) no matter how large the
// trace is (asserted by tests/trace_v2_test.cc). Loops at the end of the
// trace like every TraceSource; seek_to(n) repositions through the chunk
// index without touching any other chunk.
class StreamingTraceSource final : public SeekableTraceSource {
 public:
  // Throws std::runtime_error on a missing/corrupt/empty file, and names
  // the actual version when handed a v1 trace.
  explicit StreamingTraceSource(const std::string& path);
  ~StreamingTraceSource() override;

  StreamingTraceSource(const StreamingTraceSource&) = delete;
  StreamingTraceSource& operator=(const StreamingTraceSource&) = delete;

  Instruction next() override;
  void seek_to(std::uint64_t n) override;

  [[nodiscard]] std::uint64_t size() const noexcept override {
    return info_.records;
  }
  // Absolute record index the next next() call returns (mod size()).
  [[nodiscard]] std::uint64_t position() const noexcept;
  [[nodiscard]] const TraceInfo& info() const noexcept { return info_; }

  // Heap + object bytes held by this reader: the bounded-allocation number
  // the O(chunk) guarantee is tested against. Excludes the mmap, which is
  // file-backed, read-only, and paged by the OS — never a per-record heap
  // allocation.
  [[nodiscard]] std::size_t resident_bytes() const noexcept;

 private:
  struct ChunkMeta {
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::uint64_t checksum = 0;
    std::uint32_t records = 0;
    std::uint32_t encoding = 0;
  };

  [[nodiscard]] ChunkMeta chunk_meta(std::uint32_t chunk) const;
  void load_chunk(std::uint32_t chunk);

  std::string path_;
  int fd_ = -1;
  const std::uint8_t* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  TraceInfo info_;
  std::uint64_t index_offset_ = 0;
  std::uint32_t current_chunk_ = 0;
  std::size_t pos_in_chunk_ = 0;
  std::vector<Instruction> chunk_;  // the single decoded chunk
};

// Header-level provenance: version, record count, fingerprint, chunking.
// Cheap for v2 (header + index); a v1 probe scans the records to compute
// the fingerprint (v1 files carry none). Throws on missing/corrupt files.
[[nodiscard]] TraceInfo probe_trace(const std::string& path);

// Full integrity walk: decodes every chunk, verifies every checksum and the
// index invariants, recomputes the content fingerprint, and cross-checks
// the header. Throws std::runtime_error naming the first problem found.
[[nodiscard]] TraceInfo validate_trace(const std::string& path);

// Version-sniffing open: v1 files get a FileTraceSource (whole-file compat
// loader), v2 files a StreamingTraceSource. The TraceInfo carries the
// provenance either way.
struct OpenedTrace {
  TraceInfo info;
  std::unique_ptr<SeekableTraceSource> source;
};
[[nodiscard]] OpenedTrace open_trace(const std::string& path);

// Records `count` instructions of `source` into a v2 container at `path`.
void record_trace_v2(TraceSource& source, std::uint64_t count,
                     const std::string& path,
                     TraceV2Writer::Options options = {});

}  // namespace icr::trace
