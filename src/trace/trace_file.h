// Binary trace capture & replay.
//
// Any TraceSource can be recorded to a compact binary file and replayed
// deterministically later — e.g. to pin a regression trace, to share a
// workload without sharing its generator, or to feed externally produced
// traces (a SimpleScalar/gem5 converter only needs to emit this format).
//
// Format: a 16-byte header (magic "ICRT", u32 version, u64 record count)
// followed by fixed-size little-endian records. Replays loop at the end of
// file, matching the infinite-stream contract of TraceSource.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "src/trace/instruction.h"

namespace icr::trace {

class TraceWriter {
 public:
  // Creates/truncates `path`; throws std::runtime_error if unwritable.
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void write(const Instruction& instruction);

  // Finalizes the header; called automatically by the destructor.
  void close();

  [[nodiscard]] std::uint64_t written() const noexcept { return count_; }

 private:
  std::ofstream out_;
  std::uint64_t count_ = 0;
  bool closed_ = false;
};

// Replays a recorded trace as an infinite stream (loops at EOF).
class FileTraceSource final : public TraceSource {
 public:
  // Loads the whole trace into memory (traces for this simulator are small
  // — tens of MB for millions of instructions); throws std::runtime_error
  // on a missing/corrupt file.
  explicit FileTraceSource(const std::string& path);

  Instruction next() override;

  [[nodiscard]] std::uint64_t size() const noexcept {
    return static_cast<std::uint64_t>(records_.size());
  }

 private:
  std::vector<Instruction> records_;
  std::size_t pos_ = 0;
};

// Convenience: records `count` instructions of `source` into `path`.
void record_trace(TraceSource& source, std::uint64_t count,
                  const std::string& path);

}  // namespace icr::trace
