// Binary trace capture & replay — the legacy ICRT v1 container.
//
// Any TraceSource can be recorded to a compact binary file and replayed
// deterministically later — e.g. to pin a regression trace, to share a
// workload without sharing its generator, or to feed externally produced
// traces (a SimpleScalar/gem5 converter only needs to emit this format).
//
// v1 format: a 16-byte header (magic "ICRT", u32 version = 1, u64 record
// count) followed by fixed-size little-endian records. Replays loop at the
// end of file, matching the infinite-stream contract of TraceSource.
//
// v1 is the compat path: the reader loads the whole trace into memory. New
// traces should use the chunked, seekable ICRT-v2 container
// (src/trace/trace_v2.h), which streams through mmap in O(chunk) memory.
// `icr_trace convert` moves traces between the two.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "src/trace/instruction.h"

namespace icr::trace {

// Canonical on-disk record image shared by both container versions: 40
// little-endian bytes per instruction (pc, mem_addr, store_value, next_pc,
// op, branch_taken, dest, src1, src2). The v2 content fingerprint is
// computed over these bytes regardless of per-chunk encoding, so a
// converted trace keeps its fingerprint.
inline constexpr std::size_t kRecordBytes = 40;

void pack_record(const Instruction& instruction,
                 std::uint8_t out[kRecordBytes]);
[[nodiscard]] Instruction unpack_record(const std::uint8_t in[kRecordBytes]);

class TraceWriter {
 public:
  // Creates/truncates `path`; throws std::runtime_error if unwritable.
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  // Throws std::runtime_error (with path and byte offset) when the stream
  // write fails — full disk and closed descriptors must never truncate a
  // trace silently.
  void write(const Instruction& instruction);

  // Finalizes the header; called automatically by the destructor (which
  // swallows the error — call close() explicitly to observe failures).
  void close();

  [[nodiscard]] std::uint64_t written() const noexcept { return count_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::uint64_t count_ = 0;
  bool closed_ = false;
};

// Replays a recorded v1 trace as an infinite stream (loops at EOF).
class FileTraceSource final : public SeekableTraceSource {
 public:
  // Loads the whole trace into memory (traces for this simulator are small
  // — tens of MB for millions of instructions); throws std::runtime_error
  // on a missing/corrupt file, and names the actual version when handed an
  // ICRT-v2 container instead of calling it corrupt.
  explicit FileTraceSource(const std::string& path);

  Instruction next() override;
  void seek_to(std::uint64_t n) override;

  [[nodiscard]] std::uint64_t size() const noexcept override {
    return static_cast<std::uint64_t>(records_.size());
  }

 private:
  std::vector<Instruction> records_;
  std::size_t pos_ = 0;
};

// Convenience: records `count` instructions of `source` into `path`.
void record_trace(TraceSource& source, std::uint64_t count,
                  const std::string& path);

}  // namespace icr::trace
