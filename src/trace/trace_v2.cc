#include "src/trace/trace_v2.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "src/trace/trace_file.h"

namespace icr::trace {
namespace {

constexpr char kMagic[4] = {'I', 'C', 'R', 'T'};
constexpr std::uint32_t kFlagDeltaAllowed = 1u;

[[noreturn]] void corrupt(const std::string& path, const std::string& what) {
  throw std::runtime_error("ICRT-v2: " + path + ": " + what);
}

// --- little-endian scalar helpers (byte-wise; no alignment assumptions) ---

template <typename T>
void put_le(std::uint8_t* out, T value) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

template <typename T>
[[nodiscard]] T get_le(const std::uint8_t* in) {
  T value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    value |= static_cast<T>(in[i]) << (8 * i);
  }
  return value;
}

// --- zigzag-LEB128 varints ---

[[nodiscard]] std::uint64_t zigzag(std::int64_t value) noexcept {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

[[nodiscard]] std::int64_t unzigzag(std::uint64_t value) noexcept {
  return static_cast<std::int64_t>((value >> 1) ^ (~(value & 1) + 1));
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

[[nodiscard]] std::uint64_t get_varint(const std::uint8_t* data,
                                       std::size_t size, std::size_t& pos) {
  std::uint64_t value = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (pos >= size) {
      throw std::runtime_error("truncated varint");
    }
    const std::uint8_t byte = data[pos++];
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
  }
  throw std::runtime_error("varint overruns 64 bits");
}

// Signed delta between two u64s, wrapping — exact round trip via the same
// wrap on decode.
[[nodiscard]] std::int64_t delta64(std::uint64_t cur,
                                   std::uint64_t prev) noexcept {
  return static_cast<std::int64_t>(cur - prev);
}

// --- chunk encodings ---

std::vector<std::uint8_t> encode_raw(const std::vector<Instruction>& records) {
  std::vector<std::uint8_t> out(records.size() * kRecordBytes);
  for (std::size_t i = 0; i < records.size(); ++i) {
    pack_record(records[i], out.data() + i * kRecordBytes);
  }
  return out;
}

// The delta encoding drops fields the op class says are unused; a record
// carrying payload in such a field cannot round-trip and forces its chunk
// to raw.
[[nodiscard]] bool delta_encodable(const Instruction& i) noexcept {
  if (!i.is_mem() && i.mem_addr != 0) return false;
  if (!i.is_store() && i.store_value != 0) return false;
  return true;
}

[[nodiscard]] bool encode_delta(const std::vector<Instruction>& records,
                                std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(records.size() * 8);
  std::uint64_t prev_pc = 0;
  std::uint64_t prev_mem = 0;
  std::uint8_t value_bytes[8];
  for (const Instruction& i : records) {
    if (!delta_encodable(i)) return false;
    out.push_back(static_cast<std::uint8_t>(i.op));
    out.push_back(i.branch_taken ? 1 : 0);
    put_varint(out, zigzag(delta64(i.pc, prev_pc)));
    put_varint(out, zigzag(delta64(i.next_pc, i.pc)));
    prev_pc = i.pc;
    if (i.is_mem()) {
      put_varint(out, zigzag(delta64(i.mem_addr, prev_mem)));
      prev_mem = i.mem_addr;
    }
    if (i.is_store()) {
      put_le(value_bytes, i.store_value);
      out.insert(out.end(), value_bytes, value_bytes + 8);
    }
    put_varint(out, zigzag(i.dest));
    put_varint(out, zigzag(i.src1));
    put_varint(out, zigzag(i.src2));
  }
  return true;
}

void decode_raw(const std::uint8_t* data, std::size_t bytes,
                std::uint32_t records, std::vector<Instruction>& out) {
  if (bytes != static_cast<std::size_t>(records) * kRecordBytes) {
    throw std::runtime_error("raw chunk length does not match record count");
  }
  out.clear();
  out.reserve(records);
  for (std::uint32_t i = 0; i < records; ++i) {
    out.push_back(unpack_record(data + static_cast<std::size_t>(i) *
                                           kRecordBytes));
  }
}

void decode_delta(const std::uint8_t* data, std::size_t bytes,
                  std::uint32_t records, std::vector<Instruction>& out) {
  out.clear();
  out.reserve(records);
  std::size_t pos = 0;
  std::uint64_t prev_pc = 0;
  std::uint64_t prev_mem = 0;
  for (std::uint32_t n = 0; n < records; ++n) {
    if (pos + 2 > bytes) {
      throw std::runtime_error("truncated delta record header");
    }
    Instruction i;
    i.op = static_cast<OpClass>(data[pos++]);
    i.branch_taken = data[pos++] != 0;
    i.pc = prev_pc + static_cast<std::uint64_t>(
                         unzigzag(get_varint(data, bytes, pos)));
    i.next_pc = i.pc + static_cast<std::uint64_t>(
                           unzigzag(get_varint(data, bytes, pos)));
    prev_pc = i.pc;
    if (i.is_mem()) {
      i.mem_addr = prev_mem + static_cast<std::uint64_t>(
                                  unzigzag(get_varint(data, bytes, pos)));
      prev_mem = i.mem_addr;
    }
    if (i.is_store()) {
      if (pos + 8 > bytes) {
        throw std::runtime_error("truncated store value");
      }
      i.store_value = get_le<std::uint64_t>(data + pos);
      pos += 8;
    }
    i.dest = static_cast<std::int16_t>(unzigzag(get_varint(data, bytes, pos)));
    i.src1 = static_cast<std::int16_t>(unzigzag(get_varint(data, bytes, pos)));
    i.src2 = static_cast<std::int16_t>(unzigzag(get_varint(data, bytes, pos)));
    out.push_back(i);
  }
  if (pos != bytes) {
    throw std::runtime_error("delta chunk has trailing bytes");
  }
}

// --- header image ---

struct V2Header {
  std::uint64_t records = 0;
  std::uint32_t chunk_records = 0;
  std::uint32_t chunk_count = 0;
  std::uint64_t index_offset = 0;
  std::uint64_t fingerprint = 0;
  std::uint32_t flags = 0;
};

void pack_header(const V2Header& h, std::uint8_t out[kV2HeaderBytes]) {
  std::memset(out, 0, kV2HeaderBytes);
  std::memcpy(out, kMagic, sizeof kMagic);
  put_le<std::uint32_t>(out + 4, kV2Version);
  put_le<std::uint64_t>(out + 8, h.records);
  put_le<std::uint32_t>(out + 16, h.chunk_records);
  put_le<std::uint32_t>(out + 20, h.chunk_count);
  put_le<std::uint64_t>(out + 24, h.index_offset);
  put_le<std::uint64_t>(out + 32, h.fingerprint);
  put_le<std::uint32_t>(out + 40, h.flags);
}

V2Header unpack_header(const std::uint8_t in[kV2HeaderBytes]) {
  V2Header h;
  h.records = get_le<std::uint64_t>(in + 8);
  h.chunk_records = get_le<std::uint32_t>(in + 16);
  h.chunk_count = get_le<std::uint32_t>(in + 20);
  h.index_offset = get_le<std::uint64_t>(in + 24);
  h.fingerprint = get_le<std::uint64_t>(in + 32);
  h.flags = get_le<std::uint32_t>(in + 40);
  return h;
}

[[nodiscard]] std::uint32_t expected_chunk_count(const V2Header& h) noexcept {
  if (h.chunk_records == 0) return 0;
  return static_cast<std::uint32_t>(
      (h.records + h.chunk_records - 1) / h.chunk_records);
}

[[nodiscard]] std::uint32_t expected_chunk_records(const V2Header& h,
                                                   std::uint32_t chunk) {
  if (chunk + 1 < h.chunk_count) return h.chunk_records;
  const std::uint64_t tail = h.records % h.chunk_records;
  return static_cast<std::uint32_t>(tail == 0 ? h.chunk_records : tail);
}

// Reads magic + version, distinguishing "not a trace" from "wrong
// container version" for every entry point.
std::uint32_t sniff_version(std::ifstream& in, const std::string& path) {
  std::uint8_t head[8];
  in.read(reinterpret_cast<char*>(head), sizeof head);
  if (!in) corrupt(path, "truncated header (not a trace file?)");
  if (std::memcmp(head, kMagic, sizeof kMagic) != 0) {
    corrupt(path, "bad magic (not an ICRT trace)");
  }
  return get_le<std::uint32_t>(head + 4);
}

// Structural probe of a v2 file through an ifstream: header sanity, index
// bounds, chunk contiguity. Shared by probe_trace and validate_trace; does
// not decode or checksum chunks.
TraceInfo probe_v2(std::ifstream& in, const std::string& path) {
  in.seekg(0, std::ios::end);
  const std::uint64_t file_bytes = static_cast<std::uint64_t>(in.tellg());
  if (file_bytes < kV2HeaderBytes) corrupt(path, "truncated v2 header");
  in.seekg(0);
  std::uint8_t raw[kV2HeaderBytes];
  in.read(reinterpret_cast<char*>(raw), sizeof raw);
  if (!in) corrupt(path, "truncated v2 header");
  const V2Header h = unpack_header(raw);
  if (h.chunk_records == 0 && h.records != 0) {
    corrupt(path, "zero chunk_records");
  }
  if (h.chunk_count != expected_chunk_count(h)) {
    corrupt(path, "chunk count disagrees with record count");
  }
  if (h.index_offset < kV2HeaderBytes ||
      h.index_offset + static_cast<std::uint64_t>(h.chunk_count) *
                           kV2IndexEntryBytes >
          file_bytes) {
    corrupt(path, "truncated chunk index");
  }

  TraceInfo info;
  info.path = path;
  info.version = kV2Version;
  info.records = h.records;
  info.fingerprint = h.fingerprint;
  info.file_bytes = file_bytes;
  info.chunk_records = h.chunk_records;
  info.chunk_count = h.chunk_count;

  in.seekg(static_cast<std::streamoff>(h.index_offset));
  std::uint64_t running = kV2HeaderBytes;
  for (std::uint32_t c = 0; c < h.chunk_count; ++c) {
    std::uint8_t entry[kV2IndexEntryBytes];
    in.read(reinterpret_cast<char*>(entry), sizeof entry);
    if (!in) corrupt(path, "truncated chunk index");
    const std::uint64_t offset = get_le<std::uint64_t>(entry);
    const std::uint64_t bytes = get_le<std::uint64_t>(entry + 8);
    const std::uint32_t records = get_le<std::uint32_t>(entry + 24);
    const std::uint32_t encoding = get_le<std::uint32_t>(entry + 28);
    if (offset != running) {
      corrupt(path, "chunk " + std::to_string(c) + " is not contiguous");
    }
    running = offset + bytes;
    if (running > h.index_offset) {
      corrupt(path, "chunk " + std::to_string(c) +
                        " overruns the index (truncated chunk tail?)");
    }
    if (records != expected_chunk_records(h, c)) {
      corrupt(path,
              "chunk " + std::to_string(c) + " has the wrong record count");
    }
    if (encoding == static_cast<std::uint32_t>(ChunkEncoding::kDelta)) {
      ++info.delta_chunks;
    } else if (encoding == static_cast<std::uint32_t>(ChunkEncoding::kRaw)) {
      ++info.raw_chunks;
    } else {
      corrupt(path, "chunk " + std::to_string(c) + " has unknown encoding " +
                        std::to_string(encoding));
    }
  }
  if (running != h.index_offset) {
    corrupt(path, "gap between the last chunk and the index");
  }
  return info;
}

TraceInfo probe_v1(std::ifstream& in, const std::string& path) {
  in.seekg(0, std::ios::end);
  const std::uint64_t file_bytes = static_cast<std::uint64_t>(in.tellg());
  in.seekg(8);
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  if (!in) corrupt(path, "truncated v1 header");
  TraceInfo info;
  info.path = path;
  info.version = 1;
  info.records = count;
  info.file_bytes = file_bytes;
  // v1 carries no fingerprint; compute it the way v2 would over the same
  // records, so a converted trace compares equal.
  std::uint64_t fp = kFnvOffsetBasis;
  std::uint8_t record[kRecordBytes];
  for (std::uint64_t n = 0; n < count; ++n) {
    in.read(reinterpret_cast<char*>(record), sizeof record);
    if (!in) corrupt(path, "truncated v1 trace");
    fp = fnv1a64(record, kRecordBytes, fp);
  }
  info.fingerprint = fp;
  return info;
}

}  // namespace

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size,
                      std::uint64_t state) noexcept {
  for (std::size_t i = 0; i < size; ++i) {
    state = (state ^ data[i]) * kFnvPrime;
  }
  return state;
}

std::uint64_t fingerprint_fold(std::uint64_t state,
                               const Instruction& instruction) {
  std::uint8_t record[kRecordBytes];
  pack_record(instruction, record);
  return fnv1a64(record, kRecordBytes, state);
}

// --- TraceV2Writer ---

TraceV2Writer::TraceV2Writer(const std::string& path, Options options)
    : path_(path),
      out_(path, std::ios::binary | std::ios::trunc),
      options_(options) {
  if (options_.chunk_records == 0) {
    options_.chunk_records = kV2DefaultChunkRecords;
  }
  if (!out_) {
    throw std::runtime_error("TraceV2Writer: cannot open " + path);
  }
  // Placeholder header; patched with the real counts/index in close().
  std::uint8_t header[kV2HeaderBytes];
  V2Header h;
  h.flags = options_.delta ? kFlagDeltaAllowed : 0;
  pack_header(h, header);
  write_bytes(header, sizeof header, "header");
  pending_.reserve(options_.chunk_records);
}

TraceV2Writer::~TraceV2Writer() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; explicit close() reports the failure.
  }
}

void TraceV2Writer::write_bytes(const void* data, std::size_t size,
                                const char* what) {
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(size));
  if (!out_) {
    throw std::runtime_error(
        "TraceV2Writer: " + std::string(what) + " write failed for " + path_ +
        " at byte offset " + std::to_string(offset_) +
        " (disk full or stream closed?)");
  }
}

void TraceV2Writer::write(const Instruction& instruction) {
  fingerprint_ = fingerprint_fold(fingerprint_, instruction);
  pending_.push_back(instruction);
  ++count_;
  if (pending_.size() == options_.chunk_records) flush_chunk();
}

void TraceV2Writer::flush_chunk() {
  if (pending_.empty()) return;
  std::vector<std::uint8_t> encoded;
  ChunkEncoding encoding = ChunkEncoding::kRaw;
  if (options_.delta && encode_delta(pending_, encoded) &&
      encoded.size() < pending_.size() * kRecordBytes) {
    encoding = ChunkEncoding::kDelta;
  } else {
    encoded = encode_raw(pending_);
  }
  IndexEntry entry;
  entry.offset = offset_;
  entry.bytes = encoded.size();
  entry.checksum = fnv1a64(encoded.data(), encoded.size());
  entry.records = static_cast<std::uint32_t>(pending_.size());
  entry.encoding = static_cast<std::uint32_t>(encoding);
  write_bytes(encoded.data(), encoded.size(), "chunk");
  offset_ += encoded.size();
  index_.push_back(entry);
  pending_.clear();
}

void TraceV2Writer::close() {
  if (closed_) return;
  closed_ = true;
  flush_chunk();
  const std::uint64_t index_offset = offset_;
  std::uint8_t entry[kV2IndexEntryBytes];
  for (const IndexEntry& e : index_) {
    put_le<std::uint64_t>(entry, e.offset);
    put_le<std::uint64_t>(entry + 8, e.bytes);
    put_le<std::uint64_t>(entry + 16, e.checksum);
    put_le<std::uint32_t>(entry + 24, e.records);
    put_le<std::uint32_t>(entry + 28, e.encoding);
    write_bytes(entry, sizeof entry, "index");
    offset_ += sizeof entry;
  }
  V2Header h;
  h.records = count_;
  h.chunk_records = options_.chunk_records;
  h.chunk_count = static_cast<std::uint32_t>(index_.size());
  h.index_offset = index_offset;
  h.fingerprint = fingerprint_;
  h.flags = options_.delta ? kFlagDeltaAllowed : 0;
  std::uint8_t header[kV2HeaderBytes];
  pack_header(h, header);
  out_.seekp(0);
  out_.write(reinterpret_cast<const char*>(header), sizeof header);
  out_.flush();
  if (!out_) {
    throw std::runtime_error(
        "TraceV2Writer: finalizing header failed for " + path_ + " after " +
        std::to_string(count_) + " record(s)");
  }
  out_.close();
}

// --- StreamingTraceSource ---

StreamingTraceSource::StreamingTraceSource(const std::string& path)
    : path_(path) {
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      throw std::runtime_error("StreamingTraceSource: cannot open " + path);
    }
    const std::uint32_t version = sniff_version(in, path);
    if (version == 1) {
      throw std::runtime_error(
          "StreamingTraceSource: " + path +
          " is an ICRT v1 trace; replay it with FileTraceSource (icr_sim "
          "does this automatically) or upgrade it with 'icr_trace convert'");
    }
    if (version != kV2Version) {
      corrupt(path, "unsupported version " + std::to_string(version));
    }
  }

  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) {
    throw std::runtime_error("StreamingTraceSource: cannot open " + path);
  }
  struct stat st{};
  if (::fstat(fd_, &st) != 0 ||
      static_cast<std::uint64_t>(st.st_size) < kV2HeaderBytes) {
    ::close(fd_);
    fd_ = -1;
    corrupt(path, "truncated v2 header");
  }
  map_bytes_ = static_cast<std::size_t>(st.st_size);
  void* map = ::mmap(nullptr, map_bytes_, PROT_READ, MAP_PRIVATE, fd_, 0);
  if (map == MAP_FAILED) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("StreamingTraceSource: mmap failed for " + path);
  }
  map_ = static_cast<const std::uint8_t*>(map);

  const V2Header h = unpack_header(map_);
  if (h.records == 0) corrupt(path, "empty trace (zero records)");
  if (h.chunk_records == 0) corrupt(path, "zero chunk_records");
  if (h.chunk_count != expected_chunk_count(h)) {
    corrupt(path, "chunk count disagrees with record count");
  }
  if (h.index_offset < kV2HeaderBytes ||
      h.index_offset + static_cast<std::uint64_t>(h.chunk_count) *
                           kV2IndexEntryBytes >
          map_bytes_) {
    corrupt(path, "truncated chunk index");
  }
  index_offset_ = h.index_offset;
  info_.path = path;
  info_.version = kV2Version;
  info_.records = h.records;
  info_.fingerprint = h.fingerprint;
  info_.file_bytes = map_bytes_;
  info_.chunk_records = h.chunk_records;
  info_.chunk_count = h.chunk_count;
  for (std::uint32_t c = 0; c < h.chunk_count; ++c) {
    const ChunkMeta meta = chunk_meta(c);
    if (meta.encoding == static_cast<std::uint32_t>(ChunkEncoding::kDelta)) {
      ++info_.delta_chunks;
    } else {
      ++info_.raw_chunks;
    }
  }
  load_chunk(0);
}

StreamingTraceSource::~StreamingTraceSource() {
  if (map_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(map_), map_bytes_);
  }
  if (fd_ >= 0) ::close(fd_);
}

StreamingTraceSource::ChunkMeta StreamingTraceSource::chunk_meta(
    std::uint32_t chunk) const {
  const std::uint8_t* entry =
      map_ + index_offset_ +
      static_cast<std::size_t>(chunk) * kV2IndexEntryBytes;
  ChunkMeta meta;
  meta.offset = get_le<std::uint64_t>(entry);
  meta.bytes = get_le<std::uint64_t>(entry + 8);
  meta.checksum = get_le<std::uint64_t>(entry + 16);
  meta.records = get_le<std::uint32_t>(entry + 24);
  meta.encoding = get_le<std::uint32_t>(entry + 28);
  return meta;
}

void StreamingTraceSource::load_chunk(std::uint32_t chunk) {
  const ChunkMeta meta = chunk_meta(chunk);
  const std::string where = "chunk " + std::to_string(chunk);
  if (meta.offset < kV2HeaderBytes || meta.offset > index_offset_ ||
      meta.bytes > index_offset_ - meta.offset) {
    corrupt(path_, where + " overruns the file (truncated chunk tail?)");
  }
  if (meta.records == 0 || meta.records > info_.chunk_records) {
    corrupt(path_, where + " has an invalid record count");
  }
  const std::uint8_t* data = map_ + meta.offset;
  if (fnv1a64(data, static_cast<std::size_t>(meta.bytes)) != meta.checksum) {
    corrupt(path_, where + " checksum mismatch (corrupt or torn write)");
  }
  try {
    if (meta.encoding == static_cast<std::uint32_t>(ChunkEncoding::kDelta)) {
      decode_delta(data, static_cast<std::size_t>(meta.bytes), meta.records,
                   chunk_);
    } else if (meta.encoding ==
               static_cast<std::uint32_t>(ChunkEncoding::kRaw)) {
      decode_raw(data, static_cast<std::size_t>(meta.bytes), meta.records,
                 chunk_);
    } else {
      corrupt(path_, where + " has unknown encoding " +
                         std::to_string(meta.encoding));
    }
  } catch (const std::runtime_error& error) {
    corrupt(path_, where + ": " + error.what());
  }
  current_chunk_ = chunk;
  pos_in_chunk_ = 0;
}

Instruction StreamingTraceSource::next() {
  if (pos_in_chunk_ == chunk_.size()) {
    const std::uint32_t next_chunk =
        current_chunk_ + 1 == info_.chunk_count ? 0 : current_chunk_ + 1;
    load_chunk(next_chunk);
  }
  return chunk_[pos_in_chunk_++];
}

void StreamingTraceSource::seek_to(std::uint64_t n) {
  const std::uint64_t record = n % info_.records;
  const std::uint32_t chunk =
      static_cast<std::uint32_t>(record / info_.chunk_records);
  if (chunk != current_chunk_) load_chunk(chunk);
  pos_in_chunk_ = static_cast<std::size_t>(record % info_.chunk_records);
}

std::uint64_t StreamingTraceSource::position() const noexcept {
  const std::uint64_t absolute =
      static_cast<std::uint64_t>(current_chunk_) * info_.chunk_records +
      pos_in_chunk_;
  return absolute % info_.records;
}

std::size_t StreamingTraceSource::resident_bytes() const noexcept {
  return sizeof(*this) + chunk_.capacity() * sizeof(Instruction) +
         path_.capacity();
}

// --- probe / validate / open ---

TraceInfo probe_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("probe_trace: cannot open " + path);
  const std::uint32_t version = sniff_version(in, path);
  if (version == 1) return probe_v1(in, path);
  if (version == kV2Version) return probe_v2(in, path);
  corrupt(path, "unsupported version " + std::to_string(version));
}

TraceInfo validate_trace(const std::string& path) {
  TraceInfo info = probe_trace(path);
  if (info.records == 0) {
    corrupt(path, "empty trace (zero records)");
  }
  if (info.version == 1) {
    // probe_v1 already walked every record; nothing else to check.
    return info;
  }
  // Decode every chunk (verifying each checksum) and recompute the content
  // fingerprint the header claims.
  StreamingTraceSource source(path);
  std::uint64_t fp = kFnvOffsetBasis;
  for (std::uint64_t n = 0; n < info.records; ++n) {
    fp = fingerprint_fold(fp, source.next());
  }
  if (fp != info.fingerprint) {
    corrupt(path, "content fingerprint mismatch (header claims " +
                      std::to_string(info.fingerprint) + ", records hash to " +
                      std::to_string(fp) + ")");
  }
  return info;
}

OpenedTrace open_trace(const std::string& path) {
  std::uint32_t version = 0;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("open_trace: cannot open " + path);
    version = sniff_version(in, path);
  }
  OpenedTrace opened;
  if (version == 1) {
    auto source = std::make_unique<FileTraceSource>(path);
    opened.info.path = path;
    opened.info.version = 1;
    opened.info.records = source->size();
    // Fold the fingerprint through the public replay interface so a v1
    // trace carries the same identity its v2 conversion would.
    std::uint64_t fp = kFnvOffsetBasis;
    for (std::uint64_t n = 0; n < source->size(); ++n) {
      fp = fingerprint_fold(fp, source->next());
    }
    source->seek_to(0);
    opened.info.fingerprint = fp;
    opened.source = std::move(source);
    return opened;
  }
  auto source = std::make_unique<StreamingTraceSource>(path);
  opened.info = source->info();
  opened.source = std::move(source);
  return opened;
}

void record_trace_v2(TraceSource& source, std::uint64_t count,
                     const std::string& path, TraceV2Writer::Options options) {
  TraceV2Writer writer(path, options);
  for (std::uint64_t n = 0; n < count; ++n) {
    writer.write(source.next());
  }
  writer.close();
}

}  // namespace icr::trace
