// The dynamic instruction record consumed by the timing model.
//
// The simulator is trace-driven: workload generators (src/trace/workloads.h)
// produce an infinite stream of Instruction records carrying everything the
// out-of-order pipeline needs — op class, register dependences, memory
// address, and the *actual* branch outcome (so mispredictions are decided by
// comparing the predictor against ground truth, the standard trace-driven
// technique).
#pragma once

#include <cstdint>

namespace icr::trace {

enum class OpClass : std::uint8_t {
  kIntAlu,
  kIntMul,
  kIntDiv,
  kFpAlu,
  kFpMul,
  kFpDiv,
  kLoad,
  kStore,
  kBranch,
};

[[nodiscard]] const char* to_string(OpClass op) noexcept;

struct Instruction {
  OpClass op = OpClass::kIntAlu;
  std::uint64_t pc = 0;
  std::uint64_t mem_addr = 0;     // loads/stores; 8-byte aligned
  std::uint64_t store_value = 0;  // stores
  std::uint64_t next_pc = 0;      // actual successor (branch target if taken)
  bool branch_taken = false;      // actual outcome
  // Architectural registers (0..kNumRegs-1); -1 = none.
  std::int16_t dest = -1;
  std::int16_t src1 = -1;
  std::int16_t src2 = -1;

  [[nodiscard]] bool is_load() const noexcept { return op == OpClass::kLoad; }
  [[nodiscard]] bool is_store() const noexcept {
    return op == OpClass::kStore;
  }
  [[nodiscard]] bool is_mem() const noexcept {
    return is_load() || is_store();
  }
  [[nodiscard]] bool is_branch() const noexcept {
    return op == OpClass::kBranch;
  }

  static constexpr int kNumRegs = 64;
};

// Source of a dynamic instruction stream. Streams are infinite; the
// simulator decides how many instructions to run.
class TraceSource {
 public:
  virtual ~TraceSource() = default;
  virtual Instruction next() = 0;
};

// A TraceSource backed by a finite recorded trace that can be repositioned
// to any instruction boundary. seek_to(n) positions the stream so the next
// next() returns record n % size() — exactly where n sequential next()
// calls from the start would land (the stream loops, so n may exceed
// size()). This is what makes recorded traces shardable by instruction
// interval in campaigns and lets sampling fast-forward become a seek.
class SeekableTraceSource : public TraceSource {
 public:
  virtual void seek_to(std::uint64_t n) = 0;
  [[nodiscard]] virtual std::uint64_t size() const = 0;
};

}  // namespace icr::trace
