#include "src/trace/patterns.h"

#include <algorithm>
#include <numeric>

#include "src/util/check.h"

namespace icr::trace {

SequentialStream::SequentialStream(std::uint64_t base,
                                   std::uint64_t region_bytes,
                                   std::uint32_t stride_bytes) noexcept
    : base_(base & ~std::uint64_t{7}),
      region_(region_bytes),
      stride_(stride_bytes) {}

std::uint64_t SequentialStream::next(Rng& rng) {
  (void)rng;
  const std::uint64_t addr = base_ + offset_;
  offset_ = (offset_ + stride_) % region_;
  return addr & ~std::uint64_t{7};
}

ZipfBlocks::ZipfBlocks(std::uint64_t base, std::uint64_t region_bytes,
                       double theta)
    : base_(base & ~std::uint64_t{7}),
      sampler_(std::max<std::uint64_t>(1, region_bytes / 64), theta) {
  // A fixed pseudo-random rank->block shuffle keeps hot blocks spread over
  // the cache sets instead of clustered at the region start.
  shuffle_.resize(static_cast<std::size_t>(sampler_.universe()));
  std::iota(shuffle_.begin(), shuffle_.end(), 0U);
  Rng shuffler(base ^ 0x5EEDF00DULL);
  for (std::size_t i = shuffle_.size(); i > 1; --i) {
    std::swap(shuffle_[i - 1],
              shuffle_[static_cast<std::size_t>(shuffler.next_below(i))]);
  }
}

std::uint64_t ZipfBlocks::next(Rng& rng) {
  const std::uint64_t rank = sampler_.sample(rng);
  const std::uint64_t block = shuffle_[static_cast<std::size_t>(rank)];
  const std::uint64_t word = rng.next_below(8);
  return base_ + block * 64 + word * 8;
}

PointerChase::PointerChase(std::uint64_t base, std::uint64_t region_bytes,
                           std::uint32_t node_bytes, Rng& rng)
    : base_(base & ~std::uint64_t{7}), node_bytes_(node_bytes) {
  const std::uint32_t nodes =
      static_cast<std::uint32_t>(std::max<std::uint64_t>(
          2, region_bytes / std::max<std::uint32_t>(8, node_bytes)));
  // Build one Hamiltonian cycle via Sattolo's algorithm: every node is
  // visited before the walk repeats, defeating any cache smaller than the
  // region.
  std::vector<std::uint32_t> order(nodes);
  std::iota(order.begin(), order.end(), 0U);
  for (std::size_t i = nodes; i > 1; --i) {
    std::swap(order[i - 1],
              order[static_cast<std::size_t>(rng.next_below(i - 1))]);
  }
  successor_.resize(nodes);
  for (std::uint32_t i = 0; i < nodes; ++i) {
    successor_[order[i]] = order[(i + 1) % nodes];
  }
  current_ = order[0];
}

std::uint64_t PointerChase::next(Rng& rng) {
  (void)rng;
  const std::uint64_t addr =
      base_ + static_cast<std::uint64_t>(current_) * node_bytes_;
  current_ = successor_[current_];
  return addr & ~std::uint64_t{7};
}

void MixturePattern::add(double weight,
                         std::unique_ptr<AddressPattern> pattern) {
  ICR_CHECK(weight > 0.0);
  const double prev = cumulative_.empty() ? 0.0 : cumulative_.back();
  cumulative_.push_back(prev + weight);
  patterns_.push_back(std::move(pattern));
}

std::uint64_t MixturePattern::next(Rng& rng) {
  ICR_CHECK(!patterns_.empty());
  const double u = rng.next_double() * cumulative_.back();
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  last_ = static_cast<std::size_t>(it - cumulative_.begin());
  if (last_ >= patterns_.size()) last_ = patterns_.size() - 1;
  return patterns_[last_]->next(rng);
}

}  // namespace icr::trace
