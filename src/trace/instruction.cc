#include "src/trace/instruction.h"

namespace icr::trace {

const char* to_string(OpClass op) noexcept {
  switch (op) {
    case OpClass::kIntAlu:
      return "ialu";
    case OpClass::kIntMul:
      return "imul";
    case OpClass::kIntDiv:
      return "idiv";
    case OpClass::kFpAlu:
      return "falu";
    case OpClass::kFpMul:
      return "fmul";
    case OpClass::kFpDiv:
      return "fdiv";
    case OpClass::kLoad:
      return "load";
    case OpClass::kStore:
      return "store";
    case OpClass::kBranch:
      return "branch";
  }
  return "?";
}

}  // namespace icr::trace
