// Importer for QEMU-TCG-cache-plugin-style memory access logs.
//
// Real program traces usually arrive as text logs from an execution-driven
// front end (QEMU TCG plugins, Pin, DynamoRIO); this translates the common
// line-per-event shape into an ICRT-v2 container the simulator can replay.
// Accepted grammar, one event per line:
//
//   insn  <pc>            an executed instruction with no memory access
//   load  <pc> <vaddr>    a load executed at <pc> touching <vaddr>
//   store <pc> <vaddr>    a store executed at <pc> touching <vaddr>
//
// Numbers parse with strtoull base 0, so 0x-prefixed hex and decimal both
// work. Blank lines and lines starting with '#' are comments; lines whose
// first token is an unknown keyword are counted and skipped (plugin logs
// interleave other event kinds); a known keyword with missing or
// unparseable operands throws with the line number. Tokens past the
// grammar are ignored (plugins often append size/flags).
//
// The log carries less than an Instruction needs, so the importer fills
// the gap deterministically (same log -> bit-identical trace):
//
//   - next_pc is the following event's pc (the last record wraps to the
//     first pc, matching the looping-replay contract). A non-memory record
//     whose successor is not pc+4 becomes a taken kBranch; fall-through
//     records stay kIntAlu (a not-taken branch is indistinguishable from
//     ALU in these logs).
//   - a load/store line at the same pc as the immediately preceding insn
//     line upgrades that record in place (the usual plugin shape: the insn
//     line, then its accesses) instead of double-counting the instruction.
//   - mem_addr is aligned down to 8 bytes (the Instruction contract),
//     store_value and register operands are synthesized by mixing the pc,
//     address, and event ordinal through SplitMix64.
#pragma once

#include <cstdint>
#include <string>

#include "src/trace/trace_v2.h"

namespace icr::trace {

struct ImportStats {
  std::uint64_t lines = 0;     // lines read, including comments
  std::uint64_t skipped = 0;   // blank / comment / unknown-keyword lines
  std::uint64_t records = 0;   // instructions written to the trace
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t branches = 0;  // records classified as taken branches
};

// Translates `log_path` into an ICRT-v2 container at `trace_path`. Throws
// std::runtime_error on an unreadable log, a malformed known-keyword line
// (naming the line number), or a log with no events.
ImportStats import_qemu_log(const std::string& log_path,
                            const std::string& trace_path,
                            TraceV2Writer::Options options = {});

}  // namespace icr::trace
