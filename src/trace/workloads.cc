#include "src/trace/workloads.h"

#include <algorithm>

#include "src/util/check.h"

namespace icr::trace {

const char* to_string(App app) noexcept {
  switch (app) {
    case App::kGzip:
      return "gzip";
    case App::kVpr:
      return "vpr";
    case App::kGcc:
      return "gcc";
    case App::kMcf:
      return "mcf";
    case App::kParser:
      return "parser";
    case App::kMesa:
      return "mesa";
    case App::kVortex:
      return "vortex";
    case App::kBzip2:
      return "bzip2";
  }
  return "?";
}

std::vector<App> all_apps() {
  return {App::kGzip, App::kVpr,  App::kGcc,    App::kMcf,
          App::kParser, App::kMesa, App::kVortex, App::kBzip2};
}

namespace {

PatternSpec zipf(double w, std::uint64_t region, double theta) {
  PatternSpec p;
  p.kind = PatternSpec::Kind::kZipf;
  p.weight = w;
  p.region_bytes = region;
  p.zipf_theta = theta;
  return p;
}

PatternSpec seq(double w, std::uint64_t region, std::uint32_t stride = 8) {
  PatternSpec p;
  p.kind = PatternSpec::Kind::kSequential;
  p.weight = w;
  p.region_bytes = region;
  p.stride_bytes = stride;
  return p;
}

PatternSpec stride(double w, std::uint64_t region, std::uint32_t step) {
  PatternSpec p;
  p.kind = PatternSpec::Kind::kStride;
  p.weight = w;
  p.region_bytes = region;
  p.stride_bytes = step;
  return p;
}

PatternSpec chase(double w, std::uint64_t region,
                  std::uint32_t node_bytes = 64) {
  PatternSpec p;
  p.kind = PatternSpec::Kind::kChase;
  p.weight = w;
  p.region_bytes = region;
  p.node_bytes = node_bytes;
  return p;
}

constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * 1024;

}  // namespace

WorkloadProfile profile_for(App app) {
  WorkloadProfile p;
  p.name = to_string(app);
  switch (app) {
    case App::kGzip:
      // Streaming compressor: linear input scan + hot dictionary/huffman
      // tables; very predictable inner loops.
      p.load_frac = 0.33;
      p.store_frac = 0.11;
      p.branch_frac = 0.13;
      p.patterns = {seq(0.15, 512 * KiB), zipf(0.85, 14 * KiB, 1.30)};
      p.hard_branch_frac = 0.05;
      p.code_footprint_bytes = 8 * KiB;
      p.seed = 0x671Au;
      break;
    case App::kVpr:
      // Place & route: medium working set with good locality, a strided
      // routing-grid component, moderately hard branches.
      p.load_frac = 0.33;
      p.store_frac = 0.12;
      p.branch_frac = 0.14;
      p.fp_alu_frac = 0.08;
      p.patterns = {zipf(0.90, 14 * KiB, 1.30), stride(0.10, 6 * KiB, 136)};
      p.hard_branch_frac = 0.10;
      p.code_footprint_bytes = 12 * KiB;
      p.seed = 0x4412u;
      break;
    case App::kGcc:
      // Compiler: large data and code footprints, pointer-linked IR,
      // branchy and moderately unpredictable.
      p.load_frac = 0.32;
      p.store_frac = 0.13;
      p.branch_frac = 0.18;
      p.patterns = {zipf(0.86, 16 * KiB, 1.35), seq(0.08, 256 * KiB),
                    chase(0.06, 48 * KiB)};
      p.dependent_load_frac = 0.25;
      p.hard_branch_frac = 0.10;
      p.code_footprint_bytes = 48 * KiB;
      p.seed = 0x6CCu;
      break;
    case App::kMcf:
      // Network-simplex: dominated by a pointer chase over a region far
      // larger than any cache; a tiny hot set (node headers) is nearly the
      // only reuse — which ICR replicates almost completely (paper §5.2).
      p.load_frac = 0.36;
      p.store_frac = 0.08;
      p.branch_frac = 0.12;
      p.patterns = {chase(0.35, 2 * MiB), zipf(0.65, 8 * KiB, 1.20)};
      p.dependent_load_frac = 0.70;
      p.hard_branch_frac = 0.12;
      p.code_footprint_bytes = 4 * KiB;
      p.seed = 0x3CFu;
      break;
    case App::kParser:
      // Link-grammar parser: pointer-heavy dictionary walks plus a medium
      // hot set.
      p.load_frac = 0.33;
      p.store_frac = 0.12;
      p.branch_frac = 0.16;
      p.patterns = {chase(0.04, 128 * KiB), zipf(0.88, 12 * KiB, 1.35),
                    seq(0.08, 64 * KiB)};
      p.dependent_load_frac = 0.35;
      p.hard_branch_frac = 0.10;
      p.code_footprint_bytes = 24 * KiB;
      p.seed = 0x9A55u;
      break;
    case App::kMesa:
      // Software renderer: FP heavy, streaming vertex/span walks over a
      // working set that just about fits the dL1 — extra evictions from
      // replication visibly raise its miss rate (paper Fig. 4).
      p.load_frac = 0.31;
      p.store_frac = 0.08;
      p.branch_frac = 0.08;
      p.fp_alu_frac = 0.20;
      p.fp_mul_frac = 0.08;
      p.patterns = {seq(0.45, 6 * KiB), stride(0.20, 6 * KiB, 264),
                    zipf(0.35, 8 * KiB, 1.10)};
      p.hard_branch_frac = 0.04;
      p.code_footprint_bytes = 16 * KiB;
      p.seed = 0x3E5Au;
      break;
    case App::kVortex:
      // OO database: skewed object accesses, index chases, sizable stores.
      p.load_frac = 0.33;
      p.store_frac = 0.15;
      p.branch_frac = 0.14;
      p.patterns = {zipf(0.89, 14 * KiB, 1.35), chase(0.03, 96 * KiB),
                    seq(0.08, 128 * KiB)};
      p.dependent_load_frac = 0.20;
      p.hard_branch_frac = 0.08;
      p.code_footprint_bytes = 32 * KiB;
      p.seed = 0x0F0Fu;
      break;
    case App::kBzip2:
      // Block-sorting compressor: long sequential scans over large blocks
      // plus a hot bucket table.
      p.load_frac = 0.33;
      p.store_frac = 0.11;
      p.branch_frac = 0.11;
      p.patterns = {seq(0.18, 1 * MiB), zipf(0.82, 14 * KiB, 1.30)};
      p.hard_branch_frac = 0.07;
      p.code_footprint_bytes = 8 * KiB;
      p.seed = 0xB21Bu;
      break;
  }
  return p;
}

SyntheticWorkload::SyntheticWorkload(WorkloadProfile profile)
    : profile_(std::move(profile)), rng_(profile_.seed) {
  ICR_CHECK(!profile_.patterns.empty());
  memory_ = std::make_unique<MixturePattern>();
  std::uint64_t base = 0x1000'0000ULL;
  for (const PatternSpec& spec : profile_.patterns) {
    std::unique_ptr<AddressPattern> pattern;
    switch (spec.kind) {
      case PatternSpec::Kind::kZipf:
        pattern = std::make_unique<ZipfBlocks>(base, spec.region_bytes,
                                               spec.zipf_theta);
        is_chase_component_.push_back(false);
        break;
      case PatternSpec::Kind::kSequential:
      case PatternSpec::Kind::kStride:
        pattern = std::make_unique<SequentialStream>(base, spec.region_bytes,
                                                     spec.stride_bytes);
        is_chase_component_.push_back(false);
        break;
      case PatternSpec::Kind::kChase:
        pattern = std::make_unique<PointerChase>(base, spec.region_bytes,
                                                 spec.node_bytes, rng_);
        is_chase_component_.push_back(true);
        break;
    }
    memory_->add(spec.weight, std::move(pattern));
    base += 0x1000'0000ULL;  // disjoint data regions
  }
  code_base_ = 0x0040'0000ULL;
  pc_ = code_base_;
  recent_dests_.assign(16, 1);
  site_visits_.assign(profile_.code_footprint_bytes / 4, 0);
}

OpClass SyntheticWorkload::pick_op() {
  double u = rng_.next_double();
  const WorkloadProfile& p = profile_;
  if ((u -= p.load_frac) < 0) return OpClass::kLoad;
  if ((u -= p.store_frac) < 0) return OpClass::kStore;
  if ((u -= p.branch_frac) < 0) return OpClass::kBranch;
  if ((u -= p.fp_alu_frac) < 0) return OpClass::kFpAlu;
  if ((u -= p.fp_mul_frac) < 0) return OpClass::kFpMul;
  if ((u -= p.int_mul_frac) < 0) return OpClass::kIntMul;
  return OpClass::kIntAlu;
}

std::int16_t SyntheticWorkload::pick_source() {
  // A quarter of the operands come from the immediately preceding producer
  // (tight dependence chains); the rest are drawn uniformly from a 16-deep
  // producer window, leaving the out-of-order core ILP to extract.
  const std::size_t n = recent_dests_.size();
  if (rng_.bernoulli(0.25)) return recent_dests_[n - 1];
  return recent_dests_[static_cast<std::size_t>(rng_.next_below(n))];
}

void SyntheticWorkload::advance_pc(Instruction& instr) {
  const std::uint64_t footprint = profile_.code_footprint_bytes;
  auto wrap = [&](std::uint64_t pc) {
    return code_base_ + ((pc - code_base_) % footprint);
  };

  if (!instr.is_branch()) {
    instr.next_pc = wrap(instr.pc + 4);
    pc_ = instr.next_pc;
    return;
  }

  const std::size_t site = static_cast<std::size_t>(
      ((instr.pc - code_base_) / 4) % site_visits_.size());
  const bool hard = rng_.bernoulli(profile_.hard_branch_frac);
  bool taken;
  if (hard) {
    taken = rng_.bernoulli(profile_.hard_branch_taken);
  } else {
    // Loop-end branch: taken (trip-1) times, then falls through — a
    // periodic pattern the two-level predictor can learn.
    const std::uint16_t trip =
        static_cast<std::uint16_t>(8 + (mix64(instr.pc) % 24));
    taken = (site_visits_[site] % trip) != trip - 1u;
  }
  ++site_visits_[site];

  instr.branch_taken = taken;
  if (taken) {
    // Backward loop target derived deterministically from the site, so the
    // BTB sees a stable target.
    const std::uint64_t loop_len = 16 + (mix64(instr.pc ^ 0xB5) % 48) * 4;
    instr.next_pc =
        instr.pc >= code_base_ + loop_len ? instr.pc - loop_len
                                          : wrap(instr.pc + 4 + loop_len);
  } else {
    instr.next_pc = wrap(instr.pc + 4);
  }
  pc_ = instr.next_pc;
}

Instruction SyntheticWorkload::next() {
  Instruction instr;
  instr.pc = pc_;
  instr.op = pick_op();
  ++seq_;

  const std::int16_t dest = static_cast<std::int16_t>(1 + (seq_ % 48));

  // Loads always join the spine — address arithmetic feeding loads feeding
  // consumers is the canonical dependence shape that puts dL1 hit latency on
  // the critical path — while other ops join with probability spine_frac.
  const bool on_spine =
      instr.op == OpClass::kLoad || rng_.bernoulli(profile_.spine_frac);

  switch (instr.op) {
    case OpClass::kLoad: {
      instr.mem_addr = memory_->next(rng_);
      const bool chase_ref =
          is_chase_component_[memory_->last_component()];
      instr.dest = dest;
      if (chase_ref && last_load_dest_ >= 0 &&
          rng_.bernoulli(profile_.dependent_load_frac)) {
        instr.src1 = last_load_dest_;  // serialized pointer chase
      } else if (on_spine) {
        instr.src1 = spine_reg_;
      } else {
        instr.src1 = pick_source();
      }
      last_load_dest_ = dest;
      if (on_spine) spine_reg_ = dest;
      break;
    }
    case OpClass::kStore: {
      instr.mem_addr = memory_->next(rng_);
      instr.store_value = mix64(seq_ ^ instr.mem_addr);
      instr.src1 = on_spine ? spine_reg_ : pick_source();  // data
      instr.src2 = pick_source();                          // address base
      break;
    }
    case OpClass::kBranch: {
      instr.src1 = on_spine ? spine_reg_ : pick_source();
      break;
    }
    default: {
      instr.dest = dest;
      instr.src1 = on_spine ? spine_reg_ : pick_source();
      if (rng_.bernoulli(0.6)) instr.src2 = pick_source();
      if (on_spine) spine_reg_ = dest;
      break;
    }
  }

  if (instr.dest >= 0) {
    recent_dests_.erase(recent_dests_.begin());
    recent_dests_.push_back(instr.dest);
  }
  advance_pc(instr);
  return instr;
}

}  // namespace icr::trace
