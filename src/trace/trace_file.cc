#include "src/trace/trace_file.h"

#include <cstring>
#include <stdexcept>

namespace icr::trace {
namespace {

constexpr char kMagic[4] = {'I', 'C', 'R', 'T'};
constexpr std::uint32_t kVersion = 1;

// On-disk record layout (packed manually for portability).
struct RawRecord {
  std::uint64_t pc;
  std::uint64_t mem_addr;
  std::uint64_t store_value;
  std::uint64_t next_pc;
  std::uint8_t op;
  std::uint8_t branch_taken;
  std::int16_t dest;
  std::int16_t src1;
  std::int16_t src2;
};
static_assert(sizeof(RawRecord) == kRecordBytes,
              "trace record layout drifted");

RawRecord pack(const Instruction& i) {
  RawRecord r{};
  r.pc = i.pc;
  r.mem_addr = i.mem_addr;
  r.store_value = i.store_value;
  r.next_pc = i.next_pc;
  r.op = static_cast<std::uint8_t>(i.op);
  r.branch_taken = i.branch_taken ? 1 : 0;
  r.dest = i.dest;
  r.src1 = i.src1;
  r.src2 = i.src2;
  return r;
}

Instruction unpack(const RawRecord& r) {
  Instruction i;
  i.pc = r.pc;
  i.mem_addr = r.mem_addr;
  i.store_value = r.store_value;
  i.next_pc = r.next_pc;
  i.op = static_cast<OpClass>(r.op);
  i.branch_taken = r.branch_taken != 0;
  i.dest = r.dest;
  i.src1 = r.src1;
  i.src2 = r.src2;
  return i;
}

}  // namespace

void pack_record(const Instruction& instruction,
                 std::uint8_t out[kRecordBytes]) {
  const RawRecord r = pack(instruction);
  std::memcpy(out, &r, sizeof r);
}

Instruction unpack_record(const std::uint8_t in[kRecordBytes]) {
  RawRecord r;
  std::memcpy(&r, in, sizeof r);
  return unpack(r);
}

TraceWriter::TraceWriter(const std::string& path)
    : path_(path), out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) {
    throw std::runtime_error("TraceWriter: cannot open " + path);
  }
  // Placeholder header; count is patched in close().
  out_.write(kMagic, sizeof kMagic);
  out_.write(reinterpret_cast<const char*>(&kVersion), sizeof kVersion);
  const std::uint64_t zero = 0;
  out_.write(reinterpret_cast<const char*>(&zero), sizeof zero);
  if (!out_) {
    throw std::runtime_error("TraceWriter: header write failed for " + path);
  }
}

TraceWriter::~TraceWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; explicit close() reports the failure.
  }
}

void TraceWriter::write(const Instruction& instruction) {
  const RawRecord r = pack(instruction);
  out_.write(reinterpret_cast<const char*>(&r), sizeof r);
  if (!out_) {
    throw std::runtime_error(
        "TraceWriter: write failed for " + path_ + " at byte offset " +
        std::to_string(16 + count_ * kRecordBytes) +
        " (disk full or stream closed?)");
  }
  ++count_;
}

void TraceWriter::close() {
  if (closed_) return;
  closed_ = true;
  out_.seekp(8);
  out_.write(reinterpret_cast<const char*>(&count_), sizeof count_);
  out_.flush();
  if (!out_) {
    throw std::runtime_error(
        "TraceWriter: finalizing header failed for " + path_ + " after " +
        std::to_string(count_) + " record(s)");
  }
  out_.close();
}

FileTraceSource::FileTraceSource(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("FileTraceSource: cannot open " + path);
  }
  char magic[4];
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  in.read(magic, sizeof magic);
  in.read(reinterpret_cast<char*>(&version), sizeof version);
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("FileTraceSource: bad magic in " + path);
  }
  if (version != kVersion) {
    if (version == 2) {
      throw std::runtime_error(
          "FileTraceSource: " + path +
          " is an ICRT-v2 container; replay it with StreamingTraceSource "
          "(icr_sim does this automatically) or downgrade it with "
          "'icr_trace convert --v1'");
    }
    throw std::runtime_error("FileTraceSource: unsupported version " +
                             std::to_string(version) + " in " + path);
  }
  if (count == 0) {
    throw std::runtime_error("FileTraceSource: empty trace");
  }
  records_.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t n = 0; n < count; ++n) {
    RawRecord r{};
    in.read(reinterpret_cast<char*>(&r), sizeof r);
    if (!in) {
      throw std::runtime_error("FileTraceSource: truncated trace");
    }
    records_.push_back(unpack(r));
  }
}

Instruction FileTraceSource::next() {
  const Instruction i = records_[pos_];
  pos_ = (pos_ + 1) % records_.size();
  return i;
}

void FileTraceSource::seek_to(std::uint64_t n) {
  pos_ = static_cast<std::size_t>(n % records_.size());
}

void record_trace(TraceSource& source, std::uint64_t count,
                  const std::string& path) {
  TraceWriter writer(path);
  for (std::uint64_t n = 0; n < count; ++n) {
    writer.write(source.next());
  }
  writer.close();
}

}  // namespace icr::trace
