// Address-stream building blocks for the synthetic workloads.
//
// Each SPEC2000-like application model (workloads.h) composes these into a
// weighted mixture: a streaming compressor is mostly SequentialStream plus a
// hot Zipf dictionary; mcf is dominated by PointerChase over a region far
// larger than the 16KB dL1; and so on. All patterns emit 8-byte-aligned
// word addresses and are deterministic given the Rng stream.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/util/rng.h"
#include "src/util/zipf.h"

namespace icr::trace {

class AddressPattern {
 public:
  virtual ~AddressPattern() = default;
  // The next word address of this reference stream.
  virtual std::uint64_t next(Rng& rng) = 0;
};

// Linear walk through [base, base+region) in `stride`-byte steps, wrapping.
class SequentialStream final : public AddressPattern {
 public:
  SequentialStream(std::uint64_t base, std::uint64_t region_bytes,
                   std::uint32_t stride_bytes = 8) noexcept;
  std::uint64_t next(Rng& rng) override;

 private:
  std::uint64_t base_;
  std::uint64_t region_;
  std::uint32_t stride_;
  std::uint64_t offset_ = 0;
};

// Zipf-skewed references over the 64-byte blocks of a region; the word
// within the chosen block is uniform. Models hot data structures.
class ZipfBlocks final : public AddressPattern {
 public:
  ZipfBlocks(std::uint64_t base, std::uint64_t region_bytes, double theta);
  std::uint64_t next(Rng& rng) override;

 private:
  std::uint64_t base_;
  ZipfSampler sampler_;
  std::vector<std::uint32_t> shuffle_;  // rank -> block (avoids rank==layout)
};

// Walks a random permutation cycle over fixed-size nodes: the address of
// reference i+1 is determined by the node visited at reference i, exactly a
// linked-list traversal. Combined with a register dependence in the
// workload layer this produces serialized, latency-bound loads (mcf).
class PointerChase final : public AddressPattern {
 public:
  PointerChase(std::uint64_t base, std::uint64_t region_bytes,
               std::uint32_t node_bytes, Rng& rng);
  std::uint64_t next(Rng& rng) override;

 private:
  std::uint64_t base_;
  std::uint32_t node_bytes_;
  std::vector<std::uint32_t> successor_;  // one random cycle
  std::uint32_t current_ = 0;
};

// A weighted mixture of patterns; each reference first picks a component.
class MixturePattern final : public AddressPattern {
 public:
  void add(double weight, std::unique_ptr<AddressPattern> pattern);
  std::uint64_t next(Rng& rng) override;

  [[nodiscard]] std::size_t components() const noexcept {
    return patterns_.size();
  }
  // Index of the component that produced the most recent address.
  [[nodiscard]] std::size_t last_component() const noexcept { return last_; }

 private:
  std::vector<double> cumulative_;
  std::vector<std::unique_ptr<AddressPattern>> patterns_;
  std::size_t last_ = 0;
};

}  // namespace icr::trace
