#include "src/coding/parity.h"

#include "src/util/bitops.h"

namespace icr {

std::uint8_t byte_parity(std::uint64_t word) noexcept {
  // Fold each byte onto its low bit: XOR halves repeatedly, then gather the
  // low bit of every byte.
  std::uint64_t x = word;
  x ^= x >> 4;
  x ^= x >> 2;
  x ^= x >> 1;
  x &= 0x0101010101010101ULL;
  // Compact the 8 low-bits-of-bytes into one byte.
  return static_cast<std::uint8_t>((x * 0x0102040810204080ULL) >> 56);
}

std::uint8_t parity_mismatch(std::uint64_t word, std::uint8_t stored) noexcept {
  return static_cast<std::uint8_t>(byte_parity(word) ^ stored);
}

}  // namespace icr
