#include "src/coding/secded.h"

#include <array>

#include "src/obs/prof.h"
#include "src/util/bitops.h"

namespace icr {
namespace {

constexpr unsigned kCodewordBits = 71;  // 64 data + 7 Hamming check bits

// position_of_data[d] = codeword position (1-based) of data bit d.
// data_at_position[p] = data bit index stored at position p, or -1.
struct PositionTables {
  std::array<unsigned, 64> position_of_data{};
  std::array<int, kCodewordBits + 1> data_at_position{};

  constexpr PositionTables() {
    for (auto& v : data_at_position) v = -1;
    unsigned d = 0;
    for (unsigned p = 1; p <= kCodewordBits; ++p) {
      if (is_pow2(p)) continue;  // power-of-two positions hold check bits
      position_of_data[d] = p;
      data_at_position[p] = static_cast<int>(d);
      ++d;
    }
  }
};

constexpr PositionTables kTables{};

// column_masks[c] selects the data bits whose codeword position has bit c
// set, so check bit c is just the parity of (data & mask) — seven popcounts
// instead of a 64-iteration data-dependent loop on the encode hot path.
struct CheckMasks {
  std::array<std::uint64_t, 7> column{};

  constexpr CheckMasks() {
    for (unsigned d = 0; d < 64; ++d) {
      const unsigned p = kTables.position_of_data[d];
      for (unsigned c = 0; c < 7; ++c) {
        if ((p >> c) & 1U) column[c] |= 1ULL << d;
      }
    }
  }
};

constexpr CheckMasks kMasks{};

// XOR-accumulates data bits into the seven Hamming checks.
std::uint8_t hamming_checks(std::uint64_t data) noexcept {
  std::uint8_t checks = 0;
  for (unsigned c = 0; c < 7; ++c) {
    checks |= static_cast<std::uint8_t>(parity64(data & kMasks.column[c]) << c);
  }
  return checks;
}

}  // namespace

namespace secded_internal {
unsigned data_bit_position(unsigned data_bit) noexcept {
  return kTables.position_of_data[data_bit];
}
}  // namespace secded_internal

std::uint8_t secded_encode(std::uint64_t data) noexcept {
  ICR_PROF_ZONE_HOT("secded_encode");
  const std::uint8_t hamming = hamming_checks(data);
  // Overall parity covers every codeword bit: all data bits plus the seven
  // Hamming checks. Stored in bit 7 of the check byte.
  const unsigned overall =
      parity64(data) ^ (parity64(hamming & 0x7F) & 1U);
  return static_cast<std::uint8_t>((hamming & 0x7F) |
                                   (static_cast<std::uint8_t>(overall) << 7));
}

SecDedResult secded_decode(std::uint64_t data, std::uint8_t check) noexcept {
  ICR_PROF_ZONE_HOT("secded_decode");
  const std::uint8_t stored_hamming = check & 0x7F;
  const unsigned stored_overall = (check >> 7) & 1U;

  const std::uint8_t syndrome =
      static_cast<std::uint8_t>(hamming_checks(data) ^ stored_hamming);
  const unsigned parity_now =
      parity64(data) ^ (parity64(stored_hamming) & 1U) ^ stored_overall;

  SecDedResult result;
  result.data = data;

  if (syndrome == 0 && parity_now == 0) {
    result.status = SecDedStatus::kClean;
    return result;
  }
  if (parity_now == 1) {
    // Odd overall parity: exactly one bit flipped (or an odd >1 number,
    // indistinguishable — SEC-DED guarantees cover only <= 2 flips).
    if (syndrome == 0) {
      result.status = SecDedStatus::kCorrectedCheck;  // overall bit flipped
      return result;
    }
    if (is_pow2(syndrome)) {
      result.status = SecDedStatus::kCorrectedCheck;  // a Hamming bit flipped
      return result;
    }
    const int data_bit =
        syndrome <= kCodewordBits ? kTables.data_at_position[syndrome] : -1;
    if (data_bit < 0) {
      // Syndrome points outside the codeword: >= 3 flips; report detection.
      result.status = SecDedStatus::kDetectedDouble;
      return result;
    }
    result.data = data ^ (1ULL << data_bit);
    result.status = SecDedStatus::kCorrectedData;
    return result;
  }
  // Even overall parity with a non-zero syndrome: double-bit error.
  result.status = SecDedStatus::kDetectedDouble;
  return result;
}

}  // namespace icr
