// Hamming (72,64) SEC-DED: single-error correction, double-error detection.
//
// This is the paper's "8-bit SEC-DED at 64-bit granularity" heavy-weight
// protection (same 12.5% storage overhead as byte parity, but correcting).
// We implement the classic extended Hamming construction: seven check bits
// at power-of-two codeword positions plus one overall-parity bit. Decoding
// computes the 7-bit syndrome and the overall parity:
//
//   syndrome == 0, parity even  ->  clean
//   parity odd                  ->  single-bit error at position `syndrome`
//                                   (or in the overall parity bit itself
//                                   when syndrome == 0); corrected
//   syndrome != 0, parity even  ->  double-bit error; detected, uncorrectable
//
// The encoder/decoder operate on real bits, so the fault injector's flips in
// cache data arrays are genuinely caught and repaired.
#pragma once

#include <cstdint>

namespace icr {

enum class SecDedStatus : std::uint8_t {
  kClean,           // no error
  kCorrectedData,   // single-bit error in a data bit, corrected
  kCorrectedCheck,  // single-bit error in a check bit, data unaffected
  kDetectedDouble,  // double-bit error detected; data NOT trustworthy
};

struct SecDedResult {
  SecDedStatus status = SecDedStatus::kClean;
  std::uint64_t data = 0;  // corrected data (valid unless kDetectedDouble)
};

// The 8 check bits protecting `data`.
[[nodiscard]] std::uint8_t secded_encode(std::uint64_t data) noexcept;

// Verifies (and possibly corrects) `data` against stored check bits.
[[nodiscard]] SecDedResult secded_decode(std::uint64_t data,
                                         std::uint8_t check) noexcept;

namespace secded_internal {
// Exposed for white-box tests: maps data-bit index (0..63) to its codeword
// position (1..72, skipping power-of-two positions).
[[nodiscard]] unsigned data_bit_position(unsigned data_bit) noexcept;
}  // namespace secded_internal

}  // namespace icr
