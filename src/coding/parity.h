// Byte-granularity parity, the paper's light-weight protection baseline.
//
// Each 8-bit datum carries one parity bit (12.5% storage overhead). For a
// 64-bit word this is an 8-bit parity vector, one bit per byte. Parity
// detects any odd number of flipped bits within a byte — in particular every
// single-bit error — but cannot correct; recovery must come from a replica
// (ICR), from L2 (clean blocks), or is impossible (dirty unreplicated block).
#pragma once

#include <cstdint>

namespace icr {

// Parity vector for `word`: bit b is the XOR of the 8 bits of byte b.
// Even-parity convention: stored bit equals the computed XOR, so a clean
// check is `byte_parity(word) == stored`.
[[nodiscard]] std::uint8_t byte_parity(std::uint64_t word) noexcept;

// Bitmask of bytes whose parity disagrees with `stored` (0 == clean word).
[[nodiscard]] std::uint8_t parity_mismatch(std::uint64_t word,
                                           std::uint8_t stored) noexcept;

// True iff the word verifies against its stored parity vector.
[[nodiscard]] inline bool parity_ok(std::uint64_t word,
                                    std::uint8_t stored) noexcept {
  return parity_mismatch(word, stored) == 0;
}

}  // namespace icr
