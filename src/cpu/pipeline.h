// Trace-driven out-of-order superscalar pipeline in the spirit of
// SimpleScalar's sim-outorder (the paper's simulation vehicle).
//
// Per cycle, in reverse stage order (so values flow between stages with a
// one-cycle skew, as in a real pipeline):
//   commit    — up to 4 completed instructions leave the RUU head in order;
//               stores perform their dL1 write here (they are buffered, so
//               a store occupies commit for extra cycles only if a
//               write-through buffer stall says so)
//   writeback — instructions whose FU latency elapsed become complete and
//               wake their dependents; a resolving mispredicted branch
//               unblocks fetch after the 3-cycle penalty
//   issue     — up to 4 ready instructions claim functional units out of
//               order; loads access the ICR dL1 (or forward from the LSQ)
//   dispatch  — up to 4 instructions move from the fetch queue into the
//               16-entry RUU / 8-entry LSQ
//   fetch     — up to 4 instructions enter the fetch queue, subject to L1I
//               misses, taken-branch redirects and branch mispredictions
//               (trace-driven: a mispredicted branch stalls fetch until it
//               resolves, modelling the wrong-path bubble)
//
// The pipeline also performs end-to-end data verification: store values are
// recorded as architectural truth and every load's delivered value is
// compared against it, so silent data corruption (a fault that slipped past
// parity/ECC/replicas) is counted, not just modelled.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/core/icr_cache.h"
#include "src/cpu/branch_predictor.h"
#include "src/cpu/functional_units.h"
#include "src/cpu/lsq.h"
#include "src/cpu/ruu.h"
#include "src/fault/fault_injector.h"
#include "src/mem/memory_hierarchy.h"
#include "src/trace/instruction.h"

namespace icr::cpu {

struct PipelineConfig {
  std::uint32_t fetch_width = 4;
  std::uint32_t decode_width = 4;
  std::uint32_t issue_width = 4;
  std::uint32_t commit_width = 4;
  std::uint32_t ruu_size = 16;
  std::uint32_t lsq_size = 8;
  std::uint32_t fetch_queue_size = 16;
  std::uint32_t mispredict_penalty = 3;
  FuConfig fus;
  BranchPredictorConfig branch;
};

struct PipelineStats {
  std::uint64_t cycles = 0;
  std::uint64_t committed = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t branches = 0;
  std::uint64_t mispredicted_branches = 0;
  std::uint64_t forwarded_loads = 0;
  std::uint64_t fetch_stall_cycles = 0;
  // Loads that delivered a wrong value with no error indication at all.
  std::uint64_t silent_corrupt_loads = 0;
  // Loads flagged unrecoverable by the cache (error seen, data lost).
  std::uint64_t unrecoverable_loads = 0;

  [[nodiscard]] double ipc() const noexcept {
    return cycles == 0 ? 0.0
                       : static_cast<double>(committed) /
                             static_cast<double>(cycles);
  }
};

class Pipeline {
 public:
  Pipeline(PipelineConfig config, trace::TraceSource& source,
           core::IcrCache& dl1, mem::MemoryHierarchy& hierarchy,
           fault::FaultInjector* injector = nullptr);

  // Runs until `instruction_count` instructions commit; returns the stats.
  // `max_cycles` guards against model deadlock (0 = 10000 * instructions).
  const PipelineStats& run(std::uint64_t instruction_count,
                           std::uint64_t max_cycles = 0);

  // Functional fast-forward: advances architectural state — dL1/L2/L1I
  // contents, branch predictor, decay and scrub clocks, fault injection,
  // golden memory — by `instruction_count` committed instructions without
  // modelling out-of-order timing. Instructions in flight from a preceding
  // detailed run() are first drained with fetch frozen (detailed ticks), so
  // the trace position stays exact; the drain can overshoot the target by
  // at most the in-flight capacity (fetch queue + RUU). The clock advances
  // at the cumulative CPI observed so far (1.0 from cold) so cycle-driven
  // machinery ticks at a realistic rate. Used by the sampling controller
  // (src/sim/sampling.h) for checkpointed warmup and inter-window gaps.
  const PipelineStats& fast_forward(std::uint64_t instruction_count);

  [[nodiscard]] const PipelineStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const BranchPredictor& branch_predictor() const noexcept {
    return predictor_;
  }
  [[nodiscard]] std::uint64_t cycle() const noexcept { return cycle_; }

  // Registers the pipeline counters under "pipeline.". May be null.
  void attach_observability(obs::StatRegistry* registry);

 private:
  struct FetchSlot {
    trace::Instruction instr;
    std::uint64_t seq = 0;
    bool mispredicted = false;
  };

  void do_commit();
  void do_writeback();
  void do_issue();
  void do_dispatch();
  void do_fetch();

  // Detailed ticks with fetch frozen until every in-flight instruction has
  // committed; entry point of fast_forward().
  void drain_in_flight();

  [[nodiscard]] bool operands_ready(const RuuEntry& entry) noexcept;
  void verify_load(std::uint64_t addr,
                   const core::IcrCache::AccessOutcome& outcome);

  PipelineConfig config_;
  trace::TraceSource& source_;
  core::IcrCache& dl1_;
  mem::MemoryHierarchy& hierarchy_;
  fault::FaultInjector* injector_;

  BranchPredictor predictor_;
  FunctionalUnits fus_;
  Ruu ruu_;
  Lsq lsq_;
  std::vector<FetchSlot> fetch_queue_;  // FIFO, bounded

  std::uint64_t cycle_ = 0;
  std::uint64_t next_seq_ = 1;
  bool fetch_frozen_ = false;  // drain_in_flight(): no new source reads
  std::uint64_t fetch_blocked_until_ = 0;   // icache miss / mispredict bubble
  std::uint64_t mispredict_wait_seq_ = 0;   // branch fetch waits on
  std::uint64_t commit_blocked_until_ = 0;  // write-buffer stalls
  std::uint64_t current_fetch_block_ = ~std::uint64_t{0};
  std::optional<trace::Instruction> pending_fetch_;  // stalled on icache miss

  // Architectural register file map: last writer's sequence number (0=none).
  std::uint64_t reg_writer_[trace::Instruction::kNumRegs] = {};

  // Architectural memory truth for end-to-end verification.
  std::unordered_map<std::uint64_t, std::uint64_t> golden_;

  PipelineStats stats_;
};

}  // namespace icr::cpu
