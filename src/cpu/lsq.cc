#include "src/cpu/lsq.h"

#include "src/util/check.h"

namespace icr::cpu {

Lsq::Lsq(std::uint32_t capacity) : ring_(capacity), capacity_(capacity) {
  ICR_CHECK(capacity > 0);
}

void Lsq::push(std::uint64_t seq, bool is_store, std::uint64_t addr,
               std::uint64_t value) {
  ICR_CHECK(!full());
  const std::uint32_t slot = (head_ + count_) % capacity_;
  ++count_;
  ring_[slot] = LsqEntry{seq, is_store, addr & ~std::uint64_t{7}, value};
}

void Lsq::pop_if_seq(std::uint64_t seq) noexcept {
  if (count_ > 0 && ring_[head_].seq == seq) {
    head_ = (head_ + 1) % capacity_;
    --count_;
  }
}

std::optional<std::uint64_t> Lsq::forward_value(std::uint64_t load_seq,
                                                std::uint64_t addr) const {
  const std::uint64_t word = addr & ~std::uint64_t{7};
  std::optional<std::uint64_t> result;
  for (std::uint32_t i = 0; i < count_; ++i) {
    const LsqEntry& e = at(i);
    if (e.seq >= load_seq) break;  // entries are in fetch order
    if (e.is_store && e.addr == word) result = e.value;  // youngest wins
  }
  return result;
}

}  // namespace icr::cpu
