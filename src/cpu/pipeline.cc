#include "src/cpu/pipeline.h"

#include <algorithm>

#include "src/obs/prof.h"
#include "src/util/check.h"

namespace icr::cpu {

Pipeline::Pipeline(PipelineConfig config, trace::TraceSource& source,
                   core::IcrCache& dl1, mem::MemoryHierarchy& hierarchy,
                   fault::FaultInjector* injector)
    : config_(config),
      source_(source),
      dl1_(dl1),
      hierarchy_(hierarchy),
      injector_(injector),
      predictor_(config.branch),
      fus_(config.fus),
      ruu_(config.ruu_size),
      lsq_(config.lsq_size) {
  fetch_queue_.reserve(config_.fetch_queue_size);
}

void Pipeline::verify_load(std::uint64_t addr,
                           const core::IcrCache::AccessOutcome& outcome) {
  const std::uint64_t word = addr & ~std::uint64_t{7};
  const auto it = golden_.find(word);
  const std::uint64_t expected =
      it != golden_.end() ? it->second : mem::BackingStore::initial_word(word);
  // The load path is where an injected fault becomes a consequence, so the
  // per-outcome verdict is classified here and reported to the injector
  // (per-outcome FaultStats + kFaultVerdict trace events share this one
  // classification, keeping them consistent by construction).
  using Recovery = core::IcrCache::AccessOutcome::Recovery;
  if (outcome.unrecoverable) {
    ++stats_.unrecoverable_loads;
    if (injector_ != nullptr) {
      injector_->record_outcome(obs::FaultVerdict::kDetectedUncorrectable,
                                cycle_, word);
    }
  } else if (outcome.value != expected) {
    ++stats_.silent_corrupt_loads;
    if (injector_ != nullptr) {
      injector_->record_outcome(obs::FaultVerdict::kSilent, cycle_, word);
    }
  } else if (outcome.error_detected && outcome.error_recovered &&
             injector_ != nullptr) {
    injector_->record_outcome(outcome.recovery == Recovery::kReplica
                                  ? obs::FaultVerdict::kReplicaRecovered
                                  : obs::FaultVerdict::kCorrected,
                              cycle_, word);
  }
}

void Pipeline::attach_observability(obs::StatRegistry* registry) {
  if (registry == nullptr) return;
  registry->register_counter("pipeline.committed", &stats_.committed);
  registry->register_counter("pipeline.loads", &stats_.loads);
  registry->register_counter("pipeline.stores", &stats_.stores);
  registry->register_counter("pipeline.branches", &stats_.branches);
  registry->register_counter("pipeline.mispredicted_branches",
                             &stats_.mispredicted_branches);
  registry->register_counter("pipeline.forwarded_loads",
                             &stats_.forwarded_loads);
  registry->register_counter("pipeline.fetch_stall_cycles",
                             &stats_.fetch_stall_cycles);
  registry->register_counter("pipeline.silent_corrupt_loads",
                             &stats_.silent_corrupt_loads);
  registry->register_counter("pipeline.unrecoverable_loads",
                             &stats_.unrecoverable_loads);
}

bool Pipeline::operands_ready(const RuuEntry& entry) noexcept {
  for (const std::uint64_t producer : entry.src_producer) {
    if (producer == 0) continue;
    if (const RuuEntry* p = ruu_.find_seq(producer)) {
      if (!p->completed) return false;
    }
    // Not found => the producer already committed; the value is in the
    // register file.
  }
  return true;
}

void Pipeline::do_commit() {
  if (cycle_ < commit_blocked_until_) return;
  for (std::uint32_t n = 0; n < config_.commit_width && !ruu_.empty(); ++n) {
    RuuEntry& head = ruu_.head();
    if (!head.completed) break;
    if (head.instr.is_store()) {
      const auto outcome =
          dl1_.store(head.instr.mem_addr, head.instr.store_value, cycle_);
      golden_[head.instr.mem_addr & ~std::uint64_t{7}] =
          head.instr.store_value;
      if (outcome.latency > 1) {
        // Write-through buffer stall: commit is blocked for the remainder.
        commit_blocked_until_ = cycle_ + outcome.latency - 1;
      }
      lsq_.pop_if_seq(head.seq);
      ++stats_.stores;
    } else if (head.instr.is_load()) {
      lsq_.pop_if_seq(head.seq);
      ++stats_.loads;
    } else if (head.instr.is_branch()) {
      ++stats_.branches;
    }
    ++stats_.committed;
    ruu_.pop();
    if (cycle_ < commit_blocked_until_) return;  // stalled mid-group
  }
}

void Pipeline::do_writeback() {
  for (std::uint32_t i = 0; i < ruu_.size(); ++i) {
    RuuEntry& e = ruu_.at(i);
    if (e.issued && !e.completed && e.complete_cycle <= cycle_) {
      e.completed = true;
      if (e.mispredicted && mispredict_wait_seq_ == e.seq) {
        // The branch resolved; fetch restarts after the fixed redirect
        // penalty (paper Table 1: 3 cycles).
        fetch_blocked_until_ = std::max(
            fetch_blocked_until_, cycle_ + config_.mispredict_penalty);
        mispredict_wait_seq_ = 0;
      }
    }
  }
}

void Pipeline::do_issue() {
  std::uint32_t issued = 0;
  for (std::uint32_t i = 0; i < ruu_.size() && issued < config_.issue_width;
       ++i) {
    RuuEntry& e = ruu_.at(i);
    if (e.issued || !operands_ready(e)) continue;

    if (e.instr.is_load()) {
      // Store-to-load forwarding from the LSQ beats the cache.
      if (const auto fwd = lsq_.forward_value(e.seq, e.instr.mem_addr)) {
        std::uint32_t lat = 0;
        if (!fus_.try_issue(e.instr.op, cycle_, lat)) continue;
        e.issued = true;
        e.complete_cycle = cycle_ + 1;
        ++stats_.forwarded_loads;
        ++issued;
        continue;
      }
      std::uint32_t lat = 0;
      if (!fus_.try_issue(e.instr.op, cycle_, lat)) continue;
      const auto outcome = dl1_.load(e.instr.mem_addr, cycle_);
      verify_load(e.instr.mem_addr, outcome);
      if (outcome.hit && outcome.latency > 1) {
        // Multi-cycle hit (ECC check / parallel replica compare): the
        // check pipeline occupies the port, a bandwidth cost on top of the
        // latency cost.
        fus_.extend_mem_port(cycle_, outcome.latency);
      }
      e.issued = true;
      e.complete_cycle = cycle_ + std::max<std::uint32_t>(1, outcome.latency);
      ++issued;
      continue;
    }

    std::uint32_t latency = 0;
    if (!fus_.try_issue(e.instr.op, cycle_, latency)) continue;
    e.issued = true;
    if (e.instr.is_store()) {
      latency = 1;  // address generation; the write happens at commit
    }
    e.complete_cycle = cycle_ + std::max<std::uint32_t>(1, latency);
    ++issued;
  }
}

void Pipeline::do_dispatch() {
  std::uint32_t dispatched = 0;
  while (dispatched < config_.decode_width && !fetch_queue_.empty()) {
    const FetchSlot& slot = fetch_queue_.front();
    if (ruu_.full()) break;
    if (slot.instr.is_mem() && lsq_.full()) break;

    RuuEntry& e = ruu_.push();
    e.instr = slot.instr;
    e.seq = slot.seq;
    e.mispredicted = slot.mispredicted;
    if (e.instr.src1 >= 0) e.src_producer[0] = reg_writer_[e.instr.src1];
    if (e.instr.src2 >= 0) e.src_producer[1] = reg_writer_[e.instr.src2];
    if (e.instr.dest >= 0) reg_writer_[e.instr.dest] = e.seq;
    if (e.instr.is_mem()) {
      lsq_.push(e.seq, e.instr.is_store(), e.instr.mem_addr,
                e.instr.store_value);
    }
    fetch_queue_.erase(fetch_queue_.begin());
    ++dispatched;
  }
}

void Pipeline::do_fetch() {
  if (mispredict_wait_seq_ != 0 || cycle_ < fetch_blocked_until_) {
    ++stats_.fetch_stall_cycles;
    return;
  }
  for (std::uint32_t n = 0; n < config_.fetch_width; ++n) {
    if (fetch_queue_.size() >= config_.fetch_queue_size) break;
    // Draining for fast_forward(): flush the stalled instruction, if any,
    // but never pull a new one off the source.
    if (fetch_frozen_ && !pending_fetch_) break;

    trace::Instruction instr =
        pending_fetch_ ? *pending_fetch_ : source_.next();
    pending_fetch_.reset();

    // Instruction-cache access when crossing into a new fetch block.
    const std::uint64_t block =
        hierarchy_.l1i().geometry().block_address(instr.pc);
    if (block != current_fetch_block_) {
      const std::uint32_t latency = hierarchy_.ifetch(instr.pc, cycle_);
      current_fetch_block_ = block;
      if (latency > hierarchy_.config().l1i_latency) {
        // Miss: hold this instruction and stall fetch for the full latency.
        pending_fetch_ = instr;
        fetch_blocked_until_ = cycle_ + latency;
        break;
      }
    }

    FetchSlot slot;
    slot.instr = instr;
    slot.seq = next_seq_++;

    if (instr.is_branch()) {
      const bool mispredicted = predictor_.predict_and_update(
          instr.pc, instr.branch_taken, instr.next_pc);
      if (mispredicted) {
        ++stats_.mispredicted_branches;
        slot.mispredicted = true;
        mispredict_wait_seq_ = slot.seq;
        fetch_queue_.push_back(slot);
        break;  // wrong-path bubble until the branch resolves
      }
      fetch_queue_.push_back(slot);
      if (instr.branch_taken) break;  // redirect: stop fetching this cycle
      continue;
    }
    fetch_queue_.push_back(slot);
  }
}

const PipelineStats& Pipeline::run(std::uint64_t instruction_count,
                                   std::uint64_t max_cycles) {
  if (max_cycles == 0) {
    max_cycles = cycle_ + 10000 * std::max<std::uint64_t>(1, instruction_count);
  }
  ICR_PROF_ZONE("Pipeline::run");
  const std::uint64_t target = stats_.committed + instruction_count;
  while (stats_.committed < target) {
    ICR_PROF_ZONE_HOT("Pipeline::tick");
    ICR_CHECK(cycle_ < max_cycles);  // model deadlock guard
    do_commit();
    do_writeback();
    do_issue();
    do_dispatch();
    do_fetch();
    if (injector_ != nullptr) injector_->tick(dl1_, cycle_);
    dl1_.advance_scrubber(cycle_);
    ++cycle_;
  }
  stats_.cycles = cycle_;
  return stats_;
}

void Pipeline::drain_in_flight() {
  // Bounded: the in-flight population (fetch queue + RUU + one pending
  // fetch) is fixed and fetch is frozen, so every tick makes progress.
  const std::uint64_t guard = cycle_ + 1000000;
  fetch_frozen_ = true;
  while (!ruu_.empty() || !fetch_queue_.empty() || pending_fetch_) {
    ICR_CHECK(cycle_ < guard);  // model deadlock guard
    do_commit();
    do_writeback();
    do_issue();
    do_dispatch();
    do_fetch();
    if (injector_ != nullptr) injector_->tick(dl1_, cycle_);
    dl1_.advance_scrubber(cycle_);
    ++cycle_;
  }
  fetch_frozen_ = false;
}

const PipelineStats& Pipeline::fast_forward(std::uint64_t instruction_count) {
  ICR_PROF_ZONE("Pipeline::fast_forward");
  const std::uint64_t target = stats_.committed + instruction_count;
  drain_in_flight();

  // Fixed-point (q16) cycles-per-instruction estimate from the detailed
  // portion so far; exact integer arithmetic keeps the functional clock
  // deterministic. Cold start (nothing measured yet) assumes CPI 1.0.
  const std::uint64_t one = std::uint64_t{1} << 16;
  const std::uint64_t cpi_q16 =
      stats_.committed > 0 && cycle_ > 0
          ? std::max<std::uint64_t>(1, (cycle_ << 16) / stats_.committed)
          : one;

  std::uint64_t frac_q16 = 0;
  while (stats_.committed < target) {
    const trace::Instruction instr = source_.next();

    // Keep the instruction-fetch path warm: one L1I access per new block.
    const std::uint64_t block =
        hierarchy_.l1i().geometry().block_address(instr.pc);
    if (block != current_fetch_block_) {
      (void)hierarchy_.ifetch(instr.pc, cycle_);
      current_fetch_block_ = block;
    }

    if (instr.is_branch()) {
      ++stats_.branches;
      if (predictor_.predict_and_update(instr.pc, instr.branch_taken,
                                        instr.next_pc)) {
        ++stats_.mispredicted_branches;
      }
    } else if (instr.is_load()) {
      const auto outcome = dl1_.load(instr.mem_addr, cycle_);
      verify_load(instr.mem_addr, outcome);
      ++stats_.loads;
    } else if (instr.is_store()) {
      (void)dl1_.store(instr.mem_addr, instr.store_value, cycle_);
      golden_[instr.mem_addr & ~std::uint64_t{7}] = instr.store_value;
      ++stats_.stores;
    }
    ++stats_.committed;

    // Advance the functional clock, ticking cycle-driven machinery (fault
    // injection, decay windows via load/store timestamps, scrubbing) once
    // per elapsed cycle exactly as the detailed loop does.
    frac_q16 += cpi_q16;
    while (frac_q16 >= one) {
      frac_q16 -= one;
      if (injector_ != nullptr) injector_->tick(dl1_, cycle_);
      dl1_.advance_scrubber(cycle_);
      ++cycle_;
    }
  }
  stats_.cycles = cycle_;
  return stats_;
}

}  // namespace icr::cpu
