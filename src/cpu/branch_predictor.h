// Combined branch predictor + BTB (paper Table 1).
//
// The direction predictor follows SimpleScalar's `comb` configuration: a
// bimodal table of 2-bit counters (2K entries), a two-level predictor with
// an 8-bit global history register indexing a 1K-entry pattern history
// table (gshare-style hashing with the PC), and a meta chooser of 2-bit
// counters that learns per branch which component to trust. Targets come
// from a 512-entry 4-way BTB; a taken branch whose target misses in the BTB
// cannot redirect fetch and is charged as a misprediction.
#pragma once

#include <cstdint>
#include <vector>

namespace icr::cpu {

struct BranchPredictorConfig {
  std::uint32_t bimodal_entries = 2048;
  std::uint32_t two_level_entries = 1024;
  std::uint32_t history_bits = 8;
  std::uint32_t meta_entries = 2048;
  std::uint32_t btb_entries = 512;
  std::uint32_t btb_ways = 4;
};

struct BranchPredictorStats {
  std::uint64_t lookups = 0;
  std::uint64_t direction_mispredicts = 0;
  std::uint64_t btb_misses = 0;  // taken branches with unknown target

  [[nodiscard]] double mispredict_rate() const noexcept {
    return lookups == 0 ? 0.0
                        : static_cast<double>(direction_mispredicts) /
                              static_cast<double>(lookups);
  }
};

class BranchPredictor {
 public:
  explicit BranchPredictor(BranchPredictorConfig config = {});

  struct Prediction {
    bool taken = false;
    bool target_known = false;
    std::uint64_t target = 0;
  };

  [[nodiscard]] Prediction predict(std::uint64_t pc) const;

  // Trains all tables with the actual outcome and returns true iff the
  // prediction made *before* this update would have been wrong (direction
  // wrong, or taken with an unknown/incorrect target).
  bool predict_and_update(std::uint64_t pc, bool taken, std::uint64_t target);

  [[nodiscard]] const BranchPredictorStats& stats() const noexcept {
    return stats_;
  }

 private:
  struct BtbEntry {
    bool valid = false;
    std::uint64_t pc = 0;
    std::uint64_t target = 0;
    std::uint64_t lru = 0;
  };

  [[nodiscard]] std::uint32_t bimodal_index(std::uint64_t pc) const noexcept;
  [[nodiscard]] std::uint32_t two_level_index(std::uint64_t pc) const noexcept;
  [[nodiscard]] std::uint32_t meta_index(std::uint64_t pc) const noexcept;

  static void train(std::uint8_t& counter, bool taken) noexcept;

  BranchPredictorConfig config_;
  std::vector<std::uint8_t> bimodal_;    // 2-bit counters
  std::vector<std::uint8_t> two_level_;  // 2-bit counters (PHT)
  std::vector<std::uint8_t> meta_;       // 2-bit: >=2 -> use two-level
  std::uint32_t history_ = 0;
  std::vector<BtbEntry> btb_;
  std::uint64_t btb_clock_ = 0;
  BranchPredictorStats stats_;
};

}  // namespace icr::cpu
