#include "src/cpu/branch_predictor.h"

#include "src/util/check.h"

namespace icr::cpu {

BranchPredictor::BranchPredictor(BranchPredictorConfig config)
    : config_(config) {
  bimodal_.assign(config_.bimodal_entries, 1);   // weakly not-taken
  two_level_.assign(config_.two_level_entries, 1);
  meta_.assign(config_.meta_entries, 1);
  btb_.resize(config_.btb_entries);
  ICR_CHECK(config_.btb_entries % config_.btb_ways == 0);
}

std::uint32_t BranchPredictor::bimodal_index(std::uint64_t pc) const noexcept {
  return static_cast<std::uint32_t>((pc >> 2) % config_.bimodal_entries);
}

std::uint32_t BranchPredictor::two_level_index(std::uint64_t pc) const noexcept {
  const std::uint32_t hist_mask = (1U << config_.history_bits) - 1;
  return static_cast<std::uint32_t>(((pc >> 2) ^ (history_ & hist_mask)) %
                                    config_.two_level_entries);
}

std::uint32_t BranchPredictor::meta_index(std::uint64_t pc) const noexcept {
  return static_cast<std::uint32_t>((pc >> 2) % config_.meta_entries);
}

void BranchPredictor::train(std::uint8_t& counter, bool taken) noexcept {
  if (taken) {
    if (counter < 3) ++counter;
  } else {
    if (counter > 0) --counter;
  }
}

BranchPredictor::Prediction BranchPredictor::predict(std::uint64_t pc) const {
  const bool bimodal_taken = bimodal_[bimodal_index(pc)] >= 2;
  const bool two_level_taken = two_level_[two_level_index(pc)] >= 2;
  const bool use_two_level = meta_[meta_index(pc)] >= 2;

  Prediction pred;
  pred.taken = use_two_level ? two_level_taken : bimodal_taken;

  // BTB lookup.
  const std::uint32_t sets = config_.btb_entries / config_.btb_ways;
  const std::uint32_t set = static_cast<std::uint32_t>((pc >> 2) % sets);
  const BtbEntry* base = &btb_[static_cast<std::size_t>(set) * config_.btb_ways];
  for (std::uint32_t w = 0; w < config_.btb_ways; ++w) {
    if (base[w].valid && base[w].pc == pc) {
      pred.target_known = true;
      pred.target = base[w].target;
      break;
    }
  }
  return pred;
}

bool BranchPredictor::predict_and_update(std::uint64_t pc, bool taken,
                                         std::uint64_t target) {
  ++stats_.lookups;
  const Prediction pred = predict(pc);

  bool mispredicted = pred.taken != taken;
  if (!mispredicted && taken) {
    if (!pred.target_known || pred.target != target) {
      mispredicted = true;
      ++stats_.btb_misses;
    }
  }
  if (pred.taken != taken) ++stats_.direction_mispredicts;

  // Train the components. The meta chooser moves toward whichever component
  // was right when they disagree.
  const bool bimodal_taken = bimodal_[bimodal_index(pc)] >= 2;
  const bool two_level_taken = two_level_[two_level_index(pc)] >= 2;
  if (bimodal_taken != two_level_taken) {
    train(meta_[meta_index(pc)], two_level_taken == taken);
  }
  train(bimodal_[bimodal_index(pc)], taken);
  train(two_level_[two_level_index(pc)], taken);

  // Update global history and BTB.
  history_ = ((history_ << 1) | (taken ? 1U : 0U)) &
             ((1U << config_.history_bits) - 1);
  if (taken) {
    const std::uint32_t sets = config_.btb_entries / config_.btb_ways;
    const std::uint32_t set = static_cast<std::uint32_t>((pc >> 2) % sets);
    BtbEntry* base = &btb_[static_cast<std::size_t>(set) * config_.btb_ways];
    BtbEntry* victim = &base[0];
    ++btb_clock_;
    for (std::uint32_t w = 0; w < config_.btb_ways; ++w) {
      if (base[w].valid && base[w].pc == pc) {
        victim = &base[w];
        break;
      }
      if (!base[w].valid) {
        victim = &base[w];
        break;
      }
      if (base[w].lru < victim->lru) victim = &base[w];
    }
    victim->valid = true;
    victim->pc = pc;
    victim->target = target;
    victim->lru = btb_clock_;
  }
  return mispredicted;
}

}  // namespace icr::cpu
