#include "src/cpu/ruu.h"

#include "src/util/check.h"

namespace icr::cpu {

Ruu::Ruu(std::uint32_t capacity) : ring_(capacity), capacity_(capacity) {
  ICR_CHECK(capacity > 0);
}

RuuEntry& Ruu::push() {
  ICR_CHECK(!full());
  const std::uint32_t slot = (head_ + count_) % capacity_;
  ++count_;
  ring_[slot] = RuuEntry{};
  return ring_[slot];
}

RuuEntry& Ruu::head() noexcept {
  ICR_DCHECK(!empty());
  return ring_[head_];
}

void Ruu::pop() noexcept {
  ICR_DCHECK(!empty());
  head_ = (head_ + 1) % capacity_;
  --count_;
}

RuuEntry& Ruu::at(std::uint32_t i) noexcept {
  ICR_DCHECK(i < count_);
  return ring_[(head_ + i) % capacity_];
}

const RuuEntry& Ruu::at(std::uint32_t i) const noexcept {
  ICR_DCHECK(i < count_);
  return ring_[(head_ + i) % capacity_];
}

RuuEntry* Ruu::find_seq(std::uint64_t seq) noexcept {
  for (std::uint32_t i = 0; i < count_; ++i) {
    if (at(i).seq == seq) return &at(i);
  }
  return nullptr;
}

}  // namespace icr::cpu
