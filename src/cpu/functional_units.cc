#include "src/cpu/functional_units.h"

namespace icr::cpu {

FunctionalUnits::FunctionalUnits(FuConfig config) : config_(config) {
  int_alu_.busy_until.assign(config_.int_alu, 0);
  int_muldiv_.busy_until.assign(config_.int_muldiv, 0);
  fp_alu_.busy_until.assign(config_.fp_alu, 0);
  fp_muldiv_.busy_until.assign(config_.fp_muldiv, 0);
  mem_ports_.busy_until.assign(config_.mem_ports, 0);
}

bool FunctionalUnits::Pool::claim(std::uint64_t cycle,
                                  std::uint32_t busy_for) {
  for (auto& free_at : busy_until) {
    if (free_at <= cycle) {
      free_at = cycle + busy_for;
      return true;
    }
  }
  return false;
}

void FunctionalUnits::extend_mem_port(std::uint64_t cycle,
                                      std::uint32_t total_busy) {
  for (auto& free_at : mem_ports_.busy_until) {
    if (free_at == cycle + 1) {  // the port claimed this cycle
      free_at = cycle + total_busy;
      return;
    }
  }
}

bool FunctionalUnits::try_issue(trace::OpClass op, std::uint64_t cycle,
                                std::uint32_t& latency) {
  using trace::OpClass;
  switch (op) {
    case OpClass::kIntAlu:
    case OpClass::kBranch:  // branches resolve on an integer ALU
      latency = config_.int_alu_latency;
      return int_alu_.claim(cycle, 1);  // pipelined
    case OpClass::kIntMul:
      latency = config_.int_mul_latency;
      return int_muldiv_.claim(cycle, 1);  // pipelined multiplier
    case OpClass::kIntDiv:
      latency = config_.int_div_latency;
      return int_muldiv_.claim(cycle, latency);  // unpipelined divider
    case OpClass::kFpAlu:
      latency = config_.fp_alu_latency;
      return fp_alu_.claim(cycle, 1);
    case OpClass::kFpMul:
      latency = config_.fp_mul_latency;
      return fp_muldiv_.claim(cycle, 1);
    case OpClass::kFpDiv:
      latency = config_.fp_div_latency;
      return fp_muldiv_.claim(cycle, latency);
    case OpClass::kLoad:
    case OpClass::kStore:
      latency = 0;  // memory latency supplied by the cache model
      return mem_ports_.claim(cycle, 1);
  }
  return false;
}

}  // namespace icr::cpu
