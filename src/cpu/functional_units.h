// Functional-unit pool (paper Table 1): 4 integer ALUs, 1 integer
// multiplier/divider, 4 FP ALUs, 1 FP multiplier/divider, plus 2 memory
// ports for loads/stores. ALU-class units are fully pipelined (issue
// interval 1); dividers are unpipelined and block their unit for the whole
// operation, like SimpleScalar's resource model.
#pragma once

#include <cstdint>
#include <vector>

#include "src/trace/instruction.h"

namespace icr::cpu {

struct FuConfig {
  std::uint32_t int_alu = 4;
  std::uint32_t int_muldiv = 1;
  std::uint32_t fp_alu = 4;
  std::uint32_t fp_muldiv = 1;
  std::uint32_t mem_ports = 2;

  std::uint32_t int_alu_latency = 1;
  std::uint32_t int_mul_latency = 3;
  std::uint32_t int_div_latency = 20;
  std::uint32_t fp_alu_latency = 2;
  std::uint32_t fp_mul_latency = 4;
  std::uint32_t fp_div_latency = 12;
};

class FunctionalUnits {
 public:
  explicit FunctionalUnits(FuConfig config = {});

  // Attempts to claim a unit for `op` at `cycle`. On success returns true
  // and sets `latency` to the execution latency. Memory ops claim a port;
  // their latency is determined by the cache and passed by the caller, so
  // `latency` is left at 0 for them.
  bool try_issue(trace::OpClass op, std::uint64_t cycle,
                 std::uint32_t& latency);

  // Extends the memory port claimed at `cycle` so it stays busy for
  // `total_busy` cycles. Used for multi-cycle dL1 hits (e.g. 2-cycle ECC
  // verification occupies the port, not just the result latency).
  void extend_mem_port(std::uint64_t cycle, std::uint32_t total_busy);

  [[nodiscard]] const FuConfig& config() const noexcept { return config_; }

 private:
  // A unit class: `count` units, each free again at busy_until[i].
  struct Pool {
    std::vector<std::uint64_t> busy_until;
    bool claim(std::uint64_t cycle, std::uint32_t busy_for);
  };

  FuConfig config_;
  Pool int_alu_;
  Pool int_muldiv_;
  Pool fp_alu_;
  Pool fp_muldiv_;
  Pool mem_ports_;
};

}  // namespace icr::cpu
