// Register Update Unit: SimpleScalar's combined reorder buffer + reservation
// stations (paper Table 1: 16 entries). A circular buffer ordered by fetch
// sequence; instructions dispatch into the tail, issue out of order from the
// window, and commit in order from the head.
#pragma once

#include <cstdint>
#include <vector>

#include "src/trace/instruction.h"

namespace icr::cpu {

struct RuuEntry {
  trace::Instruction instr;
  std::uint64_t seq = 0;  // global fetch sequence number (1-based)
  bool issued = false;
  bool completed = false;
  std::uint64_t complete_cycle = 0;
  bool mispredicted = false;  // branch known (at fetch) to mispredict
  // Sequence numbers of the producers of src1/src2; 0 = no producer.
  std::uint64_t src_producer[2] = {0, 0};
};

class Ruu {
 public:
  explicit Ruu(std::uint32_t capacity);

  [[nodiscard]] bool full() const noexcept { return count_ == capacity_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::uint32_t size() const noexcept { return count_; }
  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }

  // Appends at the tail; requires !full().
  RuuEntry& push();

  // Oldest entry; requires !empty().
  [[nodiscard]] RuuEntry& head() noexcept;

  // Removes the oldest entry; requires !empty().
  void pop() noexcept;

  // i-th oldest entry, i < size().
  [[nodiscard]] RuuEntry& at(std::uint32_t i) noexcept;
  [[nodiscard]] const RuuEntry& at(std::uint32_t i) const noexcept;

  // Entry with sequence number `seq`, or nullptr if it already committed.
  [[nodiscard]] RuuEntry* find_seq(std::uint64_t seq) noexcept;

 private:
  std::vector<RuuEntry> ring_;
  std::uint32_t capacity_;
  std::uint32_t head_ = 0;
  std::uint32_t count_ = 0;
};

}  // namespace icr::cpu
