// Load/Store Queue (paper Table 1: 8 entries).
//
// Memory instructions occupy an LSQ slot from dispatch to commit. The queue
// provides store-to-load forwarding: a load that issues while an older,
// not-yet-committed store to the same 64-bit word is queued receives the
// store's value directly (1-cycle latency, no cache access), which is how
// SimpleScalar's sim-outorder treats the common in-window dependence.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace icr::cpu {

struct LsqEntry {
  std::uint64_t seq = 0;
  bool is_store = false;
  std::uint64_t addr = 0;   // 8-byte aligned word address
  std::uint64_t value = 0;  // store data
};

class Lsq {
 public:
  explicit Lsq(std::uint32_t capacity);

  [[nodiscard]] bool full() const noexcept { return count_ == capacity_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::uint32_t size() const noexcept { return count_; }

  void push(std::uint64_t seq, bool is_store, std::uint64_t addr,
            std::uint64_t value);

  // Frees the oldest entry if it belongs to `seq` (called at commit; memory
  // instructions commit in order, so head matching suffices).
  void pop_if_seq(std::uint64_t seq) noexcept;

  // The value of the youngest store older than `load_seq` to the same word,
  // if any (store-to-load forwarding).
  [[nodiscard]] std::optional<std::uint64_t> forward_value(
      std::uint64_t load_seq, std::uint64_t addr) const;

 private:
  [[nodiscard]] const LsqEntry& at(std::uint32_t i) const noexcept {
    return ring_[(head_ + i) % capacity_];
  }

  std::vector<LsqEntry> ring_;
  std::uint32_t capacity_;
  std::uint32_t head_ = 0;
  std::uint32_t count_ = 0;
};

}  // namespace icr::cpu
