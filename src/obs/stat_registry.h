// Hierarchically named telemetry registry (observability layer, leaf
// dependency — nothing in src/obs depends on the simulator).
//
// Components register three kinds of instruments once, at wiring time:
//
//   * Counters — named *views* over component-owned `std::uint64_t` fields.
//     The hot path keeps its plain unguarded increments; the registry only
//     reads through the pointer when a snapshot is taken, so attaching a
//     registry adds zero work per simulated event.
//   * Gauges — point-in-time values evaluated lazily at snapshot time
//     (e.g. resident replicas), allowed to be O(structure) scans.
//   * Log2 histograms — owned by the registry, recorded into via a stable
//     pointer; a plain array increment per record, no locks.
//
// Each campaign cell owns its registry (cells share no mutable state), so
// no synchronization is needed anywhere; thread-safety for campaigns comes
// from cell isolation, exactly as for the simulators themselves.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace icr::obs {

// Power-of-two-bucketed histogram of 64-bit values:
//   bucket 0                  — value 0
//   bucket 1 + k (k in 0..31) — floor(log2(value)) == k, i.e. value in
//                               [2^k, 2^(k+1))
//   bucket 33 (overflow)      — value >= 2^32
class Log2Histogram {
 public:
  static constexpr std::uint32_t kValueBuckets = 32;
  static constexpr std::uint32_t kBuckets = kValueBuckets + 2;  // zero+overflow
  static constexpr std::uint32_t kOverflowBucket = kBuckets - 1;

  // Index of the bucket `value` falls into (see the mapping above).
  [[nodiscard]] static std::uint32_t bucket_index(std::uint64_t value) noexcept;
  // Smallest value belonging to `bucket` (0, 1, 2, 4, ..., 2^31, 2^32).
  [[nodiscard]] static std::uint64_t bucket_lower_bound(
      std::uint32_t bucket) noexcept;

  void record(std::uint64_t value) noexcept {
    ++buckets_[bucket_index(value)];
    ++total_;
  }

  [[nodiscard]] std::uint64_t bucket(std::uint32_t index) const noexcept {
    return buckets_[index];
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  // Element-wise sum; merging campaign-cell histograms into one.
  void merge(const Log2Histogram& other) noexcept;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t total_ = 0;
};

class StatRegistry {
 public:
  using GaugeFn = std::function<std::uint64_t()>;

  // Registers a named view over a component-owned counter. `source` must
  // stay valid for as long as snapshots are taken. Names are hierarchical
  // by convention ("dl1.replication.successes"); registration order is the
  // export order.
  void register_counter(std::string name, const std::uint64_t* source);

  // Registers a gauge evaluated at each snapshot.
  void register_gauge(std::string name, GaugeFn fn);

  // Returns a stable pointer to a registry-owned histogram, creating it on
  // first use (idempotent by name).
  [[nodiscard]] Log2Histogram* histogram(const std::string& name);

  [[nodiscard]] const std::vector<std::string>& counter_names() const noexcept {
    return counter_names_;
  }
  [[nodiscard]] const std::vector<std::string>& gauge_names() const noexcept {
    return gauge_names_;
  }
  [[nodiscard]] const std::vector<std::string>& histogram_names()
      const noexcept {
    return histogram_names_;
  }

  // Current counter values in registration order.
  [[nodiscard]] std::vector<std::uint64_t> snapshot_counters() const;
  // Current gauge values in registration order.
  [[nodiscard]] std::vector<std::uint64_t> snapshot_gauges() const;

  // Value of one counter by name; 0 when the name is unknown.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  // Histogram by name; nullptr when the name is unknown.
  [[nodiscard]] const Log2Histogram* find_histogram(
      std::string_view name) const;

 private:
  std::vector<std::string> counter_names_;
  std::vector<const std::uint64_t*> counter_sources_;
  std::vector<std::string> gauge_names_;
  std::vector<GaugeFn> gauge_fns_;
  std::vector<std::string> histogram_names_;
  std::vector<std::unique_ptr<Log2Histogram>> histograms_;
};

}  // namespace icr::obs
