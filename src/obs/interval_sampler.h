// Interval telemetry: periodic snapshots of a StatRegistry.
//
// The sampler records one cumulative snapshot (all counters, all gauges,
// and optionally a per-set occupancy row for heatmaps) every N committed
// instructions; per-interval deltas are computed at export time, so phase
// curves — replication ability, miss rate, IPC per interval — fall out of
// any existing run without touching the aggregate metrics. Snapshot cost is
// O(registered instruments) at a 100k-instruction default cadence; the
// instrumented hot paths themselves are untouched (counters are views).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/obs/stat_registry.h"

namespace icr::obs {

// The recorded time series of one run. Sample 0 is the baseline taken when
// observability was enabled (normally all-zero, before the first
// instruction); interval k spans samples k..k+1.
struct IntervalSeries {
  std::uint64_t interval_instructions = 0;
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::uint32_t occupancy_sets = 0;  // 0 = no occupancy rows recorded

  struct Sample {
    std::uint64_t instructions = 0;  // cumulative committed instructions
    std::uint64_t cycles = 0;        // cumulative cycles
    std::vector<std::uint64_t> counters;   // cumulative, registry order
    std::vector<std::uint64_t> gauges;     // point-in-time, registry order
    std::vector<std::uint32_t> occupancy;  // replicas per set (optional)
  };
  std::vector<Sample> samples;

  [[nodiscard]] std::size_t interval_count() const noexcept {
    return samples.empty() ? 0 : samples.size() - 1;
  }
};

class IntervalSampler {
 public:
  // `registry` must outlive the sampler. Instrument *names* are captured at
  // record_baseline() time, so call it after every component has registered.
  IntervalSampler(const StatRegistry& registry,
                  std::uint64_t interval_instructions);

  // Optional occupancy probe for heatmaps: returns the per-set replica
  // count, evaluated at every sample.
  void set_occupancy_probe(std::function<std::vector<std::uint32_t>()> probe);

  // Records sample 0 and captures the registry's instrument names.
  void record_baseline(std::uint64_t instructions, std::uint64_t cycles);

  // Records one cumulative snapshot at the given progress point. Sampling
  // the same instruction count twice (a chunk boundary on the final
  // instruction of the previous segment) replaces the last sample instead
  // of emitting a zero-length interval.
  void sample(std::uint64_t instructions, std::uint64_t cycles);

  [[nodiscard]] std::uint64_t interval_instructions() const noexcept {
    return series_.interval_instructions;
  }
  [[nodiscard]] const IntervalSeries& series() const noexcept {
    return series_;
  }
  [[nodiscard]] IntervalSeries take_series() { return std::move(series_); }

 private:
  const StatRegistry& registry_;
  std::function<std::vector<std::uint32_t>()> occupancy_probe_;
  IntervalSeries series_;
};

// Default sampling cadence (instructions per interval).
inline constexpr std::uint64_t kDefaultStatsInterval = 100000;

}  // namespace icr::obs
