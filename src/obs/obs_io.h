// Serialization and summarisation of observability artifacts.
//
// Interval CSV schema (one unified header for single runs and campaigns —
// golden-tested in tests/observability_test.cc and documented in
// docs/OBSERVABILITY.md):
//
//   variant,app,trial,interval,instr_end,cycles_end,d_instructions,d_cycles,
//   ipc,dl1_miss_rate,replication_ability,d_<counter>...,<gauge>...
//
// where d_* columns are per-interval deltas of the cumulative registry
// counters and gauge columns are point-in-time values at interval end. The
// derived columns are exact per-interval ratios of the deltas, so their
// weighted averages (weights: d_dl1.loads + d_dl1.stores for the miss rate,
// d_dl1.replication.opportunities for replication ability, d_cycles for
// IPC) reconstruct the aggregate RunResult values.
//
// Occupancy heatmap CSV:
//   variant,app,trial,interval,instr_end,set_0,...,set_{N-1}
// one row per interval, values = resident replicas in that dL1 set.
//
// NDJSON trace: one JSON object per line; common fields variant, app,
// trial, cycle, cat, event; the remaining fields are event-specific (see
// EventKind in event_trace.h).
#pragma once

#include <string>
#include <vector>

#include "src/obs/event_trace.h"
#include "src/obs/interval_sampler.h"

namespace icr::obs {

// Identity of the run the rows/lines belong to. For single (non-campaign)
// runs use trial 0.
struct CellTag {
  std::string variant;
  std::string app;
  std::uint32_t trial = 0;
};

// ---- interval CSV ----
[[nodiscard]] std::string intervals_csv_header(const IntervalSeries& series);
void append_intervals_csv_rows(std::string& out, const IntervalSeries& series,
                               const CellTag& tag);
// Header + rows of one series.
[[nodiscard]] std::string intervals_to_csv(const IntervalSeries& series,
                                           const CellTag& tag);

// ---- occupancy heatmap CSV ----
[[nodiscard]] std::string occupancy_csv_header(std::uint32_t sets);
void append_occupancy_csv_rows(std::string& out, const IntervalSeries& series,
                               const CellTag& tag);
[[nodiscard]] std::string occupancy_to_csv(const IntervalSeries& series,
                                           const CellTag& tag);

// ---- NDJSON event trace ----
void append_ndjson(std::string& out, const std::vector<TraceEvent>& events,
                   const CellTag& tag);

// ---- summaries (shared by icr_sim / icr_report) ----
struct IntervalPoint {
  double instr_end = 0;
  double d_instructions = 0;
  double d_cycles = 0;
  double ipc = 0;
  double miss_rate = 0;
  double miss_weight = 0;  // accesses in the interval
  double replication_ability = 0;
  double replication_weight = 0;  // opportunities in the interval
};

// Extracts the derived per-interval points from a recorded series.
[[nodiscard]] std::vector<IntervalPoint> interval_points(
    const IntervalSeries& series);

struct IntervalSummary {
  std::size_t intervals = 0;
  double peak_replication_ability = 0;
  double mean_replication_ability = 0;  // opportunity-weighted
  double final_replication_ability = 0;
  double peak_miss_rate = 0;
  double mean_miss_rate = 0;  // access-weighted
  double final_miss_rate = 0;
  double mean_ipc = 0;  // cycle-weighted
};

[[nodiscard]] IntervalSummary summarize(const std::vector<IntervalPoint>& pts);

// Greedy phase segmentation over the miss-rate curve: a new phase starts
// when an interval's miss rate deviates from the running phase mean by more
// than max(abs_tolerance, rel_tolerance * mean).
struct Phase {
  std::size_t first_interval = 0;
  std::size_t last_interval = 0;
  double mean_miss_rate = 0;
  double mean_replication_ability = 0;
  double mean_ipc = 0;
};

[[nodiscard]] std::vector<Phase> segment_phases(
    const std::vector<IntervalPoint>& pts, double rel_tolerance = 0.25,
    double abs_tolerance = 0.002);

}  // namespace icr::obs
