#include "src/obs/http_server.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace icr::obs::http {
namespace {

constexpr std::size_t kMaxRequestBytes = 16 * 1024;
constexpr int kAcceptPollMillis = 200;

std::string to_lower(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

std::string status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

// Full response head + optional body; Content-Length always present so the
// client can trust the framing even though we close after each request.
std::string render_response(const Response& response, bool head_only) {
  std::ostringstream out;
  out << "HTTP/1.1 " << response.status << ' ' << status_text(response.status)
      << "\r\nContent-Type: " << response.content_type
      << "\r\nContent-Length: " << response.body.size()
      << "\r\nCache-Control: no-store"
      << "\r\nConnection: close";
  if (response.status == 503) out << "\r\nRetry-After: 1";
  out << "\r\n\r\n";
  if (!head_only) out << response.body;
  return out.str();
}

bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_all(int fd, const std::string& bytes) {
  return send_all(fd, bytes.data(), bytes.size());
}

void set_recv_timeout(int fd, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

// Read until the blank line ending the header block (we never accept
// request bodies). Returns false on timeout/overrun/disconnect.
bool read_request_head(int fd, double timeout_seconds, std::string* head) {
  head->clear();
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(timeout_seconds);
  char buf[2048];
  while (head->find("\r\n\r\n") == std::string::npos) {
    if (head->size() > kMaxRequestBytes) return false;
    if (std::chrono::steady_clock::now() > deadline) return false;
    ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // SO_RCVTIMEO tick
      return false;
    }
    if (n == 0) return false;
    head->append(buf, static_cast<std::size_t>(n));
  }
  return true;
}

bool parse_request_head(const std::string& head, Request* request) {
  std::istringstream in(head);
  std::string line;
  if (!std::getline(in, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::istringstream start(line);
  std::string version;
  if (!(start >> request->method >> request->target >> version)) return false;
  if (version.rfind("HTTP/1.", 0) != 0) return false;
  auto q = request->target.find('?');
  request->path = request->target.substr(0, q);
  request->query = q == std::string::npos ? "" : request->target.substr(q + 1);
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) break;
    auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = to_lower(line.substr(0, colon));
    std::size_t value_begin = colon + 1;
    while (value_begin < line.size() && line[value_begin] == ' ') ++value_begin;
    request->headers[name] = line.substr(value_begin);
  }
  return true;
}

}  // namespace

std::string Request::header(const std::string& name) const {
  auto it = headers.find(to_lower(name));
  return it == headers.end() ? "" : it->second;
}

std::string Request::query_param(const std::string& key,
                                 const std::string& fallback) const {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    std::string pair = query.substr(pos, amp == std::string::npos ? std::string::npos
                                                                  : amp - pos);
    auto eq = pair.find('=');
    if (pair.substr(0, eq) == key) {
      return eq == std::string::npos ? "" : pair.substr(eq + 1);
    }
    if (amp == std::string::npos) break;
    pos = amp + 1;
  }
  return fallback;
}

struct Server::Impl {
  ServerOptions options;
  std::map<std::string, Handler> handlers;
  std::map<std::string, StreamHandler> stream_handlers;

  int listen_fd = -1;
  std::uint16_t bound_port = 0;
  std::atomic<bool> stop_flag{false};
  std::atomic<bool> running{false};
  std::thread accept_thread;

  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };
  std::mutex connections_mutex;
  std::vector<std::unique_ptr<Connection>> connections;
  std::condition_variable stop_cv;
  std::mutex stop_mutex;

  // ClientStream over one connection socket; shutdown-aware sleeps.
  class SocketStream : public ClientStream {
   public:
    SocketStream(Impl* impl, int fd) : impl_(impl), fd_(fd) {}
    bool write(const std::string& bytes) override {
      if (impl_->stop_flag.load()) return false;
      if (!ok_) return false;
      ok_ = send_all(fd_, bytes);
      return ok_;
    }
    [[nodiscard]] bool stopping() const override {
      return impl_->stop_flag.load();
    }
    bool wait(double seconds) override {
      std::unique_lock<std::mutex> lock(impl_->stop_mutex);
      impl_->stop_cv.wait_for(lock, std::chrono::duration<double>(seconds),
                              [this] { return impl_->stop_flag.load(); });
      return !impl_->stop_flag.load();
    }

   private:
    Impl* impl_;
    int fd_;
    bool ok_ = true;
  };

  void serve_connection(int fd) {
    set_recv_timeout(fd, 0.5);
    std::string head;
    Request request;
    if (!read_request_head(fd, options.request_timeout_seconds, &head) ||
        !parse_request_head(head, &request)) {
      send_all(fd, render_response({400, "text/plain; charset=utf-8",
                                    "bad request\n"},
                                   false));
      return;
    }
    bool head_only = request.method == "HEAD";
    if (request.method != "GET" && request.method != "HEAD") {
      send_all(fd, render_response({405, "text/plain; charset=utf-8",
                                    "only GET and HEAD are supported\n"},
                                   false));
      return;
    }
    if (auto it = stream_handlers.find(request.path); it != stream_handlers.end()) {
      std::ostringstream header;
      header << "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream"
             << "\r\nCache-Control: no-store\r\nConnection: close\r\n\r\n";
      if (!send_all(fd, header.str())) return;
      if (head_only) return;
      SocketStream stream(this, fd);
      it->second(request, stream);
      return;
    }
    if (auto it = handlers.find(request.path); it != handlers.end()) {
      send_all(fd, render_response(it->second(request), head_only));
      return;
    }
    send_all(fd, render_response({404, "text/plain; charset=utf-8",
                                  "not found\n"},
                                 false));
  }

  void accept_loop() {
    while (!stop_flag.load()) {
      pollfd pfd{listen_fd, POLLIN, 0};
      int ready = ::poll(&pfd, 1, kAcceptPollMillis);
      if (stop_flag.load()) break;
      if (ready <= 0) continue;
      int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      std::lock_guard<std::mutex> lock(connections_mutex);
      reap_finished_locked();
      std::size_t active = 0;
      for (const auto& c : connections) {
        if (!c->done.load()) ++active;
      }
      if (active >= options.max_connections) {
        send_all(fd, render_response({503, "text/plain; charset=utf-8",
                                      "too many connections\n"},
                                     false));
        ::close(fd);
        continue;
      }
      auto conn = std::make_unique<Connection>();
      conn->fd = fd;
      Connection* raw = conn.get();
      conn->thread = std::thread([this, raw] {
        serve_connection(raw->fd);
        ::shutdown(raw->fd, SHUT_RDWR);
        ::close(raw->fd);
        raw->fd = -1;
        raw->done.store(true);
      });
      connections.push_back(std::move(conn));
    }
  }

  // Caller holds connections_mutex.
  void reap_finished_locked() {
    auto it = connections.begin();
    while (it != connections.end()) {
      if ((*it)->done.load()) {
        if ((*it)->thread.joinable()) (*it)->thread.join();
        it = connections.erase(it);
      } else {
        ++it;
      }
    }
  }

  void shutdown_and_join() {
    stop_flag.store(true);
    {
      std::lock_guard<std::mutex> lock(stop_mutex);
    }
    stop_cv.notify_all();
    if (listen_fd >= 0) {
      ::shutdown(listen_fd, SHUT_RDWR);
      ::close(listen_fd);
      listen_fd = -1;
    }
    {
      // Wake blocked reads/writes so connection threads observe stop_flag.
      std::lock_guard<std::mutex> lock(connections_mutex);
      for (const auto& c : connections) {
        if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
      }
    }
    if (accept_thread.joinable()) accept_thread.join();
    std::lock_guard<std::mutex> lock(connections_mutex);
    for (const auto& c : connections) {
      if (c->thread.joinable()) c->thread.join();
    }
    connections.clear();
    running.store(false);
  }
};

Server::Server() = default;

Server::~Server() { stop(); }

void Server::handle(const std::string& path, Handler handler) {
  if (!impl_) impl_ = std::make_unique<Impl>();
  impl_->handlers[path] = std::move(handler);
}

void Server::handle_stream(const std::string& path, StreamHandler handler) {
  if (!impl_) impl_ = std::make_unique<Impl>();
  impl_->stream_handlers[path] = std::move(handler);
}

void Server::start(const ServerOptions& options) {
  if (!impl_) impl_ = std::make_unique<Impl>();
  if (impl_->running.load()) throw std::runtime_error("http server already running");
  impl_->options = options;
  impl_->stop_flag.store(false);

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("http server: socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("http server: bad bind address '" +
                             options.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    int err = errno;
    ::close(fd);
    throw std::runtime_error("http server: cannot bind " + options.bind_address +
                             ":" + std::to_string(options.port) + ": " +
                             std::strerror(err));
  }
  if (::listen(fd, 16) != 0) {
    int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("http server: listen() failed: ") +
                             std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  impl_->bound_port = ntohs(bound.sin_port);
  impl_->listen_fd = fd;
  impl_->running.store(true);
  impl_->accept_thread = std::thread([impl = impl_.get()] { impl->accept_loop(); });
}

void Server::stop() {
  if (!impl_ || !impl_->running.load()) return;
  impl_->shutdown_and_join();
}

bool Server::running() const { return impl_ && impl_->running.load(); }

std::uint16_t Server::port() const { return impl_ ? impl_->bound_port : 0; }

std::string Server::url() const {
  if (!impl_) return "";
  return "http://" + impl_->options.bind_address + ":" +
         std::to_string(impl_->bound_port);
}

FetchResult http_get(const std::string& url, double timeout_seconds,
                     const std::vector<std::string>& extra_headers) {
  const std::string prefix = "http://";
  if (url.rfind(prefix, 0) != 0) {
    throw std::runtime_error("http_get: only http:// URLs are supported: " + url);
  }
  std::string rest = url.substr(prefix.size());
  auto slash = rest.find('/');
  std::string host_port = rest.substr(0, slash);
  std::string path = slash == std::string::npos ? "/" : rest.substr(slash);
  auto colon = host_port.rfind(':');
  std::string host = colon == std::string::npos ? host_port : host_port.substr(0, colon);
  std::string port = colon == std::string::npos ? "80" : host_port.substr(colon + 1);
  if (host.empty()) throw std::runtime_error("http_get: empty host in URL: " + url);

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &result);
  if (rc != 0) {
    throw std::runtime_error("http_get: cannot resolve " + host + ":" + port +
                             ": " + gai_strerror(rc));
  }
  int fd = -1;
  int connect_errno = ECONNREFUSED;
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    set_recv_timeout(fd, timeout_seconds);
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout_seconds);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    connect_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0) {
    throw std::runtime_error("http_get: cannot connect to " + host + ":" + port +
                             ": " + std::strerror(connect_errno));
  }

  std::ostringstream request;
  request << "GET " << path << " HTTP/1.1\r\nHost: " << host_port
          << "\r\nAccept: */*\r\nConnection: close\r\n";
  for (const auto& header : extra_headers) request << header << "\r\n";
  request << "\r\n";
  if (!send_all(fd, request.str())) {
    ::close(fd);
    throw std::runtime_error("http_get: send failed to " + host + ":" + port);
  }

  std::string raw;
  char buf[4096];
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(timeout_seconds);
  for (;;) {
    if (std::chrono::steady_clock::now() > deadline) break;
    ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  auto header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos || raw.rfind("HTTP/1.", 0) != 0) {
    throw std::runtime_error("http_get: malformed response from " + host + ":" +
                             port);
  }
  FetchResult out;
  out.status = std::atoi(raw.c_str() + raw.find(' ') + 1);
  out.body = raw.substr(header_end + 4);
  return out;
}

}  // namespace icr::obs::http
