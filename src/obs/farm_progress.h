// Farm-level progress reporting (the multi-process sibling of the
// per-campaign ProgressReporter in src/sim/campaign.cc).
//
// The coordinator polls the spool directory — units done, cells done,
// workers alive — and feeds the counts here; this class owns the pacing
// (at most one line per min_interval_seconds) and the arithmetic
// (aggregate cells/sec across every worker process, ETA from the rate so
// far). Pure counters in, stderr lines out: no dependency on the sim
// layer, so it lives with the other observability sinks.
#pragma once

#include <chrono>
#include <cstdint>

namespace icr::obs {

struct FarmProgressOptions {
  bool enabled = true;
  double min_interval_seconds = 1.0;
};

class FarmProgressReporter {
 public:
  FarmProgressReporter(const FarmProgressOptions& options,
                       std::uint32_t total_units, std::uint64_t total_cells);

  // Rate-limited status line: units outstanding, aggregate cells/sec, ETA.
  // Call as often as convenient; most calls print nothing.
  void poll(std::uint32_t units_done, std::uint64_t cells_done,
            unsigned workers_alive);

  // Unconditional final line (unless disabled); reports the whole-farm
  // rate over the reporter's lifetime.
  void finish(std::uint32_t units_done, std::uint64_t cells_done);

  [[nodiscard]] double elapsed_seconds() const;

 private:
  void print_line(std::uint32_t units_done, std::uint64_t cells_done,
                  unsigned workers_alive, bool final_line);

  FarmProgressOptions options_;
  std::uint32_t total_units_;
  std::uint64_t total_cells_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_print_;
  std::uint64_t last_cells_ = 0;
};

}  // namespace icr::obs
