// Bundle of the per-run observability objects and their configuration.
//
// Each simulated cell (one variant x app x trial run) owns its registry,
// sampler, and trace outright — no shared mutable state, so campaign threads
// never contend and determinism is untouched. When everything in ObsOptions
// is off (the default) nothing is allocated and the simulator behaves
// exactly as before.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/obs/event_trace.h"
#include "src/obs/interval_sampler.h"
#include "src/obs/stat_registry.h"

namespace icr::obs {

struct ObsOptions {
  // Instructions per telemetry interval; 0 disables interval sampling.
  std::uint64_t stats_interval = 0;
  // Bitmask of EventCategory bits to trace; 0 disables event tracing.
  std::uint32_t trace_categories = 0;
  // Ring-buffer capacity of the event trace (most recent events retained).
  std::size_t trace_capacity = std::size_t{1} << 18;

  [[nodiscard]] bool any() const noexcept {
    return stats_interval != 0 || trace_categories != 0;
  }
};

// Live observability state wired into a running simulator. The registry is
// always present once observability is enabled; sampler/trace exist only
// when their option is on.
struct Observability {
  StatRegistry registry;
  std::unique_ptr<IntervalSampler> sampler;
  std::unique_ptr<EventTrace> trace;
};

// Plain-data extract of a finished run: safe to move across threads and to
// keep after the simulator (and the component stats the registry viewed)
// is gone.
struct CellObservability {
  IntervalSeries intervals;
  std::vector<TraceEvent> events;
  std::uint64_t trace_emitted = 0;
  std::uint64_t trace_dropped = 0;
};

}  // namespace icr::obs
