// Bounded structured event tracing.
//
// Components emit typed events (replication attempts, replica evictions,
// fault injections and verdicts, dead-block recycling) into a ring buffer
// that keeps the most recent `capacity` events; older events are overwritten
// and counted in `dropped()`. Emission is filterable by category at the
// source: a component checks `wants(category)` (one branch on a pointer it
// already holds) before building the event, so a detached or filtered
// tracer costs a single predictable-false branch on the hot path.
//
// Serialization to NDJSON lives in obs_io.h; the schema is documented in
// docs/OBSERVABILITY.md and locked by golden tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace icr::obs {

enum class EventCategory : std::uint8_t {
  kReplication = 0,
  kEviction = 1,
  kFault = 2,
  kDecay = 3,
};

[[nodiscard]] constexpr std::uint32_t category_bit(EventCategory c) noexcept {
  return 1u << static_cast<std::uint32_t>(c);
}

inline constexpr std::uint32_t kAllCategories = 0xF;

[[nodiscard]] const char* to_string(EventCategory category) noexcept;

// Parses a comma-separated category list ("replication,fault", or "all").
// Returns 0 when any element is unknown — callers treat 0 as an error.
[[nodiscard]] std::uint32_t parse_category_list(const std::string& list);

// Event types. The a0/a1/a2 payload meaning is per-kind; obs_io.h maps each
// kind to named NDJSON fields:
//   kReplicationAttempt — a0 = block address, a1 = replicas created,
//                         a2 = replica target
//   kReplicaCreate      — a0 = block address, a1 = set, a2 = site distance
//   kReplicaEvict       — a0 = block address, a1 = set
//   kDeadBlockRecycle   — a0 = displaced block, a1 = set, a2 = idle cycles
//                         since the block's last access (its decay-window
//                         expiry, observed at recycle time)
//   kFaultInject        — a0 = set, a1 = way, a2 = bits flipped
//   kFaultVerdict       — a0 = word address, a1 = FaultVerdict
enum class EventKind : std::uint8_t {
  kReplicationAttempt = 0,
  kReplicaCreate = 1,
  kReplicaEvict = 2,
  kDeadBlockRecycle = 3,
  kFaultInject = 4,
  kFaultVerdict = 5,
};

[[nodiscard]] const char* to_string(EventKind kind) noexcept;
[[nodiscard]] EventCategory category_of(EventKind kind) noexcept;

// Load-observed outcome of an injected fault (the "verdict"). Defined here
// (not in src/fault) so the tracer can name outcomes without depending on
// the fault layer; FaultInjector adopts this enum in its API.
enum class FaultVerdict : std::uint8_t {
  kCorrected = 0,              // ECC, L2 refetch, or R-Cache supplied the word
  kReplicaRecovered = 1,       // a clean ICR replica supplied the word
  kDetectedUncorrectable = 2,  // error signalled, data lost
  kSilent = 3,                 // wrong value delivered with no error signal
};

[[nodiscard]] const char* to_string(FaultVerdict verdict) noexcept;

struct TraceEvent {
  std::uint64_t cycle = 0;
  EventKind kind = EventKind::kReplicationAttempt;
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;
  std::uint64_t a2 = 0;
};

class EventTrace {
 public:
  explicit EventTrace(std::uint32_t category_mask = kAllCategories,
                      std::size_t capacity = std::size_t{1} << 18);

  [[nodiscard]] bool wants(EventCategory category) const noexcept {
    return (mask_ & category_bit(category)) != 0;
  }
  [[nodiscard]] std::uint32_t mask() const noexcept { return mask_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  // Appends one event; when the ring is full the oldest event is
  // overwritten and counted as dropped.
  void emit(EventKind kind, std::uint64_t cycle, std::uint64_t a0 = 0,
            std::uint64_t a1 = 0, std::uint64_t a2 = 0);

  // Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  // Total events offered to emit() (retained + dropped).
  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }
  // Events overwritten by ring wrap-around.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  std::uint32_t mask_;
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;  // grows lazily up to capacity_
  std::size_t head_ = 0;          // next write position once full
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace icr::obs
