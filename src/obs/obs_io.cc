#include "src/obs/obs_io.h"

#include <cstdio>

namespace icr::obs {
namespace {

// Shortest round-trip decimal, matching results_io.cc: equal doubles always
// print equal text, so deterministic runs export byte-identical files.
std::string format_ratio(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::string hex64(std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "0x%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

// Index of `name` in `names`, or npos.
std::size_t index_of(const std::vector<std::string>& names,
                     const char* name) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  return static_cast<std::size_t>(-1);
}

std::uint64_t delta_at(const IntervalSeries::Sample& prev,
                       const IntervalSeries::Sample& cur, std::size_t index) {
  if (index == static_cast<std::size_t>(-1)) return 0;
  return cur.counters[index] - prev.counters[index];
}

struct DerivedIndices {
  std::size_t loads, load_misses, stores, store_misses, opportunities,
      successes;
};

DerivedIndices derived_indices(const IntervalSeries& series) {
  return DerivedIndices{
      index_of(series.counter_names, "dl1.loads"),
      index_of(series.counter_names, "dl1.load_misses"),
      index_of(series.counter_names, "dl1.stores"),
      index_of(series.counter_names, "dl1.store_misses"),
      index_of(series.counter_names, "dl1.replication.opportunities"),
      index_of(series.counter_names, "dl1.replication.successes"),
  };
}

void append_tag(std::string& out, const CellTag& tag) {
  out += tag.variant;
  out += ',';
  out += tag.app;
  out += ',';
  out += std::to_string(tag.trial);
}

}  // namespace

std::string intervals_csv_header(const IntervalSeries& series) {
  std::string out =
      "variant,app,trial,interval,instr_end,cycles_end,d_instructions,"
      "d_cycles,ipc,dl1_miss_rate,replication_ability";
  for (const std::string& name : series.counter_names) {
    out += ",d_";
    out += name;
  }
  for (const std::string& name : series.gauge_names) {
    out += ',';
    out += name;
  }
  out += '\n';
  return out;
}

void append_intervals_csv_rows(std::string& out, const IntervalSeries& series,
                               const CellTag& tag) {
  const DerivedIndices idx = derived_indices(series);
  for (std::size_t k = 0; k + 1 < series.samples.size(); ++k) {
    const IntervalSeries::Sample& prev = series.samples[k];
    const IntervalSeries::Sample& cur = series.samples[k + 1];
    const std::uint64_t d_instr = cur.instructions - prev.instructions;
    const std::uint64_t d_cycles = cur.cycles - prev.cycles;
    const std::uint64_t accesses = delta_at(prev, cur, idx.loads) +
                                   delta_at(prev, cur, idx.stores);
    const std::uint64_t misses = delta_at(prev, cur, idx.load_misses) +
                                 delta_at(prev, cur, idx.store_misses);
    const std::uint64_t opportunities =
        delta_at(prev, cur, idx.opportunities);
    const std::uint64_t successes = delta_at(prev, cur, idx.successes);

    append_tag(out, tag);
    out += ',' + std::to_string(k);
    out += ',' + std::to_string(cur.instructions);
    out += ',' + std::to_string(cur.cycles);
    out += ',' + std::to_string(d_instr);
    out += ',' + std::to_string(d_cycles);
    out += ',' + format_ratio(d_cycles == 0 ? 0.0
                                            : static_cast<double>(d_instr) /
                                                  static_cast<double>(d_cycles));
    out += ',' + format_ratio(accesses == 0
                                  ? 0.0
                                  : static_cast<double>(misses) /
                                        static_cast<double>(accesses));
    out += ',' + format_ratio(opportunities == 0
                                  ? 0.0
                                  : static_cast<double>(successes) /
                                        static_cast<double>(opportunities));
    for (std::size_t c = 0; c < series.counter_names.size(); ++c) {
      out += ',' + std::to_string(cur.counters[c] - prev.counters[c]);
    }
    for (std::size_t g = 0; g < series.gauge_names.size(); ++g) {
      out += ',' + std::to_string(cur.gauges[g]);
    }
    out += '\n';
  }
}

std::string intervals_to_csv(const IntervalSeries& series,
                             const CellTag& tag) {
  std::string out = intervals_csv_header(series);
  append_intervals_csv_rows(out, series, tag);
  return out;
}

std::string occupancy_csv_header(std::uint32_t sets) {
  std::string out = "variant,app,trial,interval,instr_end";
  for (std::uint32_t s = 0; s < sets; ++s) {
    out += ",set_" + std::to_string(s);
  }
  out += '\n';
  return out;
}

void append_occupancy_csv_rows(std::string& out, const IntervalSeries& series,
                               const CellTag& tag) {
  for (std::size_t k = 0; k + 1 < series.samples.size(); ++k) {
    const IntervalSeries::Sample& cur = series.samples[k + 1];
    append_tag(out, tag);
    out += ',' + std::to_string(k);
    out += ',' + std::to_string(cur.instructions);
    for (const std::uint32_t replicas : cur.occupancy) {
      out += ',' + std::to_string(replicas);
    }
    out += '\n';
  }
}

std::string occupancy_to_csv(const IntervalSeries& series,
                             const CellTag& tag) {
  std::string out = occupancy_csv_header(series.occupancy_sets);
  append_occupancy_csv_rows(out, series, tag);
  return out;
}

void append_ndjson(std::string& out, const std::vector<TraceEvent>& events,
                   const CellTag& tag) {
  std::string prefix = "{\"variant\":\"" + tag.variant + "\",\"app\":\"" +
                       tag.app + "\",\"trial\":" + std::to_string(tag.trial);
  for (const TraceEvent& e : events) {
    out += prefix;
    out += ",\"cycle\":" + std::to_string(e.cycle);
    out += ",\"cat\":\"";
    out += to_string(category_of(e.kind));
    out += "\",\"event\":\"";
    out += to_string(e.kind);
    out += '"';
    switch (e.kind) {
      case EventKind::kReplicationAttempt:
        out += ",\"block\":\"" + hex64(e.a0) +
               "\",\"created\":" + std::to_string(e.a1) +
               ",\"target\":" + std::to_string(e.a2);
        break;
      case EventKind::kReplicaCreate:
        out += ",\"block\":\"" + hex64(e.a0) +
               "\",\"set\":" + std::to_string(e.a1) +
               ",\"distance\":" + std::to_string(e.a2);
        break;
      case EventKind::kReplicaEvict:
        out += ",\"block\":\"" + hex64(e.a0) +
               "\",\"set\":" + std::to_string(e.a1);
        break;
      case EventKind::kDeadBlockRecycle:
        out += ",\"block\":\"" + hex64(e.a0) +
               "\",\"set\":" + std::to_string(e.a1) +
               ",\"idle_cycles\":" + std::to_string(e.a2);
        break;
      case EventKind::kFaultInject:
        out += ",\"set\":" + std::to_string(e.a0) +
               ",\"way\":" + std::to_string(e.a1) +
               ",\"bits\":" + std::to_string(e.a2);
        break;
      case EventKind::kFaultVerdict:
        out += ",\"addr\":\"" + hex64(e.a0) + "\",\"outcome\":\"";
        out += to_string(static_cast<FaultVerdict>(e.a1));
        out += '"';
        break;
    }
    out += "}\n";
  }
}

std::vector<IntervalPoint> interval_points(const IntervalSeries& series) {
  const DerivedIndices idx = derived_indices(series);
  std::vector<IntervalPoint> pts;
  for (std::size_t k = 0; k + 1 < series.samples.size(); ++k) {
    const IntervalSeries::Sample& prev = series.samples[k];
    const IntervalSeries::Sample& cur = series.samples[k + 1];
    IntervalPoint p;
    p.instr_end = static_cast<double>(cur.instructions);
    p.d_instructions =
        static_cast<double>(cur.instructions - prev.instructions);
    p.d_cycles = static_cast<double>(cur.cycles - prev.cycles);
    p.ipc = p.d_cycles == 0 ? 0.0 : p.d_instructions / p.d_cycles;
    const double accesses = static_cast<double>(
        delta_at(prev, cur, idx.loads) + delta_at(prev, cur, idx.stores));
    const double misses =
        static_cast<double>(delta_at(prev, cur, idx.load_misses) +
                            delta_at(prev, cur, idx.store_misses));
    p.miss_weight = accesses;
    p.miss_rate = accesses == 0 ? 0.0 : misses / accesses;
    const double opportunities =
        static_cast<double>(delta_at(prev, cur, idx.opportunities));
    const double successes =
        static_cast<double>(delta_at(prev, cur, idx.successes));
    p.replication_weight = opportunities;
    p.replication_ability =
        opportunities == 0 ? 0.0 : successes / opportunities;
    pts.push_back(p);
  }
  return pts;
}

IntervalSummary summarize(const std::vector<IntervalPoint>& pts) {
  IntervalSummary s;
  s.intervals = pts.size();
  if (pts.empty()) return s;
  double ra_num = 0, ra_den = 0, miss_num = 0, miss_den = 0, instr = 0,
         cycles = 0;
  for (const IntervalPoint& p : pts) {
    s.peak_replication_ability =
        std::max(s.peak_replication_ability, p.replication_ability);
    s.peak_miss_rate = std::max(s.peak_miss_rate, p.miss_rate);
    ra_num += p.replication_ability * p.replication_weight;
    ra_den += p.replication_weight;
    miss_num += p.miss_rate * p.miss_weight;
    miss_den += p.miss_weight;
    instr += p.d_instructions;
    cycles += p.d_cycles;
  }
  s.mean_replication_ability = ra_den == 0 ? 0.0 : ra_num / ra_den;
  s.mean_miss_rate = miss_den == 0 ? 0.0 : miss_num / miss_den;
  s.mean_ipc = cycles == 0 ? 0.0 : instr / cycles;
  s.final_replication_ability = pts.back().replication_ability;
  s.final_miss_rate = pts.back().miss_rate;
  return s;
}

std::vector<Phase> segment_phases(const std::vector<IntervalPoint>& pts,
                                  double rel_tolerance,
                                  double abs_tolerance) {
  std::vector<Phase> phases;
  if (pts.empty()) return phases;

  std::size_t first = 0;
  double miss_sum = 0, ra_sum = 0, instr_sum = 0, cycle_sum = 0;
  auto flush = [&](std::size_t last) {
    const double n = static_cast<double>(last - first + 1);
    Phase phase;
    phase.first_interval = first;
    phase.last_interval = last;
    phase.mean_miss_rate = miss_sum / n;
    phase.mean_replication_ability = ra_sum / n;
    phase.mean_ipc = cycle_sum == 0 ? 0.0 : instr_sum / cycle_sum;
    phases.push_back(phase);
  };

  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i > first) {
      const double mean = miss_sum / static_cast<double>(i - first);
      const double tolerance =
          std::max(abs_tolerance, rel_tolerance * mean);
      if (pts[i].miss_rate > mean + tolerance ||
          pts[i].miss_rate < mean - tolerance) {
        flush(i - 1);
        first = i;
        miss_sum = ra_sum = instr_sum = cycle_sum = 0;
      }
    }
    miss_sum += pts[i].miss_rate;
    ra_sum += pts[i].replication_ability;
    instr_sum += pts[i].d_instructions;
    cycle_sum += pts[i].d_cycles;
  }
  flush(pts.size() - 1);
  return phases;
}

}  // namespace icr::obs
