// Rendering telemetry for the embedded HTTP server (src/obs/http_server.h):
// Prometheus text exposition format 0.0.4, Server-Sent Event framing, and
// the self-contained HTML dashboard served at `/`.
//
// This layer is generic over the telemetry substrate — it knows about
// StatRegistry, Log2Histogram and profiler zones (all src/obs leaves) but
// nothing about the simulator or the farm; the farm-specific metric
// families live in src/sim/serve.cc.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/prof.h"
#include "src/obs/stat_registry.h"

namespace icr::obs {

// Sanitizes an arbitrary name ("dl1.replication.successes") into a legal
// Prometheus metric-name fragment ([a-zA-Z_:][a-zA-Z0-9_:]*): every illegal
// character becomes '_', and a leading digit gets a '_' prefix.
[[nodiscard]] std::string prom_sanitize_name(const std::string& name);

// Escapes a label value for the text format: backslash, double-quote and
// newline get backslash escapes.
[[nodiscard]] std::string prom_escape_label(const std::string& value);

using PromLabels = std::vector<std::pair<std::string, std::string>>;

// Builder for one /metrics page. family() writes the # HELP / # TYPE
// preamble once per metric name (repeat declarations are ignored, so
// per-worker loops can declare inline); sample() appends one sample line.
class MetricsText {
 public:
  // type: "counter", "gauge" or "histogram".
  void family(const std::string& name, const std::string& help,
              const std::string& type);
  void sample(const std::string& name, const PromLabels& labels, double value);
  void sample(const std::string& name, const PromLabels& labels,
              std::uint64_t value);

  // Renders a Log2Histogram as a Prometheus histogram: cumulative
  // `le`-bucketed counts at each log2 boundary scaled by `scale`
  // (bucket upper bound * scale), `<name>_count`, and `<name>_sum` as the
  // lower-bound estimate the log2 buckets admit. Declares the family.
  void histogram(const std::string& name, const std::string& help,
                 const Log2Histogram& hist, const PromLabels& labels = {},
                 double scale = 1.0);

  [[nodiscard]] const std::string& text() const noexcept { return text_; }

 private:
  std::string text_;
  std::vector<std::string> declared_;
};

// One sample line per registry counter and gauge, as
// `<prefix>_<sanitized-name>` families; registry histograms render via
// MetricsText::histogram. `labels` is appended to every sample.
void append_registry(MetricsText& out, const StatRegistry& registry,
                     const std::string& prefix, const PromLabels& labels = {});

// Profiler zone table: `<prefix>_self_seconds` / `<prefix>_calls` families
// labelled by zone path. Pass `snapshot_zones()` or a Profile's zones.
void append_prof_zones(MetricsText& out, const std::vector<prof::ZoneNode>& zones,
                       const std::string& prefix, const PromLabels& labels = {});

// One Server-Sent Event frame: "id: <id>\n[event: <event>\n]data: <data>\n\n".
// `data` must be a single line (NDJSON record).
[[nodiscard]] std::string sse_event(std::uint64_t id, const std::string& data,
                                    const std::string& event = "");

// The dashboard page served at `/`: a single self-contained HTML document
// (no external assets) that polls /status and subscribes to /events.
[[nodiscard]] std::string dashboard_html();

}  // namespace icr::obs
