#include "src/obs/event_trace.h"

namespace icr::obs {

const char* to_string(EventCategory category) noexcept {
  switch (category) {
    case EventCategory::kReplication:
      return "replication";
    case EventCategory::kEviction:
      return "eviction";
    case EventCategory::kFault:
      return "fault";
    case EventCategory::kDecay:
      return "decay";
  }
  return "?";
}

std::uint32_t parse_category_list(const std::string& list) {
  std::uint32_t mask = 0;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    if (comma > start) {
      const std::string item = list.substr(start, comma - start);
      if (item == "all") {
        mask |= kAllCategories;
      } else {
        bool known = false;
        for (const EventCategory c :
             {EventCategory::kReplication, EventCategory::kEviction,
              EventCategory::kFault, EventCategory::kDecay}) {
          if (item == to_string(c)) {
            mask |= category_bit(c);
            known = true;
          }
        }
        if (!known) return 0;
      }
    }
    start = comma + 1;
  }
  return mask;
}

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kReplicationAttempt:
      return "attempt";
    case EventKind::kReplicaCreate:
      return "replica_create";
    case EventKind::kReplicaEvict:
      return "replica_evict";
    case EventKind::kDeadBlockRecycle:
      return "dead_recycle";
    case EventKind::kFaultInject:
      return "inject";
    case EventKind::kFaultVerdict:
      return "verdict";
  }
  return "?";
}

EventCategory category_of(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kReplicationAttempt:
    case EventKind::kReplicaCreate:
      return EventCategory::kReplication;
    case EventKind::kReplicaEvict:
      return EventCategory::kEviction;
    case EventKind::kDeadBlockRecycle:
      return EventCategory::kDecay;
    case EventKind::kFaultInject:
    case EventKind::kFaultVerdict:
      return EventCategory::kFault;
  }
  return EventCategory::kReplication;
}

const char* to_string(FaultVerdict verdict) noexcept {
  switch (verdict) {
    case FaultVerdict::kCorrected:
      return "corrected";
    case FaultVerdict::kReplicaRecovered:
      return "replica_recovered";
    case FaultVerdict::kDetectedUncorrectable:
      return "detected_uncorrectable";
    case FaultVerdict::kSilent:
      return "silent";
  }
  return "?";
}

EventTrace::EventTrace(std::uint32_t category_mask, std::size_t capacity)
    : mask_(category_mask), capacity_(capacity == 0 ? 1 : capacity) {}

void EventTrace::emit(EventKind kind, std::uint64_t cycle, std::uint64_t a0,
                      std::uint64_t a1, std::uint64_t a2) {
  ++emitted_;
  const TraceEvent event{cycle, kind, a0, a1, a2};
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  ring_[head_] = event;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> EventTrace::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // `head_` is the oldest retained event once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

}  // namespace icr::obs
