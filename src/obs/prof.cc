#include "src/obs/prof.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

namespace icr::obs::prof {

namespace internal {
std::atomic<int> g_level{kOff};
}  // namespace internal

namespace {

using Clock = std::chrono::steady_clock;

struct RawEvent {
  const char* name = nullptr;
  std::uint32_t label_idx = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint16_t depth = 0;
};

// Per-thread aggregation node. children are searched linearly: zone trees
// are shallow and narrow (a handful of children per node), so a vector
// beats a hash map here.
struct AggNode {
  const char* name = nullptr;
  int parent = -1;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t child_ns = 0;
  std::vector<int> children;
};

struct ThreadBuffer {
  std::vector<AggNode> nodes;  // nodes[0] is the virtual root
  int current = 0;
  std::uint16_t depth = 0;
  std::vector<RawEvent> events;  // ring of the most recent coarse events
  std::size_t event_capacity = 0;
  std::size_t event_next = 0;
  bool event_wrapped = false;
  std::uint64_t dropped = 0;
  std::vector<std::string> labels;
  std::uint32_t tid = 0;

  ThreadBuffer() {
    nodes.emplace_back();  // root
  }
};

struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::atomic<std::uint64_t> generation{0};
  Clock::time_point epoch{};
  CaptureOptions options;
  std::atomic<bool> capturing{false};
};

Registry& registry() {
  static Registry r;
  return r;
}

struct ThreadCache {
  ThreadBuffer* buffer = nullptr;
  std::uint64_t generation = 0;
};

thread_local ThreadCache tl_cache;

ThreadBuffer* local_buffer() {
  Registry& r = registry();
  if (!r.capturing.load(std::memory_order_acquire)) return nullptr;
  // Lock-free fast path: this thread already registered for this capture.
  if (tl_cache.buffer != nullptr &&
      tl_cache.generation == r.generation.load(std::memory_order_relaxed)) {
    return tl_cache.buffer;
  }
  std::lock_guard<std::mutex> lock(r.mutex);
  // Re-check under the lock: end_capture() may have raced us.
  if (!r.capturing.load(std::memory_order_relaxed)) return nullptr;
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = static_cast<std::uint32_t>(r.buffers.size());
  buffer->event_capacity = r.options.events_per_thread;
  buffer->events.reserve(std::min<std::size_t>(buffer->event_capacity, 4096));
  tl_cache.buffer = buffer.get();
  tl_cache.generation = r.generation.load(std::memory_order_relaxed);
  r.buffers.push_back(std::move(buffer));
  return tl_cache.buffer;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now() - registry().epoch)
          .count());
}

// Merged tree node, keyed by name string so zones from different threads
// (and different string literals with equal text) coalesce.
struct MergeNode {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t child_ns = 0;
  std::map<std::string, MergeNode> children;  // sorted => deterministic
};

void merge_tree(const ThreadBuffer& buffer, int node_index, MergeNode& into) {
  const AggNode& node = buffer.nodes[static_cast<std::size_t>(node_index)];
  for (const int child_index : node.children) {
    const AggNode& child = buffer.nodes[static_cast<std::size_t>(child_index)];
    MergeNode& m = into.children[child.name];
    m.count += child.count;
    m.total_ns += child.total_ns;
    m.child_ns += child.child_ns;
    merge_tree(buffer, child_index, m);
  }
}

void flatten(const MergeNode& node, const std::string& path, int depth,
             std::vector<ZoneNode>& out) {
  for (const auto& [name, child] : node.children) {
    ZoneNode zone;
    zone.path = path.empty() ? name : path + "/" + name;
    zone.name = name;
    zone.depth = depth;
    zone.count = child.count;
    zone.total_ns = child.total_ns;
    zone.self_ns =
        child.total_ns - std::min(child.child_ns, child.total_ns);
    const std::string child_path = zone.path;
    out.push_back(std::move(zone));
    flatten(child, child_path, depth + 1, out);
  }
}

}  // namespace

bool capturing() noexcept {
  return registry().capturing.load(std::memory_order_relaxed);
}

void begin_capture(const CaptureOptions& options) {
  Registry& r = registry();
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    r.buffers.clear();
    r.generation.fetch_add(1, std::memory_order_relaxed);
    r.options = options;
    r.epoch = Clock::now();
    r.capturing.store(true, std::memory_order_release);
  }
  internal::g_level.store(options.level < kOff ? kOff : options.level,
                          std::memory_order_relaxed);
}

Profile end_capture() {
  Registry& r = registry();
  internal::g_level.store(kOff, std::memory_order_relaxed);
  Profile profile;

  std::lock_guard<std::mutex> lock(r.mutex);
  if (!r.capturing.load(std::memory_order_relaxed)) return profile;
  r.capturing.store(false, std::memory_order_release);
  profile.wall_ns = now_ns();
  profile.threads = static_cast<std::uint32_t>(r.buffers.size());

  MergeNode root;
  for (const auto& buffer : r.buffers) {
    merge_tree(*buffer, 0, root);
    profile.dropped_events += buffer->dropped;
  }
  flatten(root, std::string(), 0, profile.zones);

  for (const auto& buffer : r.buffers) {
    const std::size_t count = buffer->events.size();
    const std::size_t first =
        buffer->event_wrapped ? buffer->event_next : 0;  // oldest retained
    for (std::size_t i = 0; i < count; ++i) {
      const RawEvent& raw = buffer->events[(first + i) % count];
      SpanEvent event;
      event.name = raw.name;
      if (raw.label_idx != 0) event.label = buffer->labels[raw.label_idx - 1];
      event.start_ns = raw.start_ns;
      event.dur_ns = raw.dur_ns;
      event.tid = buffer->tid;
      event.depth = raw.depth;
      profile.events.push_back(std::move(event));
    }
  }
  r.buffers.clear();
  r.generation.fetch_add(1, std::memory_order_relaxed);
  return profile;
}

std::vector<ZoneNode> snapshot_zones() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<ZoneNode> zones;
  if (!r.capturing.load(std::memory_order_relaxed)) return zones;
  MergeNode root;
  for (const auto& buffer : r.buffers) {
    merge_tree(*buffer, 0, root);
  }
  flatten(root, std::string(), 0, zones);
  return zones;
}

std::uint64_t Profile::total_self_ns() const noexcept {
  std::uint64_t sum = 0;
  for (const ZoneNode& zone : zones) sum += zone.self_ns;
  return sum;
}

const ZoneNode* Profile::find(const std::string& path) const noexcept {
  for (const ZoneNode& zone : zones) {
    if (zone.path == path) return &zone;
  }
  return nullptr;
}

void ScopedZone::begin(const char* name, int zone_level,
                       const std::string* label) noexcept {
  ThreadBuffer* buffer = local_buffer();
  if (buffer == nullptr) return;

  AggNode& parent = buffer->nodes[static_cast<std::size_t>(buffer->current)];
  int node_index = -1;
  for (const int child : parent.children) {
    const AggNode& candidate = buffer->nodes[static_cast<std::size_t>(child)];
    // Pointer compare first: identical literals usually coalesce within a
    // binary; strcmp handles the cross-TU case.
    if (candidate.name == name || std::strcmp(candidate.name, name) == 0) {
      node_index = child;
      break;
    }
  }
  if (node_index < 0) {
    node_index = static_cast<int>(buffer->nodes.size());
    AggNode node;
    node.name = name;
    node.parent = buffer->current;
    buffer->nodes.push_back(node);
    buffer->nodes[static_cast<std::size_t>(buffer->current)]
        .children.push_back(node_index);
  }
  buffer->current = node_index;
  ++buffer->depth;

  armed_ = true;
  emit_event_ = zone_level <= kCoarse;
  node_ = node_index;
  if (label != nullptr && !label->empty()) {
    buffer->labels.push_back(*label);
    label_idx_ = static_cast<std::uint32_t>(buffer->labels.size());
  }
  start_ns_ = now_ns();
}

void ScopedZone::end() noexcept {
  Registry& r = registry();
  ThreadBuffer* buffer = tl_cache.buffer;
  // A capture restarted under a live zone invalidates the node index; the
  // generation check makes that (documented-unsupported) case safe.
  if (buffer == nullptr ||
      tl_cache.generation != r.generation.load(std::memory_order_relaxed)) {
    return;
  }
  const std::uint64_t end_ns = now_ns();
  const std::uint64_t dur =
      end_ns >= start_ns_ ? end_ns - start_ns_ : 0;

  AggNode& node = buffer->nodes[static_cast<std::size_t>(node_)];
  ++node.count;
  node.total_ns += dur;
  if (node.parent >= 0) {
    buffer->nodes[static_cast<std::size_t>(node.parent)].child_ns += dur;
  }
  buffer->current = node.parent < 0 ? 0 : node.parent;
  if (buffer->depth > 0) --buffer->depth;

  if (emit_event_ && buffer->event_capacity > 0) {
    RawEvent raw;
    raw.name = node.name;
    raw.label_idx = label_idx_;
    raw.start_ns = start_ns_;
    raw.dur_ns = dur;
    raw.depth = buffer->depth;
    if (buffer->events.size() < buffer->event_capacity) {
      buffer->events.push_back(raw);
    } else {
      buffer->events[buffer->event_next] = raw;
      buffer->event_wrapped = true;
      ++buffer->dropped;
    }
    buffer->event_next = (buffer->event_next + 1) % buffer->event_capacity;
  }
}

}  // namespace icr::obs::prof
