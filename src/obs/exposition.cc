#include "src/obs/exposition.h"

#include <algorithm>
#include <cstdio>

namespace icr::obs {
namespace {

std::string format_value(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string render_labels(const PromLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += prom_sanitize_name(key);
    out += "=\"";
    out += prom_escape_label(value);
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

std::string prom_sanitize_name(const std::string& name) {
  if (name.empty()) return "_";
  std::string out;
  out.reserve(name.size() + 1);
  if (name[0] >= '0' && name[0] <= '9') out += '_';
  for (char c : name) {
    bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += legal ? c : '_';
  }
  return out;
}

std::string prom_escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void MetricsText::family(const std::string& name, const std::string& help,
                         const std::string& type) {
  if (std::find(declared_.begin(), declared_.end(), name) != declared_.end()) {
    return;
  }
  declared_.push_back(name);
  text_ += "# HELP " + name + ' ' + help + '\n';
  text_ += "# TYPE " + name + ' ' + type + '\n';
}

void MetricsText::sample(const std::string& name, const PromLabels& labels,
                         double value) {
  text_ += name + render_labels(labels) + ' ' + format_value(value) + '\n';
}

void MetricsText::sample(const std::string& name, const PromLabels& labels,
                         std::uint64_t value) {
  text_ += name + render_labels(labels) + ' ' + std::to_string(value) + '\n';
}

void MetricsText::histogram(const std::string& name, const std::string& help,
                            const Log2Histogram& hist, const PromLabels& labels,
                            double scale) {
  family(name, help + " (bucket sums are lower-bound estimates)", "histogram");
  std::uint64_t cumulative = 0;
  double sum_estimate = 0.0;
  for (std::uint32_t b = 0; b < Log2Histogram::kBuckets; ++b) {
    std::uint64_t count = hist.bucket(b);
    cumulative += count;
    sum_estimate += static_cast<double>(count) *
                    static_cast<double>(Log2Histogram::bucket_lower_bound(b)) *
                    scale;
    if (count == 0 && b != Log2Histogram::kOverflowBucket) continue;
    PromLabels le = labels;
    if (b == Log2Histogram::kOverflowBucket) {
      le.emplace_back("le", "+Inf");
    } else {
      // Bucket b holds values < bucket_lower_bound(b + 1).
      double upper =
          static_cast<double>(Log2Histogram::bucket_lower_bound(b + 1)) * scale;
      le.emplace_back("le", format_value(upper));
    }
    sample(name + "_bucket", le, cumulative);
  }
  // +Inf cumulative must equal _count even when the overflow bucket is empty.
  if (cumulative != hist.total()) {
    PromLabels le = labels;
    le.emplace_back("le", "+Inf");
    sample(name + "_bucket", le, hist.total());
  }
  sample(name + "_sum", labels, sum_estimate);
  sample(name + "_count", labels, hist.total());
}

void append_registry(MetricsText& out, const StatRegistry& registry,
                     const std::string& prefix, const PromLabels& labels) {
  const auto counters = registry.snapshot_counters();
  for (std::size_t i = 0; i < registry.counter_names().size(); ++i) {
    std::string name = prefix + '_' + prom_sanitize_name(registry.counter_names()[i]);
    out.family(name, "stat-registry counter " + registry.counter_names()[i],
               "counter");
    out.sample(name, labels, counters[i]);
  }
  const auto gauges = registry.snapshot_gauges();
  for (std::size_t i = 0; i < registry.gauge_names().size(); ++i) {
    std::string name = prefix + '_' + prom_sanitize_name(registry.gauge_names()[i]);
    out.family(name, "stat-registry gauge " + registry.gauge_names()[i], "gauge");
    out.sample(name, labels, gauges[i]);
  }
  for (const auto& hist_name : registry.histogram_names()) {
    const Log2Histogram* hist = registry.find_histogram(hist_name);
    if (hist == nullptr) continue;
    out.histogram(prefix + '_' + prom_sanitize_name(hist_name),
                  "stat-registry histogram " + hist_name, *hist, labels);
  }
}

void append_prof_zones(MetricsText& out, const std::vector<prof::ZoneNode>& zones,
                       const std::string& prefix, const PromLabels& labels) {
  if (zones.empty()) return;
  const std::string self = prefix + "_self_seconds";
  const std::string calls = prefix + "_calls";
  out.family(self, "profiler zone self time", "gauge");
  out.family(calls, "profiler zone call count", "gauge");
  for (const auto& zone : zones) {
    PromLabels zl = labels;
    zl.emplace_back("zone", zone.path);
    out.sample(self, zl, static_cast<double>(zone.self_ns) * 1e-9);
    out.sample(calls, zl, zone.count);
  }
}

std::string sse_event(std::uint64_t id, const std::string& data,
                      const std::string& event) {
  std::string out = "id: " + std::to_string(id) + '\n';
  if (!event.empty()) out += "event: " + event + '\n';
  out += "data: " + data + "\n\n";
  return out;
}

// The dashboard is one self-contained page (no external assets): it polls
// /status every 2s for the tiles + worker table and subscribes to /events
// (the browser EventSource handles Last-Event-ID resume) to build the
// unit-latency histogram from publish events. Palette and rules follow the
// repo dataviz conventions: one accent hue for the single-series histogram,
// status colors only next to their text label, light/dark from
// prefers-color-scheme.
std::string dashboard_html() {
  return R"HTML(<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>icr fleet</title>
<style>
:root {
  --surface: #fcfcfb; --ink: #0b0b0b; --ink2: #52514e; --muted: #898781;
  --accent: #2a78d6; --good: #0ca30c; --warning: #fab219;
  --serious: #ec835a; --critical: #d03b3b; --line: #e4e3df;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --ink: #ffffff; --ink2: #c3c2b7; --muted: #898781;
    --accent: #3987e5; --line: #33322f;
  }
}
body { margin: 0; padding: 24px; background: var(--surface); color: var(--ink);
       font: 14px/1.45 ui-sans-serif, system-ui, sans-serif; }
h1 { font-size: 18px; margin: 0 0 4px; }
.sub { color: var(--ink2); margin-bottom: 20px; }
.pill { display: inline-block; padding: 1px 10px; border-radius: 10px;
        border: 1px solid var(--line); color: var(--ink2); font-size: 12px; }
.pill .dot { display: inline-block; width: 8px; height: 8px;
             border-radius: 4px; margin-right: 6px; background: var(--muted); }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 20px; }
.tile { border: 1px solid var(--line); border-radius: 8px; padding: 12px 16px;
        min-width: 130px; }
.tile .k { color: var(--muted); font-size: 12px; }
.tile .v { font-size: 24px; font-variant-numeric: tabular-nums; }
.bar { height: 6px; background: var(--line); border-radius: 3px;
       margin-top: 8px; overflow: hidden; }
.bar > div { height: 100%; background: var(--accent); border-radius: 3px;
             width: 0; transition: width .5s; }
h2 { font-size: 14px; color: var(--ink2); margin: 24px 0 8px; }
table { border-collapse: collapse; width: 100%; max-width: 900px; }
th { text-align: left; color: var(--muted); font-weight: 500; font-size: 12px;
     border-bottom: 1px solid var(--line); padding: 4px 12px 4px 0; }
td { padding: 4px 12px 4px 0; border-bottom: 1px solid var(--line);
     font-variant-numeric: tabular-nums; }
td.state .dot { display: inline-block; width: 8px; height: 8px;
                border-radius: 4px; margin-right: 6px; }
.hist { max-width: 640px; }
.hrow { display: flex; align-items: center; gap: 8px; margin: 2px 0; }
.hrow .lbl { width: 110px; color: var(--ink2); font-size: 12px;
             text-align: right; font-variant-numeric: tabular-nums; }
.hrow .track { flex: 1; height: 14px; }
.hrow .fill { height: 100%; background: var(--accent); border-radius: 4px;
              min-width: 0; }
.hrow .n { width: 48px; color: var(--ink2); font-size: 12px;
           font-variant-numeric: tabular-nums; }
.empty { color: var(--muted); }
footer { margin-top: 28px; color: var(--muted); font-size: 12px; }
footer a { color: var(--accent); }
</style>
</head>
<body>
<h1>icr fleet <span id="pill" class="pill"><span class="dot"></span><span id="pilltext">connecting</span></span></h1>
<div class="sub" id="sub">waiting for /status …</div>
<div class="tiles">
  <div class="tile" style="min-width:220px"><div class="k">progress</div>
    <div class="v"><span id="pct">–</span>%</div>
    <div class="bar"><div id="pctbar"></div></div></div>
  <div class="tile"><div class="k" id="donek">done</div><div class="v" id="done">–</div></div>
  <div class="tile"><div class="k">rate</div><div class="v" id="rate">–</div></div>
  <div class="tile"><div class="k">ETA</div><div class="v" id="eta">–</div></div>
  <div class="tile"><div class="k">elapsed</div><div class="v" id="elapsed">–</div></div>
  <div class="tile" id="wtile" hidden><div class="k">workers</div><div class="v" id="wsummary">–</div></div>
</div>
<div id="workerblock" hidden>
<h2>workers</h2>
<table><thead><tr>
  <th>worker</th><th>state</th><th>heartbeat</th><th>units</th><th>cells</th>
  <th>cells/s</th><th>MIPS</th><th>rss</th>
</tr></thead><tbody id="workers"></tbody></table>
</div>
<div id="histblock" hidden>
<h2>unit latency (ms, log2 buckets, from publish events)</h2>
<div class="hist" id="hist"><div class="empty">no publish events yet</div></div>
</div>
<footer>endpoints: <a href="/status">/status</a> · <a href="/metrics">/metrics</a>
 · <a href="/events">/events</a> · <a href="/healthz">/healthz</a></footer>
<script>
"use strict";
const $ = id => document.getElementById(id);
const stateColor = { running: "var(--good)", straggler: "var(--warning)",
                     dead: "var(--critical)", exited: "var(--muted)" };
function fmtDur(s) {
  if (!(s >= 0)) return "–";
  if (s < 60) return s.toFixed(s < 10 ? 1 : 0) + "s";
  if (s < 3600) return (s / 60).toFixed(1) + "m";
  return (s / 3600).toFixed(1) + "h";
}
function fmtN(n) {
  return n >= 1e6 ? (n / 1e6).toFixed(2) + "M"
       : n >= 1e4 ? (n / 1e3).toFixed(1) + "k" : String(n);
}
function setPill(text, color) {
  $("pilltext").textContent = text;
  document.querySelector("#pill .dot").style.background = color;
}
function render(lines) {
  const recs = lines.filter(Boolean).map(JSON.parse);
  const farm = recs.find(r => r.type === "farm" || r.type === "campaign" ||
                              r.type === "sim");
  if (!farm) return;
  const total = farm.total_cells ?? farm.cells_total ?? farm.instructions_total ?? 0;
  const done = farm.cells_done ?? farm.instructions_done ?? 0;
  $("sub").textContent = "schema " + (farm.schema ?? 1) + " · " + farm.type +
    (farm.scheme ? " · " + farm.scheme + "/" + farm.app : "");
  $("pct").textContent = (farm.percent ?? 0).toFixed(1);
  $("pctbar").style.width = Math.min(100, farm.percent ?? 0) + "%";
  $("donek").textContent = farm.type === "sim" ? "instructions" : "cells";
  $("done").textContent = fmtN(done) + " / " + fmtN(total);
  $("rate").textContent = farm.type === "sim"
    ? (farm.mips ?? 0).toFixed(2) + " MIPS"
    : (farm.cells_per_second ?? 0).toFixed(2) + "/s";
  $("eta").textContent = farm.eta_seconds >= 0 ? fmtDur(farm.eta_seconds) : "–";
  $("elapsed").textContent = fmtDur(farm.elapsed_seconds);
  if (farm.type === "farm") {
    $("wtile").hidden = false;
    $("wsummary").textContent = (farm.running ?? 0) + " up";
    $("histblock").hidden = false;
  }
  if (farm.complete || farm.finished) setPill("complete", "var(--good)");
  else if ((farm.dead ?? 0) > 0) setPill((farm.dead) + " dead", "var(--critical)");
  else if ((farm.straggler ?? 0) > 0)
    setPill((farm.straggler) + " straggling", "var(--warning)");
  else setPill("live", "var(--good)");
  const workers = recs.filter(r => r.type === "worker");
  if (workers.length) {
    $("workerblock").hidden = false;
    $("workers").innerHTML = workers.map(w => {
      const color = stateColor[w.state] || "var(--muted)";
      return "<tr><td>" + w.worker + "</td>" +
        '<td class="state"><span class="dot" style="background:' + color +
        '"></span>' + w.state + "</td>" +
        "<td>" + fmtDur(Math.max(0, w.age_seconds)) + " ago</td>" +
        "<td>" + w.units_done + "</td><td>" + fmtN(w.cells_done) + "</td>" +
        "<td>" + (w.cells_per_second ?? 0).toFixed(2) + "</td>" +
        "<td>" + (w.mips ?? 0).toFixed(2) + "</td>" +
        "<td>" + fmtN(w.maxrss_kb ?? 0) + "K</td></tr>";
    }).join("");
  }
}
async function poll() {
  try {
    const res = await fetch("/status");
    render((await res.text()).split("\n"));
  } catch (e) { setPill("unreachable", "var(--critical)"); }
}
poll();
setInterval(poll, 2000);
// Unit-latency histogram built from publish events (log2 ms buckets).
const buckets = new Map();
let histDirty = false;
function drawHist() {
  if (!histDirty) return;
  histDirty = false;
  const keys = [...buckets.keys()].sort((a, b) => a - b);
  const max = Math.max(...buckets.values());
  $("hist").innerHTML = keys.map(k => {
    const n = buckets.get(k);
    const lo = k < 0 ? 0 : Math.pow(2, k);
    const hi = Math.pow(2, k + 1);
    return '<div class="hrow"><div class="lbl">' + lo + "–" + hi +
      '</div><div class="track"><div class="fill" style="width:' +
      (100 * n / max).toFixed(1) + '%"></div></div><div class="n">' + n +
      "</div></div>";
  }).join("") || '<div class="empty">no publish events yet</div>';
}
try {
  const es = new EventSource("/events");
  es.onmessage = ev => {
    try {
      const e = JSON.parse(ev.data);
      if (e.type === "publish" && e.dur > 0) {
        const ms = e.dur * 1000;
        const k = ms < 1 ? -1 : Math.floor(Math.log2(ms));
        buckets.set(k, (buckets.get(k) || 0) + 1);
        histDirty = true;
      }
    } catch (err) { /* non-JSON frame */ }
  };
  es.addEventListener("drained", () => es.close());
  setInterval(drawHist, 1000);
} catch (e) { /* EventSource unavailable */ }
</script>
</body>
</html>
)HTML";
}

}  // namespace icr::obs
