#include "src/obs/stat_registry.h"

#include <bit>

namespace icr::obs {

std::uint32_t Log2Histogram::bucket_index(std::uint64_t value) noexcept {
  if (value == 0) return 0;
  const std::uint32_t log2 =
      static_cast<std::uint32_t>(std::bit_width(value)) - 1;
  if (log2 >= kValueBuckets) return kOverflowBucket;
  return 1 + log2;
}

std::uint64_t Log2Histogram::bucket_lower_bound(std::uint32_t bucket) noexcept {
  if (bucket == 0) return 0;
  if (bucket >= kOverflowBucket) return std::uint64_t{1} << kValueBuckets;
  return std::uint64_t{1} << (bucket - 1);
}

void Log2Histogram::merge(const Log2Histogram& other) noexcept {
  for (std::uint32_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  total_ += other.total_;
}

void StatRegistry::register_counter(std::string name,
                                    const std::uint64_t* source) {
  counter_names_.push_back(std::move(name));
  counter_sources_.push_back(source);
}

void StatRegistry::register_gauge(std::string name, GaugeFn fn) {
  gauge_names_.push_back(std::move(name));
  gauge_fns_.push_back(std::move(fn));
}

Log2Histogram* StatRegistry::histogram(const std::string& name) {
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    if (histogram_names_[i] == name) return histograms_[i].get();
  }
  histogram_names_.push_back(name);
  histograms_.push_back(std::make_unique<Log2Histogram>());
  return histograms_.back().get();
}

std::vector<std::uint64_t> StatRegistry::snapshot_counters() const {
  std::vector<std::uint64_t> values;
  values.reserve(counter_sources_.size());
  for (const std::uint64_t* source : counter_sources_) {
    values.push_back(*source);
  }
  return values;
}

std::vector<std::uint64_t> StatRegistry::snapshot_gauges() const {
  std::vector<std::uint64_t> values;
  values.reserve(gauge_fns_.size());
  for (const GaugeFn& fn : gauge_fns_) values.push_back(fn());
  return values;
}

std::uint64_t StatRegistry::counter_value(std::string_view name) const {
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    if (counter_names_[i] == name) return *counter_sources_[i];
  }
  return 0;
}

const Log2Histogram* StatRegistry::find_histogram(
    std::string_view name) const {
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    if (histogram_names_[i] == name) return histograms_[i].get();
  }
  return nullptr;
}

}  // namespace icr::obs
