// Minimal dependency-free embedded HTTP/1.1 server for telemetry exposition.
//
// Design constraints (docs/SERVING.md):
//   - one dedicated accept thread, poll()-based so stop() is prompt;
//   - one thread per connection, bounded by ServerOptions::max_connections
//     (excess connections get an immediate 503 and are closed);
//   - GET/HEAD only, one request per connection (Connection: close);
//   - handlers are plain functions: either a buffered Response or a
//     StreamHandler that writes incrementally (Server-Sent Events);
//   - clean shutdown: stop() wakes the accept loop, shuts down every open
//     connection socket, and joins all threads before returning.
//
// The server is a passive observer — it never writes to the spool or any
// simulator state; handlers decide what to read. Binding defaults to
// 127.0.0.1: serving on other interfaces exposes the endpoints to the
// network and is an explicit caller decision.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace icr::obs::http {

struct Request {
  std::string method;            // "GET" / "HEAD"
  std::string target;            // raw request target, e.g. "/events?after=3"
  std::string path;              // target without the query, e.g. "/events"
  std::string query;             // raw query string, e.g. "after=3"
  // Header names lowercased; last occurrence wins.
  std::map<std::string, std::string> headers;

  // Header value by lowercase name; empty string when absent.
  [[nodiscard]] std::string header(const std::string& name) const;
  // First value of ?key=... in the query string; `fallback` when absent.
  [[nodiscard]] std::string query_param(const std::string& key,
                                        const std::string& fallback = "") const;
};

struct Response {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

// Incremental writer handed to stream handlers. All methods are safe to call
// until the handler returns; write() reports false once the client is gone
// or the server is stopping, at which point the handler should return.
class ClientStream {
 public:
  virtual ~ClientStream() = default;
  // Send bytes; false on client disconnect or server shutdown.
  virtual bool write(const std::string& bytes) = 0;
  // True once stop() has been requested (handlers should wind down).
  [[nodiscard]] virtual bool stopping() const = 0;
  // Sleep up to `seconds`, returning early (false) on shutdown.
  virtual bool wait(double seconds) = 0;
};

using Handler = std::function<Response(const Request&)>;
using StreamHandler = std::function<void(const Request&, ClientStream&)>;

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  // 0 picks an ephemeral port; Server::port() reports the bound one.
  std::uint16_t port = 0;
  // Concurrent connection cap; further clients get 503 + Retry-After.
  std::size_t max_connections = 8;
  // Per-request header read budget in seconds.
  double request_timeout_seconds = 10.0;
};

class Server {
 public:
  Server();
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Route registration; exact path match. Call before start().
  void handle(const std::string& path, Handler handler);
  void handle_stream(const std::string& path, StreamHandler handler);

  // Bind + listen + launch the accept thread. Throws std::runtime_error
  // with a diagnostic on bind/listen failure.
  void start(const ServerOptions& options);
  // Idempotent; joins the accept thread and every connection thread.
  void stop();

  [[nodiscard]] bool running() const;
  // Bound port (resolves ephemeral port 0); 0 before start().
  [[nodiscard]] std::uint16_t port() const;
  // "http://<bind>:<port>" for log lines.
  [[nodiscard]] std::string url() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// --- Tiny blocking client (used by icr_report --farm http://... and tests).

struct FetchResult {
  int status = 0;
  std::string body;
};

// GET `url` ("http://host:port/path"); extra request headers may be supplied
// as "Name: value" lines. Throws std::runtime_error with a clear message
// when the URL is malformed or the server is unreachable.
FetchResult http_get(const std::string& url, double timeout_seconds = 10.0,
                     const std::vector<std::string>& extra_headers = {});

}  // namespace icr::obs::http
