#include "src/obs/throughput.h"

#include <cstdio>

namespace icr::obs {

Throughput estimate_throughput(std::uint64_t done, std::uint64_t total,
                               double elapsed_seconds) noexcept {
  Throughput t;
  t.rate = elapsed_seconds > 0.0
               ? static_cast<double>(done) / elapsed_seconds
               : 0.0;
  t.percent = total == 0 ? 100.0
                         : 100.0 * static_cast<double>(done) /
                               static_cast<double>(total);
  if (t.rate > 0.0 && done <= total) {
    t.eta_seconds = static_cast<double>(total - done) / t.rate;
  }
  return t;
}

std::string format_eta(const Throughput& t, bool final_line) {
  if (final_line) return "done";
  if (!t.eta_known()) return "ETA --";
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "ETA %.0fs", t.eta_seconds);
  return buffer;
}

double simulated_mips(std::uint64_t done, std::uint64_t instructions_per_item,
                      double elapsed_seconds) noexcept {
  if (elapsed_seconds <= 0.0) return 0.0;
  return static_cast<double>(done) *
         static_cast<double>(instructions_per_item) / elapsed_seconds / 1e6;
}

}  // namespace icr::obs
