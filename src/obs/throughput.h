// Shared throughput/ETA arithmetic for every progress surface.
//
// The per-campaign ProgressReporter (src/sim/campaign.cc), the farm-level
// FarmProgressReporter (src/obs/farm_progress.h) and the spool-native
// farm_status reader (src/sim/farm_telemetry.h) all answer the same three
// questions — how fast, how far, how much longer — from the same three
// inputs: items done, items total, seconds elapsed. This header is the one
// copy of that zero-guarded arithmetic; reporters own only pacing and
// formatting.
#pragma once

#include <cstdint>
#include <string>

namespace icr::obs {

struct Throughput {
  double rate = 0.0;          // items/sec; 0 until the clock has advanced
  double percent = 100.0;     // done/total as 0..100; 100 for an empty total
  double eta_seconds = -1.0;  // negative = unknown (no rate yet)

  [[nodiscard]] bool eta_known() const noexcept { return eta_seconds >= 0.0; }
};

// rate = done/elapsed (0 when elapsed <= 0); ETA = remaining/rate, unknown
// until the rate is positive (and when done overshoots total).
[[nodiscard]] Throughput estimate_throughput(std::uint64_t done,
                                             std::uint64_t total,
                                             double elapsed_seconds) noexcept;

// "ETA 42s" when known, "ETA --" when not, "done" for a final line.
[[nodiscard]] std::string format_eta(const Throughput& t,
                                     bool final_line = false);

// Simulated MIPS: done * instructions_per_item / elapsed / 1e6, zero-guarded
// like the rate above.
[[nodiscard]] double simulated_mips(std::uint64_t done,
                                    std::uint64_t instructions_per_item,
                                    double elapsed_seconds) noexcept;

}  // namespace icr::obs
