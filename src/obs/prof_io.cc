#include "src/obs/prof_io.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "src/util/json.h"
#include "src/util/table.h"

namespace icr::obs::prof {

namespace {

void append_number(std::string& out, double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, "%.3f", value);
  out += buffer;
}

void append_u64(std::string& out, std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%llu",
                static_cast<unsigned long long>(value));
  out += buffer;
}

std::string format_ms(std::uint64_t ns) {
  return format_double(static_cast<double>(ns) / 1e6, 3);
}

}  // namespace

std::string to_chrome_trace(const Profile& profile,
                            const std::string& process_name,
                            std::int64_t pid, double ts_offset_us) {
  std::string out = "[\n";
  std::string pid_field = "\"pid\":";
  {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%lld",
                  static_cast<long long>(pid));
    pid_field += buffer;
  }

  out += "{\"name\":\"process_name\",\"ph\":\"M\"," + pid_field +
         ",\"tid\":0,\"args\":{\"name\":\"" + util::json_escape(process_name) +
         "\"}}";
  for (std::uint32_t t = 0; t < profile.threads; ++t) {
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\"," + pid_field +
           ",\"tid\":";
    append_u64(out, t);
    out += ",\"args\":{\"name\":\"worker ";
    append_u64(out, t);
    out += "\"}}";
  }

  // Capture-level metadata: wall time, thread count, ring drops, and the
  // timestamp offset (absolute unix microseconds of the capture epoch when
  // the caller provided one — the fleet merge relies on it).
  out += ",\n{\"name\":\"icr_capture\",\"ph\":\"M\"," + pid_field +
         ",\"tid\":0,\"args\":{\"wall_ns\":";
  append_u64(out, profile.wall_ns);
  out += ",\"threads\":";
  append_u64(out, profile.threads);
  out += ",\"dropped_events\":";
  append_u64(out, profile.dropped_events);
  out += ",\"epoch_unix_us\":";
  append_number(out, ts_offset_us);
  out += "}}";

  // The aggregated zone table (covers hot zones that never emit spans).
  for (const ZoneNode& zone : profile.zones) {
    out += ",\n{\"name\":\"icr_zone_stats\",\"ph\":\"M\"," + pid_field +
           ",\"tid\":0,\"args\":{\"path\":\"" + util::json_escape(zone.path) +
           "\",\"zone\":\"" + util::json_escape(zone.name) + "\",\"depth\":";
    append_u64(out, static_cast<std::uint64_t>(zone.depth));
    out += ",\"count\":";
    append_u64(out, zone.count);
    out += ",\"total_ns\":";
    append_u64(out, zone.total_ns);
    out += ",\"self_ns\":";
    append_u64(out, zone.self_ns);
    out += "}}";
  }

  for (const SpanEvent& event : profile.events) {
    out += ",\n{\"name\":\"" + util::json_escape(event.name) +
           "\",\"cat\":\"zone\",\"ph\":\"X\"," + pid_field + ",\"tid\":";
    append_u64(out, event.tid);
    out += ",\"ts\":";
    append_number(out,
                  ts_offset_us + static_cast<double>(event.start_ns) / 1000.0);
    out += ",\"dur\":";
    append_number(out, static_cast<double>(event.dur_ns) / 1000.0);
    if (!event.label.empty()) {
      out += ",\"args\":{\"label\":\"" + util::json_escape(event.label) + "\"}";
    }
    out += "}";
  }

  out += "\n]\n";
  return out;
}

std::string merge_chrome_traces(const std::vector<std::string>& traces) {
  std::string out = "[\n";
  bool first = true;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const std::string& text = traces[i];
    // Validate before splicing: a malformed fragment would corrupt the
    // whole merged document, so fail loudly naming the culprit.
    try {
      const util::JsonValue doc = util::JsonValue::parse(text);
      if (!doc.is_array()) {
        throw std::runtime_error("top-level JSON array expected");
      }
      if (doc.items().empty()) continue;
    } catch (const std::exception& error) {
      throw std::runtime_error("merge_chrome_traces: input " +
                               std::to_string(i) + ": " + error.what());
    }
    // Textual splice of the validated array body keeps every event's bytes
    // exactly as its writer produced them.
    const std::size_t open = text.find('[');
    const std::size_t close = text.rfind(']');
    std::string body = text.substr(open + 1, close - open - 1);
    while (!body.empty() &&
           (body.back() == '\n' || body.back() == ' ' || body.back() == '\t' ||
            body.back() == '\r')) {
      body.pop_back();
    }
    while (!body.empty() &&
           (body.front() == '\n' || body.front() == ' ' ||
            body.front() == '\t' || body.front() == '\r')) {
      body.erase(body.begin());
    }
    if (!first) out += ",\n";
    out += body;
    first = false;
  }
  out += "\n]\n";
  return out;
}

ParsedTrace parse_chrome_trace(const std::string& text) {
  const util::JsonValue doc = util::JsonValue::parse(text);
  if (!doc.is_array()) {
    throw std::runtime_error("profile trace: top-level JSON array expected");
  }
  ParsedTrace parsed;
  for (const util::JsonValue& event : doc.items()) {
    const std::string& ph = event.get("ph").as_string();
    const std::string& name = event.get("name").as_string();
    if (ph == "X") {
      ++parsed.span_events;
      continue;
    }
    if (ph != "M") continue;
    if (name == "icr_capture") {
      const util::JsonValue& args = event.get("args");
      parsed.profile.wall_ns =
          static_cast<std::uint64_t>(args.get("wall_ns").as_double());
      parsed.profile.threads =
          static_cast<std::uint32_t>(args.get("threads").as_double());
      parsed.profile.dropped_events =
          static_cast<std::uint64_t>(args.get("dropped_events").as_double());
    } else if (name == "icr_zone_stats") {
      const util::JsonValue& args = event.get("args");
      ZoneNode zone;
      zone.path = args.get("path").as_string();
      zone.name = args.get("zone").as_string();
      zone.depth = static_cast<int>(args.get("depth").as_double());
      zone.count = static_cast<std::uint64_t>(args.get("count").as_double());
      zone.total_ns =
          static_cast<std::uint64_t>(args.get("total_ns").as_double());
      zone.self_ns =
          static_cast<std::uint64_t>(args.get("self_ns").as_double());
      parsed.profile.zones.push_back(std::move(zone));
    }
  }
  return parsed;
}

namespace {

// Re-links the flat DFS zone list into a tree (parent precedes children,
// depth gives nesting) so siblings can be displayed hottest-first.
struct DisplayNode {
  const ZoneNode* zone = nullptr;
  std::vector<std::size_t> children;
};

void emit_rows(const std::vector<DisplayNode>& nodes, std::size_t index,
               std::uint64_t denom, TextTable& table) {
  const ZoneNode& zone = *nodes[index].zone;
  const double self_pct =
      denom == 0 ? 0.0
                 : 100.0 * static_cast<double>(zone.self_ns) /
                       static_cast<double>(denom);
  const double ns_per_call =
      zone.count == 0 ? 0.0
                      : static_cast<double>(zone.total_ns) /
                            static_cast<double>(zone.count);
  table.add_row({std::string(static_cast<std::size_t>(zone.depth) * 2, ' ') +
                     zone.name,
                 std::to_string(zone.count), format_ms(zone.total_ns),
                 format_ms(zone.self_ns), format_double(self_pct, 1),
                 format_double(ns_per_call, 0)});
  std::vector<std::size_t> order = nodes[index].children;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return nodes[a].zone->self_ns > nodes[b].zone->self_ns;
                   });
  for (const std::size_t child : order) {
    emit_rows(nodes, child, denom, table);
  }
}

}  // namespace

std::string format_self_time_table(const Profile& profile) {
  std::vector<DisplayNode> nodes(profile.zones.size());
  std::vector<std::size_t> roots;
  std::vector<std::size_t> stack;  // indices of the current ancestor chain
  for (std::size_t i = 0; i < profile.zones.size(); ++i) {
    const ZoneNode& zone = profile.zones[i];
    nodes[i].zone = &zone;
    while (stack.size() > static_cast<std::size_t>(zone.depth)) {
      stack.pop_back();
    }
    if (stack.empty()) {
      roots.push_back(i);
    } else {
      nodes[stack.back()].children.push_back(i);
    }
    stack.push_back(i);
  }

  const std::uint64_t total_self = profile.total_self_ns();
  TextTable table(
      "host profile — " + std::to_string(profile.zones.size()) + " zones, " +
          std::to_string(profile.threads) + " thread(s), wall " +
          format_ms(profile.wall_ns) + " ms",
      {"zone", "calls", "total ms", "self ms", "self %", "ns/call"});

  std::vector<std::size_t> order = roots;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return nodes[a].zone->self_ns > nodes[b].zone->self_ns;
                   });
  for (const std::size_t root : order) {
    emit_rows(nodes, root, total_self, table);
  }
  table.add_row({"(instrumented total)", "-", format_ms(total_self),
                 format_ms(total_self), "100.0", "-"});
  if (profile.dropped_events > 0) {
    table.add_row({"(dropped trace events)",
                   std::to_string(profile.dropped_events), "-", "-", "-",
                   "-"});
  }
  return table.render();
}

}  // namespace icr::obs::prof
