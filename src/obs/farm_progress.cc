#include "src/obs/farm_progress.h"

#include <cstdio>

#include "src/obs/throughput.h"

namespace icr::obs {

FarmProgressReporter::FarmProgressReporter(const FarmProgressOptions& options,
                                           std::uint32_t total_units,
                                           std::uint64_t total_cells)
    : options_(options),
      total_units_(total_units),
      total_cells_(total_cells),
      start_(std::chrono::steady_clock::now()),
      last_print_(start_) {}

double FarmProgressReporter::elapsed_seconds() const {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start_;
  return elapsed.count();
}

void FarmProgressReporter::poll(std::uint32_t units_done,
                                std::uint64_t cells_done,
                                unsigned workers_alive) {
  if (!options_.enabled) return;
  const auto now = std::chrono::steady_clock::now();
  const std::chrono::duration<double> since_print = now - last_print_;
  if (since_print.count() < options_.min_interval_seconds) return;
  // Nothing new to say until the first unit lands; the spawn line already
  // told the user the farm is running.
  if (cells_done == last_cells_ && cells_done == 0) return;
  last_print_ = now;
  last_cells_ = cells_done;
  print_line(units_done, cells_done, workers_alive, /*final_line=*/false);
}

void FarmProgressReporter::finish(std::uint32_t units_done,
                                  std::uint64_t cells_done) {
  if (!options_.enabled) return;
  print_line(units_done, cells_done, /*workers_alive=*/0,
             /*final_line=*/true);
}

void FarmProgressReporter::print_line(std::uint32_t units_done,
                                      std::uint64_t cells_done,
                                      unsigned workers_alive,
                                      bool final_line) {
  const Throughput t =
      estimate_throughput(cells_done, total_cells_, elapsed_seconds());
  std::fprintf(stderr,
               "farm: %u/%u units  %llu/%llu cells (%.1f%%)  %u worker(s)  "
               "%.2f cells/s  %s\n",
               units_done, total_units_,
               static_cast<unsigned long long>(cells_done),
               static_cast<unsigned long long>(total_cells_), t.percent,
               workers_alive, t.rate, format_eta(t, final_line).c_str());
}

}  // namespace icr::obs
