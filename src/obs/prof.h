// Host-side profiler for the simulator itself.
//
// Where src/obs instruments the *simulated* cache hierarchy, this profiles
// the *simulating* process: RAII scoped zones record where wall time goes
// (pipeline tick vs. replication-site search vs. SEC-DED decode vs. rel
// hooks vs. export), so "make it faster" PRs know what to attack first.
//
// Design constraints, in order:
//   * Always compiled, runtime-toggleable. When no capture is active every
//     zone costs one relaxed atomic load and a predictable branch — cheap
//     enough to leave in per-cycle paths (guarded by the micro_ops wall-time
//     budget in the acceptance tests).
//   * Per-thread, lock-free recording. Each thread owns its buffer; the
//     global registry mutex is taken only on first use of a thread per
//     capture. Campaign workers therefore never contend.
//   * Deterministic merge. end_capture() folds all per-thread aggregation
//     trees into one tree keyed by zone *path* (strings, not pointers) with
//     children sorted by name, so the merged zone table is independent of
//     thread scheduling. Timings vary run to run; structure does not.
//
// Two detail levels keep traces usable:
//   * kCoarse zones (campaign cells, run chunks, exports) aggregate AND
//     record a trace event each — they become slices in the Chrome trace.
//   * kHot zones (per-cycle tick, per-access cache paths, SEC-DED decode)
//     aggregate only: they appear in the self-time table with call counts
//     but never flood the event ring.
//
// Threading contract: begin_capture()/end_capture() must be called while no
// zone is live and no worker thread is still recording (CampaignRunner joins
// its pool before returning, so tool code is naturally safe).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace icr::obs::prof {

inline constexpr int kOff = 0;
inline constexpr int kCoarse = 1;  // cells, run chunks, exports
inline constexpr int kHot = 2;     // per-cycle / per-access zones

namespace internal {
extern std::atomic<int> g_level;
}  // namespace internal

// Current capture level; zones with zone_level > level() record nothing.
[[nodiscard]] inline int level() noexcept {
  return internal::g_level.load(std::memory_order_relaxed);
}

// True between begin_capture() and end_capture().
[[nodiscard]] bool capturing() noexcept;

struct CaptureOptions {
  int level = kHot;  // record coarse + hot zones by default
  // Ring capacity of each thread's trace-event buffer; the ring keeps the
  // most recent events and counts the overwritten ones as dropped.
  std::size_t events_per_thread = std::size_t{1} << 16;
};

// Starts a capture: resets all buffers, stamps the epoch, and raises the
// level so zones begin recording. Restarting an active capture is allowed
// and simply begins a fresh one.
void begin_capture(const CaptureOptions& options = {});

// One aggregated zone (a unique path through the zone nesting).
struct ZoneNode {
  std::string path;  // "Campaign::cell/Pipeline::run/Pipeline::tick"
  std::string name;  // last path component
  int depth = 0;     // 0 for root zones
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;  // inclusive wall time
  std::uint64_t self_ns = 0;   // total minus instrumented children
};

// One retained trace event (coarse zones only).
struct SpanEvent {
  std::string name;
  std::string label;  // dynamic detail ("BaseP/mcf/0"); empty for most
  std::uint64_t start_ns = 0;  // since capture epoch
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  // per-capture thread index
  std::uint16_t depth = 0;
};

// Merged snapshot of one finished capture.
struct Profile {
  // Depth-first over the merged tree, children in name order: a parent
  // always precedes its children, and the order is schedule-independent.
  std::vector<ZoneNode> zones;
  std::vector<SpanEvent> events;  // grouped by tid, chronological within
  std::uint64_t wall_ns = 0;      // begin_capture .. end_capture
  std::uint64_t dropped_events = 0;
  std::uint32_t threads = 0;

  // Sum of every zone's self time == sum of root totals. On a single
  // recording thread this is <= wall_ns; with N threads it can reach
  // N * wall_ns.
  [[nodiscard]] std::uint64_t total_self_ns() const noexcept;

  [[nodiscard]] const ZoneNode* find(const std::string& path) const noexcept;
};

// Stops the capture (level drops to kOff) and merges all thread buffers.
[[nodiscard]] Profile end_capture();

// Non-destructive merged zone table of the capture in progress — the same
// deterministic name-sorted merge end_capture() performs, without stopping
// the capture or touching the event rings. Empty when no capture is active.
// Same threading contract as end_capture(): call while no zone is live on
// the calling thread and no other thread is recording (the farm worker
// heartbeat calls it between cells on its single worker thread).
[[nodiscard]] std::vector<ZoneNode> snapshot_zones();

// RAII zone. Construct via the ICR_PROF_ZONE* macros; the object is inert
// (one load + branch) unless a capture at a sufficient level is active.
class ScopedZone {
 public:
  explicit ScopedZone(const char* name, int zone_level = kCoarse) noexcept {
    if (zone_level <= level()) begin(name, zone_level, nullptr);
  }
  // Coarse zone with a dynamic label (campaign cells). The label is only
  // evaluated into the per-thread pool while recording.
  ScopedZone(const char* name, const std::string& label) noexcept {
    if (kCoarse <= level()) begin(name, kCoarse, &label);
  }
  ~ScopedZone() {
    if (armed_) end();
  }
  ScopedZone(const ScopedZone&) = delete;
  ScopedZone& operator=(const ScopedZone&) = delete;

 private:
  void begin(const char* name, int zone_level, const std::string* label) noexcept;
  void end() noexcept;

  bool armed_ = false;
  bool emit_event_ = false;
  int node_ = 0;
  std::uint32_t label_idx_ = 0;  // 0 = none, else pool index + 1
  std::uint64_t start_ns_ = 0;
};

#define ICR_PROF_CAT2(a, b) a##b
#define ICR_PROF_CAT(a, b) ICR_PROF_CAT2(a, b)

// Coarse zone: aggregated + retained as a trace slice.
#define ICR_PROF_ZONE(name) \
  ::icr::obs::prof::ScopedZone ICR_PROF_CAT(icr_prof_zone_, __LINE__)(name)

// Hot zone: aggregated only (call counts + self time), never traced.
#define ICR_PROF_ZONE_HOT(name)                                    \
  ::icr::obs::prof::ScopedZone ICR_PROF_CAT(icr_prof_zone_,        \
                                            __LINE__)(name,        \
                                                      ::icr::obs:: \
                                                          prof::kHot)

// Coarse zone with a dynamic label; label_expr is evaluated only while a
// capture is live.
#define ICR_PROF_ZONE_LABELED(name, label_expr)                         \
  ::icr::obs::prof::ScopedZone ICR_PROF_CAT(icr_prof_zone_, __LINE__)(  \
      name, ::icr::obs::prof::level() > 0 ? (label_expr) : std::string())

}  // namespace icr::obs::prof
