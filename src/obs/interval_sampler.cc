#include "src/obs/interval_sampler.h"

namespace icr::obs {

IntervalSampler::IntervalSampler(const StatRegistry& registry,
                                 std::uint64_t interval_instructions)
    : registry_(registry) {
  series_.interval_instructions =
      interval_instructions == 0 ? kDefaultStatsInterval
                                 : interval_instructions;
}

void IntervalSampler::set_occupancy_probe(
    std::function<std::vector<std::uint32_t>()> probe) {
  occupancy_probe_ = std::move(probe);
}

void IntervalSampler::record_baseline(std::uint64_t instructions,
                                      std::uint64_t cycles) {
  series_.counter_names = registry_.counter_names();
  series_.gauge_names = registry_.gauge_names();
  sample(instructions, cycles);
  if (!series_.samples.empty() &&
      !series_.samples.front().occupancy.empty()) {
    series_.occupancy_sets = static_cast<std::uint32_t>(
        series_.samples.front().occupancy.size());
  }
}

void IntervalSampler::sample(std::uint64_t instructions, std::uint64_t cycles) {
  IntervalSeries::Sample s;
  s.instructions = instructions;
  s.cycles = cycles;
  s.counters = registry_.snapshot_counters();
  s.gauges = registry_.snapshot_gauges();
  if (occupancy_probe_) s.occupancy = occupancy_probe_();
  // Chunked runs (Simulator::run / fast_forward, the sampling controller)
  // can land a chunk boundary exactly on the final instruction of the
  // previous segment and sample the same progress point twice. A
  // zero-length interval would poison every per-interval rate downstream
  // (0/0 miss rates, infinite IPC weights), so collapse the duplicate into
  // the existing sample, keeping the freshest gauge/occupancy readings.
  if (!series_.samples.empty() &&
      series_.samples.back().instructions == instructions) {
    series_.samples.back() = std::move(s);
    return;
  }
  series_.samples.push_back(std::move(s));
}

}  // namespace icr::obs
