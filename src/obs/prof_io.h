// Serialization of host-profiler captures (src/obs/prof.h).
//
// Chrome trace-event format: the export is a top-level JSON *array* of
// events, loadable directly in Perfetto / chrome://tracing:
//   * every retained coarse span becomes a "ph":"X" complete event with
//     "ts"/"dur" in microseconds and "tid" = capture thread index;
//   * thread/process names ride along as "ph":"M" metadata events;
//   * the full aggregated zone table (including hot zones that never emit
//     spans) is embedded as one "icr_zone_stats" metadata event per zone,
//     plus one "icr_capture" metadata event with wall time / thread count /
//     drop counters — viewers ignore them, icr_report --prof reads them
//     back, so a single file carries both the timeline and the totals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/prof.h"

namespace icr::obs::prof {

// Serializes `profile` as a Chrome trace-event JSON array.
//
// `pid` is the process id stamped on every event (defaults to 1 for
// single-process captures). `ts_offset_us` shifts every span timestamp:
// profile timestamps are nanoseconds since the capture epoch, so a farm
// worker passes its epoch as absolute unix microseconds and the spans of
// every worker land on one shared clock — merge_chrome_traces() then
// splices the per-process captures into a single fleet timeline
// (docs/PROFILING.md "Multi-process traces"). The offset is also recorded
// in the icr_capture metadata as "epoch_unix_us".
[[nodiscard]] std::string to_chrome_trace(const Profile& profile,
                                          const std::string& process_name,
                                          std::int64_t pid = 1,
                                          double ts_offset_us = 0.0);

// Splices several Chrome trace-event documents into one JSON array.
// Every input must itself parse as a trace array (validated; throws
// std::runtime_error naming the failing index otherwise); the events are
// concatenated in input order, so give each document a distinct pid for a
// readable merged timeline. Empty arrays contribute nothing.
[[nodiscard]] std::string merge_chrome_traces(
    const std::vector<std::string>& traces);

// Rebuilds the zone table (and capture metadata) from a Chrome trace
// written by to_chrome_trace. Span events are counted but not retained.
// Throws std::runtime_error on malformed JSON or a non-array document.
struct ParsedTrace {
  Profile profile;       // zones + wall_ns/threads/dropped; events empty
  std::size_t span_events = 0;
};
[[nodiscard]] ParsedTrace parse_chrome_trace(const std::string& text);

// Renders the zone aggregation as an aligned self-time table: one row per
// zone (indented by depth), sorted within each level by self time; plus a
// footer row with total self vs. measured wall time.
[[nodiscard]] std::string format_self_time_table(const Profile& profile);

}  // namespace icr::obs::prof
