// Serialization of host-profiler captures (src/obs/prof.h).
//
// Chrome trace-event format: the export is a top-level JSON *array* of
// events, loadable directly in Perfetto / chrome://tracing:
//   * every retained coarse span becomes a "ph":"X" complete event with
//     "ts"/"dur" in microseconds and "tid" = capture thread index;
//   * thread/process names ride along as "ph":"M" metadata events;
//   * the full aggregated zone table (including hot zones that never emit
//     spans) is embedded as one "icr_zone_stats" metadata event per zone,
//     plus one "icr_capture" metadata event with wall time / thread count /
//     drop counters — viewers ignore them, icr_report --prof reads them
//     back, so a single file carries both the timeline and the totals.
#pragma once

#include <string>

#include "src/obs/prof.h"

namespace icr::obs::prof {

// Serializes `profile` as a Chrome trace-event JSON array.
[[nodiscard]] std::string to_chrome_trace(const Profile& profile,
                                          const std::string& process_name);

// Rebuilds the zone table (and capture metadata) from a Chrome trace
// written by to_chrome_trace. Span events are counted but not retained.
// Throws std::runtime_error on malformed JSON or a non-array document.
struct ParsedTrace {
  Profile profile;       // zones + wall_ns/threads/dropped; events empty
  std::size_t span_events = 0;
};
[[nodiscard]] ParsedTrace parse_chrome_trace(const std::string& text);

// Renders the zone aggregation as an aligned self-time table: one row per
// zone (indented by depth), sorted within each level by self time; plus a
// footer row with total self vs. measured wall time.
[[nodiscard]] std::string format_self_time_table(const Profile& profile);

}  // namespace icr::obs::prof
