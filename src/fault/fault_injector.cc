#include "src/fault/fault_injector.h"

#include "src/obs/prof.h"

namespace icr::fault {

const char* to_string(FaultModel model) noexcept {
  switch (model) {
    case FaultModel::kRandom:
      return "random";
    case FaultModel::kAdjacent:
      return "adjacent";
    case FaultModel::kColumn:
      return "column";
    case FaultModel::kDirect:
      return "direct";
  }
  return "?";
}

FaultInjector::FaultInjector(FaultModel model, double probability,
                             Rng rng) noexcept
    : model_(model), probability_(probability), rng_(rng) {
  direct_bit_ = static_cast<std::uint32_t>(rng_.next_below(8));
  direct_byte_ = static_cast<std::uint32_t>(rng_.next_below(64));
}

bool FaultInjector::pick_valid_line(const core::IcrCache& cache,
                                    std::uint32_t& set, std::uint32_t& way) {
  // Rejection-sample a few times; a warm cache is almost always full.
  for (int attempt = 0; attempt < 64; ++attempt) {
    set = static_cast<std::uint32_t>(rng_.next_below(cache.num_sets()));
    way = static_cast<std::uint32_t>(rng_.next_below(cache.ways()));
    if (cache.line(set, way).valid) return true;
  }
  // Fall back to a linear scan so a sparse cache still gets hit.
  for (std::uint32_t s = 0; s < cache.num_sets(); ++s) {
    for (std::uint32_t w = 0; w < cache.ways(); ++w) {
      if (cache.line(s, w).valid) {
        set = s;
        way = w;
        return true;
      }
    }
  }
  return false;
}

void FaultInjector::inject_once(core::IcrCache& cache, std::uint64_t cycle) {
  ICR_PROF_ZONE_HOT("FaultInjector::inject_once");
  std::uint32_t set = 0;
  std::uint32_t way = 0;
  if (!pick_valid_line(cache, set, way)) {
    ++stats_.skipped_empty;
    return;
  }
  ++stats_.injections;
  const std::uint64_t bits_before = stats_.bits_flipped;
  const std::uint32_t line_bytes = cache.geometry().line_bytes;

  switch (model_) {
    case FaultModel::kRandom: {
      const auto byte = static_cast<std::uint32_t>(rng_.next_below(line_bytes));
      const auto bit = static_cast<std::uint32_t>(rng_.next_below(8));
      cache.flip_data_bit(set, way, byte, bit);
      ++stats_.bits_flipped;
      break;
    }
    case FaultModel::kAdjacent: {
      const auto byte = static_cast<std::uint32_t>(rng_.next_below(line_bytes));
      const auto bit = static_cast<std::uint32_t>(rng_.next_below(7));
      cache.flip_data_bit(set, way, byte, bit);
      cache.flip_data_bit(set, way, byte, bit + 1);
      stats_.bits_flipped += 2;
      break;
    }
    case FaultModel::kColumn: {
      const auto byte = static_cast<std::uint32_t>(rng_.next_below(line_bytes));
      const auto bit = static_cast<std::uint32_t>(rng_.next_below(8));
      cache.flip_data_bit(set, way, byte, bit);
      ++stats_.bits_flipped;
      const std::uint32_t way2 = (way + 1) % cache.ways();
      if (way2 != way && cache.line(set, way2).valid) {
        cache.flip_data_bit(set, way2, byte, bit);
        ++stats_.bits_flipped;
      }
      break;
    }
    case FaultModel::kDirect: {
      cache.flip_data_bit(set, way, direct_byte_ % line_bytes, direct_bit_);
      ++stats_.bits_flipped;
      break;
    }
  }
  if (trace_ != nullptr && trace_->wants(obs::EventCategory::kFault)) {
    trace_->emit(obs::EventKind::kFaultInject, cycle, set, way,
                 stats_.bits_flipped - bits_before);
  }
}

void FaultInjector::tick(core::IcrCache& cache, std::uint64_t cycle) {
  if (probability_ <= 0.0) return;
  ICR_PROF_ZONE_HOT("FaultInjector::tick");
  if (rng_.bernoulli(probability_)) inject_once(cache, cycle);
}

void FaultInjector::record_outcome(obs::FaultVerdict verdict,
                                   std::uint64_t cycle,
                                   std::uint64_t word_addr) noexcept {
  switch (verdict) {
    case obs::FaultVerdict::kCorrected:
      ++stats_.corrected;
      break;
    case obs::FaultVerdict::kReplicaRecovered:
      ++stats_.replica_recovered;
      break;
    case obs::FaultVerdict::kDetectedUncorrectable:
      ++stats_.detected_uncorrectable;
      break;
    case obs::FaultVerdict::kSilent:
      ++stats_.silent;
      break;
  }
  if (trace_ != nullptr && trace_->wants(obs::EventCategory::kFault)) {
    trace_->emit(obs::EventKind::kFaultVerdict, cycle, word_addr,
                 static_cast<std::uint64_t>(verdict));
  }
}

void FaultInjector::attach_observability(obs::StatRegistry* registry,
                                         obs::EventTrace* trace) {
  trace_ = trace;
  if (registry == nullptr) return;
  registry->register_counter("fault.injections", &stats_.injections);
  registry->register_counter("fault.bits_flipped", &stats_.bits_flipped);
  registry->register_counter("fault.skipped_empty", &stats_.skipped_empty);
  registry->register_counter("fault.corrected", &stats_.corrected);
  registry->register_counter("fault.replica_recovered",
                             &stats_.replica_recovered);
  registry->register_counter("fault.detected_uncorrectable",
                             &stats_.detected_uncorrectable);
  registry->register_counter("fault.silent", &stats_.silent);
}

}  // namespace icr::fault
