// Transient-fault injection into the dL1 data arrays (paper §5.5).
//
// Errors are injected with a constant per-cycle probability; each injection
// flips real stored bits in a randomly chosen valid line, so detection and
// recovery are exercised end-to-end by the parity/ECC/replica machinery.
// The four models follow Kim & Somani's cache error taxonomy as cited by
// the paper:
//   kRandom   — one random bit of one random word in the cache
//   kAdjacent — two horizontally adjacent bits within the same byte/word
//               (a double-bit burst: parity at byte granularity misses the
//               pair when both flips fall in one byte; SEC-DED detects but
//               cannot correct it)
//   kColumn   — the same bit position in two vertically adjacent ways
//               (a bitline defect: two independent single-bit errors in two
//               different lines)
//   kDirect   — a strike to one fixed "weak cell" column: a single bit flip
//               whose bit position is constant across injections
#pragma once

#include <cstdint>

#include "src/core/icr_cache.h"
#include "src/obs/event_trace.h"
#include "src/obs/stat_registry.h"
#include "src/util/rng.h"

namespace icr::fault {

enum class FaultModel : std::uint8_t { kRandom, kAdjacent, kColumn, kDirect };

[[nodiscard]] const char* to_string(FaultModel model) noexcept;

struct FaultStats {
  std::uint64_t injections = 0;     // injection events
  std::uint64_t bits_flipped = 0;   // total bit flips applied
  std::uint64_t skipped_empty = 0;  // events with no valid line to hit

  // Per-outcome verdicts, recorded when a load first observes corrupted
  // data (record_outcome). An injection whose line is overwritten or
  // evicted before any load sees it never receives a verdict, so the four
  // outcome counters sum to the *observed* errors, not to `injections`.
  std::uint64_t corrected = 0;               // ECC / refetch / rcache
  std::uint64_t replica_recovered = 0;       // clean in-cache replica
  std::uint64_t detected_uncorrectable = 0;  // detected, data lost
  std::uint64_t silent = 0;                  // wrong value, undetected

  [[nodiscard]] std::uint64_t observed() const noexcept {
    return corrected + replica_recovered + detected_uncorrectable + silent;
  }
};

class FaultInjector {
 public:
  // `probability` is the per-cycle chance of one injection event.
  FaultInjector(FaultModel model, double probability, Rng rng) noexcept;

  // Called once per simulated cycle; possibly injects into `cache`.
  void tick(core::IcrCache& cache, std::uint64_t cycle);

  // Forces one injection event immediately (test hook / campaigns).
  void inject_once(core::IcrCache& cache, std::uint64_t cycle = 0);

  // Classified consequence of an observed error, reported by the load path
  // (Pipeline::verify_load): bumps the per-outcome counter and emits a
  // kFaultVerdict event.
  void record_outcome(obs::FaultVerdict verdict, std::uint64_t cycle,
                      std::uint64_t word_addr) noexcept;

  // Registers the fault counters under "fault." and starts emitting
  // kFaultInject events. Either pointer may be null.
  void attach_observability(obs::StatRegistry* registry,
                            obs::EventTrace* trace);

  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
  [[nodiscard]] FaultModel model() const noexcept { return model_; }
  [[nodiscard]] double probability() const noexcept { return probability_; }

 private:
  // Picks a uniformly random valid (set, way); false if the cache is empty.
  bool pick_valid_line(const core::IcrCache& cache, std::uint32_t& set,
                       std::uint32_t& way);

  FaultModel model_;
  double probability_;
  Rng rng_;
  FaultStats stats_;
  std::uint32_t direct_bit_ = 0;   // fixed column for kDirect
  std::uint32_t direct_byte_ = 0;  // fixed byte offset for kDirect
  obs::EventTrace* trace_ = nullptr;
};

}  // namespace icr::fault
