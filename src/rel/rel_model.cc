#include "src/rel/rel_model.h"

namespace icr::rel {

const char* to_string(RelState state) noexcept {
  switch (state) {
    case RelState::kParityClean: return "parity_clean";
    case RelState::kParityDirty: return "parity_dirty";
    case RelState::kReplicatedClean: return "replicated_clean";
    case RelState::kReplicatedDirty: return "replicated_dirty";
    case RelState::kEccClean: return "ecc_clean";
    case RelState::kEccDirty: return "ecc_dirty";
  }
  return "?";
}

const char* to_string(IntervalStart start) noexcept {
  switch (start) {
    case IntervalStart::kFill: return "fill";
    case IntervalStart::kWrite: return "write";
    case IntervalStart::kRead: return "read";
  }
  return "?";
}

const char* to_string(IntervalEnd end) noexcept {
  switch (end) {
    case IntervalEnd::kRead: return "read";
    case IntervalEnd::kOverwrite: return "overwrite";
    case IntervalEnd::kEvictClean: return "evict_clean";
    case IntervalEnd::kEvictDirty: return "evict_dirty";
    case IntervalEnd::kRefresh: return "refresh";
  }
  return "?";
}

RelPrediction RelReport::evaluate(double p, double cycle_scale) const {
  const double scale = p * cycle_scale;
  RelPrediction out;
  out.corrected = corrected_coef * scale;
  out.replica_recovered = replica_coef * scale;
  out.detected_uncorrectable = detected_coef * scale;
  out.silent = silent_coef * scale;
  return out;
}

namespace {
double safe_ratio(double num, double den) noexcept {
  return den > 0.0 ? num / den : 0.0;
}
}  // namespace

double RelReport::vf_corrected() const noexcept {
  return safe_ratio(corrected_coef, total_exposure);
}

double RelReport::vf_replica_recovered() const noexcept {
  return safe_ratio(replica_coef, total_exposure);
}

double RelReport::vf_detected_uncorrectable() const noexcept {
  return safe_ratio(detected_coef, total_exposure);
}

double RelReport::vf_uncorrected() const noexcept {
  // Strike mass that is not transparently absorbed: detected-but-lost plus
  // mass laundered into the backing store by dirty evictions (the source of
  // later silent loads). Unobserved clean-evict mass is benign by
  // definition (the architectural value was never consumed).
  return safe_ratio(detected_coef + deposited_coef, total_exposure);
}

RelPrediction RelReport::fit(double p) const {
  if (cycles == 0) return {};
  // events/run -> events/cycle -> events/hour -> events per 1e9 hours.
  const double per_cycle = 1.0 / static_cast<double>(cycles);
  const double cycles_per_hour = clock_ghz * 1e9 * 3600.0;
  const double scale = per_cycle * cycles_per_hour * 1e9;
  RelPrediction e = evaluate(p);
  e.corrected *= scale;
  e.replica_recovered *= scale;
  e.detected_uncorrectable *= scale;
  e.silent *= scale;
  return e;
}

double RelReport::conservation_sum() const noexcept {
  return corrected_coef + replica_coef + detected_coef + scrub_coef +
         unobserved_coef + deposited_coef + open_exposure;
}

}  // namespace icr::rel
