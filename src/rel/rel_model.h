// Analytical reliability model: report types and derived quantities.
//
// The RelTracker (rel_tracker.h) observes one clean (injection-free) run and
// integrates, for every word resident in the dL1, its *exposure* — the
// expected number of bit-flip strikes the word would absorb under the
// fault injector's uniform model, per unit of per-cycle strike probability
// p. The injector strikes once per cycle with probability p, uniformly over
// the valid lines and the 512 data bits of the struck line, so a word of a
// specific valid line accumulates exposure at rate 1 / (8 * V(t)) per cycle
// (V(t) = currently valid lines, replicas included — replicas dilute the
// strike rate and absorb strikes that are never observed at first order).
//
// Exposure is classified twice:
//   * by the protection state it was accrued under (RelState) — the
//     ACE-style vulnerability breakdown, and
//   * by the lifetime interval it belongs to (IntervalStart -> IntervalEnd),
//     the fill->read / write->read / write->evict-dirty / read->evict
//     taxonomy of docs/RELIABILITY.md.
//
// From the exposure flow the tracker derives first-order outcome
// *coefficients*: E[outcome count] ~= coef * p for small p. One clean run
// therefore predicts the entire fault-probability sweep of fig14 — the
// cross-validation test (tests/rel_cross_validation_test.cc) checks the
// predictions against real injection campaigns.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace icr::rel {

// Protection state of a word while exposure accrues. Replicated lines are
// parity-protected with a same-cycle copy elsewhere in the cache; the
// clean/dirty split matters because a detected error on a clean word can
// always be refetched from L2 while a dirty word cannot.
enum class RelState : std::uint8_t {
  kParityClean,
  kParityDirty,
  kReplicatedClean,
  kReplicatedDirty,
  kEccClean,
  kEccDirty,
};
inline constexpr std::size_t kRelStates = 6;

// What opened a word's current vulnerability interval.
enum class IntervalStart : std::uint8_t { kFill, kWrite, kRead };
inline constexpr std::size_t kIntervalStarts = 3;

// What closed it. kRefresh covers repair/refetch paths that rewrite the
// word outside the normal access stream (error recovery, scrubbing).
enum class IntervalEnd : std::uint8_t {
  kRead,
  kOverwrite,
  kEvictClean,
  kEvictDirty,
  kRefresh,
};
inline constexpr std::size_t kIntervalEnds = 5;

[[nodiscard]] const char* to_string(RelState state) noexcept;
[[nodiscard]] const char* to_string(IntervalStart start) noexcept;
[[nodiscard]] const char* to_string(IntervalEnd end) noexcept;

// One populated cell of the lifetime-interval taxonomy.
struct IntervalClassRow {
  IntervalStart start = IntervalStart::kFill;
  IntervalEnd end = IntervalEnd::kRead;
  RelState state = RelState::kParityClean;
  std::uint64_t count = 0;   // closed intervals (attributed to the closing state)
  double cycles = 0.0;       // word-cycles spent in `state` inside the class
  double exposure = 0.0;     // expected strikes per unit p in `state`
};

// Expected outcome counts at a concrete per-cycle strike probability.
struct RelPrediction {
  double corrected = 0.0;                // ECC fix / clean refetch / R-Cache
  double replica_recovered = 0.0;        // clean in-cache replica
  double detected_uncorrectable = 0.0;   // detected, data lost
  double silent = 0.0;                   // wrong value delivered, undetected

  [[nodiscard]] double total() const noexcept {
    return corrected + replica_recovered + detected_uncorrectable + silent;
  }
};

// Plain-data result of one tracked run; safe to move across threads and to
// keep after the simulator is destroyed.
struct RelReport {
  // False when the configured fault model is outside the analytical model's
  // scope (everything except the uniform kRandom single-bit model); the
  // exposure integrals are still valid, the outcome split is not.
  bool model_supported = true;

  std::uint64_t cycles = 0;       // clean-run cycle count the integrals cover
  double clock_ghz = 1.0;         // for FIT-style conversions
  double probability = 0.0;       // default p echoed into exports (0 = none)

  double word_cycles = 0.0;       // total resident primary word-cycles
  double total_exposure = 0.0;    // total expected strikes per unit p
  double state_cycles[kRelStates] = {};
  double state_exposure[kRelStates] = {};

  // First-order outcome coefficients: E[count] ~= coef * p. The silent
  // coefficient counts *verdicts* (a standing wrong value yields one silent
  // verdict per consuming load), matching the injector's per-read counter.
  double corrected_coef = 0.0;
  double replica_coef = 0.0;
  double detected_coef = 0.0;
  double silent_coef = 0.0;
  double scrub_coef = 0.0;        // strikes the scrubber repairs unobserved

  // Exposure conservation tail: strike mass that never produced a verdict.
  double unobserved_coef = 0.0;   // discarded by clean evictions
  double deposited_coef = 0.0;    // written to L2 by dirty evictions
  double open_exposure = 0.0;     // still resident and unread at end of run
  double pending_residual = 0.0;  // corrupted-backing mass left at end of run

  std::vector<IntervalClassRow> intervals;  // sorted (start, end, state)

  // Expected outcome counts at per-cycle probability p. `cycle_scale`
  // compensates for injection runs being longer than the clean run (error
  // recovery adds cycles, and injection is per-cycle): pass
  // injected_cycles / clean_cycles when comparing against a real campaign.
  [[nodiscard]] RelPrediction evaluate(double p,
                                       double cycle_scale = 1.0) const;

  // Exposure-normalized vulnerability factors: the fraction of absorbed
  // strikes whose first-order outcome is the given class. The paper-style
  // headline number is vf_uncorrected() = fraction of strikes the scheme
  // fails to transparently absorb.
  [[nodiscard]] double vf_corrected() const noexcept;
  [[nodiscard]] double vf_replica_recovered() const noexcept;
  [[nodiscard]] double vf_detected_uncorrectable() const noexcept;
  [[nodiscard]] double vf_uncorrected() const noexcept;

  // FIT-style estimate: expected events per 10^9 device-hours for the given
  // per-cycle strike probability, at this report's clock frequency.
  [[nodiscard]] RelPrediction fit(double p) const;

  // Sum of the conservation buckets; equals total_exposure up to floating
  // point (tier-1 invariant in tests/rel_tracker_test.cc).
  [[nodiscard]] double conservation_sum() const noexcept;
};

}  // namespace icr::rel
