#include "src/rel/rel_io.h"

#include <cstdio>

namespace icr::rel {
namespace {

// Shortest round-trip decimal, matching sim::results_io formatting so mixed
// artifacts diff cleanly.
std::string format_value(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_tag(std::string& out, const obs::CellTag& tag) {
  out += tag.variant;
  out += ',';
  out += tag.app;
  out += ',';
  out += std::to_string(tag.trial);
}

}  // namespace

std::string summary_csv_header() {
  std::string header =
      "variant,app,trial,supported,cycles,clock_ghz,probability,word_cycles,"
      "total_exposure";
  for (std::size_t s = 0; s < kRelStates; ++s) {
    header += ",exp_";
    header += to_string(static_cast<RelState>(s));
  }
  header +=
      ",coef_corrected,coef_replica_recovered,coef_detected_uncorrectable,"
      "coef_silent,coef_scrub,coef_unobserved,coef_deposited,open_exposure,"
      "pending_residual,vf_corrected,vf_replica_recovered,"
      "vf_detected_uncorrectable,vf_uncorrected,expected_corrected,"
      "expected_replica_recovered,expected_detected_uncorrectable,"
      "expected_silent\n";
  return header;
}

void append_summary_csv_row(std::string& out, const RelReport& report,
                            const obs::CellTag& tag) {
  append_tag(out, tag);
  out += ',';
  out += report.model_supported ? '1' : '0';
  out += ',';
  out += std::to_string(report.cycles);
  out += ',';
  out += format_value(report.clock_ghz);
  out += ',';
  out += format_value(report.probability);
  out += ',';
  out += format_value(report.word_cycles);
  out += ',';
  out += format_value(report.total_exposure);
  for (std::size_t s = 0; s < kRelStates; ++s) {
    out += ',';
    out += format_value(report.state_exposure[s]);
  }
  const RelPrediction expected = report.evaluate(report.probability);
  const double values[] = {report.corrected_coef,
                           report.replica_coef,
                           report.detected_coef,
                           report.silent_coef,
                           report.scrub_coef,
                           report.unobserved_coef,
                           report.deposited_coef,
                           report.open_exposure,
                           report.pending_residual,
                           report.vf_corrected(),
                           report.vf_replica_recovered(),
                           report.vf_detected_uncorrectable(),
                           report.vf_uncorrected(),
                           expected.corrected,
                           expected.replica_recovered,
                           expected.detected_uncorrectable,
                           expected.silent};
  for (const double v : values) {
    out += ',';
    out += format_value(v);
  }
  out += '\n';
}

std::string summary_to_csv(const RelReport& report, const obs::CellTag& tag) {
  std::string out = summary_csv_header();
  append_summary_csv_row(out, report, tag);
  return out;
}

std::string intervals_csv_header() {
  return "variant,app,trial,start,end,state,count,cycles,exposure\n";
}

void append_intervals_csv_rows(std::string& out, const RelReport& report,
                               const obs::CellTag& tag) {
  for (const IntervalClassRow& row : report.intervals) {
    append_tag(out, tag);
    out += ',';
    out += to_string(row.start);
    out += ',';
    out += to_string(row.end);
    out += ',';
    out += to_string(row.state);
    out += ',';
    out += std::to_string(row.count);
    out += ',';
    out += format_value(row.cycles);
    out += ',';
    out += format_value(row.exposure);
    out += '\n';
  }
}

std::string intervals_to_csv(const RelReport& report,
                             const obs::CellTag& tag) {
  std::string out = intervals_csv_header();
  append_intervals_csv_rows(out, report, tag);
  return out;
}

void append_json_object(std::string& out, const RelReport& report,
                        const obs::CellTag& tag, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string pad2(static_cast<std::size_t>(indent) + 2, ' ');
  const std::string pad4(static_cast<std::size_t>(indent) + 4, ' ');
  auto field = [&](const std::string& name, const std::string& value,
                   bool comma = true) {
    out += pad2;
    out += '"';
    out += name;
    out += "\": ";
    out += value;
    if (comma) out += ',';
    out += '\n';
  };
  out += pad;
  out += "{\n";
  field("variant", "\"" + json_escape(tag.variant) + "\"");
  field("app", "\"" + json_escape(tag.app) + "\"");
  field("trial", std::to_string(tag.trial));
  field("supported", report.model_supported ? "true" : "false");
  field("cycles", std::to_string(report.cycles));
  field("clock_ghz", format_value(report.clock_ghz));
  field("probability", format_value(report.probability));
  field("word_cycles", format_value(report.word_cycles));
  field("total_exposure", format_value(report.total_exposure));
  out += pad2;
  out += "\"state_exposure\": {";
  for (std::size_t s = 0; s < kRelStates; ++s) {
    if (s != 0) out += ", ";
    out += '"';
    out += to_string(static_cast<RelState>(s));
    out += "\": ";
    out += format_value(report.state_exposure[s]);
  }
  out += "},\n";
  field("coef_corrected", format_value(report.corrected_coef));
  field("coef_replica_recovered", format_value(report.replica_coef));
  field("coef_detected_uncorrectable", format_value(report.detected_coef));
  field("coef_silent", format_value(report.silent_coef));
  field("coef_scrub", format_value(report.scrub_coef));
  field("coef_unobserved", format_value(report.unobserved_coef));
  field("coef_deposited", format_value(report.deposited_coef));
  field("open_exposure", format_value(report.open_exposure));
  field("pending_residual", format_value(report.pending_residual));
  field("vf_corrected", format_value(report.vf_corrected()));
  field("vf_replica_recovered", format_value(report.vf_replica_recovered()));
  field("vf_detected_uncorrectable",
        format_value(report.vf_detected_uncorrectable()));
  field("vf_uncorrected", format_value(report.vf_uncorrected()));
  const RelPrediction expected = report.evaluate(report.probability);
  field("expected_corrected", format_value(expected.corrected));
  field("expected_replica_recovered",
        format_value(expected.replica_recovered));
  field("expected_detected_uncorrectable",
        format_value(expected.detected_uncorrectable));
  field("expected_silent", format_value(expected.silent));
  out += pad2;
  out += "\"intervals\": [";
  for (std::size_t i = 0; i < report.intervals.size(); ++i) {
    const IntervalClassRow& row = report.intervals[i];
    if (i != 0) out += ',';
    out += '\n';
    out += pad4;
    out += "{\"start\": \"";
    out += to_string(row.start);
    out += "\", \"end\": \"";
    out += to_string(row.end);
    out += "\", \"state\": \"";
    out += to_string(row.state);
    out += "\", \"count\": ";
    out += std::to_string(row.count);
    out += ", \"cycles\": ";
    out += format_value(row.cycles);
    out += ", \"exposure\": ";
    out += format_value(row.exposure);
    out += '}';
  }
  if (!report.intervals.empty()) {
    out += '\n';
    out += pad2;
  }
  out += "]\n";
  out += pad;
  out += '}';
}

std::string format_report(const RelReport& report) {
  char buffer[256];
  std::string out;
  out += "analytical reliability model";
  if (!report.model_supported) out += "  [fault model unsupported]";
  out += '\n';
  std::snprintf(buffer, sizeof buffer,
                "  cycles %llu  word-cycles %.4g  total exposure %.6g\n",
                static_cast<unsigned long long>(report.cycles),
                report.word_cycles, report.total_exposure);
  out += buffer;
  out += "  exposure by protection state:\n";
  for (std::size_t s = 0; s < kRelStates; ++s) {
    if (report.state_cycles[s] == 0.0 && report.state_exposure[s] == 0.0) {
      continue;
    }
    const double share = report.total_exposure > 0.0
                             ? report.state_exposure[s] / report.total_exposure
                             : 0.0;
    std::snprintf(buffer, sizeof buffer, "    %-17s %12.6g  (%5.1f%%)\n",
                  to_string(static_cast<RelState>(s)),
                  report.state_exposure[s], 100.0 * share);
    out += buffer;
  }
  out += "  first-order outcome coefficients (E[count] = coef * p):\n";
  const struct {
    const char* name;
    double coef;
    double vf;
    bool has_vf;
  } rows[] = {
      {"corrected", report.corrected_coef, report.vf_corrected(), true},
      {"replica_recovered", report.replica_coef,
       report.vf_replica_recovered(), true},
      {"detected_uncorrectable", report.detected_coef,
       report.vf_detected_uncorrectable(), true},
      // Silent counts verdicts (one per consuming load of a wrong value),
      // not absorbed strikes, so an exposure-normalized factor is
      // ill-defined for it.
      {"silent", report.silent_coef, 0.0, false},
  };
  for (const auto& row : rows) {
    if (row.has_vf) {
      std::snprintf(buffer, sizeof buffer, "    %-23s %12.6g  vf %.4f\n",
                    row.name, row.coef, row.vf);
    } else {
      std::snprintf(buffer, sizeof buffer, "    %-23s %12.6g\n", row.name,
                    row.coef);
    }
    out += buffer;
  }
  std::snprintf(buffer, sizeof buffer,
                "    %-23s %12.6g  (uncorrected vf %.4f)\n", "deposited_to_l2",
                report.deposited_coef, report.vf_uncorrected());
  out += buffer;
  if (report.scrub_coef != 0.0) {
    std::snprintf(buffer, sizeof buffer, "    %-23s %12.6g\n", "scrubbed",
                  report.scrub_coef);
    out += buffer;
  }
  if (report.probability > 0.0) {
    const RelPrediction e = report.evaluate(report.probability);
    const RelPrediction fit = report.fit(report.probability);
    std::snprintf(buffer, sizeof buffer,
                  "  expected outcomes at p=%.3g per cycle:\n",
                  report.probability);
    out += buffer;
    std::snprintf(buffer, sizeof buffer,
                  "    corrected %.4g  replica %.4g  detected-unc %.4g  "
                  "silent %.4g\n",
                  e.corrected, e.replica_recovered, e.detected_uncorrectable,
                  e.silent);
    out += buffer;
    std::snprintf(buffer, sizeof buffer,
                  "    FIT-style (events/1e9 hours @ %.2f GHz): silent %.4g  "
                  "detected-unc %.4g\n",
                  report.clock_ghz, fit.silent, fit.detected_uncorrectable);
    out += buffer;
  }
  return out;
}

}  // namespace icr::rel
