// Serialization of analytical reliability reports.
//
// Summary CSV schema (one row per run/cell; documented in
// docs/RELIABILITY.md and golden-tested in tests/rel_tracker_test.cc):
//
//   variant,app,trial,supported,cycles,clock_ghz,probability,word_cycles,
//   total_exposure,exp_parity_clean,exp_parity_dirty,exp_replicated_clean,
//   exp_replicated_dirty,exp_ecc_clean,exp_ecc_dirty,coef_corrected,
//   coef_replica_recovered,coef_detected_uncorrectable,coef_silent,
//   coef_scrub,coef_unobserved,coef_deposited,open_exposure,
//   pending_residual,vf_corrected,vf_replica_recovered,
//   vf_detected_uncorrectable,vf_uncorrected,expected_corrected,
//   expected_replica_recovered,expected_detected_uncorrectable,
//   expected_silent
//
// where the expected_* columns evaluate the coefficients at the report's
// echoed probability (all zero when p = 0).
//
// Interval CSV schema (lifetime-interval taxonomy, one row per populated
// class):
//
//   variant,app,trial,start,end,state,count,cycles,exposure
#pragma once

#include <string>

#include "src/obs/obs_io.h"
#include "src/rel/rel_model.h"

namespace icr::rel {

// ---- summary CSV ----
[[nodiscard]] std::string summary_csv_header();
void append_summary_csv_row(std::string& out, const RelReport& report,
                            const obs::CellTag& tag);
[[nodiscard]] std::string summary_to_csv(const RelReport& report,
                                         const obs::CellTag& tag);

// ---- interval-class CSV ----
[[nodiscard]] std::string intervals_csv_header();
void append_intervals_csv_rows(std::string& out, const RelReport& report,
                               const obs::CellTag& tag);
[[nodiscard]] std::string intervals_to_csv(const RelReport& report,
                                           const obs::CellTag& tag);

// ---- JSON ----
// Appends one JSON object for the report (same fields as the summary CSV
// plus the interval table), indented by `indent` spaces, no trailing
// newline. Used by sim::rel_to_json and the single-run --rel-out export.
void append_json_object(std::string& out, const RelReport& report,
                        const obs::CellTag& tag, int indent);

// Human-readable breakdown for terminal reports (icr_sim --rel and the
// rel_vulnerability_factor bench).
[[nodiscard]] std::string format_report(const RelReport& report);

}  // namespace icr::rel
