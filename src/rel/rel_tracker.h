// Event-driven ACE-style lifetime tracker for the ICR dL1.
//
// The tracker mirrors the cache's resident primary lines and integrates
// per-word strike exposure *lazily*: a global accumulator A(t) advances by
// 1/V(t) per cycle (V = valid lines, replicas included) and is brought up
// to date only at cache events, so there is no per-cycle work and zero
// overhead when the tracker is not attached (the same contract as
// src/obs). All hooks are called from core::IcrCache behind null checks.
//
// Exposure bookkeeping per resident word:
//   e_cov — unobserved strike mass accrued while a clean replica of the
//           word existed (stores refresh primary and replicas together, so
//           replicas stay in sync until the next strike);
//   e_unc — mass with no clean replica copy: accrued unreplicated, or
//           demoted from e_cov when the last replica was victimized
//           (replicas created *after* a strike copy the corrupted data and
//           its stale parity, so they can never supply a clean word —
//           that is why creation does not promote e_unc to e_cov);
//   c     — standing wrong-value mass: the word's architectural cache value
//           differs from golden memory while its protection is consistent,
//           so every consuming load yields one silent verdict.
//
// A read classifies the word's accumulated mass exactly like the recovery
// ladder in IcrCache::verify_and_recover: parity regime sends e_cov to
// replica recovery and e_unc to refetch (clean) or detected-uncorrectable
// (dirty, where it converts to standing silent mass); the SEC-DED regime
// corrects everything at first order. Dirty evictions deposit c + e into a
// per-word pending map — the write-back path stores whatever bits the line
// holds, verifying nothing — and later fills of the block resurrect the
// mass as c (error laundering). First-order model: terms of order p^2
// (double strikes on one word, adjacent/column burst models) are out of
// scope and documented in docs/RELIABILITY.md.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/rel/rel_model.h"

namespace icr::rel {

// Per-cell reliability-analysis options. Deliberately excluded from
// campaign_config_hash: enabling the tracker never changes simulated
// behaviour (tier-1 guard in tests/rel_tracker_test.cc).
struct RelOptions {
  bool enabled = false;
  // Per-cycle strike probability used for the evaluated columns of the
  // exports; 0 keeps exports to the raw coefficients.
  double probability = 0.0;
  double clock_ghz = 1.0;  // for FIT-style conversions

  [[nodiscard]] bool any() const noexcept { return enabled; }
};

class RelTracker {
 public:
  struct Config {
    std::uint32_t words_per_line = 8;
    bool scheme_parity = true;    // unreplicated lines parity (vs SEC-DED)
    bool write_through = false;   // stores refresh the backing word too
    bool model_supported = true;  // false for non-uniform fault models
    double probability = 0.0;
    double clock_ghz = 1.0;
  };

  explicit RelTracker(const Config& config);

  // ---- hooks (called by core::IcrCache; `block` is the block address) ----
  void on_fill(std::uint64_t block, std::uint32_t replica_count,
               std::uint64_t cycle);
  void on_evict(std::uint64_t block, bool dirty, std::uint64_t cycle);
  void on_replica_create(std::uint64_t block, std::uint64_t cycle);
  void on_replica_evict(std::uint64_t block, std::uint64_t cycle);
  void on_read(std::uint64_t block, std::uint32_t word, bool dirty,
               bool parity_regime, std::uint64_t cycle);
  void on_write(std::uint64_t block, std::uint32_t word, bool dirty_after,
                std::uint64_t cycle);
  // Error-recovery repairs (only reachable under fault injection, where the
  // analytical integrals are diagnostics rather than predictions).
  void on_repair_word(std::uint64_t block, std::uint32_t word,
                      std::uint64_t cycle);
  void on_refetch(std::uint64_t block, std::uint64_t cycle);
  // Scrubber visit: periodic cleansing removes recoverable exposure even
  // when the visit finds nothing (that is its analytical effect).
  void on_scrub_visit(std::uint64_t block, bool dirty, bool parity_regime,
                      std::uint64_t cycle);

  // Snapshot of the integrals up to `end_cycle`. Deterministic: residents
  // and pending mass are folded in sorted address order.
  [[nodiscard]] RelReport report(std::uint64_t end_cycle) const;

  [[nodiscard]] std::uint64_t valid_lines() const noexcept {
    return valid_lines_;
  }

 private:
  struct Word {
    double mark_a = 0.0;          // A snapshot at last accrual flush
    std::uint64_t mark_cycle = 0;
    double e_cov = 0.0;
    double e_unc = 0.0;
    double c = 0.0;
    IntervalStart start = IntervalStart::kFill;
    double seg_cycles[kRelStates] = {};
    double seg_exposure[kRelStates] = {};
  };

  struct Line {
    std::uint32_t replica_count = 0;
    bool dirty = false;
    std::vector<Word> words;
  };

  struct ClassCell {
    std::uint64_t count = 0;
    double cycles = 0.0;
    double exposure = 0.0;
  };

  void advance(std::uint64_t cycle) noexcept;
  [[nodiscard]] std::size_t state_index(const Line& line) const noexcept;
  void flush_word(Line& line, Word& word, std::uint64_t cycle);
  void flush_line(Line& line, std::uint64_t cycle);
  void close_interval(Line& line, Word& word, IntervalEnd end,
                      std::uint64_t cycle, IntervalStart next_start);
  void resync_dirty(Line& line, bool dirty, std::uint64_t cycle);
  [[nodiscard]] double pending_mass(std::uint64_t word_addr) const;
  void set_pending(std::uint64_t word_addr, double mass);

  RelReport finalize(std::uint64_t end_cycle);

  Config config_;
  std::uint64_t valid_lines_ = 0;  // primaries + replicas
  double a_ = 0.0;                 // integral of 1/V over cycles
  std::uint64_t a_cycle_ = 0;

  std::unordered_map<std::uint64_t, Line> lines_;     // block -> primary
  std::unordered_map<std::uint64_t, double> pending_; // word addr -> mass

  double word_cycles_ = 0.0;
  double total_exposure_ = 0.0;
  double state_cycles_[kRelStates] = {};
  double state_exposure_[kRelStates] = {};
  double corrected_coef_ = 0.0;
  double replica_coef_ = 0.0;
  double detected_coef_ = 0.0;
  double silent_coef_ = 0.0;
  double scrub_coef_ = 0.0;
  double unobserved_coef_ = 0.0;
  double deposited_coef_ = 0.0;
  ClassCell cells_[kIntervalStarts][kIntervalEnds][kRelStates];
};

}  // namespace icr::rel
