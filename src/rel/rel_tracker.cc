#include "src/rel/rel_tracker.h"

#include <algorithm>

#include "src/obs/prof.h"

namespace icr::rel {

namespace {
// Below this the mass is floating-point dust; dropping it keeps the pending
// map from accumulating dead entries over long runs.
constexpr double kMassEpsilon = 1e-300;
}  // namespace

RelTracker::RelTracker(const Config& config) : config_(config) {
  if (config_.words_per_line == 0) config_.words_per_line = 1;
}

void RelTracker::advance(std::uint64_t cycle) noexcept {
  if (cycle > a_cycle_) {
    if (valid_lines_ > 0) {
      a_ += static_cast<double>(cycle - a_cycle_) /
            static_cast<double>(valid_lines_);
    }
    a_cycle_ = cycle;
  }
}

std::size_t RelTracker::state_index(const Line& line) const noexcept {
  if (line.replica_count > 0) {
    return static_cast<std::size_t>(line.dirty ? RelState::kReplicatedDirty
                                               : RelState::kReplicatedClean);
  }
  if (config_.scheme_parity) {
    return static_cast<std::size_t>(line.dirty ? RelState::kParityDirty
                                               : RelState::kParityClean);
  }
  return static_cast<std::size_t>(line.dirty ? RelState::kEccDirty
                                             : RelState::kEccClean);
}

void RelTracker::flush_word(Line& line, Word& word, std::uint64_t cycle) {
  advance(cycle);
  const std::size_t s = state_index(line);
  const double exposure =
      (a_ - word.mark_a) / static_cast<double>(config_.words_per_line);
  const double dt = static_cast<double>(cycle - word.mark_cycle);
  word.seg_cycles[s] += dt;
  word.seg_exposure[s] += exposure;
  state_cycles_[s] += dt;
  state_exposure_[s] += exposure;
  word_cycles_ += dt;
  total_exposure_ += exposure;
  if (line.replica_count > 0) {
    word.e_cov += exposure;
  } else {
    word.e_unc += exposure;
  }
  word.mark_a = a_;
  word.mark_cycle = cycle;
}

void RelTracker::flush_line(Line& line, std::uint64_t cycle) {
  for (Word& word : line.words) flush_word(line, word, cycle);
}

void RelTracker::close_interval(Line& line, Word& word, IntervalEnd end,
                                std::uint64_t cycle,
                                IntervalStart next_start) {
  flush_word(line, word, cycle);
  const std::size_t si = static_cast<std::size_t>(word.start);
  const std::size_t ei = static_cast<std::size_t>(end);
  for (std::size_t s = 0; s < kRelStates; ++s) {
    if (word.seg_cycles[s] != 0.0 || word.seg_exposure[s] != 0.0) {
      cells_[si][ei][s].cycles += word.seg_cycles[s];
      cells_[si][ei][s].exposure += word.seg_exposure[s];
      word.seg_cycles[s] = 0.0;
      word.seg_exposure[s] = 0.0;
    }
  }
  ++cells_[si][ei][state_index(line)].count;
  word.start = next_start;
}

void RelTracker::resync_dirty(Line& line, bool dirty, std::uint64_t cycle) {
  if (line.dirty != dirty) {
    flush_line(line, cycle);
    line.dirty = dirty;
  }
}

double RelTracker::pending_mass(std::uint64_t word_addr) const {
  const auto it = pending_.find(word_addr);
  return it == pending_.end() ? 0.0 : it->second;
}

void RelTracker::set_pending(std::uint64_t word_addr, double mass) {
  if (mass > kMassEpsilon) {
    pending_[word_addr] = mass;
  } else {
    pending_.erase(word_addr);
  }
}

void RelTracker::on_fill(std::uint64_t block, std::uint32_t replica_count,
                         std::uint64_t cycle) {
  ICR_PROF_ZONE_HOT("RelTracker::on_fill");
  advance(cycle);
  Line& line = lines_[block];
  line.replica_count = replica_count;
  line.dirty = false;
  line.words.assign(config_.words_per_line, Word{});
  for (std::uint32_t w = 0; w < config_.words_per_line; ++w) {
    Word& word = line.words[w];
    word.mark_a = a_;
    word.mark_cycle = cycle;
    // A fill copies the backing word verbatim: mass laundered into L2 by an
    // earlier dirty eviction comes back as a standing wrong value. The
    // pending entry survives — the backing store stays corrupted until a
    // write-back or write-through overwrites it.
    word.c = pending_mass(block + 8ull * w);
  }
  ++valid_lines_;
}

void RelTracker::on_evict(std::uint64_t block, bool dirty,
                          std::uint64_t cycle) {
  ICR_PROF_ZONE_HOT("RelTracker::on_evict");
  const auto it = lines_.find(block);
  if (it == lines_.end()) return;
  Line& line = it->second;
  resync_dirty(line, dirty, cycle);
  const IntervalEnd end =
      dirty ? IntervalEnd::kEvictDirty : IntervalEnd::kEvictClean;
  for (std::uint32_t w = 0; w < config_.words_per_line; ++w) {
    Word& word = line.words[w];
    close_interval(line, word, end, cycle, IntervalStart::kFill);
    const double e = word.e_cov + word.e_unc;
    if (dirty) {
      // The write-back stores the line's bits unverified: both the standing
      // wrong-value mass and any unconsumed strike mass land in L2,
      // replacing whatever corruption the backing word held before.
      deposited_coef_ += e;
      set_pending(block + 8ull * w, word.c + e);
    } else {
      unobserved_coef_ += e;
    }
  }
  advance(cycle);
  if (valid_lines_ > 0) --valid_lines_;
  lines_.erase(it);
}

void RelTracker::on_replica_create(std::uint64_t block, std::uint64_t cycle) {
  advance(cycle);
  const auto it = lines_.find(block);
  if (it != lines_.end()) {
    Line& line = it->second;
    // State changes parity -> replicated: close the accrual segment first so
    // the exposure lands in the pre-replication state. Existing e_unc stays
    // uncovered — the new replica copies the (possibly corrupted) data and
    // its stale parity, so it can never supply a clean copy of a word that
    // was struck before replication.
    if (line.replica_count == 0) flush_line(line, cycle);
    ++line.replica_count;
  }
  ++valid_lines_;
}

void RelTracker::on_replica_evict(std::uint64_t block, std::uint64_t cycle) {
  advance(cycle);
  const auto it = lines_.find(block);
  if (it != lines_.end()) {
    Line& line = it->second;
    if (line.replica_count > 0) {
      if (line.replica_count == 1) {
        // Losing the last replica ends coverage: accrual so far happened
        // under the replicated state (flush before the downgrade), and the
        // covered mass becomes uncovered — a later parity failure will find
        // no replica to recover from.
        flush_line(line, cycle);
        for (Word& word : line.words) {
          word.e_unc += word.e_cov;
          word.e_cov = 0.0;
        }
      }
      --line.replica_count;
    }
  }
  if (valid_lines_ > 0) --valid_lines_;
}

void RelTracker::on_read(std::uint64_t block, std::uint32_t word_index,
                         bool dirty, bool parity_regime, std::uint64_t cycle) {
  ICR_PROF_ZONE_HOT("RelTracker::on_read");
  const auto it = lines_.find(block);
  if (it == lines_.end() || word_index >= config_.words_per_line) return;
  Line& line = it->second;
  resync_dirty(line, dirty, cycle);
  Word& word = line.words[word_index];
  close_interval(line, word, IntervalEnd::kRead, cycle, IntervalStart::kRead);
  // A standing wrong value passes verification and is delivered: one silent
  // verdict on every consuming load (matching the injector's counter).
  silent_coef_ += word.c;
  if (parity_regime) {
    replica_coef_ += word.e_cov;
    if (dirty) {
      // Parity detects, no replica covers, the line is dirty: the recovery
      // ladder refreshes protection over the corrupt value, which becomes
      // architectural — all later reads of it are silent.
      detected_coef_ += word.e_unc;
      word.c += word.e_unc;
    } else {
      corrected_coef_ += word.e_unc;  // clean refetch from L2
    }
  } else {
    corrected_coef_ += word.e_cov + word.e_unc;  // SEC-DED single-bit fix
  }
  word.e_cov = 0.0;
  word.e_unc = 0.0;
}

void RelTracker::on_write(std::uint64_t block, std::uint32_t word_index,
                          bool dirty_after, std::uint64_t cycle) {
  ICR_PROF_ZONE_HOT("RelTracker::on_write");
  const auto it = lines_.find(block);
  if (it == lines_.end() || word_index >= config_.words_per_line) return;
  Line& line = it->second;
  resync_dirty(line, dirty_after, cycle);
  Word& word = line.words[word_index];
  close_interval(line, word, IntervalEnd::kOverwrite, cycle,
                 IntervalStart::kWrite);
  // The store rewrites the word with a known-good value and fresh
  // protection; all accumulated mass on this word dies here, never observed
  // by any check.
  unobserved_coef_ += word.e_cov + word.e_unc;
  word.c = 0.0;
  word.e_cov = 0.0;
  word.e_unc = 0.0;
  if (config_.write_through) set_pending(block + 8ull * word_index, 0.0);
}

void RelTracker::on_repair_word(std::uint64_t block, std::uint32_t word_index,
                                std::uint64_t cycle) {
  const auto it = lines_.find(block);
  if (it == lines_.end() || word_index >= config_.words_per_line) return;
  Line& line = it->second;
  Word& word = line.words[word_index];
  close_interval(line, word, IntervalEnd::kRefresh, cycle,
                 IntervalStart::kWrite);
  // Recovery rewrote the word with a verified value; like a scrub pass it
  // cleanses accumulated strike mass without a load-visible verdict.
  scrub_coef_ += word.e_cov + word.e_unc;
  word.c = 0.0;
  word.e_cov = 0.0;
  word.e_unc = 0.0;
}

void RelTracker::on_refetch(std::uint64_t block, std::uint64_t cycle) {
  const auto it = lines_.find(block);
  if (it == lines_.end()) return;
  Line& line = it->second;
  resync_dirty(line, false, cycle);  // refetch only happens on clean lines
  for (std::uint32_t w = 0; w < config_.words_per_line; ++w) {
    Word& word = line.words[w];
    close_interval(line, word, IntervalEnd::kRefresh, cycle,
                   IntervalStart::kFill);
    scrub_coef_ += word.e_cov + word.e_unc;
    word.e_cov = 0.0;
    word.e_unc = 0.0;
    word.c = pending_mass(block + 8ull * w);
  }
}

void RelTracker::on_scrub_visit(std::uint64_t block, bool dirty,
                                bool parity_regime, std::uint64_t cycle) {
  const auto it = lines_.find(block);
  if (it == lines_.end()) return;
  Line& line = it->second;
  resync_dirty(line, dirty, cycle);
  flush_line(line, cycle);
  for (Word& word : line.words) {
    if (!parity_regime) {
      // SEC-DED scrub corrects any single-bit error in place.
      scrub_coef_ += word.e_cov + word.e_unc;
      word.e_cov = 0.0;
      word.e_unc = 0.0;
    } else if (!dirty) {
      // Parity scrub on a clean line: replica repair or refetch, either way
      // the strike mass is cleansed before a load can consume it.
      scrub_coef_ += word.e_cov + word.e_unc;
      word.e_cov = 0.0;
      word.e_unc = 0.0;
    } else {
      // Dirty parity line: only replica-covered mass is repairable; an
      // uncovered strike stays pending until the next load detects it.
      scrub_coef_ += word.e_cov;
      word.e_cov = 0.0;
    }
  }
}

RelReport RelTracker::report(std::uint64_t end_cycle) const {
  RelTracker copy(*this);
  return copy.finalize(end_cycle);
}

RelReport RelTracker::finalize(std::uint64_t end_cycle) {
  RelReport report;
  advance(end_cycle);

  // Fold the residents in sorted address order so the floating-point sums
  // are independent of unordered_map iteration order (and thread count).
  std::vector<std::uint64_t> blocks;
  blocks.reserve(lines_.size());
  for (const auto& [block, line] : lines_) blocks.push_back(block);
  std::sort(blocks.begin(), blocks.end());
  for (const std::uint64_t block : blocks) {
    Line& line = lines_[block];
    flush_line(line, end_cycle);
    for (Word& word : line.words) {
      report.open_exposure += word.e_cov + word.e_unc;
      // Open intervals stay out of the interval table (no closing event),
      // but their accrual is already in the state/total aggregates.
    }
  }

  std::vector<std::uint64_t> pending_keys;
  pending_keys.reserve(pending_.size());
  for (const auto& [addr, mass] : pending_) pending_keys.push_back(addr);
  std::sort(pending_keys.begin(), pending_keys.end());
  for (const std::uint64_t addr : pending_keys) {
    report.pending_residual += pending_[addr];
  }

  report.model_supported = config_.model_supported;
  report.cycles = end_cycle;
  report.clock_ghz = config_.clock_ghz;
  report.probability = config_.probability;
  report.word_cycles = word_cycles_;
  report.total_exposure = total_exposure_;
  for (std::size_t s = 0; s < kRelStates; ++s) {
    report.state_cycles[s] = state_cycles_[s];
    report.state_exposure[s] = state_exposure_[s];
  }
  report.corrected_coef = corrected_coef_;
  report.replica_coef = replica_coef_;
  report.detected_coef = detected_coef_;
  report.silent_coef = silent_coef_;
  report.scrub_coef = scrub_coef_;
  report.unobserved_coef = unobserved_coef_;
  report.deposited_coef = deposited_coef_;

  for (std::size_t si = 0; si < kIntervalStarts; ++si) {
    for (std::size_t ei = 0; ei < kIntervalEnds; ++ei) {
      for (std::size_t s = 0; s < kRelStates; ++s) {
        const ClassCell& cell = cells_[si][ei][s];
        if (cell.count == 0 && cell.cycles == 0.0 && cell.exposure == 0.0) {
          continue;
        }
        IntervalClassRow row;
        row.start = static_cast<IntervalStart>(si);
        row.end = static_cast<IntervalEnd>(ei);
        row.state = static_cast<RelState>(s);
        row.count = cell.count;
        row.cycles = cell.cycles;
        row.exposure = cell.exposure;
        report.intervals.push_back(row);
      }
    }
  }
  return report;
}

}  // namespace icr::rel
