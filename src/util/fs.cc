#include "src/util/fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace icr::util::fs {
namespace {

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  throw std::runtime_error(what + " '" + path + "': " + std::strerror(errno));
}

// Writes the whole buffer through a file descriptor, retrying short writes.
void write_all(int fd, const char* data, std::size_t size,
               const std::string& path) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write to", path);
    }
    written += static_cast<std::size_t>(n);
  }
}

}  // namespace

bool exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

void make_directories(const std::string& path) {
  if (path.empty()) return;
  std::string prefix;
  prefix.reserve(path.size());
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t slash = path.find('/', start);
    if (slash == std::string::npos) slash = path.size();
    prefix.assign(path, 0, slash);
    if (!prefix.empty() && ::mkdir(prefix.c_str(), 0777) != 0 &&
        errno != EEXIST) {
      throw_errno("mkdir", prefix);
    }
    start = slash + 1;
  }
}

std::string read_text_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw_errno("open", path);
  std::string text;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof buffer);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_errno("read", path);
    }
    if (n == 0) break;
    text.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return text;
}

void atomic_write_text_file(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
  if (fd < 0) throw_errno("open", tmp);
  try {
    write_all(fd, text.data(), text.size(), tmp);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  // fsync before rename: after a crash the renamed file must hold the full
  // content, not a zero-length inode.
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw_errno("fsync", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("close", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("rename to", path);
  }
}

void append_text_file(const std::string& path, const std::string& text) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0666);
  if (fd < 0) throw_errno("open for append", path);
  try {
    write_all(fd, text.data(), text.size(), path);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
}

bool try_create_exclusive(const std::string& path, const std::string& text) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0666);
  if (fd < 0) {
    if (errno == EEXIST) return false;
    throw_errno("create", path);
  }
  try {
    write_all(fd, text.data(), text.size(), path);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return true;
}

bool remove_file(const std::string& path) {
  if (::unlink(path.c_str()) == 0) return true;
  if (errno == ENOENT) return false;
  throw_errno("unlink", path);
}

std::vector<std::string> list_directory(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) throw_errno("opendir", path);
  std::vector<std::string> names;
  for (;;) {
    errno = 0;
    const dirent* entry = ::readdir(dir);
    if (entry == nullptr) {
      if (errno != 0) {
        ::closedir(dir);
        throw_errno("readdir", path);
      }
      break;
    }
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace icr::util::fs
