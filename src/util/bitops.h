// Small bit-manipulation helpers shared by the coding and cache layers.
#pragma once

#include <bit>
#include <cstdint>

namespace icr {

// True iff x is a power of two (x > 0).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

// log2 of a power of two.
[[nodiscard]] constexpr unsigned log2_pow2(std::uint64_t x) noexcept {
  return static_cast<unsigned>(std::countr_zero(x));
}

// Parity (XOR-reduction) of a 64-bit word: 1 if odd number of set bits.
[[nodiscard]] constexpr unsigned parity64(std::uint64_t x) noexcept {
  return static_cast<unsigned>(std::popcount(x) & 1);
}

// Extract bit `i` of x.
[[nodiscard]] constexpr unsigned bit_of(std::uint64_t x, unsigned i) noexcept {
  return static_cast<unsigned>((x >> i) & 1ULL);
}

}  // namespace icr
