#include "src/util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <exception>

namespace icr::util {

unsigned ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = hardware_threads();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain remaining tasks even when stopping: a queued packaged_task
      // that is destroyed unrun would leave its future with a
      // broken_promise instead of a result.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto failed = std::make_shared<std::atomic<bool>>(false);
  auto first_error = std::make_shared<std::exception_ptr>();
  auto error_mutex = std::make_shared<std::mutex>();

  auto drain = [n, next, failed, first_error, error_mutex, &fn]() {
    for (;;) {
      const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed->load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(*error_mutex);
        if (!*first_error) *first_error = std::current_exception();
        failed->store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  // One drainer per worker; the calling thread drains too, so a pool that
  // is busy with unrelated work (or nested parallel_for from inside a
  // task) still makes progress and cannot deadlock.
  const std::size_t helpers =
      n > 1 ? std::min<std::size_t>(pool.size(), n - 1) : 0;
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i) futures.push_back(pool.submit(drain));
  drain();
  for (auto& future : futures) {
    // Help run queued work while waiting: if every worker is itself blocked
    // in a nested parallel_for, the queued drainers still get executed here
    // instead of deadlocking the pool.
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!pool.try_run_one()) {
        future.wait_for(std::chrono::milliseconds(1));
      }
    }
    future.get();
  }

  if (*first_error) std::rethrow_exception(*first_error);
}

}  // namespace icr::util
