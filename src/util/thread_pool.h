// Fixed-size worker pool used by the campaign engine (src/sim/campaign.h).
//
// Design constraints, in order:
//   1. Determinism of *results* must not depend on the pool: tasks write to
//      pre-assigned slots, so scheduling order never changes output.
//   2. Exceptions thrown inside a task must reach the caller (via the
//      returned future, or rethrown by parallel_for).
//   3. Submitting from inside a task (nested submission) must not deadlock:
//      workers never block on other tasks, they only pull from the queue.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace icr::util {

class ThreadPool {
 public:
  // `threads` == 0 picks hardware_threads(). The pool always has at least
  // one worker so submitted work makes progress even on odd platforms.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Schedules `fn` and returns a future for its result; exceptions thrown
  // by `fn` are captured and rethrown from future::get().
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  // Runs one queued task on the calling thread if any is pending; returns
  // whether a task was run. Lets a thread that is waiting on pool work help
  // instead of blocking — the key to nested parallel_for not deadlocking.
  bool try_run_one();

  // std::thread::hardware_concurrency(), clamped to at least 1.
  [[nodiscard]] static unsigned hardware_threads() noexcept;

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Runs fn(0) .. fn(n-1) across the pool's workers (plus the calling thread)
// and returns when all calls finished. Indices are claimed from a shared
// counter, so callers must not assume any execution order. If one or more
// calls throw, the first exception (by completion order) is rethrown after
// every in-flight call has finished; remaining unclaimed indices are
// abandoned. n == 0 returns immediately.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace icr::util
