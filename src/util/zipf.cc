#include "src/util/zipf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace icr {

ZipfSampler::ZipfSampler(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: empty universe");
  cdf_.reserve(static_cast<std::size_t>(n));
  double acc = 0.0;
  for (std::uint64_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_.push_back(acc);
  }
  for (auto& v : cdf_) v /= acc;
}

std::uint64_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

}  // namespace icr
