#include "src/util/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace icr::util {

namespace {

[[noreturn]] void fail(std::size_t offset, const char* what) {
  char buffer[96];
  std::snprintf(buffer, sizeof buffer, "json: %s at byte %zu", what, offset);
  throw std::runtime_error(buffer);
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue run() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters");
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(pos_, "unexpected character");
    ++pos_;
  }

  bool consume_keyword(const char* word) {
    std::size_t n = 0;
    while (word[n] != '\0') {
      if (pos_ + n >= text_.size() || text_[pos_ + n] != word[n]) return false;
      ++n;
    }
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't':
        if (!consume_keyword("true")) fail(pos_, "bad literal");
        {
          JsonValue v;
          v.type_ = JsonValue::Type::kBool;
          v.bool_ = true;
          return v;
        }
      case 'f':
        if (!consume_keyword("false")) fail(pos_, "bad literal");
        {
          JsonValue v;
          v.type_ = JsonValue::Type::kBool;
          v.bool_ = false;
          return v;
        }
      case 'n':
        if (!consume_keyword("null")) fail(pos_, "bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object_.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail(pos_, "bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail(pos_ - 1, "bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs land as two
          // 3-byte sequences — our own writers never emit them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail(pos_ - 1, "bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail(start, "bad number");
    }
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail(start, "bad number");
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.number_ = value;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(const std::string& text) {
  return JsonParser(text).run();
}

const JsonValue* JsonValue::find(const std::string& key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::get(const std::string& key) const noexcept {
  static const JsonValue kNull{};
  const JsonValue* v = find(key);
  return v != nullptr ? *v : kNull;
}

const std::string& JsonValue::empty_string() noexcept {
  static const std::string kEmpty;
  return kEmpty;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace icr::util
