// Zipf-distributed sampling over a fixed universe of items.
//
// Workload generators use Zipf skew to model "hot" data: the small set of
// blocks in high demand that ICR automatically replicates (paper §5.2). The
// sampler precomputes the CDF once and answers each draw with a binary
// search, so large universes stay cheap.
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace icr {

class ZipfSampler {
 public:
  // Distribution over {0, ..., n-1} with P(k) proportional to 1/(k+1)^theta.
  // theta == 0 degenerates to uniform. Requires n >= 1.
  ZipfSampler(std::uint64_t n, double theta);

  [[nodiscard]] std::uint64_t sample(Rng& rng) const noexcept;

  [[nodiscard]] std::uint64_t universe() const noexcept { return n_; }
  [[nodiscard]] double theta() const noexcept { return theta_; }

  // The precomputed CDF over ranks 0..n-1; cdf().back() is exactly 1.0.
  // Exposed read-only so regression tests can pin the normalization.
  [[nodiscard]] const std::vector<double>& cdf() const noexcept {
    return cdf_;
  }

 private:
  std::uint64_t n_;
  double theta_;
  std::vector<double> cdf_;
};

}  // namespace icr
