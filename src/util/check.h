// Lightweight invariant checking.
//
// ICR_CHECK is always on (simulation correctness beats the negligible cost);
// ICR_DCHECK compiles out in NDEBUG builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace icr::internal {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  std::fprintf(stderr, "ICR_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace icr::internal

#define ICR_CHECK(expr)                                          \
  do {                                                           \
    if (!(expr)) ::icr::internal::check_failed(#expr, __FILE__, __LINE__); \
  } while (false)

#ifdef NDEBUG
#define ICR_DCHECK(expr) \
  do {                   \
  } while (false)
#else
#define ICR_DCHECK(expr) ICR_CHECK(expr)
#endif
