// Plain-text table rendering for bench harnesses and examples.
//
// Every bench binary reproduces one of the paper's tables/figures as an
// aligned text table (rows = benchmarks or schemes, columns = series), so
// results can be eyeballed against the paper and diffed between runs.
#pragma once

#include <string>
#include <vector>

namespace icr {

class TextTable {
 public:
  // `title` is printed above the table; `columns` are the header cells.
  TextTable(std::string title, std::vector<std::string> columns);

  // Adds a row; missing cells render empty, extra cells are an error.
  void add_row(std::vector<std::string> cells);

  // Convenience: first cell is a label, the rest are numbers formatted with
  // `precision` decimal digits.
  void add_numeric_row(const std::string& label,
                       const std::vector<double>& values, int precision = 3);

  // Renders with column alignment and a rule under the header.
  [[nodiscard]] std::string render() const;

  // render() + fputs to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with fixed precision.
[[nodiscard]] std::string format_double(double value, int precision = 3);

}  // namespace icr
