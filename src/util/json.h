// Minimal JSON reader for the repo's own machine-readable artifacts
// (bench JSON, Chrome trace-event profiles). Parses the full JSON grammar
// into a tree of JsonValue nodes; numbers are doubles, object key order is
// preserved. This is a reader for files we write ourselves — it favours
// clear errors over speed and does not stream.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace icr::util {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  // Parses one JSON document (surrounding whitespace allowed); throws
  // std::runtime_error with a byte offset on malformed input.
  [[nodiscard]] static JsonValue parse(const std::string& text);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }

  // Typed accessors with defaults: a missing/mistyped value yields the
  // fallback instead of throwing, so report tools degrade gracefully on
  // schema evolution.
  [[nodiscard]] double as_double(double fallback = 0.0) const noexcept {
    return type_ == Type::kNumber ? number_
                                  : (type_ == Type::kBool ? (bool_ ? 1.0 : 0.0)
                                                          : fallback);
  }
  [[nodiscard]] bool as_bool(bool fallback = false) const noexcept {
    return type_ == Type::kBool ? bool_ : fallback;
  }
  [[nodiscard]] const std::string& as_string(
      const std::string& fallback = empty_string()) const noexcept {
    return type_ == Type::kString ? string_ : fallback;
  }

  [[nodiscard]] const std::vector<JsonValue>& items() const noexcept {
    return array_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const noexcept {
    return object_;
  }

  // Object member lookup; null when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const noexcept;

  // find() that tolerates chains: get("a") on a non-object returns a shared
  // null value, so report code can write v.get("x").get("y").as_double().
  [[nodiscard]] const JsonValue& get(const std::string& key) const noexcept;

 private:
  static const std::string& empty_string() noexcept;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;

  friend class JsonParser;
};

// Escapes `text` for embedding inside a JSON string literal (no quotes
// added). Shared by every writer in the repo so escaping stays consistent.
[[nodiscard]] std::string json_escape(const std::string& text);

}  // namespace icr::util
