#include "src/util/rng.h"

namespace icr {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t split_mix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t value) noexcept {
  std::uint64_t state = value;
  return split_mix64(state);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed ^ 0xA5A5A5A5A5A5A5A5ULL;  // avoid all-zero state
  for (auto& word : state_) word = split_mix64(s);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::next_range(std::uint64_t lo, std::uint64_t hi) noexcept {
  return lo + next_below(hi - lo + 1);
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::fork() noexcept {
  return Rng(next_u64());
}

}  // namespace icr
