#include "src/util/table.h"

#include <algorithm>
#include <cstdio>

#include "src/util/check.h"

namespace icr {

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

TextTable::TextTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  ICR_CHECK(cells.size() <= columns_.size());
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_numeric_row(const std::string& label,
                                const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }

  auto emit_row = [&](const std::vector<std::string>& cells, std::string& out) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += cells[c];
      if (c + 1 < cells.size()) {
        out.append(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };

  std::string out;
  if (!title_.empty()) {
    out += "== " + title_ + " ==\n";
  }
  emit_row(columns_, out);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void TextTable::print() const {
  const std::string s = render();
  std::fputs(s.c_str(), stdout);
}

}  // namespace icr
