// Deterministic pseudo-random number generation for simulations.
//
// All stochastic behaviour in the library (workload generation, fault
// injection, tie-breaking) flows through Rng so that every experiment is
// exactly reproducible from its seed. The generator is xoshiro256**, seeded
// via SplitMix64, which is both fast and statistically strong enough for
// simulation workloads.
#pragma once

#include <cstdint>

namespace icr {

// SplitMix64 step; used for seeding and as a cheap stateless hash.
[[nodiscard]] std::uint64_t split_mix64(std::uint64_t& state) noexcept;

// Stateless 64-bit mix of a value (finalizer of SplitMix64). Useful for
// deriving deterministic "data" from an address.
[[nodiscard]] std::uint64_t mix64(std::uint64_t value) noexcept;

// xoshiro256** PRNG. Copyable value type; cheap to fork for sub-streams.
class Rng {
 public:
  // Seeds the four state words from `seed` via SplitMix64. A zero seed is
  // remapped internally so the state is never all-zero.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  // Uniform in [0, 2^64).
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  // Uniform in [0, bound). bound == 0 returns 0. Uses Lemire's method.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::uint64_t next_range(std::uint64_t lo,
                                         std::uint64_t hi) noexcept;

  // Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept;

  // True with probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  // A new generator whose stream is decorrelated from this one.
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::uint64_t state_[4];
};

}  // namespace icr
