// Filesystem primitives for multi-process coordination (src/sim/farm.h).
//
// Two primitives carry the whole farm protocol:
//
//   * atomic_write_text_file — write-to-temp then rename(2). A reader never
//     sees a half-written file: the target either does not exist yet or
//     holds the complete content. A process killed mid-write leaves only a
//     temp file, which the writer's next attempt (or spool cleanup)
//     overwrites or ignores.
//   * try_create_exclusive — open(O_CREAT|O_EXCL): at most one of any
//     number of racing processes succeeds. This is the claim lock; it
//     needs no daemon and works on any shared filesystem with POSIX
//     open semantics.
//
// Everything throws std::runtime_error with the errno text on real I/O
// failure; "already exists" / "does not exist" outcomes that callers race
// on are returned as booleans instead.
#pragma once

#include <string>
#include <vector>

namespace icr::util::fs {

[[nodiscard]] bool exists(const std::string& path);

// mkdir -p: creates every missing component; ok if the path already exists.
void make_directories(const std::string& path);

// Reads the whole file; throws if it cannot be opened or read.
[[nodiscard]] std::string read_text_file(const std::string& path);

// Writes `text` to `path + ".tmp.<pid>"`, fsyncs, then renames over `path`.
// Readers see the old content or the new content, never a prefix.
void atomic_write_text_file(const std::string& path, const std::string& text);

// Appends `text` to `path` (O_APPEND, created if missing). Each call is a
// single write(2), so whole lines land contiguously — the farm event logs
// (src/sim/farm_telemetry.h) append one NDJSON line per call and readers
// never see an interleaved or split record from a single writer.
void append_text_file(const std::string& path, const std::string& text);

// Creates `path` with O_CREAT|O_EXCL and writes `text` into it. Returns
// false when the file already exists (someone else holds the claim);
// throws on any other failure.
[[nodiscard]] bool try_create_exclusive(const std::string& path,
                                        const std::string& text);

// Removes a file; returns false when it did not exist, throws on other
// errors.
bool remove_file(const std::string& path);

// Regular-file and directory names inside `path` (no "." / ".."), sorted
// so scans are deterministic. Throws if the directory cannot be opened.
[[nodiscard]] std::vector<std::string> list_directory(const std::string& path);

}  // namespace icr::util::fs
