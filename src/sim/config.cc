#include "src/sim/config.h"

#include <cstdlib>

namespace icr::sim {

std::uint64_t default_instruction_count() {
  if (const char* env = std::getenv("ICR_SIM_INSTRUCTIONS")) {
    const std::uint64_t n = std::strtoull(env, nullptr, 10);
    if (n > 0) return n;
  }
  return 1'000'000;
}

}  // namespace icr::sim
