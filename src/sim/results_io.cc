#include "src/sim/results_io.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "src/obs/obs_io.h"
#include "src/obs/prof.h"
#include "src/rel/rel_io.h"

namespace icr::sim {
namespace {

// Shortest round-trip decimal: deterministic across runs and exact enough
// that equal doubles always print equal text.
std::string format_value(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string hex64(std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "0x%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

}  // namespace

const std::vector<std::string>& metric_columns() {
  static const std::vector<std::string> columns = {
      "instructions",
      "cycles",
      "ipc",
      "dl1_loads",
      "dl1_load_hits",
      "dl1_stores",
      "dl1_miss_rate",
      "replication_ability",
      "loads_with_replica_fraction",
      "replicas_created",
      "replica_evictions",
      "evictions",
      "writebacks",
      "errors_detected",
      "errors_corrected_by_replica",
      "errors_corrected_by_ecc",
      "errors_corrected_by_rcache",
      "errors_refetched_from_l2",
      "unrecoverable_loads",
      "silent_corrupt_loads",
      "scrub_corrections",
      "fault_injections",
      "fault_bits_flipped",
      "fault_corrected",
      "fault_replica_recovered",
      "fault_detected_uncorrectable",
      "fault_silent",
      "l1i_miss_rate",
      "l2_miss_rate",
      "branch_mispredict_rate",
      "energy_total_nj",
  };
  return columns;
}

std::vector<double> metric_values(const RunResult& r) {
  return {
      static_cast<double>(r.instructions),
      static_cast<double>(r.cycles),
      r.ipc(),
      static_cast<double>(r.dl1.loads),
      static_cast<double>(r.dl1.load_hits),
      static_cast<double>(r.dl1.stores),
      r.dl1.miss_rate(),
      r.dl1.replication_ability(),
      r.dl1.loads_with_replica_fraction(),
      static_cast<double>(r.dl1.replicas_created),
      static_cast<double>(r.dl1.replica_evictions),
      static_cast<double>(r.dl1.evictions),
      static_cast<double>(r.dl1.writebacks),
      static_cast<double>(r.dl1.errors_detected),
      static_cast<double>(r.dl1.errors_corrected_by_replica),
      static_cast<double>(r.dl1.errors_corrected_by_ecc),
      static_cast<double>(r.dl1.errors_corrected_by_rcache),
      static_cast<double>(r.dl1.errors_refetched_from_l2),
      static_cast<double>(r.dl1.unrecoverable_loads),
      static_cast<double>(r.pipeline.silent_corrupt_loads),
      static_cast<double>(r.dl1.scrub_corrections),
      static_cast<double>(r.faults.injections),
      static_cast<double>(r.faults.bits_flipped),
      static_cast<double>(r.faults.corrected),
      static_cast<double>(r.faults.replica_recovered),
      static_cast<double>(r.faults.detected_uncorrectable),
      static_cast<double>(r.faults.silent),
      r.l1i.miss_rate(),
      r.l2.miss_rate(),
      r.branch.mispredict_rate(),
      r.energy.total_nj(),
  };
}

std::string results_csv_header(bool sampled, bool geometry) {
  std::string out = "variant,app,trial,seed";
  if (geometry) out += ",dl1_size,dl1_assoc,ways_disabled";
  for (const std::string& column : metric_columns()) {
    out += ',';
    out += column;
  }
  if (sampled) {
    out += ",sampled,warmup,sample_windows,measured_instructions,"
           "sample_coverage";
  }
  out += '\n';
  return out;
}

void append_results_csv_row(std::string& out, const std::string& variant,
                            const std::string& app, std::uint32_t trial,
                            std::uint64_t seed,
                            const std::vector<double>& metrics,
                            const SampleProvenance* sampling,
                            const GeometryProvenance* geometry) {
  out += variant;
  out += ',';
  out += app;
  out += ',';
  out += std::to_string(trial);
  out += ',';
  out += hex64(seed);
  if (geometry != nullptr) {
    out += ',';
    out += std::to_string(geometry->dl1_size_bytes);
    out += ',';
    out += std::to_string(geometry->dl1_assoc);
    out += ',';
    out += std::to_string(geometry->ways_disabled);
  }
  for (const double value : metrics) {
    out += ',';
    out += format_value(value);
  }
  if (sampling != nullptr) {
    out += sampling->sampled ? ",1," : ",0,";
    out += std::to_string(sampling->warmup_instructions);
    out += ',';
    out += std::to_string(sampling->windows);
    out += ',';
    out += std::to_string(sampling->measured_instructions);
    out += ',';
    out += format_value(sampling->coverage());
  }
  out += '\n';
}

std::string results_json_prologue(const CampaignMeta& meta, std::size_t cells,
                                  bool include_timing) {
  std::string out = "{\n  \"campaign\": {\n";
  out += "    \"base_seed\": \"" + hex64(meta.base_seed) + "\",\n";
  out += "    \"config_hash\": \"" + hex64(meta.config_hash) + "\",\n";
  out += "    \"instructions\": " + std::to_string(meta.instructions) + ",\n";
  out += "    \"trials\": " + std::to_string(meta.trials) + ",\n";
  out += "    \"cells\": " + std::to_string(cells);
  if (meta.sampling.enabled()) {
    const SamplingOptions& s = meta.sampling;
    out += ",\n    \"sampling\": {\"warmup\": " +
           std::to_string(s.warmup_instructions) +
           ", \"windows\": " + std::to_string(s.windows) +
           ", \"window_width\": " + std::to_string(s.window_width) +
           ", \"mode\": \"" + to_string(s.mode) + "\", \"seed\": \"" +
           hex64(s.seed) + "\"}";
  }
  if (meta.geometry) {
    out += ",\n    \"geometry\": true";
  }
  if (include_timing) {
    out += ",\n    \"threads\": " + std::to_string(meta.threads) + ",\n";
    out += "    \"completed_cells\": " + std::to_string(meta.completed_cells) +
           ",\n";
    out += "    \"wall_seconds\": " + format_value(meta.wall_seconds) + ",\n";
    out +=
        "    \"cells_per_second\": " + format_value(meta.cells_per_second) +
        ",\n";
    out += "    \"mips\": " + format_value(meta.mips);
  }
  out += "\n  },\n  \"cells\": [\n";
  return out;
}

void append_results_json_cell(std::string& out, const std::string& variant,
                              const std::string& app, std::uint32_t trial,
                              std::uint64_t seed,
                              const std::vector<double>& metrics,
                              const SampleProvenance* sampling, bool last,
                              const GeometryProvenance* geometry) {
  out += "    {\"variant\": \"" + json_escape(variant) + "\", \"app\": \"" +
         json_escape(app) + "\", \"trial\": " + std::to_string(trial) +
         ", \"seed\": \"" + hex64(seed) + "\"";
  if (geometry != nullptr) {
    out += ", \"geometry\": {\"dl1_size\": " +
           std::to_string(geometry->dl1_size_bytes) +
           ", \"dl1_assoc\": " + std::to_string(geometry->dl1_assoc) +
           ", \"ways_disabled\": " + std::to_string(geometry->ways_disabled) +
           "}";
  }
  out += ", \"metrics\": {";
  const std::vector<std::string>& columns = metric_columns();
  for (std::size_t m = 0; m < columns.size(); ++m) {
    if (m != 0) out += ", ";
    out += "\"" + columns[m] + "\": " + format_value(metrics[m]);
  }
  out += '}';
  if (sampling != nullptr) {
    out += std::string(", \"sampling\": {\"sampled\": ") +
           (sampling->sampled ? "true" : "false") +
           ", \"warmup\": " + std::to_string(sampling->warmup_instructions) +
           ", \"windows\": " + std::to_string(sampling->windows) +
           ", \"measured_instructions\": " +
           std::to_string(sampling->measured_instructions) +
           ", \"coverage\": " + format_value(sampling->coverage()) + "}";
  }
  out += '}';
  if (!last) out += ',';
  out += '\n';
}

std::string results_json_epilogue() { return "  ]\n}\n"; }

std::string to_csv(const CampaignResult& campaign) {
  ICR_PROF_ZONE("ResultsIO::to_csv");
  // Sampled campaigns report estimates, not full measurements; mark every
  // row with its provenance so downstream analysis can never confuse the
  // two. Unsampled campaigns keep the historical schema byte for byte.
  const bool sampled = campaign.meta.sampling.enabled();
  std::string out = results_csv_header(sampled, campaign.meta.geometry);
  for (const CellResult& cell : campaign.cells) {
    append_results_csv_row(out, cell.result.scheme, cell.result.app,
                           cell.cell.trial_idx, cell.cell.seed,
                           metric_values(cell.result),
                           sampled ? &cell.sampling : nullptr,
                           campaign.meta.geometry ? &cell.geometry : nullptr);
  }
  return out;
}

std::string to_json(const CampaignResult& campaign, bool include_timing) {
  ICR_PROF_ZONE("ResultsIO::to_json");
  const bool sampled = campaign.meta.sampling.enabled();
  std::string out = results_json_prologue(campaign.meta,
                                          campaign.cells.size(),
                                          include_timing);
  for (std::size_t i = 0; i < campaign.cells.size(); ++i) {
    const CellResult& cell = campaign.cells[i];
    append_results_json_cell(out, cell.result.scheme, cell.result.app,
                             cell.cell.trial_idx, cell.cell.seed,
                             metric_values(cell.result),
                             sampled ? &cell.sampling : nullptr,
                             i + 1 == campaign.cells.size(),
                             campaign.meta.geometry ? &cell.geometry
                                                    : nullptr);
  }
  out += results_json_epilogue();
  return out;
}

namespace {

obs::CellTag tag_of(const CellResult& cell) {
  return obs::CellTag{cell.result.scheme, cell.result.app,
                      cell.cell.trial_idx};
}

}  // namespace

std::string intervals_to_csv(const CampaignResult& campaign) {
  std::string out;
  for (const CellResult& cell : campaign.cells) {
    if (cell.obs == nullptr || cell.obs->intervals.samples.empty()) continue;
    if (out.empty()) out = obs::intervals_csv_header(cell.obs->intervals);
    obs::append_intervals_csv_rows(out, cell.obs->intervals, tag_of(cell));
  }
  return out;
}

std::string occupancy_to_csv(const CampaignResult& campaign) {
  std::string out;
  for (const CellResult& cell : campaign.cells) {
    if (cell.obs == nullptr || cell.obs->intervals.occupancy_sets == 0) {
      continue;
    }
    if (out.empty()) {
      out = obs::occupancy_csv_header(cell.obs->intervals.occupancy_sets);
    }
    obs::append_occupancy_csv_rows(out, cell.obs->intervals, tag_of(cell));
  }
  return out;
}

std::string trace_to_ndjson(const CampaignResult& campaign) {
  std::string out;
  for (const CellResult& cell : campaign.cells) {
    if (cell.obs == nullptr) continue;
    obs::append_ndjson(out, cell.obs->events, tag_of(cell));
  }
  return out;
}

std::string rel_to_csv(const CampaignResult& campaign) {
  std::string out;
  for (const CellResult& cell : campaign.cells) {
    if (cell.rel == nullptr) continue;
    if (out.empty()) out = rel::summary_csv_header();
    rel::append_summary_csv_row(out, *cell.rel, tag_of(cell));
  }
  return out;
}

std::string rel_intervals_to_csv(const CampaignResult& campaign) {
  std::string out;
  for (const CellResult& cell : campaign.cells) {
    if (cell.rel == nullptr) continue;
    if (out.empty()) out = rel::intervals_csv_header();
    rel::append_intervals_csv_rows(out, *cell.rel, tag_of(cell));
  }
  return out;
}

std::string rel_to_json(const CampaignResult& campaign) {
  std::string out = "{\n  \"cells\": [";
  bool first = true;
  for (const CellResult& cell : campaign.cells) {
    if (cell.rel == nullptr) continue;
    if (!first) out += ',';
    out += '\n';
    rel::append_json_object(out, *cell.rel, tag_of(cell), 4);
    first = false;
  }
  if (!first) out += '\n';
  out += "  ]\n}\n";
  return out;
}

void write_text_file(const std::string& path, const std::string& text) {
  ICR_PROF_ZONE("ResultsIO::write_text_file");
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) throw std::runtime_error("cannot open '" + path + "' for write");
  file << text;
  file.flush();
  if (!file) throw std::runtime_error("write to '" + path + "' failed");
}

}  // namespace icr::sim
