#include "src/sim/serve.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "src/obs/exposition.h"
#include "src/obs/throughput.h"

namespace icr::sim::farm {
namespace {

double monotonic_now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string brief(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  return buffer;
}

// The farm metric families (docs/SERVING.md). Everything is a gauge of the
// spool's current state except the event/latency tallies, which only grow.
std::string farm_metrics(const FarmStatus& status) {
  obs::MetricsText out;
  out.family("icr_farm_units_total", "work units in the manifest", "gauge");
  out.sample("icr_farm_units_total", {},
             static_cast<std::uint64_t>(status.census.unit_count));
  out.family("icr_farm_units_done", "published work units", "gauge");
  out.sample("icr_farm_units_done", {},
             static_cast<std::uint64_t>(status.census.units_done));
  out.family("icr_farm_cells_total", "campaign grid cells in the manifest",
             "gauge");
  out.sample("icr_farm_cells_total", {}, status.total_cells);
  out.family("icr_farm_cells_done", "grid cells published to the spool",
             "gauge");
  out.sample("icr_farm_cells_done", {}, status.census.cells_done);
  out.family("icr_farm_claims", "outstanding unit claims by liveness",
             "gauge");
  out.sample("icr_farm_claims", {{"state", "live"}},
             static_cast<std::uint64_t>(status.claims_live));
  out.sample("icr_farm_claims", {{"state", "stale"}},
             static_cast<std::uint64_t>(status.claims_stale));

  std::uint64_t by_state[4] = {0, 0, 0, 0};
  for (const WorkerStatus& worker : status.workers) {
    ++by_state[static_cast<int>(worker.state)];
  }
  out.family("icr_farm_workers", "workers with a heartbeat, by state",
             "gauge");
  out.sample("icr_farm_workers", {{"state", "running"}}, by_state[0]);
  out.sample("icr_farm_workers", {{"state", "straggler"}}, by_state[1]);
  out.sample("icr_farm_workers", {{"state", "dead"}}, by_state[2]);
  out.sample("icr_farm_workers", {{"state", "exited"}}, by_state[3]);

  out.family("icr_farm_progress_percent", "cells done as a percentage",
             "gauge");
  out.sample("icr_farm_progress_percent", {}, status.throughput.percent);
  out.family("icr_farm_cells_per_second", "fleet throughput", "gauge");
  out.sample("icr_farm_cells_per_second", {}, status.throughput.rate);
  out.family("icr_farm_eta_seconds",
             "estimated seconds to completion (-1 when unknown)", "gauge");
  out.sample("icr_farm_eta_seconds", {}, status.throughput.eta_seconds);
  out.family("icr_farm_elapsed_seconds", "seconds since the earliest event",
             "gauge");
  out.sample("icr_farm_elapsed_seconds", {}, status.elapsed_seconds);
  out.family("icr_farm_complete", "1 once every unit is published", "gauge");
  out.sample("icr_farm_complete", {},
             std::uint64_t{status.census.complete() ? 1u : 0u});
  out.family("icr_farm_drained",
             "1 once complete and no worker is running or straggling",
             "gauge");
  out.sample("icr_farm_drained", {}, std::uint64_t{status.drained() ? 1u : 0u});
  out.family("icr_farm_events_merged", "lifecycle events across all workers",
             "counter");
  out.sample("icr_farm_events_merged", {},
             static_cast<std::uint64_t>(status.event_count));
  out.family("icr_farm_dropped_event_lines",
             "partial NDJSON lines skipped by the merge", "counter");
  out.sample("icr_farm_dropped_event_lines", {},
             static_cast<std::uint64_t>(status.dropped_event_lines));
  out.family("icr_farm_unreadable_heartbeats",
             "heartbeat files that failed to parse", "gauge");
  out.sample("icr_farm_unreadable_heartbeats", {},
             static_cast<std::uint64_t>(status.unreadable_heartbeats));
  out.family("icr_farm_status_schema", "NDJSON status schema version",
             "gauge");
  out.sample("icr_farm_status_schema", {},
             std::uint64_t{kStatusSchemaVersion});

  for (const WorkerStatus& worker : status.workers) {
    const WorkerHeartbeat& hb = worker.heartbeat;
    const obs::PromLabels wl = {{"worker", hb.worker_id}};
    out.family("icr_worker_up", "1 while the worker is classified running",
               "gauge");
    out.sample("icr_worker_up", wl,
               std::uint64_t{worker.state == WorkerState::kRunning ? 1u : 0u});
    out.family("icr_worker_state",
               "worker staleness class (0 running, 1 straggler, 2 dead, "
               "3 exited)",
               "gauge");
    out.sample("icr_worker_state", wl,
               static_cast<std::uint64_t>(static_cast<int>(worker.state)));
    out.family("icr_worker_heartbeat_age_seconds",
               "seconds since the last heartbeat", "gauge");
    out.sample("icr_worker_heartbeat_age_seconds", wl, worker.age_seconds);
    out.family("icr_worker_units_done", "units published by this worker",
               "gauge");
    out.sample("icr_worker_units_done", wl,
               static_cast<std::uint64_t>(hb.units_done));
    out.family("icr_worker_cells_done", "cells simulated by this worker",
               "gauge");
    out.sample("icr_worker_cells_done", wl, hb.cells_done);
    out.family("icr_worker_cells_per_second", "worker lifetime cell rate",
               "gauge");
    out.sample("icr_worker_cells_per_second", wl, worker.cells_per_second);
    out.family("icr_worker_mips", "worker simulated MIPS", "gauge");
    out.sample("icr_worker_mips", wl, hb.mips);
    out.family("icr_worker_maxrss_kilobytes", "worker peak resident set",
               "gauge");
    out.sample("icr_worker_maxrss_kilobytes", wl, hb.rusage.maxrss_kb);
    out.family("icr_worker_cpu_seconds_total", "worker CPU time by mode",
               "counter");
    {
      obs::PromLabels ml = wl;
      ml.emplace_back("mode", "user");
      out.sample("icr_worker_cpu_seconds_total", ml, hb.rusage.utime_seconds);
      ml.back().second = "system";
      out.sample("icr_worker_cpu_seconds_total", ml, hb.rusage.stime_seconds);
    }
    if (!hb.prof_zones.empty()) {
      obs::append_prof_zones(out, hb.prof_zones, "icr_worker_prof_zone", wl);
    }
  }

  if (status.unit_latency_ms.total() > 0) {
    out.histogram("icr_farm_unit_latency_milliseconds",
                  "claim to publish wall time per unit",
                  status.unit_latency_ms);
  }
  return out.text();
}

}  // namespace

SpoolStatusSource::SpoolStatusSource(std::string spool, Manifest manifest,
                                     StalenessPolicy staleness)
    : spool_(std::move(spool)),
      manifest_(std::move(manifest)),
      staleness_(staleness) {}

FarmStatus SpoolStatusSource::collect() const {
  FarmStatusOptions options;
  options.staleness = staleness_;
  return collect_farm_status(spool_, manifest_, options);
}

std::string SpoolStatusSource::status_ndjson() {
  return farm_status_to_ndjson(collect());
}

std::string SpoolStatusSource::metrics_text() {
  return farm_metrics(collect());
}

std::vector<std::string> SpoolStatusSource::event_lines() {
  std::vector<std::string> lines;
  for (const FarmEvent& event : read_farm_events(spool_)) {
    std::string line = event.to_ndjson_line();
    if (!line.empty() && line.back() == '\n') line.pop_back();
    lines.push_back(std::move(line));
  }
  return lines;
}

bool SpoolStatusSource::finished() { return collect().drained(); }

CampaignStatusSource::CampaignStatusSource(std::uint64_t total_cells,
                                           std::uint64_t instructions_per_cell)
    : total_cells_(total_cells),
      instructions_per_cell_(instructions_per_cell),
      start_monotonic_seconds_(monotonic_now_seconds()) {}

std::string CampaignStatusSource::status_ndjson() {
  const std::uint64_t done = cells_done_.load();
  const double elapsed = monotonic_now_seconds() - start_monotonic_seconds_;
  const obs::Throughput t =
      obs::estimate_throughput(done, total_cells_, elapsed);
  std::string out = "{\"type\":\"campaign\",\"schema\":" +
                    std::to_string(kStatusSchemaVersion);
  out += ",\"total_cells\":" + std::to_string(total_cells_);
  out += ",\"cells_done\":" + std::to_string(done);
  out += ",\"percent\":" + brief(t.percent);
  out += ",\"cells_per_second\":" + brief(t.rate);
  out += ",\"eta_seconds\":" + brief(t.eta_seconds);
  out += ",\"elapsed_seconds\":" + brief(elapsed);
  out += ",\"mips\":" +
         brief(obs::simulated_mips(done, instructions_per_cell_, elapsed));
  out += std::string(",\"finished\":") +
         (finished_.load() ? "true" : "false");
  out += "}\n";
  return out;
}

std::string CampaignStatusSource::metrics_text() {
  const std::uint64_t done = cells_done_.load();
  const double elapsed = monotonic_now_seconds() - start_monotonic_seconds_;
  const obs::Throughput t =
      obs::estimate_throughput(done, total_cells_, elapsed);
  obs::MetricsText out;
  out.family("icr_campaign_cells_total", "grid cells in the campaign",
             "gauge");
  out.sample("icr_campaign_cells_total", {}, total_cells_);
  out.family("icr_campaign_cells_done", "grid cells completed", "gauge");
  out.sample("icr_campaign_cells_done", {}, done);
  out.family("icr_campaign_progress_percent", "cells done as a percentage",
             "gauge");
  out.sample("icr_campaign_progress_percent", {}, t.percent);
  out.family("icr_campaign_cells_per_second", "campaign throughput", "gauge");
  out.sample("icr_campaign_cells_per_second", {}, t.rate);
  out.family("icr_campaign_eta_seconds",
             "estimated seconds to completion (-1 when unknown)", "gauge");
  out.sample("icr_campaign_eta_seconds", {}, t.eta_seconds);
  out.family("icr_campaign_elapsed_seconds", "seconds since campaign start",
             "gauge");
  out.sample("icr_campaign_elapsed_seconds", {}, elapsed);
  out.family("icr_campaign_mips", "fleet simulated MIPS", "gauge");
  out.sample("icr_campaign_mips", {},
             obs::simulated_mips(done, instructions_per_cell_, elapsed));
  out.family("icr_campaign_finished", "1 once the run has completed",
             "gauge");
  out.sample("icr_campaign_finished", {},
             std::uint64_t{finished_.load() ? 1u : 0u});
  out.family("icr_farm_status_schema", "NDJSON status schema version",
             "gauge");
  out.sample("icr_farm_status_schema", {},
             std::uint64_t{kStatusSchemaVersion});
  return out.text();
}

SimStatusSource::SimStatusSource(std::string scheme, std::string app,
                                 std::uint64_t total_instructions)
    : scheme_(std::move(scheme)),
      app_(std::move(app)),
      total_instructions_(total_instructions),
      start_monotonic_seconds_(monotonic_now_seconds()) {}

void SimStatusSource::update(
    std::uint64_t instructions_done,
    std::vector<std::pair<std::string, std::uint64_t>> counters,
    std::vector<obs::prof::ZoneNode> zones) {
  std::lock_guard<std::mutex> lock(mutex_);
  instructions_done_ = instructions_done;
  if (!counters.empty()) counters_ = std::move(counters);
  if (!zones.empty()) zones_ = std::move(zones);
}

void SimStatusSource::finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  finished_ = true;
}

bool SimStatusSource::finished() {
  std::lock_guard<std::mutex> lock(mutex_);
  return finished_;
}

std::string SimStatusSource::status_ndjson() {
  std::lock_guard<std::mutex> lock(mutex_);
  const double elapsed = monotonic_now_seconds() - start_monotonic_seconds_;
  const obs::Throughput t = obs::estimate_throughput(
      instructions_done_, total_instructions_, elapsed);
  std::string out = "{\"type\":\"sim\",\"schema\":" +
                    std::to_string(kStatusSchemaVersion);
  out += ",\"scheme\":\"" + scheme_ + "\"";
  out += ",\"app\":\"" + app_ + "\"";
  out += ",\"instructions_total\":" + std::to_string(total_instructions_);
  out += ",\"instructions_done\":" + std::to_string(instructions_done_);
  out += ",\"percent\":" + brief(t.percent);
  out += ",\"mips\":" +
         brief(obs::simulated_mips(instructions_done_, 1, elapsed));
  out += ",\"eta_seconds\":" + brief(t.eta_seconds);
  out += ",\"elapsed_seconds\":" + brief(elapsed);
  out += std::string(",\"finished\":") + (finished_ ? "true" : "false");
  out += "}\n";
  return out;
}

std::string SimStatusSource::metrics_text() {
  std::lock_guard<std::mutex> lock(mutex_);
  const double elapsed = monotonic_now_seconds() - start_monotonic_seconds_;
  const obs::Throughput t = obs::estimate_throughput(
      instructions_done_, total_instructions_, elapsed);
  obs::MetricsText out;
  const obs::PromLabels labels = {{"scheme", scheme_}, {"app", app_}};
  out.family("icr_sim_instructions_total", "commit target", "gauge");
  out.sample("icr_sim_instructions_total", labels, total_instructions_);
  out.family("icr_sim_instructions_done", "instructions committed", "gauge");
  out.sample("icr_sim_instructions_done", labels, instructions_done_);
  out.family("icr_sim_progress_percent", "instructions as a percentage",
             "gauge");
  out.sample("icr_sim_progress_percent", labels, t.percent);
  out.family("icr_sim_mips", "simulated MIPS", "gauge");
  out.sample("icr_sim_mips", labels,
             obs::simulated_mips(instructions_done_, 1, elapsed));
  out.family("icr_sim_eta_seconds",
             "estimated seconds to completion (-1 when unknown)", "gauge");
  out.sample("icr_sim_eta_seconds", labels, t.eta_seconds);
  out.family("icr_sim_elapsed_seconds", "seconds since run start", "gauge");
  out.sample("icr_sim_elapsed_seconds", labels, elapsed);
  out.family("icr_sim_finished", "1 once the run has completed", "gauge");
  out.sample("icr_sim_finished", labels,
             std::uint64_t{finished_ ? 1u : 0u});
  for (const auto& [name, value] : counters_) {
    const std::string metric = "icr_stat_" + obs::prom_sanitize_name(name);
    out.family(metric, "stat-registry counter " + name, "counter");
    out.sample(metric, labels, value);
  }
  obs::append_prof_zones(out, zones_, "icr_prof_zone", labels);
  return out.text();
}

void parse_serve_spec(const std::string& spec, ServeOptions* options) {
  std::string port_text = spec;
  auto colon = spec.rfind(':');
  if (colon != std::string::npos) {
    options->bind_address = spec.substr(0, colon);
    port_text = spec.substr(colon + 1);
    if (options->bind_address.empty()) {
      throw std::runtime_error("--serve: empty bind address in '" + spec + "'");
    }
  }
  char* end = nullptr;
  const long port = std::strtol(port_text.c_str(), &end, 10);
  if (port_text.empty() || end == nullptr || *end != '\0' || port < 0 ||
      port > 65535) {
    throw std::runtime_error("--serve: bad port in '" + spec +
                             "' (expected PORT or ADDR:PORT)");
  }
  options->port = static_cast<std::uint16_t>(port);
}

std::unique_ptr<obs::http::Server> start_status_server(
    StatusSource& source, const ServeOptions& options) {
  auto server = std::make_unique<obs::http::Server>();
  StatusSource* src = &source;
  server->handle("/healthz", [](const obs::http::Request&) {
    return obs::http::Response{200, "text/plain; charset=utf-8", "ok\n"};
  });
  server->handle("/status", [src](const obs::http::Request&) {
    return obs::http::Response{200, "application/x-ndjson; charset=utf-8",
                               src->status_ndjson()};
  });
  server->handle("/metrics", [src](const obs::http::Request&) {
    return obs::http::Response{
        200, "text/plain; version=0.0.4; charset=utf-8",
        src->metrics_text()};
  });
  server->handle("/", [](const obs::http::Request&) {
    return obs::http::Response{200, "text/html; charset=utf-8",
                               obs::dashboard_html()};
  });
  const double poll_seconds = options.events_poll_seconds;
  server->handle_stream(
      "/events",
      [src, poll_seconds](const obs::http::Request& request,
                          obs::http::ClientStream& stream) {
        // Resume semantics (docs/SERVING.md): the id of each frame is its
        // index in the merged (time, worker, seq) stream; Last-Event-ID or
        // ?after=N means "I have everything up to and including N".
        std::uint64_t next = 0;
        std::string last = request.header("last-event-id");
        if (last.empty()) last = request.query_param("after");
        if (!last.empty()) {
          next = std::strtoull(last.c_str(), nullptr, 10) + 1;
        }
        const bool once = request.query_param("once") == "1";
        for (;;) {
          const std::vector<std::string> lines = src->event_lines();
          for (; next < lines.size(); ++next) {
            if (!stream.write(obs::sse_event(next, lines[next]))) return;
          }
          if (once) return;
          if (src->finished()) {
            stream.write("event: drained\ndata: {}\n\n");
            return;
          }
          if (!stream.wait(poll_seconds)) return;
        }
      });
  obs::http::ServerOptions server_options;
  server_options.bind_address = options.bind_address;
  server_options.port = options.port;
  server->start(server_options);
  return server;
}

}  // namespace icr::sim::farm
