// Shared command-line helpers for the simulator front-ends.
//
// The name-lookup and flag-splitting code used to be duplicated verbatim in
// tools/icr_sim.cc and tools/run_campaign.cc (and re-grown in new tools);
// this header is the single copy. The *_by_name lookups print a diagnostic
// and exit(2) on unknown names — they are CLI conveniences, not library
// API; library code should construct schemes/apps directly.
#pragma once

#include <string>
#include <vector>

#include "src/core/scheme.h"
#include "src/core/replication_policy.h"
#include "src/fault/fault_injector.h"
#include "src/sim/sampling.h"
#include "src/trace/workloads.h"

namespace icr::sim::cli {

// Matches "--name=value"; on match copies the value and returns true.
[[nodiscard]] bool parse_flag(const char* arg, const char* name,
                              std::string& out);

// Shared unknown-flag rejection: prints "<program>: unknown flag '<arg>'"
// and a --help hint to stderr, then exits 2. Every front-end (tools/ and
// the bench harness) funnels unrecognized "--" arguments here so a typo
// like --instruction=1000 fails loudly and identically everywhere instead
// of silently running the wrong experiment.
[[noreturn]] void unknown_flag(const char* program, const char* arg);

// Splits a comma-separated list, dropping empty items.
[[nodiscard]] std::vector<std::string> split_csv(const std::string& list);

// Paper scheme by its display name ("BaseP", "ICR-P-PS(S)", ...), plus the
// "BaseECC-spec" alias for the §5.9 speculative variant. Exits on unknown.
[[nodiscard]] core::Scheme scheme_by_name(const std::string& name);

// Application by its lowercase name ("gzip" .. "bzip2"). Exits on unknown.
[[nodiscard]] trace::App app_by_name(const std::string& name);

// Fault model by name ("random", "adjacent", "column", "direct").
[[nodiscard]] fault::FaultModel fault_by_name(const std::string& name);

// Replica victim policy by name ("dead-only", "dead-first", ...).
[[nodiscard]] core::ReplicaVictimPolicy victim_by_name(const std::string& name);

// Sample-window placement mode by name ("systematic", "random").
[[nodiscard]] SampleMode sample_mode_by_name(const std::string& name);

}  // namespace icr::sim::cli
