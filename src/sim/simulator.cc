#include "src/sim/simulator.h"

#include <algorithm>

#include "src/obs/prof.h"

namespace icr::sim {

Simulator::Simulator(SimConfig config, core::Scheme scheme,
                     trace::WorkloadProfile profile)
    : Simulator(config, std::move(scheme),
                std::make_unique<trace::SyntheticWorkload>(profile),
                profile.name) {}

Simulator::Simulator(SimConfig config, core::Scheme scheme,
                     std::unique_ptr<trace::TraceSource> source,
                     std::string app_name)
    : config_(config),
      scheme_(std::move(scheme)),
      source_(std::move(source)),
      app_name_(std::move(app_name)) {
  hierarchy_ = std::make_unique<mem::MemoryHierarchy>(config_.hierarchy);
  dl1_ = std::make_unique<core::IcrCache>(config_.dl1, scheme_, *hierarchy_,
                                          config_.dl1_way_disable);
  if (config_.rcache_entries > 0) {
    rcache_ = std::make_unique<baselines::RCache>(config_.rcache_entries);
    dl1_->attach_rcache(rcache_.get());
  }
  if (config_.fault_probability > 0.0) {
    injector_ = std::make_unique<fault::FaultInjector>(
        config_.fault_model, config_.fault_probability,
        Rng(config_.fault_seed));
  }
  pipeline_ = std::make_unique<cpu::Pipeline>(
      config_.pipeline, *source_, *dl1_, *hierarchy_, injector_.get());
}

void Simulator::enable_observability(const obs::ObsOptions& options) {
  if (!options.any() || obs_ != nullptr) return;
  obs_ = std::make_unique<obs::Observability>();
  if (options.trace_categories != 0) {
    obs_->trace = std::make_unique<obs::EventTrace>(options.trace_categories,
                                                    options.trace_capacity);
  }
  dl1_->attach_observability(&obs_->registry, obs_->trace.get());
  if (injector_ != nullptr) {
    injector_->attach_observability(&obs_->registry, obs_->trace.get());
  }
  pipeline_->attach_observability(&obs_->registry);
  obs_->registry.register_counter("l1i.accesses",
                                  &hierarchy_->l1i().stats().accesses);
  obs_->registry.register_counter("l1i.misses",
                                  &hierarchy_->l1i().stats().misses);
  obs_->registry.register_counter("l2.accesses",
                                  &hierarchy_->l2().stats().accesses);
  obs_->registry.register_counter("l2.misses",
                                  &hierarchy_->l2().stats().misses);
  if (options.stats_interval != 0) {
    obs_->sampler = std::make_unique<obs::IntervalSampler>(
        obs_->registry, options.stats_interval);
    obs_->sampler->set_occupancy_probe(
        [this] { return dl1_->replica_occupancy(); });
    obs_->sampler->record_baseline(pipeline_->stats().committed,
                                   pipeline_->cycle());
  }
}

void Simulator::enable_rel(const rel::RelOptions& options) {
  if (!options.enabled || rel_ != nullptr) return;
  rel::RelTracker::Config config;
  config.words_per_line = config_.dl1.words_per_line();
  config.scheme_parity = scheme_.protection == core::Protection::kParity;
  config.write_through =
      scheme_.write_policy == core::WritePolicy::kWriteThrough;
  // The analytical outcome split models the uniform single-bit strike model
  // only; the exposure integrals themselves are model-independent.
  config.model_supported = config_.fault_probability == 0.0 ||
                           config_.fault_model == fault::FaultModel::kRandom;
  config.probability = options.probability > 0.0 ? options.probability
                                                 : config_.fault_probability;
  config.clock_ghz = options.clock_ghz;
  rel_ = std::make_unique<rel::RelTracker>(config);
  dl1_->attach_rel(rel_.get());
}

rel::RelReport Simulator::collect_rel() const {
  if (rel_ == nullptr) return {};
  return rel_->report(pipeline_->cycle());
}

RunResult Simulator::run(std::uint64_t instructions) {
  ICR_PROF_ZONE("Simulator::run");
  if (obs_ != nullptr && obs_->sampler != nullptr) {
    // Run in sampling-interval chunks. Targets are absolute so the commit
    // stage's overshoot (up to commit_width-1 per chunk) never accumulates:
    // the chunked execution commits the same instruction stream, cycle for
    // cycle, as a single pipeline_->run(instructions) call.
    const std::uint64_t interval = obs_->sampler->interval_instructions();
    const std::uint64_t target = pipeline_->stats().committed + instructions;
    while (pipeline_->stats().committed < target) {
      const std::uint64_t next =
          std::min(pipeline_->stats().committed + interval, target);
      pipeline_->run(next - pipeline_->stats().committed);
      obs_->sampler->sample(pipeline_->stats().committed, pipeline_->cycle());
    }
    return result();
  }
  pipeline_->run(instructions);
  return result();
}

void Simulator::fast_forward(std::uint64_t instructions) {
  ICR_PROF_ZONE("Simulator::fast_forward");
  if (obs_ != nullptr && obs_->sampler != nullptr) {
    // Keep the telemetry cadence through fast-forwarded regions, same
    // chunking as run(). Boundary duplicates collapse inside the sampler.
    const std::uint64_t interval = obs_->sampler->interval_instructions();
    const std::uint64_t target = pipeline_->stats().committed + instructions;
    while (pipeline_->stats().committed < target) {
      const std::uint64_t next =
          std::min(pipeline_->stats().committed + interval, target);
      pipeline_->fast_forward(next - pipeline_->stats().committed);
      obs_->sampler->sample(pipeline_->stats().committed, pipeline_->cycle());
    }
    return;
  }
  pipeline_->fast_forward(instructions);
}

obs::CellObservability Simulator::collect_observability() const {
  obs::CellObservability cell;
  if (obs_ == nullptr) return cell;
  if (obs_->sampler != nullptr) cell.intervals = obs_->sampler->series();
  if (obs_->trace != nullptr) {
    cell.events = obs_->trace->events();
    cell.trace_emitted = obs_->trace->emitted();
    cell.trace_dropped = obs_->trace->dropped();
  }
  return cell;
}

RunResult Simulator::result() const {
  RunResult r;
  r.scheme = scheme_.name;
  r.app = app_name_;
  r.instructions = pipeline_->stats().committed;
  r.cycles = pipeline_->stats().cycles;
  r.dl1 = dl1_->stats();
  r.l1i = hierarchy_->l1i().stats();
  r.l2 = hierarchy_->l2().stats();
  r.pipeline = pipeline_->stats();
  r.branch = pipeline_->branch_predictor().stats();
  if (injector_ != nullptr) r.faults = injector_->stats();
  if (rcache_ != nullptr) r.rcache = rcache_->stats();

  // Paper energy metric: dynamic energy of dL1 + L2 data accesses (§4.1).
  energy::EnergyEvents& ev = r.energy_events;
  ev.l1_reads = r.dl1.l1_read_accesses;
  ev.l1_writes = r.dl1.l1_write_accesses;
  ev.l2_reads = hierarchy_->l2_read_accesses() - hierarchy_->l2_ifetch_reads();
  ev.l2_writes = hierarchy_->l2_write_accesses();
  if (const mem::WriteBuffer* wb = dl1_->write_buffer()) {
    ev.l2_writes += wb->drained_writes() + wb->occupancy();
  }
  ev.parity_computations = r.dl1.parity_computations;
  ev.ecc_computations = r.dl1.ecc_computations;
  r.energy = energy::EnergyModel(config_.energy).evaluate(ev);
  return r;
}

}  // namespace icr::sim
