// Wires one complete system — workload, OoO core, ICR dL1, hierarchy,
// fault injector, energy model — and runs it. This is the library's main
// entry point; see examples/quickstart.cpp.
#pragma once

#include <memory>

#include "src/baselines/rcache.h"
#include "src/core/icr_cache.h"
#include "src/core/scheme.h"
#include "src/cpu/pipeline.h"
#include "src/fault/fault_injector.h"
#include "src/mem/memory_hierarchy.h"
#include "src/obs/observability.h"
#include "src/rel/rel_tracker.h"
#include "src/sim/config.h"
#include "src/sim/metrics.h"
#include "src/trace/workloads.h"

namespace icr::sim {

class Simulator {
 public:
  Simulator(SimConfig config, core::Scheme scheme,
            trace::WorkloadProfile profile);

  // Same system, driven by an arbitrary instruction source instead of a
  // synthetic generator — the replay path for recorded traces. `app_name`
  // labels results (RunResult::app). Replaying a trace recorded from a
  // generator through this constructor is bit-identical to driving the
  // generator directly: both run the exact same stream through the exact
  // same wiring.
  Simulator(SimConfig config, core::Scheme scheme,
            std::unique_ptr<trace::TraceSource> source,
            std::string app_name);

  // Runs `instructions` more instructions and returns cumulative results.
  RunResult run(std::uint64_t instructions);

  // Advances `instructions` more instructions functionally (caches,
  // predictor, decay/fault/scrub state live; no detailed OoO modelling) —
  // the fast-forward leg of warmup/interval sampling (src/sim/sampling.h).
  void fast_forward(std::uint64_t instructions);

  [[nodiscard]] core::IcrCache& dl1() noexcept { return *dl1_; }
  [[nodiscard]] mem::MemoryHierarchy& hierarchy() noexcept {
    return *hierarchy_;
  }
  [[nodiscard]] cpu::Pipeline& pipeline() noexcept { return *pipeline_; }
  [[nodiscard]] fault::FaultInjector* injector() noexcept {
    return injector_.get();
  }
  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }

  // Snapshot of all metrics without running further.
  [[nodiscard]] RunResult result() const;

  // Turns on interval telemetry and/or event tracing. Call before the first
  // run(): the baseline sample is recorded here. No-op when `options` asks
  // for nothing. Enabling observability never changes simulated behaviour —
  // run() merely executes in sampling-interval chunks, which is
  // bit-identical to one uninterrupted run (guarded by tier-1 test).
  void enable_observability(const obs::ObsOptions& options);

  // Live observability state; null until enable_observability.
  [[nodiscard]] obs::Observability* observability() noexcept {
    return obs_.get();
  }

  // Plain-data copy of the recorded telemetry (series + retained events),
  // safe to keep after this simulator is destroyed.
  [[nodiscard]] obs::CellObservability collect_observability() const;

  // Turns on the analytical reliability tracker (src/rel). Call before the
  // first run(). Like observability, it never changes simulated behaviour
  // (bit-identical results, guarded by tier-1 test). No-op when
  // options.enabled is false.
  void enable_rel(const rel::RelOptions& options);

  // Live tracker; null until enable_rel.
  [[nodiscard]] rel::RelTracker* rel() noexcept { return rel_.get(); }

  // Snapshot of the analytical integrals up to the current cycle. Empty
  // report when the tracker was never enabled.
  [[nodiscard]] rel::RelReport collect_rel() const;

 private:
  SimConfig config_;
  core::Scheme scheme_;
  std::unique_ptr<trace::TraceSource> source_;
  std::unique_ptr<mem::MemoryHierarchy> hierarchy_;
  std::unique_ptr<core::IcrCache> dl1_;
  std::unique_ptr<baselines::RCache> rcache_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<cpu::Pipeline> pipeline_;
  std::string app_name_;
  std::unique_ptr<obs::Observability> obs_;
  std::unique_ptr<rel::RelTracker> rel_;
};

}  // namespace icr::sim
